# Empty compiler generated dependencies file for test_continuous_search.
# This may be replaced when dependencies are built.
