file(REMOVE_RECURSE
  "CMakeFiles/test_summation.dir/sum/summation_test.cpp.o"
  "CMakeFiles/test_summation.dir/sum/summation_test.cpp.o.d"
  "test_summation"
  "test_summation.pdb"
  "test_summation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_summation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
