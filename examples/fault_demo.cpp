/// Fault-injection demo: break the network on purpose and watch the
/// runtime put the collective back together.
///
///   1. broadcast on P=8 under a lossy network (every message has a 50%
///      chance of being dropped on delivery) — acked retransmission gets
///      every byte through exactly once,
///   2. kill rank 3 mid-collective — the heartbeat detector accuses it,
///      the Communicator re-plans the broadcast over the 7 survivors
///      (the tree is universal, so the degraded plan is itself optimal)
///      and re-runs to completion,
///   3. print the injected-fault event log, which is a pure function of
///      the seed: re-run with the same LOGPC_FAULT_SEED and the log is
///      byte-identical.
///
///   LOGPC_FAULT_SEED=7 ./fault_demo

#include <cstdlib>
#include <iostream>
#include <span>
#include <string>

#include "api/communicator.hpp"
#include "fault/fault.hpp"

int main() {
  using namespace logpc;

  const char* env = std::getenv("LOGPC_FAULT_SEED");
  const std::uint64_t seed =
      (env != nullptr && *env != '\0') ? std::strtoull(env, nullptr, 10) : 1;

  const Params machine{8, 4, 1, 2};
  const api::Communicator comm(machine);
  const std::string text = "broadcast that refuses to die";
  const auto* raw = reinterpret_cast<const std::byte*>(text.data());
  const exec::Bytes payload(raw, raw + text.size());
  const std::span<const std::byte> view(payload);

  std::cout << "machine: " << machine.to_string() << ", fault seed " << seed
            << "\n\n";

  // 1. A lossy network: drops force retransmission, never corruption.
  fault::FaultSpec lossy;
  lossy.seed = seed;
  lossy.drop_prob = 0.5;
  api::FtRunOptions lossy_opt;
  lossy_opt.faults = lossy;
  const api::FtRunResult dropped = comm.run_broadcast_ft(view, 0, lossy_opt);
  int copies = 0;
  for (ProcId p = 0; p < comm.size(); ++p) {
    copies += dropped.report.item_at(p, 0) == payload ? 1 : 0;
  }
  std::cout << "lossy network (drop p=0.5): " << copies << "/" << comm.size()
            << " byte-exact copies, " << dropped.report.retries
            << " retransmissions, " << dropped.report.duplicates
            << " duplicates discarded, took " << dropped.report.wall_ns / 1000
            << " us\n";

  // 2. A mortal processor: rank 3 dies before its first instruction.
  fault::FaultSpec mortal;
  mortal.seed = seed;
  mortal.dead_rank = 3;
  mortal.dead_after_instrs = 0;
  api::FtRunOptions mortal_opt;
  mortal_opt.faults = mortal;
  const api::FtRunResult killed = comm.run_broadcast_ft(view, 0, mortal_opt);

  std::cout << "\nrank 3 killed mid-run: status "
            << (killed.status == api::RunStatus::kRecovered ? "RECOVERED"
                : killed.status == api::RunStatus::kOk      ? "OK"
                                                            : "FAILED")
            << ", " << killed.attempts << " attempts, recovery took "
            << killed.recovery_ns / 1000 << " us\n";
  std::cout << "survivors:";
  for (const ProcId r : killed.survivors) std::cout << " P" << r;
  std::cout << "\n";
  copies = 0;
  for (std::size_t p = 0; p < killed.survivors.size(); ++p) {
    copies +=
        killed.report.item_at(static_cast<ProcId>(p), 0) == payload ? 1 : 0;
  }
  std::cout << "payload: " << copies << "/" << killed.survivors.size()
            << " byte-exact copies on the survivors\n";

  // 3. The injected-fault log — deterministic in the seed.
  std::cout << "\ninjected faults (degraded run, survivor-rank ids):\n";
  for (std::size_t p = 0; p < killed.report.fault_events.size(); ++p) {
    for (const fault::FaultEvent& fe : killed.report.fault_events[p]) {
      std::cout << "  P" << p << ": " << fault::fault_kind_name(fe.kind)
                << " (peer " << fe.peer << ", seq " << fe.seq << ")\n";
    }
  }
  std::cout << "\nre-run with LOGPC_FAULT_SEED=" << seed
            << " and this log is identical; change the seed and the faults "
               "move.\n";
  return 0;
}
