#include "obs/critical_path.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace logpc::obs {

namespace {

using exec::ExecEvent;

/// Index of one event in the report: (rank, position in the stream).
struct EventRef {
  ProcId rank = kNoProc;
  std::size_t index = 0;
};

Component arrival_component(exec::Mode mode) {
  // Move-mode receives copy bytes (receive overhead in the model's sense);
  // fold/sum receives combine the payload into the accumulator.
  return mode == exec::Mode::kMove ? Component::kRecvOverhead
                                   : Component::kFold;
}

}  // namespace

const char* component_name(Component c) noexcept {
  switch (c) {
    case Component::kSendOverhead: return "send_overhead";
    case Component::kBlocked: return "blocked";
    case Component::kLatencyWait: return "latency_wait";
    case Component::kRecvOverhead: return "recv_overhead";
    case Component::kFold: return "fold";
    case Component::kGapStall: return "gap_stall";
  }
  return "?";
}

std::uint64_t RankBreakdown::components_sum_ns() const {
  std::uint64_t sum = 0;
  for (const std::uint64_t c : component_ns) sum += c;
  return sum;
}

std::uint64_t RunProfile::total_ns(Component c) const {
  std::uint64_t sum = 0;
  for (const RankBreakdown& r : ranks) sum += r.ns(c);
  return sum;
}

RunProfile analyze(const exec::ExecReport& report) {
  const std::size_t P = report.events.size();
  RunProfile profile;
  profile.label = report.label;
  profile.P = static_cast<int>(P);
  profile.mode = report.mode;
  profile.wall_ns = report.wall_ns;
  profile.predicted_makespan = report.predicted_makespan;
  profile.ranks.resize(P);
  profile.phases.resize(P);

  // --- per-rank decomposition: partition each span into phases ------------
  const Component arrive = arrival_component(report.mode);
  for (std::size_t p = 0; p < P; ++p) {
    const std::vector<ExecEvent>& evs = report.events[p];
    RankBreakdown& rb = profile.ranks[p];
    std::vector<Phase>& phases = profile.phases[p];
    if (evs.empty()) continue;
    // Worst case per event: one gap phase + two interval phases.
    phases.reserve(evs.size() * 3);
    rb.first_start_ns = evs.front().start_ns;
    rb.last_end_ns = evs.back().end_ns;
    std::uint64_t prev_end = evs.front().start_ns;
    for (const ExecEvent& ev : evs) {
      if (ev.start_ns < prev_end) {
        // The engine's documented ordering guarantee: events[p] is
        // non-decreasing in start_ns and intervals never overlap (each op
        // completes before the next begins on the same thread).
        throw std::invalid_argument(
            "obs::analyze: events out of stream order at rank " +
            std::to_string(p));
      }
      if (ev.xfer_ns < ev.start_ns || ev.end_ns < ev.xfer_ns) {
        throw std::invalid_argument(
            "obs::analyze: malformed event timestamps at rank " +
            std::to_string(p));
      }
      auto add = [&](Component c, std::uint64_t from, std::uint64_t to,
                     ProcId peer, ItemId item) {
        if (to <= from) return;
        rb.component_ns[static_cast<std::size_t>(c)] += to - from;
        phases.push_back(Phase{c, from, to, peer, item});
      };
      // Inter-event gap: kSum streams fold local operands between timed
      // events (kCombineLocal emits none), so the gap is combining work
      // there; everywhere else it is stall.
      add(report.mode == exec::Mode::kSum ? Component::kFold
                                          : Component::kGapStall,
          prev_end, ev.start_ns, kNoProc, 0);
      if (ev.kind == ExecEvent::Kind::kSend) {
        ++rb.sends;
        add(Component::kSendOverhead, ev.start_ns, ev.xfer_ns, ev.peer,
            ev.item);
        add(Component::kBlocked, ev.xfer_ns, ev.end_ns, ev.peer, ev.item);
      } else {
        ++rb.recvs;
        add(Component::kLatencyWait, ev.start_ns, ev.xfer_ns, ev.peer,
            ev.item);
        add(arrive, ev.xfer_ns, ev.end_ns, ev.peer, ev.item);
      }
      prev_end = ev.end_ns;
    }
  }

  // --- causal matching: i-th send on (from, to) pairs with i-th recv ------
  // Flat per-link FIFOs instead of a map: a run has O(P) active links and
  // this is on the serving path (the service analyzes every request), so
  // a linear probe over a small vector beats tree allocations.
  struct LinkFifo {
    ProcId from = kNoProc;
    ProcId to = kNoProc;
    std::vector<std::size_t> sends;  ///< event indices on `from`, in order
    std::size_t popped = 0;
  };
  std::vector<LinkFifo> links;
  links.reserve(P);
  auto link_index = [&links](ProcId from, ProcId to) {
    for (std::size_t i = 0; i < links.size(); ++i) {
      if (links[i].from == from && links[i].to == to) return i;
    }
    links.push_back(LinkFifo{from, to, {}, 0});
    return links.size() - 1;
  };
  for (std::size_t p = 0; p < P; ++p) {
    for (std::size_t i = 0; i < report.events[p].size(); ++i) {
      const ExecEvent& ev = report.events[p][i];
      if (ev.kind == ExecEvent::Kind::kSend) {
        links[link_index(static_cast<ProcId>(p), ev.peer)].sends.push_back(i);
      }
    }
  }
  // matched_send[rank][event index] = the EventRef of the send whose push
  // this receive popped, or rank == kNoProc when unmatched (a send, or a
  // recv whose sender log is missing).
  std::vector<std::vector<EventRef>> matched_send(P);
  for (std::size_t p = 0; p < P; ++p) {
    matched_send[p].resize(report.events[p].size());
    for (std::size_t i = 0; i < report.events[p].size(); ++i) {
      const ExecEvent& ev = report.events[p][i];
      if (ev.kind != ExecEvent::Kind::kRecv) continue;
      LinkFifo& link = links[link_index(ev.peer, static_cast<ProcId>(p))];
      const std::size_t k = link.popped++;
      if (k < link.sends.size()) {
        matched_send[p][i] = EventRef{ev.peer, link.sends[k]};
      }
    }
  }

  // --- critical path: backward walk from the last-finishing event ---------
  EventRef last;
  std::uint64_t last_end = 0;
  for (std::size_t p = 0; p < P; ++p) {
    if (report.events[p].empty()) continue;
    const std::uint64_t end = report.events[p].back().end_ns;
    // Ties resolve to the lower rank; any tied rank is equally "last".
    if (last.rank == kNoProc || end > last_end) {
      last = EventRef{static_cast<ProcId>(p), report.events[p].size() - 1};
      last_end = end;
    }
  }
  if (last.rank != kNoProc) {
    profile.straggler = last.rank;
    profile.critical_path_ns = last_end;
    std::vector<PathSegment> path;  // built newest-first, reversed below
    std::size_t total_events = 0;
    for (std::size_t p = 0; p < P; ++p) total_events += report.events[p].size();
    EventRef cur = last;
    for (;;) {
      const auto p = static_cast<std::size_t>(cur.rank);
      const ExecEvent& ev = report.events[p][cur.index];
      // Gating predecessor: a receive that was already waiting when the
      // payload arrived was gated by the matched send (wire edge);
      // everything else by the previous event on the same rank.
      bool wire = false;
      EventRef pred;
      const EventRef& m = matched_send[p][cur.index];
      if (ev.kind == ExecEvent::Kind::kRecv && m.rank != kNoProc) {
        const ExecEvent& s =
            report.events[static_cast<std::size_t>(m.rank)][m.index];
        if (s.xfer_ns >= ev.start_ns) {
          wire = true;
          pred = m;
        }
      }
      if (!wire && cur.index > 0) {
        pred = EventRef{cur.rank, cur.index - 1};
      }
      path.push_back(PathSegment{cur.rank, ev.kind, ev.peer, ev.item,
                                 ev.start_ns, ev.end_ns, ev.planned, wire});
      if (pred.rank == kNoProc) break;
      // The wire-edge test admits ties (s.xfer_ns == ev.start_ns), which a
      // coarse clock can turn into a timestamp cycle. A valid causal chain
      // visits each event at most once, so a longer walk is a cycle: stop.
      if (path.size() >= total_events) break;
      cur = pred;
    }
    std::reverse(path.begin(), path.end());
    profile.critical_path = std::move(path);
  }

  // --- model residual: measured critical path vs scaled prediction --------
  profile.fit = exec::measure(report);
  // Least-squares scale c minimizing sum_i (c * cycles_i - ns_i)^2 over the
  // (L, o, g) pairs that have samples: c = sum(cycles*ns) / sum(cycles^2).
  double num = 0, den = 0;
  auto pair = [&](Time cycles, double ns, std::size_t samples) {
    if (samples == 0 || cycles <= 0) return;
    num += static_cast<double>(cycles) * ns;
    den += static_cast<double>(cycles) * static_cast<double>(cycles);
  };
  pair(report.params.L, profile.fit.L_ns, profile.fit.latency_samples);
  pair(report.params.o, profile.fit.o_ns, profile.fit.overhead_samples);
  pair(report.params.g, profile.fit.g_ns, profile.fit.gap_samples);
  profile.ns_per_cycle = den > 0 ? num / den : 0;
  profile.predicted_ns =
      static_cast<double>(profile.predicted_makespan) * profile.ns_per_cycle;
  if (profile.predicted_ns > 0) {
    profile.residual =
        (static_cast<double>(profile.critical_path_ns) - profile.predicted_ns) /
        profile.predicted_ns;
  }
  return profile;
}

}  // namespace logpc::obs
