#pragma once

#include <cstdint>
#include <string>

#include "runtime/implicit_plan.hpp"

/// \file implicit_sim.hpp
/// Full-scale structural simulation of an implicit plan, without ever
/// materializing a Schedule.  Where sim::Engine replays per-op IR, this
/// sweeps every node of the generator form — O(P log P) time, O(1) memory —
/// checking the tree invariants rank by rank and accumulating the makespan.
/// It is what lets CI "simulate P = 1M" inside a laptop-sized budget.

namespace logpc::sim {

struct ImplicitRunResult {
  Time makespan = 0;          ///< max over nodes of the informed/depart time
  std::uint64_t messages = 0; ///< tree edges traversed (== P - 1)
  std::uint64_t ranks = 0;    ///< nodes swept (== P)
  bool ok = false;            ///< all invariants held
  std::string error;          ///< first violation, empty when ok
};

/// Sweeps all P nodes of `plan`, verifying for each non-root node n that
///  * parent(n) is a valid earlier node (index < n),
///  * label(n) == label(parent) + T + child_rank(n) * g (the LogP timing
///    rule), and
///  * child(parent(n), child_rank(n)) == n (decode round-trips),
/// and that the max label equals plan.completion().  Returns ok == false
/// with a description on the first violation.
[[nodiscard]] ImplicitRunResult run_implicit(const runtime::ImplicitPlan& plan);

}  // namespace logpc::sim
