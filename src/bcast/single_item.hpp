#pragma once

#include <memory>

#include "bcast/tree.hpp"
#include "sim/program.hpp"

/// \file single_item.hpp
/// Section 2: optimal single-item broadcast.  Theorem 2.1: broadcasting
/// along the tree B(P) of the P smallest-labelled universal-tree nodes is
/// optimal, and its completion time is B(P; L, o, g).

namespace logpc::bcast {

/// The optimal single-item broadcast of Theorem 2.1 as a ready-to-run
/// schedule: `source` holds the item at cycle 0 and every processor holds it
/// by cycle B(P; L, o, g).
[[nodiscard]] Schedule optimal_single_item(const Params& params,
                                           ProcId source = 0);

/// A reactive simulator program realizing the same broadcast: processor
/// `self` plays tree node `self` (after the source/node-0 swap used by
/// BroadcastTree::to_schedule) and forwards the item to its children the
/// moment it is informed.  Install on every processor.
[[nodiscard]] std::unique_ptr<sim::Program> make_tree_program(
    const BroadcastTree& tree, int node);

}  // namespace logpc::bcast
