#include "viz/tree_render.hpp"

#include <sstream>

namespace logpc::viz {

namespace {

void render_node(const bcast::BroadcastTree& tree, int node,
                 const std::string& prefix, bool last, std::ostringstream& os) {
  const auto& n = tree.node(node);
  if (n.parent == -1) {
    os << n.label << "\n";
  } else {
    os << prefix << (last ? "`- " : "+- ") << n.label << "\n";
  }
  const std::string child_prefix =
      n.parent == -1 ? std::string{} : prefix + (last ? "   " : "|  ");
  for (std::size_t i = 0; i < n.children.size(); ++i) {
    render_node(tree, n.children[i], child_prefix,
                i + 1 == n.children.size(), os);
  }
}

}  // namespace

std::string render_tree(const bcast::BroadcastTree& tree) {
  std::ostringstream os;
  render_node(tree, 0, "", true, os);
  return os.str();
}

std::string degree_summary(const bcast::BroadcastTree& tree) {
  std::ostringstream os;
  os << "degrees:";
  for (const auto& [degree, count] : tree.degree_histogram()) {
    os << " " << count << "x" << degree;
  }
  return os.str();
}

}  // namespace logpc::viz
