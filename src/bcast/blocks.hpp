#pragma once

#include <vector>

#include "bcast/continuous.hpp"

/// \file blocks.hpp
/// Section 3.4's block transmission digraph (Figure 3): how one item flows
/// *between blocks* under a block-cyclic plan.
///
/// Vertices are the blocks (labelled by their size r), plus a vertex
/// labelled 0 for the receive-only processor and one for the source.  A
/// thick ("active") edge carries the copy that the receiving block's
/// current internal holder will forward; normal edges carry inactive
/// copies, weighted by multiplicity.  The paper's invariants: the weights
/// into a vertex labelled r > 0 sum to r, as do the weights out of it; the
/// receive-only vertex has in-weight 1 and no out-edges; the source emits
/// exactly one (active) transmission, into the block owning the tree root.

namespace logpc::bcast {

struct BlockDigraph {
  /// Vertex v < blocks.size() is plan block v; then the receive-only
  /// vertex; then the source.
  struct Edge {
    int from = 0;
    int to = 0;
    int weight = 0;
    bool active = false;
  };

  std::vector<int> labels;  ///< block size r; 0 for receive-only; -1 source
  std::vector<Edge> edges;
  int receive_only_vertex = 0;
  int source_vertex = 0;

  [[nodiscard]] int in_weight(int v) const;
  [[nodiscard]] int out_weight(int v) const;
};

/// Builds the digraph for a given steady-state item.  The inter-block edge
/// multiset depends on the item's residues, so `item` selects which
/// representative to draw (Figure 3 draws one).
[[nodiscard]] BlockDigraph block_digraph(const ContinuousPlan& plan,
                                         ItemId item = 0);

/// Checks the paper's stated invariants on the digraph.
[[nodiscard]] bool digraph_invariants_hold(const BlockDigraph& g);

}  // namespace logpc::bcast
