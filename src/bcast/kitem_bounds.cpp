#include "bcast/kitem_bounds.hpp"

#include <algorithm>
#include <stdexcept>

namespace logpc::bcast {

KItemBounds kitem_bounds(int P, Time L, int k) {
  if (P < 2) throw std::invalid_argument("kitem_bounds: P >= 2");
  if (L < 1) throw std::invalid_argument("kitem_bounds: L >= 1");
  if (k < 1) throw std::invalid_argument("kitem_bounds: k >= 1");
  const Fib fib(L);
  KItemBounds b;
  b.P = P;
  b.L = L;
  b.k = k;
  b.B = fib.B_of_P(static_cast<Count>(P) - 1);
  b.k_star = fib.k_star(static_cast<Count>(P));
  b.general_lower =
      std::max(b.B + L,
               b.B + L + (static_cast<Time>(k) - 1) -
                   static_cast<Time>(b.k_star));
  b.single_sending_lower = b.B + L + static_cast<Time>(k) - 1;
  b.single_sending_upper = b.B + 2 * L + static_cast<Time>(k) - 2;
  b.continuous_upper = b.single_sending_lower;
  return b;
}

}  // namespace logpc::bcast
