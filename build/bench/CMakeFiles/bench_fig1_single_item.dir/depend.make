# Empty dependencies file for bench_fig1_single_item.
# This may be replaced when dependencies are built.
