# Empty compiler generated dependencies file for test_kitem_baselines.
# This may be replaced when dependencies are built.
