#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

/// \file wait.hpp
/// The engine's wait policy: one tiered idle strategy replacing the three
/// divergent hard-coded spin loops (256/256/64) the engine grew across
/// PRs 3-4.  Every blocking wait — plain mailbox waits, reliable waits
/// with failure detection, and the ack/retransmit loop — now walks the
/// same ladder:
///
///   tier 1  spin with cpu_relax() (PAUSE/YIELD): cheapest reaction when
///           the condition flips within a few hundred cycles;
///   tier 2  yield once per failed attempt (an oversubscribed machine
///           needs the waiter's core to run the producer — PAUSE-spinning
///           between yields measurably stalls whole collectives), with a
///           *slow tick* every `spin_yield` attempts where the caller
///           runs its deadline / failure-detector / retransmit
///           bookkeeping and the adaptive mode adds a capped exponential
///           yield burst (1, 2, 4, ... extra yields);
///   tier 3  (WaitPolicy::Mode::kPark only) park on a run-wide ParkGate
///           via std::atomic::wait.  Producers never touch the gate — a
///           ticker thread owned by the run wakes all parked waiters every
///           `park_tick_us`, so a parked worker re-checks its condition,
///           its deadline and its heartbeat at a bounded cadence and the
///           watchdog / failure-detector paths stay live.  Parking trades
///           wake-up latency (<= one tick) for near-zero idle CPU.
///
/// The slow-tick cadence is the old spin constant unified: kSlowTickSpins
/// attempts between bookkeeping runs, close enough to the previous 256 to
/// keep retransmit timing behavior while giving all three loops one knob.

namespace logpc::exec {

/// One PAUSE/YIELD-class hint to the core that we are spinning.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

struct WaitPolicy {
  enum class Mode : std::uint8_t {
    kSpin,      ///< tiers 1-2 but never yields: lowest latency, burns CPU
    kAdaptive,  ///< spin, then yield with exponential backoff (default)
    kPark,      ///< spin, yield, then park on the run's ParkGate
  };

  /// Unified slow-tick cadence (was 256/256/64 across the three loops).
  static constexpr std::uint32_t kSlowTickSpins = 256;
  /// Tier-1 attempts before yielding begins.  Deliberately short: PAUSE
  /// costs ~100+ cycles on modern x86, and on an oversubscribed host the
  /// condition can only flip after a context switch, so every extra relax
  /// poll is pure latency on the critical path of a blocked receive.
  static constexpr std::uint32_t kRelaxSpins = 8;

  Mode mode = Mode::kAdaptive;
  std::uint32_t spin_relax = kRelaxSpins;   ///< tier-1 cpu_relax attempts
  std::uint32_t spin_yield = kSlowTickSpins;///< attempts per slow tick after
  std::uint32_t park_after_ticks = 64;      ///< slow ticks before parking
  std::uint32_t park_tick_us = 200;         ///< ParkGate ticker cadence
  std::uint32_t max_yield_backoff = 16;     ///< cap on consecutive yields

  static WaitPolicy spin() { return WaitPolicy{Mode::kSpin, kRelaxSpins,
                                               kSlowTickSpins, 64, 200, 16}; }
  static WaitPolicy adaptive() { return WaitPolicy{}; }
  static WaitPolicy park() { return WaitPolicy{Mode::kPark, kRelaxSpins,
                                               kSlowTickSpins, 64, 200, 16}; }
};

/// Run-wide wake-up sequencer for WaitPolicy::Mode::kPark.  Only the run's
/// ticker thread advances it; parked waiters std::atomic::wait on the
/// sequence, so a producer's push costs nothing and a missed wake is
/// bounded by the ticker cadence instead of being a lost wake-up.
class ParkGate {
 public:
  void tick() noexcept {
    seq_.fetch_add(1, std::memory_order_release);
    seq_.notify_all();
  }
  [[nodiscard]] std::uint64_t sequence() const noexcept {
    return seq_.load(std::memory_order_acquire);
  }
  /// Blocks until tick() advances past `seen` (or spuriously).
  void park(std::uint64_t seen) noexcept { seq_.wait(seen, std::memory_order_acquire); }

 private:
  std::atomic<std::uint64_t> seq_{0};
};

/// Per-blocking-wait cursor through the policy tiers.  Usage:
///
///   Waiter w(policy, gate);
///   while (!attempt()) {
///     if (abort) return false;
///     if (w.should_tick()) {
///       ... deadline / suspect / retransmit bookkeeping ...
///       w.idle();
///     }
///   }
class Waiter {
 public:
  Waiter(const WaitPolicy& policy, ParkGate* gate) noexcept
      : p_(policy), gate_(gate) {}

  /// Advances one failed attempt.  Returns true when the caller should run
  /// its slow-path bookkeeping and then call idle(); returns false after
  /// burning one tier-1 cpu_relax.
  bool should_tick() noexcept {
    ++attempts_;
    if (ticks_ == 0 && attempts_ <= p_.spin_relax) {
      cpu_relax();
      return false;
    }
    if (attempts_ < p_.spin_yield) {
      // Past tier 1 the condition is not flipping soon: cede the core so
      // the peer this wait depends on can run (kSpin keeps burning it by
      // explicit request).
      if (p_.mode == WaitPolicy::Mode::kSpin) {
        cpu_relax();
      } else {
        std::this_thread::yield();
      }
      return false;
    }
    attempts_ = 0;
    ++ticks_;
    return true;
  }

  /// Tier-2/3 idle step after the caller's slow-path checks passed.
  void idle() noexcept {
    switch (p_.mode) {
      case WaitPolicy::Mode::kSpin:
        return;  // keep spinning at full rate
      case WaitPolicy::Mode::kPark:
        if (gate_ != nullptr && ticks_ > p_.park_after_ticks) {
          gate_->park(gate_->sequence());
          return;
        }
        [[fallthrough]];
      case WaitPolicy::Mode::kAdaptive:
        for (std::uint32_t i = 0; i < backoff_; ++i) std::this_thread::yield();
        backoff_ = backoff_ < p_.max_yield_backoff ? backoff_ * 2
                                                   : p_.max_yield_backoff;
        return;
    }
  }

  /// Slow ticks elapsed since construction (bookkeeping runs).
  [[nodiscard]] std::uint64_t ticks() const noexcept { return ticks_; }

 private:
  const WaitPolicy& p_;
  ParkGate* gate_;
  std::uint32_t attempts_ = 0;
  std::uint32_t backoff_ = 1;
  std::uint64_t ticks_ = 0;
};

}  // namespace logpc::exec
