#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/engine.hpp"
#include "exec/measure.hpp"

/// \file critical_path.hpp
/// Run analysis: where did a collective's wall time actually go, and why
/// did it diverge from the paper's predicted makespan?
///
/// The engine already records one timestamped event per send/recv on every
/// rank (ExecReport::events, stream-ordered and non-decreasing in
/// start_ns).  analyze() reconstructs the run's *causal DAG* from those
/// logs — the i-th push on a directed link pairs with the i-th accepted
/// pop (the mailboxes are per-link FIFOs and reliable delivery discards
/// duplicates exactly-once, so FIFO matching is exact), and intra-rank
/// events chain in stream order — then walks it two ways:
///
///  1. **Decomposition.**  Each rank's busy+blocked span
///     [first event start, last event end] is partitioned *exactly* into
///     six components:
///
///       send-overhead  send begin -> push accepted (the model's o on the
///                      sending side, including capacity backpressure)
///       blocked        push accepted -> send complete (ack waits under
///                      reliable delivery; ~0 on the fault-free path)
///       latency-wait   recv begin -> payload arrived (the wire's L plus
///                      any sender lateness)
///       recv-overhead  payload arrived -> stored (move-mode memcpy: the
///                      model's o on the receiving side)
///       fold           payload arrived -> folded (fold/sum-mode receive
///                      combining), plus — in kSum mode — the gaps between
///                      events, where kCombineLocal folds operands without
///                      emitting a timed event
///       gap-stall      everything between consecutive events that is not
///                      kSum local combining: scheduling noise, planned
///                      idle slots, g-spacing the stream did not overlap
///
///     The identity `span == sum(components)` holds by construction —
///     every nanosecond of the span lands in exactly one bucket — which is
///     what the profiler tests assert (the acceptance bound is 1%; the
///     arithmetic is exact).
///
///  2. **Critical path.**  Starting from the globally last-finishing
///     event, repeatedly step to the *gating* predecessor: for a receive
///     whose payload arrived after the rank started waiting, the matched
///     send on the peer (a wire edge); otherwise the previous event on the
///     same rank (a stream edge).  The result is the causal chain that
///     determined the makespan — by construction it ends at the
///     last-finishing rank (the straggler) and bottoms out at some rank's
///     first event.
///
/// The *model residual* closes the predicted-vs-measured loop the paper's
/// methodology implies: exec::measure() fits effective (L, o, g) in
/// nanoseconds from the same event logs; a least-squares scale maps the
/// plan machine's cycles onto those fitted values; and the residual is
/// (measured critical path - scaled predicted makespan) / predicted.  A
/// run that executed the schedule as the model prices it has a residual
/// near zero; stragglers, contention or a mis-fitted machine push it up —
/// exactly the signal the tuning loop (ROADMAP items 3 and 5) selects on.

namespace logpc::obs {

/// One component of the per-rank time decomposition.
enum class Component : std::uint8_t {
  kSendOverhead,  ///< send begin -> push accepted
  kBlocked,       ///< push accepted -> send complete (ack waits)
  kLatencyWait,   ///< recv begin -> payload arrived
  kRecvOverhead,  ///< payload arrived -> stored (move mode)
  kFold,          ///< payload arrived -> folded + kSum local-combine gaps
  kGapStall,      ///< inter-event idle not attributable to local folding
};

inline constexpr std::size_t kComponents = 6;

[[nodiscard]] const char* component_name(Component c) noexcept;

/// One contiguous interval of a rank's timeline, tagged with the component
/// it belongs to.  Phases partition each rank's busy+blocked span; the
/// Chrome-trace exporter renders them as color-coded per-rank tracks.
struct Phase {
  Component component = Component::kGapStall;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  ProcId peer = kNoProc;  ///< send/recv peer; kNoProc for gaps
  ItemId item = 0;              ///< item in flight; 0 for gaps

  [[nodiscard]] std::uint64_t duration_ns() const { return end_ns - start_ns; }
};

/// One hop of the critical path.  `via_wire` marks a cross-rank edge: this
/// event was gated by the matched send on `rank`'s peer rather than by the
/// rank's own previous instruction.
struct PathSegment {
  ProcId rank = kNoProc;
  exec::ExecEvent::Kind kind = exec::ExecEvent::Kind::kSend;
  ProcId peer = kNoProc;
  ItemId item = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  Time planned = 0;      ///< the plan's cycle for this event
  bool via_wire = false; ///< reached from the matched send, not the stream
};

/// Per-rank totals of the six components plus the span they partition.
struct RankBreakdown {
  std::uint64_t first_start_ns = 0;  ///< rank's first event begins
  std::uint64_t last_end_ns = 0;     ///< rank's last event completes
  std::uint64_t component_ns[kComponents] = {};
  std::size_t sends = 0;
  std::size_t recvs = 0;

  [[nodiscard]] std::uint64_t ns(Component c) const {
    return component_ns[static_cast<std::size_t>(c)];
  }
  /// The rank's busy+blocked wall time: last event end - first event start.
  [[nodiscard]] std::uint64_t span_ns() const {
    return last_end_ns - first_start_ns;
  }
  /// Sum of the six components — equals span_ns() by construction.
  [[nodiscard]] std::uint64_t components_sum_ns() const;
};

/// Everything analyze() derives from one ExecReport.
struct RunProfile {
  std::string label;           ///< the program's label ("bcast", ...)
  int P = 0;
  exec::Mode mode = exec::Mode::kMove;
  std::uint64_t wall_ns = 0;   ///< the run's measured makespan
  Time predicted_makespan = 0; ///< the plan's completion time, cycles

  std::vector<RankBreakdown> ranks;        ///< [rank]
  std::vector<std::vector<Phase>> phases;  ///< [rank], start-ordered

  /// The causal chain ending at the last-finishing event, oldest hop
  /// first.  Empty only when the run recorded no events at all.
  std::vector<PathSegment> critical_path;
  /// End of the critical path relative to the run start — the measured
  /// completion of the last-finishing rank.
  std::uint64_t critical_path_ns = 0;
  /// The rank the critical path ends at (last event to finish).
  ProcId straggler = kNoProc;

  /// Effective (L, o, g) fitted from this run's events (exec::measure).
  exec::MeasuredLogP fit;
  /// Least-squares ns-per-cycle scale mapping the plan machine's (L, o, g)
  /// cycles onto the fitted nanosecond values.
  double ns_per_cycle = 0;
  /// predicted_makespan cycles scaled to nanoseconds by ns_per_cycle.
  double predicted_ns = 0;
  /// (critical_path_ns - predicted_ns) / predicted_ns; 0 when the plan
  /// predicts a zero makespan.  Positive: the run was slower than the
  /// fitted model prices the schedule; negative: faster (overlap the
  /// single-port model does not credit).
  double residual = 0;
  /// Set by the flight recorder when |residual| crosses its threshold.
  bool anomalous = false;

  /// Total over all ranks of one component (ns).
  [[nodiscard]] std::uint64_t total_ns(Component c) const;
};

/// Profiles one run.  Requires per-rank events non-decreasing in start_ns
/// (the engine's documented ordering guarantee); throws
/// std::invalid_argument otherwise rather than returning garbage.
[[nodiscard]] RunProfile analyze(const exec::ExecReport& report);

}  // namespace logpc::obs
