#!/usr/bin/env python3
"""Diff a fresh BENCH_kernels.json against the committed baseline.

Usage: perf_diff.py BASELINE CURRENT [--tolerance 0.25]
       perf_diff.py --tuning BASELINE CURRENT

Entries are matched on (name, params).  For each matched fold_chain cell
the kernel-vs-generic *speedup* is compared — on shared CI runners the
absolute GB/s numbers swing with the neighbours' load, but the speedup is
a ratio of two lanes measured back-to-back on the same machine, so it is
the stable quantity worth guarding.

Even the speedup of one cell can be wrecked by a multi-second load spike
spanning its reps (observed: a generic lane measured 5x slow for one
cell, inflating its ratio 200x+).  P barely moves the per-byte speedup —
the fold chain is (P-1) folds of the same payload — so the guarded
quantity is the *median* speedup per (op, dtype, payload) group across
the P sweep: a single wrecked cell cannot shift a median of four.

A group regresses when current median < baseline median * (1 -
tolerance) AND the current median is below --floor (default 6x, 1.5x
the 4x bar the fast lane promises): on a shared runner the ratio of
two far-above-bar medians routinely drifts 2x with background load,
so beyond-tolerance drift between huge speedups is weather, while a
broken typed lane collapses toward 1x and trips both conditions.  The
script exits 1 if any group regressed.  Groups that
*improved* beyond the tolerance are printed as notes (a too-good jump
usually means the baseline is stale) but do not fail the run —
perf_smoke.sh tells the operator to refresh the baseline instead.

--tuning switches to BENCH_tuning.json mode: "segment" entries are
matched on (P, bytes) and the *winning schedule family* is compared
instead of any timing.  Absolute nanoseconds are runner weather, but the
decision table's winners are what the planner will actually serve, so a
flip is worth a human glance — and no more than a glance: two families
within noise of each other may legitimately trade places run to run
(the margin column shows how contested each segment is), so tuning mode
always exits 0.  bench_tuning itself already gates the quantities that
must hold (tuned-vs-fixed wins, warm plan_tuned overhead).
"""

import argparse
import json
import statistics
import sys


def load_groups(path):
    """(op, dtype, payload) -> {P: speedup}"""
    with open(path) as f:
        doc = json.load(f)
    groups = {}
    for e in doc.get("entries", []):
        if e.get("name") != "fold_chain":
            continue
        p = e["params"]
        key = (p["op"], p["dtype"], int(p["payload"]))
        groups.setdefault(key, {})[int(p["P"])] = e["speedup"]
    return groups


def load_segments(path):
    """(P, bytes) -> {winner, margin} from BENCH_tuning.json segments.

    margin is runner_up/tuned - 1: how far ahead the winner was.  A small
    margin marks a contested segment where a flip is expected noise.
    """
    with open(path) as f:
        doc = json.load(f)
    segments = {}
    for e in doc.get("entries", []):
        if e.get("name") != "segment":
            continue
        p = e["params"]
        tuned = float(e["tuned_ns"])
        margin = float(e["runner_up_ns"]) / tuned - 1.0 if tuned else 0.0
        segments[(int(p["P"]), int(p["bytes"]))] = {
            "winner": p["winner"], "margin": margin}
    return segments


def diff_tuning(args):
    base = load_segments(args.baseline)
    cur = load_segments(args.current)
    if not base:
        print(f"perf_diff: no tuning segments in baseline {args.baseline}",
              file=sys.stderr)
        return 2

    flips = 0
    for key, b in sorted(base.items()):
        c = cur.get(key)
        P, nbytes = key
        if c is None:
            print(f"note: segment (P={P}, bytes={nbytes}) missing from "
                  "current run")
            continue
        flipped = b["winner"] != c["winner"]
        flips += flipped
        tag = "  << WINNER FLIP (non-blocking)" if flipped else ""
        print(f"P={P:>3} bytes={nbytes:>9}  "
              f"baseline {b['winner']:<24} (+{b['margin']:.1%} over #2)  "
              f"current {c['winner']:<24} (+{c['margin']:.1%} over #2)"
              f"{tag}")
    for key in sorted(set(cur) - set(base)):
        print(f"note: segment (P={key[0]}, bytes={key[1]}) present in "
              "current but not in baseline")

    print()
    print(f"perf_diff --tuning: {len(base)} baseline segments, "
          f"{flips} winner flip(s)")
    if flips:
        print("perf_diff --tuning: WARNING — decision-table winners "
              "changed; eyeball the margins above and refresh "
              "bench/baselines/BENCH_tuning.json if the new winners are "
              "consistent across runs")
    else:
        print("perf_diff --tuning: OK")
    return 0  # informational: bench_tuning's own gates are the guardrail


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.25)
    ap.add_argument("--floor", type=float, default=6.0,
                    help="only fail a group whose current median speedup "
                         "is also below this absolute value")
    ap.add_argument("--tuning", action="store_true",
                    help="diff BENCH_tuning.json decision-table winners "
                         "instead of fold_chain speedups (never fails)")
    args = ap.parse_args()

    if args.tuning:
        return diff_tuning(args)

    base = load_groups(args.baseline)
    cur = load_groups(args.current)
    if not base:
        print(f"perf_diff: no fold_chain cells in baseline {args.baseline}",
              file=sys.stderr)
        return 2

    regressions, improvements, missing = [], [], []
    for key, bcells in sorted(base.items()):
        ccells = cur.get(key)
        if not ccells:
            missing.append(key)
            continue
        b = statistics.median(bcells.values())
        c = statistics.median(ccells.values())
        delta = (c - b) / b
        tag = ""
        if delta < -args.tolerance and c < args.floor:
            regressions.append((key, b, c, delta))
            tag = "  << REGRESSION"
        elif delta < -args.tolerance:
            tag = "  (drifted down, still >= floor)"
        elif delta > args.tolerance:
            improvements.append((key, b, c, delta))
            tag = "  (faster than baseline)"
        op, dtype, payload = key
        print(f"{op}/{dtype} payload={payload:>9}  "
              f"baseline median {b:8.2f}x  current median {c:8.2f}x  "
              f"{delta:+7.1%}{tag}")

    for key in sorted(set(cur) - set(base)):
        print(f"note: group {key} present in current but not in baseline")
    for key in missing:
        print(f"note: group {key} present in baseline but missing from current")

    print()
    print(f"perf_diff: {len(base)} baseline groups, "
          f"{len(regressions)} regressed beyond -{args.tolerance:.0%}, "
          f"{len(improvements)} improved beyond +{args.tolerance:.0%}")
    if improvements:
        print("perf_diff: consider refreshing bench/baselines/ "
              "(run perf_smoke.sh --rebaseline)")
    if regressions:
        print("perf_diff: FAIL")
        return 1
    print("perf_diff: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
