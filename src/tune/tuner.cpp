#include "tune/tuner.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "exec/program.hpp"

namespace logpc::tune {

namespace {

using runtime::PlanKey;
using runtime::PlanPtr;
using runtime::Problem;

/// One compiled candidate ready to time.
struct Candidate {
  std::string name;
  Problem problem = Problem::kBroadcast;
  std::int32_t segments = 1;
  std::int32_t clusters = 0;
  Time cross_L = 0, cross_o = 0, cross_g = 0;
  exec::Program program;
  std::vector<double> samples_ns;
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  if (n == 0) return 0;
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

exec::Program lower(const PlanPtr& plan, const std::string& label) {
  if (plan->implicit) return exec::compile_implicit(*plan->implicit, label);
  return exec::compile_broadcast(plan->schedule, label);
}

std::vector<Candidate> build_candidates(const TunerOptions& opts,
                                        runtime::Planner& planner,
                                        const Params& machine,
                                        std::size_t bytes) {
  std::vector<Candidate> out;
  const auto add = [&out](std::string name, Problem problem,
                          exec::Program program, std::int32_t segments = 1) {
    Candidate c;
    c.name = std::move(name);
    c.problem = problem;
    c.segments = segments;
    c.program = std::move(program);
    out.push_back(std::move(c));
  };

  add("optimal", Problem::kBroadcast,
      lower(planner.plan(PlanKey::broadcast(machine)), "bcast"));
  if (opts.include_trees) {
    for (const Problem p :
         {Problem::kBinomialBroadcast, Problem::kBinaryBroadcast,
          Problem::kChainBroadcast}) {
      add(std::string(runtime::problem_name(p)), p,
          lower(planner.plan(runtime::PlanKey::make(p, machine)), "bcast"));
    }
  }
  if (opts.clusters > 1 && opts.clusters < machine.P) {
    const HierParams topo =
        HierParams::uniform(machine.P, opts.clusters, machine, opts.cross);
    Candidate c;
    c.name = "hierarchical(c=" + std::to_string(opts.clusters) + ")";
    c.problem = Problem::kHierarchicalBroadcast;
    c.clusters = opts.clusters;
    c.cross_L = opts.cross.L;
    c.cross_o = opts.cross.o;
    c.cross_g = opts.cross.g;
    c.program = exec::compile_broadcast(
        planner.plan(PlanKey::hierarchical(topo))->schedule, "bcast-hier");
    out.push_back(std::move(c));
  }
  if (opts.include_segmented && bytes > 0) {
    const auto raw = static_cast<std::int64_t>(
        (bytes + opts.segment_bytes - 1) / std::max<std::size_t>(
                                               opts.segment_bytes, 1));
    const std::int32_t k = static_cast<std::int32_t>(std::clamp<std::int64_t>(
        raw, opts.min_segments, opts.max_segments));
    add("segmented(k=" + std::to_string(k) + ")", Problem::kKItemBroadcast,
        exec::compile_broadcast(
            planner.plan(PlanKey::segmented_broadcast(machine, k))->schedule,
            "bcast-seg"),
        k);
  }
  return out;
}

}  // namespace

TuneReport auto_tune(const TunerOptions& opts) {
  if (opts.Ps.empty() || opts.sizes.empty()) {
    throw std::invalid_argument("auto_tune: empty grid");
  }
  for (const int P : opts.Ps) {
    if (P < 2) throw std::invalid_argument("auto_tune: every P must be >= 2");
  }
  if (opts.trials < 1) {
    throw std::invalid_argument("auto_tune: trials must be >= 1");
  }
  if (opts.include_segmented &&
      (opts.segment_bytes < 1 || opts.min_segments < 2 ||
       opts.max_segments < opts.min_segments)) {
    throw std::invalid_argument("auto_tune: ill-formed segmented policy");
  }

  const std::shared_ptr<runtime::Planner> planner =
      opts.planner ? opts.planner : runtime::Planner::shared_default();
  exec::Engine engine(opts.engine);
  engine.prewarm(*std::max_element(opts.Ps.begin(), opts.Ps.end()));

  TuneReport report;
  for (const int P : opts.Ps) {
    Params machine = opts.base;
    machine.P = P;
    machine.require_valid();
    for (const std::size_t bytes : opts.sizes) {
      std::vector<Candidate> candidates =
          build_candidates(opts, *planner, machine, bytes);

      // Deterministic payload; per-trial reuse is fine (byte values never
      // influence the move path's timing).
      std::vector<std::byte> payload(std::max<std::size_t>(bytes, 1));
      for (std::size_t i = 0; i < payload.size(); ++i) {
        payload[i] = static_cast<std::byte>((i * 131 + 17) & 0xff);
      }
      const std::vector<exec::Bytes> bulk_items{
          exec::Bytes(payload.begin(), payload.end())};

      // Interleave trials round-robin so drift (thermal, scheduler) hits
      // every candidate alike instead of whichever ran last.
      for (int round = 0; round < opts.warmup + opts.trials; ++round) {
        const bool timed = round >= opts.warmup;
        for (Candidate& c : candidates) {
          exec::ExecReport r;
          if (c.problem == Problem::kKItemBroadcast) {
            r = engine.run_segmented(
                c.program, exec::SegmentRun{payload, c.segments});
          } else {
            r = engine.run(c.program, bulk_items);
          }
          if (timed) {
            c.samples_ns.push_back(static_cast<double>(r.wall_ns));
          }
        }
      }

      SegmentResult seg;
      seg.collective = Collective::kBroadcast;
      seg.P = P;
      seg.bytes = bytes;
      seg.size_class = size_class_of(bytes);
      for (Candidate& c : candidates) {
        CandidateTiming t;
        t.name = c.name;
        t.problem = c.problem;
        t.segments = c.segments;
        t.clusters = c.clusters;
        t.median_ns = median(c.samples_ns);
        seg.timings.push_back(std::move(t));
      }
      std::stable_sort(seg.timings.begin(), seg.timings.end(),
                       [](const CandidateTiming& a, const CandidateTiming& b) {
                         return a.median_ns < b.median_ns;
                       });

      const CandidateTiming& best = seg.timings.front();
      Decision d;
      d.problem = best.problem;
      d.segments = best.segments;
      d.win_ns = best.median_ns;
      if (seg.timings.size() > 1) d.runner_up_ns = seg.timings[1].median_ns;
      if (best.problem == Problem::kHierarchicalBroadcast) {
        d.clusters = best.clusters;
        d.cross_L = opts.cross.L;
        d.cross_o = opts.cross.o;
        d.cross_g = opts.cross.g;
      }
      seg.winner = d;
      report.table.set(
          DecisionKey{Collective::kBroadcast, P, seg.size_class}, d);
      report.segments.push_back(std::move(seg));
    }
  }
  return report;
}

}  // namespace logpc::tune
