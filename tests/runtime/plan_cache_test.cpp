#include "runtime/plan_cache.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace logpc::runtime {
namespace {

/// A distinct key per id: single-item broadcast on a P = id + 1 machine.
PlanKey key_for(int id) {
  return PlanKey::broadcast(Params{id + 1, 1, 0, 1});
}

PlanPtr plan_for(int id) {
  Plan plan;
  plan.key = key_for(id);
  plan.schedule = Schedule(plan.key.params, 1);
  plan.completion = id;
  plan.method = "dummy";
  return std::make_shared<const Plan>(std::move(plan));
}

TEST(PlanCache, GetReturnsWhatPutStored) {
  PlanCache cache(8, 2);
  EXPECT_EQ(cache.get(key_for(1)), nullptr);
  cache.put(key_for(1), plan_for(1));
  const PlanPtr hit = cache.get(key_for(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->completion, 1);
  EXPECT_TRUE(cache.contains(key_for(1)));
  EXPECT_FALSE(cache.contains(key_for(2)));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCache, EvictsLeastRecentlyUsedFirst) {
  // One shard so the LRU order is global and exact.
  PlanCache cache(3, 1);
  cache.put(key_for(0), plan_for(0));
  cache.put(key_for(1), plan_for(1));
  cache.put(key_for(2), plan_for(2));
  // Touch 0: recency order (most->least) is now 0, 2, 1.
  ASSERT_NE(cache.get(key_for(0)), nullptr);
  cache.put(key_for(3), plan_for(3));  // evicts 1
  EXPECT_FALSE(cache.contains(key_for(1)));
  EXPECT_TRUE(cache.contains(key_for(0)));
  EXPECT_TRUE(cache.contains(key_for(2)));
  EXPECT_TRUE(cache.contains(key_for(3)));
  cache.put(key_for(4), plan_for(4));  // evicts 2 (0 was touched later)
  EXPECT_FALSE(cache.contains(key_for(2)));
  EXPECT_TRUE(cache.contains(key_for(0)));
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(PlanCache, RefreshingAKeyDoesNotGrowOrEvict) {
  PlanCache cache(2, 1);
  cache.put(key_for(0), plan_for(0));
  cache.put(key_for(1), plan_for(1));
  cache.put(key_for(0), plan_for(0));  // refresh, not insert
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().inserts, 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  // 0 is now most recent, so inserting evicts 1.
  cache.put(key_for(2), plan_for(2));
  EXPECT_FALSE(cache.contains(key_for(1)));
  EXPECT_TRUE(cache.contains(key_for(0)));
}

TEST(PlanCache, CountsHitsAndMisses) {
  PlanCache cache(4, 1);
  (void)cache.get(key_for(0));
  cache.put(key_for(0), plan_for(0));
  (void)cache.get(key_for(0));
  (void)cache.get(key_for(0));
  (void)cache.get(key_for(1));
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(PlanCache, EntriesListsMostRecentFirstWithinShard) {
  PlanCache cache(4, 1);
  cache.put(key_for(0), plan_for(0));
  cache.put(key_for(1), plan_for(1));
  cache.put(key_for(2), plan_for(2));
  ASSERT_NE(cache.get(key_for(0)), nullptr);
  const std::vector<PlanPtr> entries = cache.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0]->key, key_for(0));
  EXPECT_EQ(entries[1]->key, key_for(2));
  EXPECT_EQ(entries[2]->key, key_for(1));
}

TEST(PlanCache, ClearDropsEntriesButKeepsCounters) {
  PlanCache cache(4, 2);
  cache.put(key_for(0), plan_for(0));
  (void)cache.get(key_for(0));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.contains(key_for(0)));
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(PlanCache, ShardCountIsClampedToCapacity) {
  PlanCache tiny(2, 16);
  EXPECT_LE(tiny.num_shards(), 2u);
  PlanCache one(5, 0);
  EXPECT_EQ(one.num_shards(), 1u);
}

TEST(PlanCache, RejectsNullPlans) {
  PlanCache cache(4, 1);
  EXPECT_THROW(cache.put(key_for(0), nullptr), std::invalid_argument);
}

TEST(PlanCache, FreshStatsHitRatioIsZeroNotNaN) {
  // Regression: hit_ratio() divides hits by lookups; with zero lookups the
  // naive quotient is 0/0 = NaN, which poisons dashboards and any
  // comparison downstream.  A fresh stats block must report exactly 0.0.
  const CacheStats fresh{};
  EXPECT_EQ(fresh.hits + fresh.misses, 0u);
  EXPECT_FALSE(std::isnan(fresh.hit_ratio()));
  EXPECT_DOUBLE_EQ(fresh.hit_ratio(), 0.0);
}

TEST(PlanCache, HitRatioTracksLookups) {
  PlanCache cache(8, 2);
  EXPECT_DOUBLE_EQ(cache.stats().hit_ratio(), 0.0);  // no lookups yet
  cache.put(key_for(0), plan_for(0));
  ASSERT_NE(cache.get(key_for(0)), nullptr);  // hit
  EXPECT_EQ(cache.get(key_for(1)), nullptr);  // miss
  EXPECT_EQ(cache.get(key_for(2)), nullptr);  // miss
  ASSERT_NE(cache.get(key_for(0)), nullptr);  // hit
  EXPECT_DOUBLE_EQ(cache.stats().hit_ratio(), 0.5);
}

TEST(PlanCache, StatsExposePerShardOccupancy) {
  PlanCache cache(8, 4);
  for (int id = 0; id < 6; ++id) cache.put(key_for(id), plan_for(id));
  const CacheStats s = cache.stats();
  ASSERT_EQ(s.shard_entries.size(), cache.num_shards());
  std::size_t total = 0;
  for (const std::size_t n : s.shard_entries) total += n;
  EXPECT_EQ(total, s.entries);
  EXPECT_EQ(total, cache.size());
}

TEST(PlanCache, ContainsPerturbsNeitherCountersNorRecency) {
  // One shard, capacity 2, so LRU order is global and observable.
  PlanCache cache(2, 1);
  cache.put(key_for(0), plan_for(0));
  cache.put(key_for(1), plan_for(1));
  const CacheStats before = cache.stats();
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(cache.contains(key_for(0)));
    EXPECT_FALSE(cache.contains(key_for(9)));
  }
  const CacheStats after = cache.stats();
  // Counters: contains() must not register as hit or miss.
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_DOUBLE_EQ(after.hit_ratio(), before.hit_ratio());
  // Recency: 0 is still least-recently-used despite the contains() probes,
  // so inserting a third key must evict 0, not 1.
  cache.put(key_for(2), plan_for(2));
  EXPECT_FALSE(cache.contains(key_for(0)));
  EXPECT_TRUE(cache.contains(key_for(1)));
  EXPECT_TRUE(cache.contains(key_for(2)));
}

TEST(PlanCache, ConcurrentMixedTrafficStaysConsistent) {
  PlanCache cache(64, 8);
  constexpr int kThreads = 8;
  constexpr int kKeys = 32;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&cache, t] {
      for (int round = 0; round < 50; ++round) {
        const int id = (t * 7 + round) % kKeys;
        if (PlanPtr hit = cache.get(key_for(id))) {
          EXPECT_EQ(hit->completion, id);
        } else {
          cache.put(key_for(id), plan_for(id));
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_LE(cache.size(), 64u);
  for (const PlanPtr& plan : cache.entries()) {
    EXPECT_EQ(plan->method, "dummy");
  }
}

}  // namespace
}  // namespace logpc::runtime
