#include "svc/scheduler.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

/// Unit tests for the admission core: pure policy over opaque handles, so
/// every property here is exact and deterministic — no threads, no clocks
/// except the ones we pass in.

namespace logpc::svc {
namespace {

/// Admits `n` requests for `tenant` (handles don't matter to the policy).
void fill(Scheduler& s, TenantId tenant, int n, QoS qos = QoS::kBatch) {
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(s.offer(tenant, qos, /*handle=*/0, /*now_sec=*/0.0),
              Admit::kAdmitted);
  }
}

/// Drains every queued request, returning the dispatch order of tenants.
std::vector<TenantId> drain(Scheduler& s) {
  std::vector<TenantId> order;
  TenantId t = -1;
  std::uint64_t h = 0;
  while (s.pick(&t, &h)) order.push_back(t);
  return order;
}

TEST(SvcScheduler, EqualWeightsAlternate) {
  Scheduler s;
  const TenantId a = s.add_tenant({.name = "a"});
  const TenantId b = s.add_tenant({.name = "b"});
  fill(s, a, 10);
  fill(s, b, 10);
  const auto order = drain(s);
  ASSERT_EQ(order.size(), 20u);
  // Stride with equal weights is exact round-robin: any prefix is within
  // one dispatch of an even split.
  int ca = 0, cb = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    (order[i] == a ? ca : cb)++;
    EXPECT_LE(std::abs(ca - cb), 1) << "prefix " << i;
  }
}

TEST(SvcScheduler, WeightedShareMatchesWeights) {
  Scheduler s;
  const TenantId heavy = s.add_tenant({.name = "heavy", .weight = 3});
  const TenantId light = s.add_tenant({.name = "light", .weight = 1});
  fill(s, heavy, 60);
  fill(s, light, 60);
  const auto order = drain(s);
  // While both stay backlogged (first 80 dispatches), heavy gets 3/4.
  int h = 0;
  for (int i = 0; i < 80; ++i) h += order[static_cast<std::size_t>(i)] == heavy;
  EXPECT_NEAR(h, 60, 2);
  (void)light;
}

TEST(SvcScheduler, QoSClassesAreStrictPriority) {
  Scheduler s;
  const TenantId a = s.add_tenant({.name = "a", .queue_capacity = 16});
  ASSERT_EQ(s.offer(a, QoS::kBestEffort, 1, 0.0), Admit::kAdmitted);
  ASSERT_EQ(s.offer(a, QoS::kBatch, 2, 0.0), Admit::kAdmitted);
  ASSERT_EQ(s.offer(a, QoS::kInteractive, 3, 0.0), Admit::kAdmitted);
  ASSERT_EQ(s.offer(a, QoS::kBatch, 4, 0.0), Admit::kAdmitted);
  TenantId t = -1;
  std::uint64_t h = 0;
  std::vector<std::uint64_t> got;
  while (s.pick(&t, &h)) got.push_back(h);
  // Interactive first, then the batch pair in FIFO order, best-effort last.
  EXPECT_EQ(got, (std::vector<std::uint64_t>{3, 2, 4, 1}));
}

TEST(SvcScheduler, InteractiveFromAnyTenantBeatsBatchBacklog) {
  Scheduler s;
  const TenantId bulk = s.add_tenant({.name = "bulk", .queue_capacity = 128});
  const TenantId ui = s.add_tenant({.name = "ui"});
  fill(s, bulk, 50);
  ASSERT_EQ(s.offer(ui, QoS::kInteractive, 99, 0.0), Admit::kAdmitted);
  TenantId t = -1;
  std::uint64_t h = 0;
  ASSERT_TRUE(s.pick(&t, &h));
  EXPECT_EQ(t, ui);
  EXPECT_EQ(h, 99u);
}

TEST(SvcScheduler, FullQueueRejectsWithBackpressure) {
  Scheduler s;
  const TenantId a = s.add_tenant({.name = "a", .queue_capacity = 2});
  EXPECT_EQ(s.offer(a, QoS::kBatch, 1, 0.0), Admit::kAdmitted);
  EXPECT_EQ(s.offer(a, QoS::kInteractive, 2, 0.0), Admit::kAdmitted);
  // The bound spans QoS classes: nothing else fits regardless of class.
  EXPECT_EQ(s.offer(a, QoS::kInteractive, 3, 0.0), Admit::kQueueFull);
  EXPECT_EQ(s.queue_depth(a), 2u);
  TenantId t = -1;
  std::uint64_t h = 0;
  ASSERT_TRUE(s.pick(&t, &h));
  EXPECT_EQ(s.offer(a, QoS::kBatch, 3, 0.0), Admit::kAdmitted);
}

TEST(SvcScheduler, TokenBucketLimitsRate) {
  Scheduler s;
  const TenantId a =
      s.add_tenant({.name = "a", .rate_per_sec = 1.0, .burst = 2.0});
  // A fresh bucket holds the full burst; the third request inside the same
  // instant is over rate.
  EXPECT_EQ(s.offer(a, QoS::kBatch, 1, 10.0), Admit::kAdmitted);
  EXPECT_EQ(s.offer(a, QoS::kBatch, 2, 10.0), Admit::kAdmitted);
  EXPECT_EQ(s.offer(a, QoS::kBatch, 3, 10.0), Admit::kRateLimited);
  // Rejection doesn't queue: depth stays at the two admitted.
  EXPECT_EQ(s.queue_depth(a), 2u);
  // One second later one token has dripped back in.
  EXPECT_EQ(s.offer(a, QoS::kBatch, 4, 11.0), Admit::kAdmitted);
  EXPECT_EQ(s.offer(a, QoS::kBatch, 5, 11.0), Admit::kRateLimited);
}

TEST(SvcScheduler, BurstDefaultsToRate) {
  Scheduler s;
  const TenantId a = s.add_tenant({.name = "a", .rate_per_sec = 3.0});
  EXPECT_EQ(s.config(a).burst, 3.0);
}

TEST(SvcScheduler, IdleTenantCannotHoardCredit) {
  Scheduler s;
  const TenantId busy = s.add_tenant({.name = "busy", .queue_capacity = 256});
  const TenantId idle = s.add_tenant({.name = "idle", .queue_capacity = 256});
  // `busy` runs alone for a long while, advancing the virtual clock.
  fill(s, busy, 100);
  ASSERT_EQ(drain(s).size(), 100u);
  // `idle` wakes with a backlog.  Without the vtime rejoin it would hold
  // pass = 0 and monopolize the next ~100 dispatches; with it, service is
  // immediately fair.
  fill(s, busy, 20);
  fill(s, idle, 20);
  const auto order = drain(s);
  int first_idle = 0;
  for (int i = 0; i < 10; ++i) {
    first_idle += order[static_cast<std::size_t>(i)] == idle;
  }
  EXPECT_LE(first_idle, 6);
  EXPECT_GE(first_idle, 4);
}

TEST(SvcScheduler, LateTenantJoinsAtCurrentVirtualTime) {
  Scheduler s;
  const TenantId old_t = s.add_tenant({.name = "old", .queue_capacity = 256});
  fill(s, old_t, 50);
  ASSERT_EQ(drain(s).size(), 50u);
  const TenantId young = s.add_tenant({.name = "young", .queue_capacity = 256});
  fill(s, old_t, 20);
  fill(s, young, 20);
  const auto order = drain(s);
  int young_first10 = 0;
  for (int i = 0; i < 10; ++i) {
    young_first10 += order[static_cast<std::size_t>(i)] == young;
  }
  EXPECT_LE(young_first10, 6);
}

TEST(SvcScheduler, UnknownTenantThrows) {
  Scheduler s;
  EXPECT_THROW((void)s.offer(0, QoS::kBatch, 1, 0.0), std::invalid_argument);
  EXPECT_THROW((void)s.queue_depth(7), std::invalid_argument);
  TenantId t = -1;
  std::uint64_t h = 0;
  EXPECT_FALSE(s.pick(&t, &h));
}

TEST(SvcScheduler, TakeRemovesTheNamedRequestAndChargesStride) {
  Scheduler s;
  const TenantId a = s.add_tenant({.name = "a", .queue_capacity = 16});
  ASSERT_EQ(s.offer(a, QoS::kBatch, 10, 0.0), Admit::kAdmitted);
  ASSERT_EQ(s.offer(a, QoS::kBatch, 11, 0.0), Admit::kAdmitted);
  ASSERT_EQ(s.offer(a, QoS::kBatch, 12, 0.0), Admit::kAdmitted);
  // Claim the middle request out of band, as the fusion batcher does.
  EXPECT_TRUE(s.take(a, QoS::kBatch, 11));
  EXPECT_EQ(s.queue_depth(a), 2u);
  EXPECT_EQ(s.queued(), 2u);
  // The remaining requests still dispatch in FIFO order, minus the taken one.
  TenantId t = -1;
  std::uint64_t h = 0;
  ASSERT_TRUE(s.pick(&t, &h));
  EXPECT_EQ(h, 10u);
  ASSERT_TRUE(s.pick(&t, &h));
  EXPECT_EQ(h, 12u);
  EXPECT_FALSE(s.pick(&t, &h));
}

TEST(SvcScheduler, TakeChargesFairShareLikePick) {
  // Requests claimed via take() (fusion siblings) must cost their tenant
  // the same stride charge a pick would: after consuming 40 dispatches'
  // worth of service through one pick + 39 takes, the tenant owes the
  // untouched competitor the whole next round — it cannot treat the fused
  // batch as a single dispatch and immediately reclaim the engine.
  Scheduler s;
  const TenantId fused = s.add_tenant({.name = "fused", .queue_capacity = 64});
  const TenantId other = s.add_tenant({.name = "other", .queue_capacity = 64});
  fill(s, fused, 40);
  TenantId t = -1;
  std::uint64_t h = 0;
  ASSERT_TRUE(s.pick(&t, &h));
  for (int i = 0; i < 39; ++i) {
    ASSERT_TRUE(s.take(fused, QoS::kBatch, 0));
  }
  EXPECT_EQ(s.queued(), 0u);
  fill(s, fused, 20);
  fill(s, other, 20);
  const auto order = drain(s);
  int fused_first20 = 0;
  for (int i = 0; i < 20; ++i) {
    fused_first20 += order[static_cast<std::size_t>(i)] == fused;
  }
  // `other` has 40 strides of credit over `fused`, so its whole backlog
  // drains first.  Were take() free, `fused` would alternate here.
  EXPECT_EQ(fused_first20, 0);
}

TEST(SvcScheduler, TakeReturnsFalseForUnknownHandleOrClass) {
  Scheduler s;
  const TenantId a = s.add_tenant({.name = "a", .queue_capacity = 16});
  ASSERT_EQ(s.offer(a, QoS::kBatch, 5, 0.0), Admit::kAdmitted);
  EXPECT_FALSE(s.take(a, QoS::kBatch, 99));        // no such handle
  EXPECT_FALSE(s.take(a, QoS::kInteractive, 5));   // wrong class
  EXPECT_EQ(s.queue_depth(a), 1u);
  EXPECT_THROW((void)s.take(7, QoS::kBatch, 5), std::invalid_argument);
}

TEST(SvcScheduler, WeightAndCapacityAreClampedToOne) {
  Scheduler s;
  const TenantId a = s.add_tenant({.name = "a", .weight = 0,
                                   .queue_capacity = 0});
  EXPECT_EQ(s.config(a).weight, 1u);
  EXPECT_EQ(s.config(a).queue_capacity, 1u);
  EXPECT_EQ(s.offer(a, QoS::kBatch, 1, 0.0), Admit::kAdmitted);
  EXPECT_EQ(s.offer(a, QoS::kBatch, 2, 0.0), Admit::kQueueFull);
}

}  // namespace
}  // namespace logpc::svc
