#pragma once

#include <vector>

#include "sched/schedule.hpp"

/// \file trace.hpp
/// Per-processor activity extraction: converts a Schedule into the busy
/// intervals each processor experiences, the data behind the activity
/// charts of Figure 1 (right) and Figure 6 (left).

namespace logpc::sim {

enum class ActivityKind {
  kSendOverhead,  ///< o cycles committing a message to the network
  kRecvOverhead,  ///< o cycles accepting a message from the network
};

/// One busy interval [begin, end) on one processor.
struct Activity {
  ActivityKind kind = ActivityKind::kSendOverhead;
  Time begin = 0;
  Time end = 0;
  ItemId item = 0;
  ProcId peer = kNoProc;  ///< the other endpoint of the transmission
};

/// All activities of a machine, indexed by processor, each sorted by begin.
struct Trace {
  std::vector<std::vector<Activity>> per_proc;

  /// Extracts the trace implied by `s` under LogP timing.  For o == 0 the
  /// overhead intervals are zero-length points (kept — renderers mark them
  /// as instants).
  static Trace from(const Schedule& s);

  /// Total busy cycles of processor `p`.
  [[nodiscard]] Time busy_cycles(ProcId p) const;
};

}  // namespace logpc::sim
