#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "exec/engine.hpp"
#include "exec/kernels.hpp"
#include "svc/request.hpp"

/// \file fusion.hpp
/// The throughput subsystem's pure half: deciding which queued requests
/// may share one engine run (fusion), how a large payload splits into the
/// Section 3 k-item pipeline (segmentation), and how one fused run's
/// result fans back out into per-request reports.  Everything here is
/// plain data transformation — no locks, no threads — so the byte-
/// exactness contract ("a fused run is bitwise identical to N independent
/// runs") is testable without a service instance.
///
/// Why concatenation is exact: every op the service serves is elementwise
/// along the payload axis.  A broadcast moves bytes verbatim; a typed
/// reduce kernel folds acc[i] <- op(acc[i], rhs[i]) with no coupling
/// between element positions (fusion additionally requires each request's
/// chunk to be a whole number of elements, so concatenation never moves an
/// element boundary across a request seam); a generic reduce fuses only
/// under an explicit Request::combine_tag, and the fused combiner applies
/// the original operator independently per request-sized chunk.  In every
/// case the fused run performs the same fold steps on the same schedule in
/// the same order as each unfused run would, just over wider buffers — so
/// slicing the result at request boundaries recovers each request's exact
/// unfused bytes.

namespace logpc::svc {

/// Identity of a fusible request shape: two requests coalesce into one
/// engine run iff their keys compare equal.  Tenant deliberately absent —
/// fusion is cross-tenant (fairness is settled at claim time, where the
/// scheduler charges each member's stride pass); QoS deliberately present —
/// a batch never mixes classes, so class-level policy (opt-out, metrics)
/// stays exact.
struct FusionKey {
  OpKind op = OpKind::kBroadcast;
  QoS qos = QoS::kBatch;
  ProcId root = 0;          ///< kBroadcast/kReduce; 0 for kAllgather
  std::size_t bytes = 0;    ///< broadcast: payload size; else per-proc value
  std::size_t procs = 0;    ///< kReduce/kAllgather: values.size() shape guard
  bool typed = false;       ///< kReduce: typed-kernel combiner?
  exec::KernelSpec spec{};  ///< kReduce typed identity
  std::string tag;          ///< kReduce generic identity (combine_tag)

  friend bool operator==(const FusionKey&, const FusionKey&) = default;
};

/// The request's fusion identity, or nullopt when it must run alone:
/// empty/ragged inputs, a typed reduce whose chunk splits an element, or a
/// generic reduce without a combine_tag.
[[nodiscard]] std::optional<FusionKey> fusion_key(const Request& request);

/// Segmentation policy knobs (mirrored from CollectiveService::Options so
/// the pure layer stays service-free).
struct SegmentPolicy {
  std::size_t threshold = 256 * 1024;  ///< split at/above this; 0 disables
  std::size_t segment_bytes = 64 * 1024;  ///< target bytes per segment
  int max_segments = 16;
};

/// Segments for a broadcast of `total_bytes`: 1 below the threshold (or
/// when disabled), else ceil(total/segment_bytes) clamped to [2,
/// max_segments].
[[nodiscard]] int choose_segments(std::size_t total_bytes,
                                  const SegmentPolicy& policy);

/// Splits `payload` into `segments` contiguous pieces, sizes balanced to
/// within one byte, concatenation-ordered (segment i precedes i+1).
[[nodiscard]] std::vector<exec::Bytes> split_segments(
    const exec::Bytes& payload, int segments);

/// Fused broadcast payload: members' payloads concatenated in batch order.
[[nodiscard]] exec::Bytes concat_payloads(
    const std::vector<const Request*>& members);

/// Fused reduce/allgather inputs: per processor, members' values[p]
/// concatenated in batch order.
[[nodiscard]] std::vector<exec::Bytes> concat_values(
    const std::vector<const Request*>& members);

/// The combiner a fused reduce runs with.  Typed combiners pass through —
/// the elementwise kernel is chunk-oblivious — while a generic combiner is
/// wrapped to apply the original operator independently per `chunk`-sized
/// slice, preserving each member's exact fold bytes.
[[nodiscard]] exec::Combiner fused_combiner(const Request& exemplar,
                                            std::size_t chunk,
                                            std::size_t count);

/// Member `index`'s view of a fused (and/or segmented) run: scalar
/// telemetry copied from the shared run, result buffers reassembled
/// (segments concatenated) and sliced to the member's `chunk` bytes.
/// Event/delivery/fault logs are left empty — they describe the batch, not
/// any one member; the shared Response::profile carries them.  With
/// count <= 1 the slice degenerates to the full reassembled payload (the
/// solo segmented path).
[[nodiscard]] exec::ExecReport member_report(const exec::ExecReport& run,
                                             OpKind op, std::size_t chunk,
                                             std::size_t index,
                                             std::size_t count);

}  // namespace logpc::svc
