file(REMOVE_RECURSE
  "CMakeFiles/test_bcast_search.dir/search/bcast_search_test.cpp.o"
  "CMakeFiles/test_bcast_search.dir/search/bcast_search_test.cpp.o.d"
  "test_bcast_search"
  "test_bcast_search.pdb"
  "test_bcast_search[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bcast_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
