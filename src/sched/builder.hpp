#pragma once

#include <vector>

#include "sched/schedule.hpp"

/// \file builder.hpp
/// Incremental, constraint-aware schedule construction.
///
/// The builder tracks, per processor, every send start and receive start
/// committed so far, plus the availability of each item, and can answer
/// "when is the earliest legal cycle processor p can start a send?" — the
/// primitive behind the paper's guiding idea that "all informed processors
/// should send the datum to uninformed processors as early and as
/// frequently as possible".
///
/// The builder enforces the *strict* model: receives happen exactly at
/// message arrival.  Buffered schedules (Theorem 3.8) are assembled directly
/// on Schedule with explicit recv_start values.

namespace logpc {

class ScheduleBuilder {
 public:
  ScheduleBuilder(Params params, int num_items);

  [[nodiscard]] const Params& params() const { return sched_.params(); }

  /// Declares `item` available at `proc` from `time` (a source or generated
  /// item).
  void place(ItemId item, ProcId proc, Time time = 0);

  /// First cycle `proc` holds `item`, or kNever.
  [[nodiscard]] Time available(ProcId proc, ItemId item) const;

  /// True iff `proc` may legally begin receive overhead at `recv_start`
  /// given the receives/sends committed so far (gap g between receive
  /// starts; overhead intervals must not overlap when o > 0).
  [[nodiscard]] bool can_recv_at(ProcId proc, Time recv_start) const;

  /// Earliest t >= not_before at which `from` may begin a send: respects the
  /// send gap g and (when o > 0) avoids overlapping its receive overheads.
  [[nodiscard]] Time earliest_send_start(ProcId from, Time not_before) const;

  /// Commits a send of `item` from `from` to `to` starting exactly at
  /// `start`.  Throws std::logic_error if the sender does not hold the item,
  /// the sender slot is illegal, or the receiver cannot accept the arrival —
  /// construction bugs surface at build time, not validation time.
  /// Returns the availability time at the receiver.
  Time send_at(Time start, ProcId from, ProcId to, ItemId item);

  /// Commits a send at the earliest legal start >= not_before such that the
  /// receiver can also accept it (scanning forward in g-steps for the
  /// receiver).  Returns availability time at the receiver.
  Time send_earliest(ProcId from, ProcId to, ItemId item, Time not_before = 0);

  /// Number of sends committed so far by `proc`.
  [[nodiscard]] int sends_from(ProcId proc) const;

  /// Finalizes: sorts sends and returns the schedule (builder left empty).
  Schedule take();

 private:
  Schedule sched_;
  // Per-processor committed send starts / receive starts, kept sorted.
  std::vector<std::vector<Time>> send_starts_;
  std::vector<std::vector<Time>> recv_starts_;
  std::vector<std::vector<Time>> avail_;  // [proc][item]

  [[nodiscard]] bool send_slot_free(ProcId proc, Time start) const;
  void check_proc(ProcId p, const char* what) const;
  void check_item(ItemId i) const;
};

}  // namespace logpc
