#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "logp/params.hpp"

/// \file hier.hpp
/// The hierarchical two-level LogP machine: two link classes over one rank
/// space.  Real multi-socket hosts are not the paper's uniform (L, o, g)
/// network — a pair of ranks on the same socket exchanges messages across a
/// link that is both lower-latency and higher-rate than a pair on different
/// sockets, and Barchet-Estefanel & Mounié (arXiv:cs/0408032) measured
/// collective performance splitting sharply along exactly that line.
///
/// HierParams keeps the flat model's vocabulary and adds the minimum
/// structure that matters: a partition of the P ranks into clusters, an
/// *intra*-cluster parameter class for links inside a cluster, and a
/// *cross*-cluster class for links between clusters.  Every rule of the
/// flat model (send overhead, wire latency, gap, capacity) applies per
/// link, using the class of that link.
///
/// Conventions:
///  * `intra.P` is the total rank count P (the machine size);
///  * `cross.P` is the cluster count C (the size of the leader-level
///    machine a hierarchical planner schedules across);
///  * `cluster_of[r]` is rank r's cluster id in [0, C).
///
/// The canonical cache spelling (runtime::PlanKey) supports the *uniform*
/// machine only — C balanced contiguous blocks, as built by uniform() —
/// because a general rank->cluster map cannot live in a fixed-size key.
/// Everything else in this header works for arbitrary partitions.

namespace logpc {

struct HierParams {
  Params intra;  ///< intra-cluster link class; intra.P = total ranks
  Params cross;  ///< cross-cluster link class; cross.P = cluster count
  std::vector<int> cluster_of;  ///< rank -> cluster id, size intra.P

  /// Total rank count.
  [[nodiscard]] int P() const { return intra.P; }
  /// Cluster count.
  [[nodiscard]] int num_clusters() const { return cross.P; }

  /// The canonical uniform machine: `clusters` balanced contiguous blocks
  /// of `P` ranks (the first P % clusters blocks hold one extra rank).
  /// `intra_class` / `cross_class` carry (L, o, g); their P fields are
  /// overwritten with P and `clusters` respectively.  Throws
  /// std::invalid_argument for P < 1, clusters outside [1, P], or invalid
  /// link classes.
  [[nodiscard]] static HierParams uniform(int P, int clusters,
                                          const Params& intra_class,
                                          const Params& cross_class);

  /// True iff this partition is exactly the uniform() spelling for its
  /// (P, clusters) — the only form the plan-cache key can carry.
  [[nodiscard]] bool is_uniform_blocks() const;

  /// True iff both classes are legal machines, the cluster map covers all
  /// P ranks with ids exactly 0..C-1, and every cluster is non-empty.
  [[nodiscard]] bool valid() const;
  /// Throws std::invalid_argument when !valid().
  void require_valid() const;

  [[nodiscard]] bool same_cluster(ProcId a, ProcId b) const {
    return cluster_of[static_cast<std::size_t>(a)] ==
           cluster_of[static_cast<std::size_t>(b)];
  }

  /// The link class governing a transmission from `from` to `to`.
  [[nodiscard]] const Params& link(ProcId from, ProcId to) const {
    return same_cluster(from, to) ? intra : cross;
  }

  /// Cycles from send start to availability at the receiver over the
  /// (from, to) link: o + L + o of that link's class.
  [[nodiscard]] Time transfer_time(ProcId from, ProcId to) const {
    return link(from, to).transfer_time();
  }

  /// Ranks of cluster `c`, increasing.
  [[nodiscard]] std::vector<ProcId> members(int c) const;

  /// The lowest rank of cluster `c` — the rank hierarchical schedules use
  /// as the cluster's representative on the leader-level machine.
  [[nodiscard]] ProcId leader(int c) const;

  /// The conservative single-class projection: the flat machine a
  /// topology-blind consumer can assume without ever under-charging a
  /// link (element-wise max of the two classes).  Hierarchical schedules
  /// are stated on this machine, with per-send explicit receive times
  /// carrying the class-accurate timing.
  [[nodiscard]] Params flat() const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const HierParams&, const HierParams&) = default;
};

std::ostream& operator<<(std::ostream& os, const HierParams& h);

}  // namespace logpc
