file(REMOVE_RECURSE
  "CMakeFiles/test_continuous.dir/bcast/continuous_test.cpp.o"
  "CMakeFiles/test_continuous.dir/bcast/continuous_test.cpp.o.d"
  "test_continuous"
  "test_continuous.pdb"
  "test_continuous[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_continuous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
