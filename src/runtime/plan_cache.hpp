#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/plan_key.hpp"
#include "sched/schedule.hpp"

/// \file plan_cache.hpp
/// The sharded, thread-safe LRU cache at the heart of the planning runtime.
/// Values are immutable `shared_ptr<const Plan>`: a hit hands back the same
/// plan every concurrent reader holds, eviction never invalidates a plan a
/// caller still uses, and snapshots (snapshot.hpp) serialize entries
/// without copying schedules.
///
/// Sharding: a key's hash picks one of N independent shards, each with its
/// own mutex, hash map, and LRU list, so concurrent planners on different
/// keys rarely contend.  Capacity is divided evenly across shards, so
/// eviction order is per-shard LRU (global LRU up to shard granularity);
/// construct with num_shards = 1 when exact global LRU order matters.

namespace logpc::runtime {

class ImplicitPlan;

/// An immutable planning result: the canonical key, the schedule, its exact
/// completion, and the scalar by-products the rich builder results carry
/// (so api::Communicator can reconstitute them from a cached plan).
///
/// Two representations coexist:
///  * `schedule` — the materialized per-op IR, present iff `materialized`;
///  * `implicit` — the O(log P) generator form (implicit_plan.hpp), present
///    whenever ImplicitPlan::supports(key).
/// Small plans carry both (implicit is validated against materialized by
/// the property suite); past Planner::Options::materialize_threshold the
/// planner stores the implicit form alone, which is what makes million-rank
/// cache entries O(log P)-sized.  Use runtime::plan_schedule(plan) when you
/// need a Schedule regardless of representation.
struct Plan {
  PlanKey key;
  Schedule schedule;  ///< empty unless `materialized`
  std::shared_ptr<const ImplicitPlan> implicit;  ///< null when unsupported
  bool materialized = true;  ///< is `schedule` populated?
  Time completion = 0;
  std::string method;        ///< construction label ("block-cyclic", ...)
  int slack = 0;             ///< k-item: extra delay over the optimal
  int max_buffer_depth = 0;  ///< buffered k-item: worst buffer occupancy
  std::uint64_t total_operands = 0;  ///< summation: operands by deadline
};

using PlanPtr = std::shared_ptr<const Plan>;

/// Point-in-time counter snapshot, aggregated over all shards.
///
/// Only get() moves hits/misses: contains() is a pure predicate that never
/// perturbs recency or ratios (the plan-cache tests assert this), so
/// monitoring code can probe membership without skewing the stats it reads.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;     ///< get() calls that found nothing
  std::uint64_t inserts = 0;    ///< put() calls that added a new key
  std::uint64_t evictions = 0;  ///< entries dropped to respect capacity
  std::size_t entries = 0;      ///< current size
  std::vector<std::size_t> shard_entries;  ///< current size per shard

  /// hits / (hits + misses); 0 before any lookup.
  [[nodiscard]] double hit_ratio() const {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

class PlanCache {
 public:
  /// \param capacity   total entry budget, split evenly across shards
  ///                   (each shard holds at least one entry).
  /// \param num_shards concurrency width; clamped to [1, capacity].
  explicit PlanCache(std::size_t capacity = 4096, std::size_t num_shards = 8);

  /// The cached plan for `key` (refreshing its recency), or nullptr.
  /// `count_stats = false` skips the hit/miss counters (recency still
  /// refreshes): for internal re-probes that would otherwise double-count
  /// one logical lookup, e.g. the planner's in-flight-lock recheck.
  [[nodiscard]] PlanPtr get(const PlanKey& key, bool count_stats = true);

  /// Inserts (or refreshes) `plan` under `key`, evicting the shard's
  /// least-recently-used entry when full.  `plan` must not be null.
  void put(const PlanKey& key, PlanPtr plan);

  /// True iff `key` is cached; does not touch recency or counters.
  [[nodiscard]] bool contains(const PlanKey& key) const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  [[nodiscard]] CacheStats stats() const;

  /// Drops every entry (counters are kept).
  void clear();

  /// All cached plans, shard by shard, most- to least-recently used within
  /// each shard.  A snapshot: concurrent mutation after return is fine.
  [[nodiscard]] std::vector<PlanPtr> entries() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<std::pair<PlanKey, PlanPtr>> lru;
    std::unordered_map<PlanKey, std::list<std::pair<PlanKey, PlanPtr>>::iterator,
                       PlanKeyHash>
        map;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
  };

  [[nodiscard]] Shard& shard_for(const PlanKey& key) const {
    return *shards_[key.hash() % shards_.size()];
  }

  std::size_t capacity_;
  std::size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace logpc::runtime
