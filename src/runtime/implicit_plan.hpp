#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "logp/fib.hpp"
#include "logp/params.hpp"
#include "runtime/plan_cache.hpp"
#include "runtime/plan_key.hpp"
#include "sched/schedule.hpp"

/// \file implicit_plan.hpp
/// O(log P)-sized implicit schedules for the regular collectives.
///
/// The materialized planners build every tree node and every SendOp, so
/// plan-build time and plan-cache memory grow linearly with P.  For the
/// *regular* trees — the Section 2 optimal tree, its reversal (the
/// Section 4.2 reduction), and the binomial / binary / chain baselines —
/// the whole structure is determined by (P, L, o, g), and any single
/// rank's role can be recovered from the counting recurrences alone
/// (Träff, "Optimal Broadcast Schedules in Logarithmic Time",
/// arXiv:2407.18004).  An ImplicitPlan stores only those recurrence
/// tables — O(B) = O(log P) words for the optimal tree, O(log^2 P) for
/// the binomial — and answers per-node and per-rank queries on demand:
///
///  * optimal tree: the best-first materialization order of
///    `BroadcastTree::optimal` is exactly the total order by
///    (label, parent index, child rank).  With N(t) = reachable(params, t)
///    (the Definition 2.3 node-counting DP; f_t in the postal model) the
///    index -> label map is a binary search over the cumulative table, and
///    within one label the nodes split into per-child-rank classes whose
///    sizes are N-differences — a strided prefix-sum table over send slots
///    (stride g) resolves parent and children in O(log P).
///  * binomial tree: node indices are BFS order = (depth, lexicographic
///    rank path).  Subtree sizes under the halving construction collapse
///    to at most two values per depth, so a small table of depth-k
///    descendant counts per reachable size turns index <-> rank-path
///    conversion into combinatorial counting, O(log^2 P) per query.
///  * binary / chain: closed-form heap / successor arithmetic.
///  * reduce: the same optimal-tree decode, emitted time-reversed
///    (a parent->child send at tau becomes child->parent at B - label).
///
/// Node indices always refer to the deterministic order of the
/// materialized builder, so implicit and materialized plans agree node by
/// node, schedule by schedule — the property suite asserts equality, and
/// exec::compile_implicit produces streams byte-equivalent to the
/// materialized compilers.

namespace logpc::runtime {

/// Everything one rank does under an implicit plan, generated on demand.
/// The ops are exactly the materialized schedule's SendOps touching this
/// rank, in per-rank stream order (receives by payload-available cycle,
/// sends by start cycle).
struct RankSchedule {
  ProcId proc = kNoProc;
  std::int64_t node = 0;          ///< tree-node index (0 = tree root)
  std::int64_t parent_node = -1;  ///< -1 for the tree root
  ProcId parent = kNoProc;        ///< peer proc on the parent link
  int child_rank = 0;             ///< which child of the parent this node is
  /// Broadcast: the cycle the item lands here (0 at the root).  Reduce:
  /// the cycle this rank's accumulator departs (== completion at the root).
  Time informed_at = 0;
  std::vector<SendOp> recvs;  ///< inbound ops (op.to == proc), time order
  std::vector<SendOp> sends;  ///< outbound ops (op.from == proc), time order
};

/// Compact generator form of a regular collective plan; immutable and
/// cheap to share.  Build once per PlanKey (the Planner caches it inside
/// the Plan), query from any thread.
class ImplicitPlan {
 public:
  /// True iff `key` has an implicit form: kBroadcast, kReduce,
  /// kBinomialBroadcast, kBinaryBroadcast or kChainBroadcast with full
  /// membership (mask == 0).  Everything else falls back to the
  /// materialized IR.
  [[nodiscard]] static bool supports(const PlanKey& key);

  /// Builds the O(log P) tables for a supported key.  Throws
  /// std::invalid_argument when !supports(key).
  [[nodiscard]] static ImplicitPlan build(const PlanKey& key);

  [[nodiscard]] const PlanKey& plan_key() const { return key_; }
  [[nodiscard]] const Params& params() const { return key_.params; }
  [[nodiscard]] bool is_reduction() const { return reverse_; }
  [[nodiscard]] std::int64_t num_nodes() const { return P_; }

  /// The plan's exact completion cycle: B(P) for the optimal tree and its
  /// reversal, the tree makespan for the baselines.
  [[nodiscard]] Time completion() const { return completion_; }

  /// Heap footprint of the recurrence tables (the whole point: O(log P),
  /// not O(P)).
  [[nodiscard]] std::size_t memory_bytes() const;

  // --- node-space queries ------------------------------------------------
  // Nodes are indexed in the materialized builder's deterministic order;
  // node 0 is the tree root.  All run in O(log P) (O(log^2 P) binomial).

  /// The node's broadcast delay relative to the root (TreeNode::label).
  [[nodiscard]] Time label(std::int64_t node) const;
  /// Parent node index; -1 for the root.
  [[nodiscard]] std::int64_t parent(std::int64_t node) const;
  /// Which child of its parent this node is (0 = oldest); 0 for the root.
  [[nodiscard]] int child_rank(std::int64_t node) const;
  /// Number of children of `node` inside the P-node tree.
  [[nodiscard]] int num_children(std::int64_t node) const;
  /// Index of the rank-i child, or -1 when that child falls outside the
  /// P-node tree.
  [[nodiscard]] std::int64_t child(std::int64_t node, int rank) const;
  /// All children in rank order (size == num_children(node)).
  [[nodiscard]] std::vector<std::int64_t> children(std::int64_t node) const;

  // --- proc mapping ------------------------------------------------------
  // BroadcastTree::to_schedule's root swap: node 0 maps to the key's root,
  // the rest fill in index order skipping the root's id.

  [[nodiscard]] ProcId proc_of_node(std::int64_t node) const;
  [[nodiscard]] std::int64_t node_of_proc(ProcId proc) const;

  /// The full per-rank instruction pattern: O(log P) time and output size
  /// (out-degrees of all supported trees are O(log P)).
  [[nodiscard]] RankSchedule rank_schedule(ProcId proc) const;

  /// O(P log P) materialization, equal (by Schedule::operator==) to the
  /// materialized builder's schedule for the same key.  For equivalence
  /// tests and fallbacks; large-P callers should stay implicit.
  [[nodiscard]] Schedule to_schedule() const;

 private:
  enum class Family : std::uint8_t { kOptimal, kBinomial, kBinary, kChain };

  ImplicitPlan() = default;

  void build_optimal_tables();
  void build_binomial_tables();
  [[nodiscard]] Time binary_subtree_max_label(std::int64_t node) const;

  // Optimal-tree helpers over the cumulative node-count table.
  [[nodiscard]] Count nodes_through(Time t) const;  ///< N(t); 0 for t < 0
  [[nodiscard]] Time label_of_index(std::int64_t node) const;
  struct OptParent {
    Time label = 0;
    std::int64_t parent = -1;
    int rank = 0;
  };
  /// One decode resolving label, parent index and child rank together.
  [[nodiscard]] OptParent optimal_parent(std::int64_t node) const;

  // Binomial helpers.
  struct BinomialPath {
    int depth = 0;
    std::vector<int> ranks;  ///< rank path from the root, size == depth
    std::vector<int> sizes;  ///< subtree size at each step, size == depth
  };
  [[nodiscard]] static std::vector<int> binomial_child_sizes(int size);
  [[nodiscard]] BinomialPath binomial_decode(std::int64_t node) const;
  [[nodiscard]] std::int64_t binomial_descendants(int size, int depth) const;
  [[nodiscard]] std::int64_t binomial_index(const BinomialPath& path,
                                            int depth) const;

  PlanKey key_;
  Family family_ = Family::kOptimal;
  bool reverse_ = false;  ///< emit time-reversed (kReduce)
  std::int64_t P_ = 1;
  Time T_ = 0;  ///< transfer time L + 2o
  Time g_ = 1;
  Time completion_ = 0;

  // kOptimal / reverse: cumulative node counts of the universal tree,
  // cum_[t] = N(t) for t in [0, B], plus the per-send-slot strided prefix
  // sums strided_[t] = (N(t) - N(t-1)) + strided_[t - g].
  std::vector<Count> cum_;
  std::vector<Count> strided_;

  // kBinomial: descendant counts per reachable subtree size.
  // desc_[size][k] = number of depth-k descendants of a size-`size`
  // subtree root (desc_[s][0] == 1); level_start_[d] = index of the first
  // depth-d node.  At most two sizes per halving depth are reachable, so
  // both tables are O(log^2 P).
  std::unordered_map<int, std::vector<std::int64_t>> desc_;
  std::vector<std::int64_t> level_start_;
  int max_depth_ = 0;
};

/// The plan's schedule whether or not it was materialized: a copy of
/// plan.schedule when present, otherwise the implicit form materialized on
/// demand.  Throws std::logic_error for an implicit-only plan without an
/// ImplicitPlan (a corrupt entry).
[[nodiscard]] Schedule plan_schedule(const Plan& plan);

}  // namespace logpc::runtime
