#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "obs/critical_path.hpp"
#include "svc/service.hpp"

/// bench_profile: what does always-on run profiling cost the serving path?
///
/// Two identical single-pool services run the same warm broadcast workload,
/// one with Options::profile on (obs::analyze + flight-recorder record per
/// request, the default) and one with it off.  Requests are timed
/// end-to-end (submit -> future resolution), batches interleave so load
/// noise hits both sides alike, and medians pooled across all rounds
/// squeeze scheduler spikes out.  The analyzer is also timed standalone
/// for the report.
///
/// This bench *gates*: the run exits non-zero when the profiled service's
/// per-request latency exceeds the unprofiled one by more than
/// LOGPC_PROFILE_OVERHEAD_MAX (default 5%) — the acceptance bound for
/// shipping the profiler enabled by default.  BENCH_profile.json records
/// the measured overhead either way.

namespace logpc::bench {
namespace {

using Clock = std::chrono::steady_clock;

constexpr int kWarmup = 64;
constexpr int kBatch = 160;
constexpr int kRounds = 5;

Params machine() { return Params{8, 4, 1, 2}; }

exec::Bytes payload() {
  // 16 KiB: enough payload that the request does real memcpy work, while
  // the analyzer's input (one event per send/recv) stays the same size.
  return exec::Bytes(16 * 1024, std::byte{0x5a});
}

svc::Request bcast_request() {
  svc::Request r;
  r.op = svc::OpKind::kBroadcast;
  r.payload = payload();
  return r;
}

double median(std::vector<double> v) {
  if (v.empty()) return 0;
  std::nth_element(v.begin(), v.begin() + static_cast<long>(v.size() / 2),
                   v.end());
  return v[v.size() / 2];
}

/// Runs `n` requests, appending each per-request latency (ns) to `out`.
void run_batch(svc::CollectiveService& svc, svc::TenantId tenant, int n,
               std::vector<double>* out = nullptr) {
  for (int i = 0; i < n; ++i) {
    svc::SubmitResult sub = svc.submit(tenant, bcast_request());
    if (!sub.accepted()) {
      std::cerr << "bench_profile: submit rejected\n";
      std::exit(2);
    }
    const svc::Response r = sub.response.get();
    if (r.status != svc::Status::kOk) {
      std::cerr << "bench_profile: run failed: " << r.error << "\n";
      std::exit(2);
    }
    if (out != nullptr) out->push_back(static_cast<double>(r.total_ns));
  }
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atof(v) : fallback;
}

int run() {
  svc::CollectiveService::Options base;
  base.pools = 1;

  svc::CollectiveService::Options off = base;
  off.profile = false;
  svc::CollectiveService svc_off(machine(), off);
  const svc::TenantId t_off =
      svc_off.register_tenant({.name = "bench-off", .queue_capacity = 4096});

  svc::CollectiveService::Options on = base;  // profile defaults to true
  svc::CollectiveService svc_on(machine(), on);
  const svc::TenantId t_on =
      svc_on.register_tenant({.name = "bench-on", .queue_capacity = 4096});

  // Warm both paths: resident threads, recycled run contexts, compiled
  // programs — the steady state a daemon actually serves from.
  run_batch(svc_off, t_off, kWarmup);
  run_batch(svc_on, t_on, kWarmup);

  // Interleaved rounds, latencies pooled across rounds: scheduler spikes hit
  // both sides alike, and the pooled median is a far lower-variance estimate
  // of each side's typical cost than any single round's statistic.
  std::vector<double> off_all, on_all;
  off_all.reserve(static_cast<std::size_t>(kBatch) * kRounds);
  on_all.reserve(static_cast<std::size_t>(kBatch) * kRounds);
  Table table({"round", "profile off (ns)", "profile on (ns)", "ratio"});
  for (int round = 0; round < kRounds; ++round) {
    std::vector<double> off_round, on_round;
    run_batch(svc_off, t_off, kBatch, &off_round);
    run_batch(svc_on, t_on, kBatch, &on_round);
    const double o = median(off_round);
    const double p = median(on_round);
    table.row(round, o, p, p / o);
    off_all.insert(off_all.end(), off_round.begin(), off_round.end());
    on_all.insert(on_all.end(), on_round.begin(), on_round.end());
  }
  const double off_ns = median(std::move(off_all));
  const double on_ns = median(std::move(on_all));
  const double overhead = on_ns / off_ns - 1.0;

  // The analyzer alone, on a representative warm-path report.
  svc::SubmitResult sub = svc_on.submit(t_on, bcast_request());
  const svc::Response sample = sub.response.get();
  constexpr int kAnalyzeIters = 512;
  const auto t0 = Clock::now();
  for (int i = 0; i < kAnalyzeIters; ++i) {
    const obs::RunProfile p = obs::analyze(sample.report);
    ::benchmark::DoNotOptimize(p.critical_path_ns);
  }
  const double analyze_ns =
      std::chrono::duration<double, std::nano>(Clock::now() - t0).count() /
      kAnalyzeIters;

  section("profiling overhead on the warm service path (P=8 broadcast)");
  table.print();
  std::cout << "\npooled median: off=" << off_ns << "ns on=" << on_ns
            << "ns overhead=" << overhead * 100 << "%\n"
            << "obs::analyze alone: " << analyze_ns << "ns per run\n";

  JsonReport report("profile");
  report.entry("warm_path_overhead",
               {{"P", "8"}, {"op", "broadcast"}, {"payload", "16384"}},
               {{"profile_off_ns", off_ns},
                {"profile_on_ns", on_ns},
                {"overhead_frac", overhead}});
  report.entry("analyze_standalone", {{"P", "8"}, {"op", "broadcast"}},
               {{"analyze_ns", analyze_ns}});
  const std::string path = report.write();
  std::cout << (path.empty() ? "FAILED to write bench json"
                             : "bench json: " + path)
            << "\n";

  const double budget = env_double("LOGPC_PROFILE_OVERHEAD_MAX", 0.05);
  if (overhead > budget) {
    std::cerr << "bench_profile: FAIL — profiling overhead "
              << overhead * 100 << "% exceeds the " << budget * 100
              << "% budget\n";
    return 1;
  }
  std::cout << "bench_profile: OK — overhead " << overhead * 100
            << "% within the " << budget * 100 << "% budget\n";
  return 0;
}

}  // namespace
}  // namespace logpc::bench

int main() { return logpc::bench::run(); }
