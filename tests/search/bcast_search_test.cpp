#include "search/bcast_search.hpp"

#include <gtest/gtest.h>

#include "bcast/kitem.hpp"
#include "bcast/kitem_bounds.hpp"
#include "bcast/tree.hpp"
#include "sched/metrics.hpp"
#include "validate/checker.hpp"

namespace logpc::search {
namespace {

TEST(Search, SingleItemMatchesBOfP) {
  // Exhaustive search certifies Theorem 2.1 on small instances: the true
  // optimum equals the closed-form B(P-1) + L (source to P-1 receivers).
  for (const Time L : {1, 2, 3}) {
    const Fib fib(L);
    for (int P = 2; P <= 6; ++P) {
      const auto t = min_completion(P, L, 1);
      ASSERT_TRUE(t.has_value()) << "P=" << P << " L=" << L;
      EXPECT_EQ(*t, fib.B_of_P(static_cast<Count>(P) - 1) + L)
          << "P=" << P << " L=" << L;
    }
  }
}

TEST(Search, FeasibleIsMonotoneInT) {
  const auto t = min_completion(4, 2, 2);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(feasible(4, 2, 2, *t - 1), std::optional<bool>(false));
  EXPECT_EQ(feasible(4, 2, 2, *t), std::optional<bool>(true));
  EXPECT_EQ(feasible(4, 2, 2, *t + 3), std::optional<bool>(true));
}

TEST(Search, KItemOptimaRespectTheorem31) {
  // The true optimum always sits between the Theorem 3.1 lower bound and
  // our constructive upper bound.
  for (const Time L : {1, 2}) {
    for (int P = 2; P <= 5; ++P) {
      for (int k = 1; k <= 3; ++k) {
        const auto opt = min_completion(P, L, k);
        ASSERT_TRUE(opt.has_value()) << P << " " << L << " " << k;
        const auto b = bcast::kitem_bounds(P, L, k);
        EXPECT_GE(*opt, b.general_lower);
        const auto ours = bcast::kitem_broadcast(P, L, k);
        EXPECT_LE(*opt, ours.completion);
      }
    }
  }
}

TEST(Search, MultiSendingEndgameCanBeatSingleSending) {
  // Theorem 3.2's structure: optimal schedules may have the source resend
  // the last k* items.  Find an instance where the true optimum beats the
  // single-sending lower bound, certifying that the gap is real.
  // P = 5, L = 1, k = 2: B(4) = 2, k* = ?  f = 1,2,4: n with f_n < 4 <=
  // f_{n+1}: n = 1, sum(f_0..f_1) = 3, k* = 0... pick instead P = 3,
  // L = 1, k = 2: B(2) = 1, k* = floor(1/2)... search both and assert
  // consistency with bounds rather than a specific gap.
  for (const auto& [P, k] : {std::pair{3, 2}, std::pair{5, 2}}) {
    const auto opt = min_completion(P, 1, k);
    ASSERT_TRUE(opt.has_value());
    const auto b = bcast::kitem_bounds(P, 1, k);
    EXPECT_GE(*opt, b.general_lower);
    EXPECT_LE(*opt, b.single_sending_lower);
  }
}

TEST(Search, TrivialCases) {
  EXPECT_EQ(feasible(1, 3, 1, 0), std::optional<bool>(true));
  EXPECT_EQ(min_completion(2, 3, 1), std::optional<Time>(3));
  EXPECT_EQ(min_completion(2, 2, 4), std::optional<Time>(5));  // L + k - 1
}

TEST(Search, BudgetExhaustionReturnsNullopt) {
  SearchLimits tiny;
  tiny.max_nodes = 3;
  EXPECT_EQ(feasible(5, 2, 2, 8, tiny), std::nullopt);
}

TEST(Search, OptimalScheduleIsAValidWitness) {
  for (const auto& [P, L, k] :
       {std::tuple{4, 2, 2}, std::tuple{5, 1, 2}, std::tuple{3, 2, 3}}) {
    const auto opt = min_completion(P, L, k);
    ASSERT_TRUE(opt.has_value());
    const auto sched = optimal_schedule(P, L, k);
    ASSERT_TRUE(sched.has_value());
    EXPECT_EQ(logpc::completion_time(*sched), *opt);
    const auto check = logpc::validate::check(
        *sched, {.forbid_duplicate_receive = false});
    EXPECT_TRUE(check.ok()) << check.summary();
  }
}

TEST(Search, OptimalScheduleForSingleItemIsTheOptimalTree) {
  // k = 1 with an unconstrained source: the optimum is the ordinary
  // broadcast B(P) (the source resends freely), *below* the single-sending
  // bound B(P-1) + L.
  const auto sched = optimal_schedule(5, 2, 1);
  ASSERT_TRUE(sched.has_value());
  EXPECT_EQ(logpc::completion_time(*sched),
            bcast::B_of_P(Params::postal(5, 2), 5));
  EXPECT_LT(logpc::completion_time(*sched),
            bcast::B_of_P(Params::postal(5, 2), 4) + 2);
}

TEST(Search, RejectsBadArguments) {
  EXPECT_THROW((void)feasible(0, 1, 1, 3), std::invalid_argument);
  EXPECT_THROW((void)feasible(3, 0, 1, 3), std::invalid_argument);
  EXPECT_THROW((void)feasible(3, 1, 0, 3), std::invalid_argument);
  EXPECT_THROW((void)feasible(3, 1, 17, 3), std::invalid_argument);
}

}  // namespace
}  // namespace logpc::search
