#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/critical_path.hpp"
#include "obs/trace_recorder.hpp"
#include "sim/trace.hpp"

/// \file chrome_trace.hpp
/// Chrome trace-event JSON export, loadable in chrome://tracing and
/// Perfetto (ui.perfetto.dev).  Two sources share one timeline file:
///
///  * runtime spans from a TraceRecorder — wall-clock slices of planner
///    builds, warmup grid points and collective calls, one row per thread;
///  * a simulated schedule's sim::Trace — the per-processor send/recv
///    *overhead* intervals of a LogP schedule, one row per processor, with
///    1 simulated cycle rendered as 1 microsecond.
///
/// Zero-length activities (o == 0 machines) become instant events ("ph":
/// "i"), which the viewers draw as markers rather than invisible slices.

namespace logpc::obs {

/// Accumulates trace events from any number of sources, then writes one
/// JSON-object-format file ({"traceEvents": [...], ...}).
class ChromeTraceWriter {
 public:
  /// Adds every retained event of `rec` as a complete ("X") slice under
  /// process id `pid`, with thread-name metadata per recorded tid.
  void add(const TraceRecorder& rec, int pid = 1,
           std::string_view process_name = "logpc runtime");

  /// Adds a simulated timeline: processor p becomes thread p of `pid`,
  /// each Activity a slice named like "send i2 -> p5" with category
  /// "sim.send"/"sim.recv"; one cycle = 1us on the viewer's clock.
  void add(const sim::Trace& trace, int pid = 2,
           std::string_view process_name = "logp simulation");

  /// Adds a profiled run as per-rank component tracks: rank p becomes
  /// thread p of `pid`, every Phase a slice named for its component and
  /// color-coded by the viewer's palette (cname) so the o / L / g phases —
  /// send/recv overhead, latency waits, gap stalls, folds, ack blocks —
  /// read at a glance.  The critical path lands on one extra track
  /// (tid = P) so the gating chain is visible next to the ranks it
  /// threads through.
  void add(const RunProfile& profile, int pid = 3,
           std::string_view process_name = "run profile");

  [[nodiscard]] std::size_t num_events() const { return events_.size(); }

  void write(std::ostream& os) const;
  [[nodiscard]] std::string json() const;

 private:
  void add_process_name(int pid, std::string_view name);
  void add_thread_name(int pid, std::uint32_t tid, std::string_view name);

  std::vector<std::string> events_;  ///< pre-rendered JSON objects
};

/// One-source conveniences.
void write_chrome_trace(const TraceRecorder& rec, std::ostream& os);
void write_chrome_trace(const sim::Trace& trace, std::ostream& os);

}  // namespace logpc::obs
