#pragma once

#include <map>
#include <vector>

#include "logp/fib.hpp"
#include "logp/params.hpp"
#include "sched/schedule.hpp"

/// \file tree.hpp
/// The universal optimal broadcast tree of Section 2.
///
/// Definition 2.3: the infinite labelled ordered tree in which the root has
/// label 0 and a node labelled t has children labelled t + i*g + L + 2o for
/// i >= 0.  Definition 2.4: the optimal P-processor broadcast tree B(P) is
/// the rooted subtree consisting of the P smallest-labelled nodes (ties
/// broken arbitrarily).  Theorem 2.1: B(P) is optimal for single-item
/// broadcast; its maximum label is the broadcast complexity B(P; L, o, g).

namespace logpc::bcast {

/// One node of a broadcast tree.  Node 0 is always the root.
struct TreeNode {
  Time label = 0;   ///< delay: cycle (relative to the root's) the node is informed
  int parent = -1;  ///< node index of the parent, -1 for the root
  int rank = 0;     ///< which child of the parent (0 = oldest); the parent
                    ///< starts this child's send at parent.label + rank * g
  std::vector<int> children;  ///< node indices, ordered by rank
};

/// A finite prefix of the universal optimal broadcast tree, or any other
/// labelled broadcast tree (baselines reuse this shape).
class BroadcastTree {
 public:
  /// Builds B(P): the P cheapest nodes of the universal tree (Def. 2.4).
  /// Ties are broken deterministically (older parents, lower ranks first).
  static BroadcastTree optimal(const Params& params, int P);

  /// Builds the *t-step* universal tree: every node with label <= t.
  /// Throws std::invalid_argument if that tree would exceed `max_nodes`.
  static BroadcastTree up_to(const Params& params, Time t,
                             std::size_t max_nodes = 1u << 22);

  /// Assembles a tree from explicit parent links (baselines use this).
  /// parents[0] must be -1; labels are computed from the LogP timing given
  /// each parent sends to its children in rank order as early as possible.
  static BroadcastTree from_parents(const Params& params,
                                    const std::vector<int>& parents);

  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] int size() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] const TreeNode& node(int i) const {
    return nodes_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const std::vector<TreeNode>& nodes() const { return nodes_; }

  /// Max label = broadcast completion time B(P) when this is the optimal
  /// tree.
  [[nodiscard]] Time makespan() const;

  /// Histogram: out-degree r -> number of nodes with exactly r children.
  /// Internal nodes (r >= 1) induce the r-blocks of Section 3.2/3.4.
  [[nodiscard]] std::map<int, int> degree_histogram() const;

  /// Histogram: leaf label -> number of leaves with that label.  In the
  /// postal model the t-step tree has leaves at exactly the L distinct
  /// delays t, t-1, ..., t-L+1 — the lower-case letters of Section 3.2.
  [[nodiscard]] std::map<Time, int> leaf_delay_histogram() const;

  /// Emits the broadcast of `item` as a schedule fragment into `out`:
  /// node i is processor proc_of_node[i]; the root holds the item at
  /// `start` (no initial placement is added — callers own that), and each
  /// parent sends to its rank-i child at (parent availability) + i*g.
  void emit(Schedule& out, ItemId item, Time start,
            const std::vector<ProcId>& proc_of_node) const;

  /// Convenience: a complete single-item broadcast schedule from processor
  /// `source`, assigning remaining processors to nodes in label order.
  [[nodiscard]] Schedule to_schedule(ProcId source = 0) const;

 private:
  Params params_{};
  std::vector<TreeNode> nodes_;
};

/// Number of processors reachable by single-item broadcast in t cycles,
/// P(t; L, o, g), computed by dynamic programming on the universal tree
/// (saturating at kSaturated).  In the postal model this equals f_t
/// (Theorem 2.2).
[[nodiscard]] Count reachable(const Params& params, Time t);

/// The whole prefix of the reachability DP in one pass: out[u] = N(u) =
/// reachable(params, u) for u in [0, t] (out.size() == t + 1).  The implicit
/// planner keys its O(log P) decode tables off this table.
[[nodiscard]] std::vector<Count> reachable_prefix(const Params& params,
                                                  Time t);

/// The single-item broadcast complexity B(P; L, o, g): the least t with
/// reachable(t) >= P.
[[nodiscard]] Time B_of_P(const Params& params, int P);

}  // namespace logpc::bcast
