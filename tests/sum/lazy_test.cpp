#include "sum/lazy.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace logpc::sum {
namespace {

using validate::Rule;

bool has_rule(const validate::CheckResult& r, Rule rule) {
  return std::any_of(
      r.violations.begin(), r.violations.end(),
      [rule](const validate::Violation& v) { return v.rule == rule; });
}

SummationPlan good_plan() { return optimal_summation(Params{8, 5, 2, 4}, 28); }

TEST(LazyChecker, AcceptsOptimalPlans) {
  for (const Params params : {Params{8, 5, 2, 4}, Params{6, 1, 0, 1},
                              Params{20, 3, 1, 4}}) {
    for (const Time t : {4, 12, 22}) {
      const auto plan = optimal_summation(params, t);
      EXPECT_TRUE(is_valid_plan(plan)) << check_plan(plan).summary();
    }
  }
}

TEST(LazyChecker, DetectsNonLazyReception) {
  auto plan = good_plan();
  // Find a processor with a reception and move it earlier than lazy.
  for (auto& pp : plan.procs) {
    if (!pp.recv_times.empty()) {
      pp.recv_times[0] -= 1;
      break;
    }
  }
  const auto r = check_plan(plan);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_rule(r, Rule::kRecvGap) || has_rule(r, Rule::kLatency));
}

TEST(LazyChecker, DetectsWrongRootTime) {
  auto plan = good_plan();
  plan.t += 1;  // root now "finishes" one cycle before t
  const auto r = check_plan(plan);
  EXPECT_TRUE(has_rule(r, Rule::kLatency));
}

TEST(LazyChecker, DetectsMessageTimingMismatch) {
  auto plan = good_plan();
  // Corrupt a child's send time: the parent's reception no longer lines up.
  for (auto& pp : plan.procs) {
    if (pp.send_to != kNoProc) {
      pp.send_time -= 1;
      break;
    }
  }
  EXPECT_FALSE(is_valid_plan(plan));
}

TEST(LazyChecker, DetectsDuplicateProcessor) {
  auto plan = good_plan();
  plan.procs[1].proc = plan.procs[2].proc;
  const auto r = check_plan(plan);
  EXPECT_TRUE(has_rule(r, Rule::kBadProcessor));
}

TEST(LazyChecker, DetectsWrongTotal) {
  auto plan = good_plan();
  plan.total_operands += 1;
  const auto r = check_plan(plan);
  EXPECT_TRUE(has_rule(r, Rule::kBadItem));
}

TEST(LazyChecker, DetectsSecondRoot) {
  auto plan = good_plan();
  for (auto& pp : plan.procs) {
    if (pp.send_to != kNoProc) {
      pp.send_to = kNoProc;
      break;
    }
  }
  const auto r = check_plan(plan);
  EXPECT_FALSE(r.ok());
}

TEST(LazyChecker, DetectsUnknownSender) {
  auto plan = good_plan();
  for (auto& pp : plan.procs) {
    if (!pp.recv_from.empty()) {
      pp.recv_from[0] = static_cast<ProcId>(plan.params.P - 1);
      break;
    }
  }
  // P-1 may coincidentally be a participant; point it at an id beyond any
  // participant instead if needed.
  if (is_valid_plan(plan)) {
    GTEST_SKIP() << "corruption landed on a real edge";
  }
  SUCCEED();
}

}  // namespace
}  // namespace logpc::sum
