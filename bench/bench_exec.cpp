/// The execution-engine bench: run planned collectives on real threads and
/// close the predicted-vs-measured loop.  For a grid of machines (P >= 8)
/// and the three collective shapes (single-item broadcast, all-to-all,
/// summation), each plan executes on the shared-memory engine; we report
/// the plan's predicted makespan in model cycles, the measured wall time,
/// the implied cycle length, and the effective (L, o, g) fitted from the
/// run's send/recv timestamps by exec::measure() — the same shape of
/// answer sim::calibrate gives for the simulator.  Everything lands in
/// BENCH_exec.json via the global JsonReport.

#include "bench_util.hpp"

#include <algorithm>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "api/communicator.hpp"
#include "exec/mailbox.hpp"
#include "exec/measure.hpp"
#include "sum/executor.hpp"

namespace {

using namespace logpc;
using logpc::bench::Table;

exec::Bytes payload_of(std::size_t size) {
  exec::Bytes b(size);
  for (std::size_t i = 0; i < size; ++i) {
    b[i] = static_cast<std::byte>(i & 0xFF);
  }
  return b;
}

exec::CombineFn add_u64() {
  return [](exec::Bytes& acc, std::span<const std::byte> rhs) {
    std::uint64_t a = 0, r = 0;
    std::memcpy(&a, acc.data(), std::min(acc.size(), sizeof a));
    std::memcpy(&r, rhs.data(), std::min(rhs.size(), sizeof r));
    a += r;
    acc.resize(sizeof a);
    std::memcpy(acc.data(), &a, sizeof a);
  };
}

/// Best-of-`reps` execution (thread wakeup jitter dominates single runs).
template <typename RunFn>
exec::ExecReport best_of(int reps, const RunFn& run) {
  exec::ExecReport best = run();
  for (int i = 1; i < reps; ++i) {
    exec::ExecReport r = run();
    if (r.wall_ns < best.wall_ns) best = std::move(r);
  }
  return best;
}

void add_point(Table& t, const Params& machine, const std::string& collective,
               const exec::ExecReport& report) {
  const exec::MeasuredLogP fit = exec::measure(report);
  const double ns_per_cycle = exec::fitted_ns_per_cycle(report);
  const sim::MeasuredParams quantized =
      ns_per_cycle > 0 ? fit.as_measured_params(ns_per_cycle, machine)
                       : sim::MeasuredParams{machine.P, 0, 0, 0};

  t.row(machine.to_string(), collective, report.predicted_makespan,
        report.wall_ns / 1000, ns_per_cycle,
        static_cast<std::int64_t>(fit.L_ns),
        static_cast<std::int64_t>(fit.o_ns),
        static_cast<std::int64_t>(fit.g_ns),
        quantized.as_params().to_string());

  logpc::bench::global_report("exec").entry(
      "exec_grid",
      {{"machine", machine.to_string()}, {"collective", collective}},
      {{"predicted_makespan_cycles",
        static_cast<double>(report.predicted_makespan)},
       {"measured_wall_ns", static_cast<double>(report.wall_ns)},
       {"ns_per_cycle", ns_per_cycle},
       {"messages", static_cast<double>(report.messages)},
       {"payload_bytes", static_cast<double>(report.payload_bytes)},
       {"max_mailbox_occupancy",
        static_cast<double>(report.max_mailbox_occupancy)},
       {"fitted_L_ns", fit.L_ns},
       {"fitted_o_ns", fit.o_ns},
       {"fitted_g_ns", fit.g_ns},
       {"fitted_L_cycles", static_cast<double>(quantized.L)},
       {"fitted_o_cycles", static_cast<double>(quantized.o)},
       {"fitted_g_cycles", static_cast<double>(quantized.g)}});
}

void report() {
  logpc::bench::section("exec: planned collectives on real threads");
  constexpr int kReps = 5;
  constexpr std::size_t kPayload = 1024;

  Table t({"machine", "collective", "pred (cyc)", "wall (us)", "ns/cyc",
           "L_ns", "o_ns", "g_ns", "fitted (cyc)"});
  const std::vector<Params> machines = {
      Params{8, 4, 1, 2},
      Params{8, 8, 2, 3},
      Params{12, 6, 1, 2},
      Params::postal(16, 8),
  };
  for (const Params& machine : machines) {
    const api::Communicator comm(machine);
    exec::Engine engine;
    const exec::Bytes payload = payload_of(kPayload);

    add_point(t, machine, "broadcast", best_of(kReps, [&] {
                return comm.run_broadcast(
                    std::span<const std::byte>(payload), 0, &engine);
              }));

    std::vector<exec::Bytes> contributions(
        static_cast<std::size_t>(machine.P), payload);
    add_point(t, machine, "allgather", best_of(kReps, [&] {
                return comm.run_allgather(contributions, &engine);
              }));

    const Count n = static_cast<Count>(machine.P) * 4;
    const sum::SummationPlan plan = comm.reduce_operands(n);
    const auto layout = sum::operand_layout(plan);
    std::vector<std::vector<exec::Bytes>> operands(plan.procs.size());
    std::uint64_t v = 1;
    for (std::size_t i = 0; i < layout.size(); ++i) {
      for (std::size_t j = 0; j < layout[i].total(); ++j) {
        operands[i].push_back(payload_of(sizeof(std::uint64_t)));
        std::memcpy(operands[i].back().data(), &v, sizeof v);
        ++v;
      }
    }
    add_point(t, machine, "summation", best_of(kReps, [&] {
                return comm.run_reduce_operands(n, operands, add_u64(),
                                                &engine);
              }));
  }
  t.print();
  std::cout << "\npred = plan makespan in model cycles; ns/cyc = wall/pred;\n"
               "L/o/g_ns = effective parameters fitted from the run's\n"
               "timestamps (exec::measure); fitted (cyc) = the same\n"
               "quantized to model cycles for comparison with the machine\n"
               "column.\n";
}

void BM_ExecBroadcast(benchmark::State& state) {
  const api::Communicator comm(Params{8, 4, 1, 2});
  static exec::Engine* engine = new exec::Engine;
  const exec::Bytes payload = payload_of(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        comm.run_broadcast(std::span<const std::byte>(payload), 0, engine));
  }
}
BENCHMARK(BM_ExecBroadcast);

void BM_ExecSummation(benchmark::State& state) {
  const api::Communicator comm(Params{8, 4, 1, 2});
  static exec::Engine* engine = new exec::Engine;
  const Count n = 32;
  const sum::SummationPlan plan = comm.reduce_operands(n);
  const auto layout = sum::operand_layout(plan);
  std::vector<std::vector<exec::Bytes>> operands(plan.procs.size());
  for (std::size_t i = 0; i < layout.size(); ++i) {
    operands[i].assign(layout[i].total(), payload_of(sizeof(std::uint64_t)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        comm.run_reduce_operands(n, operands, add_u64(), engine));
  }
}
BENCHMARK(BM_ExecSummation);

/// Producer hot-path regression gauge for the mailbox stats flag: push/pop
/// cycles through a ring with occupancy tracking on (Arg(1)) vs off
/// (Arg(0)).  The off lane must never be slower — it exists to shed the
/// high-water bookkeeping from the fast path.
void BM_MailboxPush(benchmark::State& state) {
  const bool stats = state.range(0) != 0;
  exec::SpscMailbox mb(64, stats);
  const exec::Bytes payload = payload_of(64);
  const exec::Message m{0, payload.data(), payload.size(), 0};
  exec::Message out;
  for (auto _ : state) {
    if (!mb.try_push(m)) {
      while (mb.try_pop(out)) benchmark::DoNotOptimize(out.item);
    }
  }
  state.SetLabel(stats ? "stats_on" : "stats_off");
}
BENCHMARK(BM_MailboxPush)->Arg(0)->Arg(1);

/// Bulk vs single-message drain on a full ring.
void BM_MailboxDrain(benchmark::State& state) {
  const bool bulk = state.range(0) != 0;
  exec::SpscMailbox mb(64, false);
  const exec::Bytes payload = payload_of(64);
  const exec::Message m{0, payload.data(), payload.size(), 0};
  std::vector<exec::Message> pending;
  pending.reserve(64);
  for (auto _ : state) {
    while (mb.try_push(m)) {
    }
    if (bulk) {
      pending.clear();
      while (mb.pop_bulk(pending, 64) > 0) {
      }
      benchmark::DoNotOptimize(pending.data());
    } else {
      exec::Message out;
      while (mb.try_pop(out)) benchmark::DoNotOptimize(out.item);
    }
  }
  state.SetLabel(bulk ? "bulk" : "single");
}
BENCHMARK(BM_MailboxDrain)->Arg(0)->Arg(1);

}  // namespace

LOGPC_BENCH_MAIN(report)
