#include "obs/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "obs/json.hpp"
#include "sched/schedule.hpp"

namespace logpc::obs {
namespace {

/// Minimal recursive-descent JSON validator, so the tests assert "valid
/// JSON" structurally instead of grepping for brackets.  Accepts exactly
/// RFC 8259 value grammar; no extensions.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : s_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + static_cast<std::size_t>(i) >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(
                    s_[pos_ + static_cast<std::size_t>(i)]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  std::string_view s_;
  std::size_t pos_ = 0;
};

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_TRUE(JsonValidator(json_string("tricky \"\\\t\x02 payload")).valid());
}

TEST(ChromeTrace, EmptyWriterIsValidJson) {
  ChromeTraceWriter w;
  EXPECT_TRUE(JsonValidator(w.json()).valid());
  EXPECT_NE(w.json().find("\"traceEvents\""), std::string::npos);
}

TEST(ChromeTrace, RecorderExportIsValidJsonWithSlices) {
  TraceRecorder rec(16);
  {
    Span span("planner.build", "planner", &rec);
    span.set_arg("kitem(P=9 L=3, k=4) with \"quotes\"");
  }
  ChromeTraceWriter w;
  w.add(rec);
  const std::string json = w.json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"planner.build\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);
}

TEST(ChromeTrace, SimTraceExportHasSendAndRecvSlices) {
  // Figure 1 machine: o = 2, so every overhead interval is a real slice.
  Schedule s(Params{3, 6, 2, 4}, 1);
  s.add_initial(0, 0, 0);
  s.add_send(0, 0, 1, 0);
  s.add_send(4, 0, 2, 0);
  const sim::Trace trace = sim::Trace::from(s);
  ChromeTraceWriter w;
  w.add(trace);
  const std::string json = w.json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"send i0 -> p1\""), std::string::npos);
  EXPECT_NE(json.find("\"recv i0 <- p0\""), std::string::npos);
  EXPECT_NE(json.find("\"sim.send\""), std::string::npos);
  EXPECT_NE(json.find("\"sim.recv\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2"), std::string::npos);  // o = 2 cycles
  EXPECT_NE(json.find("\"proc 0\""), std::string::npos);
  EXPECT_NE(json.find("\"proc 2\""), std::string::npos);
}

TEST(ChromeTrace, ZeroOverheadBecomesInstantEvents) {
  // Postal machine: o = 0, zero-length intervals must render as instants.
  Schedule s(Params::postal(2, 3), 1);
  s.add_initial(0, 0, 0);
  s.add_send(0, 0, 1, 0);
  const sim::Trace trace = sim::Trace::from(s);
  ChromeTraceWriter w;
  w.add(trace);
  const std::string json = w.json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(ChromeTrace, CombinedSourcesShareOneValidFile) {
  TraceRecorder rec(4);
  { Span span("comm.bcast", "comm", &rec); }
  Schedule s(Params{2, 6, 2, 4}, 1);
  s.add_initial(0, 0, 0);
  s.add_send(0, 0, 1, 0);
  ChromeTraceWriter w;
  w.add(rec, 1, "runtime");
  w.add(sim::Trace::from(s), 2, "sim");
  const std::string json = w.json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
}

}  // namespace
}  // namespace logpc::obs
