# Empty compiler generated dependencies file for test_summation.
# This may be replaced when dependencies are built.
