file(REMOVE_RECURSE
  "CMakeFiles/summation_pipeline.dir/summation_pipeline.cpp.o"
  "CMakeFiles/summation_pipeline.dir/summation_pipeline.cpp.o.d"
  "summation_pipeline"
  "summation_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summation_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
