#include "viz/dot.hpp"

#include <gtest/gtest.h>

namespace logpc::viz {
namespace {

TEST(Dot, TreeExportHasAllNodesAndEdges) {
  const auto tree =
      bcast::BroadcastTree::optimal(Params{8, 6, 2, 4}, 8);
  const std::string dot = tree_to_dot(tree, "fig1");
  EXPECT_NE(dot.find("digraph fig1 {"), std::string::npos);
  for (int i = 0; i < 8; ++i) {
    EXPECT_NE(dot.find("n" + std::to_string(i) + " [label=\"P" +
                       std::to_string(i)),
              std::string::npos)
        << i;
  }
  // 7 edges.
  std::size_t edges = 0;
  std::size_t pos = 0;
  while ((pos = dot.find(" -> ", pos)) != std::string::npos) {
    ++edges;
    pos += 4;
  }
  EXPECT_EQ(edges, 7u);
  EXPECT_NE(dot.find("@24"), std::string::npos);  // a leaf label
}

TEST(Dot, DigraphExportMarksActiveEdgesBold) {
  const auto res = bcast::plan_continuous(3, 7);
  ASSERT_EQ(res.status, bcast::SolveStatus::kSolved);
  const auto g = bcast::block_digraph(*res.plan);
  const std::string dot = digraph_to_dot(g);
  EXPECT_NE(dot.find("shape=diamond"), std::string::npos);  // source
  EXPECT_NE(dot.find("style=bold"), std::string::npos);     // active edge
  EXPECT_NE(dot.find("[label=\"[5]\"]"), std::string::npos); // the H5 block
}

}  // namespace
}  // namespace logpc::viz
