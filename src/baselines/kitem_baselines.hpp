#pragma once

#include "bcast/tree.hpp"

/// \file kitem_baselines.hpp
/// k-item broadcast comparators for the postal model.

namespace logpc::baselines {

/// Strawman: broadcast item i along the optimal tree only after item i-1
/// has finished everywhere.  Completion = k * B(P).
[[nodiscard]] Schedule serialized_broadcast(const Params& params, int k);

/// Classic pipelined fixed-tree broadcast: every item flows down the same
/// tree, consecutive items spaced by the tree's maximum out-degree (each
/// node needs that many sends per item).  Completion =
/// makespan + (k-1) * max_degree.  With a chain this is the classic
/// pipeline (great for large k); with a binomial/optimal-shape tree it
/// trades a shorter tree for a bigger root bottleneck.
[[nodiscard]] Schedule pipelined_tree_broadcast(
    const bcast::BroadcastTree& tree, int k);

/// The running time Section 3 quotes for the Bar-Noy/Kipnis multiple-item
/// algorithm [6]: 2B(P) + k + O(L).  We do not re-implement their
/// algorithm (it is sub-optimal except L = 1 and its details live in their
/// paper); this returns the stated formula with the O(L) term taken as
/// c_L * L for benchmarking "shape" comparisons.  Documented as a stated
/// comparator, not a measured one.
[[nodiscard]] Time bnk_stated_time(int P, Time L, int k, Time c_L = 1);

}  // namespace logpc::baselines
