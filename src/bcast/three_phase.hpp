#pragma once

#include "bcast/kitem_bounds.hpp"
#include "sched/schedule.hpp"

/// \file three_phase.hpp
/// An ablation of Theorem 3.7's three-phase shape - and a demonstration of
/// why its carefully-crafted endgame assignment is necessary.
///
///   1. *Initial transmission*: the source sends item i (once) at step i.
///   2. *Optimal broadcast phase*: item i spreads over an optimal
///      (B(P-1) - L)-step tree among the f_(B-L) "senders", with the
///      block-cyclic rotation resolving inter-item interference.
///   3. *Endgame*: the remaining P - 1 - f_(B-L) "receivers" obtain each
///      item; here via a naive relay scheduler (most-starved receiver,
///      oldest item, any informed processor with a spare send slot).
///
/// The naive endgame misses Theorem 3.7's B(P-1) + 2L + k - 2 badly: in
/// block-cyclic steady state *every* sender's send port is saturated by
/// the tree phase (a block of size r performs r sends per step), so the
/// endgame throughput comes almost entirely from receiver relaying - the
/// paper instead sizes its blocks by the FULL t-step tree degrees, which
/// reserves exactly L spare sends per sender period for the endgame.  Our
/// primary construction (kitem_broadcast) realizes that full-tree
/// structure directly - the leaf deliveries of the t-step tree ARE the
/// endgame - and finishes at B + L + k - 1, subsuming Theorem 3.7.  This
/// module quantifies the cost of getting the endgame wrong
/// (bench_ablation_endgame); it guarantees correctness and
/// single-sending-ness but not the Theorem 3.7 bound.

namespace logpc::bcast {

struct ThreePhaseResult {
  Schedule schedule;
  KItemBounds bounds;
  Time completion = 0;
  int senders = 0;    ///< processors covered by the tree phase
  int receivers = 0;  ///< processors served by the endgame
};

/// Builds the Theorem 3.7 schedule for items 0..k-1 from source 0 on P
/// postal processors with latency L.  Single-sending.
[[nodiscard]] ThreePhaseResult kitem_three_phase(int P, Time L, int k);

}  // namespace logpc::bcast
