#include "sum/executor.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace logpc::sum {
namespace {

const Params kFig6{8, 5, 2, 4};

TEST(Executor, LayoutMatchesOperandCounts) {
  const auto plan = optimal_summation(kFig6, 28);
  const auto layout = operand_layout(plan);
  ASSERT_EQ(layout.size(), plan.procs.size());
  std::size_t total = 0;
  for (std::size_t i = 0; i < layout.size(); ++i) {
    EXPECT_EQ(layout[i].total(),
              static_cast<std::size_t>(
                  plan.procs[i].local_operands(kFig6.o)));
    EXPECT_EQ(layout[i].chunk_sizes.size(),
              plan.procs[i].recv_times.size() + 1);
    total += layout[i].total();
  }
  EXPECT_EQ(total, static_cast<std::size_t>(plan.total_operands));
}

TEST(Executor, InterReceptionChunksAreGapMinusOverheadMinusOne) {
  // Between consecutive receptions a processor performs g - o - 1 input
  // additions (the paper's "chain of g-o-1 input-summing nodes").
  const auto plan = optimal_summation(kFig6, 28);
  const auto layout = operand_layout(plan);
  for (std::size_t i = 0; i < layout.size(); ++i) {
    const auto& chunks = layout[i].chunk_sizes;
    for (std::size_t j = 1; j + 1 < chunks.size(); ++j) {
      EXPECT_EQ(chunks[j],
                static_cast<std::size_t>(kFig6.g - kFig6.o - 1));
    }
  }
}

TEST(Executor, IotaSumMatchesClosedForm) {
  for (const Params params : {kFig6, Params{5, 3, 0, 1}, Params{12, 2, 1, 4}}) {
    for (const Time t : {7, 15, 28}) {
      const auto plan = optimal_summation(params, t);
      const auto n = static_cast<long long>(plan.total_operands);
      EXPECT_EQ(execute_iota_sum(plan), n * (n - 1) / 2)
          << params.to_string() << " t=" << t;
    }
  }
}

TEST(Executor, CombinationOrderIsAPermutation) {
  const auto plan = optimal_summation(Params{9, 3, 1, 3}, 20);
  const auto order = combination_order(plan);
  EXPECT_EQ(order.size(), static_cast<std::size_t>(plan.total_operands));
  std::set<std::pair<ProcId, std::size_t>> seen(order.begin(), order.end());
  EXPECT_EQ(seen.size(), order.size());
  const auto layout = operand_layout(plan);
  for (const auto& [proc, idx] : order) {
    const auto it = std::find_if(layout.begin(), layout.end(),
                                 [proc = proc](const ProcLayout& pl) {
                                   return pl.proc == proc;
                                 });
    ASSERT_NE(it, layout.end());
    EXPECT_LT(idx, it->total());
  }
}

TEST(Executor, NonCommutativeOperatorViaRenumbering) {
  // The paper's footnote: the commutative-optimal algorithm handles a
  // non-commutative '+' after renumbering operands.  Assign each operand
  // its combination-order rank as a label: the result must be the labels
  // in ascending order, proving the fold is a contiguous application.
  const auto plan = optimal_summation(Params{7, 2, 0, 2}, 14);
  const auto order = combination_order(plan);
  const auto layout = operand_layout(plan);
  std::vector<std::vector<std::string>> operands(layout.size());
  for (std::size_t i = 0; i < layout.size(); ++i) {
    operands[i].resize(layout[i].total());
  }
  // rank r lives at order[r] = (proc, local index).
  std::vector<std::size_t> index_of_proc(64, SIZE_MAX);
  for (std::size_t i = 0; i < plan.procs.size(); ++i) {
    index_of_proc[static_cast<std::size_t>(plan.procs[i].proc)] = i;
  }
  std::string expected;
  for (std::size_t r = 0; r < order.size(); ++r) {
    const auto& [proc, idx] = order[r];
    const std::string label = "[" + std::to_string(r) + "]";
    operands[index_of_proc[static_cast<std::size_t>(proc)]][idx] = label;
    expected += label;
  }
  const auto result = execute_summation<std::string>(
      plan, operands, [](const std::string& a, const std::string& b) {
        return a + b;
      });
  EXPECT_EQ(result, expected);
}

TEST(Executor, RejectsWrongOperandShapes) {
  const auto plan = optimal_summation(Params{4, 2, 0, 1}, 6);
  std::vector<std::vector<int>> wrong_count(plan.procs.size() + 1);
  EXPECT_THROW(execute_summation<int>(plan, wrong_count,
                                      [](const int& a, const int& b) {
                                        return a + b;
                                      }),
               std::invalid_argument);
  const auto layout = operand_layout(plan);
  std::vector<std::vector<int>> wrong_sizes(plan.procs.size());
  for (std::size_t i = 0; i < layout.size(); ++i) {
    wrong_sizes[i].resize(layout[i].total() + 1);
  }
  EXPECT_THROW(execute_summation<int>(plan, wrong_sizes,
                                      [](const int& a, const int& b) {
                                        return a + b;
                                      }),
               std::invalid_argument);
}

TEST(Executor, SingleProcessorPlan) {
  const auto plan = optimal_summation(Params{1, 2, 0, 1}, 5);
  EXPECT_EQ(execute_iota_sum(plan), 0 + 1 + 2 + 3 + 4 + 5);
  const auto order = combination_order(plan);
  EXPECT_EQ(order.size(), 6u);
}

}  // namespace
}  // namespace logpc::sum
