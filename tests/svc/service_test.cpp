#include "svc/service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"

/// End-to-end tests of the collective-service daemon: real engine pools,
/// real futures.  Policy-order tests build their backlog under
/// start_paused with a single pool, so the dispatch sequence is exactly
/// the scheduler's decision sequence and every assertion is
/// deterministic.

namespace logpc::svc {
namespace {

Params machine() { return Params{4, 4, 1, 2}; }

exec::Bytes of_str(const std::string& s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return exec::Bytes(p, p + s.size());
}

std::string to_str(const exec::Bytes& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

exec::Bytes of_u64(std::uint64_t v) {
  exec::Bytes b(sizeof v);
  std::memcpy(b.data(), &v, sizeof v);
  return b;
}

std::uint64_t to_u64(const exec::Bytes& b) {
  std::uint64_t v = 0;
  std::memcpy(&v, b.data(), std::min(b.size(), sizeof v));
  return v;
}

Request bcast_req(const std::string& payload, QoS qos = QoS::kBatch) {
  Request r;
  r.op = OpKind::kBroadcast;
  r.qos = qos;
  r.payload = of_str(payload);
  return r;
}

Request reduce_req(int P) {
  Request r;
  r.op = OpKind::kReduce;
  for (int p = 0; p < P; ++p) r.values.push_back(of_u64(p + 1));
  r.combine = exec::Combiner([](exec::Bytes& acc,
                                std::span<const std::byte> rhs) {
    std::uint64_t a = 0, b = 0;
    std::memcpy(&a, acc.data(), sizeof a);
    std::memcpy(&b, rhs.data(), std::min(rhs.size(), sizeof b));
    a += b;
    std::memcpy(acc.data(), &a, sizeof a);
  });
  return r;
}

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atoi(v) : fallback;
}

TEST(SvcService, RejectsDegenerateOptionsAtConstruction) {
  const auto expect_rejected = [](CollectiveService::Options opts) {
    EXPECT_THROW(CollectiveService(machine(), opts), std::invalid_argument);
  };
  CollectiveService::Options opts;
  opts.pools = 0;
  expect_rejected(opts);
  opts.pools = 65;
  expect_rejected(opts);

  opts = {};
  opts.max_fusion_batch = 1;  // fusion on by default: a 1-batch is no fusion
  expect_rejected(opts);
  // ...but with fusion disabled the field is irrelevant and accepted.
  opts.fusion_window_us = 0;
  opts.pools = 1;
  EXPECT_NO_THROW(CollectiveService(machine(), opts));

  opts = {};
  opts.segment_bytes = 0;  // segmentation enabled but can never split
  expect_rejected(opts);
  opts = {};
  opts.max_segments = 1;
  expect_rejected(opts);
  // Disabling segmentation makes the same fields irrelevant.
  opts.segment_threshold = 0;
  opts.pools = 1;
  EXPECT_NO_THROW(CollectiveService(machine(), opts));

  opts = {};
  opts.flight_recorder_capacity = 0;
  expect_rejected(opts);

  opts = {};
  opts.residual_threshold = -0.25;
  expect_rejected(opts);

  opts = {};
  opts.introspect_port = 70000;
  expect_rejected(opts);
}

TEST(SvcService, BroadcastRoundTripOnWarmPool) {
  CollectiveService::Options opts;
  opts.pools = 1;
  CollectiveService svc(machine(), opts);
  const TenantId t = svc.register_tenant({.name = "svc-bcast"});

  for (int round = 0; round < 3; ++round) {
    SubmitResult sub = svc.submit(t, bcast_req("payload-" +
                                               std::to_string(round)));
    ASSERT_TRUE(sub.accepted());
    Response r = sub.response.get();
    ASSERT_EQ(r.status, Status::kOk) << r.error;
    EXPECT_EQ(r.pool, 0);
    for (ProcId p = 0; p < machine().P; ++p) {
      EXPECT_EQ(to_str(r.report.item_at(p, 0)),
                "payload-" + std::to_string(round));
    }
    // prewarm (on by default) spawns the workers before admission opens:
    // even the very first request dispatches onto resident threads.
    EXPECT_TRUE(r.report.warm_pool) << "round " << round;
    // From the second same-shape run on, the run context is recycled too.
    if (round > 0) EXPECT_TRUE(r.report.warm_buffers) << "round " << round;
    EXPECT_GT(r.total_ns, 0u);
    EXPECT_GE(r.total_ns, r.queue_wait_ns);
  }
  const auto c = svc.tenant_counters(t);
  EXPECT_EQ(c.admitted, 3u);
  EXPECT_EQ(c.completed, 3u);
  EXPECT_EQ(c.queue_depth, 0u);
}

TEST(SvcService, ReduceFoldsToRoot) {
  CollectiveService svc(machine(), {});
  const TenantId t = svc.register_tenant({.name = "svc-reduce"});
  SubmitResult sub = svc.submit(t, reduce_req(machine().P));
  ASSERT_TRUE(sub.accepted());
  Response r = sub.response.get();
  ASSERT_EQ(r.status, Status::kOk) << r.error;
  EXPECT_EQ(to_u64(r.report.folded_at(0)), 1u + 2 + 3 + 4);
}

TEST(SvcService, AllgatherDeliversEveryContributionEverywhere) {
  CollectiveService svc(machine(), {});
  const TenantId t = svc.register_tenant({.name = "svc-gather"});
  Request req;
  req.op = OpKind::kAllgather;
  for (int p = 0; p < machine().P; ++p) {
    req.values.push_back(of_str("from-" + std::to_string(p)));
  }
  SubmitResult sub = svc.submit(t, std::move(req));
  ASSERT_TRUE(sub.accepted());
  Response r = sub.response.get();
  ASSERT_EQ(r.status, Status::kOk) << r.error;
  for (ProcId p = 0; p < machine().P; ++p) {
    for (ProcId q = 0; q < machine().P; ++q) {
      EXPECT_EQ(to_str(r.report.item_at(p, q)), "from-" + std::to_string(q));
    }
  }
}

TEST(SvcService, EqualWeightTenantsShareWithinTolerance) {
  CollectiveService::Options opts;
  opts.pools = 1;
  opts.start_paused = true;
  // This test asserts the stride scheduler's dispatch order; fusion would
  // coalesce the identical-shape backlog into admission-order batches.
  opts.fusion_window_us = 0;
  CollectiveService svc(machine(), opts);
  const TenantId a = svc.register_tenant({.name = "fair-a",
                                          .queue_capacity = 64});
  const TenantId b = svc.register_tenant({.name = "fair-b",
                                          .queue_capacity = 64});
  // Both tenants saturated before any dispatch happens.
  std::vector<std::pair<TenantId, std::future<Response>>> futures;
  for (int i = 0; i < 30; ++i) {
    for (const TenantId t : {a, b}) {
      SubmitResult sub = svc.submit(t, bcast_req("x"));
      ASSERT_TRUE(sub.accepted());
      futures.emplace_back(t, std::move(sub.response));
    }
  }
  svc.resume();
  std::vector<std::pair<std::uint64_t, TenantId>> order;
  for (auto& [t, fut] : futures) {
    Response r = fut.get();
    ASSERT_EQ(r.status, Status::kOk) << r.error;
    order.emplace_back(r.dispatch_seq, t);
  }
  std::sort(order.begin(), order.end());
  // Over the first 40 dispatches both queues were still backlogged, so the
  // fair share is 20 each; the ISSUE tolerance is +-20% (stride is exact
  // to +-1, the slack covers scheduling noise).
  int ca = 0;
  for (int i = 0; i < 40; ++i) ca += order[static_cast<std::size_t>(i)].second == a;
  EXPECT_GE(ca, 16);
  EXPECT_LE(ca, 24);
}

TEST(SvcService, WeightedTenantsSplitByWeight) {
  CollectiveService::Options opts;
  opts.pools = 1;
  opts.start_paused = true;
  // As above: weighted stride order is the subject, so keep fusion off.
  opts.fusion_window_us = 0;
  CollectiveService svc(machine(), opts);
  const TenantId heavy = svc.register_tenant(
      {.name = "w-heavy", .weight = 3, .queue_capacity = 64});
  const TenantId light = svc.register_tenant(
      {.name = "w-light", .weight = 1, .queue_capacity = 64});
  std::vector<std::pair<TenantId, std::future<Response>>> futures;
  for (int i = 0; i < 40; ++i) {
    for (const TenantId t : {heavy, light}) {
      SubmitResult sub = svc.submit(t, bcast_req("x"));
      ASSERT_TRUE(sub.accepted());
      futures.emplace_back(t, std::move(sub.response));
    }
  }
  svc.resume();
  std::vector<std::pair<std::uint64_t, TenantId>> order;
  for (auto& [t, fut] : futures) {
    Response r = fut.get();
    ASSERT_EQ(r.status, Status::kOk) << r.error;
    order.emplace_back(r.dispatch_seq, t);
  }
  std::sort(order.begin(), order.end());
  // While both are backlogged (first 52 dispatches; light's 40 outlast
  // heavy's 3/4 share), heavy should hold ~3/4 of the slots.
  int h = 0;
  for (int i = 0; i < 52; ++i) h += order[static_cast<std::size_t>(i)].second == heavy;
  EXPECT_NEAR(h, 39, 8);
}

TEST(SvcService, FullQueueAppliesBackpressure) {
  CollectiveService::Options opts;
  opts.pools = 1;
  opts.start_paused = true;
  CollectiveService svc(machine(), opts);
  const TenantId t = svc.register_tenant({.name = "bp",
                                          .queue_capacity = 4});
  std::vector<std::future<Response>> accepted;
  int rejected = 0;
  for (int i = 0; i < 10; ++i) {
    SubmitResult sub = svc.submit(t, bcast_req("x"));
    if (sub.accepted()) {
      accepted.push_back(std::move(sub.response));
    } else {
      EXPECT_EQ(sub.status, Status::kQueueFull);
      ++rejected;
    }
  }
  EXPECT_EQ(accepted.size(), 4u);
  EXPECT_EQ(rejected, 6);
  auto c = svc.tenant_counters(t);
  EXPECT_EQ(c.admitted, 4u);
  EXPECT_EQ(c.rejected_queue_full, 6u);
  EXPECT_EQ(c.queue_depth, 4u);
  svc.resume();
  for (auto& fut : accepted) {
    EXPECT_EQ(fut.get().status, Status::kOk);
  }
  c = svc.tenant_counters(t);
  EXPECT_EQ(c.completed, 4u);
  EXPECT_EQ(c.queue_depth, 0u);
}

TEST(SvcService, RateLimitRejectsSynchronously) {
  CollectiveService svc(machine(), {});
  const TenantId t = svc.register_tenant(
      {.name = "rl", .rate_per_sec = 1.0, .burst = 2.0});
  // Back-to-back submits land within the same token-bucket instant: the
  // burst admits two, the third is over rate.
  SubmitResult s1 = svc.submit(t, bcast_req("a"));
  SubmitResult s2 = svc.submit(t, bcast_req("b"));
  SubmitResult s3 = svc.submit(t, bcast_req("c"));
  EXPECT_TRUE(s1.accepted());
  EXPECT_TRUE(s2.accepted());
  EXPECT_EQ(s3.status, Status::kRateLimited);
  EXPECT_EQ(s1.response.get().status, Status::kOk);
  EXPECT_EQ(s2.response.get().status, Status::kOk);
  const auto c = svc.tenant_counters(t);
  EXPECT_EQ(c.admitted, 2u);
  EXPECT_EQ(c.rejected_rate_limited, 1u);
}

TEST(SvcService, InteractivePreemptsQueuedBatchWork) {
  CollectiveService::Options opts;
  opts.pools = 1;
  opts.start_paused = true;
  CollectiveService svc(machine(), opts);
  const TenantId t = svc.register_tenant({.name = "qos",
                                          .queue_capacity = 16});
  // Submission order is worst-to-best; dispatch order must invert it.
  SubmitResult be = svc.submit(t, bcast_req("be", QoS::kBestEffort));
  SubmitResult ba = svc.submit(t, bcast_req("ba", QoS::kBatch));
  SubmitResult in = svc.submit(t, bcast_req("in", QoS::kInteractive));
  ASSERT_TRUE(be.accepted());
  ASSERT_TRUE(ba.accepted());
  ASSERT_TRUE(in.accepted());
  svc.resume();
  const Response r_be = be.response.get();
  const Response r_ba = ba.response.get();
  const Response r_in = in.response.get();
  ASSERT_EQ(r_be.status, Status::kOk);
  ASSERT_EQ(r_ba.status, Status::kOk);
  ASSERT_EQ(r_in.status, Status::kOk);
  EXPECT_LT(r_in.dispatch_seq, r_ba.dispatch_seq);
  EXPECT_LT(r_ba.dispatch_seq, r_be.dispatch_seq);
}

TEST(SvcService, DrainingShutdownCompletesQueuedWork) {
  CollectiveService::Options opts;
  opts.pools = 2;
  opts.start_paused = true;
  CollectiveService svc(machine(), opts);
  const TenantId t = svc.register_tenant({.name = "drain",
                                          .queue_capacity = 16});
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 8; ++i) {
    SubmitResult sub = svc.submit(t, bcast_req("d" + std::to_string(i)));
    ASSERT_TRUE(sub.accepted());
    futures.push_back(std::move(sub.response));
  }
  // Draining shutdown overrides the pause: everything queued completes.
  svc.shutdown(/*drain=*/true);
  for (auto& fut : futures) {
    EXPECT_EQ(fut.get().status, Status::kOk);
  }
  EXPECT_FALSE(svc.accepting());
  EXPECT_EQ(svc.submit(t, bcast_req("late")).status, Status::kShutdown);
}

TEST(SvcService, ImmediateShutdownFailsQueuedWorkExplicitly) {
  CollectiveService::Options opts;
  opts.pools = 1;
  opts.start_paused = true;
  CollectiveService svc(machine(), opts);
  const TenantId t = svc.register_tenant({.name = "abort",
                                          .queue_capacity = 16});
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 6; ++i) {
    SubmitResult sub = svc.submit(t, bcast_req("x"));
    ASSERT_TRUE(sub.accepted());
    futures.push_back(std::move(sub.response));
  }
  svc.shutdown(/*drain=*/false);
  // Nothing dispatched (the service was paused); every future resolves
  // with an explicit kShutdown instead of dangling forever.
  for (auto& fut : futures) {
    const Response r = fut.get();
    EXPECT_EQ(r.status, Status::kShutdown);
    EXPECT_FALSE(r.error.empty());
  }
  const auto c = svc.tenant_counters(t);
  EXPECT_EQ(c.completed, 0u);
  EXPECT_EQ(c.queue_depth, 0u);
}

TEST(SvcService, MalformedRequestResolvesWithError) {
  CollectiveService svc(machine(), {});
  const TenantId t = svc.register_tenant({.name = "bad-req"});
  Request req = reduce_req(machine().P);
  req.values.pop_back();  // wrong contribution count: the engine throws
  SubmitResult sub = svc.submit(t, std::move(req));
  ASSERT_TRUE(sub.accepted());
  const Response r = sub.response.get();
  EXPECT_EQ(r.status, Status::kError);
  EXPECT_FALSE(r.error.empty());
}

TEST(SvcService, UnknownTenantThrows) {
  CollectiveService svc(machine(), {});
  EXPECT_THROW((void)svc.submit(3, bcast_req("x")), std::invalid_argument);
  EXPECT_THROW((void)svc.tenant_counters(-1), std::invalid_argument);
}

TEST(SvcService, TenantLabelsAreEscapedInExposition) {
  CollectiveService svc(machine(), {});
  const TenantId t =
      svc.register_tenant({.name = "we\"ird\\team\nprod"});
  SubmitResult sub = svc.submit(t, bcast_req("x"));
  ASSERT_TRUE(sub.accepted());
  ASSERT_EQ(sub.response.get().status, Status::kOk);
  const std::string text =
      obs::prometheus_text(obs::MetricsRegistry::global());
  // The exporter must render the hostile name with \" \\ \n escapes — one
  // line per series, still parseable.
  EXPECT_NE(text.find("tenant=\"we\\\"ird\\\\team\\nprod\""),
            std::string::npos);
  EXPECT_EQ(text.find("we\"ird"), std::string::npos);
}

TEST(SvcService, DuplicateTenantNamesGetDistinctMetricSeries) {
  CollectiveService svc(machine(), {});
  const TenantId first = svc.register_tenant({.name = "dup-name"});
  const TenantId second = svc.register_tenant({.name = "dup-name"});
  ASSERT_NE(first, second);
  const std::string text =
      obs::prometheus_text(obs::MetricsRegistry::global());
  EXPECT_NE(text.find("tenant=\"dup-name\""), std::string::npos);
  EXPECT_NE(text.find("tenant=\"dup-name#" + std::to_string(second) + "\""),
            std::string::npos);
}

TEST(SvcService, ConcurrentSubmittersAndShutdownResolveEveryFuture) {
  CollectiveService::Options opts;
  opts.pools = 2;
  CollectiveService svc(machine(), opts);
  constexpr int kThreads = 4;
  std::vector<TenantId> tenants;
  for (int i = 0; i < kThreads; ++i) {
    tenants.push_back(svc.register_tenant(
        {.name = "race-" + std::to_string(i), .queue_capacity = 32}));
  }
  std::atomic<int> accepted{0};
  std::atomic<int> resolved{0};
  std::vector<std::thread> workers;
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&, i] {
      std::vector<std::future<Response>> futures;
      for (int n = 0; n < 40; ++n) {
        SubmitResult sub = svc.submit(tenants[static_cast<std::size_t>(i)],
                                      bcast_req("r"));
        if (sub.status == Status::kShutdown) break;
        if (sub.accepted()) {
          accepted.fetch_add(1);
          futures.push_back(std::move(sub.response));
        }
      }
      for (auto& fut : futures) {
        const Response r = fut.get();  // must resolve: kOk under drain
        EXPECT_EQ(r.status, Status::kOk) << r.error;
        resolved.fetch_add(1);
      }
    });
  }
  // Shut down while submitters are racing: admitted work still drains.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  svc.shutdown(/*drain=*/true);
  for (auto& w : workers) w.join();
  EXPECT_EQ(resolved.load(), accepted.load());
}

/// Randomized multi-tenant soak: mixed ops, QoS classes and rejection
/// paths under concurrent submitters, bounded by LOGPC_SOAK_MS (CI's TSan
/// job raises it; the default keeps tier-1 fast).  The invariant under
/// test: every accepted future resolves, and the per-tenant accounting
/// balances exactly after a draining shutdown.
TEST(SvcSoak, RandomizedMultiTenantTraffic) {
  const int soak_ms = env_int("LOGPC_SOAK_MS", 150);
  const unsigned seed =
      static_cast<unsigned>(env_int("LOGPC_SOAK_SEED", 20260808));
  CollectiveService::Options opts;
  opts.pools = 2;
  CollectiveService svc(machine(), opts);

  constexpr int kTenants = 4;
  std::vector<TenantId> ids;
  ids.push_back(svc.register_tenant(
      {.name = "soak-interactive", .weight = 4, .queue_capacity = 16}));
  ids.push_back(svc.register_tenant(
      {.name = "soak-batch", .weight = 2, .queue_capacity = 32}));
  ids.push_back(svc.register_tenant(
      {.name = "soak-scavenger", .weight = 1, .queue_capacity = 8}));
  ids.push_back(svc.register_tenant({.name = "soak-limited",
                                     .weight = 1,
                                     .queue_capacity = 8,
                                     .rate_per_sec = 200.0}));

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(soak_ms);
  std::atomic<std::uint64_t> ok{0}, failed{0};
  std::vector<std::thread> submitters;
  for (int i = 0; i < kTenants; ++i) {
    submitters.emplace_back([&, i] {
      std::mt19937 rng(seed + static_cast<unsigned>(i));
      std::deque<std::future<Response>> inflight;
      const auto settle = [&](std::future<Response> fut) {
        const Response r = fut.get();
        (r.status == Status::kOk ? ok : failed).fetch_add(1);
        EXPECT_NE(r.status, Status::kShutdown);
      };
      while (std::chrono::steady_clock::now() < deadline) {
        Request req;
        switch (rng() % 3) {
          case 0: req = bcast_req("soak", QoS::kInteractive); break;
          case 1: req = bcast_req("soak", QoS::kBestEffort); break;
          default: req = reduce_req(machine().P); break;
        }
        SubmitResult sub =
            svc.submit(ids[static_cast<std::size_t>(i)], std::move(req));
        if (sub.accepted()) inflight.push_back(std::move(sub.response));
        while (inflight.size() > 16) {
          settle(std::move(inflight.front()));
          inflight.pop_front();
        }
      }
      while (!inflight.empty()) {
        settle(std::move(inflight.front()));
        inflight.pop_front();
      }
    });
  }
  for (auto& s : submitters) s.join();
  svc.shutdown(/*drain=*/true);
  EXPECT_EQ(failed.load(), 0u);
  // Accounting balances: everything admitted was completed (nothing
  // leaked, nothing double-counted), and rejection was the only other
  // exit.
  std::uint64_t admitted = 0, completed = 0;
  for (const TenantId t : ids) {
    const auto c = svc.tenant_counters(t);
    admitted += c.admitted;
    completed += c.completed;
    EXPECT_EQ(c.queue_depth, 0u);
  }
  EXPECT_EQ(admitted, completed);
  EXPECT_EQ(completed, ok.load());
  EXPECT_GT(ok.load(), 0u);
}

}  // namespace
}  // namespace logpc::svc
