#include "sched/builder.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sched/metrics.hpp"
#include "validate/checker.hpp"

namespace logpc {
namespace {

const Params kFig1{8, 6, 2, 4};

TEST(Builder, RejectsBadConstruction) {
  EXPECT_THROW(ScheduleBuilder(Params{0, 1, 0, 1}, 1), std::invalid_argument);
  EXPECT_THROW(ScheduleBuilder(Params::postal(2, 3), 0),
               std::invalid_argument);
}

TEST(Builder, SendRequiresHolding) {
  ScheduleBuilder b(Params::postal(3, 2), 1);
  EXPECT_THROW(b.send_at(0, 0, 1, 0), std::logic_error);   // nobody holds it
  b.place(0, 0, 5);
  EXPECT_THROW(b.send_at(4, 0, 1, 0), std::logic_error);   // not yet
  EXPECT_NO_THROW(b.send_at(5, 0, 1, 0));
}

TEST(Builder, RejectsSelfSendAndBadIds) {
  ScheduleBuilder b(Params::postal(3, 2), 1);
  b.place(0, 0);
  EXPECT_THROW(b.send_at(0, 0, 0, 0), std::logic_error);
  EXPECT_THROW(b.send_at(0, 0, 3, 0), std::logic_error);
  EXPECT_THROW(b.send_at(0, -1, 1, 0), std::logic_error);
  EXPECT_THROW(b.send_at(0, 0, 1, 1), std::logic_error);
}

TEST(Builder, EnforcesSendGap) {
  ScheduleBuilder b(kFig1, 1);
  b.place(0, 0);
  b.send_at(0, 0, 1, 0);
  EXPECT_THROW(b.send_at(3, 0, 2, 0), std::logic_error);  // g = 4
  EXPECT_NO_THROW(b.send_at(4, 0, 2, 0));
}

TEST(Builder, EnforcesRecvGap) {
  ScheduleBuilder b(Params::postal(4, 3), 1);
  b.place(0, 0);
  b.place(0, 1);
  b.send_at(0, 0, 3, 0);
  // Arrivals would collide at processor 3 (recv gap g = 1 means distinct
  // cycles; same cycle is a conflict).
  EXPECT_THROW(b.send_at(0, 1, 3, 0), std::logic_error);
  EXPECT_NO_THROW(b.send_at(1, 1, 3, 0));
}

TEST(Builder, EarliestSendStartSkipsCommittedSlots) {
  ScheduleBuilder b(kFig1, 1);
  b.place(0, 0);
  EXPECT_EQ(b.earliest_send_start(0, 0), 0);
  b.send_at(0, 0, 1, 0);
  EXPECT_EQ(b.earliest_send_start(0, 0), 4);
  EXPECT_EQ(b.earliest_send_start(0, 2), 4);
  EXPECT_EQ(b.earliest_send_start(0, 9), 9);
}

TEST(Builder, EarliestSendStartAvoidsRecvOverhead) {
  // o = 2: a send cannot start inside a receive's [recv, recv+2) window.
  ScheduleBuilder b(kFig1, 1);
  b.place(0, 0);
  b.send_at(0, 0, 1, 0);  // P1 receives in [8, 10)
  // P1 is informed at 10; but suppose P1 tried to send at 9 - blocked by
  // its own receive overhead.
  EXPECT_EQ(b.earliest_send_start(1, 9), 10);
}

TEST(Builder, SendEarliestHonorsAvailability) {
  ScheduleBuilder b(Params::postal(4, 3), 1);
  b.place(0, 0, 0);
  const Time a1 = b.send_earliest(0, 1, 0);
  EXPECT_EQ(a1, 3);
  // P1 can forward only after it holds the item.
  const Time a2 = b.send_earliest(1, 2, 0);
  EXPECT_EQ(a2, 6);
}

TEST(Builder, SendEarliestResolvesReceiverConflicts) {
  ScheduleBuilder b(Params::postal(4, 3), 2);
  b.place(0, 0);
  b.place(1, 1);
  b.send_at(0, 0, 3, 0);                       // P3 receives at 3
  const Time a = b.send_earliest(1, 3, 1, 0);  // wants recv at 3 too
  EXPECT_EQ(a, 4);                             // pushed one cycle
  EXPECT_TRUE(validate::is_valid(b.take(),
                                 {.require_complete = false}));
}

TEST(Builder, GreedyFloodMatchesOptimalBroadcastTime) {
  // The builder's "earliest possible" primitive reproduces B(P) for the
  // Figure 1 machine when driven root-first: 0 informs 8 processors by 24.
  ScheduleBuilder b(kFig1, 1);
  b.place(0, 0);
  b.send_at(0, 0, 1, 0);    // label 10
  b.send_at(4, 0, 2, 0);    // label 14
  b.send_at(8, 0, 3, 0);    // label 18
  b.send_at(12, 0, 4, 0);   // label 22
  b.send_at(10, 1, 5, 0);   // label 20
  b.send_at(14, 1, 6, 0);   // label 24
  b.send_at(14, 2, 7, 0);   // label 24
  Schedule s = b.take();
  EXPECT_EQ(completion_time(s), 24);
  EXPECT_TRUE(validate::is_valid(s));
}

TEST(Builder, SendsFromCounts) {
  ScheduleBuilder b(Params::postal(4, 1), 1);
  b.place(0, 0);
  EXPECT_EQ(b.sends_from(0), 0);
  b.send_earliest(0, 1, 0);
  b.send_earliest(0, 2, 0);
  EXPECT_EQ(b.sends_from(0), 2);
  EXPECT_EQ(b.sends_from(1), 0);
}

TEST(Builder, TakeProducesSortedValidSchedule) {
  ScheduleBuilder b(Params::postal(5, 2), 1);
  b.place(0, 0);
  b.send_at(1, 0, 2, 0);
  b.send_at(0, 0, 1, 0);
  b.send_at(2, 0, 3, 0);
  b.send_at(3, 0, 4, 0);
  const Schedule s = b.take();
  EXPECT_TRUE(std::is_sorted(s.sends().begin(), s.sends().end(),
                             [](const SendOp& x, const SendOp& y) {
                               return x.start < y.start;
                             }));
  EXPECT_TRUE(validate::is_valid(s));
}

}  // namespace
}  // namespace logpc
