#include "sched/stats.hpp"

#include <gtest/gtest.h>

#include "bcast/all_to_all.hpp"
#include "bcast/single_item.hpp"

namespace logpc {
namespace {

TEST(Stats, EmptySchedule) {
  const auto st = schedule_stats(Schedule(Params::postal(4, 2), 1));
  EXPECT_EQ(st.makespan, 0);
  EXPECT_EQ(st.messages, 0u);
  EXPECT_EQ(st.peak_in_flight, 0);
  EXPECT_EQ(st.avg_busy_fraction, 0.0);
}

TEST(Stats, Figure1Broadcast) {
  const auto st = schedule_stats(bcast::optimal_single_item(Params{8, 6, 2, 4}));
  EXPECT_EQ(st.makespan, 24);
  EXPECT_EQ(st.messages, 7u);
  // 7 sends + 7 receives, o = 2 cycles each.
  EXPECT_EQ(st.total_overhead, 28);
  EXPECT_EQ(st.max_sends_per_proc, 4);  // the root
  EXPECT_EQ(st.max_recvs_per_proc, 1);
  EXPECT_GT(st.max_busy_fraction, st.avg_busy_fraction);
  // Capacity constraint respected: at most ceil(L/g) = 2 in flight from the
  // busiest sender, and the whole network peaks well above 1.
  EXPECT_GE(st.peak_in_flight, 2);
}

TEST(Stats, AllToAllHasFlatDistanceHistogram) {
  const Params params = Params::postal(7, 2);
  const auto st = schedule_stats(bcast::all_to_all(params));
  // Rotation: each distance 1..P-1 used exactly P times.
  EXPECT_EQ(st.distance_histogram.size(), 6u);
  for (const auto& [dist, count] : st.distance_histogram) {
    EXPECT_GE(dist, 1);
    EXPECT_LE(dist, 6);
    EXPECT_EQ(count, 7u) << dist;
  }
}

TEST(Stats, TrafficPerProc) {
  Schedule s(Params::postal(3, 2), 1);
  s.add_initial(0, 0, 0);
  s.add_send(0, 0, 1, 0);
  s.add_send(1, 0, 2, 0);
  const auto traffic = traffic_per_proc(s);
  EXPECT_EQ(traffic[0], (std::pair<int, int>{2, 0}));
  EXPECT_EQ(traffic[1], (std::pair<int, int>{0, 1}));
  EXPECT_EQ(traffic[2], (std::pair<int, int>{0, 1}));
}

TEST(Stats, PeakInFlightCountsOverlap) {
  // Two messages overlapping on the wire.
  Schedule s(Params::postal(4, 5), 2);
  s.add_initial(0, 0, 0);
  s.add_initial(1, 1, 0);
  s.add_send(0, 0, 2, 0);  // wire [0, 5)
  s.add_send(2, 1, 3, 1);  // wire [2, 7)
  EXPECT_EQ(schedule_stats(s).peak_in_flight, 2);
}

TEST(Stats, ZeroOverheadMachinesHaveZeroBusyFractions) {
  const auto st =
      schedule_stats(bcast::optimal_single_item(Params::postal(9, 3)));
  EXPECT_EQ(st.total_overhead, 0);
  EXPECT_EQ(st.avg_busy_fraction, 0.0);
}

}  // namespace
}  // namespace logpc
