#include "runtime/snapshot.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "runtime/planner.hpp"
#include "runtime/warmup.hpp"

namespace logpc::runtime {
namespace {

const Params kMachine{16, 8, 1, 4};

/// Warms a planner with a representative mix of problems.
void warm(Planner& planner) {
  (void)planner.plan(PlanKey::broadcast(kMachine));
  (void)planner.plan(PlanKey::kitem(kMachine, 6));
  (void)planner.plan(PlanKey::kitem_buffered(kMachine, 4));
  (void)planner.plan(PlanKey::reduce(kMachine, 5));
  (void)planner.plan(PlanKey::summation(Params{12, 4, 1, 3}, 50));
  (void)planner.plan(PlanKey::alltoall(kMachine, 2));
}

TEST(Snapshot, RoundTripsEveryPlanExactly) {
  Planner planner;
  warm(planner);
  std::stringstream stream;
  const std::size_t written = save_snapshot(planner.cache(), stream);
  EXPECT_EQ(written, planner.cache().size());

  PlanCache loaded(64, 4);
  const std::size_t read = load_snapshot(loaded, stream);
  EXPECT_EQ(read, written);
  EXPECT_EQ(loaded.size(), written);

  for (const PlanPtr& original : planner.cache().entries()) {
    const PlanPtr restored = loaded.get(original->key);
    ASSERT_NE(restored, nullptr) << original->key.to_string();
    EXPECT_EQ(restored->schedule, original->schedule);
    EXPECT_EQ(restored->completion, original->completion);
    EXPECT_EQ(restored->method, original->method);
    EXPECT_EQ(restored->slack, original->slack);
    EXPECT_EQ(restored->max_buffer_depth, original->max_buffer_depth);
    EXPECT_EQ(restored->total_operands, original->total_operands);
  }
}

TEST(Snapshot, LoadedCacheServesHitsWithoutRebuilding) {
  Planner cold;
  warm(cold);
  std::stringstream stream;
  (void)save_snapshot(cold.cache(), stream);

  // A fresh planner that starts hot: load the snapshot, then plan.
  Planner hot;
  (void)load_snapshot(hot.cache(), stream);
  const PlanPtr plan = hot.plan(PlanKey::kitem(kMachine, 6));
  EXPECT_EQ(hot.builds(), 0u) << "snapshot hit should not rebuild";
  EXPECT_EQ(plan->schedule,
            cold.plan(PlanKey::kitem(kMachine, 6))->schedule);
}

TEST(Snapshot, FileRoundTrip) {
  Planner planner;
  warm(planner);
  const std::string path = testing::TempDir() + "logpc_plansnap_test.bin";
  const std::size_t written = save_snapshot(planner.cache(), path);
  PlanCache loaded(64, 2);
  EXPECT_EQ(load_snapshot(loaded, path), written);
  EXPECT_EQ(loaded.size(), written);
  EXPECT_THROW((void)load_snapshot(loaded, path + ".missing"),
               std::runtime_error);
}

TEST(Snapshot, RejectsCorruptInput) {
  PlanCache cache(16, 1);
  std::stringstream bad_header("not a snapshot at all............");
  EXPECT_THROW((void)load_snapshot(cache, bad_header),
               std::invalid_argument);

  Planner planner;
  warm(planner);
  std::stringstream stream;
  (void)save_snapshot(planner.cache(), stream);
  const std::string full = stream.str();
  // Truncate mid-entry: the loader must throw, not return garbage.
  std::stringstream truncated(full.substr(0, full.size() / 2));
  PlanCache partial(16, 1);
  EXPECT_THROW((void)load_snapshot(partial, truncated),
               std::invalid_argument);
}

TEST(Snapshot, EmptyCacheRoundTrips) {
  PlanCache empty(8, 1);
  std::stringstream stream;
  EXPECT_EQ(save_snapshot(empty, stream), 0u);
  PlanCache loaded(8, 1);
  EXPECT_EQ(load_snapshot(loaded, stream), 0u);
  EXPECT_EQ(loaded.size(), 0u);
}

}  // namespace
}  // namespace logpc::runtime
