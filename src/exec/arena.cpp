#include "exec/arena.hpp"

#include <algorithm>
#include <new>

namespace logpc::exec {

namespace {

constexpr std::size_t align_up(std::size_t n, std::size_t a) noexcept {
  return (n + a - 1) / a * a;
}

}  // namespace

BufferArena::Chunk& BufferArena::grow(std::size_t at_least) {
  const std::size_t cap =
      std::min(kMaxChunk, std::max(next_chunk_, align_up(at_least, kAlignment)));
  // Chunks never shrink the growth cursor: the doubling schedule bounds the
  // chunk count at O(log total) however allocation sizes interleave.
  next_chunk_ = std::min(kMaxChunk, std::max(next_chunk_ * 2, cap));
  Chunk c;
  c.mem.reset(static_cast<std::byte*>(
      ::operator new[](cap, std::align_val_t{kAlignment})));
  c.cap = cap;
  reserved_ += cap;
  chunks_.push_back(std::move(c));
  return chunks_.back();
}

std::byte* BufferArena::allocate(std::size_t n) {
  const std::size_t need = align_up(std::max<std::size_t>(n, 1), kAlignment);
  if (need > kMaxChunk) {
    // Oversized request: dedicated chunk, exact fit.
    Chunk c;
    c.mem.reset(static_cast<std::byte*>(
        ::operator new[](need, std::align_val_t{kAlignment})));
    c.cap = need;
    c.used = need;
    reserved_ += need;
    used_ += need;
    // The oversized chunk is born full; the active cursor stays on the
    // current bump chunk so small allocations keep filling it.
    chunks_.push_back(std::move(c));
    return chunks_.back().mem.get();
  }
  while (active_ < chunks_.size() && chunks_[active_].cap - chunks_[active_].used < need) {
    ++active_;
  }
  if (active_ >= chunks_.size()) {
    grow(need);
    active_ = chunks_.size() - 1;
  }
  Chunk& c = chunks_[active_];
  std::byte* p = c.mem.get() + c.used;
  c.used += need;
  used_ += need;
  return p;
}

void BufferArena::reset() noexcept {
  for (Chunk& c : chunks_) c.used = 0;
  active_ = 0;
  used_ = 0;
}

}  // namespace logpc::exec
