#include "bcast/kitem_buffered.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <stdexcept>
#include <vector>

#include "bcast/continuous.hpp"
#include "sched/metrics.hpp"

namespace logpc::bcast {

namespace {

struct BufferEntry {
  ItemId item;
  std::size_t send_index;  // index into the schedule's send list
};

// Worst per-processor buffer occupancy implied by a buffered schedule:
// +1 at each arrival, -1 at each receive.
int measured_buffer_depth(const Schedule& s) {
  std::map<ProcId, std::vector<std::pair<Time, int>>> events;
  const Time oL = s.params().o + s.params().L;
  for (const auto& op : s.sends()) {
    events[op.to].emplace_back(op.start + oL, +1);
    events[op.to].emplace_back(s.recv_start(op), -1);
  }
  int worst = 0;
  for (auto& [proc, evs] : events) {
    std::sort(evs.begin(), evs.end());
    int depth = 0;
    for (const auto& [t, d] : evs) {
      depth += d;
      worst = std::max(worst, depth);
    }
  }
  return worst;
}

// Greedy fallback for instances where no waited block-cyclic plan exists
// within the wait budget (none observed; kept as a safety net).
BufferedKItemResult kitem_buffered_greedy(int P, Time L, int k) {
  if (P < 2) throw std::invalid_argument("kitem_buffered: P >= 2");
  if (L < 1) throw std::invalid_argument("kitem_buffered: L >= 1");
  if (k < 1) throw std::invalid_argument("kitem_buffered: k >= 1");

  BufferedKItemResult result;
  result.bounds = kitem_bounds(P, L, k);
  Schedule sched(Params::postal(P, L), k);
  std::vector<SendOp> sends;  // assembled manually to patch recv_start

  const auto sP = static_cast<std::size_t>(P);
  const auto sk = static_cast<std::size_t>(k);
  // has: received; committed: received, buffered or in flight (no second
  // copy may ever be sent - the strict no-duplicate-receive rule).
  std::vector<std::vector<bool>> has(sP, std::vector<bool>(sk, false));
  std::vector<std::vector<bool>> committed(sP, std::vector<bool>(sk, false));
  std::vector<int> missing(sk, P - 1);  // procs that have not received it
  for (ItemId i = 0; i < k; ++i) {
    sched.add_initial(i, 0, 0);
    has[0][static_cast<std::size_t>(i)] = true;
    committed[0][static_cast<std::size_t>(i)] = true;
  }
  // In-flight messages landing at step s live in ring[s % (L+1)].
  std::vector<std::vector<std::pair<ProcId, BufferEntry>>> ring(
      static_cast<std::size_t>(L) + 1);
  std::vector<std::vector<BufferEntry>> buffer(sP);

  const Time cap = 2 * result.bounds.single_sending_upper + 4 * L + 8;
  Time s = 0;
  int done = 0;
  while (done < k && s <= cap) {
    // 1. Arrivals enter buffers.
    {
      auto& slot = ring[static_cast<std::size_t>(s % (L + 1))];
      for (auto& [to, entry] : slot) {
        buffer[static_cast<std::size_t>(to)].push_back(entry);
      }
      slot.clear();
      for (auto& buf : buffer) {
        result.max_buffer_depth =
            std::max(result.max_buffer_depth, static_cast<int>(buf.size()));
      }
    }
    // 2. Receives: each processor takes its oldest buffered item.
    for (ProcId p = 0; p < P; ++p) {
      auto& buf = buffer[static_cast<std::size_t>(p)];
      if (buf.empty()) continue;
      const auto it = std::min_element(
          buf.begin(), buf.end(),
          [](const BufferEntry& a, const BufferEntry& b) {
            return a.item < b.item;
          });
      sends[it->send_index].recv_start = s;
      has[static_cast<std::size_t>(p)][static_cast<std::size_t>(it->item)] =
          true;
      if (--missing[static_cast<std::size_t>(it->item)] == 0) ++done;
      buf.erase(it);
    }
    if (done == k) break;
    // 3. Sends: the source injects item s; every other holder forwards its
    // oldest needed item to the lowest-index uncommitted processor.
    std::vector<bool> receiver_hit(sP, false);  // one arrival per (to, step)
    // is allowed to stack in buffers, but spread targets for progress.
    auto try_send = [&](ProcId from, ItemId item) -> bool {
      for (ProcId to = 1; to < P; ++to) {
        if (to == from) continue;
        if (committed[static_cast<std::size_t>(to)]
                     [static_cast<std::size_t>(item)]) {
          continue;
        }
        if (receiver_hit[static_cast<std::size_t>(to)]) continue;
        committed[static_cast<std::size_t>(to)]
                 [static_cast<std::size_t>(item)] = true;
        receiver_hit[static_cast<std::size_t>(to)] = true;
        const std::size_t idx = sends.size();
        sends.push_back(SendOp{s, from, to, item, kNever});
        ring[static_cast<std::size_t>((s + L) % (L + 1))].emplace_back(
            to, BufferEntry{item, idx});
        return true;
      }
      return false;
    };
    if (s < k) {
      if (!try_send(0, static_cast<ItemId>(s))) {
        throw std::logic_error("kitem_buffered: source injection failed");
      }
    }
    for (ProcId from = 1; from < P; ++from) {
      for (ItemId item = 0; item < k; ++item) {
        if (missing[static_cast<std::size_t>(item)] == 0) continue;
        if (!has[static_cast<std::size_t>(from)]
                [static_cast<std::size_t>(item)]) {
          continue;
        }
        if (try_send(from, item)) break;
      }
    }
    ++s;
  }
  if (done < k) {
    throw std::logic_error("kitem_buffered: failed to converge");
  }
  for (const auto& op : sends) sched.add_send(op);
  sched.sort();
  result.schedule = std::move(sched);
  result.completion = completion_time(result.schedule);
  return result;
}

}  // namespace

BufferedKItemResult kitem_buffered(int P, Time L, int k) {
  if (P < 2) throw std::invalid_argument("kitem_buffered: P >= 2");
  if (L < 1) throw std::invalid_argument("kitem_buffered: L >= 1");
  if (k < 1) throw std::invalid_argument("kitem_buffered: k >= 1");
  BufferedKItemResult result;
  result.bounds = kitem_bounds(P, L, k);
  const int m = P - 1;
  const auto tree =
      BroadcastTree::optimal(Params::postal(std::max(m, 1), L), m);
  // Theorem 3.8: with buffering, the single-sending lower bound is
  // achievable for all P.  Wait 0 = the strict plan (no buffering needed);
  // growing waits relax the residue constraints until the solve succeeds.
  for (int wait = 0; wait <= 3; ++wait) {
    auto res = plan_from_tree(tree, 20'000'000, wait);
    if (res.status != SolveStatus::kSolved) continue;
    result.schedule = emit_k_items(*res.plan, k);
    result.completion = completion_time(result.schedule);
    result.max_buffer_depth = measured_buffer_depth(result.schedule);
    return result;
  }
  return kitem_buffered_greedy(P, L, k);
}

}  // namespace logpc::bcast
