#include "bcast/kitem.hpp"

#include <algorithm>
#include <stdexcept>

#include "sched/metrics.hpp"
#include "search/continuous_search.hpp"

namespace logpc::bcast {

namespace {

// Greedy single-sending scheduler.  Oldest items first: every step, each
// processor holding the oldest unfinished item offers it to a processor
// that lacks it and has a free receive slot; leftover senders move on to
// younger items.  The source injects item i at step i and never repeats
// (Theorem 3.2 says optimal schedules must lead with distinct items);
// injection targets rotate, and receivers are chosen most-starved-first,
// both to avoid the low-index hub bottleneck a naive greedy develops.
class GreedyScheduler {
 public:
  GreedyScheduler(int P, Time L, int k)
      : P_(P), L_(L), k_(k), sched_(Params::postal(P, L), k) {
    has_.assign(static_cast<std::size_t>(P),
                std::vector<bool>(static_cast<std::size_t>(k), false));
    pending_.assign(static_cast<std::size_t>(P),
                    std::vector<bool>(static_cast<std::size_t>(k), false));
    missing_.assign(static_cast<std::size_t>(k), P - 1);
    last_recv_.assign(static_cast<std::size_t>(P), -1);
    for (ItemId i = 0; i < k; ++i) {
      sched_.add_initial(i, 0, 0);
      has_[0][static_cast<std::size_t>(i)] = true;
    }
  }

  Schedule run() {
    const KItemBounds bounds = kitem_bounds(P_, L_, k_);
    // Generous cap: greedy must stay well under 2x the proven upper bound;
    // exceeding the cap is a scheduler bug, not a tight instance.
    const Time cap = 2 * bounds.single_sending_upper + 4 * L_ + 8;
    Time s = 0;
    int items_done = 0;
    while (items_done < k_ && s <= cap) {
      deliver(s);
      items_done = static_cast<int>(std::count(
          missing_.begin(), missing_.end(), 0));
      if (items_done == k_) break;
      assign_sends(s);
      ++s;
    }
    if (items_done < k_) {
      throw std::logic_error("kitem_greedy: failed to converge");
    }
    sched_.sort();
    return std::move(sched_);
  }

 private:
  int P_;
  Time L_;
  int k_;
  Schedule sched_;
  std::vector<std::vector<bool>> has_;      // [proc][item] delivered
  std::vector<std::vector<bool>> pending_;  // [proc][item] in flight to proc
  std::vector<int> missing_;                // per item: #procs lacking it
  std::vector<Time> last_recv_;             // most recent arrival per proc
  // arrivals_[s % (L+1)] holds messages landing at step s.
  std::vector<std::vector<std::pair<ProcId, ItemId>>> ring_ =
      std::vector<std::vector<std::pair<ProcId, ItemId>>>(
          static_cast<std::size_t>(L_) + 1);
  std::vector<std::vector<std::pair<ProcId, ItemId>>>& ring() {
    if (ring_.size() != static_cast<std::size_t>(L_) + 1) {
      ring_.assign(static_cast<std::size_t>(L_) + 1, {});
    }
    return ring_;
  }

  void deliver(Time s) {
    auto& slot = ring()[static_cast<std::size_t>(s % (L_ + 1))];
    for (const auto& [to, item] : slot) {
      has_[static_cast<std::size_t>(to)][static_cast<std::size_t>(item)] =
          true;
      pending_[static_cast<std::size_t>(to)][static_cast<std::size_t>(item)] =
          false;
      --missing_[static_cast<std::size_t>(item)];
    }
    slot.clear();
  }

  void assign_sends(Time s) {
    std::vector<bool> sender_used(static_cast<std::size_t>(P_), false);
    std::vector<bool> receiver_used(static_cast<std::size_t>(P_), false);
    // The source is dedicated to injecting item s (single-sending); the
    // injection root rotates so no single processor becomes the hub.
    sender_used[0] = true;
    if (s < k_) {
      const auto item = static_cast<ItemId>(s);
      ProcId to = static_cast<ProcId>(1 + s % (P_ - 1));
      if (receiver_used[static_cast<std::size_t>(to)]) {
        to = pick_receiver(item, receiver_used);
      }
      if (to == kNoProc) {
        throw std::logic_error("kitem_greedy: no receiver for injection");
      }
      commit(s, 0, to, item, receiver_used);
    }
    for (ItemId item = 0; item < k_; ++item) {
      if (missing_[static_cast<std::size_t>(item)] == 0) continue;
      for (ProcId from = 1; from < P_; ++from) {
        if (sender_used[static_cast<std::size_t>(from)]) continue;
        if (!has_[static_cast<std::size_t>(from)]
                 [static_cast<std::size_t>(item)]) {
          continue;
        }
        const ProcId to = pick_receiver(item, receiver_used);
        if (to == kNoProc) break;  // item fully covered this step
        sender_used[static_cast<std::size_t>(from)] = true;
        commit(s, from, to, item, receiver_used);
      }
    }
  }

  // Most-starved processor (oldest last reception) that lacks `item`, has
  // no copy in flight, and is not already receiving this step's batch.
  ProcId pick_receiver(ItemId item, const std::vector<bool>& receiver_used) {
    ProcId best = kNoProc;
    for (ProcId p = 1; p < P_; ++p) {
      if (receiver_used[static_cast<std::size_t>(p)]) continue;
      if (has_[static_cast<std::size_t>(p)][static_cast<std::size_t>(item)]) {
        continue;
      }
      if (pending_[static_cast<std::size_t>(p)]
                  [static_cast<std::size_t>(item)]) {
        continue;
      }
      if (best == kNoProc || last_recv_[static_cast<std::size_t>(p)] <
                                 last_recv_[static_cast<std::size_t>(best)]) {
        best = p;
      }
    }
    return best;
  }

  void commit(Time s, ProcId from, ProcId to, ItemId item,
              std::vector<bool>& receiver_used) {
    receiver_used[static_cast<std::size_t>(to)] = true;
    pending_[static_cast<std::size_t>(to)][static_cast<std::size_t>(item)] =
        true;
    last_recv_[static_cast<std::size_t>(to)] = s + L_;
    ring()[static_cast<std::size_t>((s + L_) % (L_ + 1))].emplace_back(to,
                                                                       item);
    sched_.add_send(s, from, to, item);
  }
};

}  // namespace

Schedule kitem_greedy(int P, Time L, int k) {
  if (P < 2) throw std::invalid_argument("kitem_greedy: P >= 2");
  if (L < 1) throw std::invalid_argument("kitem_greedy: L >= 1");
  if (k < 1) throw std::invalid_argument("kitem_greedy: k >= 1");
  return GreedyScheduler(P, L, k).run();
}

KItemResult kitem_broadcast(int P, Time L, int k) {
  KItemResult result;
  result.bounds = kitem_bounds(P, L, k);
  auto cont = search::best_continuous_plan(L, P - 1);
  if (cont.status == SolveStatus::kSolved) {
    result.schedule = emit_k_items(*cont.plan, k);
    result.method = KItemMethod::kContinuousBlockCyclic;
    result.completion = completion_time(result.schedule);
    result.slack =
        static_cast<int>(cont.plan->delay() - (result.bounds.B + L));
    return result;
  }
  result.schedule = kitem_greedy(P, L, k);
  result.method = KItemMethod::kGreedy;
  result.completion = completion_time(result.schedule);
  result.slack = static_cast<int>(result.completion -
                                  result.bounds.single_sending_lower);
  return result;
}

}  // namespace logpc::bcast
