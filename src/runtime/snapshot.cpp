#include "runtime/snapshot.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "runtime/implicit_plan.hpp"
#include "sched/io.hpp"

namespace logpc::runtime {

namespace {

// v4 appends the key's topology words (clusters + cross-class L, o, g —
// zero for every flat problem) after the mask, so hierarchical plans
// round-trip; older versions load with a zero topology, which is exactly
// what every problem they could contain requires.  v3 added a flags word
// (bit 0: the schedule was materialized) after total_operands, and writes
// the schedule only when it was — implicit-only plans serialize as a few
// hundred bytes whatever P is, and the generator is rebuilt from the key
// on load.  v2 appended the membership mask to each key (after root); v1
// snapshots still load, with mask = 0 (a v1 file can only hold
// full-membership keys).
constexpr char kHeader[] = "logpc-plansnap v4\n";
constexpr char kHeaderV3[] = "logpc-plansnap v3\n";
constexpr char kHeaderV2[] = "logpc-plansnap v2\n";
constexpr char kHeaderV1[] = "logpc-plansnap v1\n";
constexpr std::size_t kHeaderLen = 18;

constexpr std::int64_t kFlagMaterialized = 1;

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("plan snapshot: " + what);
}

void put_i64(std::ostream& os, std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<char>((u >> (8 * i)) & 0xff);
  }
  os.write(bytes, 8);
}

std::int64_t get_i64(std::istream& is) {
  char bytes[8];
  if (!is.read(bytes, 8)) fail("truncated input");
  std::uint64_t u = 0;
  for (int i = 0; i < 8; ++i) {
    u |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[i]))
         << (8 * i);
  }
  return static_cast<std::int64_t>(u);
}

void put_string(std::ostream& os, const std::string& s) {
  put_i64(os, static_cast<std::int64_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_string(std::istream& is) {
  const std::int64_t n = get_i64(is);
  if (n < 0 || n > (1 << 20)) fail("bad string length");
  std::string s(static_cast<std::size_t>(n), '\0');
  if (n > 0 && !is.read(s.data(), n)) fail("truncated string");
  return s;
}

void write_plan(std::ostream& os, const Plan& plan) {
  put_i64(os, static_cast<std::int64_t>(plan.key.problem));
  put_i64(os, plan.key.params.P);
  put_i64(os, plan.key.params.L);
  put_i64(os, plan.key.params.o);
  put_i64(os, plan.key.params.g);
  put_i64(os, plan.key.k);
  put_i64(os, plan.key.root);
  put_i64(os, static_cast<std::int64_t>(plan.key.mask));
  put_i64(os, plan.key.clusters);
  put_i64(os, plan.key.cross_L);
  put_i64(os, plan.key.cross_o);
  put_i64(os, plan.key.cross_g);
  put_i64(os, plan.completion);
  put_i64(os, plan.slack);
  put_i64(os, plan.max_buffer_depth);
  put_i64(os, static_cast<std::int64_t>(plan.total_operands));
  put_i64(os, plan.materialized ? kFlagMaterialized : 0);
  put_string(os, plan.method);
  if (plan.materialized) write_binary(os, plan.schedule);
}

Plan read_plan(std::istream& is, int version) {
  const std::int64_t problem = get_i64(is);
  if (problem < 0 || problem >= kNumProblems) fail("unknown problem id");
  Params params;
  params.P = static_cast<int>(get_i64(is));
  params.L = get_i64(is);
  params.o = get_i64(is);
  params.g = get_i64(is);
  const std::int64_t k = get_i64(is);
  const auto root = static_cast<ProcId>(get_i64(is));
  const std::uint64_t mask =
      version >= 2 ? static_cast<std::uint64_t>(get_i64(is)) : 0;
  std::int32_t clusters = 0;
  Time cross_L = 0, cross_o = 0, cross_g = 0;
  if (version >= 4) {
    clusters = static_cast<std::int32_t>(get_i64(is));
    cross_L = get_i64(is);
    cross_o = get_i64(is);
    cross_g = get_i64(is);
  }
  Plan plan;
  try {
    // Re-canonicalize: a key that round-trips differently (or is garbage)
    // must not enter the cache under a mismatched slot.
    plan.key = PlanKey::make(static_cast<Problem>(problem), params, k, root,
                             mask, clusters, cross_L, cross_o, cross_g);
  } catch (const std::invalid_argument& e) {
    fail(std::string("bad key: ") + e.what());
  }
  if (plan.key.params != params || plan.key.mask != mask ||
      plan.key.clusters != clusters) {
    fail("key not canonical");
  }
  plan.completion = get_i64(is);
  plan.slack = static_cast<int>(get_i64(is));
  plan.max_buffer_depth = static_cast<int>(get_i64(is));
  plan.total_operands = static_cast<std::uint64_t>(get_i64(is));
  const std::int64_t flags = version >= 3 ? get_i64(is) : kFlagMaterialized;
  plan.materialized = (flags & kFlagMaterialized) != 0;
  plan.method = get_string(is);
  if (plan.materialized) {
    plan.schedule = read_binary(is);
  }
  // The generator form is derived state: rebuild it from the canonical key
  // rather than trusting (or paying for) serialized tables.
  if (ImplicitPlan::supports(plan.key)) {
    plan.implicit =
        std::make_shared<const ImplicitPlan>(ImplicitPlan::build(plan.key));
  } else if (!plan.materialized) {
    fail("implicit-only plan for a key without an implicit form");
  }
  return plan;
}

}  // namespace

std::size_t save_snapshot(const PlanCache& cache, std::ostream& os) {
  // entries() is MRU-first per shard; write the reverse so loading replays
  // oldest first and ends with the hottest plans most recent.
  std::vector<PlanPtr> plans = cache.entries();
  std::reverse(plans.begin(), plans.end());
  os.write(kHeader, kHeaderLen);
  put_i64(os, static_cast<std::int64_t>(plans.size()));
  for (const PlanPtr& plan : plans) write_plan(os, *plan);
  return plans.size();
}

std::size_t save_snapshot(const PlanCache& cache, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("plan snapshot: cannot write " + path);
  const std::size_t n = save_snapshot(cache, os);
  os.flush();
  if (!os) throw std::runtime_error("plan snapshot: write failed: " + path);
  return n;
}

std::size_t load_snapshot(PlanCache& cache, std::istream& is) {
  char header[kHeaderLen];
  if (!is.read(header, kHeaderLen)) fail("bad header");
  const std::string got(header, kHeaderLen);
  int version = 0;
  if (got == std::string(kHeader, kHeaderLen)) {
    version = 4;
  } else if (got == std::string(kHeaderV3, kHeaderLen)) {
    version = 3;
  } else if (got == std::string(kHeaderV2, kHeaderLen)) {
    version = 2;
  } else if (got == std::string(kHeaderV1, kHeaderLen)) {
    version = 1;
  } else {
    fail("bad header");
  }
  const std::int64_t count = get_i64(is);
  if (count < 0) fail("negative entry count");
  for (std::int64_t i = 0; i < count; ++i) {
    auto plan = std::make_shared<const Plan>(read_plan(is, version));
    cache.put(plan->key, plan);
  }
  return static_cast<std::size_t>(count);
}

std::size_t load_snapshot(PlanCache& cache, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("plan snapshot: cannot read " + path);
  return load_snapshot(cache, is);
}

}  // namespace logpc::runtime
