/// Streaming feed: continuous broadcast as a market-data-style fanout.  A
/// producer emits one update per cycle; every consumer must see every
/// update with bounded, provably-minimal staleness (Section 3.1-3.3).
///
///   ./streaming_feed [L] [subscribers] [updates]

#include <cstdlib>
#include <iostream>

#include "search/continuous_search.hpp"
#include "sched/metrics.hpp"
#include "validate/checker.hpp"

int main(int argc, char** argv) {
  using namespace logpc;

  Time L = 3;
  int subscribers = 20;
  int updates = 12;
  if (argc >= 2) L = std::atol(argv[1]);
  if (argc >= 3) subscribers = std::atoi(argv[2]);
  if (argc >= 4) updates = std::atoi(argv[3]);

  std::cout << "streaming fanout: 1 producer -> " << subscribers
            << " subscribers, latency L = " << L << ", one update/cycle\n\n";

  // Find the best block-cyclic plan for this subscriber count: optimal
  // staleness L + B(subscribers) when a strict plan exists, one extra
  // cycle otherwise (Theorems 3.3-3.5).
  const auto res = search::best_continuous_plan(L, subscribers);
  if (res.status != bcast::SolveStatus::kSolved) {
    std::cerr << "no block-cyclic plan found\n";
    return 1;
  }
  const auto& plan = *res.plan;
  const Time optimal = bcast::B_of_P(Params::postal(subscribers, L),
                                     subscribers) + L;
  std::cout << "worst-case staleness: " << plan.delay() << " cycles"
            << " (information-theoretic minimum " << optimal << ", slack "
            << plan.delay() - optimal << ")\n";
  std::cout << "role assignment: " << plan.blocks.size()
            << " relay blocks + 1 receive-only subscriber\n";
  for (const auto& b : plan.blocks) {
    std::cout << "  block of " << b.r << " (tree delay " << b.d << "): P"
              << b.members.front() << "..P" << b.members.back() << "\n";
  }

  // Unroll a finite window of the stream and audit it.
  const Schedule s = bcast::emit_k_items(plan, updates);
  const auto check = validate::check(s);
  std::cout << "\n" << updates << "-update window: " << s.sends().size()
            << " messages, last delivery at cycle " << completion_time(s)
            << ", validator: " << check.summary() << "\n";

  // Staleness per update is constant - the stream never falls behind.
  bool steady = true;
  for (const auto& c : item_completions(s)) {
    steady = steady && c.delay() == plan.delay();
  }
  std::cout << "every update ages exactly " << plan.delay()
            << " cycles before full fanout: " << (steady ? "yes" : "NO")
            << "\n";

  // Contrast: per-update optimal trees WITHOUT the block-cyclic rotation
  // would need the producer's neighbours to receive two updates in one
  // cycle - the interference the paper's Section 3.1 example explains.
  std::cout << "\nthroughput: 1 update/cycle sustained (matching the\n"
               "producer), vs 1 update per B(" << subscribers << ") = "
            << optimal - L << " cycles if each update were broadcast in\n"
               "isolation - a "
            << optimal - L << "x throughput win from the rotation.\n";
  return steady && check.ok() ? 0 : 1;
}
