file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_endgame.dir/bench_fig4_endgame.cpp.o"
  "CMakeFiles/bench_fig4_endgame.dir/bench_fig4_endgame.cpp.o.d"
  "bench_fig4_endgame"
  "bench_fig4_endgame.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_endgame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
