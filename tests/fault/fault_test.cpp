#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "api/communicator.hpp"
#include "bcast/single_item.hpp"
#include "exec/engine.hpp"
#include "exec/program.hpp"
#include "runtime/plan_key.hpp"
#include "runtime/planner.hpp"
#include "runtime/snapshot.hpp"
#include "sum/executor.hpp"
#include "sum/summation_tree.hpp"
#include "validate/checker.hpp"
#include "../exec/exec_test_util.hpp"

/// The fault suite runs its injection scenarios at the seed given by
/// LOGPC_FAULT_SEED (default 1); CI sweeps a small fixed seed matrix under
/// ASan and TSan.  Every assertion here must hold at *any* seed.

namespace logpc {
namespace {

namespace tu = exec::testutil;
using exec::Bytes;
using exec::Engine;
using exec::ExecReport;
using runtime::PlanKey;
using runtime::Planner;
using runtime::Problem;

std::uint64_t env_seed() {
  const char* s = std::getenv("LOGPC_FAULT_SEED");
  return (s != nullptr && *s != '\0') ? std::strtoull(s, nullptr, 10) : 1;
}

// --- injector: pure, deterministic decisions ----------------------------

TEST(Injector, DecisionsAreDeterministicInTheSeed) {
  fault::FaultSpec spec;
  spec.seed = env_seed();
  spec.delay_prob = 0.5;
  spec.delay_ns = 1000;
  spec.drop_prob = 0.5;
  const fault::Injector a(spec);
  const fault::Injector b(spec);
  for (ProcId from = 0; from < 8; ++from) {
    for (std::int32_t link = 0; link < 8; ++link) {
      for (std::uint64_t seq = 1; seq <= 4; ++seq) {
        EXPECT_EQ(a.send_delay_ns(from, link, seq),
                  b.send_delay_ns(from, link, seq));
        for (std::uint64_t attempt = 1; attempt <= 4; ++attempt) {
          EXPECT_EQ(a.drop_delivery(from, link, seq, attempt),
                    b.drop_delivery(from, link, seq, attempt));
        }
      }
    }
  }
}

TEST(Injector, DifferentSeedsDisagreeSomewhere) {
  fault::FaultSpec spec;
  spec.seed = env_seed();
  spec.drop_prob = 0.5;
  fault::FaultSpec other = spec;
  other.seed = spec.seed + 1;
  const fault::Injector a(spec);
  const fault::Injector b(other);
  bool differ = false;
  for (std::int32_t link = 0; link < 16 && !differ; ++link) {
    for (std::uint64_t seq = 1; seq <= 16 && !differ; ++seq) {
      differ = a.drop_delivery(0, link, seq, 1) != b.drop_delivery(0, link, seq, 1);
    }
  }
  EXPECT_TRUE(differ);
}

TEST(Injector, DropCapGuaranteesEventualDelivery) {
  fault::FaultSpec spec;
  spec.seed = env_seed();
  spec.drop_prob = 1.0;  // drop everything...
  spec.max_drops_per_message = 3;
  const fault::Injector inj(spec);
  EXPECT_TRUE(inj.drop_delivery(1, 0, 1, 1));
  EXPECT_TRUE(inj.drop_delivery(1, 0, 1, 2));
  EXPECT_TRUE(inj.drop_delivery(1, 0, 1, 3));
  // ...except the attempt past the cap, so a retrying sender gets through.
  EXPECT_FALSE(inj.drop_delivery(1, 0, 1, 4));
}

TEST(Injector, SlowAndDeadKnobs) {
  fault::FaultSpec spec;
  spec.slow_ranks = {2, 5};
  spec.slow_stall_ns = 100;
  spec.dead_rank = 3;
  spec.dead_after_instrs = 2;
  const fault::Injector inj(spec);
  EXPECT_TRUE(inj.is_slow(2));
  EXPECT_TRUE(inj.is_slow(5));
  EXPECT_FALSE(inj.is_slow(3));
  EXPECT_FALSE(inj.dies_at(3, 1));
  EXPECT_TRUE(inj.dies_at(3, 2));
  EXPECT_TRUE(inj.dies_at(3, 7));
  EXPECT_FALSE(inj.dies_at(2, 7));
  EXPECT_TRUE(spec.any());
  EXPECT_FALSE(fault::FaultSpec{}.any());
}

TEST(RemapWithout, ShiftsRanksAboveTheRemovedOne) {
  fault::FaultSpec spec;
  spec.slow_ranks = {1, 3, 6};
  spec.slow_stall_ns = 100;
  spec.dead_rank = 5;
  const fault::FaultSpec out = fault::remap_without(spec, 3);
  EXPECT_EQ(out.slow_ranks, (std::vector<ProcId>{1, 5}));
  EXPECT_EQ(out.dead_rank, 4);
  // Removing the dead rank itself clears the fault: it already fired.
  EXPECT_EQ(fault::remap_without(spec, 5).dead_rank, kNoProc);
}

// --- engine under injected faults ---------------------------------------

TEST(EngineFault, BroadcastSurvivesDropsWithExactlyOnceDelivery) {
  const Params params{8, 4, 1, 2};
  const Schedule s = bcast::optimal_single_item(params);
  const exec::Program prog = exec::compile_broadcast(s, "bcast-drop");
  fault::FaultSpec spec;
  spec.seed = env_seed();
  spec.drop_prob = 0.7;
  const fault::Injector inj(spec);
  Engine engine;
  const Bytes payload = tu::of_str("survives a lossy network");
  const ExecReport report = engine.run(prog, {payload}, &inj);

  for (ProcId p = 0; p < params.P; ++p) {
    EXPECT_EQ(report.item_at(p, 0), payload) << "P" << p;
  }
  EXPECT_TRUE(validate::check_delivery_order(s, report.deliveries).ok());
  EXPECT_TRUE(validate::check_exactly_once(report.deliveries).ok());
  // drop_prob 0.7 over 7 messages: some delivery was dropped and retried
  // at any seed with overwhelming probability -- but only assert the
  // accounting is consistent, not that faults fired.
  std::size_t drops = 0;
  for (const auto& evs : report.fault_events) {
    for (const auto& fe : evs) {
      if (fe.kind == fault::FaultKind::kDrop) ++drops;
    }
  }
  if (drops > 0) {
    EXPECT_GT(report.retries, 0u);
  }
}

TEST(EngineFault, SameSeedSameFaultEventLog) {
  const Params params{8, 4, 1, 2};
  const Schedule s = bcast::optimal_single_item(params);
  const exec::Program prog = exec::compile_broadcast(s, "bcast-det");
  fault::FaultSpec spec;
  spec.seed = env_seed();
  spec.drop_prob = 0.6;
  spec.delay_prob = 0.4;
  spec.delay_ns = 50'000;
  const fault::Injector inj(spec);
  Engine engine;
  const Bytes payload = tu::of_str("deterministic");
  const ExecReport first = engine.run(prog, {payload}, &inj);
  const ExecReport second = engine.run(prog, {payload}, &inj);
  ASSERT_EQ(first.fault_events.size(), second.fault_events.size());
  for (std::size_t p = 0; p < first.fault_events.size(); ++p) {
    EXPECT_EQ(first.fault_events[p], second.fault_events[p]) << "P" << p;
  }
}

TEST(EngineFault, SlowRankDegradesLatencyNotMembership) {
  const Params params{6, 4, 1, 2};
  const Schedule s = bcast::optimal_single_item(params);
  const exec::Program prog = exec::compile_broadcast(s, "bcast-slow");
  fault::FaultSpec spec;
  spec.seed = env_seed();
  spec.slow_ranks = {1};
  spec.slow_stall_ns = 200'000;  // well past the ack timeout
  const fault::Injector inj(spec);
  Engine engine;
  const Bytes payload = tu::of_str("slow but alive");
  const ExecReport report = engine.run(prog, {payload}, &inj);  // no throw
  for (ProcId p = 0; p < params.P; ++p) {
    EXPECT_EQ(report.item_at(p, 0), payload);
  }
  ASSERT_FALSE(report.fault_events[1].empty());
  EXPECT_EQ(report.fault_events[1][0].kind, fault::FaultKind::kSlow);
}

TEST(EngineFault, DeadRankRaisesRankFailureNamingTheRank) {
  const Params params{8, 4, 1, 2};
  const Schedule s = bcast::optimal_single_item(params);
  const exec::Program prog = exec::compile_broadcast(s, "bcast-dead");
  fault::FaultSpec spec;
  spec.seed = env_seed();
  spec.dead_rank = 4;
  spec.dead_after_instrs = 0;
  const fault::Injector inj(spec);
  Engine engine;
  try {
    (void)engine.run(prog, {tu::of_str("x")}, &inj);
    FAIL() << "expected exec::RankFailure";
  } catch (const exec::RankFailure& failure) {
    EXPECT_EQ(failure.rank(), 4);
  }
}

TEST(EngineFault, SummationUnderDropsKeepsNonCommutativeOrder) {
  const Params params{8, 4, 1, 2};  // g >= o + 1
  const sum::SummationPlan plan = sum::optimal_summation(params, 30);
  ASSERT_GT(plan.total_operands, 0u);
  const exec::Program prog = exec::compile_summation(plan);

  const auto layout = sum::operand_layout(plan);
  std::vector<std::vector<Bytes>> operands(plan.procs.size());
  int next = 0;
  for (std::size_t i = 0; i < layout.size(); ++i) {
    for (std::size_t j = 0; j < layout[i].total(); ++j) {
      operands[i].push_back(tu::of_str("[" + std::to_string(next++) + "]"));
    }
  }

  Engine engine;
  const ExecReport clean = engine.run(prog, operands, tu::concat());

  fault::FaultSpec spec;
  spec.seed = env_seed();
  spec.drop_prob = 0.6;
  const fault::Injector inj(spec);
  const ExecReport faulty = engine.run(prog, operands, tu::concat(), &inj);

  // Retried deliveries must not perturb the plan's combination order: the
  // concatenation (associative, NOT commutative) must match the fault-free
  // fold byte for byte.
  EXPECT_EQ(tu::to_str(faulty.folded_at(plan.root)),
            tu::to_str(clean.folded_at(plan.root)));
  EXPECT_TRUE(validate::check_exactly_once(faulty.deliveries).ok());
}

TEST(CheckExactlyOnce, FlagsALeakedDuplicate) {
  std::vector<std::vector<validate::DeliveryRecord>> observed(2);
  observed[1] = {{0, 0}, {0, 1}, {0, 0}};  // (from 0, item 0) accepted twice
  const auto result = validate::check_exactly_once(observed);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].rule, validate::Rule::kDuplicateReceive);
  EXPECT_TRUE(validate::check_exactly_once({}).ok());
}

// --- degraded re-planning: PlanKey masks --------------------------------

TEST(PlanKeyMask, NormalizesAndValidates) {
  const Params params{8, 4, 1, 2};
  // Full membership collapses to the mask-free fast path.
  EXPECT_EQ(PlanKey::make(Problem::kBroadcast, params, 1, 0, 0xffu).mask, 0u);
  const PlanKey degraded =
      PlanKey::make(Problem::kBroadcast, params, 1, 0, 0xffu & ~(1u << 3));
  EXPECT_EQ(degraded.mask, 0xf7u);
  EXPECT_EQ(degraded.live_count(), 7);
  const std::vector<ProcId> live = degraded.live_ranks();
  ASSERT_EQ(live.size(), 7u);
  EXPECT_EQ(live[2], 2);
  EXPECT_EQ(live[3], 4);  // rank 3 gone, physical 4 is plan proc 3
  // Masked and unmasked keys must not collide in the cache.
  EXPECT_FALSE(degraded == PlanKey::make(Problem::kBroadcast, params));
  EXPECT_NE(degraded.hash(), PlanKey::make(Problem::kBroadcast, params).hash());
  // Bits past P, and masks excluding the root of a rooted problem, are bugs.
  EXPECT_THROW((void)PlanKey::make(Problem::kBroadcast, params, 1, 0, 1u << 8),
               std::invalid_argument);
  EXPECT_THROW(
      (void)PlanKey::make(Problem::kBroadcast, params, 1, 3, 0xffu & ~(1u << 3)),
      std::invalid_argument);
  std::ostringstream os;
  os << degraded;
  EXPECT_NE(os.str().find("mask=0xf7"), std::string::npos);
}

TEST(PlanKeyMask, MaskedBuildIsTheCompactedOptimalPlan) {
  const Params params{8, 4, 1, 2};
  const std::uint64_t mask = 0xffu & ~(1u << 5);
  const runtime::Plan degraded =
      Planner::build_uncached(PlanKey::make(Problem::kBroadcast, params, 1, 0, mask));
  EXPECT_EQ(degraded.key.mask, mask);
  EXPECT_EQ(degraded.schedule.params().P, 7);
  // Same construction as asking for the 7-processor machine directly: the
  // broadcast tree is universal, so the degraded plan is itself optimal.
  Params compact = params;
  compact.P = 7;
  const runtime::Plan direct =
      Planner::build_uncached(PlanKey::make(Problem::kBroadcast, compact));
  EXPECT_EQ(degraded.completion, direct.completion);
  EXPECT_EQ(degraded.schedule.sends().size(), direct.schedule.sends().size());
}

TEST(PlanKeyMask, PlannerCachesMaskedAndUnmaskedSeparately) {
  Planner planner;
  const Params params{8, 4, 1, 2};
  const auto full = planner.plan(PlanKey::make(Problem::kBroadcast, params));
  const auto masked = planner.plan(
      PlanKey::make(Problem::kBroadcast, params, 1, 0, 0xffu & ~(1u << 2)));
  EXPECT_NE(full.get(), masked.get());
  EXPECT_EQ(planner.builds(), 2u);
  // Re-requesting the masked key is a cache hit, not a rebuild.
  (void)planner.plan(
      PlanKey::make(Problem::kBroadcast, params, 1, 0, 0xffu & ~(1u << 2)));
  EXPECT_EQ(planner.builds(), 2u);
}

TEST(PlanKeyMask, SnapshotRoundTripsMaskedKeys) {
  runtime::PlanCache cache(16, 1);
  const Params params{8, 4, 1, 2};
  const PlanKey key =
      PlanKey::make(Problem::kBroadcast, params, 1, 0, 0xffu & ~(1u << 6));
  cache.put(key, std::make_shared<const runtime::Plan>(
                     Planner::build_uncached(key)));
  std::stringstream buf;
  EXPECT_EQ(runtime::save_snapshot(cache, buf), 1u);
  runtime::PlanCache loaded(16, 1);
  EXPECT_EQ(runtime::load_snapshot(loaded, buf), 1u);
  const auto hit = loaded.get(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->key.mask, key.mask);
  EXPECT_EQ(hit->schedule.params().P, 7);
}

// --- the recovery layer (api::Communicator::run_broadcast_ft) -----------

/// A rank (never the root) with at least two instructions, so killing it
/// after its first instruction is a genuine mid-collective crash whatever
/// shape the optimal tree takes.
ProcId pick_relay_rank(const exec::Program& prog) {
  for (std::size_t p = 1; p < prog.procs.size(); ++p) {
    if (prog.procs[p].instrs.size() >= 2) return static_cast<ProcId>(p);
  }
  return 1;  // fall back: leaf death is still a valid crash
}

api::FtRunOptions ft_options(const fault::FaultSpec& spec) {
  api::FtRunOptions opt;
  opt.faults = spec;
  return opt;
}

TEST(Recovery, BroadcastCompletesOnSurvivorsAfterMidRunDeath) {
  const Params params{8, 4, 1, 2};
  const api::Communicator comm(params);
  const exec::Program probe =
      exec::compile_broadcast(bcast::optimal_single_item(params), "probe");
  const ProcId victim = pick_relay_rank(probe);

  fault::FaultSpec spec;
  spec.seed = env_seed();
  spec.dead_rank = victim;
  spec.dead_after_instrs = 1;
  const Bytes payload = tu::of_str("the collective outlives rank " +
                                   std::to_string(victim));

  const api::FtRunResult res =
      comm.run_broadcast_ft(payload, 0, ft_options(spec));

  ASSERT_EQ(res.status, api::RunStatus::kRecovered);
  EXPECT_EQ(res.attempts, 2);
  ASSERT_EQ(res.failed_ranks, std::vector<ProcId>{victim});
  ASSERT_EQ(res.survivors.size(), 7u);
  for (const ProcId r : res.survivors) EXPECT_NE(r, victim);
  EXPECT_GT(res.recovery_ns, 0u);

  // Byte-exact payloads on every survivor, exactly-once, in plan order.
  for (std::size_t p = 0; p < res.survivors.size(); ++p) {
    EXPECT_EQ(res.report.item_at(static_cast<ProcId>(p), 0), payload)
        << "survivor " << res.survivors[p];
  }
  ASSERT_NE(res.plan, nullptr);
  EXPECT_TRUE(
      validate::check_delivery_order(res.plan->schedule, res.report.deliveries)
          .ok());
  EXPECT_TRUE(validate::check_exactly_once(res.report.deliveries).ok());
}

TEST(Recovery, SameSeedSameRecoveryAndSameEventLog) {
  const Params params{8, 4, 1, 2};
  const api::Communicator comm(params);
  fault::FaultSpec spec;
  spec.seed = env_seed();
  spec.dead_rank = 3;
  spec.dead_after_instrs = 0;
  spec.drop_prob = 0.4;
  const Bytes payload = tu::of_str("replayable");

  const api::FtRunResult a = comm.run_broadcast_ft(payload, 0, ft_options(spec));
  const api::FtRunResult b = comm.run_broadcast_ft(payload, 0, ft_options(spec));
  ASSERT_EQ(a.status, api::RunStatus::kRecovered);
  ASSERT_EQ(b.status, api::RunStatus::kRecovered);
  EXPECT_EQ(a.failed_ranks, b.failed_ranks);
  EXPECT_EQ(a.survivors, b.survivors);
  ASSERT_EQ(a.report.fault_events.size(), b.report.fault_events.size());
  for (std::size_t p = 0; p < a.report.fault_events.size(); ++p) {
    EXPECT_EQ(a.report.fault_events[p], b.report.fault_events[p]) << "P" << p;
  }
}

TEST(Recovery, RootDeathIsUnrecoverable) {
  const Params params{4, 4, 1, 2};
  const api::Communicator comm(params);
  fault::FaultSpec spec;
  spec.seed = env_seed();
  spec.dead_rank = 0;  // the root
  spec.dead_after_instrs = 0;
  const api::FtRunResult res =
      comm.run_broadcast_ft(tu::of_str("x"), 0, ft_options(spec));
  EXPECT_EQ(res.status, api::RunStatus::kFailed);
  EXPECT_FALSE(res.error.empty());
}

TEST(Recovery, AbortPolicyRethrowsRankFailure) {
  const Params params{4, 4, 1, 2};
  const api::Communicator comm(params);
  fault::FaultSpec spec;
  spec.seed = env_seed();
  spec.dead_rank = 2;
  spec.dead_after_instrs = 0;
  api::FtRunOptions opt = ft_options(spec);
  opt.policy = api::FailurePolicy::kAbort;
  EXPECT_THROW((void)comm.run_broadcast_ft(tu::of_str("x"), 0, opt),
               exec::RankFailure);
}

TEST(Recovery, FaultFreeRunReportsOkWithIdentitySurvivors) {
  const Params params{4, 4, 1, 2};
  const api::Communicator comm(params);
  const Bytes payload = tu::of_str("nothing goes wrong");
  const api::FtRunResult res = comm.run_broadcast_ft(payload, 0);
  EXPECT_EQ(res.status, api::RunStatus::kOk);
  EXPECT_EQ(res.attempts, 1);
  EXPECT_TRUE(res.failed_ranks.empty());
  ASSERT_EQ(res.survivors.size(), 4u);
  for (ProcId p = 0; p < 4; ++p) {
    EXPECT_EQ(res.survivors[static_cast<std::size_t>(p)], p);
    EXPECT_EQ(res.report.item_at(p, 0), payload);
  }
}

}  // namespace
}  // namespace logpc
