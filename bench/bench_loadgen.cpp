/// mpptest-style sustained-load driver for a live CollectiveService — the
/// measurement half of the high-throughput path.  Three phases, all
/// against real engine pools on one machine (P = 8):
///
///  1. fusion    — 8 concurrent same-shape submitters (64 B broadcast,
///     batch class, one request in flight each) against a fused service
///     and against the same service with the fusion window disabled.
///     Reports sustained collectives/sec, p50/p99/p999, the fused-batch-
///     size distribution (from the logpc_svc_batch_size histogram), and
///     the fused/unfused ratio (ISSUE acceptance floor: 2x).
///  2. segmented — large broadcasts (256 KiB, 512 KiB) through the
///     Section 3 k-item segmented pipeline vs the bulk single-send
///     (segment_threshold = 0).  Acceptance: segmented beats bulk from
///     256 KiB up.
///  3. openloop  — a configurable op/size/QoS/tenant mix arriving at a
///     target rate (open loop: submission never waits for completion),
///     reporting per-class completion latencies.
///
/// Everything lands in BENCH_throughput.json; run under
/// LOGPC_BENCH_MERGE=1 to append to bench_service's entries instead of
/// replacing the file.
///
/// Custom main (LOGPC_BENCH_MAIN rejects non-benchmark flags):
///
///   bench_loadgen [--smoke] [--requests=N] [--seg-ops=N]
///                 [--arrivals=N] [--rate=RPS]
///
/// --smoke shrinks every phase for CI and *gates*: exit 1 unless fused
/// sustained throughput >= unfused (the committed floor — fusion must
/// never lose to the path it amortizes).

#include "bench_util.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "svc/service.hpp"

namespace {

using namespace logpc;
using logpc::bench::Table;

constexpr int kP = 8;
Params machine() { return Params{kP, 4, 1, 2}; }

struct Config {
  bool smoke = false;
  int requests_per_submitter = 400;  ///< phase 1, per submitter thread
  int submitters = 8;
  int seg_ops = 24;                  ///< phase 2, per payload/mode cell
  int arrivals = 2400;               ///< phase 3, total
  double rate = 3000;                ///< phase 3, target arrivals/sec
};

exec::Bytes payload_of(std::size_t size, unsigned seed = 0) {
  exec::Bytes b(size);
  for (std::size_t i = 0; i < size; ++i) {
    b[i] = static_cast<std::byte>((i * 31 + seed) & 0xFF);
  }
  return b;
}

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx =
      static_cast<std::size_t>(q * static_cast<double>(v.size() - 1));
  return v[idx];
}

/// The service-wide batch-size histogram (count/sum/buckets), for
/// before/after deltas around a phase.
obs::MetricSnapshot batch_size_hist() {
  for (const obs::MetricSnapshot& s : obs::MetricsRegistry::global()
                                          .snapshot()) {
    if (s.name == "logpc_svc_batch_size" && s.labels.empty()) return s;
  }
  return {};
}

struct PhaseResult {
  double rps = 0;
  double p50_ns = 0, p99_ns = 0, p999_ns = 0;
  int completed = 0;
  double mean_batch = 0;      ///< requests per engine dispatch
  double fused_share = 0;     ///< completions that rode a >= 2 batch
  std::vector<std::pair<double, std::uint64_t>> batch_buckets;
};

/// Phase 1 worker pool: `submitters` threads, each its own tenant, one
/// same-shape 64 B batch-class broadcast in flight at a time.
PhaseResult run_fusion_phase(const Config& cfg, bool fused) {
  svc::CollectiveService::Options opts;
  opts.pools = 2;
  if (!fused) opts.fusion_window_us = 0;
  svc::CollectiveService service(machine(), opts);
  std::vector<svc::TenantId> tenants;
  for (int t = 0; t < cfg.submitters; ++t) {
    tenants.push_back(service.register_tenant(
        {.name = std::string("loadgen-") + (fused ? "f" : "u") + "-" +
                 std::to_string(t)}));
  }
  const exec::Bytes payload = payload_of(64);

  const obs::MetricSnapshot before = batch_size_hist();
  std::vector<std::vector<double>> lat(
      static_cast<std::size_t>(cfg.submitters));
  std::vector<std::uint64_t> fused_completions(
      static_cast<std::size_t>(cfg.submitters), 0);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < cfg.submitters; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < cfg.requests_per_submitter; ++i) {
        svc::Request req;
        req.op = svc::OpKind::kBroadcast;
        req.qos = svc::QoS::kBatch;
        req.payload = payload;
        svc::SubmitResult sub =
            service.submit(tenants[static_cast<std::size_t>(t)],
                           std::move(req));
        if (!sub.accepted()) continue;
        const svc::Response r = sub.response.get();
        if (r.status != svc::Status::kOk) continue;
        lat[static_cast<std::size_t>(t)].push_back(
            static_cast<double>(r.total_ns));
        fused_completions[static_cast<std::size_t>(t)] +=
            r.fused > 1 ? 1u : 0u;
      }
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& th : threads) th.join();
  const auto wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  const obs::MetricSnapshot after = batch_size_hist();

  PhaseResult res;
  std::vector<double> all;
  std::uint64_t fused_total = 0;
  for (int t = 0; t < cfg.submitters; ++t) {
    all.insert(all.end(), lat[static_cast<std::size_t>(t)].begin(),
               lat[static_cast<std::size_t>(t)].end());
    fused_total += fused_completions[static_cast<std::size_t>(t)];
  }
  res.completed = static_cast<int>(all.size());
  res.rps = wall_ns > 0 ? 1e9 * static_cast<double>(all.size()) / wall_ns : 0;
  res.p50_ns = percentile(all, 0.50);
  res.p99_ns = percentile(all, 0.99);
  res.p999_ns = percentile(all, 0.999);
  res.fused_share =
      all.empty() ? 0
                  : static_cast<double>(fused_total) /
                        static_cast<double>(all.size());
  const std::uint64_t dispatches = after.count - before.count;
  const double requests = after.sum - before.sum;
  res.mean_batch =
      dispatches > 0 ? requests / static_cast<double>(dispatches) : 0;
  for (std::size_t b = 0;
       b < after.bounds.size() && b < after.bucket_counts.size() &&
       b < before.bucket_counts.size();
       ++b) {
    res.batch_buckets.emplace_back(
        after.bounds[b], after.bucket_counts[b] - before.bucket_counts[b]);
  }
  return res;
}

/// Phase 2: one large broadcast at a time, segmented vs bulk.
struct SegResult {
  double ns_per_op = 0;
  double rps = 0;
  std::uint32_t segments = 1;
};

SegResult run_segment_phase(const Config& cfg, std::size_t payload_bytes,
                            bool segmented) {
  svc::CollectiveService::Options opts;
  opts.pools = 1;
  opts.fusion_window_us = 0;  // isolate segmentation from fusion
  if (!segmented) opts.segment_threshold = 0;
  svc::CollectiveService service(machine(), opts);
  const svc::TenantId t = service.register_tenant(
      {.name = std::string("loadgen-seg-") + (segmented ? "s" : "b") + "-" +
               std::to_string(payload_bytes)});
  const exec::Bytes payload = payload_of(payload_bytes, 7);

  SegResult res;
  // One untimed warmup op so both modes measure warm pools and buffers.
  {
    svc::Request req;
    req.op = svc::OpKind::kBroadcast;
    req.payload = payload;
    svc::SubmitResult sub = service.submit(t, std::move(req));
    if (sub.accepted()) (void)sub.response.get();
  }
  const auto t0 = std::chrono::steady_clock::now();
  int completed = 0;
  for (int i = 0; i < cfg.seg_ops; ++i) {
    svc::Request req;
    req.op = svc::OpKind::kBroadcast;
    req.payload = payload;
    svc::SubmitResult sub = service.submit(t, std::move(req));
    if (!sub.accepted()) continue;
    const svc::Response r = sub.response.get();
    if (r.status != svc::Status::kOk) continue;
    ++completed;
    res.segments = r.segments;
  }
  const auto wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  res.ns_per_op = completed > 0 ? wall_ns / completed : 0;
  res.rps = wall_ns > 0 ? 1e9 * completed / wall_ns : 0;
  return res;
}

/// Phase 3: open-loop mixed traffic.  The mix (per arrival, drawn from a
/// seeded generator): 60% interactive 64 B broadcast, 25% batch 4 KiB
/// broadcast, 15% batch f64-sum reduce (256 B per rank).
struct OpenloopClass {
  int arrivals = 0;
  int completed = 0;
  int rejected = 0;
  std::vector<double> lat;
};

void run_openloop_phase(const Config& cfg, bench::JsonReport& report) {
  svc::CollectiveService::Options opts;
  opts.pools = 2;
  svc::CollectiveService service(machine(), opts);
  constexpr int kTenants = 4;
  std::vector<svc::TenantId> tenants;
  for (int t = 0; t < kTenants; ++t) {
    tenants.push_back(service.register_tenant(
        {.name = "loadgen-mix-" + std::to_string(t),
         .queue_capacity = 256}));
  }
  const exec::Bytes small = payload_of(64, 1);
  const exec::Bytes big = payload_of(4096, 2);

  std::mt19937 rng(12345);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::vector<std::pair<svc::QoS, std::future<svc::Response>>> pending;
  pending.reserve(static_cast<std::size_t>(cfg.arrivals));
  OpenloopClass cls[svc::kQoSClasses];

  const auto interval = std::chrono::nanoseconds(
      static_cast<std::int64_t>(1e9 / std::max(cfg.rate, 1.0)));
  const auto t0 = std::chrono::steady_clock::now();
  auto next = t0;
  for (int i = 0; i < cfg.arrivals; ++i) {
    std::this_thread::sleep_until(next);
    next += interval;
    const double draw = u(rng);
    svc::Request req;
    if (draw < 0.60) {
      req.op = svc::OpKind::kBroadcast;
      req.qos = svc::QoS::kInteractive;
      req.payload = small;
    } else if (draw < 0.85) {
      req.op = svc::OpKind::kBroadcast;
      req.qos = svc::QoS::kBatch;
      req.payload = big;
    } else {
      req.op = svc::OpKind::kReduce;
      req.qos = svc::QoS::kBatch;
      req.combine = exec::Combiner(
          exec::KernelSpec{exec::Op::kSum, exec::DType::kF64});
      for (int p = 0; p < kP; ++p) req.values.push_back(payload_of(256, 3));
    }
    const svc::QoS qos = req.qos;
    auto& c = cls[static_cast<std::size_t>(qos)];
    ++c.arrivals;
    svc::SubmitResult sub = service.submit(
        tenants[static_cast<std::size_t>(i % kTenants)], std::move(req));
    if (!sub.accepted()) {
      ++c.rejected;
      continue;
    }
    pending.emplace_back(qos, std::move(sub.response));
  }
  for (auto& [qos, fut] : pending) {
    const svc::Response r = fut.get();
    auto& c = cls[static_cast<std::size_t>(qos)];
    if (r.status != svc::Status::kOk) continue;
    ++c.completed;
    c.lat.push_back(static_cast<double>(r.total_ns));
  }
  const auto wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());

  Table t({"class", "arrivals", "completed", "rejected", "p50 us", "p99 us",
           "p999 us"});
  for (std::size_t q = 0; q < svc::kQoSClasses; ++q) {
    const OpenloopClass& c = cls[q];
    if (c.arrivals == 0) continue;
    const char* name = svc::qos_name(static_cast<svc::QoS>(q));
    t.row(name, c.arrivals, c.completed, c.rejected,
          percentile(c.lat, 0.50) / 1000.0, percentile(c.lat, 0.99) / 1000.0,
          percentile(c.lat, 0.999) / 1000.0);
    report.entry("loadgen_openloop",
                 {{"qos", name},
                  {"P", std::to_string(kP)},
                  {"tenants", std::to_string(kTenants)}},
                 {{"target_rps", cfg.rate},
                  {"achieved_rps",
                   wall_ns > 0 ? 1e9 * c.completed / wall_ns : 0},
                  {"arrivals", static_cast<double>(c.arrivals)},
                  {"completed", static_cast<double>(c.completed)},
                  {"rejected", static_cast<double>(c.rejected)},
                  {"p50_ns", percentile(c.lat, 0.50)},
                  {"p99_ns", percentile(c.lat, 0.99)},
                  {"p999_ns", percentile(c.lat, 0.999)}});
  }
  t.print();
}

void add_fusion_entry(bench::JsonReport& report, const Config& cfg,
                      const std::string& mode, const PhaseResult& r) {
  std::vector<std::pair<std::string, double>> values = {
      {"collectives_per_sec", r.rps},
      {"completed", static_cast<double>(r.completed)},
      {"p50_ns", r.p50_ns},
      {"p99_ns", r.p99_ns},
      {"p999_ns", r.p999_ns},
      {"mean_batch", r.mean_batch},
      {"fused_share", r.fused_share}};
  for (const auto& [le, n] : r.batch_buckets) {
    values.emplace_back("batch_le_" + std::to_string(static_cast<int>(le)),
                        static_cast<double>(n));
  }
  report.entry("loadgen_sustained",
               {{"mode", mode},
                {"P", std::to_string(kP)},
                {"payload", "64"},
                {"submitters", std::to_string(cfg.submitters)}},
               std::move(values));
}

int usage() {
  std::cout
      << "bench_loadgen [--smoke] [--requests=N] [--seg-ops=N]\n"
      << "              [--arrivals=N] [--rate=RPS]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto num = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (arg == "--smoke") {
      cfg.smoke = true;
      cfg.requests_per_submitter = 80;
      cfg.seg_ops = 8;
      cfg.arrivals = 500;
      cfg.rate = 2000;
    } else if (const char* v = num("--requests=")) {
      cfg.requests_per_submitter = std::atoi(v);
    } else if (const char* v2 = num("--seg-ops=")) {
      cfg.seg_ops = std::atoi(v2);
    } else if (const char* v3 = num("--arrivals=")) {
      cfg.arrivals = std::atoi(v3);
    } else if (const char* v4 = num("--rate=")) {
      cfg.rate = std::atof(v4);
    } else {
      return usage();
    }
  }

  bench::JsonReport report("throughput");

  bench::section("phase 1: fusion batching, " +
                 std::to_string(cfg.submitters) + " same-shape submitters");
  const PhaseResult unfused = run_fusion_phase(cfg, /*fused=*/false);
  const PhaseResult fused = run_fusion_phase(cfg, /*fused=*/true);
  const double ratio = unfused.rps > 0 ? fused.rps / unfused.rps : 0;
  {
    Table t({"mode", "completed", "collectives/s", "p50 us", "p99 us",
             "p999 us", "mean batch", "fused share"});
    t.row("unfused", unfused.completed, static_cast<std::int64_t>(unfused.rps),
          unfused.p50_ns / 1000.0, unfused.p99_ns / 1000.0,
          unfused.p999_ns / 1000.0, unfused.mean_batch, unfused.fused_share);
    t.row("fused", fused.completed, static_cast<std::int64_t>(fused.rps),
          fused.p50_ns / 1000.0, fused.p99_ns / 1000.0,
          fused.p999_ns / 1000.0, fused.mean_batch, fused.fused_share);
    t.print();
    std::cout << "\nfused/unfused throughput: " << ratio
              << "x (acceptance: >= 2x; smoke floor: >= 1x)\n";
  }
  add_fusion_entry(report, cfg, "unfused", unfused);
  add_fusion_entry(report, cfg, "fused", fused);
  report.entry("fusion_speedup",
               {{"P", std::to_string(kP)},
                {"payload", "64"},
                {"submitters", std::to_string(cfg.submitters)}},
               {{"fused_over_unfused", ratio}});

  bench::section("phase 2: segmented pipeline vs bulk single-send");
  {
    Table t({"payload KiB", "mode", "segments", "ns/op", "speedup"});
    for (const std::size_t bytes : {256u * 1024u, 512u * 1024u}) {
      const SegResult bulk = run_segment_phase(cfg, bytes, false);
      const SegResult seg = run_segment_phase(cfg, bytes, true);
      const double speedup =
          seg.ns_per_op > 0 ? bulk.ns_per_op / seg.ns_per_op : 0;
      t.row(bytes / 1024, "bulk", bulk.segments,
            static_cast<std::int64_t>(bulk.ns_per_op), 1.0);
      t.row(bytes / 1024, "segmented", seg.segments,
            static_cast<std::int64_t>(seg.ns_per_op), speedup);
      for (const auto* pr : {&bulk, &seg}) {
        report.entry("loadgen_segmented",
                     {{"mode", pr == &seg ? "segmented" : "bulk"},
                      {"P", std::to_string(kP)},
                      {"payload", std::to_string(bytes)}},
                     {{"ns_per_op", pr->ns_per_op},
                      {"collectives_per_sec", pr->rps},
                      {"segments", static_cast<double>(pr->segments)}});
      }
      report.entry("segment_speedup",
                   {{"P", std::to_string(kP)},
                    {"payload", std::to_string(bytes)}},
                   {{"bulk_over_segmented", speedup}});
    }
    t.print();
  }

  bench::section("phase 3: open-loop mixed traffic @ " +
                 std::to_string(static_cast<int>(cfg.rate)) + "/s");
  run_openloop_phase(cfg, report);

  report.attach_metrics(obs::MetricsRegistry::global());
  const std::string path = report.write();
  std::cout << "\n"
            << (path.empty() ? "FAILED to write bench json"
                             : "bench json: " + path)
            << "\n";

  if (cfg.smoke && ratio < 1.0) {
    std::cout << "SMOKE FAIL: fused sustained throughput (" << fused.rps
              << "/s) fell below unfused (" << unfused.rps
              << "/s) — the fusion batcher must never lose to the path it "
                 "amortizes\n";
    return 1;
  }
  return 0;
}
