#include <gtest/gtest.h>

#include "bcast/all_to_all.hpp"
#include "bcast/continuous.hpp"
#include "bcast/kitem.hpp"
#include "bcast/kitem_buffered.hpp"
#include "sched/metrics.hpp"
#include "sum/executor.hpp"
#include "sum/lazy.hpp"
#include "validate/checker.hpp"

/// Larger-instance integration: the constructions and the validator must
/// stay correct (and fast) well past the sizes the unit tests use.

namespace logpc {
namespace {

TEST(Scale, ContinuousBroadcastAt123Receivers) {
  // L = 3, t = 13 -> f_13 = 88... compute: the solver handles it either
  // way; assert the generic invariants rather than the size.
  const auto res = bcast::plan_continuous(3, 13);
  ASSERT_EQ(res.status, bcast::SolveStatus::kSolved);
  const int k = 20;
  const Schedule s = bcast::emit_k_items(*res.plan, k);
  const auto check = validate::check(s);
  ASSERT_TRUE(check.ok()) << check.summary();
  EXPECT_EQ(max_delay(s), 3 + 13);
  EXPECT_EQ(completion_time(s), 3 + 13 + k - 1);
}

TEST(Scale, KItemOnLargeMachine) {
  const auto r = bcast::kitem_broadcast(124, 3, 24);
  const auto check = validate::check(r.schedule);
  ASSERT_TRUE(check.ok()) << check.summary();
  EXPECT_LE(r.completion, r.bounds.single_sending_upper);
  EXPECT_TRUE(is_single_sending(r.schedule, 0));
}

TEST(Scale, BufferedKItemOnLargeMachine) {
  const auto r = bcast::kitem_buffered(200, 2, 16);
  EXPECT_EQ(r.completion, r.bounds.single_sending_lower);
  const auto check =
      validate::check(r.schedule, {.buffered = true, .buffer_limit = 2});
  ASSERT_TRUE(check.ok()) << check.summary();
}

TEST(Scale, BroadcastTreeAtFourThousand) {
  const Params params{4096, 12, 2, 4};
  const auto tree = bcast::BroadcastTree::optimal(params, 4096);
  EXPECT_EQ(tree.makespan(), bcast::B_of_P(params, 4096));
  const Schedule s = tree.to_schedule();
  EXPECT_TRUE(validate::is_valid(s));
}

TEST(Scale, SummationWithManyOperands) {
  const Params params{128, 4, 1, 4};
  const Count n = 250'000;
  const Time t = sum::min_time_for_operands(params, n);
  const auto plan = sum::optimal_summation(params, t);
  ASSERT_GE(plan.total_operands, n);
  EXPECT_TRUE(sum::is_valid_plan(plan));
  const auto total = static_cast<long long>(plan.total_operands);
  EXPECT_EQ(sum::execute_iota_sum(plan), total * (total - 1) / 2);
}

TEST(Scale, ValidatorHandlesTensOfThousandsOfSends) {
  // All-to-all on 128 processors: 16k messages.
  const Params params = Params::postal(128, 4);
  const Schedule s = bcast::all_to_all(params);
  EXPECT_EQ(s.sends().size(), 128u * 127u);
  EXPECT_TRUE(validate::is_valid(s));
}

}  // namespace
}  // namespace logpc
