/// Collective-service demo: the daemon view of the paper's collectives.
/// Instead of calling run_broadcast one collective at a time, three
/// tenants — an interactive dashboard, a batch analytics job and a
/// best-effort backfill — submit requests into a long-running
/// CollectiveService and get futures back while the service:
///
///   1. admits or rejects each request synchronously (bounded per-tenant
///      queues, a token-bucket rate limit on the backfill tenant),
///   2. orders dispatch by QoS class, then weighted fair share among the
///      tenants inside a class, and
///   3. executes on persistent, prewarmed engine pools, so every run
///      reports warm_pool — no thread is spawned on the request path.
///
///   ./service_demo                          # one-shot demo
///   ./service_demo --introspect 0           # also serve HTTP introspection
///   ./service_demo --introspect 8080 --serve-ms 5000
///
/// With --introspect the daemon binds the live endpoint (port 0 picks an
/// ephemeral port, printed as "introspect: listening on ..."), and
/// --serve-ms keeps the service alive that long after the demo workload so
/// /healthz, /metrics, /statusz and /tracez can be scraped.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "svc/service.hpp"

int main(int argc, char** argv) {
  using namespace logpc;
  const Params machine{8, 4, 1, 2};

  int introspect_port = -1;  // disabled unless --introspect is given
  int serve_ms = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--introspect" && i + 1 < argc) {
      introspect_port = std::atoi(argv[++i]);
    } else if (arg == "--serve-ms" && i + 1 < argc) {
      serve_ms = std::atoi(argv[++i]);
    } else {
      std::cerr << "usage: service_demo [--introspect PORT] [--serve-ms MS]\n";
      return 2;
    }
  }

  svc::CollectiveService::Options opts;
  opts.pools = 2;
  opts.start_paused = true;  // build a backlog first, so policy is visible
  opts.introspect_port = introspect_port;
  svc::CollectiveService service(machine, opts);

  if (introspect_port >= 0) {
    std::cout << "introspect: listening on 127.0.0.1:"
              << service.introspect_port() << "\n";
  }

  const svc::TenantId dashboard = service.register_tenant(
      {.name = "dashboard", .weight = 4, .queue_capacity = 16});
  const svc::TenantId analytics = service.register_tenant(
      {.name = "analytics", .weight = 2, .queue_capacity = 32});
  const svc::TenantId backfill = service.register_tenant(
      {.name = "backfill", .weight = 1, .queue_capacity = 8,
       .rate_per_sec = 4.0, .burst = 4.0});

  const auto payload = [](const std::string& s) {
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    return exec::Bytes(p, p + s.size());
  };
  const auto submit = [&](svc::TenantId t, svc::QoS qos,
                          const std::string& text) {
    svc::Request req;
    req.op = svc::OpKind::kBroadcast;
    req.qos = qos;
    req.payload = payload(text);
    return service.submit(t, std::move(req));
  };

  // A paused burst: analytics and backfill flood first, then the
  // dashboard's interactive requests arrive last — and still go first.
  std::vector<std::pair<std::string, std::future<svc::Response>>> inflight;
  int shed = 0;
  for (int i = 0; i < 12; ++i) {
    auto r = submit(analytics, svc::QoS::kBatch, "rollup");
    if (r.accepted()) inflight.emplace_back("analytics", std::move(r.response));
  }
  for (int i = 0; i < 12; ++i) {
    auto r = submit(backfill, svc::QoS::kBestEffort, "backfill");
    if (r.accepted()) {
      inflight.emplace_back("backfill ", std::move(r.response));
    } else {
      ++shed;  // rate limit + queue bound: overload is explicit, not queued
    }
  }
  for (int i = 0; i < 4; ++i) {
    auto r = submit(dashboard, svc::QoS::kInteractive, "refresh");
    if (r.accepted()) inflight.emplace_back("dashboard", std::move(r.response));
  }
  std::cout << "submitted " << inflight.size() << " requests, " << shed
            << " shed at admission (backfill over rate/capacity)\n\n";

  service.resume();

  std::vector<std::pair<std::uint64_t, std::string>> order;
  int warm = 0;
  for (auto& [who, fut] : inflight) {
    const svc::Response r = fut.get();
    if (r.status != svc::Status::kOk) {
      std::cout << "request failed: " << r.error << "\n";
      return 1;
    }
    warm += r.report.warm_pool ? 1 : 0;
    order.emplace_back(r.dispatch_seq, who);
  }
  std::sort(order.begin(), order.end());
  std::cout << "dispatch order (QoS class first, fair share within):\n  ";
  for (const auto& [seq, who] : order) {
    std::cout << who[0];  // d=dashboard, a=analytics, b=backfill
  }
  std::cout << "\n  (" << warm << "/" << order.size()
            << " runs on warm pools)\n\n";

  for (const svc::TenantId t : {dashboard, analytics, backfill}) {
    const auto c = service.tenant_counters(t);
    std::cout << "tenant " << t << ": admitted " << c.admitted
              << ", completed " << c.completed << ", rejected "
              << c.rejected_queue_full + c.rejected_rate_limited << "\n";
  }

  if (serve_ms > 0) {
    std::cout << "\nserving introspection for " << serve_ms << "ms...\n"
              << std::flush;
    std::this_thread::sleep_for(std::chrono::milliseconds(serve_ms));
  }

  service.shutdown(/*drain=*/true);
  std::cout << "\nservice drained and stopped\n";
  return 0;
}
