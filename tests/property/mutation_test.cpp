#include <gtest/gtest.h>

#include <random>

#include "bcast/kitem.hpp"
#include "bcast/single_item.hpp"
#include "sched/metrics.hpp"
#include "validate/checker.hpp"

/// Mutation testing of the validator: corrupt known-good schedules in ways
/// that *must* break a LogP rule and assert the checker catches every one.
/// A checker that waves through any of these mutations is a checker the
/// rest of the test suite cannot rely on.

namespace logpc {
namespace {

std::vector<Schedule> corpus() {
  std::vector<Schedule> out;
  out.push_back(bcast::optimal_single_item(Params{8, 6, 2, 4}));
  out.push_back(bcast::optimal_single_item(Params::postal(13, 3)));
  out.push_back(bcast::kitem_broadcast(10, 3, 4).schedule);
  out.push_back(bcast::kitem_broadcast(9, 2, 3).schedule);
  return out;
}

Schedule with_sends(const Schedule& base, std::vector<SendOp> sends) {
  Schedule s(base.params(), base.num_items());
  for (const auto& init : base.initials()) {
    s.add_initial(init.item, init.proc, init.time);
  }
  for (const auto& op : sends) s.add_send(op);
  s.sort();
  return s;
}

TEST(Mutation, DroppingAnySendBreaksCompleteness) {
  for (const Schedule& base : corpus()) {
    ASSERT_TRUE(validate::is_valid(base));
    for (std::size_t drop = 0; drop < base.sends().size(); ++drop) {
      std::vector<SendOp> sends;
      for (std::size_t i = 0; i < base.sends().size(); ++i) {
        if (i != drop) sends.push_back(base.sends()[i]);
      }
      const Schedule mutated = with_sends(base, std::move(sends));
      // Either the dropped message's destination misses the item, or a
      // downstream sender no longer holds it.
      EXPECT_FALSE(validate::is_valid(mutated)) << "drop " << drop;
    }
  }
}

TEST(Mutation, AdvancingASendBeforeAvailabilityIsCaught) {
  std::mt19937_64 rng(11);
  for (const Schedule& base : corpus()) {
    const auto avail = availability_matrix(base);
    int mutations = 0;
    for (std::size_t i = 0; i < base.sends().size() && mutations < 6; ++i) {
      const SendOp& op = base.sends()[i];
      const Time have = avail[static_cast<std::size_t>(op.item)]
                             [static_cast<std::size_t>(op.from)];
      if (have <= 0) continue;  // cannot advance before cycle 0
      auto sends = base.sends();
      sends[i].start = have - 1 - static_cast<Time>(rng() % 2);
      const Schedule mutated = with_sends(base, std::move(sends));
      EXPECT_FALSE(validate::is_valid(mutated, {.require_complete = false}))
          << "send " << i;
      ++mutations;
    }
    EXPECT_GT(mutations, 0);
  }
}

TEST(Mutation, DuplicatingASendIsCaught) {
  for (const Schedule& base : corpus()) {
    for (std::size_t i = 0; i < base.sends().size(); i += 3) {
      auto sends = base.sends();
      sends.push_back(sends[i]);  // exact duplicate: same arrival slot too
      const Schedule mutated = with_sends(base, std::move(sends));
      EXPECT_FALSE(validate::is_valid(mutated)) << "dup " << i;
    }
  }
}

TEST(Mutation, RetargetingToSelfIsCaught) {
  for (const Schedule& base : corpus()) {
    auto sends = base.sends();
    sends[0].to = sends[0].from;
    EXPECT_FALSE(
        validate::is_valid(with_sends(base, std::move(sends)),
                           {.require_complete = false}));
  }
}

TEST(Mutation, SqueezingTwoSendsUnderTheGapIsCaught) {
  // Move every send of the busiest sender 1 cycle earlier, one at a time:
  // with g > 1 this violates the send gap against a neighbour.
  const Schedule base = bcast::optimal_single_item(Params{8, 6, 2, 4});
  int caught = 0;
  for (std::size_t i = 0; i < base.sends().size(); ++i) {
    if (base.sends()[i].from != 0) continue;
    if (base.sends()[i].start == 0) continue;
    auto sends = base.sends();
    sends[i].start -= 1;
    const Schedule mutated = with_sends(base, std::move(sends));
    if (!validate::is_valid(mutated, {.require_complete = false})) ++caught;
  }
  EXPECT_GE(caught, 3);  // the root's later sends are all gap-tight
}

TEST(Mutation, ValidatorAcceptsTheUnmutatedCorpus) {
  for (const Schedule& base : corpus()) {
    EXPECT_TRUE(validate::is_valid(base));
  }
}

}  // namespace
}  // namespace logpc
