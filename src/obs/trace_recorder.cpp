#include "obs/trace_recorder.hpp"

#include <atomic>
#include <utility>

namespace logpc::obs {

std::uint32_t current_tid() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

TraceRecorder::TraceRecorder(std::size_t capacity)
    : epoch_(std::chrono::steady_clock::now()),
      capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* recorder = new TraceRecorder;  // never destroyed
  return *recorder;
}

void TraceRecorder::record(TraceEvent e) {
  const std::scoped_lock lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
  } else {
    ring_[first_] = std::move(e);
    first_ = (first_ + 1) % capacity_;
  }
  ++recorded_;
}

std::vector<TraceEvent> TraceRecorder::events() const {
  const std::scoped_lock lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(first_ + i) % ring_.size()]);
  }
  return out;
}

void TraceRecorder::clear() {
  const std::scoped_lock lock(mu_);
  ring_.clear();
  first_ = 0;
}

std::uint64_t TraceRecorder::recorded() const {
  const std::scoped_lock lock(mu_);
  return recorded_;
}

std::uint64_t TraceRecorder::dropped() const {
  const std::scoped_lock lock(mu_);
  return recorded_ - ring_.size();  // recorded_ >= retained, always
}

std::uint64_t TraceRecorder::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

Span::Span(std::string_view name, std::string_view cat,
           TraceRecorder* recorder) {
  if (!enabled()) return;
  recorder_ = recorder ? recorder : &TraceRecorder::global();
  event_.name = std::string(name);
  event_.cat = std::string(cat);
  event_.tid = current_tid();
  event_.ts_ns = recorder_->now_ns();
}

void Span::set_arg(std::string arg) {
  if (recorder_) event_.arg = std::move(arg);
}

Span::~Span() {
  if (!recorder_) return;
  event_.dur_ns = recorder_->now_ns() - event_.ts_ns;
  recorder_->record(std::move(event_));
}

ScopedTimer::ScopedTimer(Histogram& hist) {
  if (!enabled()) return;
  hist_ = &hist;
  start_ = std::chrono::steady_clock::now();
}

ScopedTimer::~ScopedTimer() {
  if (!hist_) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  hist_->observe(static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
}

}  // namespace logpc::obs
