#include "bcast/all_to_all.hpp"

#include <gtest/gtest.h>

#include "sched/metrics.hpp"
#include "validate/checker.hpp"

namespace logpc::bcast {
namespace {

struct Machine {
  Params params;
};

class AllToAllSweep : public ::testing::TestWithParam<Params> {};

TEST_P(AllToAllSweep, MatchesLowerBoundExactly) {
  const Params params = GetParam();
  const Schedule s = all_to_all(params);
  // The paper's schedule needs duplex overheads when L < (P-2)g (see the
  // header note); everything else is strict.
  const auto check = validate::check(s, {.allow_duplex_overhead = true});
  EXPECT_TRUE(check.ok()) << params.to_string() << "\n" << check.summary();
  EXPECT_EQ(completion_time(s), all_to_all_lower_bound(params))
      << params.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Machines, AllToAllSweep,
    ::testing::Values(Params::postal(2, 1), Params::postal(5, 3),
                      Params::postal(10, 3), Params{4, 6, 2, 4},
                      Params{8, 6, 2, 4}, Params{7, 5, 1, 3},
                      Params{16, 4, 0, 2}, Params{3, 9, 2, 5}));

TEST(AllToAll, LowerBoundFormula) {
  // L + 2o + (P-2)g for one item each.
  EXPECT_EQ(all_to_all_lower_bound(Params{8, 6, 2, 4}), 6 + 4 + 6 * 4);
  EXPECT_EQ(all_to_all_lower_bound(Params::postal(10, 3)), 3 + 8);
  // k-item: L + 2o + (k(P-1) - 1)g.
  EXPECT_EQ(all_to_all_lower_bound(Params::postal(10, 3), 2), 3 + 17);
  EXPECT_EQ(all_to_all_lower_bound(Params{4, 6, 2, 4}, 3), 6 + 4 + 8 * 4);
  // Degenerate single processor.
  EXPECT_EQ(all_to_all_lower_bound(Params{1, 3, 1, 2}), 0);
}

TEST(AllToAll, KItemsMatchTheirBound) {
  for (const int k : {1, 2, 4}) {
    const Params params = Params::postal(6, 3);
    const Schedule s = all_to_all_k(params, k);
    EXPECT_TRUE(validate::is_valid(s, {.allow_duplex_overhead = true}))
        << validate::check(s).summary();
    EXPECT_EQ(completion_time(s), all_to_all_lower_bound(params, k));
    EXPECT_EQ(s.num_items(), 6 * k);
  }
}

TEST(AllToAll, EveryProcessorReceivesOncePerRound) {
  const Params params = Params::postal(7, 2);
  const Schedule s = all_to_all(params);
  // 6 rounds, 7 receptions per round: every processor receives exactly one
  // message per round time slot.
  for (ItemId i = 0; i < 7; ++i) {
    const auto counts = receive_counts(s, i);
    int total = 0;
    for (const int c : counts) total += c;
    EXPECT_EQ(total, 6);
  }
}

TEST(AllToAll, SingleProcessorIsTrivial) {
  const Schedule s = all_to_all(Params{1, 3, 1, 2});
  EXPECT_TRUE(s.sends().empty());
  EXPECT_EQ(completion_time(s), 0);
}

TEST(AllToAllPersonalized, DeliversExactlyTheAddressedItems) {
  const Params params{6, 6, 2, 4};
  const Schedule s = all_to_all_personalized(params);
  EXPECT_TRUE(personalized_complete(s));
  // Timing rules still hold (completeness of the broadcast goal does not).
  const auto check = validate::check(
      s, {.require_complete = false, .allow_duplex_overhead = true});
  EXPECT_TRUE(check.ok()) << check.summary();
  EXPECT_EQ(s.makespan(), all_to_all_lower_bound(params));
  // Exactly one transmission per (source, destination) pair.
  EXPECT_EQ(s.sends().size(), 30u);
}

TEST(AllToAllPersonalized, IncompleteWithoutAllRounds) {
  Schedule s = all_to_all_personalized(Params::postal(4, 2));
  EXPECT_TRUE(personalized_complete(s));
  // Drop the last send: some pair is missing.
  Schedule truncated(s.params(), s.num_items());
  for (const auto& init : s.initials()) {
    truncated.add_initial(init.item, init.proc, init.time);
  }
  for (std::size_t i = 0; i + 1 < s.sends().size(); ++i) {
    truncated.add_send(s.sends()[i]);
  }
  EXPECT_FALSE(personalized_complete(truncated));
}

TEST(AllToAll, RejectsBadArguments) {
  EXPECT_THROW(all_to_all_k(Params::postal(4, 2), 0), std::invalid_argument);
  EXPECT_THROW(all_to_all(Params{0, 1, 0, 1}), std::invalid_argument);
  EXPECT_THROW((void)all_to_all_lower_bound(Params{4, 0, 0, 1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace logpc::bcast
