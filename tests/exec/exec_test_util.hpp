#pragma once

#include <cstring>
#include <string>
#include <vector>

#include "exec/engine.hpp"

/// Shared payload helpers for the exec test suites: fixed-width integers
/// and variable-length strings in and out of exec::Bytes, plus the two
/// combine operators the paper's summation footnote distinguishes (a
/// commutative one and a non-commutative one).

namespace logpc::exec::testutil {

inline Bytes of_u64(std::uint64_t v) {
  Bytes b(sizeof v);
  std::memcpy(b.data(), &v, sizeof v);
  return b;
}

inline std::uint64_t to_u64(const Bytes& b) {
  std::uint64_t v = 0;
  std::memcpy(&v, b.data(), std::min(b.size(), sizeof v));
  return v;
}

inline Bytes of_str(const std::string& s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return Bytes(p, p + s.size());
}

inline std::string to_str(const Bytes& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

/// Commutative: 64-bit addition.
inline CombineFn add_u64() {
  return [](Bytes& acc, std::span<const std::byte> rhs) {
    std::uint64_t a = 0, r = 0;
    std::memcpy(&a, acc.data(), std::min(acc.size(), sizeof a));
    std::memcpy(&r, rhs.data(), std::min(rhs.size(), sizeof r));
    a += r;
    acc.resize(sizeof a);
    std::memcpy(acc.data(), &a, sizeof a);
  };
}

/// Associative but NOT commutative: byte concatenation.  Any reordering of
/// the fold shows up as a different string.
inline CombineFn concat() {
  return [](Bytes& acc, std::span<const std::byte> rhs) {
    acc.insert(acc.end(), rhs.begin(), rhs.end());
  };
}

}  // namespace logpc::exec::testutil
