#pragma once

#include "bcast/continuous.hpp"

/// \file continuous_search.hpp
/// The Theorem 3.5 construction, generalized: when the optimal B(m)-step
/// tree on m receivers admits no block-cyclic assignment (always for L = 2
/// with t >= 4 - Theorem 3.4; the isolated L = 4, t = 8 case the paper
/// notes; and many non-exact m), allow `slack` extra steps of delay and
/// search over *pruned* (B(m)+slack)-step trees on the same m receivers.
///
/// The paper prunes the P(t+1) tree by removing leaves from selected nodes
/// ("both leaves from a fraction f of the nodes with 3 children ... the
/// leaf with larger delay from a fraction g of the nodes with a single
/// child") until block sizes and letters admit block-cyclic words.  We
/// search the same space - trailing-leaf removals per internal node class -
/// and hand each candidate tree to the word solver.

namespace logpc::search {

/// Attempts a block-cyclic continuous plan with delay L + B(m) + slack on
/// m receivers (+ source).  Tries candidate prunings of the (B(m)+slack)-
/// step universal tree (removing only trailing leaf children, so sends
/// stay consecutive) until the word solver succeeds.
///
/// \param max_candidates  pruning shapes to try before giving up
[[nodiscard]] bcast::ContinuousResult plan_with_slack(
    Time L, int m, int slack = 1, std::size_t max_candidates = 20'000,
    std::uint64_t word_budget = 2'000'000);

/// The best block-cyclic plan for m receivers: optimal delay first
/// (Theorem 3.3), then slack 1, 2, ..., L (Theorem 3.5 and its
/// generalization to non-exact m).  Slack <= L - 1 keeps the implied
/// k-item completion B(m) + L + slack + k - 1 within the Theorem 3.6
/// guarantee; slack L - 1 < sigma is never needed in practice but L is
/// tried as a last resort.
[[nodiscard]] bcast::ContinuousResult best_continuous_plan(Time L, int m);

}  // namespace logpc::search
