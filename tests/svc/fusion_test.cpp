#include "svc/fusion.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "svc/service.hpp"

/// The high-throughput path: fusion batching and the Section 3 segmented
/// pipeline.  The load-bearing property throughout is *byte-exactness* —
/// a request must not be able to tell whether it ran alone, fused into a
/// batch, or split into segments.  Policy tests build their backlog under
/// start_paused with one pool, so batch composition is deterministic.

namespace logpc::svc {
namespace {

Params machine() { return Params{4, 4, 1, 2}; }

exec::Bytes of_str(const std::string& s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return exec::Bytes(p, p + s.size());
}

std::string to_str(const exec::Bytes& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

Request bcast_req(const std::string& payload, QoS qos = QoS::kBatch) {
  Request r;
  r.op = OpKind::kBroadcast;
  r.qos = qos;
  r.payload = of_str(payload);
  return r;
}

/// Per-byte acc <- acc*3 + rhs (mod 256): size-preserving, elementwise,
/// and deliberately neither commutative nor associative, so any fold
/// reordering introduced by fusion would show up bitwise.
exec::CombineFn affine3() {
  return [](exec::Bytes& acc, std::span<const std::byte> rhs) {
    const std::size_t n = std::min(acc.size(), rhs.size());
    for (std::size_t i = 0; i < n; ++i) {
      acc[i] = static_cast<std::byte>(
          static_cast<unsigned char>(acc[i]) * 3u +
          static_cast<unsigned char>(rhs[i]));
    }
  };
}

Request generic_reduce_req(int P, unsigned seed) {
  Request r;
  r.op = OpKind::kReduce;
  for (int p = 0; p < P; ++p) {
    exec::Bytes v(8);
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = static_cast<std::byte>((seed * 31u + p * 7u + i) & 0xff);
    }
    r.values.push_back(std::move(v));
  }
  r.combine = exec::Combiner(affine3());
  r.combine_tag = "affine3";
  return r;
}

Request typed_reduce_req(int P, double seed) {
  Request r;
  r.op = OpKind::kReduce;
  for (int p = 0; p < P; ++p) {
    exec::Bytes v(2 * sizeof(double));
    const double d[2] = {seed + p, seed * 0.25 - p};
    std::memcpy(v.data(), d, sizeof d);
    r.values.push_back(std::move(v));
  }
  r.combine = exec::Combiner(exec::KernelSpec{exec::Op::kSum,
                                              exec::DType::kF64});
  return r;
}

Request allgather_req(int P, unsigned seed) {
  Request r;
  r.op = OpKind::kAllgather;
  for (int p = 0; p < P; ++p) {
    r.values.push_back(of_str("ag-" + std::to_string(seed) + "-" +
                              std::to_string(p)));
  }
  return r;
}

/// Runs `reqs` on a service with the given options (paused backlog, one
/// pool: deterministic batching) and returns the responses in
/// submission order.
std::vector<Response> run_backlog(CollectiveService::Options opts,
                                  std::vector<Request> reqs,
                                  CollectiveService** out_svc = nullptr) {
  opts.pools = 1;
  opts.start_paused = true;
  static std::vector<std::unique_ptr<CollectiveService>> keep_alive;
  auto svc = std::make_unique<CollectiveService>(machine(), opts);
  const TenantId t = svc->register_tenant({.name = "fusion-backlog",
                                           .queue_capacity = 64});
  std::vector<std::future<Response>> futures;
  for (Request& r : reqs) {
    SubmitResult sub = svc->submit(t, std::move(r));
    EXPECT_TRUE(sub.accepted());
    futures.push_back(std::move(sub.response));
  }
  svc->resume();
  std::vector<Response> out;
  out.reserve(futures.size());
  for (auto& f : futures) out.push_back(f.get());
  if (out_svc != nullptr) {
    *out_svc = svc.get();
    keep_alive.push_back(std::move(svc));
  }
  return out;
}

// ---------------------------------------------------------------- units

TEST(SvcFusion, FusionKeyRules) {
  // Broadcasts key on (root, bytes); an empty payload never fuses.
  Request b = bcast_req("eight-by");
  const auto kb = fusion_key(b);
  ASSERT_TRUE(kb.has_value());
  EXPECT_EQ(kb->op, OpKind::kBroadcast);
  EXPECT_EQ(kb->bytes, 8u);
  EXPECT_TRUE(*kb == *fusion_key(bcast_req("12345678")))
      << "same shape from a different request must produce an equal key";
  EXPECT_FALSE(fusion_key(bcast_req("")).has_value());
  Request b2 = bcast_req("eight-by");
  b2.root = 1;
  EXPECT_FALSE(*kb == *fusion_key(b2)) << "different roots must not fuse";
  Request b3 = bcast_req("nine-byte");
  EXPECT_FALSE(*kb == *fusion_key(b3)) << "different sizes must not fuse";

  // Typed reduces carry the kernel identity; a payload that is not a
  // whole number of elements would move an element boundary across the
  // request seam, so it must refuse to fuse.
  Request tr = typed_reduce_req(4, 1.0);
  const auto kt = fusion_key(tr);
  ASSERT_TRUE(kt.has_value());
  EXPECT_TRUE(kt->typed);
  Request ragged = typed_reduce_req(4, 1.0);
  for (auto& v : ragged.values) v.resize(9);  // 9 % sizeof(double) != 0
  EXPECT_FALSE(fusion_key(ragged).has_value());

  // Generic reduces fuse only through an explicit combine_tag promise.
  Request gr = generic_reduce_req(4, 1);
  ASSERT_TRUE(fusion_key(gr).has_value());
  Request untagged = generic_reduce_req(4, 1);
  untagged.combine_tag.clear();
  EXPECT_FALSE(fusion_key(untagged).has_value());
  Request other_tag = generic_reduce_req(4, 1);
  other_tag.combine_tag = "something-else";
  EXPECT_FALSE(*fusion_key(gr) == *fusion_key(other_tag));

  // Ragged per-proc values (any op) never fuse.
  Request rag = allgather_req(4, 1);
  rag.values[2].push_back(std::byte{0});
  EXPECT_FALSE(fusion_key(rag).has_value());
  ASSERT_TRUE(fusion_key(allgather_req(4, 1)).has_value());
}

TEST(SvcFusion, ChooseSegmentsPolicy) {
  const SegmentPolicy pol{.threshold = 4096, .segment_bytes = 1024,
                          .max_segments = 8};
  EXPECT_EQ(choose_segments(0, pol), 1);
  EXPECT_EQ(choose_segments(4095, pol), 1);
  EXPECT_EQ(choose_segments(4096, pol), 4);
  EXPECT_EQ(choose_segments(6000, pol), 6);
  EXPECT_EQ(choose_segments(1 << 20, pol), 8) << "clamped to max_segments";
  EXPECT_EQ(choose_segments(1 << 20, SegmentPolicy{.threshold = 0}), 1)
      << "threshold 0 disables segmentation";
  EXPECT_EQ(choose_segments(1 << 20,
                            SegmentPolicy{.threshold = 1, .max_segments = 1}),
            1)
      << "max_segments < 2 disables segmentation";
}

TEST(SvcFusion, SplitSegmentsIsLosslessAndBalanced) {
  std::string payload;
  for (int i = 0; i < 1003; ++i) payload.push_back(static_cast<char>(i));
  const exec::Bytes whole = of_str(payload);
  for (int k : {1, 2, 3, 7, 16}) {
    const std::vector<exec::Bytes> segs = split_segments(whole, k);
    ASSERT_EQ(segs.size(), static_cast<std::size_t>(k));
    exec::Bytes glued;
    std::size_t lo = whole.size(), hi = 0;
    for (const exec::Bytes& s : segs) {
      glued.insert(glued.end(), s.begin(), s.end());
      lo = std::min(lo, s.size());
      hi = std::max(hi, s.size());
    }
    EXPECT_EQ(glued, whole) << "k=" << k;
    EXPECT_LE(hi - lo, 1u) << "k=" << k;
  }
}

TEST(SvcFusion, FusedCombinerAppliesIndependentlyPerChunk) {
  Request ex = generic_reduce_req(4, 9);
  const std::size_t chunk = 8;
  const exec::Combiner fused = fused_combiner(ex, chunk, 3);
  exec::Bytes acc(3 * chunk), rhs(3 * chunk);
  for (std::size_t i = 0; i < acc.size(); ++i) {
    acc[i] = static_cast<std::byte>(i * 5 + 1);
    rhs[i] = static_cast<std::byte>(i * 11 + 2);
  }
  exec::Bytes expect = acc;
  for (std::size_t m = 0; m < 3; ++m) {
    exec::Bytes a(expect.begin() + static_cast<std::ptrdiff_t>(m * chunk),
                  expect.begin() + static_cast<std::ptrdiff_t>((m + 1) * chunk));
    affine3()(a, std::span<const std::byte>(rhs).subspan(m * chunk, chunk));
    std::copy(a.begin(), a.end(),
              expect.begin() + static_cast<std::ptrdiff_t>(m * chunk));
  }
  exec::Bytes got = acc;
  fused(got, rhs);
  EXPECT_EQ(got, expect);
  // count <= 1 or a typed exemplar pass the combiner through untouched.
  EXPECT_FALSE(fused_combiner(ex, chunk, 1).typed());
  Request typed = typed_reduce_req(4, 1.0);
  EXPECT_TRUE(fused_combiner(typed, 16, 3).typed());
}

TEST(SvcFusion, MemberReportSlicesTheFusedRun) {
  exec::ExecReport run;
  run.payload_bytes = 8;
  run.wall_ns = 1234;
  run.warm_pool = true;
  run.items.resize(2);
  // Two segments per proc, as a segmented fused run produces: the member
  // view must see its slice of the *concatenation*.
  run.items[0] = {of_str("aaBB"), of_str("ccDD")};
  run.items[1] = {of_str("aaBB"), of_str("ccDD")};
  const exec::ExecReport m1 =
      member_report(run, OpKind::kBroadcast, /*chunk=*/4, /*index=*/1,
                    /*count=*/2);
  ASSERT_EQ(m1.items.size(), 2u);
  ASSERT_EQ(m1.items[0].size(), 1u);
  EXPECT_EQ(to_str(m1.items[0][0]), "ccDD");
  EXPECT_EQ(m1.payload_bytes, 4u);
  EXPECT_EQ(m1.wall_ns, 1234u);
  EXPECT_TRUE(m1.warm_pool);

  exec::ExecReport red;
  red.folded = {of_str("11223344"), of_str("xxxxxxxx")};
  const exec::ExecReport m2 =
      member_report(red, OpKind::kReduce, /*chunk=*/2, /*index=*/2,
                    /*count=*/4);
  EXPECT_EQ(to_str(m2.folded[0]), "33");
}

// ------------------------------------------------------ service: fusing

TEST(SvcFusion, PausedBacklogFusesIntoOneExactRun) {
  CollectiveService::Options opts;
  CollectiveService* svc = nullptr;
  std::vector<Request> reqs;
  std::vector<std::string> payloads;
  for (int i = 0; i < 6; ++i) {
    payloads.push_back("fused-payload-" + std::to_string(i));
    reqs.push_back(bcast_req(payloads.back()));
  }
  const std::vector<Response> rs = run_backlog(opts, std::move(reqs), &svc);
  std::set<std::uint32_t> indices;
  for (std::size_t i = 0; i < rs.size(); ++i) {
    const Response& r = rs[i];
    ASSERT_EQ(r.status, Status::kOk) << r.error;
    EXPECT_EQ(r.fused, 6u);
    indices.insert(r.fused_index);
    // Byte-exactness: every proc ends with exactly this request's payload,
    // indistinguishable from an unfused run.
    for (ProcId p = 0; p < machine().P; ++p) {
      EXPECT_EQ(to_str(r.report.item_at(p, 0)), payloads[i]);
    }
    // One engine run, one analysis: the batch shares a single profile.
    EXPECT_EQ(r.profile, rs[0].profile);
    EXPECT_NE(r.profile, nullptr);
  }
  EXPECT_EQ(indices.size(), 6u) << "fused_index must be distinct per member";
  const auto st = svc->status();
  EXPECT_EQ(st.fused_requests, 6u);
  EXPECT_EQ(st.fused_batches, 1u);
  EXPECT_EQ(st.inflight, 0u);
  EXPECT_EQ(svc->tenant_counters(0).fused, 6u);
}

TEST(SvcFusion, CrossTenantSameShapeRequestsFuse) {
  CollectiveService::Options opts;
  opts.pools = 1;
  opts.start_paused = true;
  CollectiveService svc(machine(), opts);
  const TenantId a = svc.register_tenant({.name = "fusion-a"});
  const TenantId b = svc.register_tenant({.name = "fusion-b"});
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 4; ++i) {
    SubmitResult sub = svc.submit(i % 2 == 0 ? a : b,
                                  bcast_req("xt-" + std::to_string(i)));
    ASSERT_TRUE(sub.accepted());
    futures.push_back(std::move(sub.response));
  }
  svc.resume();
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Response r = futures[i].get();
    ASSERT_EQ(r.status, Status::kOk) << r.error;
    EXPECT_EQ(r.fused, 4u);
    EXPECT_EQ(to_str(r.report.item_at(1, 0)), "xt-" + std::to_string(i));
  }
  EXPECT_EQ(svc.tenant_counters(a).fused, 2u);
  EXPECT_EQ(svc.tenant_counters(b).fused, 2u);
}

TEST(SvcFusion, MixedShapesNeverFuse) {
  CollectiveService::Options opts;
  std::vector<Request> reqs;
  reqs.push_back(bcast_req("short"));
  reqs.push_back(bcast_req("rather-longer-payload"));
  reqs.push_back(generic_reduce_req(machine().P, 3));
  for (const Response& r : run_backlog(opts, std::move(reqs))) {
    ASSERT_EQ(r.status, Status::kOk) << r.error;
    EXPECT_EQ(r.fused, 1u);
    EXPECT_EQ(r.fused_index, 0u);
  }
}

TEST(SvcFusion, InteractiveClassOptsOutByDefault) {
  CollectiveService::Options opts;
  std::vector<Request> reqs;
  for (int i = 0; i < 4; ++i) {
    reqs.push_back(bcast_req("same-shape", QoS::kInteractive));
  }
  for (const Response& r : run_backlog(opts, std::move(reqs))) {
    ASSERT_EQ(r.status, Status::kOk) << r.error;
    EXPECT_EQ(r.fused, 1u) << "interactive must run unfused by default";
  }
}

// ----------------------------------------- service: bitwise exactness

/// Runs the same request mix fused (paused backlog) and unfused
/// (fusion_window_us = 0) and demands bitwise-identical results.
template <typename MakeReq>
void expect_fused_matches_unfused(MakeReq make, int n,
                                  std::uint32_t expect_fused) {
  CollectiveService::Options fused_opts;
  std::vector<Request> fused_reqs, solo_reqs;
  for (int i = 0; i < n; ++i) {
    fused_reqs.push_back(make(i));
    solo_reqs.push_back(make(i));
  }
  const std::vector<Response> fused =
      run_backlog(fused_opts, std::move(fused_reqs));
  CollectiveService::Options solo_opts;
  solo_opts.fusion_window_us = 0;
  const std::vector<Response> solo =
      run_backlog(solo_opts, std::move(solo_reqs));
  ASSERT_EQ(fused.size(), solo.size());
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(fused[i].status, Status::kOk) << fused[i].error;
    ASSERT_EQ(solo[i].status, Status::kOk) << solo[i].error;
    EXPECT_EQ(fused[i].fused, expect_fused) << "request " << i;
    EXPECT_EQ(solo[i].fused, 1u);
    EXPECT_EQ(fused[i].report.items, solo[i].report.items) << "request " << i;
    EXPECT_EQ(fused[i].report.folded, solo[i].report.folded)
        << "request " << i;
  }
}

TEST(SvcFusion, FusedGenericReduceIsBitwiseIdenticalToUnfused) {
  // affine3 is non-commutative and non-associative: any fold-order drift
  // introduced by fusing would flip bytes here.
  expect_fused_matches_unfused(
      [](int i) {
        return generic_reduce_req(machine().P, static_cast<unsigned>(i));
      },
      5, 5u);
}

TEST(SvcFusion, FusedTypedReduceIsBitwiseIdenticalToUnfused) {
  expect_fused_matches_unfused(
      [](int i) { return typed_reduce_req(machine().P, 0.1 + i); }, 4, 4u);
}

TEST(SvcFusion, FusedAllgatherIsBitwiseIdenticalToUnfused) {
  expect_fused_matches_unfused(
      [](int i) {
        return allgather_req(machine().P, static_cast<unsigned>(i));
      },
      4, 4u);
}

TEST(SvcFusion, FusedBroadcastIsBitwiseIdenticalToUnfused) {
  expect_fused_matches_unfused(
      [](int i) { return bcast_req("bitwise-bcast-" + std::to_string(i)); },
      4, 4u);
}

// ------------------------------------------- service: segmented pipeline

TEST(SvcFusion, SegmentedBroadcastIsBitwiseIdenticalToBulk) {
  std::string big;
  big.reserve(6000);
  for (int i = 0; i < 6000; ++i) {
    big.push_back(static_cast<char>((i * 131 + 7) & 0xff));
  }

  CollectiveService::Options seg_opts;
  seg_opts.segment_threshold = 4096;
  seg_opts.segment_bytes = 1024;
  seg_opts.max_segments = 8;
  CollectiveService* svc = nullptr;
  std::vector<Request> reqs;
  reqs.push_back(bcast_req(big));
  const std::vector<Response> seg = run_backlog(seg_opts, std::move(reqs),
                                                &svc);
  ASSERT_EQ(seg[0].status, Status::kOk) << seg[0].error;
  EXPECT_EQ(seg[0].segments, 6u) << "ceil(6000/1024), under the clamp";
  EXPECT_GE(svc->status().segmented_runs, 1u);

  CollectiveService::Options bulk_opts;
  bulk_opts.segment_threshold = 0;
  std::vector<Request> bulk_reqs;
  bulk_reqs.push_back(bcast_req(big));
  const std::vector<Response> bulk =
      run_backlog(bulk_opts, std::move(bulk_reqs));
  ASSERT_EQ(bulk[0].status, Status::kOk) << bulk[0].error;
  EXPECT_EQ(bulk[0].segments, 1u);

  for (ProcId p = 0; p < machine().P; ++p) {
    ASSERT_EQ(to_str(seg[0].report.item_at(p, 0)), big) << "proc " << p;
    EXPECT_EQ(seg[0].report.item_at(p, 0), bulk[0].report.item_at(p, 0));
  }
}

TEST(SvcFusion, SegmentedBroadcastFromNonZeroRoot) {
  std::string big(5000, '\0');
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>((i * 17 + 3) & 0xff);
  }
  CollectiveService::Options opts;
  opts.segment_threshold = 2048;
  opts.segment_bytes = 1024;
  opts.max_segments = 8;
  std::vector<Request> reqs;
  Request r = bcast_req(big);
  r.root = 2;
  reqs.push_back(std::move(r));
  const std::vector<Response> rs = run_backlog(opts, std::move(reqs));
  ASSERT_EQ(rs[0].status, Status::kOk) << rs[0].error;
  EXPECT_GT(rs[0].segments, 1u);
  for (ProcId p = 0; p < machine().P; ++p) {
    EXPECT_EQ(to_str(rs[0].report.item_at(p, 0)), big) << "proc " << p;
  }
}

TEST(SvcFusion, FusedAndSegmentedComposeExactly) {
  // Four 2 KiB requests fuse to 8 KiB, which then crosses the segment
  // threshold: both layers of the throughput path at once, still exact.
  std::vector<std::string> payloads;
  for (int i = 0; i < 4; ++i) {
    std::string s(2048, '\0');
    for (std::size_t j = 0; j < s.size(); ++j) {
      s[j] = static_cast<char>((j * 13 + i * 101) & 0xff);
    }
    payloads.push_back(std::move(s));
  }
  CollectiveService::Options opts;
  opts.segment_threshold = 4096;
  opts.segment_bytes = 2048;
  opts.max_segments = 8;
  std::vector<Request> reqs;
  for (const std::string& s : payloads) reqs.push_back(bcast_req(s));
  const std::vector<Response> rs = run_backlog(opts, std::move(reqs));
  for (std::size_t i = 0; i < rs.size(); ++i) {
    ASSERT_EQ(rs[i].status, Status::kOk) << rs[i].error;
    EXPECT_EQ(rs[i].fused, 4u);
    EXPECT_GT(rs[i].segments, 1u);
    for (ProcId p = 0; p < machine().P; ++p) {
      EXPECT_EQ(to_str(rs[i].report.item_at(p, 0)), payloads[i]);
    }
  }
}

// --------------------------------------- service: shutdown and failure

TEST(SvcFusion, DrainShutdownMidWindowFulfillsEveryPromiseExactlyOnce) {
  CollectiveService::Options opts;
  opts.pools = 1;
  opts.fusion_window_us = 2'000'000;  // far longer than the test
  CollectiveService svc(machine(), opts);
  const TenantId t = svc.register_tenant({.name = "fusion-drain"});
  // One fusible request: the pool picks it and sits in the open window
  // (a singleton batch is not yet amortized, so the early-exit does not
  // fire).  Draining shutdown must cut the window, run the half-filled
  // batch, and fulfill the promise — exactly once, well before the
  // window would have expired.
  SubmitResult sub = svc.submit(t, bcast_req("mid-window"));
  ASSERT_TRUE(sub.accepted());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto t0 = std::chrono::steady_clock::now();
  svc.shutdown(/*drain=*/true);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            1500)
      << "shutdown must not wait out the fusion window";
  const Response r = sub.response.get();
  EXPECT_EQ(r.status, Status::kOk) << r.error;
  for (ProcId p = 0; p < machine().P; ++p) {
    EXPECT_EQ(to_str(r.report.item_at(p, 0)), "mid-window");
  }
}

TEST(SvcFusion, LateArrivalsJoinAnOpenWindow) {
  CollectiveService::Options opts;
  opts.pools = 1;
  opts.fusion_window_us = 2'000'000;
  CollectiveService svc(machine(), opts);
  const TenantId t = svc.register_tenant({.name = "fusion-late"});
  SubmitResult first = svc.submit(t, bcast_req("window-a"));
  ASSERT_TRUE(first.accepted());
  // Give the pool time to pick the lead and open its window, then arrive.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  SubmitResult second = svc.submit(t, bcast_req("window-b"));
  ASSERT_TRUE(second.accepted());
  const Response ra = first.response.get();
  const Response rb = second.response.get();
  ASSERT_EQ(ra.status, Status::kOk) << ra.error;
  ASSERT_EQ(rb.status, Status::kOk) << rb.error;
  EXPECT_EQ(ra.fused, 2u) << "the open window must claim the late arrival";
  EXPECT_EQ(rb.fused, 2u);
  EXPECT_EQ(to_str(ra.report.item_at(2, 0)), "window-a");
  EXPECT_EQ(to_str(rb.report.item_at(2, 0)), "window-b");
}

TEST(SvcFusion, RankDeathFailsEveryFusedMemberConsistently) {
  CollectiveService::Options opts;
  // Rank 3 never executes an instruction: the fused run's acked delivery
  // escalates to a death verdict and the whole batch must fail together —
  // same error, no orphaned futures.
  fault::FaultSpec spec;
  spec.dead_rank = 3;
  spec.dead_after_instrs = 0;
  opts.fault = spec;
  std::vector<Request> reqs;
  for (int i = 0; i < 4; ++i) {
    reqs.push_back(bcast_req("doomed-" + std::to_string(i)));
  }
  const std::vector<Response> rs = run_backlog(opts, std::move(reqs));
  ASSERT_EQ(rs.size(), 4u);
  for (const Response& r : rs) {
    EXPECT_EQ(r.status, Status::kError);
    EXPECT_FALSE(r.error.empty());
    EXPECT_EQ(r.error, rs[0].error)
        << "every member must see the batch's one failure";
  }
}

}  // namespace
}  // namespace logpc::svc
