#include "exec/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"

namespace logpc::exec {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_since(Clock::time_point epoch) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

/// Shared failure latch: the first error wins, everyone else bails out of
/// their spin loops promptly.
struct Failure {
  std::atomic<bool> abort{false};
  std::mutex mu;
  std::string message;

  void fail(const std::string& m) {
    {
      std::lock_guard lock(mu);
      if (message.empty()) message = m;
    }
    abort.store(true, std::memory_order_release);
  }
};

}  // namespace

Engine& Engine::shared() {
  static Engine* engine = new Engine();  // leaked: outlives static teardown
  return *engine;
}

ExecReport Engine::run(const Program& program,
                       const std::vector<Bytes>& item_values) {
  if (program.mode != Mode::kMove) {
    throw std::invalid_argument("Engine::run: program is not move-mode");
  }
  return run_impl(program, &item_values, nullptr, nullptr, nullptr);
}

ExecReport Engine::run(const Program& program, const std::vector<Bytes>& values,
                       const CombineFn& op) {
  if (program.mode != Mode::kFold) {
    throw std::invalid_argument("Engine::run: program is not fold-mode");
  }
  return run_impl(program, nullptr, &values, nullptr, &op);
}

ExecReport Engine::run(const Program& program,
                       const std::vector<std::vector<Bytes>>& operands,
                       const CombineFn& op) {
  if (program.mode != Mode::kSum) {
    throw std::invalid_argument("Engine::run: program is not summation-mode");
  }
  return run_impl(program, nullptr, nullptr, &operands, &op);
}

ExecReport Engine::run_impl(const Program& program,
                            const std::vector<Bytes>* item_values,
                            const std::vector<Bytes>* fold_values,
                            const std::vector<std::vector<Bytes>>* operands,
                            const CombineFn* op) {
  program.params.require_valid();
  const auto P = static_cast<std::size_t>(program.params.P);
  if (program.procs.size() != P) {
    throw std::invalid_argument("Engine::run: program/params size mismatch");
  }
  const auto num_items = static_cast<std::size_t>(program.num_items);

  // --- validate payload inputs against the program -----------------------
  if (program.mode == Mode::kMove) {
    if (item_values->size() != num_items) {
      throw std::invalid_argument("Engine::run: expected " +
                                  std::to_string(num_items) +
                                  " item payloads, got " +
                                  std::to_string(item_values->size()));
    }
  } else if (program.mode == Mode::kFold) {
    if (fold_values->size() != P) {
      throw std::invalid_argument(
          "Engine::run: expected one value per processor");
    }
  } else {
    for (const ProcProgram& pp : program.procs) {
      if (pp.sum_index < 0) continue;
      const auto idx = static_cast<std::size_t>(pp.sum_index);
      if (idx >= operands->size() ||
          (*operands)[idx].size() != pp.num_operands) {
        throw std::invalid_argument(
            "Engine::run: operand count mismatch at plan index " +
            std::to_string(idx) + " (want " +
            std::to_string(pp.num_operands) + ")");
      }
    }
  }

  // --- run state ---------------------------------------------------------
  const std::size_t cap = opts_.mailbox_capacity != 0
                              ? opts_.mailbox_capacity
                              : static_cast<std::size_t>(
                                    program.params.capacity());
  std::vector<std::unique_ptr<SpscMailbox>> mailboxes;
  mailboxes.reserve(program.links.size());
  for (std::size_t i = 0; i < program.links.size(); ++i) {
    mailboxes.push_back(std::make_unique<SpscMailbox>(cap));
  }

  ExecReport report;
  report.params = program.params;
  report.mode = program.mode;
  report.label = program.label;
  report.predicted_makespan = program.predicted_makespan;
  report.messages = program.num_messages;
  report.mailbox_capacity = cap;
  report.events.resize(P);
  report.deliveries.resize(P);
  report.folded.resize(P);
  if (program.mode == Mode::kMove) {
    report.items.assign(P, std::vector<Bytes>(num_items));
    for (const InitialPlacement& init : program.initials) {
      report.items[static_cast<std::size_t>(init.proc)]
                  [static_cast<std::size_t>(init.item)] =
          (*item_values)[static_cast<std::size_t>(init.item)];
    }
  } else if (program.mode == Mode::kFold) {
    for (std::size_t p = 0; p < P; ++p) report.folded[p] = (*fold_values)[p];
  }

  std::vector<std::size_t> bytes_moved(P, 0);
  Failure failure;
  const Clock::time_point start = Clock::now();
  const Clock::time_point deadline =
      start + std::chrono::milliseconds(opts_.timeout_ms);

  auto worker = [&](int wi) {
    const auto p = static_cast<std::size_t>(wi);
    const ProcProgram& stream = program.procs[p];
    obs::Span span("exec.worker", "exec");
    if (span.active()) {
      span.set_arg("p" + std::to_string(wi) + " " + program.label);
    }

    auto blocking = [&](auto&& attempt) -> bool {
      int spins = 0;
      while (!attempt()) {
        if (failure.abort.load(std::memory_order_acquire)) return false;
        if (++spins >= 256) {
          spins = 0;
          if (Clock::now() > deadline) {
            failure.fail("exec::Engine: timeout at P" + std::to_string(wi) +
                         " (" + program.label + ")");
            return false;
          }
          std::this_thread::yield();
        }
      }
      return true;
    };

    // kFold seeds the accumulator with the processor's own value (already
    // copied into report.folded); kSum starts empty.
    Bytes& acc = report.folded[p];
    bool acc_have = program.mode == Mode::kFold;
    std::size_t operand_pos = 0;
    auto fold = [&](std::span<const std::byte> rhs) {
      if (!acc_have) {
        acc.assign(rhs.begin(), rhs.end());
        acc_have = true;
      } else {
        (*op)(acc, rhs);
      }
    };

    report.events[p].reserve(stream.instrs.size());
    for (const Instr& ins : stream.instrs) {
      switch (ins.op) {
        case OpCode::kSend: {
          ExecEvent ev;
          ev.kind = ExecEvent::Kind::kSend;
          ev.peer = ins.peer;
          ev.item = ins.item;
          ev.planned = ins.when;
          ev.start_ns = ns_since(start);
          const Bytes& payload =
              program.mode == Mode::kMove
                  ? report.items[p][static_cast<std::size_t>(ins.item)]
                  : acc;
          SpscMailbox& mb = *mailboxes[static_cast<std::size_t>(ins.link)];
          const Message m{ins.item, payload.data(), payload.size()};
          if (!blocking([&] { return mb.try_push(m); })) return;
          ev.xfer_ns = ns_since(start);
          ev.end_ns = ev.xfer_ns;
          bytes_moved[p] += payload.size();
          report.events[p].push_back(ev);
          break;
        }
        case OpCode::kRecv: {
          ExecEvent ev;
          ev.kind = ExecEvent::Kind::kRecv;
          ev.peer = ins.peer;
          ev.item = ins.item;
          ev.planned = ins.when;
          ev.start_ns = ns_since(start);
          SpscMailbox& mb = *mailboxes[static_cast<std::size_t>(ins.link)];
          Message m;
          if (!blocking([&] { return mb.try_pop(m); })) return;
          ev.xfer_ns = ns_since(start);
          if (m.item != ins.item) {
            failure.fail("exec::Engine: P" + std::to_string(wi) +
                         " expected item " + std::to_string(ins.item) +
                         " from P" + std::to_string(ins.peer) + ", got " +
                         std::to_string(m.item));
            return;
          }
          if (program.mode == Mode::kMove) {
            Bytes& slot = report.items[p][static_cast<std::size_t>(m.item)];
            slot.assign(m.data, m.data + m.size);
          } else {
            fold(std::span<const std::byte>(m.data, m.size));
          }
          report.deliveries[p].push_back(
              validate::DeliveryRecord{ins.peer, m.item});
          ev.end_ns = ns_since(start);
          report.events[p].push_back(ev);
          break;
        }
        case OpCode::kCombineLocal: {
          const auto& local =
              (*operands)[static_cast<std::size_t>(stream.sum_index)];
          for (std::int32_t c = 0; c < ins.count; ++c) {
            fold(std::span<const std::byte>(local[operand_pos].data(),
                                            local[operand_pos].size()));
            ++operand_pos;
          }
          break;
        }
      }
    }
  };

  {
    obs::Span run_span("exec.run", "exec");
    if (run_span.active()) {
      run_span.set_arg(program.label + " P=" +
                       std::to_string(program.params.P));
    }
    pool_.run(static_cast<int>(P), worker);
    report.wall_ns = ns_since(start);
  }

  if (failure.abort.load(std::memory_order_acquire)) {
    std::lock_guard lock(failure.mu);
    throw std::runtime_error(failure.message);
  }

  for (const std::size_t b : bytes_moved) report.payload_bytes += b;
  for (const auto& mb : mailboxes) {
    report.max_mailbox_occupancy =
        std::max(report.max_mailbox_occupancy, mb->max_occupancy());
  }

  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    const std::string labels = "collective=\"" + program.label + "\"";
    reg.counter("logpc_exec_runs_total",
                "collective executions on the real-thread engine", labels)
        .inc();
    reg.counter("logpc_exec_messages_total",
                "messages moved through exec mailboxes", labels)
        .inc(report.messages);
    reg.counter("logpc_exec_payload_bytes_total",
                "payload bytes moved through exec mailboxes", labels)
        .inc(report.payload_bytes);
    reg.histogram("logpc_exec_run_latency_ns",
                  obs::default_latency_buckets_ns(),
                  "wall-clock duration of one executed collective", labels)
        .observe(static_cast<double>(report.wall_ns));
  }
  return report;
}

}  // namespace logpc::exec
