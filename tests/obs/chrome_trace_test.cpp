#include "obs/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <string>

#include "../support/json_validator.hpp"
#include "obs/json.hpp"
#include "sched/schedule.hpp"

namespace logpc::obs {
namespace {

using testsupport::JsonValidator;

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_TRUE(JsonValidator(json_string("tricky \"\\\t\x02 payload")).valid());
}

TEST(ChromeTrace, EmptyWriterIsValidJson) {
  ChromeTraceWriter w;
  EXPECT_TRUE(JsonValidator(w.json()).valid());
  EXPECT_NE(w.json().find("\"traceEvents\""), std::string::npos);
}

TEST(ChromeTrace, RecorderExportIsValidJsonWithSlices) {
  TraceRecorder rec(16);
  {
    Span span("planner.build", "planner", &rec);
    span.set_arg("kitem(P=9 L=3, k=4) with \"quotes\"");
  }
  ChromeTraceWriter w;
  w.add(rec);
  const std::string json = w.json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"planner.build\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);
}

TEST(ChromeTrace, SimTraceExportHasSendAndRecvSlices) {
  // Figure 1 machine: o = 2, so every overhead interval is a real slice.
  Schedule s(Params{3, 6, 2, 4}, 1);
  s.add_initial(0, 0, 0);
  s.add_send(0, 0, 1, 0);
  s.add_send(4, 0, 2, 0);
  const sim::Trace trace = sim::Trace::from(s);
  ChromeTraceWriter w;
  w.add(trace);
  const std::string json = w.json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"send i0 -> p1\""), std::string::npos);
  EXPECT_NE(json.find("\"recv i0 <- p0\""), std::string::npos);
  EXPECT_NE(json.find("\"sim.send\""), std::string::npos);
  EXPECT_NE(json.find("\"sim.recv\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2"), std::string::npos);  // o = 2 cycles
  EXPECT_NE(json.find("\"proc 0\""), std::string::npos);
  EXPECT_NE(json.find("\"proc 2\""), std::string::npos);
}

TEST(ChromeTrace, ZeroOverheadBecomesInstantEvents) {
  // Postal machine: o = 0, zero-length intervals must render as instants.
  Schedule s(Params::postal(2, 3), 1);
  s.add_initial(0, 0, 0);
  s.add_send(0, 0, 1, 0);
  const sim::Trace trace = sim::Trace::from(s);
  ChromeTraceWriter w;
  w.add(trace);
  const std::string json = w.json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(ChromeTrace, RunProfileExportsColorCodedComponentTracks) {
  // Two-rank profiled run: rank 0 sends (overhead + blocked), rank 1 waits
  // then stores — four phases and a two-hop critical path.
  exec::ExecReport report;
  report.params = Params{2, 4, 1, 2};
  report.mode = exec::Mode::kMove;
  report.events.resize(2);
  report.events[0].push_back(exec::ExecEvent{
      exec::ExecEvent::Kind::kSend, 1, 0, 10, 25, 30, 0});
  report.events[1].push_back(exec::ExecEvent{
      exec::ExecEvent::Kind::kRecv, 0, 0, 5, 40, 50, 5});
  const RunProfile profile = analyze(report);

  ChromeTraceWriter w;
  w.add(profile);
  const std::string json = w.json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"run profile\""), std::string::npos);
  EXPECT_NE(json.find("\"rank 0\""), std::string::npos);
  EXPECT_NE(json.find("\"rank 1\""), std::string::npos);
  // Component slices are color-coded for the viewer's palette.
  EXPECT_NE(json.find("\"send_overhead\""), std::string::npos);
  EXPECT_NE(json.find("\"latency_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"cname\""), std::string::npos);
  // The critical path lands on its own track past the rank rows.
  EXPECT_NE(json.find("\"critical path\""), std::string::npos);
  EXPECT_NE(json.find("\"profile.critical\""), std::string::npos);
}

TEST(ChromeTrace, CombinedSourcesShareOneValidFile) {
  TraceRecorder rec(4);
  { Span span("comm.bcast", "comm", &rec); }
  Schedule s(Params{2, 6, 2, 4}, 1);
  s.add_initial(0, 0, 0);
  s.add_send(0, 0, 1, 0);
  ChromeTraceWriter w;
  w.add(rec, 1, "runtime");
  w.add(sim::Trace::from(s), 2, "sim");
  const std::string json = w.json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
}

}  // namespace
}  // namespace logpc::obs
