file(REMOVE_RECURSE
  "CMakeFiles/test_combining.dir/bcast/combining_test.cpp.o"
  "CMakeFiles/test_combining.dir/bcast/combining_test.cpp.o.d"
  "test_combining"
  "test_combining.pdb"
  "test_combining[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_combining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
