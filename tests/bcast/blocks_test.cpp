#include "bcast/blocks.hpp"

#include <gtest/gtest.h>

namespace logpc::bcast {
namespace {

TEST(BlockDigraph, Figure3Instance) {
  // Figure 3: L = 3, P - 1 = P(11) = 41.
  const auto res = plan_continuous(3, 11);
  ASSERT_EQ(res.status, SolveStatus::kSolved);
  EXPECT_EQ(res.plan->params.P, 42);
  const auto g = block_digraph(*res.plan);
  EXPECT_TRUE(digraph_invariants_hold(g));
  // Vertices: one per internal node of T41 (= f_8 = 13 blocks for L = 3,
  // t = 11... internal nodes are those with label <= t - L = 8: f_8 = 13),
  // plus receive-only and source.
  EXPECT_EQ(g.labels.size(), 13u + 2u);
  // The largest block has size t - L + 1 = 9 and receives the source's
  // single active transmission.
  int largest = 0;
  for (const int l : g.labels) largest = std::max(largest, l);
  EXPECT_EQ(largest, 9);
  for (const auto& e : g.edges) {
    if (e.from == g.source_vertex) {
      EXPECT_TRUE(e.active);
      EXPECT_EQ(g.labels[static_cast<std::size_t>(e.to)], 9);
      EXPECT_EQ(e.weight, 1);
    }
  }
}

TEST(BlockDigraph, InOutWeightsEqualBlockSize) {
  const auto res = plan_continuous(3, 9);
  ASSERT_EQ(res.status, SolveStatus::kSolved);
  const auto g = block_digraph(*res.plan);
  ASSERT_TRUE(digraph_invariants_hold(g));
  for (int v = 0; v < static_cast<int>(g.labels.size()); ++v) {
    const int label = g.labels[static_cast<std::size_t>(v)];
    if (label > 0) {
      EXPECT_EQ(g.in_weight(v), label);
      EXPECT_EQ(g.out_weight(v), label);
    }
  }
}

TEST(BlockDigraph, ReceiveOnlyVertexShape) {
  const auto res = plan_continuous(4, 7);
  ASSERT_EQ(res.status, SolveStatus::kSolved);
  const auto g = block_digraph(*res.plan);
  EXPECT_EQ(g.labels[static_cast<std::size_t>(g.receive_only_vertex)], 0);
  EXPECT_EQ(g.in_weight(g.receive_only_vertex), 1);
  EXPECT_EQ(g.out_weight(g.receive_only_vertex), 0);
  EXPECT_EQ(g.labels[static_cast<std::size_t>(g.source_vertex)], -1);
  EXPECT_EQ(g.out_weight(g.source_vertex), 1);
  EXPECT_EQ(g.in_weight(g.source_vertex), 0);
}

TEST(BlockDigraph, InvariantsHoldAcrossItems) {
  // Different items rotate the members, but the block-level invariants are
  // item-independent.
  const auto res = plan_continuous(3, 8);
  ASSERT_EQ(res.status, SolveStatus::kSolved);
  for (ItemId item = 0; item < 6; ++item) {
    EXPECT_TRUE(digraph_invariants_hold(block_digraph(*res.plan, item)))
        << "item " << item;
  }
}

TEST(BlockDigraph, ExactlyOneActiveEdgeIntoEachBlock) {
  const auto res = plan_continuous(5, 9);
  ASSERT_EQ(res.status, SolveStatus::kSolved);
  const auto g = block_digraph(*res.plan);
  for (int v = 0; v < static_cast<int>(g.labels.size()); ++v) {
    if (g.labels[static_cast<std::size_t>(v)] <= 0) continue;
    int active_in = 0;
    for (const auto& e : g.edges) {
      if (e.to == v && e.active) active_in += e.weight;
    }
    EXPECT_EQ(active_in, 1) << "block " << v;
  }
}

TEST(BlockDigraph, DegenerateSingleReceiver) {
  const auto res = plan_continuous(3, 0);
  ASSERT_EQ(res.status, SolveStatus::kSolved);
  const auto g = block_digraph(*res.plan);
  EXPECT_EQ(g.labels.size(), 2u);  // receive-only + source
  EXPECT_TRUE(digraph_invariants_hold(g));
}

TEST(BlockDigraph, RejectsNegativeItem) {
  const auto res = plan_continuous(3, 5);
  ASSERT_EQ(res.status, SolveStatus::kSolved);
  EXPECT_THROW(block_digraph(*res.plan, -1), std::invalid_argument);
}

}  // namespace
}  // namespace logpc::bcast
