file(REMOVE_RECURSE
  "CMakeFiles/test_kitem_buffered.dir/bcast/kitem_buffered_test.cpp.o"
  "CMakeFiles/test_kitem_buffered.dir/bcast/kitem_buffered_test.cpp.o.d"
  "test_kitem_buffered"
  "test_kitem_buffered.pdb"
  "test_kitem_buffered[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kitem_buffered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
