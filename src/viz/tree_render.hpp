#pragma once

#include <string>

#include "bcast/tree.hpp"

/// \file tree_render.hpp
/// ASCII rendering of broadcast trees (Figure 1 left, Figure 2 top-left).

namespace logpc::viz {

/// Renders the tree with one node per line, indented by depth, showing each
/// node's informed-at label, e.g.:
///
///   0
///   +- 10
///   |  +- 20
///   |  +- 24
///   +- 14
///   ...
[[nodiscard]] std::string render_tree(const bcast::BroadcastTree& tree);

/// One-line degree summary, e.g. "degrees: 5x0 1x1 1x2 1x5" (count x degree).
[[nodiscard]] std::string degree_summary(const bcast::BroadcastTree& tree);

}  // namespace logpc::viz
