#include "exec/program.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "runtime/implicit_plan.hpp"
#include "sum/executor.hpp"

namespace logpc::exec {

namespace {

/// Interns directed links: one mailbox index per (from, to) pair.
class LinkTable {
 public:
  std::int32_t intern(ProcId from, ProcId to) {
    const std::uint64_t key = (static_cast<std::uint64_t>(
                                   static_cast<std::uint32_t>(from))
                               << 32) |
                              static_cast<std::uint32_t>(to);
    auto [it, inserted] = index_.try_emplace(key, links_.size());
    if (inserted) links_.push_back(Link{from, to});
    return static_cast<std::int32_t>(it->second);
  }

  std::vector<Link> take() { return std::move(links_); }

 private:
  std::unordered_map<std::uint64_t, std::size_t> index_;
  std::vector<Link> links_;
};

/// Plan-time ordering key: receives sort by payload-available cycle and
/// before a send starting the same cycle (the send may forward the item
/// that just landed); schedule position breaks remaining ties.
struct Keyed {
  Time when = 0;
  int is_send = 0;
  std::size_t pos = 0;
  Instr instr;

  friend bool operator<(const Keyed& a, const Keyed& b) {
    return std::tie(a.when, a.is_send, a.pos) <
           std::tie(b.when, b.is_send, b.pos);
  }
};

/// Back-to-front sweep filling Instr::chain: for each receive, how many
/// consecutive receives (itself included) the stream performs on the same
/// link with nothing in between.  This is the engine's licence to drain
/// that many messages in one bulk pop.
void annotate_recv_chains(Program& prog) {
  for (ProcProgram& pp : prog.procs) {
    std::vector<Instr>& v = pp.instrs;
    for (std::size_t j = v.size(); j-- > 0;) {
      if (v[j].op != OpCode::kRecv) continue;
      const bool chained = j + 1 < v.size() &&
                           v[j + 1].op == OpCode::kRecv &&
                           v[j + 1].link == v[j].link;
      v[j].chain = chained ? v[j + 1].chain + 1 : 1;
    }
  }
}

}  // namespace

std::vector<std::vector<validate::DeliveryRecord>>
Program::expected_deliveries() const {
  std::vector<std::vector<validate::DeliveryRecord>> out(procs.size());
  for (std::size_t p = 0; p < procs.size(); ++p) {
    for (const Instr& ins : procs[p].instrs) {
      if (ins.op == OpCode::kRecv) {
        out[p].push_back(validate::DeliveryRecord{ins.peer, ins.item});
      }
    }
  }
  return out;
}

Program compile_broadcast(const Schedule& s, std::string label) {
  s.params().require_valid();
  const auto P = static_cast<std::size_t>(s.params().P);
  Program prog;
  prog.params = s.params();
  prog.mode = Mode::kMove;
  prog.label = std::move(label);
  prog.num_items = s.num_items();
  prog.predicted_makespan = s.makespan();
  prog.num_messages = s.sends().size();
  prog.initials = s.initials();
  prog.procs.resize(P);
  for (std::size_t p = 0; p < P; ++p) {
    prog.procs[p].proc = static_cast<ProcId>(p);
  }

  LinkTable links;
  std::vector<std::vector<Keyed>> streams(P);
  const auto& sends = s.sends();
  for (std::size_t i = 0; i < sends.size(); ++i) {
    const SendOp& op = sends[i];
    const std::int32_t link = links.intern(op.from, op.to);
    streams[static_cast<std::size_t>(op.from)].push_back(
        Keyed{op.start, 1, i,
              Instr{OpCode::kSend, op.to, op.item, 0, link, op.start}});
    streams[static_cast<std::size_t>(op.to)].push_back(
        Keyed{s.available_at(op), 0, i,
              Instr{OpCode::kRecv, op.from, op.item, 0, link,
                    s.available_at(op)}});
  }

  // Availability check in stream order: refuse to compile a plan that would
  // block forever on an item its sender never obtains.
  std::vector<std::vector<char>> have(
      P, std::vector<char>(static_cast<std::size_t>(prog.num_items), 0));
  for (const auto& init : s.initials()) {
    have[static_cast<std::size_t>(init.proc)]
        [static_cast<std::size_t>(init.item)] = 1;
  }
  for (std::size_t p = 0; p < P; ++p) {
    std::sort(streams[p].begin(), streams[p].end());
    prog.procs[p].instrs.reserve(streams[p].size());
    for (const Keyed& k : streams[p]) prog.procs[p].instrs.push_back(k.instr);
  }
  // Sends must follow the reception (or initial placement) of their item in
  // the same stream — stream order is exactly what executes.
  for (std::size_t p = 0; p < P; ++p) {
    for (const Instr& ins : prog.procs[p].instrs) {
      char& slot = have[p][static_cast<std::size_t>(ins.item)];
      if (ins.op == OpCode::kSend) {
        if (slot == 0) {
          throw std::invalid_argument(
              "exec::compile_broadcast: P" + std::to_string(p) +
              " sends item " + std::to_string(ins.item) +
              " before holding it");
        }
      } else if (ins.op == OpCode::kRecv) {
        slot = 1;
      }
    }
  }
  prog.links = links.take();
  annotate_recv_chains(prog);
  return prog;
}

Program relabel_swapped(Program program, ProcId a, ProcId b) {
  const auto P = static_cast<ProcId>(program.procs.size());
  if (a < 0 || a >= P || b < 0 || b >= P) {
    throw std::invalid_argument("exec::relabel_swapped: rank out of range");
  }
  if (a == b) return program;
  const auto map = [a, b](ProcId p) { return p == a ? b : (p == b ? a : p); };
  std::swap(program.procs[static_cast<std::size_t>(a)],
            program.procs[static_cast<std::size_t>(b)]);
  for (ProcProgram& pp : program.procs) {
    pp.proc = map(pp.proc);
    for (Instr& ins : pp.instrs) {
      if (ins.peer != kNoProc) ins.peer = map(ins.peer);
    }
  }
  for (Link& link : program.links) {
    link.from = map(link.from);
    link.to = map(link.to);
  }
  for (InitialPlacement& init : program.initials) {
    init.proc = map(init.proc);
  }
  return program;
}

Program compile_reduction(const bcast::ReductionPlan& plan) {
  const Schedule& s = plan.schedule;
  s.params().require_valid();
  const auto P = static_cast<std::size_t>(s.params().P);
  Program prog;
  prog.params = s.params();
  prog.mode = Mode::kFold;
  prog.label = "reduce";
  prog.num_items = 1;
  prog.predicted_makespan = plan.completion;
  prog.num_messages = s.sends().size();
  prog.procs.resize(P);
  for (std::size_t p = 0; p < P; ++p) {
    prog.procs[p].proc = static_cast<ProcId>(p);
  }

  LinkTable links;
  std::vector<std::vector<Keyed>> streams(P);
  const auto& sends = s.sends();
  for (std::size_t i = 0; i < sends.size(); ++i) {
    const SendOp& op = sends[i];
    const std::int32_t link = links.intern(op.from, op.to);
    streams[static_cast<std::size_t>(op.from)].push_back(
        Keyed{op.start, 1, i,
              Instr{OpCode::kSend, op.to, op.item, 0, link, op.start}});
    streams[static_cast<std::size_t>(op.to)].push_back(
        Keyed{s.available_at(op), 0, i,
              Instr{OpCode::kRecv, op.from, op.item, 0, link,
                    s.available_at(op)}});
  }
  for (std::size_t p = 0; p < P; ++p) {
    std::sort(streams[p].begin(), streams[p].end());
    bool sent = false;
    for (const Keyed& k : streams[p]) {
      if (k.instr.op == OpCode::kRecv && sent) {
        throw std::invalid_argument(
            "exec::compile_reduction: P" + std::to_string(p) +
            " receives after its send — not a reduction plan");
      }
      sent = sent || k.instr.op == OpCode::kSend;
      prog.procs[p].instrs.push_back(k.instr);
    }
  }
  prog.links = links.take();
  annotate_recv_chains(prog);
  return prog;
}

Program compile_implicit(const runtime::ImplicitPlan& plan,
                         std::string label) {
  const Params& params = plan.params();
  params.require_valid();
  const auto P = static_cast<std::size_t>(params.P);
  const Time T = params.transfer_time();
  const bool reduce = plan.is_reduction();
  Program prog;
  prog.params = params;
  prog.mode = reduce ? Mode::kFold : Mode::kMove;
  prog.label = label.empty() ? (reduce ? "reduce" : "bcast")
                             : std::move(label);
  prog.num_items = 1;
  prog.predicted_makespan = plan.completion();
  prog.num_messages = P - 1;
  if (!reduce) {
    prog.initials.push_back(
        InitialPlacement{0, plan.plan_key().root, 0});
  }
  prog.procs.resize(P);

  // Per-rank streams straight from the generators.  A RankSchedule's recvs
  // and sends are each in time order, and every receive's payload is
  // available no later than the first send's start (equality only on the
  // parent link), so recvs-then-sends is exactly the Keyed order the
  // materialized compilers produce.  Links intern rank-major.
  LinkTable links;
  for (std::size_t p = 0; p < P; ++p) {
    const runtime::RankSchedule rs =
        plan.rank_schedule(static_cast<ProcId>(p));
    ProcProgram& stream = prog.procs[p];
    stream.proc = static_cast<ProcId>(p);
    stream.instrs.reserve(rs.recvs.size() + rs.sends.size());
    for (const SendOp& op : rs.recvs) {
      const std::int32_t link = links.intern(op.from, op.to);
      stream.instrs.push_back(
          Instr{OpCode::kRecv, op.from, op.item, 0, link, op.start + T});
    }
    for (const SendOp& op : rs.sends) {
      const std::int32_t link = links.intern(op.from, op.to);
      stream.instrs.push_back(
          Instr{OpCode::kSend, op.to, op.item, 0, link, op.start});
    }
  }
  prog.links = links.take();
  annotate_recv_chains(prog);
  return prog;
}

Program compile_summation(const sum::SummationPlan& plan) {
  plan.params.require_valid();
  const auto P = static_cast<std::size_t>(plan.params.P);
  Program prog;
  prog.params = plan.params;
  prog.mode = Mode::kSum;
  prog.label = "summation";
  prog.num_items = 1;
  prog.predicted_makespan = plan.t;
  prog.procs.resize(P);
  for (std::size_t p = 0; p < P; ++p) {
    prog.procs[p].proc = static_cast<ProcId>(p);
  }

  const std::vector<sum::ProcLayout> layout = sum::operand_layout(plan);
  LinkTable links;
  for (std::size_t i = 0; i < plan.procs.size(); ++i) {
    const sum::ProcPlan& pp = plan.procs[i];
    const auto p = static_cast<std::size_t>(pp.proc);
    ProcProgram& stream = prog.procs[p];
    stream.sum_index = static_cast<std::int32_t>(i);
    stream.num_operands = layout[i].total();
    const auto& chunks = layout[i].chunk_sizes;
    auto add_chunk = [&stream](std::size_t count, Time when) {
      if (count == 0) return;
      stream.instrs.push_back(Instr{OpCode::kCombineLocal, kNoProc, 0,
                                    static_cast<std::int32_t>(count), -1,
                                    when});
    };
    add_chunk(chunks[0], 0);
    for (std::size_t j = 0; j < pp.recv_from.size(); ++j) {
      const std::int32_t link = links.intern(pp.recv_from[j], pp.proc);
      stream.instrs.push_back(Instr{OpCode::kRecv, pp.recv_from[j], 0, 0,
                                    link, pp.recv_times[j]});
      add_chunk(chunks[j + 1], pp.recv_times[j]);
    }
    if (pp.send_to != kNoProc) {
      const std::int32_t link = links.intern(pp.proc, pp.send_to);
      stream.instrs.push_back(
          Instr{OpCode::kSend, pp.send_to, 0, 0, link, pp.send_time});
      ++prog.num_messages;
    }
  }
  prog.links = links.take();
  annotate_recv_chains(prog);
  return prog;
}

}  // namespace logpc::exec
