/// The fault bench: what does resilience cost?  On the P=8 reference
/// machine we run the same broadcast three ways — fault-free, under a
/// lossy network (injected drops forcing acked retransmission), and with
/// one rank killed mid-collective so the Communicator has to re-plan on
/// the seven survivors — and report the wall time of each next to the
/// recovery latency (detection + re-plan + degraded re-run).  Results
/// land in BENCH_fault.json via the global JsonReport.

#include "bench_util.hpp"

#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "api/communicator.hpp"
#include "fault/fault.hpp"

namespace {

using namespace logpc;
using logpc::bench::Table;

std::uint64_t env_seed() {
  const char* s = std::getenv("LOGPC_FAULT_SEED");
  return (s != nullptr && *s != '\0') ? std::strtoull(s, nullptr, 10) : 1;
}

exec::Bytes payload_of(std::size_t size) {
  exec::Bytes b(size);
  for (std::size_t i = 0; i < size; ++i) {
    b[i] = static_cast<std::byte>(i & 0xFF);
  }
  return b;
}

/// Best-of-`reps` FT run (thread wakeup jitter dominates single runs).
template <typename RunFn>
api::FtRunResult best_of(int reps, const RunFn& run) {
  api::FtRunResult best = run();
  for (int i = 1; i < reps; ++i) {
    api::FtRunResult r = run();
    if (r.report.wall_ns < best.report.wall_ns) best = std::move(r);
  }
  return best;
}

void report() {
  logpc::bench::section("fault: the price of surviving a lossy, mortal network");
  constexpr int kReps = 5;
  const Params machine{8, 4, 1, 2};
  const api::Communicator comm(machine);
  const exec::Bytes payload = payload_of(1024);
  const std::span<const std::byte> view(payload);
  const std::uint64_t seed = env_seed();

  Table t({"scenario", "status", "attempts", "wall (us)", "recovery (us)",
           "retries", "survivors"});

  const api::FtRunResult clean =
      best_of(kReps, [&] { return comm.run_broadcast_ft(view); });
  t.row("fault-free", "ok", clean.attempts, clean.report.wall_ns / 1000, 0,
        clean.report.retries, clean.survivors.size());

  fault::FaultSpec lossy;
  lossy.seed = seed;
  lossy.drop_prob = 0.5;
  api::FtRunOptions lossy_opt;
  lossy_opt.faults = lossy;
  const api::FtRunResult dropped =
      best_of(kReps, [&] { return comm.run_broadcast_ft(view, 0, lossy_opt); });
  t.row("drops p=0.5", "ok", dropped.attempts, dropped.report.wall_ns / 1000,
        0, dropped.report.retries, dropped.survivors.size());

  fault::FaultSpec mortal;
  mortal.seed = seed;
  mortal.dead_rank = 3;
  mortal.dead_after_instrs = 0;
  api::FtRunOptions mortal_opt;
  mortal_opt.faults = mortal;
  const api::FtRunResult killed =
      best_of(kReps, [&] { return comm.run_broadcast_ft(view, 0, mortal_opt); });
  t.row("rank 3 dies", killed.status == api::RunStatus::kRecovered ? "recovered"
                                                                   : "failed",
        killed.attempts, killed.report.wall_ns / 1000,
        killed.recovery_ns / 1000, killed.report.retries,
        killed.survivors.size());
  t.print();

  std::cout << "\nrecovery = failure detection + re-plan over the survivors +\n"
               "degraded re-run; the broadcast tree is universal, so the\n"
               "7-processor plan is itself optimal.\n";

  auto& rep = logpc::bench::global_report("fault");
  rep.entry("fault_grid",
            {{"machine", machine.to_string()},
             {"scenario", "fault_free"},
             {"seed", std::to_string(seed)}},
            {{"wall_ns", static_cast<double>(clean.report.wall_ns)},
             {"retries", static_cast<double>(clean.report.retries)},
             {"attempts", static_cast<double>(clean.attempts)},
             {"recovery_ns", 0.0}});
  rep.entry("fault_grid",
            {{"machine", machine.to_string()},
             {"scenario", "drops_p50"},
             {"seed", std::to_string(seed)}},
            {{"wall_ns", static_cast<double>(dropped.report.wall_ns)},
             {"retries", static_cast<double>(dropped.report.retries)},
             {"duplicates", static_cast<double>(dropped.report.duplicates)},
             {"attempts", static_cast<double>(dropped.attempts)},
             {"recovery_ns", 0.0}});
  rep.entry("fault_grid",
            {{"machine", machine.to_string()},
             {"scenario", "dead_rank_3"},
             {"seed", std::to_string(seed)}},
            {{"wall_ns", static_cast<double>(killed.report.wall_ns)},
             {"retries", static_cast<double>(killed.report.retries)},
             {"attempts", static_cast<double>(killed.attempts)},
             {"survivors", static_cast<double>(killed.survivors.size())},
             {"recovery_ns", static_cast<double>(killed.recovery_ns)}});
}

void BM_InjectorDecision(benchmark::State& state) {
  fault::FaultSpec spec;
  spec.seed = 1;
  spec.drop_prob = 0.5;
  spec.delay_prob = 0.5;
  spec.delay_ns = 100;
  const fault::Injector inj(spec);
  std::uint64_t seq = 0;
  for (auto _ : state) {
    ++seq;
    benchmark::DoNotOptimize(inj.drop_delivery(1, 0, seq, 1));
    benchmark::DoNotOptimize(inj.send_delay_ns(0, 0, seq));
  }
}
BENCHMARK(BM_InjectorDecision);

void BM_BroadcastPlain(benchmark::State& state) {
  const api::Communicator comm(Params{8, 4, 1, 2});
  static exec::Engine* engine = new exec::Engine;
  const exec::Bytes payload = payload_of(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        comm.run_broadcast(std::span<const std::byte>(payload), 0, engine));
  }
}
BENCHMARK(BM_BroadcastPlain);

void BM_BroadcastReliable(benchmark::State& state) {
  // Same broadcast through the acked-delivery path: the per-message cost
  // of sequencing + cumulative acks on a fault-free network.
  const api::Communicator comm(Params{8, 4, 1, 2});
  const exec::Bytes payload = payload_of(1024);
  const std::span<const std::byte> view(payload);
  for (auto _ : state) {
    benchmark::DoNotOptimize(comm.run_broadcast_ft(view));
  }
}
BENCHMARK(BM_BroadcastReliable);

}  // namespace

LOGPC_BENCH_MAIN(report)
