#include "search/bcast_search.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "bcast/kitem_bounds.hpp"
#include "logp/fib.hpp"

namespace logpc::search {

namespace {

// One processor's view: which items it has, and for each item the arrival
// step of an in-flight copy (0 = none).  All messages take exactly L, so
// two copies of one item in flight to one processor would be wasteful and
// are never generated.
struct ProcState {
  unsigned has = 0;
  std::vector<Time> arrival;  // per item; 0 = none
};

class Searcher {
 public:
  Searcher(int P, Time L, int k, Time T, const SearchLimits& limits)
      : P_(P), L_(L), k_(k), T_(T), limits_(limits), fib_(L) {}

  std::optional<bool> run() {
    std::vector<ProcState> procs(static_cast<std::size_t>(P_));
    for (auto& ps : procs) {
      ps.arrival.assign(static_cast<std::size_t>(k_), 0);
    }
    procs[0].has = (k_ >= 32) ? ~0u : ((1u << k_) - 1u);
    const bool ok = dfs(0, procs);
    if (exhausted_) return std::nullopt;
    return ok;
  }

  /// The sends of the successful schedule (valid after run() == true).
  [[nodiscard]] const std::vector<SendOp>& witness() const { return trail_; }

 private:
  int P_;
  Time L_;
  int k_;
  Time T_;
  SearchLimits limits_;
  Fib fib_;
  std::uint64_t nodes_ = 0;
  bool exhausted_ = false;
  std::unordered_set<std::string> failed_;  // (step, canonical state)
  std::vector<SendOp> trail_;  // sends on the current DFS path

  bool all_done(const std::vector<ProcState>& procs) const {
    const unsigned full = (k_ >= 32) ? ~0u : ((1u << k_) - 1u);
    return std::all_of(procs.begin(), procs.end(), [full](const ProcState& p) {
      return (p.has & full) == full;
    });
  }

  // Admissible pruning: even if every holder spreads an item optimally, the
  // processors holding it by T are bounded by sum of f_(time left).
  bool can_still_finish(Time s, const std::vector<ProcState>& procs) {
    for (ItemId i = 0; i < k_; ++i) {
      Count potential = 0;
      for (const auto& ps : procs) {
        if ((ps.has >> i) & 1u) {
          potential = sat_add(potential, fib_.f(T_ - s));
        } else if (ps.arrival[static_cast<std::size_t>(i)] != 0 &&
                   ps.arrival[static_cast<std::size_t>(i)] <= T_) {
          potential = sat_add(
              potential, fib_.f(T_ - ps.arrival[static_cast<std::size_t>(i)]));
        }
      }
      if (potential < static_cast<Count>(P_)) return false;
    }
    return true;
  }

  std::string canonical(Time s, const std::vector<ProcState>& procs) const {
    std::vector<std::string> sigs;
    sigs.reserve(procs.size() - 1);
    std::string key;
    key.push_back(static_cast<char>(s));
    auto sig = [&](const ProcState& ps) {
      std::string out;
      out.push_back(static_cast<char>(ps.has & 0xff));
      out.push_back(static_cast<char>((ps.has >> 8) & 0xff));
      for (const Time a : ps.arrival) {
        out.push_back(static_cast<char>(a == 0 ? 0 : a - s));
      }
      return out;
    };
    key += sig(procs[0]);
    for (std::size_t p = 1; p < procs.size(); ++p) sigs.push_back(sig(procs[p]));
    std::sort(sigs.begin(), sigs.end());
    for (const auto& x : sigs) key += x;
    return key;
  }

  bool dfs(Time s, std::vector<ProcState>& procs) {
    if (all_done(procs)) return true;
    if (s >= T_) return false;
    if (++nodes_ > limits_.max_nodes) {
      exhausted_ = true;
      return false;
    }
    if (!can_still_finish(s, procs)) return false;
    const std::string key = canonical(s, procs);
    if (failed_.contains(key)) return false;

    // Enumerate per-processor send choices (including idle), then advance.
    std::vector<std::pair<ProcId, ItemId>> sends;  // (target, item) per proc
    std::vector<bool> targeted(static_cast<std::size_t>(P_), false);
    const bool ok = choose(0, s, procs, sends, targeted);
    if (exhausted_) return false;
    if (!ok) failed_.insert(key);
    return ok;
  }

  // Recursively pick processor `p`'s action for step s.
  bool choose(ProcId p, Time s, std::vector<ProcState>& procs,
              std::vector<std::pair<ProcId, ItemId>>& sends,
              std::vector<bool>& targeted) {
    if (exhausted_) return false;
    if (p == P_) return advance(s, procs, sends);
    bool any_useful = false;
    for (ItemId i = 0; i < k_ && !exhausted_; ++i) {
      if (!((procs[static_cast<std::size_t>(p)].has >> i) & 1u)) continue;
      for (ProcId q = 0; q < P_ && !exhausted_; ++q) {
        if (q == p || targeted[static_cast<std::size_t>(q)]) continue;
        auto& qs = procs[static_cast<std::size_t>(q)];
        if ((qs.has >> i) & 1u) continue;
        if (qs.arrival[static_cast<std::size_t>(i)] != 0) continue;
        any_useful = true;
        targeted[static_cast<std::size_t>(q)] = true;
        qs.arrival[static_cast<std::size_t>(i)] = s + L_;
        sends.emplace_back(q, i);
        trail_.push_back(SendOp{s, p, q, i, kNever});
        const bool done = choose(p + 1, s, procs, sends, targeted);
        if (done) return true;  // keep the witness on the trail
        trail_.pop_back();
        sends.pop_back();
        qs.arrival[static_cast<std::size_t>(i)] = 0;
        targeted[static_cast<std::size_t>(q)] = false;
      }
    }
    if (!any_useful) {
      // Idling is only allowed when no useful send exists: receiving more
      // never hurts in the postal model, so maximal assignments dominate.
      return choose(p + 1, s, procs, sends, targeted);
    }
    return false;
  }

  bool advance(Time s, std::vector<ProcState>& procs,
               const std::vector<std::pair<ProcId, ItemId>>& sends) {
    // Materialize arrivals due at s + 1.
    std::vector<std::pair<ProcId, ItemId>> landed;
    for (ProcId q = 0; q < P_; ++q) {
      auto& qs = procs[static_cast<std::size_t>(q)];
      for (ItemId i = 0; i < k_; ++i) {
        if (qs.arrival[static_cast<std::size_t>(i)] == s + 1) {
          qs.arrival[static_cast<std::size_t>(i)] = 0;
          qs.has |= 1u << i;
          landed.emplace_back(q, i);
        }
      }
    }
    const bool ok = dfs(s + 1, procs);
    for (const auto& [q, i] : landed) {
      auto& qs = procs[static_cast<std::size_t>(q)];
      qs.has &= ~(1u << i);
      qs.arrival[static_cast<std::size_t>(i)] = s + 1;
    }
    (void)sends;
    return ok;
  }
};

}  // namespace

std::optional<bool> feasible(int P, Time L, int k, Time T,
                             const SearchLimits& limits) {
  if (P < 1 || L < 1 || k < 1 || k > 16 || T < 0) {
    throw std::invalid_argument("search::feasible: bad arguments");
  }
  if (P == 1) return true;
  return Searcher(P, L, k, T, limits).run();
}

std::optional<Time> min_completion(int P, Time L, int k,
                                   const SearchLimits& limits) {
  if (P < 2) return Time{0};
  const auto bounds = bcast::kitem_bounds(P, L, k);
  for (Time T = bounds.general_lower; T <= limits.max_T; ++T) {
    const auto f = feasible(P, L, k, T, limits);
    if (!f.has_value()) return std::nullopt;
    if (*f) return T;
  }
  return std::nullopt;
}

std::optional<Schedule> optimal_schedule(int P, Time L, int k,
                                         const SearchLimits& limits) {
  const auto T = min_completion(P, L, k, limits);
  if (!T.has_value()) return std::nullopt;
  Schedule s(Params::postal(std::max(P, 1), L), k);
  for (ItemId i = 0; i < k; ++i) s.add_initial(i, 0, 0);
  if (P < 2) return s;
  Searcher searcher(P, L, k, *T, limits);
  const auto ok = searcher.run();
  if (!ok.has_value() || !*ok) return std::nullopt;  // budget race
  for (const auto& op : searcher.witness()) s.add_send(op);
  s.sort();
  return s;
}

}  // namespace logpc::search
