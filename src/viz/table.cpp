#include "viz/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <vector>

namespace logpc::viz {

std::string reception_table(const Schedule& s) {
  const Time span = s.makespan() + 1;
  const auto P = static_cast<std::size_t>(s.params().P);
  std::vector<std::vector<std::string>> cells(
      P, std::vector<std::string>(static_cast<std::size_t>(span)));
  for (const auto& init : s.initials()) {
    auto& cell = cells[static_cast<std::size_t>(init.proc)]
                      [static_cast<std::size_t>(init.time)];
    if (!cell.empty()) cell += ",";
    cell += "(" + std::to_string(init.item + 1) + ")";
  }
  for (const auto& op : s.sends()) {
    const Time at = s.available_at(op);
    const bool delayed =
        op.recv_start != kNever &&
        op.recv_start != op.start + s.params().o + s.params().L;
    auto& cell =
        cells[static_cast<std::size_t>(op.to)][static_cast<std::size_t>(at)];
    if (!cell.empty()) cell += ",";
    cell += delayed ? "[" + std::to_string(op.item + 1) + "]"
                    : std::to_string(op.item + 1);
  }
  std::size_t width = 2;
  for (const auto& row : cells) {
    for (const auto& cell : row) width = std::max(width, cell.size() + 1);
  }
  std::ostringstream os;
  os << "proc |";
  for (Time t = 0; t < span; ++t) {
    os << std::setw(static_cast<int>(width)) << t;
  }
  os << "\n-----+" << std::string(static_cast<std::size_t>(span) * width, '-')
     << "\n";
  for (std::size_t p = 0; p < P; ++p) {
    os << "P" << std::left << std::setw(3) << p << std::right << " |";
    for (Time t = 0; t < span; ++t) {
      os << std::setw(static_cast<int>(width))
         << cells[p][static_cast<std::size_t>(t)];
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace logpc::viz
