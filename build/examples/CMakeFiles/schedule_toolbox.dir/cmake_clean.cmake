file(REMOVE_RECURSE
  "CMakeFiles/schedule_toolbox.dir/schedule_toolbox.cpp.o"
  "CMakeFiles/schedule_toolbox.dir/schedule_toolbox.cpp.o.d"
  "schedule_toolbox"
  "schedule_toolbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_toolbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
