/// The planning-runtime bench: cold vs. warm planning throughput through
/// the concurrent plan cache (src/runtime), for a k-item broadcast grid,
/// under 1, 4 and 8 requester threads.
///
/// Cold = every request routed to the Section 3 builders (fresh planner per
/// pass, measured via Planner::build_uncached); warm = the same requests
/// served from the sharded LRU cache.  The ISSUE's acceptance bar is a
/// >= 50x warm speedup; typical results are orders of magnitude beyond it.

#include "bench_util.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/planner.hpp"
#include "runtime/snapshot.hpp"
#include "runtime/warmup.hpp"

namespace {

using namespace logpc;
using runtime::PlanKey;
using runtime::Planner;
using logpc::bench::Table;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The k-item broadcast grid the acceptance criterion names.
std::vector<PlanKey> kitem_grid() {
  runtime::WarmupGrid grid;
  grid.problems = {runtime::Problem::kKItemBroadcast};
  for (const int P : {6, 9, 10, 13, 17, 22}) {
    for (const Time L : {2, 3, 4}) {
      grid.machines.push_back(Params::postal(P, L));
    }
  }
  grid.ks = {2, 4, 8, 16};
  return grid.keys();
}

/// One timed pass: `threads` workers plan every key in `keys` against
/// `planner`, work-stealing off a shared counter.  Returns seconds.
double run_pass(Planner& planner, const std::vector<PlanKey>& keys,
                unsigned threads) {
  std::atomic<std::size_t> next{0};
  const auto start = Clock::now();
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= keys.size()) return;
      benchmark::DoNotOptimize(planner.plan(keys[i]));
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return seconds_since(start);
}

/// Mean ns per warm planner.plan(key) over `iters` calls.
double warm_ns_per_op(Planner& planner, const PlanKey& key, int iters) {
  const auto start = Clock::now();
  for (int i = 0; i < iters; ++i) {
    benchmark::DoNotOptimize(planner.plan(key));
  }
  return seconds_since(start) * 1e9 / iters;
}

void report() {
  logpc::bench::JsonReport json("plan_cache");
  logpc::bench::section("plan-cache runtime: cold vs warm planning");
  const std::vector<PlanKey> keys = kitem_grid();
  std::cout << keys.size() << " distinct k-item keys "
            << "(P in {6..22}, L in {2..4}, k in {2..16})\n\n";

  // Warm reference pass count: hammer the cached keys many times over so
  // the warm timing is measurable.
  constexpr int kWarmRounds = 200;
  std::vector<PlanKey> warm_keys;
  warm_keys.reserve(keys.size() * kWarmRounds);
  for (int r = 0; r < kWarmRounds; ++r) {
    warm_keys.insert(warm_keys.end(), keys.begin(), keys.end());
  }

  Table t({"threads", "cold plans/s", "warm plans/s", "speedup",
           ">=50x"});
  for (const unsigned threads : {1u, 4u, 8u}) {
    // Cold: a fresh planner; every request reaches a builder (the warmup
    // pool reports built == keys so each key is constructed exactly once —
    // throughput is builds over wall time).
    Planner cold;
    const auto cold_start = Clock::now();
    const runtime::WarmupReport cold_report =
        runtime::warmup(cold, keys, threads);
    const double cold_secs = seconds_since(cold_start);
    const double cold_rate =
        static_cast<double>(cold_report.built) / cold_secs;

    // Warm: same planner, same keys, many rounds, all cache hits.
    const double warm_secs = run_pass(cold, warm_keys, threads);
    const double warm_rate =
        static_cast<double>(warm_keys.size()) / warm_secs;

    const double speedup = warm_rate / cold_rate;
    t.row(threads, static_cast<std::int64_t>(cold_rate),
          static_cast<std::int64_t>(warm_rate),
          static_cast<std::int64_t>(speedup),
          logpc::bench::ok(speedup >= 50.0));

    const runtime::CacheStats cs = cold.cache().stats();
    json.entry("cold_vs_warm", {{"threads", std::to_string(threads)}},
               {{"cold_plans_per_s", cold_rate},
                {"warm_plans_per_s", warm_rate},
                {"speedup", speedup},
                {"warm_ns_per_op", 1e9 / warm_rate},
                {"cache_hits", static_cast<double>(cs.hits)},
                {"cache_misses", static_cast<double>(cs.misses)},
                {"cache_hit_ratio", cs.hit_ratio()},
                {"cache_entries", static_cast<double>(cs.entries)}});
  }
  t.print();

  // Telemetry overhead on the warm path: the same single-key hit loop with
  // the obs layer enabled vs disabled (best of three passes each, to shake
  // out scheduler noise).  The acceptance bar is < 5%.
  logpc::bench::section("telemetry overhead on warm Planner::plan");
  {
    Planner planner;
    const PlanKey key = PlanKey::kitem(Params::postal(17, 3), 8);
    (void)planner.plan(key);
    constexpr int kIters = 1'000'000;
    (void)warm_ns_per_op(planner, key, kIters / 10);  // warm up caches
    double on_ns = 1e300;
    double off_ns = 1e300;
    for (int round = 0; round < 3; ++round) {
      obs::set_enabled(true);
      on_ns = std::min(on_ns, warm_ns_per_op(planner, key, kIters));
      obs::set_enabled(false);
      off_ns = std::min(off_ns, warm_ns_per_op(planner, key, kIters));
    }
    obs::set_enabled(true);
    const double overhead_pct = (on_ns - off_ns) / off_ns * 100.0;
    std::cout << "enabled " << on_ns << " ns/op, disabled " << off_ns
              << " ns/op, overhead " << overhead_pct << "% ("
              << logpc::bench::ok(overhead_pct < 5.0) << ": < 5%)\n";
    json.entry("telemetry_overhead", {},
               {{"enabled_ns_per_op", on_ns},
                {"disabled_ns_per_op", off_ns},
                {"overhead_pct", overhead_pct}});
  }

  // Snapshot round-trip sanity: a serving process starting from the saved
  // cache plans without a single build.
  Planner producer;
  (void)runtime::warmup(producer, keys, 4);
  std::stringstream snap;
  const std::size_t saved = runtime::save_snapshot(producer.cache(), snap);
  Planner consumer;
  (void)runtime::load_snapshot(consumer.cache(), snap);
  const double replay_secs = run_pass(consumer, keys, 1);
  std::cout << "\nsnapshot: " << saved << " plans saved; hot-started replay"
            << " of the grid took " << replay_secs * 1e3 << " ms with "
            << consumer.builds() << " builds (expect 0)\n";
  json.entry("snapshot_replay", {},
             {{"plans_saved", static_cast<double>(saved)},
              {"replay_ms", replay_secs * 1e3},
              {"replay_builds", static_cast<double>(consumer.builds())}});

  json.attach_metrics(obs::MetricsRegistry::global());
  const std::string path = json.write();
  std::cout << (path.empty() ? "FAILED to write bench json"
                             : "bench json: " + path)
            << "\n";
}

void BM_ColdPlan(benchmark::State& state) {
  const PlanKey key = PlanKey::kitem(Params::postal(17, 3), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Planner::build_uncached(key));
  }
}
BENCHMARK(BM_ColdPlan);

void BM_WarmPlan(benchmark::State& state) {
  Planner planner;
  const PlanKey key = PlanKey::kitem(Params::postal(17, 3), 8);
  (void)planner.plan(key);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.plan(key));
  }
}
BENCHMARK(BM_WarmPlan);

void BM_WarmPlanContended(benchmark::State& state) {
  // google-benchmark threads all hammer one cached key.
  static Planner* planner = new Planner;
  const PlanKey key = PlanKey::kitem(Params::postal(17, 3), 8);
  (void)planner->plan(key);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner->plan(key));
  }
}
BENCHMARK(BM_WarmPlanContended)->Threads(4)->Threads(8);

}  // namespace

LOGPC_BENCH_MAIN(report)
