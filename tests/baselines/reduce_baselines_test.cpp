#include "baselines/reduce_baselines.hpp"

#include <gtest/gtest.h>

#include "sum/executor.hpp"
#include "sum/lazy.hpp"

namespace logpc::baselines {
namespace {

const Params kMachine{16, 3, 0, 1};

TEST(ReduceBaselines, AllPlansAreValidLazySummations) {
  for (const Params params : {kMachine, Params{8, 5, 2, 4},
                              Params{32, 2, 1, 4}}) {
    for (const Time t : {6, 14, 26}) {
      for (const auto& plan :
           {binary_tree_summation(params, t), binomial_summation(params, t),
            sequential_summation(params, t), chain_summation(params, t)}) {
        EXPECT_TRUE(sum::is_valid_plan(plan))
            << params.to_string() << " t=" << t << "\n"
            << sum::check_plan(plan).summary();
      }
    }
  }
}

TEST(ReduceBaselines, SequentialSumsExactlyTPlusOne) {
  for (const Time t : {0, 5, 17}) {
    const auto plan = sequential_summation(kMachine, t);
    EXPECT_EQ(plan.total_operands, static_cast<Count>(t) + 1);
    EXPECT_EQ(plan.procs.size(), 1u);
  }
}

TEST(ReduceBaselines, PlansExecuteCorrectly) {
  for (const auto& plan :
       {binary_tree_summation(kMachine, 20), binomial_summation(kMachine, 20),
        chain_summation(kMachine, 20)}) {
    const auto n = static_cast<long long>(plan.total_operands);
    EXPECT_EQ(sum::execute_iota_sum(plan), n * (n - 1) / 2);
  }
}

TEST(ReduceBaselines, ParallelBaselinesBeatSequentialEventually) {
  // With enough time, any reduction tree beats one processor.
  const Time t = 40;
  EXPECT_GT(binary_tree_summation(kMachine, t).total_operands,
            sequential_summation(kMachine, t).total_operands);
  EXPECT_GT(binomial_summation(kMachine, t).total_operands,
            sequential_summation(kMachine, t).total_operands);
}

TEST(ReduceBaselines, UsesOnlyProcessorsThatFit) {
  // Short deadlines shrink the participating set instead of failing.
  const auto plan = binary_tree_summation(Params{64, 4, 0, 1}, 6);
  EXPECT_LT(plan.procs.size(), 64u);
  EXPECT_GE(plan.procs.size(), 1u);
  EXPECT_TRUE(sum::is_valid_plan(plan));
}

TEST(ReduceBaselines, BinomialTracksOptimalAtUnitParams) {
  // With L = g = 1, o = 0 the binomial tree is the optimal broadcast shape,
  // so its reversal must match optimal summation... up to the tree-size
  // fitting; allow equality only.
  const Params params{16, 1, 0, 1};
  for (const Time t : {8, 12, 20}) {
    EXPECT_LE(binomial_summation(params, t).total_operands,
              sum::max_operands(params, t));
  }
}

}  // namespace
}  // namespace logpc::baselines
