#pragma once

#include "exec/engine.hpp"
#include "logp/hier.hpp"
#include "sim/calibrate.hpp"

/// \file measure.hpp
/// Fitting effective LogP parameters from an execution's timestamps — the
/// measured half of the predicted-vs-measured loop the LogP methodology
/// closes (and sim::calibrate closes against the simulator):
///
///   o — how long a processor is busy per send/receive (push latency,
///       arrival-to-folded latency),
///   L — how long a payload spends "on the wire": push-accepted on the
///       sender to pop-succeeded at the receiver, matched per-link FIFO,
///   g — the spacing of back-to-back sends from one processor.
///
/// The fit is in nanoseconds; as_measured_params() quantizes to model
/// cycles given a cycle length, yielding a sim::MeasuredParams directly
/// comparable with the machine the plan was built for.  bench_exec reports
/// both, per grid point, into BENCH_exec.json.

namespace logpc::exec {

/// Effective parameters of one run, in nanoseconds, with sample counts so
/// callers can judge the fit (a P=2 broadcast has no gap samples).
struct MeasuredLogP {
  double L_ns = 0;
  double o_ns = 0;
  double g_ns = 0;
  std::size_t latency_samples = 0;
  std::size_t overhead_samples = 0;
  std::size_t gap_samples = 0;

  /// Quantizes to model cycles of length `ns_per_cycle` (values clamped to
  /// the model's minima: L >= 1, o >= 0, g >= 1), carrying P over from
  /// `machine`.
  [[nodiscard]] sim::MeasuredParams as_measured_params(
      double ns_per_cycle, const Params& machine) const;
};

/// Fits (L, o, g) from a report's per-processor event logs.
[[nodiscard]] MeasuredLogP measure(const ExecReport& report);

/// The two-class fit: one MeasuredLogP per link class of a hierarchical
/// machine (logp/hier.hpp).  Sample counts tell callers whether a run
/// actually exercised both classes — a schedule that never crosses
/// clusters leaves `cross` empty.
struct MeasuredHierLogP {
  MeasuredLogP intra;
  MeasuredLogP cross;

  /// Quantizes both classes to model cycles (per-class minima as in
  /// MeasuredLogP::as_measured_params), keeping `topo`'s cluster map.  A
  /// class with no samples at all falls back to `topo`'s stated class, so
  /// a partial run still yields a usable machine.
  [[nodiscard]] HierParams as_hier_params(double ns_per_cycle,
                                          const HierParams& topo) const;
};

/// Fits both link classes from one report: every event is tagged
/// intra/cross by the cluster map of `topo` (the flat fit above is the
/// same accumulation with a single class).  Gap samples are attributed to
/// the class of the *earlier* send of each back-to-back pair — the one
/// whose port occupancy the spacing measures.
[[nodiscard]] MeasuredHierLogP measure(const ExecReport& report,
                                       const HierParams& topo);

/// The run's implied cycle length: measured wall time over predicted
/// cycles (0 when the plan predicts a zero makespan).
[[nodiscard]] double fitted_ns_per_cycle(const ExecReport& report);

}  // namespace logpc::exec
