#include "bcast/single_item.hpp"

#include <gtest/gtest.h>

#include "baselines/bcast_baselines.hpp"
#include "sched/metrics.hpp"
#include "sim/engine.hpp"
#include "validate/checker.hpp"

namespace logpc::bcast {
namespace {

TEST(SingleItem, Figure1Schedule) {
  const Params params{8, 6, 2, 4};
  const Schedule s = optimal_single_item(params);
  EXPECT_TRUE(validate::is_valid(s)) << validate::check(s).summary();
  EXPECT_EQ(completion_time(s), 24);
  EXPECT_EQ(s.sends().size(), 7u);
}

TEST(SingleItem, MatchesBOfPAcrossMachines) {
  for (const Params params :
       {Params::postal(9, 3), Params{16, 4, 1, 2}, Params{25, 2, 0, 3},
        Params{12, 8, 3, 5}, Params{30, 1, 0, 1}}) {
    const Schedule s = optimal_single_item(params);
    EXPECT_TRUE(validate::is_valid(s)) << params.to_string();
    EXPECT_EQ(completion_time(s), B_of_P(params, params.P))
        << params.to_string();
  }
}

TEST(SingleItem, NonzeroSourceRelabels) {
  const Params params = Params::postal(9, 3);
  const Schedule s = optimal_single_item(params, 5);
  EXPECT_TRUE(validate::is_valid(s));
  EXPECT_EQ(s.initials()[0].proc, 5);
  EXPECT_EQ(completion_time(s), 7);
}

TEST(SingleItem, RejectsBadSource) {
  EXPECT_THROW(optimal_single_item(Params::postal(4, 2), 4),
               std::invalid_argument);
  EXPECT_THROW(optimal_single_item(Params::postal(4, 2), -1),
               std::invalid_argument);
}

TEST(SingleItem, TreeProgramsReproduceScheduleOnEngine) {
  // Close the loop: the reactive programs executing on the simulator yield
  // the same makespan as the statically-constructed schedule.
  const Params params{8, 6, 2, 4};
  const auto tree = BroadcastTree::optimal(params, 8);
  sim::Engine engine(params, 1);
  for (ProcId p = 0; p < params.P; ++p) {
    engine.set_program(p, make_tree_program(tree, p));
  }
  engine.place(0, 0, 0);
  const auto run = engine.run();
  EXPECT_EQ(run.makespan, 24);
  EXPECT_TRUE(validate::is_valid(run.schedule));
}

TEST(SingleItem, MakeTreeProgramRejectsBadNode) {
  const auto tree = BroadcastTree::optimal(Params::postal(4, 2), 4);
  EXPECT_THROW(make_tree_program(tree, 4), std::invalid_argument);
  EXPECT_THROW(make_tree_program(tree, -1), std::invalid_argument);
}

// Theorem 2.1 cross-check: no baseline shape beats the optimal tree on any
// machine we sweep.
TEST(SingleItem, NoBaselineBeatsOptimal) {
  using namespace baselines;
  for (const Params params :
       {Params::postal(17, 3), Params{24, 5, 1, 3}, Params{9, 2, 0, 1},
        Params{40, 10, 2, 4}}) {
    const Time best = B_of_P(params, params.P);
    EXPECT_GE(binomial_tree(params, params.P).makespan(), best);
    EXPECT_GE(binary_tree(params, params.P).makespan(), best);
    EXPECT_GE(linear_chain(params, params.P).makespan(), best);
    EXPECT_GE(flat_tree(params, params.P).makespan(), best);
  }
}

}  // namespace
}  // namespace logpc::bcast
