#include "api/communicator.hpp"

#include <chrono>
#include <optional>
#include <stdexcept>
#include <utility>

#include "bcast/kitem_bounds.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"
#include "runtime/implicit_plan.hpp"

namespace logpc::api {

using runtime::PlanKey;
using runtime::PlanPtr;

Time scatter_time(const Params& params) {
  params.require_valid();
  if (params.P == 1) return 0;
  return (params.P - 2) * params.g + params.transfer_time();
}

Communicator::Communicator(Params params,
                           std::shared_ptr<runtime::Planner> planner)
    : params_(params),
      planner_(planner ? std::move(planner)
                       : runtime::Planner::shared_default()) {
  params.require_valid();
}

Params Communicator::postal_projection() const {
  return Params::postal(params_.P, params_.transfer_time());
}

runtime::PlanPtr Communicator::plan(runtime::Problem problem, std::int64_t k,
                                    ProcId root) const {
  const obs::Span span("comm.plan", "comm");
  return planner_->plan(problem, params_, k, root);
}

Schedule Communicator::bcast(ProcId root) const {
  const obs::Span span("comm.bcast", "comm");
  // plan_schedule materializes on demand when the plan is implicit-only
  // (large P past the planner's materialize threshold).
  return runtime::plan_schedule(
      *planner_->plan(PlanKey::broadcast(params_, root)));
}

Time Communicator::bcast_time() const {
  return bcast::B_of_P(params_, params_.P);
}

bcast::KItemResult Communicator::bcast_k(int k) const {
  const obs::Span span("comm.bcast_k", "comm");
  const PlanPtr plan = planner_->plan(PlanKey::kitem(params_, k));
  bcast::KItemResult r;
  r.schedule = plan->schedule;
  r.method = plan->method == "greedy"
                 ? bcast::KItemMethod::kGreedy
                 : bcast::KItemMethod::kContinuousBlockCyclic;
  r.bounds = bcast::kitem_bounds(plan->key.params.P, plan->key.params.L, k);
  r.completion = plan->completion;
  r.slack = plan->slack;
  return r;
}

bcast::BufferedKItemResult Communicator::bcast_k_buffered(int k) const {
  const obs::Span span("comm.bcast_k_buffered", "comm");
  const PlanPtr plan = planner_->plan(PlanKey::kitem_buffered(params_, k));
  bcast::BufferedKItemResult r;
  r.schedule = plan->schedule;
  r.bounds = bcast::kitem_bounds(plan->key.params.P, plan->key.params.L, k);
  r.completion = plan->completion;
  r.max_buffer_depth = plan->max_buffer_depth;
  return r;
}

Schedule Communicator::scatter(ProcId root) const {
  const obs::Span span("comm.scatter", "comm");
  if (root < 0 || root >= params_.P) {
    throw std::invalid_argument("Communicator::scatter: bad root");
  }
  return planner_->plan(PlanKey::scatter(params_, root))->schedule;
}

bcast::ReductionPlan Communicator::reduce(ProcId root) const {
  const obs::Span span("comm.reduce", "comm");
  const PlanPtr plan = planner_->plan(PlanKey::reduce(params_, root));
  bcast::ReductionPlan r;
  r.params = params_;
  r.root = root;
  r.schedule = runtime::plan_schedule(*plan);
  r.completion = plan->completion;
  return r;
}

Schedule Communicator::gather(ProcId root) const {
  const obs::Span span("comm.gather", "comm");
  if (root < 0 || root >= params_.P) {
    throw std::invalid_argument("Communicator::gather: bad root");
  }
  return planner_->plan(PlanKey::gather(params_, root))->schedule;
}

sum::SummationPlan Communicator::reduce_operands(Count n) const {
  const obs::Span span("comm.reduce_operands", "comm");
  return sum::optimal_summation(params_,
                                sum::min_time_for_operands(params_, n));
}

Time Communicator::reduce_operands_time(Count n) const {
  return sum::min_time_for_operands(params_, n);
}

Schedule Communicator::alltoall(int k) const {
  const obs::Span span("comm.alltoall", "comm");
  return planner_->plan(PlanKey::alltoall(params_, k))->schedule;
}

Time Communicator::alltoall_time(int k) const {
  return bcast::all_to_all_lower_bound(params_, k);
}

Schedule Communicator::alltoall_personalized() const {
  const obs::Span span("comm.alltoall_personalized", "comm");
  return planner_->plan(PlanKey::alltoall_personalized(params_))->schedule;
}

bcast::CombiningSchedule Communicator::allreduce() const {
  const obs::Span span("comm.allreduce", "comm");
  const PlanPtr plan = planner_->plan(PlanKey::allreduce(params_));
  bcast::CombiningSchedule cs;
  cs.params = plan->schedule.params();
  cs.T = plan->completion;
  cs.sends = plan->schedule.sends();
  return cs;
}

Time Communicator::allreduce_time() const {
  const Params postal = postal_projection();
  return bcast::combining_time_for(postal.P, postal.L);
}

namespace {
exec::Engine& engine_or_shared(exec::Engine* engine) {
  return engine != nullptr ? *engine : exec::Engine::shared();
}
}  // namespace

exec::Program Communicator::compile(runtime::Problem problem, std::int64_t k,
                                    ProcId root) const {
  const obs::Span span("comm.compile", "comm");
  switch (problem) {
    case runtime::Problem::kBroadcast: {
      // Implicit-capable plans lower straight from the generators; the
      // streams are identical to compiling the materialized schedule.
      const PlanPtr plan = planner_->plan(PlanKey::broadcast(params_, root));
      if (plan->implicit) {
        return exec::compile_implicit(*plan->implicit, "bcast");
      }
      return exec::compile_broadcast(plan->schedule, "bcast");
    }
    case runtime::Problem::kKItemBroadcast: {
      // Segmented broadcast: the Section 3 single-sending k-item schedule,
      // one segment per item.  The cache key normalizes root to 0 (the
      // schedule shape is root-invariant), so a non-zero root is served by
      // swapping ranks 0 and root in the compiled program rather than
      // splitting the plan cache per root.
      if (root < 0 || root >= params_.P) {
        throw std::invalid_argument("Communicator::compile: bad root");
      }
      exec::Program program = exec::compile_broadcast(
          planner_->plan(PlanKey::segmented_broadcast(params_, k))->schedule,
          "bcast-seg");
      if (root != 0) {
        program = exec::relabel_swapped(std::move(program), 0, root);
      }
      return program;
    }
    case runtime::Problem::kReduce: {
      const PlanPtr plan = planner_->plan(PlanKey::reduce(params_, root));
      if (plan->implicit) {
        return exec::compile_implicit(*plan->implicit, "reduce");
      }
      return exec::compile_reduction(reduce(root));
    }
    case runtime::Problem::kAllToAll:
      return exec::compile_broadcast(
          planner_->plan(PlanKey::alltoall(params_, static_cast<int>(k)))
              ->schedule,
          k == 1 ? "allgather" : "alltoall");
    case runtime::Problem::kSummation:
      return exec::compile_summation(reduce_operands(k));
    default:
      throw std::invalid_argument(
          "Communicator::compile: problem has no execution semantics");
  }
}

exec::ExecReport Communicator::run_broadcast(std::span<const std::byte> payload,
                                             ProcId root,
                                             exec::Engine* engine) const {
  const obs::Span span("comm.run_broadcast", "comm");
  const exec::Program program =
      compile(runtime::Problem::kBroadcast, 1, root);
  const std::vector<exec::Bytes> items{
      exec::Bytes(payload.begin(), payload.end())};
  return engine_or_shared(engine).run(program, items);
}

exec::ExecReport Communicator::run_broadcast_tuned(
    std::span<const std::byte> payload, ProcId root,
    exec::Engine* engine) const {
  const obs::Span span("comm.run_broadcast_tuned", "comm");
  runtime::PlanKey key = planner_->tuned_key(
      tune::Collective::kBroadcast, params_, payload.size(), root);
  if (key.problem == runtime::Problem::kKItemBroadcast && payload.empty()) {
    // A zero-byte payload cannot be sliced; the bulk tree is equivalent.
    key = runtime::PlanKey::broadcast(params_, root);
  }
  if (key.problem == runtime::Problem::kKItemBroadcast) {
    // Segmented winner: the k-item pipeline over payload/k slices, results
    // coalesced in place (Engine::run_segmented).  Same root convention as
    // compile(): the cached plan is root-0, relabeled on the way out.
    exec::Program program =
        exec::compile_broadcast(planner_->plan(key)->schedule, "bcast-seg");
    if (root != 0) {
      program = exec::relabel_swapped(std::move(program), 0, root);
    }
    return engine_or_shared(engine).run_segmented(
        program, exec::SegmentRun{payload, static_cast<int>(key.k)});
  }
  const runtime::PlanPtr plan = planner_->plan(key);
  const exec::Program program =
      plan->implicit ? exec::compile_implicit(*plan->implicit, "bcast")
                     : exec::compile_broadcast(plan->schedule, "bcast");
  const std::vector<exec::Bytes> items{
      exec::Bytes(payload.begin(), payload.end())};
  return engine_or_shared(engine).run(program, items);
}

exec::ExecReport Communicator::run_reduce(const std::vector<exec::Bytes>& values,
                                          const exec::CombineFn& op,
                                          ProcId root,
                                          exec::Engine* engine) const {
  const obs::Span span("comm.run_reduce", "comm");
  const exec::Program program = compile(runtime::Problem::kReduce, 1, root);
  return engine_or_shared(engine).run(program, values, op);
}

exec::ExecReport Communicator::run_reduce(const std::vector<exec::Bytes>& values,
                                          const exec::Combiner& op,
                                          ProcId root,
                                          exec::Engine* engine) const {
  const obs::Span span("comm.run_reduce", "comm");
  const exec::Program program = compile(runtime::Problem::kReduce, 1, root);
  return engine_or_shared(engine).run(program, values, op);
}

exec::ExecReport Communicator::run_allgather(
    const std::vector<exec::Bytes>& contributions, exec::Engine* engine) const {
  const obs::Span span("comm.run_allgather", "comm");
  const exec::Program program = compile(runtime::Problem::kAllToAll, 1, 0);
  return engine_or_shared(engine).run(program, contributions);
}

FtRunResult Communicator::run_broadcast_ft(std::span<const std::byte> payload,
                                           ProcId root,
                                           const FtRunOptions& options) const {
  const obs::Span span("comm.run_broadcast_ft", "comm");
  if (root < 0 || root >= params_.P) {
    throw std::invalid_argument("Communicator::run_broadcast_ft: bad root");
  }
  exec::Engine::Options eng_opts = options.engine;
  eng_opts.recovery.enabled = true;
  exec::Engine engine(eng_opts);

  fault::FaultSpec spec = options.faults.value_or(fault::FaultSpec{});
  const bool inject = options.faults.has_value();
  const std::vector<exec::Bytes> items{
      exec::Bytes(payload.begin(), payload.end())};

  using Clock = std::chrono::steady_clock;
  Clock::time_point first_failure{};

  FtRunResult res;
  std::uint64_t mask = 0;  // 0 = full membership
  for (;;) {
    ++res.attempts;
    res.plan = planner_->plan(PlanKey::make(runtime::Problem::kBroadcast,
                                            params_, 1, root, mask));
    res.survivors = res.plan->key.live_ranks();
    // A masked plan's `implicit` (like its schedule) describes the compact
    // survivor machine, so either lowering yields the same program.
    const exec::Program program =
        res.plan->implicit
            ? exec::compile_implicit(*res.plan->implicit, "bcast-ft")
            : exec::compile_broadcast(res.plan->schedule, "bcast-ft");
    std::optional<fault::Injector> injector;
    if (inject) injector.emplace(spec);
    try {
      res.report =
          engine.run(program, items, injector ? &*injector : nullptr);
    } catch (const exec::RankFailure& failure) {
      if (options.policy == FailurePolicy::kAbort) throw;
      if (res.failed_ranks.empty()) first_failure = Clock::now();
      // The engine reports the rank in the *current* (compacted) program's
      // rank space; map it back to the physical machine before excluding.
      const ProcId virtual_dead = failure.rank();
      const ProcId physical_dead =
          res.survivors[static_cast<std::size_t>(virtual_dead)];
      res.failed_ranks.push_back(physical_dead);
      obs::Span recover_span("exec.recover", "exec");
      if (recover_span.active()) {
        recover_span.set_arg("rank " + std::to_string(physical_dead) +
                             " dead, re-planning on " +
                             std::to_string(res.survivors.size() - 1) +
                             " survivors");
      }
      if (obs::enabled()) {
        obs::MetricsRegistry::global()
            .counter("logpc_fault_recoveries_total",
                     "rank failures survived by degraded re-planning")
            .inc();
      }
      if (physical_dead == root) {
        res.status = RunStatus::kFailed;
        res.error = std::string("root rank died: ") + failure.what();
        return res;
      }
      if (params_.P > 64) {
        res.status = RunStatus::kFailed;
        res.error = "recovery requires P <= 64 (membership mask is one word)";
        return res;
      }
      if (static_cast<int>(res.failed_ranks.size()) > options.max_recoveries) {
        res.status = RunStatus::kFailed;
        res.error = "recovery budget exhausted (" +
                    std::to_string(options.max_recoveries) +
                    " re-plans): " + failure.what();
        return res;
      }
      const std::uint64_t full =
          params_.P == 64 ? ~0ull : (1ull << params_.P) - 1;
      mask = (mask == 0 ? full : mask) & ~(1ull << physical_dead);
      // The spec addresses ranks of the program that just ran: drop the
      // dead rank and shift the survivors down to the next program's space.
      spec = fault::remap_without(spec, virtual_dead);
      continue;
    }
    if (!res.failed_ranks.empty()) {
      res.status = RunStatus::kRecovered;
      res.recovery_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               first_failure)
              .count());
      if (obs::enabled()) {
        obs::MetricsRegistry::global()
            .histogram("logpc_fault_recovery_latency_ns",
                       obs::default_latency_buckets_ns(),
                       "first rank failure to degraded completion")
            .observe(static_cast<double>(res.recovery_ns));
      }
    }
    return res;
  }
}

exec::ExecReport Communicator::run_reduce_operands(
    Count n, const std::vector<std::vector<exec::Bytes>>& operands,
    const exec::CombineFn& op, exec::Engine* engine) const {
  const obs::Span span("comm.run_reduce_operands", "comm");
  const exec::Program program = exec::compile_summation(reduce_operands(n));
  return engine_or_shared(engine).run(program, operands, op);
}

exec::ExecReport Communicator::run_reduce_operands(
    Count n, const std::vector<std::vector<exec::Bytes>>& operands,
    const exec::Combiner& op, exec::Engine* engine) const {
  const obs::Span span("comm.run_reduce_operands", "comm");
  const exec::Program program = exec::compile_summation(reduce_operands(n));
  return engine_or_shared(engine).run(program, operands, op);
}

}  // namespace logpc::api
