#include "viz/digraph.hpp"

#include <sstream>

namespace logpc::viz {

namespace {

std::string vertex_name(const bcast::BlockDigraph& g, int v) {
  const int label = g.labels[static_cast<std::size_t>(v)];
  if (label < 0) return "source";
  if (v == g.receive_only_vertex) return "[0] (recv-only)";
  return "[" + std::to_string(label) + "] (block " + std::to_string(v) + ")";
}

}  // namespace

std::string render_digraph(const bcast::BlockDigraph& g) {
  std::ostringstream os;
  for (int v = 0; v < static_cast<int>(g.labels.size()); ++v) {
    os << vertex_name(g, v);
    bool first = true;
    for (const auto& e : g.edges) {
      if (e.from != v) continue;
      os << (first ? "  " : ",") << (e.active ? " ==> " : " -> ")
         << "[" << g.labels[static_cast<std::size_t>(e.to)] << "]";
      if (e.to == g.receive_only_vertex) os << "(recv-only)";
      else if (g.labels[static_cast<std::size_t>(e.to)] >= 0) {
        os << "(block " << e.to << ")";
      }
      if (e.weight != 1) os << " x" << e.weight;
      first = false;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace logpc::viz
