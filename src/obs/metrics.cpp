#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace logpc::obs {

namespace {
std::atomic<bool> g_enabled{true};
}  // namespace

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds must be sorted ascending");
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  const std::size_t i = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

const std::vector<double>& default_latency_buckets_ns() {
  static const std::vector<double> buckets = [] {
    std::vector<double> b;
    for (double decade = 1e2; decade < 1e9; decade *= 10) {
      b.push_back(decade);
      b.push_back(decade * 2.5);
      b.push_back(decade * 5);
    }
    b.push_back(1e9);
    return b;
  }();
  return buckets;
}

std::vector<double> exponential_buckets(double start, double factor,
                                        std::size_t count) {
  if (!(start > 0)) {
    throw std::invalid_argument("exponential_buckets: start must be > 0");
  }
  if (!(factor > 1)) {
    throw std::invalid_argument("exponential_buckets: factor must be > 1");
  }
  if (count == 0) {
    throw std::invalid_argument("exponential_buckets: count must be >= 1");
  }
  std::vector<double> b;
  b.reserve(count);
  double edge = start;
  for (std::size_t i = 0; i < count; ++i) {
    b.push_back(edge);
    edge *= factor;
  }
  return b;
}

const std::vector<double>& default_request_buckets_ns() {
  static const std::vector<double> buckets =
      exponential_buckets(1e3, 2.0, 25);  // 1us, 2us, ... ~16.8s
  return buckets;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry;  // never destroyed
  return *registry;
}

MetricsRegistry::Entry& MetricsRegistry::entry_for(const Key& key,
                                                   MetricSnapshot::Kind kind,
                                                   const std::string& help) {
  // Caller holds mu_.
  auto [it, inserted] = entries_.try_emplace(key);
  Entry& e = it->second;
  if (inserted) {
    e.kind = kind;
    e.help = help;
  } else if (e.kind != kind || (e.kind == MetricSnapshot::Kind::kGauge &&
                                static_cast<bool>(e.callback))) {
    throw std::logic_error("MetricsRegistry: '" + key.first +
                           "' already registered as a different metric kind");
  }
  return e;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const std::string& labels) {
  const std::scoped_lock lock(mu_);
  Entry& e = entry_for({name, labels}, MetricSnapshot::Kind::kCounter, help);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const std::string& labels) {
  const std::scoped_lock lock(mu_);
  Entry& e = entry_for({name, labels}, MetricSnapshot::Kind::kGauge, help);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const std::string& help,
                                      const std::string& labels) {
  const std::scoped_lock lock(mu_);
  Entry& e = entry_for({name, labels}, MetricSnapshot::Kind::kHistogram, help);
  if (!e.histogram) {
    try {
      e.histogram = std::make_unique<Histogram>(std::move(bounds));
    } catch (...) {
      entries_.erase({name, labels});  // don't leave a half-built entry
      throw;
    }
  }
  return *e.histogram;
}

void MetricsRegistry::register_callback(const std::string& name,
                                        const std::string& help,
                                        std::function<double()> fn,
                                        const std::string& labels) {
  const std::scoped_lock lock(mu_);
  const Key key{name, labels};
  if (entries_.contains(key)) {
    throw std::logic_error("MetricsRegistry: callback '" + name +
                           "' already registered");
  }
  Entry& e = entries_[key];
  e.kind = MetricSnapshot::Kind::kGauge;
  e.help = help;
  e.callback = std::move(fn);
}

bool MetricsRegistry::unregister(const std::string& name,
                                 const std::string& labels) {
  const std::scoped_lock lock(mu_);
  return entries_.erase({name, labels}) > 0;
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  const std::scoped_lock lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [key, e] : entries_) {
    MetricSnapshot s;
    s.name = key.first;
    s.labels = key.second;
    s.help = e.help;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricSnapshot::Kind::kCounter:
        s.value = static_cast<double>(e.counter->value());
        break;
      case MetricSnapshot::Kind::kGauge:
        s.value = e.callback ? e.callback() : e.gauge->value();
        break;
      case MetricSnapshot::Kind::kHistogram:
        s.bounds = e.histogram->bounds();
        s.bucket_counts = e.histogram->bucket_counts();
        s.count = e.histogram->count();
        s.sum = e.histogram->sum();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;  // std::map iteration is already (name, labels)-sorted
}

std::size_t MetricsRegistry::size() const {
  const std::scoped_lock lock(mu_);
  return entries_.size();
}

}  // namespace logpc::obs
