# Empty dependencies file for bench_ablation_endgame.
# This may be replaced when dependencies are built.
