#include "baselines/bcast_baselines.hpp"

#include <gtest/gtest.h>

#include "sched/metrics.hpp"
#include "validate/checker.hpp"

namespace logpc::baselines {
namespace {

TEST(BcastBaselines, BinomialMatchesLogNRoundsAtUnitParams) {
  // With L = g = 1, o = 0 the binomial tree doubles holders every step:
  // makespan = ceil(log2 P) - and equals the optimal B(P).
  const Fib fib(1);
  for (int P = 1; P <= 64; ++P) {
    const auto tree = binomial_tree(Params::postal(P, 1), P);
    EXPECT_EQ(tree.makespan(), fib.B_of_P(static_cast<Count>(P))) << P;
  }
}

TEST(BcastBaselines, BinaryTreeShape) {
  const auto tree = binary_tree(Params::postal(7, 1), 7);
  EXPECT_EQ(tree.node(0).children.size(), 2u);
  EXPECT_EQ(tree.node(1).children.size(), 2u);
  EXPECT_EQ(tree.node(3).children.size(), 0u);
  // Node 2 is informed after node 1 (second send of the root).
  EXPECT_GT(tree.node(2).label, tree.node(1).label);
}

TEST(BcastBaselines, LinearChainCostsPMinus1Hops) {
  const Params params = Params::postal(6, 4);
  EXPECT_EQ(linear_chain(params, 6).makespan(), 5 * 4);
}

TEST(BcastBaselines, FlatTreeSerializedByGap) {
  const Params params{6, 6, 2, 4};
  // Last send starts at 4g = 16, lands at 16 + 10.
  EXPECT_EQ(flat_tree(params, 6).makespan(), 26);
}

TEST(BcastBaselines, AllBaselinesProduceValidSchedules) {
  for (const Params params :
       {Params::postal(12, 3), Params{10, 6, 2, 4}, Params{9, 2, 0, 3}}) {
    for (const auto& tree :
         {binomial_tree(params, params.P), binary_tree(params, params.P),
          linear_chain(params, params.P), flat_tree(params, params.P)}) {
      const Schedule s = tree.to_schedule();
      const auto check = validate::check(s);
      EXPECT_TRUE(check.ok()) << params.to_string() << "\n"
                              << check.summary();
      EXPECT_EQ(completion_time(s), tree.makespan());
    }
  }
}

TEST(BcastBaselines, HighLatencyFavorsWiderTrees) {
  // At high L/g the binomial tree (fan-out by halving) loses badly to the
  // optimal tree, and even to the flat tree for small P: the classic
  // motivation for LogP-aware collectives.
  const Params params{8, 20, 1, 1};
  const Time opt = bcast::B_of_P(params, 8);
  EXPECT_GT(binomial_tree(params, 8).makespan(), opt);
  EXPECT_LE(flat_tree(params, 8).makespan(),
            binomial_tree(params, 8).makespan());
}

TEST(BcastBaselines, SingleNodeTreesAreTrivial) {
  const Params params = Params::postal(4, 2);
  EXPECT_EQ(binomial_tree(params, 1).makespan(), 0);
  EXPECT_EQ(binary_tree(params, 1).makespan(), 0);
  EXPECT_EQ(linear_chain(params, 1).makespan(), 0);
  EXPECT_EQ(flat_tree(params, 1).makespan(), 0);
}

TEST(BcastBaselines, RejectBadP) {
  const Params params = Params::postal(4, 2);
  EXPECT_THROW(binomial_tree(params, 0), std::invalid_argument);
  EXPECT_THROW(binary_tree(params, -1), std::invalid_argument);
}

TEST(BcastBaselines, MakespanMonotoneInP) {
  // The reduction baselines binary-search on this property.
  for (const Params params : {Params::postal(2, 3), Params{2, 5, 1, 2}}) {
    Time prev_binom = 0;
    Time prev_bin = 0;
    Time prev_chain = 0;
    for (int P = 1; P <= 130; ++P) {
      const Time b1 = binomial_tree(params, P).makespan();
      const Time b2 = binary_tree(params, P).makespan();
      const Time b3 = linear_chain(params, P).makespan();
      EXPECT_GE(b1, prev_binom) << P;
      EXPECT_GE(b2, prev_bin) << P;
      EXPECT_GE(b3, prev_chain) << P;
      prev_binom = b1;
      prev_bin = b2;
      prev_chain = b3;
    }
  }
}

}  // namespace
}  // namespace logpc::baselines
