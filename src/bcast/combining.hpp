#pragma once

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <vector>

#include "logp/fib.hpp"
#include "sched/schedule.hpp"

/// \file combining.hpp
/// Section 4.2: the combining-broadcast problem (all-reduce).
///
/// Every processor i holds a value x_i; all processors must learn
/// x_0 + ... + x_{P-1} (any associative, commutative '+').  The paper shows
/// all-to-all broadcast *with combining* takes no longer than all-to-one
/// reduction: fix T and P = P(T; L, 0, 1) = f_T; at every step
/// j = 0, 1, ..., T-L processor i sends its current value to processor
/// i + f_{j+L-1} (mod P).  A value sent at j arrives at j+L and is combined
/// into the destination's current value before the destination's own send
/// at j+L.  Theorem 4.1: at time j processor i holds the cyclic window sum
/// x[i-f_j+1 : i]; at time T that window is all P values.
///
/// Stated in the postal model (g = 1, o = 0) with zero-cost combining.

namespace logpc::bcast {

/// The full combining-broadcast plan for latency L and deadline T.
struct CombiningSchedule {
  Params params;  ///< postal machine with P = f_T processors
  Time T = 0;     ///< completion deadline; also the number of steps
  /// All sends: item is unused (always 0) - every message carries the
  /// sender's current partial value, not a distinct item.
  std::vector<SendOp> sends;

  /// A timing-only Schedule view (every processor "holds item 0" from the
  /// start) so the standard checker can audit gaps, latency and capacity.
  [[nodiscard]] Schedule timing_view() const;
};

/// Builds the Theorem 4.1 schedule for deadline T (requires T >= L so at
/// least one exchange completes, unless f_T == 1 where no sends happen).
[[nodiscard]] CombiningSchedule combining_broadcast(Time T, Time L);

/// Smallest deadline T whose combining broadcast covers at least P
/// processors (run combining_broadcast at this T on the first f_T >= P
/// processors; extra slots can be padded with identity values).
[[nodiscard]] Time combining_time_for(int P, Time L);

/// Replays `cs` on concrete values with a (possibly non-commutative)
/// combine operator, applied as op(incoming, current) so windows always
/// extend leftwards along the processor ring.  Returns each processor's
/// final value.
template <typename V>
std::vector<V> execute_combining(
    const CombiningSchedule& cs, std::vector<V> values,
    const std::function<V(const V&, const V&)>& op) {
  const auto P = static_cast<std::size_t>(cs.params.P);
  if (values.size() != P) {
    throw std::invalid_argument("execute_combining: wrong value count");
  }
  // Group sends by start time; replay chronologically.  At each step, all
  // sends read the *current* values (messages snapshot the sender's value
  // at send time), then arrivals from L cycles earlier are folded in.
  std::vector<SendOp> sends = cs.sends;
  std::stable_sort(sends.begin(), sends.end(),
                   [](const SendOp& a, const SendOp& b) {
                     return a.start < b.start;
                   });
  struct InFlight {
    Time arrival;
    std::size_t to;
    V value;
  };
  std::vector<InFlight> wire;
  std::size_t next = 0;
  for (Time t = 0; t <= cs.T; ++t) {
    // Deliver and combine everything arriving now (before this step's
    // sends snapshot values - the paper combines "instantaneously ...
    // before transmission").
    for (auto& m : wire) {
      if (m.arrival == t) values[m.to] = op(m.value, values[m.to]);
    }
    std::erase_if(wire, [t](const InFlight& m) { return m.arrival <= t; });
    while (next < sends.size() && sends[next].start == t) {
      const SendOp& op_send = sends[next++];
      wire.push_back(InFlight{op_send.start + cs.params.L,
                              static_cast<std::size_t>(op_send.to),
                              values[static_cast<std::size_t>(op_send.from)]});
    }
  }
  return values;
}

}  // namespace logpc::bcast
