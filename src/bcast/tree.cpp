#include "bcast/tree.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>
#include <tuple>

namespace logpc::bcast {

namespace {

// Candidate "next node to materialize" in the best-first expansion of the
// universal tree: the rank-th child of an existing node.
struct Candidate {
  Time label;
  int parent;  // node index; tie-break: earlier-created parents first
  int rank;

  bool operator>(const Candidate& other) const {
    return std::tie(label, parent, rank) >
           std::tie(other.label, other.parent, other.rank);
  }
};

using CandidateQueue =
    std::priority_queue<Candidate, std::vector<Candidate>, std::greater<>>;

}  // namespace

BroadcastTree BroadcastTree::optimal(const Params& params, int P) {
  params.require_valid();
  if (P < 1) throw std::invalid_argument("BroadcastTree::optimal: P >= 1");
  BroadcastTree tree;
  tree.params_ = params;
  tree.nodes_.reserve(static_cast<std::size_t>(P));
  tree.nodes_.push_back(TreeNode{0, -1, 0, {}});
  CandidateQueue frontier;
  frontier.push(Candidate{params.child_label(0, 0), 0, 0});
  while (tree.size() < P) {
    const Candidate c = frontier.top();
    frontier.pop();
    const int idx = tree.size();
    tree.nodes_.push_back(TreeNode{c.label, c.parent, c.rank, {}});
    tree.nodes_[static_cast<std::size_t>(c.parent)].children.push_back(idx);
    // The new node's oldest child, and the parent's next child.
    frontier.push(Candidate{params.child_label(c.label, 0), idx, 0});
    frontier.push(Candidate{
        params.child_label(tree.node(c.parent).label, c.rank + 1), c.parent,
        c.rank + 1});
  }
  return tree;
}

BroadcastTree BroadcastTree::up_to(const Params& params, Time t,
                                   std::size_t max_nodes) {
  params.require_valid();
  if (t < 0) throw std::invalid_argument("BroadcastTree::up_to: t >= 0");
  const Count n = reachable(params, t);
  if (n > max_nodes) {
    throw std::invalid_argument("BroadcastTree::up_to: tree too large (" +
                                std::to_string(n) + " nodes)");
  }
  // `max_nodes` is caller-controlled and may exceed INT_MAX; optimal() takes
  // an int node count, so reject instead of truncating.
  if (n > static_cast<Count>(std::numeric_limits<int>::max())) {
    throw std::invalid_argument(
        "BroadcastTree::up_to: tree exceeds INT_MAX nodes (" +
        std::to_string(n) + "); use the implicit planner for large P");
  }
  BroadcastTree tree = optimal(params, static_cast<int>(n));
  // By construction the n cheapest nodes are exactly those with label <= t.
  return tree;
}

BroadcastTree BroadcastTree::from_parents(const Params& params,
                                          const std::vector<int>& parents) {
  params.require_valid();
  if (parents.empty() || parents[0] != -1) {
    throw std::invalid_argument("from_parents: parents[0] must be -1");
  }
  BroadcastTree tree;
  tree.params_ = params;
  tree.nodes_.resize(parents.size());
  tree.nodes_[0] = TreeNode{0, -1, 0, {}};
  for (std::size_t i = 1; i < parents.size(); ++i) {
    const int p = parents[i];
    if (p < 0 || static_cast<std::size_t>(p) >= i) {
      throw std::invalid_argument(
          "from_parents: parents must precede children (node " +
          std::to_string(i) + ")");
    }
    auto& parent = tree.nodes_[static_cast<std::size_t>(p)];
    const int rank = static_cast<int>(parent.children.size());
    parent.children.push_back(static_cast<int>(i));
    tree.nodes_[i] =
        TreeNode{params.child_label(parent.label, rank), p, rank, {}};
  }
  return tree;
}

Time BroadcastTree::makespan() const {
  Time m = 0;
  for (const auto& n : nodes_) m = std::max(m, n.label);
  return m;
}

std::map<int, int> BroadcastTree::degree_histogram() const {
  std::map<int, int> hist;
  for (const auto& n : nodes_) ++hist[static_cast<int>(n.children.size())];
  return hist;
}

std::map<Time, int> BroadcastTree::leaf_delay_histogram() const {
  std::map<Time, int> hist;
  for (const auto& n : nodes_) {
    if (n.children.empty()) ++hist[n.label];
  }
  return hist;
}

void BroadcastTree::emit(Schedule& out, ItemId item, Time start,
                         const std::vector<ProcId>& proc_of_node) const {
  if (proc_of_node.size() != nodes_.size()) {
    throw std::invalid_argument("emit: proc_of_node size mismatch");
  }
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const TreeNode& n = nodes_[i];
    const TreeNode& parent = nodes_[static_cast<std::size_t>(n.parent)];
    const Time send_start =
        start + parent.label + static_cast<Time>(n.rank) * params_.g;
    out.add_send(send_start, proc_of_node[static_cast<std::size_t>(n.parent)],
                 proc_of_node[i], item);
  }
}

Schedule BroadcastTree::to_schedule(ProcId source) const {
  if (size() > params_.P) {
    throw std::invalid_argument("to_schedule: tree larger than machine");
  }
  Schedule out(params_, 1);
  out.add_initial(0, source, 0);
  // Nodes are created in label order; map the root to `source` and the rest
  // to the remaining processors in index order.
  std::vector<ProcId> procs(nodes_.size());
  procs[0] = source;
  ProcId next = 0;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    if (next == source) ++next;
    procs[i] = next++;
  }
  emit(out, 0, 0, procs);
  out.sort();
  return out;
}

Count reachable(const Params& params, Time t) {
  params.require_valid();
  if (t < 0) return 0;
  return reachable_prefix(params, t).back();
}

std::vector<Count> reachable_prefix(const Params& params, Time t) {
  params.require_valid();
  if (t < 0) {
    throw std::invalid_argument("reachable_prefix: t >= 0");
  }
  // N(u) = processors reachable within u cycles of the root being informed:
  // the root itself plus, for each child started at i*g (landing at
  // i*g + L + 2o <= u), a full subtree with the remaining budget.
  const Time T = params.transfer_time();
  std::vector<Count> N(static_cast<std::size_t>(t) + 1, 1);
  for (Time u = 0; u <= t; ++u) {
    Count total = 1;
    for (Time i = 0; T + i * params.g <= u; ++i) {
      total = sat_add(total, N[static_cast<std::size_t>(u - T - i * params.g)]);
      if (total >= kSaturated) break;
    }
    N[static_cast<std::size_t>(u)] = total;
  }
  return N;
}

Time B_of_P(const Params& params, int P) {
  params.require_valid();
  if (P < 1) throw std::invalid_argument("B_of_P: P >= 1");
  if (P == 1) return 0;
  // reachable() is monotone in t; gallop then binary search.
  Time lo = 0;
  Time hi = 1;
  while (reachable(params, hi) < static_cast<Count>(P)) {
    lo = hi;
    hi *= 2;
  }
  while (lo < hi) {
    const Time mid = lo + (hi - lo) / 2;
    if (reachable(params, mid) >= static_cast<Count>(P)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace logpc::bcast
