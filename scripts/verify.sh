#!/usr/bin/env bash
# Full verification: tier-1 build + tests, then the runtime concurrency
# tests again under ThreadSanitizer (-DLOGPC_TSAN=ON), then the obs +
# runtime suites under ASan/UBSan (-DLOGPC_SANITIZE=address,undefined).
#
#   scripts/verify.sh            # all three passes
#   scripts/verify.sh --no-tsan  # skip the TSan pass
#   scripts/verify.sh --no-asan  # skip the ASan/UBSan pass
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
RUN_TSAN=1
RUN_ASAN=1
for arg in "$@"; do
  case "$arg" in
    --no-tsan) RUN_TSAN=0 ;;
    --no-asan) RUN_ASAN=0 ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

echo "=== tier-1: build + full test suite (build/) ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "$RUN_TSAN" == 1 ]]; then
  echo
  echo "=== tsan: runtime concurrency tests (build-tsan/) ==="
  cmake -B build-tsan -S . -DLOGPC_TSAN=ON >/dev/null
  # The TSan pass only needs the concurrent pieces: the runtime suites
  # and the shared-Fib test.  Run the binaries directly — ctest in a
  # partially-built tree reports every unbuilt target as NOT_BUILT.
  cmake --build build-tsan -j "$JOBS" \
    --target test_plan_cache test_planner test_snapshot test_fib \
             test_implicit_plan test_tuner \
             test_obs_metrics test_obs_trace test_obs_flight_recorder \
             test_exec_mailbox test_exec_kernels test_exec_engine \
             test_communicator_exec test_fault test_svc_sched test_svc \
             test_svc_fusion test_svc_introspect test_prometheus_lint
  ./build-tsan/tests/test_plan_cache
  ./build-tsan/tests/test_planner
  ./build-tsan/tests/test_snapshot
  ./build-tsan/tests/test_fib --gtest_filter='SharedFib.*'
  # Implicit plans are shared immutably across threads; the concurrent
  # rank_schedule sweep proves the decode paths are read-only.
  ./build-tsan/tests/test_implicit_plan \
      --gtest_filter='ImplicitPlan.ConcurrentQueriesAreRaceFree'
  # The tuned fast path is lock-free (atomic table view + CAS-published
  # memo list); readers hammer plan_tuned while tables swap underneath.
  ./build-tsan/tests/test_tuner \
      --gtest_filter='PlannerTuning.ConcurrentPlanTunedIsRaceFree'
  ./build-tsan/tests/test_obs_metrics
  ./build-tsan/tests/test_obs_trace
  ./build-tsan/tests/test_obs_flight_recorder
  ./build-tsan/tests/test_exec_mailbox
  ./build-tsan/tests/test_exec_kernels
  ./build-tsan/tests/test_exec_engine
  ./build-tsan/tests/test_communicator_exec
  ./build-tsan/tests/test_svc_sched
  # The service suite is the headline TSan target: pool threads, racing
  # submitters and shutdown all hammer one mutex/cv pair.
  ./build-tsan/tests/test_svc
  # Fusion adds the window wait to that pair plus multi-promise fan-out;
  # byte-exactness under TSan is the ISSUE's acceptance bar.
  ./build-tsan/tests/test_svc_fusion
  # Introspection races the HTTP server thread against pool threads and
  # shutdown; the lint suite scrapes a live /metrics mid-traffic.
  ./build-tsan/tests/test_svc_introspect
  ./build-tsan/tests/test_prometheus_lint
  # Fault-injection suite at the CI seed matrix: fault decisions are pure
  # hashes of the seed, so each seed exercises a different drop/delay
  # pattern through the same retry and recovery paths.
  for seed in 1 7 1993; do
    LOGPC_FAULT_SEED="$seed" ./build-tsan/tests/test_fault
  done
fi

if [[ "$RUN_ASAN" == 1 ]]; then
  echo
  echo "=== asan/ubsan: obs + runtime tests (build-asan/) ==="
  cmake -B build-asan -S . -DLOGPC_SANITIZE=address,undefined >/dev/null
  cmake --build build-asan -j "$JOBS" \
    --target test_obs_metrics test_obs_trace test_obs_chrome \
             test_obs_critical_path test_obs_flight_recorder \
             test_plan_cache test_planner test_snapshot \
             test_implicit_plan test_exec_mailbox test_exec_kernels test_exec_engine \
             test_communicator_exec test_exec_property test_fault \
             test_svc_sched test_svc test_svc_fusion test_svc_introspect \
             test_prometheus_lint \
             test_hier test_hierarchical test_hier_plan test_measure \
             test_tuner
  ./build-asan/tests/test_obs_metrics
  ./build-asan/tests/test_obs_trace
  ./build-asan/tests/test_obs_chrome
  ./build-asan/tests/test_obs_critical_path
  ./build-asan/tests/test_obs_flight_recorder
  ./build-asan/tests/test_plan_cache
  ./build-asan/tests/test_planner
  ./build-asan/tests/test_snapshot
  ./build-asan/tests/test_implicit_plan
  ./build-asan/tests/test_exec_mailbox
  ./build-asan/tests/test_exec_kernels
  ./build-asan/tests/test_exec_engine
  ./build-asan/tests/test_communicator_exec
  ./build-asan/tests/test_exec_property
  ./build-asan/tests/test_svc_sched
  ./build-asan/tests/test_svc
  ./build-asan/tests/test_svc_fusion
  ./build-asan/tests/test_svc_introspect
  ./build-asan/tests/test_prometheus_lint
  # Hierarchical model + two-level schedules + tuner: pointer-heavy paths
  # (greedy candidate scan, decision-table snapshots, memo list frees).
  ./build-asan/tests/test_hier
  ./build-asan/tests/test_hierarchical
  ./build-asan/tests/test_hier_plan
  ./build-asan/tests/test_measure
  ./build-asan/tests/test_tuner
  for seed in 1 7 1993; do
    LOGPC_FAULT_SEED="$seed" ./build-asan/tests/test_fault
  done
fi

echo
echo "verify: OK"
