#pragma once

#include <string>

#include "bcast/blocks.hpp"

/// \file digraph.hpp
/// Text rendering of block transmission digraphs (Figure 3).

namespace logpc::viz {

/// Renders each vertex with its label and out-edges, e.g.:
///
///   source        ==> [9] x1
///   [9] (block 0) ==> [9] x1 (active), -> [5] x3, ...
///   [0] (recv-only)
///
/// "==>" marks active transmissions, "->" inactive ones with weights.
[[nodiscard]] std::string render_digraph(const bcast::BlockDigraph& g);

}  // namespace logpc::viz
