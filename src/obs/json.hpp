#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

/// \file json.hpp
/// Minimal JSON emission helpers shared by the telemetry exporters
/// (obs/chrome_trace.hpp) and the bench report writer (bench/bench_util.hpp).
/// Emission only — parsing stays out of the library (the tests carry their
/// own validator).

namespace logpc::obs {

/// `s` with every character JSON cannot hold raw escaped (quotes,
/// backslash, control characters).  Returns the escaped body only; the
/// caller adds the surrounding quotes.
[[nodiscard]] inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// `s` as a quoted JSON string literal.
[[nodiscard]] inline std::string json_string(std::string_view s) {
  return "\"" + json_escape(s) + "\"";
}

/// A finite double as a JSON number ("%.17g" keeps round-trips exact);
/// NaN/Inf — which JSON cannot express — become null.
[[nodiscard]] inline std::string json_number(double v) {
  if (!(v == v) || v > 1.7976931348623157e308 || v < -1.7976931348623157e308) {
    return "null";
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace logpc::obs
