#pragma once

#include "sched/schedule.hpp"

/// \file all_to_all.hpp
/// Section 4.1: optimal all-to-all broadcast.
///
/// Every processor i owns item i and must deliver it to all others.  The
/// paper's schedule: at times 0, g, 2g, ..., (P-2)g processor i sends its
/// item to processors i+1, i+2, ..., i+P-1 (mod P).  Every processor then
/// receives messages at L+2o, L+2o+g, ..., L+2o+(P-2)g, matching the lower
/// bound L + 2o + (P-2)g exactly.  The same rotation works k times over for
/// k items per processor, matching L + 2o + (k(P-1)-1)g, and also solves
/// all-to-all *personalized* communication (distinct item per destination).

namespace logpc::bcast {

/// Lower bound on all-to-all broadcast with k items per processor: a
/// processor must receive k(P-1) items, the first no earlier than L + 2o,
/// subsequent ones at least g apart.
[[nodiscard]] Time all_to_all_lower_bound(const Params& params, int k = 1);

/// Optimal all-to-all broadcast, one item per processor (item i starts at
/// processor i).  Completion = all_to_all_lower_bound(params).
[[nodiscard]] Schedule all_to_all(const Params& params);

/// Optimal all-to-all broadcast with k items per processor.  Item ids are
/// p*k + j for item j of processor p.  Completion =
/// all_to_all_lower_bound(params, k).
[[nodiscard]] Schedule all_to_all_k(const Params& params, int k);

/// All-to-all personalized communication: processor s holds a distinct item
/// for every destination d (item id s*P + d) and only d needs it.  Same
/// rotation schedule, same completion time; validate with
/// require_complete=false and check personalized_complete instead.
[[nodiscard]] Schedule all_to_all_personalized(const Params& params);

/// True iff every destination d received item s*P + d from every s != d (the
/// goal of personalized all-to-all; the broadcast completeness check does
/// not apply since each item has exactly one intended recipient).
[[nodiscard]] bool personalized_complete(const Schedule& s);

}  // namespace logpc::bcast
