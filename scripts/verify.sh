#!/usr/bin/env bash
# Full verification: tier-1 build + tests, then the runtime concurrency
# tests again under ThreadSanitizer (-DLOGPC_TSAN=ON).
#
#   scripts/verify.sh            # both passes
#   scripts/verify.sh --no-tsan  # tier-1 only
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
RUN_TSAN=1
[[ "${1:-}" == "--no-tsan" ]] && RUN_TSAN=0

echo "=== tier-1: build + full test suite (build/) ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "$RUN_TSAN" == 1 ]]; then
  echo
  echo "=== tsan: runtime concurrency tests (build-tsan/) ==="
  cmake -B build-tsan -S . -DLOGPC_TSAN=ON >/dev/null
  # The TSan pass only needs the concurrent pieces: the runtime suites
  # and the shared-Fib test.  Run the binaries directly — ctest in a
  # partially-built tree reports every unbuilt target as NOT_BUILT.
  cmake --build build-tsan -j "$JOBS" \
    --target test_plan_cache test_planner test_snapshot test_fib
  ./build-tsan/tests/test_plan_cache
  ./build-tsan/tests/test_planner
  ./build-tsan/tests/test_snapshot
  ./build-tsan/tests/test_fib --gtest_filter='SharedFib.*'
fi

echo
echo "verify: OK"
