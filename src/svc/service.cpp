#include "svc/service.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/critical_path.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace_recorder.hpp"
#include "svc/introspect.hpp"

namespace logpc::svc {

namespace {

std::uint64_t ns_between(std::chrono::steady_clock::time_point a,
                         std::chrono::steady_clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

}  // namespace

const char* op_kind_name(OpKind op) noexcept {
  switch (op) {
    case OpKind::kBroadcast: return "broadcast";
    case OpKind::kReduce: return "reduce";
    case OpKind::kAllgather: return "allgather";
  }
  return "?";
}

const char* status_name(Status s) noexcept {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kQueueFull: return "queue_full";
    case Status::kRateLimited: return "rate_limited";
    case Status::kShutdown: return "shutdown";
    case Status::kError: return "error";
  }
  return "?";
}

namespace {

/// Rejects ill-formed Options at construction with std::invalid_argument
/// (the service used to clamp silently, which hid real misconfiguration);
/// returns the options unchanged so the member initializer can validate
/// before any pool or recorder is built.
CollectiveService::Options validated(const CollectiveService::Options& o) {
  if (o.pools < 1 || o.pools > 64) {
    throw std::invalid_argument(
        "CollectiveService: pools must be in [1, 64]");
  }
  if (o.fusion_window_us > 0 && o.max_fusion_batch < 2) {
    throw std::invalid_argument(
        "CollectiveService: max_fusion_batch must be >= 2 while fusion is "
        "on (a 1-request batch is no fusion; use fusion_window_us = 0 to "
        "disable fusion instead)");
  }
  if (o.segment_threshold > 0 &&
      (o.segment_bytes == 0 || o.max_segments < 2)) {
    throw std::invalid_argument(
        "CollectiveService: segmentation needs segment_bytes >= 1 and "
        "max_segments >= 2 (use segment_threshold = 0 to disable it)");
  }
  if (o.flight_recorder_capacity == 0) {
    throw std::invalid_argument(
        "CollectiveService: flight_recorder_capacity must be >= 1");
  }
  if (!(o.residual_threshold >= 0)) {  // also rejects NaN
    throw std::invalid_argument(
        "CollectiveService: residual_threshold must be >= 0");
  }
  if (o.introspect_port > 65535) {
    throw std::invalid_argument(
        "CollectiveService: introspect_port must be <= 65535");
  }
  return o;
}

}  // namespace

CollectiveService::CollectiveService(Params params, Options options,
                                     std::shared_ptr<runtime::Planner> planner)
    : params_(params),
      opts_(validated(options)),
      comm_(params, std::move(planner)),
      recorder_(obs::FlightRecorder::Options{
          options.flight_recorder_capacity, options.residual_threshold,
          nullptr}) {
  params_.require_valid();
  paused_ = opts_.start_paused;
  {
    auto& reg = obs::MetricsRegistry::global();
    inflight_gauge_ = &reg.gauge("logpc_svc_inflight",
                                 "requests admitted and not yet completed");
    batch_size_hist_ = &reg.histogram(
        "logpc_svc_batch_size", {1, 2, 4, 8, 16, 32, 64},
        "requests coalesced into one engine run per dispatch");
  }
  pools_.reserve(static_cast<std::size_t>(opts_.pools));
  for (int i = 0; i < opts_.pools; ++i) {
    Pool pool;
    pool.engine = std::make_unique<exec::Engine>(opts_.engine);
    if (opts_.prewarm) pool.engine->prewarm(params_.P);
    pools_.push_back(std::move(pool));
  }
  // Engines first, dispatcher threads second: a pool thread may pick work
  // the instant it starts.
  for (int i = 0; i < opts_.pools; ++i) {
    pools_[static_cast<std::size_t>(i)].thread =
        std::thread([this, i] { pool_loop(i); });
  }
  // Introspection last: the pages snapshot live service state, so the
  // service must be fully constructed before the first GET can land.
  if (opts_.introspect_port >= 0) {
    try {
      introspect_ = std::make_unique<IntrospectServer>(
          *this, IntrospectServer::Options{opts_.introspect_bind,
                                           opts_.introspect_port});
    } catch (...) {
      // A failed bind (port taken, bad address) must surface as a
      // catchable exception, not std::terminate: the pool threads are
      // already running, and unwinding past joinable std::thread members
      // aborts. Nothing is queued yet, so a non-draining stop is exact.
      shutdown(false);
      throw;
    }
  }
}

CollectiveService::~CollectiveService() { shutdown(true); }

CollectiveService::TenantMetrics& CollectiveService::metrics_at(
    TenantId tenant) {
  if (tenant < 0 ||
      static_cast<std::size_t>(tenant) >= tenant_metrics_.size()) {
    throw std::invalid_argument("CollectiveService: unknown tenant id " +
                                std::to_string(tenant));
  }
  return *tenant_metrics_[static_cast<std::size_t>(tenant)];
}

TenantId CollectiveService::register_tenant(TenantConfig config) {
  auto tm = std::make_unique<TenantMetrics>();
  std::lock_guard lock(mu_);
  const TenantId id = sched_.add_tenant(config);
  std::string value = config.name.empty()
                          ? ("tenant-" + std::to_string(id))
                          : config.name;
  if (!used_labels_.insert(value).second) {
    value += "#" + std::to_string(id);
    used_labels_.insert(value);
  }
  // The tenant name is untrusted input: label_pair escapes it so the
  // exporter always emits parseable exposition text.
  tm->name = value;
  tm->label = obs::label_pair("tenant", value);

  // Registration takes the registry mutex while we hold mu_ (mu_ -> reg);
  // safe because nothing evaluated under the registry mutex takes mu_ —
  // every per-tenant instrument here is a plain atomic, not a callback.
  auto& reg = obs::MetricsRegistry::global();
  tm->admitted_total =
      &reg.counter("logpc_svc_admitted_total",
                   "requests admitted into a tenant queue", tm->label);
  tm->rejected_queue_full_total = &reg.counter(
      "logpc_svc_rejected_total", "requests rejected at admission",
      tm->label + ",reason=\"queue_full\"");
  tm->rejected_rate_limited_total = &reg.counter(
      "logpc_svc_rejected_total", "requests rejected at admission",
      tm->label + ",reason=\"rate_limited\"");
  tm->completed_ok_total =
      &reg.counter("logpc_svc_completed_total", "requests fully executed",
                   tm->label + ",status=\"ok\"");
  tm->completed_error_total =
      &reg.counter("logpc_svc_completed_total", "requests fully executed",
                   tm->label + ",status=\"error\"");
  tm->fused_total = &reg.counter(
      "logpc_svc_fused_requests_total",
      "requests completed as members of a fused batch (>= 2 coalesced)",
      tm->label);
  tm->queue_depth = &reg.gauge("logpc_svc_queue_depth",
                               "requests currently queued for the tenant",
                               tm->label);
  // Request latencies ride the log-scale bucket ladder: queue waits and
  // end-to-end times span ~1us (warm hit, idle queue) to seconds (deep
  // backlog), which linear latency buckets can't resolve at both ends.
  tm->queue_wait =
      &reg.histogram("logpc_svc_queue_wait_ns",
                     obs::default_request_buckets_ns(),
                     "admission-to-dispatch wait", tm->label);
  tm->e2e_latency =
      &reg.histogram("logpc_svc_request_ns", obs::default_request_buckets_ns(),
                     "submission-to-completion latency", tm->label);
  tenant_metrics_.push_back(std::move(tm));
  return id;
}

SubmitResult CollectiveService::submit(TenantId tenant, Request request) {
  auto pending = std::make_unique<Pending>();
  pending->tenant = tenant;
  pending->req = std::move(request);
  pending->submitted = Clock::now();
  // Fusion identity computed outside the lock (pure function of the
  // request); the dispatch side only compares keys.
  pending->fkey = fusion_key(pending->req);
  std::future<Response> response = pending->promise.get_future();
  const double now = now_sec();

  SubmitResult out;
  {
    std::lock_guard lock(mu_);
    TenantMetrics& m = metrics_at(tenant);  // validates the id first
    if (stopping_) {
      out.status = Status::kShutdown;
      return out;
    }
    switch (sched_.offer(tenant, pending->req.qos, next_handle_, now)) {
      case Admit::kQueueFull:
        m.rejected_queue_full.fetch_add(1, std::memory_order_relaxed);
        m.rejected_queue_full_total->inc();
        out.status = Status::kQueueFull;
        return out;
      case Admit::kRateLimited:
        m.rejected_rate_limited.fetch_add(1, std::memory_order_relaxed);
        m.rejected_rate_limited_total->inc();
        out.status = Status::kRateLimited;
        return out;
      case Admit::kAdmitted:
        break;
    }
    m.admitted.fetch_add(1, std::memory_order_relaxed);
    m.admitted_total->inc();
    m.queue_depth->set(static_cast<double>(sched_.queue_depth(tenant)));
    queued_reqs_.emplace(next_handle_, std::move(pending));
    ++next_handle_;
    inflight_.fetch_add(1, std::memory_order_relaxed);
    inflight_gauge_->add(1);
  }
  // notify_all, not notify_one: a pool sitting in its fusion window also
  // waits on cv_, and a single notify landing there for an unrelated
  // request would leave an idle pool asleep.
  cv_.notify_all();
  out.status = Status::kOk;
  out.response = std::move(response);
  return out;
}

void CollectiveService::claim_siblings(
    const FusionKey& key, std::vector<std::unique_ptr<Pending>>& batch) {
  if (batch.size() >= opts_.max_fusion_batch) return;
  std::vector<std::uint64_t> handles;
  for (const auto& [handle, pending] : queued_reqs_) {
    if (pending->fkey.has_value() && *pending->fkey == key) {
      handles.push_back(handle);
    }
  }
  // Handles are issued monotonically, so ascending order is admission
  // order — the fan-out (Response::fused_index) stays deterministic.
  std::sort(handles.begin(), handles.end());
  for (const std::uint64_t handle : handles) {
    if (batch.size() >= opts_.max_fusion_batch) break;
    const auto it = queued_reqs_.find(handle);
    if (!sched_.take(it->second->tenant, it->second->req.qos, handle)) {
      continue;  // defensive: scheduler and request map out of sync
    }
    batch.push_back(std::move(it->second));
    queued_reqs_.erase(it);
  }
}

void CollectiveService::pool_loop(int pool_index) {
  exec::Engine& engine = *pools_[static_cast<std::size_t>(pool_index)].engine;
  for (;;) {
    std::vector<std::unique_ptr<Pending>> batch;
    std::vector<TenantMetrics*> tms;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] {
        return stopping_ || (!paused_ && sched_.queued() > 0);
      });
      if (stopping_) {
        // drain=true keeps dispatching (a pause no longer holds work back)
        // until every queue is empty; drain=false exits now and leaves the
        // leftovers for shutdown() to fail with kShutdown.
        if (!drain_on_stop_ || sched_.queued() == 0) return;
      } else if (paused_ || sched_.queued() == 0) {
        continue;  // spurious wake or lost race with another pool
      }
      TenantId tenant = -1;
      std::uint64_t handle = 0;
      if (!sched_.pick(&tenant, &handle)) continue;
      const auto it = queued_reqs_.find(handle);
      batch.push_back(std::move(it->second));
      queued_reqs_.erase(it);

      const Pending& lead = *batch.front();
      const bool fuse =
          opts_.fusion_window_us > 0 && lead.fkey.has_value() &&
          opts_.fuse_qos[static_cast<std::size_t>(lead.req.qos)];
      if (fuse) {
        claim_siblings(*lead.fkey, batch);
        const auto deadline =
            Clock::now() + std::chrono::microseconds(opts_.fusion_window_us);
        // Hold the window open only while it can still pay off: a full
        // batch dispatches, shutdown dispatches, and an already-amortized
        // batch with nothing left queued dispatches — every producer is
        // then idle or blocked on this very batch, so waiting out the
        // window would only add latency.
        while (!stopping_ && batch.size() < opts_.max_fusion_batch &&
               !(batch.size() > 1 && sched_.queued() == 0)) {
          if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
            claim_siblings(*lead.fkey, batch);
            break;
          }
          claim_siblings(*lead.fkey, batch);
        }
      }
      tms.reserve(batch.size());
      for (std::unique_ptr<Pending>& member : batch) {
        member->seq = dispatch_seq_++;
        TenantMetrics& tm = metrics_at(member->tenant);
        tm.queue_depth->set(
            static_cast<double>(sched_.queue_depth(member->tenant)));
        tms.push_back(&tm);
      }
    }

    std::vector<Response> responses = execute_batch(batch, engine, pool_index);

    for (std::size_t i = 0; i < batch.size(); ++i) {
      Response& r = responses[i];
      TenantMetrics& tm = *tms[i];
      tm.queue_wait->observe(static_cast<double>(r.queue_wait_ns));
      tm.e2e_latency->observe(static_cast<double>(r.total_ns));
      tm.completed.fetch_add(1, std::memory_order_relaxed);
      (r.status == Status::kOk ? tm.completed_ok_total
                               : tm.completed_error_total)
          ->inc();
      if (batch.size() > 1) {
        tm.fused.fetch_add(1, std::memory_order_relaxed);
        tm.fused_total->inc();
      }
      inflight_.fetch_sub(1, std::memory_order_relaxed);
      inflight_gauge_->add(-1);
      batch[i]->promise.set_value(std::move(r));
    }
  }
}

std::shared_ptr<const exec::Program> CollectiveService::program_for(
    OpKind op, ProcId root, int segments) {
  const std::tuple<int, ProcId, int> key{
      static_cast<int>(op), op == OpKind::kAllgather ? 0 : root,
      op == OpKind::kBroadcast ? segments : 1};
  std::lock_guard lock(prog_mu_);
  auto it = programs_.find(key);
  if (it != programs_.end()) return it->second;
  runtime::Problem problem = runtime::Problem::kBroadcast;
  std::int64_t k = 1;
  switch (op) {
    case OpKind::kBroadcast:
      problem = segments > 1 ? runtime::Problem::kKItemBroadcast
                             : runtime::Problem::kBroadcast;
      k = segments;
      break;
    case OpKind::kReduce: problem = runtime::Problem::kReduce; break;
    case OpKind::kAllgather: problem = runtime::Problem::kAllToAll; break;
  }
  auto program = std::make_shared<const exec::Program>(
      comm_.compile(problem, k, std::get<1>(key)));
  programs_.emplace(key, program);
  return program;
}

std::vector<Response> CollectiveService::execute_batch(
    const std::vector<std::unique_ptr<Pending>>& batch, exec::Engine& engine,
    int pool_index) {
  const std::size_t n = batch.size();
  const Request& lead = batch.front()->req;
  const auto dispatched = Clock::now();

  std::vector<Response> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].pool = pool_index;
    out[i].dispatch_seq = batch[i]->seq;
    out[i].queue_wait_ns = ns_between(batch[i]->submitted, dispatched);
    out[i].fused = static_cast<std::uint32_t>(n);
    out[i].fused_index = static_cast<std::uint32_t>(i);
  }
  batch_size_hist_->observe(static_cast<double>(n));
  if (n > 1) {
    fused_batches_.fetch_add(1, std::memory_order_relaxed);
    fused_requests_.fetch_add(n, std::memory_order_relaxed);
  }

  obs::Span span("svc.request", "svc");
  if (span.active()) {
    span.set_arg(std::string(op_kind_name(lead.op)) +
                 " qos=" + qos_name(lead.qos) + " pool=" +
                 std::to_string(pool_index) + " fused=" + std::to_string(n));
  }

  int segments = 1;
  try {
    // The per-run injector keeps Options::fault a pure test hook: the
    // engine's acked-delivery protocol switches on per run, and a killed
    // rank never poisons the next dispatch's decisions.
    std::optional<fault::Injector> injector;
    if (opts_.fault.has_value()) injector.emplace(*opts_.fault);
    const fault::Injector* inj = injector ? &*injector : nullptr;

    std::vector<const Request*> members;
    members.reserve(n);
    for (const std::unique_ptr<Pending>& member : batch) {
      members.push_back(&member->req);
    }

    exec::ExecReport run;
    std::size_t chunk = 0;  // bytes per member in the fused buffers
    switch (lead.op) {
      case OpKind::kBroadcast: {
        chunk = lead.payload.size();
        exec::Bytes fused_payload;
        const exec::Bytes* whole = &lead.payload;
        if (n > 1) {
          fused_payload = concat_payloads(members);
          whole = &fused_payload;
        }
        const SegmentPolicy policy{opts_.segment_threshold,
                                   opts_.segment_bytes, opts_.max_segments};
        segments = choose_segments(whole->size(), policy);
        const std::shared_ptr<const exec::Program> program =
            program_for(lead.op, lead.root, segments);
        if (segments > 1) {
          // Coalesced segmented run: the engine splits the payload itself
          // and delivers each proc's segments into one contiguous result
          // buffer — report.items already has the bulk single-send shape,
          // with no split/concat copies on this thread.
          run = engine.run_segmented(
              *program,
              exec::SegmentRun{
                  std::span<const std::byte>(whole->data(), whole->size()),
                  segments},
              inj);
        } else {
          run = engine.run(*program, std::vector<exec::Bytes>{*whole}, inj);
        }
        break;
      }
      case OpKind::kReduce: {
        const std::shared_ptr<const exec::Program> program =
            program_for(lead.op, lead.root, 1);
        if (n > 1) {
          chunk = lead.values.front().size();
          run = engine.run(*program, concat_values(members),
                           fused_combiner(lead, chunk, n), inj);
        } else {
          run = engine.run(*program, lead.values, lead.combine, inj);
        }
        break;
      }
      case OpKind::kAllgather: {
        const std::shared_ptr<const exec::Program> program =
            program_for(lead.op, 0, 1);
        if (n > 1) {
          chunk = lead.values.front().size();
          run = engine.run(*program, concat_values(members), inj);
        } else {
          run = engine.run(*program, lead.values, inj);
        }
        break;
      }
    }
    if (segments > 1) {
      segmented_runs_.fetch_add(1, std::memory_order_relaxed);
    }

    std::shared_ptr<const obs::RunProfile> profile;
    if (opts_.profile) {
      // Analyze outside the recorder's lock (the recorder only ring-appends
      // under it).  Profiling is best-effort telemetry: a malformed event
      // log must never turn a completed run into a failed request.  One
      // batch is one run is one profile — every member shares it, so the
      // flight recorder attributes the engine work once while each tenant's
      // counters above still tick per request.
      try {
        profile = recorder_.record(obs::analyze(run));
      } catch (const std::exception&) {
        // leave profile null; the run itself succeeded
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      out[i].status = Status::kOk;
      out[i].segments = static_cast<std::uint32_t>(segments);
      out[i].profile = profile;
    }
    if (n == 1) {
      // Solo runs hand the report over unsliced: bulk is the raw run, and
      // a segmented run's report is already coalesced to the bulk shape by
      // the engine (one contiguous buffer per proc).
      out[0].report = std::move(run);
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        out[i].report = member_report(run, lead.op, chunk, i, n);
      }
    }
  } catch (const std::exception& e) {
    // One engine run is the whole batch: a failure (including a rank death
    // under Options::fault) fails every member with the same error — no
    // member can have partially completed, and no future is left behind.
    for (std::size_t i = 0; i < n; ++i) {
      out[i].status = Status::kError;
      out[i].error = e.what();
    }
  }
  const auto done = Clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    out[i].total_ns = ns_between(batch[i]->submitted, done);
  }
  return out;
}

void CollectiveService::pause() {
  std::lock_guard lock(mu_);
  paused_ = true;
}

void CollectiveService::resume() {
  {
    std::lock_guard lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void CollectiveService::shutdown(bool drain) {
  std::lock_guard shutdown_lock(shutdown_mu_);
  if (shut_down_) return;
  // Introspection first: its pages read live service state, so the server
  // must be gone before the pools and queues start tearing down.
  introspect_.reset();
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
    drain_on_stop_ = drain;
  }
  cv_.notify_all();
  for (Pool& pool : pools_) {
    if (pool.thread.joinable()) pool.thread.join();
  }
  // With drain=false the pools exited immediately; fail what they left
  // behind so no future is abandoned unresolved.
  std::vector<std::unique_ptr<Pending>> leftovers;
  {
    std::lock_guard lock(mu_);
    shut_down_ = true;
    leftovers.reserve(queued_reqs_.size());
    for (auto& [handle, pending] : queued_reqs_) {
      leftovers.push_back(std::move(pending));
    }
    queued_reqs_.clear();
    TenantId tenant = -1;
    std::uint64_t handle = 0;
    while (sched_.pick(&tenant, &handle)) {
      metrics_at(tenant).queue_depth->set(
          static_cast<double>(sched_.queue_depth(tenant)));
    }
  }
  for (std::unique_ptr<Pending>& pending : leftovers) {
    Response r;
    r.status = Status::kShutdown;
    r.error = "service shut down before dispatch";
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    inflight_gauge_->add(-1);
    pending->promise.set_value(std::move(r));
  }
}

CollectiveService::TenantCounters CollectiveService::tenant_counters(
    TenantId tenant) const {
  std::lock_guard lock(mu_);
  auto* self = const_cast<CollectiveService*>(this);
  const TenantMetrics& m = self->metrics_at(tenant);
  TenantCounters c;
  c.admitted = m.admitted.load(std::memory_order_relaxed);
  c.completed = m.completed.load(std::memory_order_relaxed);
  c.rejected_queue_full = m.rejected_queue_full.load(std::memory_order_relaxed);
  c.rejected_rate_limited =
      m.rejected_rate_limited.load(std::memory_order_relaxed);
  c.fused = m.fused.load(std::memory_order_relaxed);
  c.queue_depth = sched_.queue_depth(tenant);
  return c;
}

CollectiveService::ServiceStatus CollectiveService::status() const {
  ServiceStatus s;
  s.pools = static_cast<int>(pools_.size());
  s.params = params_;
  s.recorder = recorder_.summary();
  std::lock_guard lock(mu_);
  s.accepting = !stopping_;
  s.paused = paused_;
  s.queued = sched_.queued();
  s.inflight = static_cast<std::size_t>(
      std::max<std::int64_t>(inflight_.load(std::memory_order_relaxed), 0));
  s.fused_requests = fused_requests_.load(std::memory_order_relaxed);
  s.fused_batches = fused_batches_.load(std::memory_order_relaxed);
  s.segmented_runs = segmented_runs_.load(std::memory_order_relaxed);
  auto* self = const_cast<CollectiveService*>(this);
  s.tenants.reserve(tenant_metrics_.size());
  for (std::size_t i = 0; i < tenant_metrics_.size(); ++i) {
    const auto id = static_cast<TenantId>(i);
    const TenantMetrics& m = self->metrics_at(id);
    const TenantConfig& cfg = sched_.config(id);
    TenantStatus t;
    t.id = id;
    t.name = m.name;
    t.weight = std::max<std::uint32_t>(cfg.weight, 1);
    t.queue_capacity = cfg.queue_capacity;
    t.rate_per_sec = cfg.rate_per_sec;
    for (std::size_t qc = 0; qc < kQoSClasses; ++qc) {
      t.depth_by_qos[qc] = sched_.queue_depth(id, static_cast<QoS>(qc));
    }
    t.counters.admitted = m.admitted.load(std::memory_order_relaxed);
    t.counters.completed = m.completed.load(std::memory_order_relaxed);
    t.counters.rejected_queue_full =
        m.rejected_queue_full.load(std::memory_order_relaxed);
    t.counters.rejected_rate_limited =
        m.rejected_rate_limited.load(std::memory_order_relaxed);
    t.counters.fused = m.fused.load(std::memory_order_relaxed);
    t.counters.queue_depth = sched_.queue_depth(id);
    s.tenants.push_back(std::move(t));
  }
  return s;
}

int CollectiveService::introspect_port() const {
  return introspect_ ? introspect_->port() : -1;
}

bool CollectiveService::accepting() const {
  std::lock_guard lock(mu_);
  return !stopping_;
}

std::size_t CollectiveService::queued() const {
  std::lock_guard lock(mu_);
  return sched_.queued();
}

double CollectiveService::now_sec() const {
  return std::chrono::duration<double>(Clock::now() - epoch_).count();
}

}  // namespace logpc::svc
