#pragma once

#include "logp/hier.hpp"
#include "sched/schedule.hpp"

/// \file hierarchical.hpp
/// Two-level broadcast for the hierarchical machine (logp/hier.hpp).
///
/// The paper's Theorem 2.1 tree is optimal when every link costs the same
/// (L, o, g).  On a two-class machine it can be arbitrarily bad: the flat
/// optimal tree assigns ranks to tree slots by index, so almost every edge
/// may cross clusters and pay the expensive class.  The fix (in the spirit
/// of Barchet-Estefanel & Mounié, arXiv:cs/0408032) is a two-level
/// schedule built by a cheapest-arrival greedy:
///
///  * each unreached cluster is entered exactly once, through a
///    cross-class send to its leader (HierParams::leader), so the
///    expensive links carry exactly C - 1 messages;
///  * every other rank is an intra-class target inside its own cluster;
///  * the greedy repeatedly commits whichever transmission — the next
///    cross send from *any* informed rank, or the next intra send within
///    any reached cluster — informs a new rank earliest under the
///    per-link-class LogP clock (ties prefer the cross send, which
///    unlocks a whole cluster's parallelism).
///
/// On a uniform machine this greedy reproduces the Theorem 2.1 optimal
/// broadcast exactly, so the degenerate shapes (one cluster, or
/// all-singleton clusters) come out as the pure optimal tree of the one
/// class they use, stated on that class.  With two distinct classes the
/// greedy interleaves the levels by itself: when the cross gap dominates
/// it first recruits cheap intra helpers and then spreads the cross sends
/// over distinct ports instead of serializing one leader's, and when the
/// cross latency dominates it relays through already-informed clusters.
///
/// For 1 < C < P the emitted Schedule is stated on HierParams::flat()
/// (the conservative single-class projection) but its send times follow
/// the *class-accurate* clock: each SendOp carries an explicit
/// recv_start = start + o_c + L_c of its link's class.  One deliberate
/// concession keeps the schedule self-consistent for every topology-blind
/// consumer (the exec compiler derives item availability as
/// recv_start + params.o): the receive overhead is charged at the flat
/// rate flat().o = max(intra.o, cross.o).  Intra hops are therefore
/// overcharged by (flat.o - intra.o) each — the exact class-model
/// makespan is predict_makespan(schedule, h), which is never larger.
/// Such schedules are NOT valid flat-LogP schedules (intra sends are
/// spaced by the intra gap, below flat().g) and must not be fed to
/// validate::check; they obey the per-link-class rules by construction.

namespace logpc::bcast {

/// A two-level broadcast schedule and its class-model timing.
struct HierBroadcast {
  Schedule schedule;  ///< on flat() (or the one class used); class clock
  Time completion = 0;  ///< max availability (== schedule.makespan())
  /// Cycle each rank holds the item, index = rank (root at its initial
  /// time, 0).  Consistent with Schedule::available_at on `schedule`.
  std::vector<Time> informed;
};

/// Builds the two-level single-item broadcast of `h` from `root`.
/// Degenerates gracefully: one cluster yields the pure intra optimal tree,
/// all-singleton clusters the pure cross optimal tree.
[[nodiscard]] HierBroadcast hierarchical_broadcast(const HierParams& h,
                                                   ProcId root = 0);

/// Re-times a single-item broadcast schedule under the two-class model:
/// keeps each processor's send order and the tree structure, but replays
/// the clock as-soon-as-possible charging every transmission with its own
/// link class (o_c + L_c + o_c, gap g_c on the sender's port).  This is
/// the evaluator the property tests and the tuner use to compare a
/// topology-blind plan against a hierarchical one on the same machine.
/// Requires s.num_items() == 1 and at least one initial placement; throws
/// std::invalid_argument otherwise, or when a send's source can never hold
/// the item.  Returns the cycle the last processor is informed.
[[nodiscard]] Time predict_makespan(const Schedule& s, const HierParams& h);

}  // namespace logpc::bcast
