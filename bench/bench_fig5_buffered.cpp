/// Experiment F5 - Figure 5: the optimal modified-model (buffered) k-item
/// schedule for L = 3, P - 1 = 13, k = 14.  Paper completion: time 24 =
/// L + B(13) + k - 1; circled items cause delays, boxed items are the
/// delayed (buffered) receptions - our reception table brackets them.

#include "bench_util.hpp"

#include "bcast/kitem_buffered.hpp"
#include "sched/metrics.hpp"
#include "validate/checker.hpp"
#include "viz/table.hpp"

namespace {

using namespace logpc;
using logpc::bench::Table;

void report() {
  logpc::bench::section(
      "Figure 5: buffered-model schedule, L=3, P-1=13, k=14");
  const auto r = bcast::kitem_buffered(14, 3, 14);
  std::cout << viz::reception_table(r.schedule);
  std::cout << "(bracketed entries are buffered/delayed receptions - the "
               "paper's boxed items)\n";

  logpc::bench::section("paper vs measured");
  Table t({"quantity", "paper", "measured", "match"});
  t.row("completion L+B(13)+k-1", 24, r.completion,
        logpc::bench::ok(r.completion == 24));
  const auto check = validate::check(
      r.schedule, {.buffered = true, .buffer_limit = 2});
  t.row("valid in modified model (buffer<=2)", "-", check.summary(),
        logpc::bench::ok(check.ok()));
  t.row("buffer depth (footnote: 2 suffices)", "<=2", r.max_buffer_depth,
        logpc::bench::ok(r.max_buffer_depth <= 2));
  t.row("single-sending", "yes",
        logpc::bench::ok(is_single_sending(r.schedule, 0)),
        logpc::bench::ok(is_single_sending(r.schedule, 0)));
  int delayed = 0;
  for (const auto& op : r.schedule.sends()) {
    if (op.recv_start != kNever) ++delayed;
  }
  // The paper's Theorem 3.7-derived assignment needs delayed items here;
  // our block-cyclic assignment reaches the same completion without any.
  // Buffering becomes load-bearing exactly where strict block-cyclic
  // schedules cannot exist (L = 2, Theorem 3.4) - shown below.
  t.row("delayed receptions used (this instance)", "some (paper's scheme)",
        delayed, "yes");
  t.print();

  logpc::bench::section(
      "where buffering is load-bearing: L = 2 (strict impossible, Thm 3.4)");
  const auto l2 = bcast::kitem_buffered(9, 2, 6);
  int l2_delayed = 0;
  for (const auto& op : l2.schedule.sends()) {
    if (op.recv_start != kNever) ++l2_delayed;
  }
  Table t2({"quantity", "expected", "measured", "match"});
  t2.row("completion B(8)+L+k-1", l2.bounds.single_sending_lower,
         l2.completion,
         logpc::bench::ok(l2.completion == l2.bounds.single_sending_lower));
  t2.row("delayed receptions", ">0", l2_delayed,
         logpc::bench::ok(l2_delayed > 0));
  t2.row("buffer depth", "<=2", l2.max_buffer_depth,
         logpc::bench::ok(l2.max_buffer_depth <= 2));
  t2.print();
  std::cout << viz::reception_table(l2.schedule);
  std::cout << "(bracketed = buffered receptions, the Figure 5 boxes)\n";

  logpc::bench::section("Theorem 3.8 sweep: completion == B(P-1)+L+k-1");
  Table sweep({"P", "L", "k", "bound", "measured", "buffer", "match"});
  struct Case {
    int P;
    Time L;
    int k;
  };
  for (const auto& c :
       {Case{5, 2, 6}, Case{10, 1, 5}, Case{13, 2, 5}, Case{14, 3, 14},
        Case{17, 4, 6}, Case{21, 2, 7}, Case{30, 5, 3}, Case{33, 1, 6}}) {
    const auto res = bcast::kitem_buffered(c.P, c.L, c.k);
    sweep.row(c.P, c.L, c.k, res.bounds.single_sending_lower, res.completion,
              res.max_buffer_depth,
              logpc::bench::ok(res.completion ==
                               res.bounds.single_sending_lower));
  }
  sweep.print();
}

void BM_KItemBuffered(benchmark::State& state) {
  const auto P = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bcast::kitem_buffered(P, 3, 14));
  }
}
BENCHMARK(BM_KItemBuffered)->Arg(14)->Arg(42)->Arg(124);

}  // namespace

LOGPC_BENCH_MAIN(report)
