#include "sched/io.hpp"

#include <sstream>
#include <stdexcept>

namespace logpc {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("schedule text, line " + std::to_string(line) +
                              ": " + what);
}

}  // namespace

void write_text(std::ostream& os, const Schedule& s) {
  Schedule sorted = s;
  sorted.sort();
  os << "logpc-schedule v1\n";
  os << "params " << sorted.params().P << " " << sorted.params().L << " "
     << sorted.params().o << " " << sorted.params().g << "\n";
  os << "items " << sorted.num_items() << "\n";
  for (const auto& init : sorted.initials()) {
    os << "init " << init.item << " " << init.proc << " " << init.time
       << "\n";
  }
  for (const auto& op : sorted.sends()) {
    os << "send " << op.start << " " << op.from << " " << op.to << " "
       << op.item;
    if (op.recv_start != kNever) os << " " << op.recv_start;
    os << "\n";
  }
}

std::string to_text(const Schedule& s) {
  std::ostringstream os;
  write_text(os, s);
  return os.str();
}

Schedule read_text(std::istream& is) {
  std::string line;
  std::size_t lineno = 0;
  auto next_line = [&]() -> bool {
    while (std::getline(is, line)) {
      ++lineno;
      const auto first = line.find_first_not_of(" \t");
      if (first == std::string::npos || line[first] == '#') continue;
      return true;
    }
    return false;
  };

  if (!next_line() || line != "logpc-schedule v1") {
    fail(lineno, "expected header 'logpc-schedule v1'");
  }
  if (!next_line()) fail(lineno, "missing params line");
  Params params;
  {
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag >> params.P >> params.L >> params.o >> params.g) ||
        tag != "params") {
      fail(lineno, "malformed params line");
    }
    if (!params.valid()) fail(lineno, "invalid LogP parameters");
  }
  if (!next_line()) fail(lineno, "missing items line");
  int num_items = 0;
  {
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag >> num_items) || tag != "items" || num_items < 1) {
      fail(lineno, "malformed items line");
    }
  }
  Schedule s(params, num_items);
  auto check_proc = [&](ProcId p) {
    if (p < 0 || p >= params.P) fail(lineno, "processor id out of range");
  };
  auto check_item = [&](ItemId i) {
    if (i < 0 || i >= num_items) fail(lineno, "item id out of range");
  };
  while (next_line()) {
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "init") {
      InitialPlacement init;
      if (!(ls >> init.item >> init.proc >> init.time)) {
        fail(lineno, "malformed init line");
      }
      check_proc(init.proc);
      check_item(init.item);
      s.add_initial(init.item, init.proc, init.time);
    } else if (tag == "send") {
      SendOp op;
      if (!(ls >> op.start >> op.from >> op.to >> op.item)) {
        fail(lineno, "malformed send line");
      }
      Time recv = kNever;
      if (ls >> recv) op.recv_start = recv;
      check_proc(op.from);
      check_proc(op.to);
      check_item(op.item);
      s.add_send(op);
    } else {
      fail(lineno, "unknown record '" + tag + "'");
    }
  }
  s.sort();
  return s;
}

Schedule schedule_from_text(const std::string& text) {
  std::istringstream is(text);
  return read_text(is);
}

}  // namespace logpc
