#pragma once

#include "sched/schedule.hpp"
#include "validate/report.hpp"

/// \file checker.hpp
/// Independent verification that a schedule obeys every LogP rule and (for
/// broadcast problems) actually delivers every item everywhere.  This is
/// deliberately a second implementation of the model's semantics, separate
/// from both the builders and the simulator, so the three can cross-check
/// one another in tests and benches.

namespace logpc::validate {

struct CheckOptions {
  /// Modified model of Section 3.5: receivers may hold arrivals in a buffer
  /// and receive them later (recv_start >= arrival instead of ==).
  bool buffered = false;

  /// With `buffered`, the maximum number of items allowed to sit in any
  /// processor's buffer at once (-1 = unlimited).  The paper notes a scheme
  /// achieving the k-item lower bound with buffer size 2.
  int buffer_limit = -1;

  /// Fail on any processor receiving the same item twice.  Optimal schedules
  /// never do this; baselines may legitimately want it off.
  bool forbid_duplicate_receive = true;

  /// Require every item to reach every processor (the broadcast goal).
  /// Disable for partial schedules (e.g. a reduction, where values converge
  /// to one processor) and check the goal separately.
  bool require_complete = true;

  /// Enforce the network capacity constraint (at most ceil(L/g) messages in
  /// transit from, or to, any processor).
  bool check_capacity = true;

  /// Allow a processor's send overhead to overlap a receive overhead
  /// (full-duplex overheads).  Section 4.1's optimal all-to-all schedule
  /// requires this whenever L < (P-2)g: every processor is mid-send when
  /// arrivals land, yet the paper presents the schedule as meeting the
  /// L + 2o + (P-2)g bound - so its accounting implicitly charges send and
  /// receive engagement concurrently.  Everything else in the paper works
  /// single-ported; the default stays strict.
  bool allow_duplex_overhead = false;

  /// Stop after this many violations (0 = collect all).
  std::size_t max_violations = 64;
};

/// Validates `s` against the LogP rules; returns every violation found (up
/// to options.max_violations).
[[nodiscard]] CheckResult check(const Schedule& s, CheckOptions options = {});

/// Convenience used pervasively in tests: check(s, options).ok().
[[nodiscard]] bool is_valid(const Schedule& s, CheckOptions options = {});

/// One observed reception during real execution (src/exec): who the payload
/// came from and which item it carried, in the order the processor accepted
/// it.  Kept here (not in exec) so the checker stays an independent
/// implementation of the model's semantics.
struct DeliveryRecord {
  ProcId from = kNoProc;
  ItemId item = 0;

  friend bool operator==(const DeliveryRecord&, const DeliveryRecord&) =
      default;
};

/// The reception sequence `plan` prescribes for each processor: its
/// receives ordered by payload-available cycle (ties by schedule order).
[[nodiscard]] std::vector<std::vector<DeliveryRecord>> planned_deliveries(
    const Schedule& plan);

/// Cross-checks an execution against its plan: processor by processor, the
/// observed reception sequence must equal planned_deliveries(plan).  Every
/// divergence (missing, extra, or reordered reception) is reported as a
/// kDeliveryOrder violation.
[[nodiscard]] CheckResult check_delivery_order(
    const Schedule& plan,
    const std::vector<std::vector<DeliveryRecord>>& observed);

/// Exactly-once audit for executions under fault injection: the engine's
/// acked-delivery protocol may retransmit a message, but a retransmitted
/// copy must be *discarded*, never accepted — so no processor's observed
/// reception sequence may contain the same (from, item) pair twice.  Each
/// repeat is reported as a kDuplicateReceive violation.  (This is the
/// per-pair complement of check_delivery_order, which would also flag a
/// duplicate but as an order divergence; running both pins the failure to
/// its rule.)
[[nodiscard]] CheckResult check_exactly_once(
    const std::vector<std::vector<DeliveryRecord>>& observed);

}  // namespace logpc::validate
