#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

/// \file trace_recorder.hpp
/// Scoped-span tracing: RAII `Span`s record named, timed events into a
/// bounded ring-buffer `TraceRecorder`, which the Chrome-trace exporter
/// (obs/chrome_trace.hpp) turns into a timeline loadable in
/// chrome://tracing or Perfetto.
///
/// The ring is bounded by construction: a recorder never grows past its
/// capacity, the oldest events are overwritten first, and `dropped()`
/// reports how many were lost — an always-on tracer for a serving process,
/// not an unbounded log.  Recording takes one short mutex-protected append;
/// spans on the plan-cache *hit* path are intentionally absent (counters
/// cover it), so the mutex only sees build-rate traffic.
///
/// obs::set_enabled(false) turns Span and ScopedTimer into no-ops at
/// construction time (they hold no clock, no state).

namespace logpc::obs {

/// One completed span.  Timestamps are nanoseconds on the steady clock,
/// relative to the recorder's construction ("epoch"), so traces from one
/// process line up on one timeline.
struct TraceEvent {
  std::string name;  ///< e.g. "planner.build"
  std::string cat;   ///< coarse grouping: "planner", "warmup", "comm", ...
  std::string arg;   ///< free-form detail (a PlanKey string, ...)
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  ///< small per-thread id (current_tid())
};

/// Stable small id of the calling thread (assigned on first use, dense
/// from 0), so trace rows group by thread without 64-bit opaque ids.
[[nodiscard]] std::uint32_t current_tid();

class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 4096);

  /// The process-wide recorder the built-in instrumentation writes to.
  static TraceRecorder& global();

  /// Appends `e`, overwriting the oldest event when full.
  void record(TraceEvent e);

  /// Oldest-to-newest snapshot of the retained events.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  void clear();

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Events ever recorded (including overwritten ones).
  [[nodiscard]] std::uint64_t recorded() const;
  /// Events lost to ring wrap-around.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Nanoseconds since this recorder's epoch, on the steady clock.
  [[nodiscard]] std::uint64_t now_ns() const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;  ///< ring_[ (first_ + i) % capacity_ ]
  std::size_t first_ = 0;
  std::uint64_t recorded_ = 0;
};

/// RAII span: constructed where the work starts, records one TraceEvent on
/// destruction.  Inactive (zero-cost beyond a relaxed load) when telemetry
/// is disabled at construction.
class Span {
 public:
  /// \param recorder destination; nullptr means TraceRecorder::global().
  explicit Span(std::string_view name, std::string_view cat = "",
                TraceRecorder* recorder = nullptr);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  /// Whether this span will record (telemetry was enabled at construction).
  /// Gate expensive set_arg() payload construction on this.
  [[nodiscard]] bool active() const { return recorder_ != nullptr; }

  /// Attaches free-form detail, shown under the slice in the trace viewer.
  void set_arg(std::string arg);

 private:
  TraceRecorder* recorder_ = nullptr;  ///< nullptr = span disabled
  TraceEvent event_;
};

/// RAII latency probe: observes the elapsed nanoseconds into a histogram on
/// destruction.  Inactive when telemetry is disabled at construction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist);
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer();

 private:
  Histogram* hist_ = nullptr;  ///< nullptr = timer disabled
  std::chrono::steady_clock::time_point start_;
};

}  // namespace logpc::obs
