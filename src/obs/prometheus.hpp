#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"

/// \file prometheus.hpp
/// Prometheus text exposition format (version 0.0.4) for a MetricsRegistry
/// snapshot: what a /metrics endpoint would serve.  Counters end in their
/// registered name, histograms expand to the conventional `_bucket{le=...}`
/// (cumulative, with `+Inf`), `_sum` and `_count` series, and `# HELP` /
/// `# TYPE` headers are emitted once per metric family.

namespace logpc::obs {

/// Writes every metric in `registry` (callbacks evaluated now) to `os`.
void write_prometheus(const MetricsRegistry& registry, std::ostream& os);

/// The same exposition as a string.
[[nodiscard]] std::string prometheus_text(const MetricsRegistry& registry);

/// Escapes one label *value* per the exposition format: backslash, double
/// quote and newline become \\, \" and \n.  MetricsRegistry label bodies
/// are pre-rendered strings, so any label built from external input — a
/// tenant name, a user-supplied collective label — must pass through this
/// or a crafted value would break (or forge) the scrape output.
[[nodiscard]] std::string escape_label_value(const std::string& value);

/// Renders one `name="value"` label pair with the value escaped — the
/// building block for label bodies keyed by external strings, e.g.
/// `label_pair("tenant", cfg.name)`.  Join multiple pairs with commas.
[[nodiscard]] std::string label_pair(const std::string& name,
                                     const std::string& value);

}  // namespace logpc::obs
