/// Experiment F3 - Figure 3: the block transmission digraph for L = 3 and
/// P - 1 = P(11) = 41.  The paper draws one concrete digraph; ours differs
/// in the inactive-edge pattern (a different legal word solution) but must
/// satisfy the same invariants: in/out weights of a block of size r sum to
/// r, the receive-only vertex has in-weight 1, the source emits exactly one
/// active transmission into the largest block.

#include "bench_util.hpp"

#include <map>

#include "bcast/blocks.hpp"
#include "viz/digraph.hpp"

namespace {

using namespace logpc;
using logpc::bench::Table;

void report() {
  logpc::bench::section("Figure 3: block transmission digraph (L=3, P-1=41)");
  const auto res = bcast::plan_continuous(3, 11);
  if (res.status != bcast::SolveStatus::kSolved) {
    std::cout << "plan FAILED\n";
    return;
  }
  const auto g = bcast::block_digraph(*res.plan);
  std::cout << viz::render_digraph(g);

  logpc::bench::section("block inventory");
  Table blocks({"block size r", "count", "internal delay d"});
  std::map<int, std::pair<int, Time>> by_size;
  for (const auto& b : res.plan->blocks) {
    by_size[b.r].first++;
    by_size[b.r].second = b.d;
  }
  for (const auto& [r, cd] : by_size) blocks.row(r, cd.first, cd.second);
  blocks.print();

  logpc::bench::section("paper vs measured");
  Table t({"invariant", "paper", "measured", "match"});
  t.row("P - 1", 41, res.plan->params.P - 1,
        logpc::bench::ok(res.plan->params.P - 1 == 41));
  t.row("largest block", 9, by_size.rbegin()->first,
        logpc::bench::ok(by_size.rbegin()->first == 9));
  const bool inv = bcast::digraph_invariants_hold(g);
  t.row("in/out weights = r; recv-only in = 1; source out = 1 (active)",
        "holds", inv ? "holds" : "violated", logpc::bench::ok(inv));
  bool all_items = true;
  for (ItemId i = 0; i < 8; ++i) {
    all_items = all_items &&
                bcast::digraph_invariants_hold(bcast::block_digraph(
                    *res.plan, i));
  }
  t.row("invariants across items 0..7", "holds",
        all_items ? "holds" : "violated", logpc::bench::ok(all_items));
  t.print();
}

void BM_BlockDigraph(benchmark::State& state) {
  const auto res = bcast::plan_continuous(3, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bcast::block_digraph(*res.plan));
  }
}
BENCHMARK(BM_BlockDigraph);

void BM_PlanContinuous41(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(bcast::plan_continuous(3, 11));
  }
}
BENCHMARK(BM_PlanContinuous41);

}  // namespace

LOGPC_BENCH_MAIN(report)
