#include "exec/measure.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace logpc::exec {
namespace {

// Synthetic-report round trip: generate event logs from known ground-truth
// parameters, fit, and assert the fit returns them.  Ground truth, in ns:
constexpr std::uint64_t kIntraO = 20, kIntraL = 100;
constexpr std::uint64_t kCrossO = 40, kCrossL = 400;
constexpr std::uint64_t kGap = 50;

void add_send(ExecReport& r, ProcId from, ProcId to, std::uint64_t start,
              std::uint64_t o) {
  ExecEvent ev;
  ev.kind = ExecEvent::Kind::kSend;
  ev.peer = to;
  ev.start_ns = start;
  ev.xfer_ns = start + o;  // push accepted after the send overhead
  ev.end_ns = ev.xfer_ns;
  r.events[static_cast<std::size_t>(from)].push_back(ev);
}

void add_recv(ExecReport& r, ProcId at, ProcId from, std::uint64_t wire_ns,
              std::uint64_t o) {
  // Arrival pairs FIFO with the matching push on the (from, at) link.
  const auto& sends = r.events[static_cast<std::size_t>(from)];
  std::uint64_t push = 0;
  std::size_t seen = 0, want = 0;
  for (const ExecEvent& ev : r.events[static_cast<std::size_t>(at)]) {
    if (ev.kind == ExecEvent::Kind::kRecv && ev.peer == from) ++want;
  }
  for (const ExecEvent& ev : sends) {
    if (ev.kind == ExecEvent::Kind::kSend && ev.peer == at) {
      if (seen++ == want) {
        push = ev.xfer_ns;
        break;
      }
    }
  }
  ExecEvent ev;
  ev.kind = ExecEvent::Kind::kRecv;
  ev.peer = from;
  ev.start_ns = push;
  ev.xfer_ns = push + wire_ns;     // payload arrived after the wire latency
  ev.end_ns = ev.xfer_ns + o;      // stored after the receive overhead
  r.events[static_cast<std::size_t>(at)].push_back(ev);
}

/// A 4-rank report with one intra-class hop (0 -> 1), one cross-class hop
/// (0 -> 2), and a second send from rank 0 spaced kGap after the first.
/// Under the {0,1} | {2,3} partition the first send is intra, so the one
/// gap sample belongs to the intra class.
ExecReport two_class_report() {
  ExecReport r;
  r.params = Params{4, 1, 0, 1};
  r.events.resize(4);
  add_send(r, 0, 1, 0, kIntraO);
  add_send(r, 0, 2, kGap, kCrossO);
  add_recv(r, 1, 0, kIntraL, kIntraO);
  add_recv(r, 2, 0, kCrossL, kCrossO);
  return r;
}

HierParams topo() {
  return HierParams::uniform(4, 2, Params{0, 2, 1, 2}, Params{0, 8, 2, 5});
}

TEST(Measure, FlatFitRoundTripsKnownParameters) {
  // Single-class report: every hop intra-priced.
  ExecReport r;
  r.params = Params{4, 1, 0, 1};
  r.events.resize(4);
  add_send(r, 0, 1, 0, kIntraO);
  add_send(r, 0, 2, kGap, kIntraO);
  add_send(r, 0, 3, 2 * kGap, kIntraO);
  add_recv(r, 1, 0, kIntraL, kIntraO);
  add_recv(r, 2, 0, kIntraL, kIntraO);
  add_recv(r, 3, 0, kIntraL, kIntraO);

  const MeasuredLogP fit = measure(r);
  EXPECT_DOUBLE_EQ(fit.L_ns, static_cast<double>(kIntraL));
  EXPECT_DOUBLE_EQ(fit.o_ns, static_cast<double>(kIntraO));
  EXPECT_DOUBLE_EQ(fit.g_ns, static_cast<double>(kGap));
  EXPECT_EQ(fit.latency_samples, 3u);
  EXPECT_EQ(fit.overhead_samples, 6u);  // 3 sends + 3 receives
  EXPECT_EQ(fit.gap_samples, 2u);

  // Quantization to model cycles at 10 ns/cycle recovers exact integers.
  const sim::MeasuredParams cycles =
      fit.as_measured_params(10.0, Params{4, 1, 0, 1});
  EXPECT_EQ(cycles.L, 10);
  EXPECT_EQ(cycles.o, 2);
  EXPECT_EQ(cycles.g, 5);
}

TEST(Measure, HierFitSeparatesTheTwoClasses) {
  const MeasuredHierLogP fit = measure(two_class_report(), topo());
  EXPECT_DOUBLE_EQ(fit.intra.L_ns, static_cast<double>(kIntraL));
  EXPECT_DOUBLE_EQ(fit.intra.o_ns, static_cast<double>(kIntraO));
  EXPECT_DOUBLE_EQ(fit.intra.g_ns, static_cast<double>(kGap));
  EXPECT_EQ(fit.intra.latency_samples, 1u);
  EXPECT_EQ(fit.intra.overhead_samples, 2u);
  EXPECT_EQ(fit.intra.gap_samples, 1u);

  EXPECT_DOUBLE_EQ(fit.cross.L_ns, static_cast<double>(kCrossL));
  EXPECT_DOUBLE_EQ(fit.cross.o_ns, static_cast<double>(kCrossO));
  // No cross gap samples; g floors at the class's own overhead.
  EXPECT_DOUBLE_EQ(fit.cross.g_ns, static_cast<double>(kCrossO));
  EXPECT_EQ(fit.cross.latency_samples, 1u);
  EXPECT_EQ(fit.cross.gap_samples, 0u);
}

TEST(Measure, HierFitResidualNoWorseThanFlat) {
  // The flat fit must average the two regimes, so on a genuinely two-class
  // run its residual against either ground-truth class exceeds the hier
  // fit's (which is exact here).  This is the acceptance check that the
  // two-class model explains class-tagged runs at least as well.
  const ExecReport r = two_class_report();
  const MeasuredHierLogP hier = measure(r, topo());
  const MeasuredLogP flat = measure(r);

  const auto residual = [](double fitted, double truth) {
    return fitted > truth ? fitted - truth : truth - fitted;
  };
  EXPECT_LE(residual(hier.intra.L_ns, kIntraL),
            residual(flat.L_ns, kIntraL));
  EXPECT_LE(residual(hier.cross.L_ns, kCrossL),
            residual(flat.L_ns, kCrossL));
  EXPECT_LE(residual(hier.intra.o_ns, kIntraO),
            residual(flat.o_ns, kIntraO));
  EXPECT_LE(residual(hier.cross.o_ns, kCrossO),
            residual(flat.o_ns, kCrossO));
  // And strictly better on the latency split (the classes differ 4x).
  EXPECT_LT(residual(hier.cross.L_ns, kCrossL),
            residual(flat.L_ns, kCrossL));
}

TEST(Measure, AsHierParamsQuantizesPerClassWithFallback) {
  const HierParams t = topo();
  const MeasuredHierLogP fit = measure(two_class_report(), t);
  const HierParams fitted = fit.as_hier_params(10.0, t);
  EXPECT_EQ(fitted.intra.P, 4);
  EXPECT_EQ(fitted.intra.L, 10);
  EXPECT_EQ(fitted.intra.o, 2);
  EXPECT_EQ(fitted.intra.g, 5);
  EXPECT_EQ(fitted.cross.P, 2);
  EXPECT_EQ(fitted.cross.L, 40);
  EXPECT_EQ(fitted.cross.o, 4);
  EXPECT_EQ(fitted.cluster_of, t.cluster_of);

  // A run that never crossed clusters leaves the cross class untouched.
  ExecReport intra_only;
  intra_only.params = Params{4, 1, 0, 1};
  intra_only.events.resize(4);
  add_send(intra_only, 0, 1, 0, kIntraO);
  add_recv(intra_only, 1, 0, kIntraL, kIntraO);
  const MeasuredHierLogP partial = measure(intra_only, t);
  EXPECT_EQ(partial.cross.latency_samples, 0u);
  const HierParams back = partial.as_hier_params(10.0, t);
  EXPECT_EQ(back.cross, t.cross);
}

}  // namespace
}  // namespace logpc::exec
