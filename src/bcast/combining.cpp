#include "bcast/combining.hpp"

#include <stdexcept>

namespace logpc::bcast {

Schedule CombiningSchedule::timing_view() const {
  Schedule s(params, 1);
  for (ProcId p = 0; p < params.P; ++p) s.add_initial(0, p, 0);
  for (const auto& op : sends) s.add_send(op);
  s.sort();
  return s;
}

CombiningSchedule combining_broadcast(Time T, Time L) {
  if (L < 1) throw std::invalid_argument("combining_broadcast: L >= 1");
  if (T < 0) throw std::invalid_argument("combining_broadcast: T >= 0");
  const Fib fib(L);
  const Count P = fib.f(T);
  if (P > Count{1} << 22) {
    throw std::invalid_argument("combining_broadcast: f_T too large");
  }
  CombiningSchedule cs;
  cs.params = Params::postal(static_cast<int>(P), L);
  cs.T = T;
  // Steps j = 0 .. T-L: processor i sends its current value to
  // i + f_{j+L-1} (mod P).  (For j = 0 the offset is f_{L-1} = 1.)
  for (Time j = 0; j + L <= T; ++j) {
    const Count offset = fib.f(j + L - 1) % P;
    for (ProcId i = 0; i < cs.params.P; ++i) {
      const auto to = static_cast<ProcId>(
          (static_cast<Count>(i) + offset) % P);
      if (to == i) continue;  // P == 1 degenerate case
      cs.sends.push_back(SendOp{j, i, to, 0, kNever});
    }
  }
  return cs;
}

Time combining_time_for(int P, Time L) {
  if (P < 1) throw std::invalid_argument("combining_time_for: P >= 1");
  return shared_B_of_P(L, static_cast<Count>(P));
}

}  // namespace logpc::bcast
