#include "runtime/warmup.hpp"

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <unordered_set>

#include "logp/fib.hpp"
#include "obs/trace_recorder.hpp"

namespace logpc::runtime {

std::vector<PlanKey> WarmupGrid::keys() const {
  std::vector<PlanKey> out;
  std::unordered_set<PlanKey, PlanKeyHash> seen;
  for (const Problem problem : problems) {
    for (const Params& machine : machines) {
      for (const std::int64_t k : ks) {
        PlanKey key;
        try {
          key = PlanKey::make(problem, machine, k);
        } catch (const std::invalid_argument&) {
          continue;  // infeasible grid point (e.g. k < 1, bad machine)
        }
        if (seen.insert(key).second) out.push_back(key);
      }
    }
  }
  return out;
}

WarmupReport warmup(Planner& planner, const std::vector<PlanKey>& keys,
                    unsigned threads) {
  WarmupReport report;
  report.requested = keys.size();
  if (keys.empty()) return report;

  obs::Span warmup_span("warmup", "warmup");
  if (warmup_span.active()) {
    warmup_span.set_arg(std::to_string(keys.size()) + " keys");
  }

  // Share one Fibonacci table per postal latency across all workers before
  // they race: the builders' B(P)/k* queries then hit warm shared tables.
  std::set<Time> latencies;
  int max_P = 1;
  for (const PlanKey& key : keys) {
    if (key.params.is_postal()) latencies.insert(key.params.L);
    max_P = std::max(max_P, key.params.P);
  }
  for (const Time L : latencies) {
    (void)shared_B_of_P(L, static_cast<Count>(max_P));
  }

  if (threads == 0) threads = std::thread::hardware_concurrency();
  threads = std::clamp<unsigned>(threads, 1,
                                 static_cast<unsigned>(keys.size()));

  const std::uint64_t builds_before = planner.builds();
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> planned{0};
  std::atomic<std::size_t> failed{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= keys.size()) return;
      // One span per grid point: warmed keys show up as slices on the
      // worker's trace row, already-cached ones as near-zero blips.
      obs::Span span("warmup.plan", "warmup");
      if (span.active()) span.set_arg(keys[i].to_string());
      try {
        (void)planner.plan(keys[i]);
        planned.fetch_add(1, std::memory_order_relaxed);
      } catch (...) {
        failed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  report.planned = planned.load();
  report.failed = failed.load();
  report.built = planner.builds() - builds_before;
  return report;
}

WarmupReport warmup(Planner& planner, const WarmupGrid& grid,
                    unsigned threads) {
  return warmup(planner, grid.keys(), threads);
}

}  // namespace logpc::runtime
