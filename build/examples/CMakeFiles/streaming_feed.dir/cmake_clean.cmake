file(REMOVE_RECURSE
  "CMakeFiles/streaming_feed.dir/streaming_feed.cpp.o"
  "CMakeFiles/streaming_feed.dir/streaming_feed.cpp.o.d"
  "streaming_feed"
  "streaming_feed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_feed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
