#include "api/communicator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/measure.hpp"
#include "exec_test_util.hpp"
#include "sum/executor.hpp"

/// api::Communicator's plan-then-execute entry points, including the
/// concurrent mixed workload the TSan suite runs: N threads planning and
/// executing different collectives against one shared Planner, with
/// byte-exact assertions on every result.

namespace logpc::api {
namespace {

namespace tu = exec::testutil;
using exec::Bytes;

TEST(CommunicatorExec, RunBroadcastIsByteExact) {
  const Communicator comm(Params{8, 4, 1, 2});
  const Bytes payload = tu::of_str("broadcast me");
  const exec::ExecReport report =
      comm.run_broadcast(std::span<const std::byte>(payload));
  for (ProcId p = 0; p < comm.size(); ++p) {
    EXPECT_EQ(report.item_at(p, 0), payload);
  }
  EXPECT_EQ(report.label, "bcast");
  EXPECT_EQ(report.predicted_makespan, comm.bcast_time());
}

TEST(CommunicatorExec, RunBroadcastNonZeroRoot) {
  const Communicator comm(Params{9, 3, 1, 2});
  const Bytes payload = tu::of_str("rooted at five");
  const exec::ExecReport report =
      comm.run_broadcast(std::span<const std::byte>(payload), /*root=*/5);
  for (ProcId p = 0; p < comm.size(); ++p) {
    EXPECT_EQ(report.item_at(p, 0), payload);
  }
}

TEST(CommunicatorExec, RunAllgatherGivesEveryoneEverything) {
  const Communicator comm(Params{8, 6, 1, 2});
  std::vector<Bytes> contributions;
  for (int p = 0; p < comm.size(); ++p) {
    contributions.push_back(tu::of_str("from-" + std::to_string(p)));
  }
  const exec::ExecReport report = comm.run_allgather(contributions);
  for (ProcId p = 0; p < comm.size(); ++p) {
    for (ProcId q = 0; q < comm.size(); ++q) {
      EXPECT_EQ(report.item_at(p, q),
                contributions[static_cast<std::size_t>(q)]);
    }
  }
  EXPECT_EQ(report.predicted_makespan, comm.alltoall_time(1));
}

TEST(CommunicatorExec, RunReduceMatchesPlanReplay) {
  const Communicator comm(Params{8, 4, 1, 2});
  std::vector<Bytes> values;
  std::vector<std::string> strings;
  for (int p = 0; p < comm.size(); ++p) {
    strings.push_back("v" + std::to_string(p) + ";");
    values.push_back(tu::of_str(strings.back()));
  }
  const std::string expected = bcast::execute_reduction<std::string>(
      comm.reduce(0), strings,
      [](const std::string& a, const std::string& b) { return a + b; });
  const exec::ExecReport report =
      comm.run_reduce(values, tu::concat(), /*root=*/0);
  EXPECT_EQ(tu::to_str(report.folded_at(0)), expected);
}

TEST(CommunicatorExec, RunReduceOperandsMatchesReferenceExecutor) {
  const Communicator comm(Params{8, 4, 1, 2});
  const Count n = 40;
  const sum::SummationPlan plan = comm.reduce_operands(n);
  const auto layout = sum::operand_layout(plan);
  std::vector<std::vector<Bytes>> operands(plan.procs.size());
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < layout.size(); ++i) {
    for (std::size_t j = 0; j < layout[i].total(); ++j) {
      operands[i].push_back(tu::of_u64(v++));
    }
  }
  const exec::ExecReport report =
      comm.run_reduce_operands(n, operands, tu::add_u64());
  EXPECT_EQ(tu::to_u64(report.folded_at(plan.root)),
            static_cast<std::uint64_t>(sum::execute_iota_sum(plan)));
}

/// The TSan acceptance scenario: 8 threads, each running a different mix of
/// plan+execute collectives against ONE shared planner (and its shared
/// cache), with per-thread engines so executions genuinely overlap.
TEST(CommunicatorExec, ConcurrentMixedWorkloadsStayByteExact) {
  const auto planner = std::make_shared<runtime::Planner>();
  constexpr int kThreads = 8;
  constexpr int kIters = 6;
  std::atomic<int> failures{0};

  auto check = [&](bool ok) {
    if (!ok) failures.fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &planner, &check] {
      // Two machine shapes so threads both share and miss cache entries.
      const Params machine =
          t % 2 == 0 ? Params{8, 4, 1, 2} : Params{9, 6, 1, 3};
      const Communicator comm(machine, planner);
      exec::Engine engine;  // per-thread: executions overlap for real
      for (int i = 0; i < kIters; ++i) {
        switch ((t + i) % 4) {
          case 0: {
            const Bytes payload =
                tu::of_str("t" + std::to_string(t) + "i" + std::to_string(i));
            const auto r = comm.run_broadcast(
                std::span<const std::byte>(payload), 0, &engine);
            for (ProcId p = 0; p < comm.size(); ++p) {
              check(r.item_at(p, 0) == payload);
            }
            break;
          }
          case 1: {
            std::vector<Bytes> contributions;
            for (int p = 0; p < comm.size(); ++p) {
              contributions.push_back(
                  tu::of_u64(static_cast<std::uint64_t>(t * 1000 + p)));
            }
            const auto r = comm.run_allgather(contributions, &engine);
            for (ProcId p = 0; p < comm.size(); ++p) {
              for (ProcId q = 0; q < comm.size(); ++q) {
                check(r.item_at(p, q) ==
                      contributions[static_cast<std::size_t>(q)]);
              }
            }
            break;
          }
          case 2: {
            std::vector<Bytes> values;
            std::uint64_t total = 0;
            for (int p = 0; p < comm.size(); ++p) {
              const auto v = static_cast<std::uint64_t>(t + p * p);
              values.push_back(tu::of_u64(v));
              total += v;
            }
            const auto r =
                comm.run_reduce(values, tu::add_u64(), 0, &engine);
            check(tu::to_u64(r.folded_at(0)) == total);
            break;
          }
          default: {
            const Count n = 24 + static_cast<Count>(i);
            const sum::SummationPlan plan = comm.reduce_operands(n);
            const auto layout = sum::operand_layout(plan);
            std::vector<std::vector<Bytes>> operands(plan.procs.size());
            std::uint64_t v = 0;
            for (std::size_t a = 0; a < layout.size(); ++a) {
              for (std::size_t b = 0; b < layout[a].total(); ++b) {
                operands[a].push_back(tu::of_u64(v++));
              }
            }
            const auto r =
                comm.run_reduce_operands(n, operands, tu::add_u64(), &engine);
            check(tu::to_u64(r.folded_at(plan.root)) ==
                  static_cast<std::uint64_t>(sum::execute_iota_sum(plan)));
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

/// The shared engine serializes concurrent callers rather than corrupting
/// state: same workload, one process-wide engine.
TEST(CommunicatorExec, SharedEngineHandlesConcurrentCallers) {
  const auto planner = std::make_shared<runtime::Planner>();
  constexpr int kThreads = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &planner, &failures] {
      const Communicator comm(Params{8, 4, 1, 2}, planner);
      const Bytes payload = tu::of_str("shared-" + std::to_string(t));
      for (int i = 0; i < 4; ++i) {
        const auto r =
            comm.run_broadcast(std::span<const std::byte>(payload));
        for (ProcId p = 0; p < comm.size(); ++p) {
          if (!(r.item_at(p, 0) == payload)) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace logpc::api
