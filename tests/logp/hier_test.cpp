#include "logp/hier.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace logpc {
namespace {

const Params kIntra{0, 2, 1, 2};    // P overwritten by uniform()
const Params kCross{0, 16, 3, 10};

TEST(HierParams, UniformBuildsBalancedContiguousBlocks) {
  const HierParams h = HierParams::uniform(10, 3, kIntra, kCross);
  EXPECT_EQ(h.P(), 10);
  EXPECT_EQ(h.num_clusters(), 3);
  EXPECT_EQ(h.intra.P, 10);
  EXPECT_EQ(h.cross.P, 3);
  // 10 ranks over 3 clusters: the first 10 % 3 = 1 block holds the extra.
  EXPECT_EQ(h.members(0), (std::vector<ProcId>{0, 1, 2, 3}));
  EXPECT_EQ(h.members(1), (std::vector<ProcId>{4, 5, 6}));
  EXPECT_EQ(h.members(2), (std::vector<ProcId>{7, 8, 9}));
  EXPECT_EQ(h.leader(0), 0);
  EXPECT_EQ(h.leader(1), 4);
  EXPECT_EQ(h.leader(2), 7);
  EXPECT_TRUE(h.valid());
  EXPECT_TRUE(h.is_uniform_blocks());
}

TEST(HierParams, UniformRejectsIllFormedShapes) {
  EXPECT_THROW(HierParams::uniform(0, 1, kIntra, kCross),
               std::invalid_argument);
  EXPECT_THROW(HierParams::uniform(8, 0, kIntra, kCross),
               std::invalid_argument);
  EXPECT_THROW(HierParams::uniform(8, 9, kIntra, kCross),
               std::invalid_argument);
  Params bad = kIntra;
  bad.L = 0;  // the model requires L >= 1
  EXPECT_THROW(HierParams::uniform(8, 2, bad, kCross),
               std::invalid_argument);
}

TEST(HierParams, LinkSelectsClassByClusterMembership) {
  const HierParams h = HierParams::uniform(8, 2, kIntra, kCross);
  EXPECT_TRUE(h.same_cluster(0, 3));
  EXPECT_FALSE(h.same_cluster(3, 4));
  EXPECT_EQ(&h.link(1, 2), &h.intra);
  EXPECT_EQ(&h.link(1, 6), &h.cross);
  EXPECT_EQ(h.transfer_time(1, 2), h.intra.transfer_time());
  EXPECT_EQ(h.transfer_time(1, 6), h.cross.transfer_time());
}

TEST(HierParams, FlatIsElementWiseMaxOfBothClasses) {
  const HierParams h = HierParams::uniform(8, 2, kIntra, kCross);
  const Params flat = h.flat();
  EXPECT_EQ(flat.P, 8);
  EXPECT_EQ(flat.L, 16);
  EXPECT_EQ(flat.o, 3);
  EXPECT_EQ(flat.g, 10);
}

TEST(HierParams, ValidRejectsBrokenClusterMaps) {
  HierParams h = HierParams::uniform(6, 2, kIntra, kCross);
  ASSERT_TRUE(h.valid());

  HierParams gap = h;
  gap.cluster_of = {0, 0, 0, 0, 0, 0};  // cluster 1 empty
  EXPECT_FALSE(gap.valid());
  EXPECT_THROW(gap.require_valid(), std::invalid_argument);

  HierParams out_of_range = h;
  out_of_range.cluster_of[5] = 7;
  EXPECT_FALSE(out_of_range.valid());

  HierParams short_map = h;
  short_map.cluster_of.pop_back();
  EXPECT_FALSE(short_map.valid());
}

TEST(HierParams, IsUniformBlocksRejectsOtherSpellings) {
  HierParams h = HierParams::uniform(8, 2, kIntra, kCross);
  ASSERT_TRUE(h.is_uniform_blocks());
  // Same sizes, but interleaved rather than contiguous.
  h.cluster_of = {0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_TRUE(h.valid());
  EXPECT_FALSE(h.is_uniform_blocks());
  // Contiguous but unbalanced the wrong way (extra rank in a late block).
  HierParams skew = HierParams::uniform(9, 2, kIntra, kCross);
  skew.cluster_of = {0, 0, 0, 0, 1, 1, 1, 1, 1};
  EXPECT_TRUE(skew.valid());
  EXPECT_FALSE(skew.is_uniform_blocks());
}

TEST(HierParams, DegenerateShapesAreStillValidMachines) {
  const HierParams one = HierParams::uniform(5, 1, kIntra, kCross);
  EXPECT_EQ(one.num_clusters(), 1);
  EXPECT_TRUE(one.same_cluster(0, 4));

  const HierParams singletons = HierParams::uniform(5, 5, kIntra, kCross);
  EXPECT_EQ(singletons.num_clusters(), 5);
  EXPECT_FALSE(singletons.same_cluster(0, 1));
  EXPECT_EQ(singletons.leader(3), 3);
}

TEST(HierParams, StreamsReadably) {
  const HierParams h = HierParams::uniform(8, 2, kIntra, kCross);
  std::ostringstream os;
  os << h;
  EXPECT_EQ(os.str(), h.to_string());
  EXPECT_NE(h.to_string().find("clusters=2"), std::string::npos);
}

}  // namespace
}  // namespace logpc
