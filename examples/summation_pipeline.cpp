/// Summation pipeline: distribute n operands the way the paper prescribes
/// (Section 5) and compute a global reduction - here with a non-commutative
/// operator (string concatenation) to show the renumbering footnote in
/// action, then with doubles for a realistic dot-product-style reduction.
///
///   ./summation_pipeline [n] [P] [L] [o] [g]

#include <cstdlib>
#include <iostream>
#include <numeric>
#include <random>
#include <string>

#include "sum/executor.hpp"
#include "sum/lazy.hpp"

int main(int argc, char** argv) {
  using namespace logpc;

  Count n = 500;
  Params params{16, 4, 1, 3};
  if (argc >= 2) n = static_cast<Count>(std::atoll(argv[1]));
  if (argc >= 3) params.P = std::atoi(argv[2]);
  if (argc >= 4) params.L = std::atol(argv[3]);
  if (argc >= 5) params.o = std::atol(argv[4]);
  if (argc >= 6) params.g = std::atol(argv[5]);
  params.require_valid();

  // 1. How long must the machine run to sum n operands?
  const Time t = sum::min_time_for_operands(params, n);
  std::cout << "summing n = " << n << " operands on " << params << "\n"
            << "minimum completion time: t = " << t << " cycles\n";

  // 2. Build the optimal plan for that deadline; it may hold extra slots.
  const auto plan = sum::optimal_summation(params, t);
  std::cout << "plan uses " << plan.procs.size() << " processors and has "
            << plan.total_operands << " operand slots (extra slots are\n"
            << "padded with the operator identity)\n";
  if (!sum::is_valid_plan(plan)) {
    std::cerr << "plan failed validation:\n"
              << sum::check_plan(plan).summary() << "\n";
    return 1;
  }

  // 3. The operand layout tells the application where to place its data.
  const auto layout = sum::operand_layout(plan);
  std::cout << "\noperand distribution:\n";
  for (const auto& pl : layout) {
    std::cout << "  P" << pl.proc << ": " << pl.total() << " operands in "
              << pl.chunk_sizes.size() << " chunk(s)\n";
  }

  // 4. Numeric reduction.
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  std::vector<std::vector<double>> values;
  double expected = 0.0;
  Count fed = 0;
  for (const auto& pl : layout) {
    std::vector<double> mine(pl.total(), 0.0);
    for (auto& v : mine) {
      if (fed++ < n) {
        v = dist(rng);
        expected += v;
      }
    }
    values.push_back(std::move(mine));
  }
  const double total = sum::execute_summation<double>(
      plan, values,
      [](const double& a, const double& b) { return a + b; });
  std::cout << "\nnumeric sum  : " << total << " (expected " << expected
            << ", diff " << total - expected << ")\n";

  // 5. Non-commutative check: label operands by combination order and
  // concatenate - the result must read 0, 1, 2, ... proving the plan
  // applies an associative operator over a contiguous renumbering.
  const auto order = sum::combination_order(plan);
  std::vector<std::vector<std::string>> labels(layout.size());
  for (std::size_t i = 0; i < layout.size(); ++i) {
    labels[i].resize(layout[i].total());
  }
  std::vector<std::size_t> plan_index(
      static_cast<std::size_t>(params.P), SIZE_MAX);
  for (std::size_t i = 0; i < plan.procs.size(); ++i) {
    plan_index[static_cast<std::size_t>(plan.procs[i].proc)] = i;
  }
  for (std::size_t r = 0; r < order.size(); ++r) {
    labels[plan_index[static_cast<std::size_t>(order[r].first)]]
          [order[r].second] = std::to_string(r) + ",";
  }
  const std::string concat = sum::execute_summation<std::string>(
      plan, labels,
      [](const std::string& a, const std::string& b) { return a + b; });
  const bool ordered = [&] {
    std::string want;
    for (std::size_t r = 0; r < order.size(); ++r) {
      want += std::to_string(r) + ",";
    }
    return want == concat;
  }();
  std::cout << "non-commutative fold is order-exact: "
            << (ordered ? "yes" : "NO") << "\n";

  // 6. Compare with doing it on one processor.
  std::cout << "\nspeedup vs single processor: " << (n - 1) << " -> " << t
            << " cycles ("
            << static_cast<double>(n - 1) / static_cast<double>(t)
            << "x)\n";
  return ordered ? 0 : 1;
}
