file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_buffered.dir/bench_fig5_buffered.cpp.o"
  "CMakeFiles/bench_fig5_buffered.dir/bench_fig5_buffered.cpp.o.d"
  "bench_fig5_buffered"
  "bench_fig5_buffered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_buffered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
