#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "logp/time.hpp"

/// \file fault.hpp
/// Deterministic fault injection for the execution engine.
///
/// A FaultSpec names the faults to inject into one engine run — message
/// delays, in-transit message drops, slow workers, one dead worker — and a
/// seed.  The Injector turns the spec into *pure decision functions*: every
/// decision is a hash of (seed, rank, link, sequence number, attempt), never
/// of wall-clock time or thread interleaving, so two runs of the same
/// program with the same spec inject exactly the same faults and produce
/// the same per-rank fault event log however the OS schedules the threads.
///
/// The injector only decides; the engine (exec/engine.cpp) applies the
/// faults and records a FaultEvent per injected fault into
/// ExecReport::fault_events.  Recovery — acked delivery with bounded
/// retry/backoff, heartbeat failure detection, and re-planning around a
/// dead rank — lives in the engine and api::Communicator::run_broadcast_ft;
/// this file is deliberately mechanism-free so the fault model stays
/// testable in isolation.

namespace logpc::fault {

enum class FaultKind : std::uint8_t {
  kDelay,  ///< a send stalled before entering the network
  kDrop,   ///< a delivery discarded in transit (sender must retransmit)
  kSlow,   ///< a worker stalling before every instruction
  kDead,   ///< a worker stopped executing mid-stream
};

[[nodiscard]] std::string_view fault_kind_name(FaultKind k);

/// One injected fault, as logged by the engine.  `seq` is the message
/// sequence number for kDelay/kDrop and the instruction index for
/// kSlow/kDead.  Decisions are deterministic, so per-rank event sequences
/// compare equal across same-seed runs (the fault tests assert this).
struct FaultEvent {
  FaultKind kind = FaultKind::kDelay;
  ProcId rank = kNoProc;  ///< the rank the fault was injected at
  ProcId peer = kNoProc;  ///< the other end of the link (kNoProc for kSlow/kDead)
  std::uint64_t seq = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// What to inject.  Probabilities are per decision point; ranks refer to
/// the processor indices of the program being run (after a re-plan around a
/// failure, remap with remap_without()).
struct FaultSpec {
  std::uint64_t seed = 0;

  /// Each first transmission of a message is delayed `delay_ns` with
  /// probability `delay_prob` (retransmissions are never delayed, so the
  /// injected-event log stays timing-independent).
  double delay_prob = 0.0;
  std::uint64_t delay_ns = 0;

  /// Each delivery attempt is discarded in transit with probability
  /// `drop_prob`, up to `max_drops_per_message` consecutive discards of one
  /// message (the bound keeps every run terminating; the engine's retry
  /// budget must exceed it — Engine::Options::Recovery::max_retries does by
  /// default).
  double drop_prob = 0.0;
  int max_drops_per_message = 3;

  /// These ranks stall `slow_stall_ns` before every instruction.  A slow
  /// rank keeps its heartbeat moving, so the failure detector never
  /// escalates it — slowness degrades latency, not membership.
  std::vector<ProcId> slow_ranks;
  std::uint64_t slow_stall_ns = 0;

  /// This rank executes `dead_after_instrs` instructions and then stops:
  /// no more sends, receives, acks, or heartbeats — a crash, as seen from
  /// every other rank.  kNoProc disables.
  ProcId dead_rank = kNoProc;
  std::size_t dead_after_instrs = 0;

  /// True iff any knob is set (the engine skips all fault hooks otherwise).
  [[nodiscard]] bool any() const {
    return delay_prob > 0.0 || drop_prob > 0.0 ||
           (!slow_ranks.empty() && slow_stall_ns > 0) || dead_rank != kNoProc;
  }
};

/// Rewrites `spec` for a program on one fewer rank: `removed` (in the
/// current program's rank space) leaves, ranks above it shift down by one.
/// A dead_rank equal to `removed` is cleared — that fault already fired.
/// Used by the recovery loop between a rank failure and the degraded
/// re-run.
[[nodiscard]] FaultSpec remap_without(const FaultSpec& spec, ProcId removed);

/// The decision oracle: stateless and thread-safe; every method is a pure
/// function of its arguments and the spec's seed.
class Injector {
 public:
  explicit Injector(FaultSpec spec);

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }

  /// Nanoseconds to stall the first transmission of message `seq` on
  /// `link`; 0 = no delay.
  [[nodiscard]] std::uint64_t send_delay_ns(ProcId from, std::int32_t link,
                                            std::uint64_t seq) const;

  /// Whether the receiver discards the `attempt`-th arrival (1-based) of
  /// message `seq` on `link`.  Always false once `attempt` exceeds
  /// max_drops_per_message, so a retransmitting sender always gets through.
  [[nodiscard]] bool drop_delivery(ProcId to, std::int32_t link,
                                   std::uint64_t seq,
                                   std::uint64_t attempt) const;

  [[nodiscard]] bool is_slow(ProcId rank) const;
  [[nodiscard]] std::uint64_t slow_stall_ns() const {
    return spec_.slow_stall_ns;
  }

  /// Whether `rank` is dead by the time it would execute instruction
  /// `instr_index` (0-based position in its stream).
  [[nodiscard]] bool dies_at(ProcId rank, std::size_t instr_index) const {
    return rank == spec_.dead_rank && instr_index >= spec_.dead_after_instrs;
  }

 private:
  FaultSpec spec_;
  std::uint64_t slow_mask_ = 0;  ///< ranks < 64 fast path
};

}  // namespace logpc::fault
