#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "sim/engine.hpp"
#include "validate/checker.hpp"

/// Fuzz the engine with random reactive programs: whatever the programs
/// request, the schedule the engine emits must satisfy every LogP rule the
/// engine is responsible for (sender-side gaps, overhead serialization,
/// latency, holdings).  Receiver-side conflicts cannot arise because the
/// engine never lets two arrivals share a cycle at one processor... they
/// can: two senders may target one processor in the same step; the strict
/// semantics then place both receive overheads at the same cycle.  The
/// fuzz therefore checks with the same relaxations real baselines use and
/// separately asserts the sender-side rules always hold.

namespace logpc::sim {
namespace {

// Forwards every newly available item to a pseudo-random subset of peers.
class RandomGossip : public Program {
 public:
  RandomGossip(std::uint64_t seed, int P, int fanout)
      : rng_(seed), P_(P), fanout_(fanout) {}

  void on_item(Context& ctx, ItemId item) override {
    std::uniform_int_distribution<int> pick(0, P_ - 1);
    for (int i = 0; i < fanout_; ++i) {
      const auto target = static_cast<ProcId>(pick(rng_));
      if (target != ctx.self()) ctx.send(target, item);
    }
  }

 private:
  std::mt19937_64 rng_;
  int P_;
  int fanout_;
};

class EngineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineFuzz, EmittedSchedulesObeySenderSideRules) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int> dP(2, 12);
  std::uniform_int_distribution<Time> dL(1, 9);
  std::uniform_int_distribution<Time> dO(0, 3);
  std::uniform_int_distribution<Time> dG(1, 6);
  std::uniform_int_distribution<int> dK(1, 3);
  std::uniform_int_distribution<int> dF(1, 3);
  std::size_t total_messages = 0;
  for (int round = 0; round < 8; ++round) {
    const Params params{dP(rng), dL(rng), dO(rng),
                        std::max(dG(rng), dO(rng))};
    const int k = dK(rng);
    Engine engine(params, k);
    for (ProcId p = 0; p < params.P; ++p) {
      engine.set_program(
          p, std::make_unique<RandomGossip>(rng(), params.P, dF(rng)));
    }
    for (ItemId i = 0; i < k; ++i) {
      engine.place(i, static_cast<ProcId>(i % params.P),
                   static_cast<Time>(i));
    }
    const auto run = engine.run(400);
    // Sender-side rules are entirely the engine's responsibility.
    validate::CheckOptions lax;
    lax.forbid_duplicate_receive = false;
    lax.require_complete = false;
    lax.allow_duplex_overhead = true;  // receiver side judged separately
    const auto verdict = validate::check(run.schedule, lax);
    bool sender_clean = true;
    for (const auto& v : verdict.violations) {
      if (v.rule == validate::Rule::kSendGap ||
          v.rule == validate::Rule::kItemNotHeld ||
          v.rule == validate::Rule::kLatency ||
          v.rule == validate::Rule::kSelfSend ||
          v.rule == validate::Rule::kBadProcessor ||
          v.rule == validate::Rule::kBadItem) {
        sender_clean = false;
      }
    }
    EXPECT_TRUE(sender_clean)
        << params.to_string() << " seed=" << GetParam() << "\n"
        << verdict.summary();
    total_messages += run.messages;
  }
  // A tiny machine can roll all-self targets in one round, but not in all
  // eight.
  EXPECT_GE(total_messages, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5, 6,
                                                          7, 8));

}  // namespace
}  // namespace logpc::sim
