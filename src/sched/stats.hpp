#pragma once

#include <map>
#include <vector>

#include "sched/schedule.hpp"

/// \file stats.hpp
/// Aggregate schedule statistics: utilization, load balance, and traffic
/// shape.  Used by the benches and examples to characterize schedules
/// beyond their completion time.

namespace logpc {

struct ScheduleStats {
  Time makespan = 0;           ///< last availability event
  std::size_t messages = 0;    ///< total transmissions
  Time total_overhead = 0;     ///< processor cycles spent in o-windows
  double avg_busy_fraction = 0.0;  ///< mean per-processor busy/makespan
  double max_busy_fraction = 0.0;  ///< the busiest processor's fraction
  int max_sends_per_proc = 0;
  int max_recvs_per_proc = 0;
  /// messages in flight, sampled at every event boundary: worst case
  /// network occupancy.
  int peak_in_flight = 0;
  /// per send-distance (to - from mod P) message counts: the traffic
  /// pattern's shape (e.g. all-to-all rotations show a flat histogram).
  std::map<int, std::size_t> distance_histogram;
};

/// Computes the statistics in one pass.  Empty schedules yield zeros.
[[nodiscard]] ScheduleStats schedule_stats(const Schedule& s);

/// Convenience: per-processor (sends, receives) counts.
[[nodiscard]] std::vector<std::pair<int, int>> traffic_per_proc(
    const Schedule& s);

}  // namespace logpc
