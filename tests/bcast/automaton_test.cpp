#include "bcast/automaton.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace logpc::bcast {
namespace {

// Section 3.2's running example: L = 3, t = 7, the H5 block (root: r = 5,
// d = 0).  The paper derives, via its path automaton, exactly four words
// satisfying the correctness restriction: cccc, acab, abca, abbb.
TEST(Automaton, H5BlockReproducesPaperWordSet) {
  const WordContext ctx = WordContext::standard(7, 3, 5, 0);
  const auto words = enumerate_legal_words(ctx);
  std::set<std::string> names;
  for (const auto& w : words) names.insert(word_to_string(w));
  EXPECT_EQ(names,
            (std::set<std::string>{"cccc", "acab", "abca", "abbb"}));
}

TEST(Automaton, PaperChosenWordsAreLegal) {
  // The paper's complete example: H5 -> acab, E2 -> a, D1 -> (empty).
  EXPECT_TRUE(word_is_legal(WordContext::standard(7, 3, 5, 0),
                            Word{0, 2, 0, 1}));  // acab
  EXPECT_TRUE(word_is_legal(WordContext::standard(7, 3, 2, 3),
                            Word{0}));  // E2: a
  EXPECT_TRUE(word_is_legal(WordContext::standard(7, 3, 1, 4),
                            Word{}));  // D1: empty word
}

TEST(Automaton, PaperExcludedPatternsAreIllegal) {
  // "ruling out any word that starts with b or has a in the second
  // position" (for the H5 block).
  const WordContext h5 = WordContext::standard(7, 3, 5, 0);
  for (const std::string_view s : {"baaa", "bbbb", "bcab"}) {
    Word w;
    for (const char c : s) w.push_back(c - 'a');
    EXPECT_FALSE(word_is_legal(h5, w)) << s;
  }
  // a in the second position: the a at +2 collides with the H at 0.
  EXPECT_FALSE(word_is_legal(h5, Word{0, 0, 1, 2}));
  EXPECT_FALSE(word_is_legal(h5, Word{2, 0, 2, 2}));
}

TEST(Automaton, WrongLengthIsIllegal) {
  const WordContext ctx = WordContext::standard(7, 3, 5, 0);
  EXPECT_FALSE(word_is_legal(ctx, Word{0, 2, 0}));
  EXPECT_FALSE(word_is_legal(ctx, Word{0, 2, 0, 1, 0}));
}

TEST(Automaton, OutOfAlphabetLetterIsIllegal) {
  const WordContext ctx = WordContext::standard(7, 3, 2, 3);
  EXPECT_FALSE(word_is_legal(ctx, Word{3}));
  EXPECT_FALSE(word_is_legal(ctx, Word{-1}));
}

TEST(Automaton, SizeOneBlockHasExactlyTheEmptyWord) {
  for (Time d = 0; d <= 6; ++d) {
    const auto words = enumerate_legal_words(WordContext::standard(9, 4, 1, d));
    ASSERT_EQ(words.size(), 1u) << "d=" << d;
    EXPECT_TRUE(words[0].empty());
  }
}

TEST(Automaton, LegalityEquivalentToDistinctResidues) {
  // Cross-check word_is_legal against a direct simulation: unroll a
  // member's periodic reception pattern and look for duplicate items.
  const Time t = 9;
  const Time L = 4;
  for (const int r : {2, 3, 4, 5}) {
    const Time d = t - L - r + 1;
    if (d < 0) continue;
    const WordContext ctx = WordContext::standard(t, L, r, d);
    const auto words = enumerate_legal_words(ctx);
    for (const auto& w : words) {
      // Simulate 4 periods; items received must be unique.
      std::set<Time> items;
      for (int cycle = 0; cycle < 4; ++cycle) {
        for (int p = 0; p < r; ++p) {
          const Time delta =
              p == 0 ? d : t - w[static_cast<std::size_t>(p - 1)];
          const Time step = cycle * r + p;
          EXPECT_TRUE(items.insert(step - delta).second)
              << "duplicate item in word " << word_to_string(w);
        }
      }
    }
  }
}

TEST(Automaton, EnumerationMatchesArrangement) {
  // Every enumerated word's letter multiset must be arrangeable, and the
  // arrangement must be legal.
  const WordContext ctx = WordContext::standard(8, 3, 4, 1);
  const auto words = enumerate_legal_words(ctx);
  ASSERT_FALSE(words.empty());
  for (const auto& w : words) {
    std::vector<int> counts(3, 0);
    for (const int l : w) ++counts[static_cast<std::size_t>(l)];
    const auto arranged = arrange_letters(ctx, counts);
    ASSERT_TRUE(arranged.has_value());
    EXPECT_TRUE(word_is_legal(ctx, *arranged));
  }
}

TEST(Automaton, ArrangeRejectsWrongTotals) {
  const WordContext ctx = WordContext::standard(7, 3, 5, 0);
  EXPECT_EQ(arrange_letters(ctx, {1, 1, 1}), std::nullopt);  // 3 != r-1
  EXPECT_EQ(arrange_letters(ctx, {5, 0, 0}), std::nullopt);  // 5 != r-1
  EXPECT_THROW(arrange_letters(ctx, {1, 1}), std::invalid_argument);
  EXPECT_THROW(arrange_letters(ctx, {4, -1, 1}), std::invalid_argument);
}

TEST(Automaton, ArrangeFindsCccc) {
  // cccc IS residue-legal (the paper excludes it by letter supply, not by
  // the automaton).
  const WordContext ctx = WordContext::standard(7, 3, 5, 0);
  const auto w = arrange_letters(ctx, {0, 0, 4});
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(word_to_string(*w), "cccc");
}

TEST(Automaton, ArrangeRejectsImpossibleMultiset) {
  // For H5, any word with b in position 1 is illegal, and the only words
  // are {cccc, acab, abca, abbb}: multiset {b,b,b,b} is impossible.
  const WordContext ctx = WordContext::standard(7, 3, 5, 0);
  EXPECT_EQ(arrange_letters(ctx, {0, 4, 0}), std::nullopt);
}

TEST(Automaton, BufferedVariantShiftsResidue) {
  // A wait-1 'a' behaves like a delay t+1 role: WordContext with explicit
  // delays must agree with the standard one shifted.
  WordContext ctx;
  ctx.r = 3;
  ctx.d = 2;
  ctx.delays = {8, 7};  // a at t=7 with wait 1 -> 8; b at 7
  // Distinct residues mod 3 for positions 0(d=2), 1, 2.
  for (const Word& w : enumerate_legal_words(ctx)) {
    std::set<int> residues;
    residues.insert(((0 - 2) % 3 + 3) % 3);
    for (std::size_t p = 0; p < w.size(); ++p) {
      const Time delta = ctx.delays[static_cast<std::size_t>(w[p])];
      residues.insert(
          static_cast<int>((((static_cast<Time>(p) + 1 - delta) % 3) + 3) %
                           3));
    }
    EXPECT_EQ(residues.size(), 3u);
  }
}

// Lemma 3.1: the word family a^(L-2) (ca)^j b^m is legal for the standard
// block of its size at every latency - the paper's lemma, machine-checked.
class Lemma31 : public ::testing::TestWithParam<Time> {};

TEST_P(Lemma31, FirstFamilyAlwaysLegal) {
  const Time L = GetParam();
  for (Time t = 2 * L; t <= 2 * L + 6; ++t) {
    for (int j = 0; j <= 3; ++j) {
      for (int m = 0; m <= 4; ++m) {
        const Word w = lemma31_word(L, j, m);
        const int r = static_cast<int>(w.size()) + 1;
        if (r > t - L + 1) continue;  // beyond the max block size
        const Time d = t - L - r + 1;
        EXPECT_TRUE(word_is_legal(WordContext::standard(t, L, r, d), w))
            << "L=" << L << " t=" << t << " word=" << word_to_string(w);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Latencies, Lemma31,
                         ::testing::Values<Time>(3, 4, 5, 6, 7, 8));

TEST(Automaton, Lemma31KnownInstances) {
  // L=3, j=1, m=1 gives the paper's chosen H5 word acab; j=0, m=3 gives
  // abbb.
  EXPECT_EQ(word_to_string(lemma31_word(3, 1, 1)), "acab");
  EXPECT_EQ(word_to_string(lemma31_word(3, 0, 3)), "abbb");
  EXPECT_THROW((void)lemma31_word(1, 0, 0), std::invalid_argument);
  EXPECT_THROW((void)lemma31_word(3, -1, 0), std::invalid_argument);
}

TEST(Automaton, InvalidContextThrows) {
  WordContext bad;
  bad.delays = {};
  EXPECT_THROW(enumerate_legal_words(bad), std::invalid_argument);
  WordContext huge = WordContext::standard(40, 3, 32, 0);
  EXPECT_THROW(enumerate_legal_words(huge), std::invalid_argument);
}

TEST(Automaton, WordToString) {
  EXPECT_EQ(word_to_string(Word{0, 2, 0, 1}), "acab");
  EXPECT_EQ(word_to_string(Word{}), "");
  EXPECT_EQ(word_to_string(Word{30}), "?");
}

}  // namespace
}  // namespace logpc::bcast
