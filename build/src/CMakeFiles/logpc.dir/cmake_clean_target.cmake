file(REMOVE_RECURSE
  "liblogpc.a"
)
