file(REMOVE_RECURSE
  "CMakeFiles/test_all_to_all.dir/bcast/all_to_all_test.cpp.o"
  "CMakeFiles/test_all_to_all.dir/bcast/all_to_all_test.cpp.o.d"
  "test_all_to_all"
  "test_all_to_all.pdb"
  "test_all_to_all[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_all_to_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
