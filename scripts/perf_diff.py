#!/usr/bin/env python3
"""Diff a fresh BENCH_kernels.json against the committed baseline.

Usage: perf_diff.py BASELINE CURRENT [--tolerance 0.25]

Entries are matched on (name, params).  For each matched fold_chain cell
the kernel-vs-generic *speedup* is compared — on shared CI runners the
absolute GB/s numbers swing with the neighbours' load, but the speedup is
a ratio of two lanes measured back-to-back on the same machine, so it is
the stable quantity worth guarding.

Even the speedup of one cell can be wrecked by a multi-second load spike
spanning its reps (observed: a generic lane measured 5x slow for one
cell, inflating its ratio 200x+).  P barely moves the per-byte speedup —
the fold chain is (P-1) folds of the same payload — so the guarded
quantity is the *median* speedup per (op, dtype, payload) group across
the P sweep: a single wrecked cell cannot shift a median of four.

A group regresses when current median < baseline median * (1 -
tolerance) AND the current median is below --floor (default 6x, 1.5x
the 4x bar the fast lane promises): on a shared runner the ratio of
two far-above-bar medians routinely drifts 2x with background load,
so beyond-tolerance drift between huge speedups is weather, while a
broken typed lane collapses toward 1x and trips both conditions.  The
script exits 1 if any group regressed.  Groups that
*improved* beyond the tolerance are printed as notes (a too-good jump
usually means the baseline is stale) but do not fail the run —
perf_smoke.sh tells the operator to refresh the baseline instead.
"""

import argparse
import json
import statistics
import sys


def load_groups(path):
    """(op, dtype, payload) -> {P: speedup}"""
    with open(path) as f:
        doc = json.load(f)
    groups = {}
    for e in doc.get("entries", []):
        if e.get("name") != "fold_chain":
            continue
        p = e["params"]
        key = (p["op"], p["dtype"], int(p["payload"]))
        groups.setdefault(key, {})[int(p["P"])] = e["speedup"]
    return groups


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.25)
    ap.add_argument("--floor", type=float, default=6.0,
                    help="only fail a group whose current median speedup "
                         "is also below this absolute value")
    args = ap.parse_args()

    base = load_groups(args.baseline)
    cur = load_groups(args.current)
    if not base:
        print(f"perf_diff: no fold_chain cells in baseline {args.baseline}",
              file=sys.stderr)
        return 2

    regressions, improvements, missing = [], [], []
    for key, bcells in sorted(base.items()):
        ccells = cur.get(key)
        if not ccells:
            missing.append(key)
            continue
        b = statistics.median(bcells.values())
        c = statistics.median(ccells.values())
        delta = (c - b) / b
        tag = ""
        if delta < -args.tolerance and c < args.floor:
            regressions.append((key, b, c, delta))
            tag = "  << REGRESSION"
        elif delta < -args.tolerance:
            tag = "  (drifted down, still >= floor)"
        elif delta > args.tolerance:
            improvements.append((key, b, c, delta))
            tag = "  (faster than baseline)"
        op, dtype, payload = key
        print(f"{op}/{dtype} payload={payload:>9}  "
              f"baseline median {b:8.2f}x  current median {c:8.2f}x  "
              f"{delta:+7.1%}{tag}")

    for key in sorted(set(cur) - set(base)):
        print(f"note: group {key} present in current but not in baseline")
    for key in missing:
        print(f"note: group {key} present in baseline but missing from current")

    print()
    print(f"perf_diff: {len(base)} baseline groups, "
          f"{len(regressions)} regressed beyond -{args.tolerance:.0%}, "
          f"{len(improvements)} improved beyond +{args.tolerance:.0%}")
    if improvements:
        print("perf_diff: consider refreshing bench/baselines/ "
              "(run perf_smoke.sh --rebaseline)")
    if regressions:
        print("perf_diff: FAIL")
        return 1
    print("perf_diff: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
