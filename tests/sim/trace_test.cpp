#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace logpc::sim {
namespace {

TEST(Trace, ExtractsSendAndRecvOverheads) {
  // Figure 1 machine: o = 2, L = 6, g = 4.
  Schedule s(Params{3, 6, 2, 4}, 1);
  s.add_initial(0, 0, 0);
  s.add_send(0, 0, 1, 0);
  s.add_send(4, 0, 2, 0);
  const Trace t = Trace::from(s);
  ASSERT_EQ(t.per_proc.size(), 3u);
  ASSERT_EQ(t.per_proc[0].size(), 2u);
  EXPECT_EQ(t.per_proc[0][0].kind, ActivityKind::kSendOverhead);
  EXPECT_EQ(t.per_proc[0][0].begin, 0);
  EXPECT_EQ(t.per_proc[0][0].end, 2);
  EXPECT_EQ(t.per_proc[0][0].peer, 1);
  EXPECT_EQ(t.per_proc[0][1].begin, 4);
  ASSERT_EQ(t.per_proc[1].size(), 1u);
  EXPECT_EQ(t.per_proc[1][0].kind, ActivityKind::kRecvOverhead);
  EXPECT_EQ(t.per_proc[1][0].begin, 8);   // 0 + o + L
  EXPECT_EQ(t.per_proc[1][0].end, 10);
  EXPECT_EQ(t.per_proc[1][0].peer, 0);
  ASSERT_EQ(t.per_proc[2].size(), 1u);
  EXPECT_EQ(t.per_proc[2][0].begin, 12);
}

TEST(Trace, ZeroOverheadGivesPointIntervals) {
  Schedule s(Params::postal(2, 3), 1);
  s.add_initial(0, 0, 0);
  s.add_send(0, 0, 1, 0);
  const Trace t = Trace::from(s);
  EXPECT_EQ(t.per_proc[0][0].begin, t.per_proc[0][0].end);
  EXPECT_EQ(t.per_proc[1][0].begin, 3);
}

TEST(Trace, ActivitiesSortedByBegin) {
  Schedule s(Params{4, 6, 2, 4}, 1);
  s.add_initial(0, 0, 0);
  s.add_send(8, 0, 3, 0);
  s.add_send(0, 0, 1, 0);
  s.add_send(4, 0, 2, 0);
  const Trace t = Trace::from(s);
  const auto& acts = t.per_proc[0];
  ASSERT_EQ(acts.size(), 3u);
  EXPECT_LT(acts[0].begin, acts[1].begin);
  EXPECT_LT(acts[1].begin, acts[2].begin);
}

TEST(Trace, BusyCyclesSumsOverheads) {
  Schedule s(Params{3, 6, 2, 4}, 1);
  s.add_initial(0, 0, 0);
  s.add_send(0, 0, 1, 0);
  s.add_send(4, 0, 2, 0);
  const Trace t = Trace::from(s);
  EXPECT_EQ(t.busy_cycles(0), 4);  // two sends * o = 2
  EXPECT_EQ(t.busy_cycles(1), 2);  // one receive
}

TEST(Trace, EmptyScheduleYieldsEmptyRowsPerProcessor) {
  // No sends at all: one (empty) activity row per processor, not zero rows.
  Schedule s(Params{4, 6, 2, 4}, 1);
  s.add_initial(0, 0, 0);
  const Trace t = Trace::from(s);
  ASSERT_EQ(t.per_proc.size(), 4u);
  for (const auto& acts : t.per_proc) EXPECT_TRUE(acts.empty());
}

TEST(Trace, BusyCyclesZeroOnIdleProcessor) {
  // Processor 2 never sends or receives; its busy time must be exactly 0.
  Schedule s(Params{3, 6, 2, 4}, 1);
  s.add_initial(0, 0, 0);
  s.add_send(0, 0, 1, 0);
  const Trace t = Trace::from(s);
  EXPECT_EQ(t.busy_cycles(2), 0);
  EXPECT_TRUE(t.per_proc[2].empty());
}

TEST(Trace, ZeroOverheadBusyCyclesAreZero) {
  // o == 0: intervals are kept as zero-length points, so busy time is 0
  // even though the processor participated in transmissions.
  Schedule s(Params::postal(3, 2), 1);
  s.add_initial(0, 0, 0);
  s.add_send(0, 0, 1, 0);
  s.add_send(1, 0, 2, 0);
  const Trace t = Trace::from(s);
  ASSERT_EQ(t.per_proc[0].size(), 2u);
  for (const auto& a : t.per_proc[0]) EXPECT_EQ(a.begin, a.end);
  EXPECT_EQ(t.busy_cycles(0), 0);
  EXPECT_EQ(t.busy_cycles(1), 0);
}

TEST(Trace, BufferedRecvUsesEffectiveTime) {
  Schedule s(Params{2, 6, 2, 4}, 1);
  s.add_initial(0, 0, 0);
  SendOp op{0, 0, 1, 0, 20};
  s.add_send(op);
  const Trace t = Trace::from(s);
  EXPECT_EQ(t.per_proc[1][0].begin, 20);
  EXPECT_EQ(t.per_proc[1][0].end, 22);
}

}  // namespace
}  // namespace logpc::sim
