/// Experiment F4 - Figure 4: the reception table of one block, L = 5,
/// r = 7, k = 16.  The paper shows its Theorem 3.7 endgame scheme for a
/// size-7 block; our block-cyclic construction yields a size-7 block for
/// L = 5, t = 11 (P - 1 = f_11 = 11 receivers) and the bench prints that
/// block's members' reception rows: one item per step, each item exactly
/// once, active items on the member currently serving the internal role.

#include "bench_util.hpp"

#include <set>

#include "bcast/continuous.hpp"
#include "sched/metrics.hpp"
#include "validate/checker.hpp"
#include "viz/table.hpp"

namespace {

using namespace logpc;
using logpc::bench::Table;

void report() {
  const Time L = 5;
  const Time t = 11;  // largest block size = t - L + 1 = 7
  const int k = 16;
  logpc::bench::section("Figure 4: reception rows of the size-7 block "
                        "(L=5, r=7, k=16)");
  const auto res = bcast::plan_continuous(L, t);
  if (res.status != bcast::SolveStatus::kSolved) {
    std::cout << "plan FAILED\n";
    return;
  }
  const bcast::ContinuousBlock* block7 = nullptr;
  for (const auto& b : res.plan->blocks) {
    if (b.r == 7) block7 = &b;
  }
  if (block7 == nullptr) {
    std::cout << "no size-7 block found\n";
    return;
  }
  const Schedule s = bcast::emit_k_items(*res.plan, k);

  // Restrict the reception table to the block members.
  Table rows({"member", "receptions (time: item, * = active)"});
  for (int j = 0; j < block7->r; ++j) {
    const ProcId p = block7->members[static_cast<std::size_t>(j)];
    std::string cells;
    for (const auto& op : s.sends()) {
      if (op.to != p) continue;
      const Time at = s.available_at(op);
      const bool active =
          (op.item % block7->r) == j &&
          at == op.item + L + block7->d;  // the internal-role reception
      cells += (cells.empty() ? "" : " ") + std::to_string(at) + ":" +
               std::to_string(op.item + 1) + (active ? "*" : "");
    }
    rows.row("P" + std::to_string(p) + " (j=" + std::to_string(j) + ")",
             cells);
  }
  rows.print();

  logpc::bench::section("paper vs measured");
  Table chk({"property", "paper", "measured", "match"});
  chk.row("block size", 7, block7->r, logpc::bench::ok(block7->r == 7));
  // Each member receives every item exactly once and one per step.
  bool once = true;
  for (int j = 0; j < block7->r; ++j) {
    const ProcId p = block7->members[static_cast<std::size_t>(j)];
    std::set<Time> steps;
    std::set<ItemId> items;
    for (const auto& op : s.sends()) {
      if (op.to != p) continue;
      once = once && steps.insert(s.available_at(op)).second;
      once = once && items.insert(op.item).second;
    }
    once = once && items.size() == static_cast<std::size_t>(k);
  }
  chk.row("each member: k items, one per step, no repeats", "holds",
          once ? "holds" : "violated", logpc::bench::ok(once));
  chk.row("whole schedule valid", "-", validate::check(s).summary(),
          logpc::bench::ok(validate::is_valid(s)));
  chk.row("completion B+L+k-1", t + L + k - 1, completion_time(s),
          logpc::bench::ok(completion_time(s) == t + L + k - 1));
  chk.print();
}

void BM_Fig4Plan(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(bcast::plan_continuous(5, 11));
  }
}
BENCHMARK(BM_Fig4Plan);

}  // namespace

LOGPC_BENCH_MAIN(report)
