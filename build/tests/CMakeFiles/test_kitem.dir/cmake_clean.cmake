file(REMOVE_RECURSE
  "CMakeFiles/test_kitem.dir/bcast/kitem_test.cpp.o"
  "CMakeFiles/test_kitem.dir/bcast/kitem_test.cpp.o.d"
  "test_kitem"
  "test_kitem.pdb"
  "test_kitem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kitem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
