/// The collective-service throughput bench, mpptest-style: sustained
/// requests through the daemon rather than one timed collective.  Two
/// modes on the same machine (P = 8) and workload (single-item broadcast,
/// 64-byte payload):
///
///  * cold  — the pre-service baseline: every request constructs a fresh
///    exec::Engine (threads spawned and joined per run) and recompiles its
///    program, the way a one-shot Communicator caller would.
///  * warm  — the daemon path: 4 equal-weight tenants submit into a
///    CollectiveService with persistent, prewarmed engine pools and a
///    service-lifetime program cache, keeping a bounded window in flight.
///    Measured once per serving class: interactive (unfused — the class
///    opts out of the fusion window) and batch (the admission-side
///    fusion batcher coalesces the same-shape backlog).
///
/// Reported per mode and class: sustained collectives/sec and the
/// p50/p99 of the per-request end-to-end latency; plus the warm/cold
/// throughput ratio (the ISSUE acceptance floor is 2x).  Everything
/// lands in BENCH_throughput.json via the global JsonReport
/// (bench_loadgen merges its own entries into the same file).

#include "bench_util.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "api/communicator.hpp"
#include "svc/service.hpp"

namespace {

using namespace logpc;
using logpc::bench::Table;

constexpr int kP = 8;
constexpr std::size_t kPayload = 64;
constexpr int kTenants = 4;
constexpr int kColdRequests = 48;
constexpr int kWarmRequests = 384;
constexpr std::size_t kWindow = 16;  ///< in-flight bound per tenant

Params machine() { return Params{kP, 4, 1, 2}; }

exec::Bytes payload_of(std::size_t size) {
  exec::Bytes b(size);
  for (std::size_t i = 0; i < size; ++i) {
    b[i] = static_cast<std::byte>(i & 0xFF);
  }
  return b;
}

struct Sustained {
  double rps = 0;
  double p50_ns = 0;
  double p99_ns = 0;
  int requests = 0;
};

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1));
  return v[idx];
}

Sustained summarize(const std::vector<double>& latencies_ns,
                    std::uint64_t wall_ns) {
  Sustained s;
  s.requests = static_cast<int>(latencies_ns.size());
  s.rps = wall_ns > 0 ? 1e9 * static_cast<double>(s.requests) /
                            static_cast<double>(wall_ns)
                      : 0;
  s.p50_ns = percentile(latencies_ns, 0.50);
  s.p99_ns = percentile(latencies_ns, 0.99);
  return s;
}

/// The pre-service baseline: engine built and torn down per request.
Sustained run_cold() {
  const api::Communicator comm(machine());
  const exec::Bytes payload = payload_of(kPayload);
  std::vector<double> latencies;
  latencies.reserve(kColdRequests);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kColdRequests; ++i) {
    const auto r0 = std::chrono::steady_clock::now();
    exec::Engine fresh;  // threads spawn here, join at destruction
    const exec::ExecReport report = comm.run_broadcast(
        std::span<const std::byte>(payload.data(), payload.size()), 0,
        &fresh);
    const auto r1 = std::chrono::steady_clock::now();
    if (report.warm_pool) std::cout << "cold baseline ran warm?!\n";
    latencies.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(r1 - r0)
            .count()));
  }
  const auto t1 = std::chrono::steady_clock::now();
  return summarize(
      latencies,
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()));
}

/// The daemon path: 4 tenants, persistent pools, bounded in-flight window.
/// `qos` selects the serving class — and with it the high-throughput
/// path: kInteractive runs every request unfused (the class opts out of
/// the fusion window), kBatch lets the admission-side batcher coalesce
/// the same-shape backlog.
Sustained run_warm(svc::QoS qos) {
  svc::CollectiveService::Options opts;
  opts.pools = 2;
  svc::CollectiveService service(machine(), opts);
  std::vector<svc::TenantId> tenants;
  for (int t = 0; t < kTenants; ++t) {
    tenants.push_back(service.register_tenant(
        {.name = std::string("bench-") + svc::qos_name(qos) + "-" +
                 std::to_string(t),
         .queue_capacity = 2 * kWindow}));
  }
  const exec::Bytes payload = payload_of(kPayload);

  std::vector<double> latencies;
  latencies.reserve(kWarmRequests);
  std::deque<std::future<svc::Response>> inflight;
  std::size_t warm_runs = 0;
  std::size_t fused_runs = 0;
  const auto settle = [&](std::future<svc::Response> fut) {
    const svc::Response r = fut.get();
    if (r.status == svc::Status::kOk) {
      latencies.push_back(static_cast<double>(r.total_ns));
      warm_runs += r.report.warm_pool ? 1u : 0u;
      fused_runs += r.fused > 1 ? 1u : 0u;
    }
  };

  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kWarmRequests; ++i) {
    svc::Request req;
    req.op = svc::OpKind::kBroadcast;
    req.qos = qos;
    req.payload = payload;
    svc::SubmitResult sub = service.submit(
        tenants[static_cast<std::size_t>(i % kTenants)], std::move(req));
    if (sub.accepted()) inflight.push_back(std::move(sub.response));
    while (inflight.size() > kTenants * kWindow) {
      settle(std::move(inflight.front()));
      inflight.pop_front();
    }
  }
  while (!inflight.empty()) {
    settle(std::move(inflight.front()));
    inflight.pop_front();
  }
  const auto t1 = std::chrono::steady_clock::now();
  std::cout << "warm[" << svc::qos_name(qos) << "] pool hit rate: "
            << warm_runs << "/" << latencies.size() << ", fused completions: "
            << fused_runs << "\n";
  return summarize(
      latencies,
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()));
}

void add_entry(const std::string& mode, const std::string& qos,
               const Sustained& s, double speedup) {
  logpc::bench::global_report("throughput")
      .entry("sustained",
             {{"mode", mode},
              {"qos", qos},
              {"P", std::to_string(kP)},
              {"tenants", std::to_string(mode == "cold" ? 1 : kTenants)},
              {"payload", std::to_string(kPayload)}},
             {{"requests", static_cast<double>(s.requests)},
              {"collectives_per_sec", s.rps},
              {"p50_ns", s.p50_ns},
              {"p99_ns", s.p99_ns},
              {"speedup_vs_cold", speedup}});
}

void report() {
  std::cout << "Collective-service sustained throughput, P = " << kP
            << ", broadcast " << kPayload << " B\n"
            << "cold = fresh engine per request; warm = daemon with "
            << kTenants
            << " tenants on persistent pools, per serving class\n"
            << "(interactive = unfused latency path, batch = fusion "
            << "batcher engaged)\n\n";
  const Sustained cold = run_cold();
  const Sustained warm_interactive = run_warm(svc::QoS::kInteractive);
  const Sustained warm_batch = run_warm(svc::QoS::kBatch);
  const auto speedup = [&](const Sustained& s) {
    return cold.rps > 0 ? s.rps / cold.rps : 0;
  };

  Table t({"mode", "qos", "requests", "collectives/s", "p50 us", "p99 us"});
  t.row("cold", "-", cold.requests, static_cast<std::int64_t>(cold.rps),
        cold.p50_ns / 1000.0, cold.p99_ns / 1000.0);
  t.row("warm", "interactive", warm_interactive.requests,
        static_cast<std::int64_t>(warm_interactive.rps),
        warm_interactive.p50_ns / 1000.0, warm_interactive.p99_ns / 1000.0);
  t.row("warm", "batch", warm_batch.requests,
        static_cast<std::int64_t>(warm_batch.rps),
        warm_batch.p50_ns / 1000.0, warm_batch.p99_ns / 1000.0);
  t.print();
  std::cout << "\nwarm/cold throughput: interactive "
            << speedup(warm_interactive) << "x, batch " << speedup(warm_batch)
            << "x (acceptance floor: 2x)\n\n";

  add_entry("cold", "-", cold, 1.0);
  add_entry("warm", "interactive", warm_interactive,
            speedup(warm_interactive));
  add_entry("warm", "batch", warm_batch, speedup(warm_batch));
}

/// Microbenchmark: the per-request service overhead in isolation — submit
/// plus future-resolve of an already-warm broadcast, single tenant.
void BM_ServiceRoundTrip(benchmark::State& state) {
  svc::CollectiveService::Options opts;
  opts.pools = 1;
  svc::CollectiveService service(machine(), opts);
  const svc::TenantId t = service.register_tenant({.name = "bm"});
  const exec::Bytes payload = payload_of(kPayload);
  for (auto _ : state) {
    svc::Request req;
    req.op = svc::OpKind::kBroadcast;
    // Interactive: one request in flight at a time would otherwise sit out
    // the batch class's fusion window on every iteration, measuring the
    // window instead of the per-request overhead.
    req.qos = svc::QoS::kInteractive;
    req.payload = payload;
    svc::SubmitResult sub = service.submit(t, std::move(req));
    if (!sub.accepted()) {
      state.SkipWithError("submit rejected");
      break;
    }
    benchmark::DoNotOptimize(sub.response.get().total_ns);
  }
}
BENCHMARK(BM_ServiceRoundTrip)->Unit(benchmark::kMicrosecond);

}  // namespace

LOGPC_BENCH_MAIN(report)
