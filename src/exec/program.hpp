#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bcast/reduction.hpp"
#include "sched/schedule.hpp"
#include "sum/summation_tree.hpp"
#include "validate/checker.hpp"

/// \file program.hpp
/// Instruction compilation: lowering a planned collective — a `Schedule`,
/// a `bcast::ReductionPlan` or a `sum::SummationPlan` — into one in-order
/// instruction stream per logical processor, ready for exec::Engine to run
/// on real threads.
///
/// Per processor, the stream is the plan's events in plan-time order:
/// receives keyed by the cycle their payload becomes available, sends by
/// their start cycle (a receive sorts first on ties, since a send at cycle
/// t may forward an item that becomes available exactly at t).  Because a
/// valid LogP schedule's dependency graph is acyclic in plan time, and the
/// mailbox bound equals the model's capacity constraint, executing these
/// streams with blocking sends/receives cannot deadlock however the real
/// threads race.
///
/// Three value semantics, one per planner output family:
///  * kMove  — broadcast-shaped plans (bcast, k-item, scatter, gather,
///             all-to-all): a receive copies the payload into the local
///             item slot, a send transmits the slot verbatim;
///  * kFold  — message reduction (Section 4.2): every receive folds the
///             incoming partial value into the local accumulator in
///             arrival order, the single send transmits the accumulator;
///  * kSum   — Section 5 summation: local operand chunks (kCombineLocal,
///             sized by sum::operand_layout) interleave with receptions
///             exactly as Lemma 5.1 times them, so any associative — even
///             non-commutative — operator folds in combination_order.

namespace logpc::runtime {
class ImplicitPlan;
}  // namespace logpc::runtime

namespace logpc::exec {

enum class Mode : std::uint8_t { kMove, kFold, kSum };

enum class OpCode : std::uint8_t {
  kSend,          ///< push the item slot (kMove) or accumulator to `peer`
  kRecv,          ///< blocking pop from `peer`; store or fold per Mode
  kCombineLocal,  ///< kSum only: fold the next `count` local operands
};

/// One step of a processor's stream.  `when` is the planned cycle (send
/// start / payload-available time) — carried for reporting and the
/// predicted-vs-measured comparison, never for pacing.
struct Instr {
  OpCode op = OpCode::kSend;
  ProcId peer = kNoProc;   ///< send: destination; recv: source
  ItemId item = 0;         ///< slot to send / item expected on arrival
  std::int32_t count = 0;  ///< kCombineLocal: operands to fold
  std::int32_t link = -1;  ///< mailbox index (kSend/kRecv)
  Time when = 0;           ///< planned cycle of the event
  /// kRecv drain hint: this receive plus the count of immediately
  /// following receives on the same link (>= 1).  The engine's bulk drain
  /// pops at most `chain` messages in one acquire/release round — only
  /// what this stream consumes back-to-back anyway, so the mailbox bound
  /// keeps its capacity-constraint meaning.  Computed at compile time.
  std::int32_t chain = 1;
};

/// One directed processor pair with traffic, i.e. one mailbox.
struct Link {
  ProcId from = kNoProc;
  ProcId to = kNoProc;
};

struct ProcProgram {
  ProcId proc = kNoProc;
  std::int32_t sum_index = -1;    ///< kSum: index into SummationPlan::procs
  std::size_t num_operands = 0;   ///< kSum: local operands this proc folds
  std::vector<Instr> instrs;
};

/// A compiled collective: everything Engine::run needs, decoupled from the
/// planner types it was lowered from.
struct Program {
  Params params;                  ///< machine the plan was stated on
  Mode mode = Mode::kMove;
  std::string label;              ///< "bcast", "alltoall", ... (telemetry)
  int num_items = 1;              ///< item-id space (kMove slot count)
  Time predicted_makespan = 0;    ///< the plan's exact completion, cycles
  std::size_t num_messages = 0;
  std::vector<ProcProgram> procs;          ///< size params.P
  std::vector<Link> links;                 ///< mailbox directory
  std::vector<InitialPlacement> initials;  ///< kMove: pre-filled slots

  /// The receive sequence each processor will log when execution follows
  /// the plan — the expected side of validate::check_delivery_order.
  [[nodiscard]] std::vector<std::vector<validate::DeliveryRecord>>
  expected_deliveries() const;
};

/// Lowers a move-semantics schedule (broadcast, k-item, scatter, gather,
/// all-to-all, personalized).  Throws std::invalid_argument if a processor
/// would send an item it cannot hold yet — a plan bug the compiler refuses
/// to turn into a hang.
[[nodiscard]] Program compile_broadcast(const Schedule& s,
                                        std::string label = "bcast");

/// Lowers a message reduction: receives fold, the final send carries the
/// accumulator.  Fold order per processor is arrival order, matching
/// bcast::execute_reduction.
[[nodiscard]] Program compile_reduction(const bcast::ReductionPlan& plan);

/// Lowers an implicit plan straight from its per-rank generators — no
/// materialized Schedule anywhere on the path.  Produces instruction
/// streams identical, processor by processor and instruction by
/// instruction, to compile_broadcast / compile_reduction run on the
/// materialized schedule for the same key (link *indices* may differ —
/// they are interned in rank-major rather than global send order — but the
/// link endpoints, stream order and timings agree, so engine results are
/// byte-identical).  `label` defaults to "bcast" / "reduce" by plan kind.
[[nodiscard]] Program compile_implicit(const runtime::ImplicitPlan& plan,
                                       std::string label = {});

/// Lowers a summation plan: local chunks from sum::operand_layout
/// interleave with receptions; processors outside plan.procs get empty
/// streams.
[[nodiscard]] Program compile_summation(const sum::SummationPlan& plan);

/// Relabels a compiled program by swapping processors `a` and `b`:
/// instruction streams, link endpoints and initial placements all move
/// together, so the relabeled program executes the same schedule with the
/// two ranks' roles exchanged.  This is how a root-normalized plan serves
/// an arbitrary root — the k-item cache keys pin root = 0 (the schedule
/// shape is root-invariant), and the serving layer swaps 0 with the
/// requested root at compile time instead of splitting the plan cache.
/// Throws std::invalid_argument when either rank is out of range.
[[nodiscard]] Program relabel_swapped(Program program, ProcId a, ProcId b);

}  // namespace logpc::exec
