# Empty compiler generated dependencies file for bench_kitem_sweep.
# This may be replaced when dependencies are built.
