#include "sched/schedule.hpp"

#include <algorithm>
#include <ostream>
#include <tuple>

namespace logpc {

void Schedule::add_initial(ItemId item, ProcId proc, Time time) {
  initials_.push_back(InitialPlacement{item, proc, time});
}

Time Schedule::add_send(SendOp op) {
  sends_.push_back(op);
  return available_at(op);
}

Time Schedule::add_send(Time t, ProcId from, ProcId to, ItemId item) {
  return add_send(SendOp{t, from, to, item, kNever});
}

Time Schedule::recv_start(const SendOp& op) const {
  return op.recv_start == kNever ? op.start + params_.o + params_.L
                                 : op.recv_start;
}

Time Schedule::available_at(const SendOp& op) const {
  return recv_start(op) + params_.o;
}

void Schedule::sort() {
  std::stable_sort(sends_.begin(), sends_.end(),
                   [](const SendOp& a, const SendOp& b) {
                     return std::tie(a.start, a.from, a.to, a.item) <
                            std::tie(b.start, b.from, b.to, b.item);
                   });
}

Time Schedule::first_available(ProcId proc, ItemId item) const {
  Time best = kNever;
  for (const auto& init : initials_) {
    if (init.proc == proc && init.item == item) best = std::min(best, init.time);
  }
  for (const auto& op : sends_) {
    if (op.to == proc && op.item == item) {
      best = std::min(best, available_at(op));
    }
  }
  return best;
}

Time Schedule::makespan() const {
  Time m = 0;
  for (const auto& init : initials_) m = std::max(m, init.time);
  for (const auto& op : sends_) m = std::max(m, available_at(op));
  return m;
}

std::ostream& operator<<(std::ostream& os, const Schedule& s) {
  os << "Schedule{" << s.params() << ", items=" << s.num_items() << "\n";
  for (const auto& init : s.initials()) {
    os << "  init  item " << init.item << " @P" << init.proc << " t="
       << init.time << "\n";
  }
  for (const auto& op : s.sends()) {
    os << "  send  item " << op.item << "  P" << op.from << " -> P" << op.to
       << "  start=" << op.start << "  avail=" << s.available_at(op);
    if (op.recv_start != kNever) os << "  (buffered recv@" << op.recv_start << ")";
    os << "\n";
  }
  return os << "}";
}

}  // namespace logpc
