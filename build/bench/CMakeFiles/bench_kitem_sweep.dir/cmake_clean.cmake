file(REMOVE_RECURSE
  "CMakeFiles/bench_kitem_sweep.dir/bench_kitem_sweep.cpp.o"
  "CMakeFiles/bench_kitem_sweep.dir/bench_kitem_sweep.cpp.o.d"
  "bench_kitem_sweep"
  "bench_kitem_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kitem_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
