#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#include "runtime/plan_key.hpp"

/// \file decision_table.hpp
/// The persisted output of the auto-tuner (tune/tuner.hpp): per
/// (collective, P, payload-size segment), which schedule family measured
/// fastest on *this* hardware.  Barchet-Estefanel & Mounié
/// (arXiv:cs/0408034) observed that measured collective performance
/// splits into message-size segments with a different winner per segment,
/// so one cheap offline tuning pass beats any single fixed algorithm —
/// this table is that pass's artifact.
///
/// Size segments are powers of two: a payload of `bytes` falls in class
/// ceil(log2(bytes)) (class 0 covers 0- and 1-byte payloads).  Lookups for
/// an untuned class snap to the nearest tuned class of the same
/// (collective, P) — ties toward the smaller class — so a sparse tuned
/// grid still covers the whole size axis.
///
/// The table is immutable once built (build it, then share it as a
/// shared_ptr<const DecisionTable>; runtime::Planner consumes it that
/// way), and persists through the same binary snapshot idiom as the plan
/// cache (runtime/snapshot.cpp): little-endian i64 fields behind a
/// versioned magic header, re-validated on load.

namespace logpc::tune {

/// Which collective a decision governs.  Only broadcast is tuned today;
/// the enum (and the snapshot format) leave room for the rest.
enum class Collective : std::uint8_t {
  kBroadcast = 0,
};
inline constexpr int kNumCollectives = 1;

[[nodiscard]] std::string_view collective_name(Collective c);

/// ceil(log2(bytes)): the power-of-two size segment `bytes` falls in
/// (class 0 holds 0- and 1-byte payloads).
[[nodiscard]] int size_class_of(std::size_t bytes);

/// The largest payload of `size_class` (2^size_class bytes) — the
/// representative size the tuner benchmarks for the class.
[[nodiscard]] std::size_t size_class_bytes(int size_class);

struct DecisionKey {
  Collective collective = Collective::kBroadcast;
  int P = 0;
  int size_class = 0;

  friend auto operator<=>(const DecisionKey&, const DecisionKey&) = default;
};

/// The measured winner for one segment, with enough of the runner-up to
/// judge the margin (a near-tie is a candidate for re-tuning).
struct Decision {
  /// Winning family.  kKItemBroadcast means the segmented pipeline
  /// (`segments` > 1); kHierarchicalBroadcast carries its topology in
  /// `clusters` + `cross_*` so the planner can rebuild the key.
  runtime::Problem problem = runtime::Problem::kBroadcast;
  std::int32_t segments = 1;
  std::int32_t clusters = 0;
  Time cross_L = 0;
  Time cross_o = 0;
  Time cross_g = 0;
  double win_ns = 0;        ///< winner's median wall time
  double runner_up_ns = 0;  ///< best non-winner median (0 = uncontested)

  friend bool operator==(const Decision&, const Decision&) = default;
};

class DecisionTable {
 public:
  /// Inserts or replaces the decision for `key`.  Throws
  /// std::invalid_argument for an ill-formed key or decision (P < 1,
  /// size_class outside [0, 63], segments < 1, negative timings, or
  /// topology fields on a non-hierarchical winner).
  void set(const DecisionKey& key, const Decision& decision);

  /// The decision governing a `bytes`-sized payload, or nullptr when no
  /// class of this (collective, P) was ever tuned.  Snaps to the nearest
  /// tuned size class (see file comment).  Pointer stays valid while the
  /// table lives — the planner's warm fast path is this one map probe.
  [[nodiscard]] const Decision* find(Collective collective, int P,
                                     std::size_t bytes) const;

  /// Exact-class probe (no snapping); nullptr when untuned.
  [[nodiscard]] const Decision* find_class(const DecisionKey& key) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] const std::map<DecisionKey, Decision>& entries() const {
    return entries_;
  }

  /// Binary snapshot (format notes in the file comment).  save() throws
  /// std::runtime_error on I/O failure; load() std::invalid_argument on a
  /// malformed snapshot.
  void save(std::ostream& os) const;
  void save(const std::string& path) const;
  [[nodiscard]] static DecisionTable load(std::istream& is);
  [[nodiscard]] static DecisionTable load(const std::string& path);

  friend bool operator==(const DecisionTable&, const DecisionTable&) =
      default;

 private:
  std::map<DecisionKey, Decision> entries_;
};

}  // namespace logpc::tune
