#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

/// \file scheduler.hpp
/// The admission half of the collective service, separated from execution
/// the way a cluster scheduler separates its queue/QoS/fair-share logic
/// from its partitions of workers (Slurm's sched vs. select plugins are
/// the vocabulary ROADMAP points at).  This class is pure bookkeeping over
/// opaque request handles — no threads, no futures, no engine types — so
/// every policy decision is unit-testable deterministically:
///
///  * QoS classes: three strict priority levels (kInteractive > kBatch >
///    kBestEffort).  A dispatch always serves the highest non-empty class;
///    within one request's execution nothing is preempted (collectives are
///    short), so "preemption" is queue-order preemption.
///  * Weighted fair share: stride scheduling across tenants inside a QoS
///    class.  Each tenant carries a virtual pass that advances by
///    kStrideUnit/weight per dispatch; the runnable tenant with the
///    smallest pass goes next, so over any saturated window tenant t
///    receives weight_t / sum(weights) of the dispatches (the fairness
///    test asserts ±20%, stride is near-exact).  A tenant waking from idle
///    rejoins at the current virtual time instead of cashing in hoarded
///    credit.
///  * Rate limits: per-tenant token bucket (rate_per_sec, burst) charged
///    at admission — an over-rate submit is rejected synchronously with
///    kRateLimited, never queued.
///  * Backpressure: per-tenant bounded queues (all QoS classes share the
///    tenant's budget).  A full queue rejects with kQueueFull — the
///    service never buffers unboundedly, callers see the overload
///    explicitly and can shed or retry.
///
/// Thread-safety: none here by design — the owning CollectiveService calls
/// every method under its own mutex.

namespace logpc::svc {

/// Quality-of-service class, strict priority order (lower value wins).
enum class QoS : std::uint8_t {
  kInteractive = 0,  ///< latency-sensitive: always served first
  kBatch = 1,        ///< default class for sustained work
  kBestEffort = 2,   ///< served only when nothing above is waiting
};

inline constexpr std::size_t kQoSClasses = 3;

[[nodiscard]] const char* qos_name(QoS q) noexcept;

/// Per-tenant admission policy, fixed at registration.
struct TenantConfig {
  std::string name;                ///< metric label (escaped on export)
  std::uint32_t weight = 1;        ///< fair-share weight, >= 1
  std::size_t queue_capacity = 64; ///< bound over all QoS classes
  /// Token-bucket rate limit in requests/second; 0 = unlimited.
  double rate_per_sec = 0;
  /// Bucket depth (burst allowance); 0 = max(1, rate_per_sec).
  double burst = 0;
};

using TenantId = int;

/// Synchronous admission verdict.
enum class Admit : std::uint8_t {
  kAdmitted,     ///< enqueued; a dispatch will pick it up
  kQueueFull,    ///< tenant queue at capacity — backpressure, shed or retry
  kRateLimited,  ///< token bucket empty — tenant over its rate
};

class Scheduler {
 public:
  /// Stride numerator: pass advances by kStrideUnit / weight per dispatch.
  static constexpr std::uint64_t kStrideUnit = 1u << 20;

  /// Registers a tenant; weight and capacity are clamped to >= 1.
  TenantId add_tenant(TenantConfig cfg);

  /// Admission: charges the rate bucket (at `now_sec`, any monotonic
  /// seconds clock) and the queue bound, then enqueues `handle` under
  /// (tenant, qos).  The handle is opaque — the service maps it back to
  /// the request it stashed.
  Admit offer(TenantId tenant, QoS qos, std::uint64_t handle, double now_sec);

  /// Dispatch: pops the next handle per the policy above.  Returns false
  /// when every queue is empty.
  bool pick(TenantId* tenant, std::uint64_t* handle);

  /// Removes one specific queued handle out of turn — the fusion batcher
  /// claims same-shape siblings from anywhere in the queues to coalesce
  /// them into the dispatch it just picked.  The tenant's stride pass is
  /// charged exactly as a pick() would charge it, so a fused member still
  /// consumes the tenant's fair-share credit and a tenant cannot ride
  /// fusion to more than its weight's share of dispatches.  Returns false
  /// (no state change) when the handle is not queued under (tenant, qos).
  bool take(TenantId tenant, QoS qos, std::uint64_t handle);

  [[nodiscard]] std::size_t queued() const { return queued_; }
  [[nodiscard]] std::size_t queue_depth(TenantId tenant) const;
  /// Depth of one tenant's queue in one QoS class (introspection).
  [[nodiscard]] std::size_t queue_depth(TenantId tenant, QoS qos) const;
  [[nodiscard]] std::size_t tenant_count() const { return tenants_.size(); }
  [[nodiscard]] const TenantConfig& config(TenantId tenant) const;

 private:
  struct Tenant {
    TenantConfig cfg;
    std::deque<std::uint64_t> q[kQoSClasses];
    std::size_t depth = 0;      ///< sum over classes
    std::uint64_t pass = 0;     ///< stride virtual time
    std::uint64_t stride = 0;   ///< kStrideUnit / weight
    double tokens = 0;          ///< rate bucket level
    double last_refill = 0;     ///< now_sec of the last refill
    bool bucket_started = false;
  };

  Tenant& at(TenantId tenant);
  [[nodiscard]] const Tenant& at(TenantId tenant) const;

  std::vector<Tenant> tenants_;
  std::size_t queued_ = 0;
  std::uint64_t vtime_ = 0;  ///< pass of the last dispatched tenant
};

}  // namespace logpc::svc
