#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

/// \file kernels.hpp
/// Typed combine kernels: the exec engine's fast lane for fold traffic.
///
/// PRs 3-4 route every kFold/kSum combine through a type-erased
/// `std::function` (`CombineFn`), which is the right *generic* contract —
/// any associative operator over raw bytes — but pays an indirect call,
/// per-element `memcpy` staging and no vectorization on the hottest loop
/// the engine owns.  This header adds a small registry of contiguous,
/// auto-vectorizable fused fold loops for the operator × dtype pairs that
/// dominate real summation traffic (sum/min/max over i32/i64/f32/f64),
/// dispatched at run time from a `KernelSpec`.
///
/// Semantics: a kernel folds acc[i] <- op(acc[i], rhs[i]) elementwise over
/// the leading floor(bytes / sizeof(T)) elements; trailing bytes that do
/// not fill an element are left untouched in the accumulator.  The generic
/// reference path (`generic_combine`) implements exactly the same
/// semantics one element at a time through memcpy staging — it is both the
/// engine's fallback when a payload disagrees with the spec (size
/// mismatch) and the baseline `bench_kernels` reports speedups against.
/// Kernels never require aligned pointers: misaligned operands take a
/// scalar memcpy lane, so arbitrary byte offsets stay UB-free under
/// UBSan; the engine's BufferArena hands out 64-byte-aligned buffers, so
/// in practice the vector lane always runs.
///
/// Order preservation: kernels change how one fold step executes, never
/// which fold steps run or in what order — the compiled instruction
/// streams (including non-commutative kSum `combination_order`
/// interleaving) are untouched, so a typed run is step-for-step the same
/// fold sequence as the generic run.

namespace logpc::exec {

using Bytes = std::vector<std::byte>;

/// Left-fold step for kFold/kSum runs: acc <- op(acc, rhs).  Must be
/// associative; need not be commutative — the engine folds in exactly the
/// plan's combination order.  The very first contribution is assigned, not
/// folded (the engine handles that; `op` never sees an empty accumulator).
using CombineFn =
    std::function<void(Bytes& acc, std::span<const std::byte> rhs)>;

enum class Op : std::uint8_t { kSum = 0, kMin = 1, kMax = 2 };
enum class DType : std::uint8_t { kI32 = 0, kI64 = 1, kF32 = 2, kF64 = 3 };

inline constexpr std::size_t kNumOps = 3;
inline constexpr std::size_t kNumDTypes = 4;

[[nodiscard]] const char* op_name(Op op) noexcept;
[[nodiscard]] const char* dtype_name(DType t) noexcept;
[[nodiscard]] std::size_t elem_size(DType t) noexcept;

/// One registry key: an elementwise operator over a dtype.
struct KernelSpec {
  Op op = Op::kSum;
  DType dtype = DType::kF64;

  friend bool operator==(const KernelSpec& a, const KernelSpec& b) {
    return a.op == b.op && a.dtype == b.dtype;
  }
  [[nodiscard]] std::string name() const {
    return std::string(op_name(op)) + "_" + dtype_name(dtype);
  }
};

/// A fused fold loop: acc[i] <- op(acc[i], rhs[i]) over floor(bytes/elem)
/// elements.  acc and rhs must not overlap.
using KernelFn = void (*)(std::byte* acc, const std::byte* rhs,
                          std::size_t bytes);

/// Runtime dispatch; never null — every (Op, DType) pair has a kernel.
[[nodiscard]] KernelFn lookup(const KernelSpec& spec) noexcept;

/// The erased reference path for `spec`, as a type-erased CombineFn: one
/// element at a time, each application through a std::function, so it
/// keeps the dispatch cost the engine paid before the typed registry,
/// when combines were per-item std::function calls over scalar-sized
/// items (no fusing, unrolling or vectorization across elements).
/// Byte-identical to the kernel for every input (same per-element
/// operations in the same order).
[[nodiscard]] CombineFn generic_combine(const KernelSpec& spec);

/// What the engine folds with: either a generic type-erased CombineFn, or
/// a KernelSpec whose typed kernel handles every size-matched fold with
/// `generic_combine(spec)` as the fallback lane.
class Combiner {
 public:
  Combiner() = default;
  /*implicit*/ Combiner(CombineFn fn) : generic_(std::move(fn)) {}
  explicit Combiner(const KernelSpec& spec)
      : generic_(generic_combine(spec)),
        kernel_(lookup(spec)),
        spec_(spec),
        typed_(true) {}

  [[nodiscard]] bool valid() const { return static_cast<bool>(generic_); }
  [[nodiscard]] bool typed() const { return typed_; }
  /// nullptr when untyped.
  [[nodiscard]] KernelFn kernel() const { return typed_ ? kernel_ : nullptr; }
  [[nodiscard]] const KernelSpec& spec() const { return spec_; }
  [[nodiscard]] const CombineFn& generic() const { return generic_; }

  /// One fold step with the engine's dispatch rule: the typed kernel when
  /// the operand sizes agree, the generic lane otherwise.
  void operator()(Bytes& acc, std::span<const std::byte> rhs) const {
    if (typed_ && acc.size() == rhs.size()) {
      kernel_(acc.data(), rhs.data(), acc.size());
    } else {
      generic_(acc, rhs);
    }
  }

 private:
  CombineFn generic_;
  KernelFn kernel_ = nullptr;
  KernelSpec spec_{};
  bool typed_ = false;
};

}  // namespace logpc::exec
