/// Experiments T31/T36 - the k-item broadcast bounds and algorithms:
/// Theorem 3.1 lower bound, our single-sending construction (Theorem 3.6 /
/// Corollary 3.1), the buffered optimum (Theorem 3.8), the greedy ablation,
/// and the baselines the paper discusses (Bar-Noy/Kipnis' stated
/// 2B(P)+k+O(L), serialized, pipelined trees).

#include "bench_util.hpp"

#include "baselines/bcast_baselines.hpp"
#include "baselines/kitem_baselines.hpp"
#include "bcast/kitem.hpp"
#include "bcast/kitem_buffered.hpp"
#include "sched/metrics.hpp"
#include "validate/checker.hpp"

namespace {

using namespace logpc;
using logpc::bench::Table;

void report() {
  logpc::bench::section(
      "k-item broadcast: ours vs bounds vs baselines (postal model)");
  Table t({"P", "L", "k", "Thm3.1 lb", "ss lb", "ours(strict)", "slack",
           "buffered", "greedy", "serialized", "pipe-binary", "BnK stated",
           "valid"});
  struct Case {
    int P;
    Time L;
    int k;
  };
  for (const auto& c :
       {Case{5, 1, 8}, Case{10, 3, 8}, Case{14, 3, 14}, Case{9, 2, 6},
        Case{17, 4, 10}, Case{22, 2, 12}, Case{42, 3, 16}, Case{33, 1, 10},
        Case{26, 5, 8}, Case{64, 6, 12}}) {
    const auto bounds = bcast::kitem_bounds(c.P, c.L, c.k);
    const auto ours = bcast::kitem_broadcast(c.P, c.L, c.k);
    const auto buffered = bcast::kitem_buffered(c.P, c.L, c.k);
    const Params params = Params::postal(c.P, c.L);
    const Time greedy =
        completion_time(bcast::kitem_greedy(c.P, c.L, c.k));
    const Time serialized =
        completion_time(baselines::serialized_broadcast(params, c.k));
    const Time pipe = completion_time(baselines::pipelined_tree_broadcast(
        baselines::binary_tree(params, c.P), c.k));
    const bool valid =
        validate::is_valid(ours.schedule) &&
        validate::is_valid(buffered.schedule,
                           {.buffered = true, .buffer_limit = 2}) &&
        is_single_sending(ours.schedule, 0);
    t.row(c.P, c.L, c.k, bounds.general_lower, bounds.single_sending_lower,
          ours.completion, ours.slack, buffered.completion, greedy,
          serialized, pipe, baselines::bnk_stated_time(c.P, c.L, c.k),
          logpc::bench::ok(valid));
  }
  t.print();
  std::cout << "shape checks: ours ~ B+L+k-1 (exactly, slack 0) and always\n"
               "<= Thm 3.6's B+2L+k-2; buffered == ss lb everywhere (Thm\n"
               "3.8); serialized ~ k*B and pipelined ~ depth+2k lose at\n"
               "scale; BnK's stated 2B+k+O(L) sits between.\n";

  logpc::bench::section("crossover: pipelined chain vs ours as k grows");
  Table x({"k", "ours (P=29, L=3)", "pipelined chain", "winner"});
  const Params params = Params::postal(29, 3);
  for (const int k : {1, 4, 16, 64, 256}) {
    const auto ours = bcast::kitem_broadcast(29, 3, k);
    const Time chain = completion_time(baselines::pipelined_tree_broadcast(
        baselines::linear_chain(params, 29), k));
    x.row(k, ours.completion, chain,
          ours.completion <= chain ? "ours" : "chain");
  }
  x.print();
  std::cout << "(the chain pays (P-1)L once; ours pays B+L once - ours wins "
               "at every k since B << (P-1)L)\n";
}

void BM_KItemBroadcast(benchmark::State& state) {
  const auto P = static_cast<int>(state.range(0));
  const auto k = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bcast::kitem_broadcast(P, 3, k));
  }
}
BENCHMARK(BM_KItemBroadcast)->Args({10, 8})->Args({42, 16})->Args({124, 32});

void BM_KItemGreedy(benchmark::State& state) {
  const auto P = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bcast::kitem_greedy(P, 3, 8));
  }
}
BENCHMARK(BM_KItemGreedy)->Arg(10)->Arg(42);

}  // namespace

LOGPC_BENCH_MAIN(report)
