file(REMOVE_RECURSE
  "CMakeFiles/test_random_machines.dir/property/random_machines_test.cpp.o"
  "CMakeFiles/test_random_machines.dir/property/random_machines_test.cpp.o.d"
  "test_random_machines"
  "test_random_machines.pdb"
  "test_random_machines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
