# Empty dependencies file for bench_fig6_summation.
# This may be replaced when dependencies are built.
