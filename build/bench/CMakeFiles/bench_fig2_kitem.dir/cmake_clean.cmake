file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_kitem.dir/bench_fig2_kitem.cpp.o"
  "CMakeFiles/bench_fig2_kitem.dir/bench_fig2_kitem.cpp.o.d"
  "bench_fig2_kitem"
  "bench_fig2_kitem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_kitem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
