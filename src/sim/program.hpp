#pragma once

#include "logp/params.hpp"
#include "logp/time.hpp"

/// \file program.hpp
/// Reactive per-processor programs for the simulator.  A program never sees
/// global state: it reacts to items becoming available locally and asks the
/// engine to transmit — exactly the information a real LogP processor has.

namespace logpc::sim {

/// Engine services exposed to a program during a callback.
class Context {
 public:
  virtual ~Context() = default;

  [[nodiscard]] virtual const Params& params() const = 0;
  [[nodiscard]] virtual ProcId self() const = 0;
  [[nodiscard]] virtual Time now() const = 0;

  /// True iff this processor already holds `item`.
  [[nodiscard]] virtual bool has(ItemId item) const = 0;

  /// Queues a transmission of `item` to `to`.  The engine issues queued
  /// sends in FIFO order, each at the earliest cycle that respects the send
  /// gap g and (for o > 0) this processor's receive overheads — i.e. "as
  /// early and as frequently as possible".
  virtual void send(ProcId to, ItemId item) = 0;
};

/// Per-processor behaviour.  Subclass and override; one instance per
/// processor (stateful programs are the norm).
class Program {
 public:
  virtual ~Program() = default;

  /// Called once at the processor's first event time (cycle 0, or the first
  /// initial placement).
  virtual void on_start(Context& /*ctx*/) {}

  /// Called whenever an item becomes available locally, whether by initial
  /// placement or by message reception, at ctx.now().
  virtual void on_item(Context& /*ctx*/, ItemId /*item*/) {}
};

}  // namespace logpc::sim
