#include "svc/introspect.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace_recorder.hpp"

namespace logpc::svc {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Internal Server Error";
  }
}

/// The spans /tracez lists verbatim (the Chrome trace below carries all of
/// them): newest-first would surprise trace viewers, so keep recorder order
/// and cap from the old end.
constexpr std::size_t kTracezSpans = 128;

}  // namespace

std::string IntrospectServer::HttpResponse::serialize() const {
  std::string out;
  out.reserve(body.size() + 160);
  out += "HTTP/1.1 " + std::to_string(status) + " " + status_text(status) +
         "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

IntrospectServer::IntrospectServer(const CollectiveService& service,
                                   Options options)
    : service_(service), opts_(std::move(options)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("introspect: socket(): ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
  if (::inet_pton(AF_INET, opts_.bind.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("introspect: bad bind address '" + opts_.bind +
                             "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("introspect: cannot listen on " + opts_.bind +
                             ":" + std::to_string(opts_.port) + ": " + why);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  thread_ = std::thread([this] { serve(); });
}

IntrospectServer::~IntrospectServer() {
  stop_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) {
    // Waking the blocked accept() is belt-and-braces: shutdown() makes it
    // fail with EINVAL on Linux, but on BSD/macOS shutdown() of a listening
    // socket is ENOTCONN and accept() stays parked — so also poke the
    // listener with a throwaway self-connect the serve loop discards once
    // it sees stop_.
    ::shutdown(listen_fd_, SHUT_RDWR);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd >= 0) {
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(static_cast<std::uint16_t>(port_));
      const char* host =
          opts_.bind == "0.0.0.0" ? "127.0.0.1" : opts_.bind.c_str();
      if (::inet_pton(AF_INET, host, &addr.sin_addr) == 1) {
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
      }
      ::close(fd);
    }
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void IntrospectServer::serve() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (stop_.load(std::memory_order_acquire)) {
      if (fd >= 0) ::close(fd);  // the destructor's wakeup self-connect
      return;
    }
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener shut down (or unrecoverable): stop serving
    }
    // A stalled client (connected but silent, or never reading the
    // response) must not wedge the single accept thread — nor the
    // destructor's join behind it. A couple of seconds is generous for a
    // scraper on loopback.
    timeval io_timeout{};
    io_timeout.tv_sec = 2;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &io_timeout, sizeof io_timeout);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &io_timeout, sizeof io_timeout);
    // One tiny request per connection: read until the header terminator
    // (we ignore bodies — every route is a GET), bounded so a hostile
    // client cannot grow the buffer.
    std::string req;
    char buf[2048];
    while (req.find("\r\n\r\n") == std::string::npos && req.size() < 16384) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n <= 0) break;
      req.append(buf, static_cast<std::size_t>(n));
    }
    std::string_view method = "GET";
    std::string_view target = "/";
    const std::size_t sp1 = req.find(' ');
    if (sp1 != std::string::npos) {
      method = std::string_view(req).substr(0, sp1);
      const std::size_t sp2 = req.find(' ', sp1 + 1);
      if (sp2 != std::string::npos) {
        target = std::string_view(req).substr(sp1 + 1, sp2 - sp1 - 1);
      }
    }
    const std::string wire = handle(method, target).serialize();
    std::size_t sent = 0;
    while (sent < wire.size()) {
      const ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
    ::close(fd);
  }
}

IntrospectServer::HttpResponse IntrospectServer::handle(
    std::string_view method, std::string_view target) const {
  HttpResponse r;
  if (method != "GET") {
    r.status = 405;
    r.body = "method not allowed\n";
    return r;
  }
  const std::size_t q = target.find('?');
  const std::string_view path =
      q == std::string_view::npos ? target : target.substr(0, q);
  if (path == "/healthz") {
    r.body = "ok\n";
  } else if (path == "/metrics") {
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = obs::prometheus_text(obs::MetricsRegistry::global());
  } else if (path == "/statusz") {
    r.content_type = "application/json; charset=utf-8";
    r.body = statusz_json();
  } else if (path == "/tracez") {
    r.content_type = "application/json; charset=utf-8";
    r.body = tracez_json();
  } else if (path == "/") {
    r.body = "logpc collective service\n/healthz\n/metrics\n/statusz\n/tracez\n";
  } else {
    r.status = 404;
    r.body = "not found\n";
  }
  return r;
}

std::string IntrospectServer::statusz_json() const {
  const CollectiveService::ServiceStatus s = service_.status();
  std::string out = "{";
  out += "\"accepting\":" + std::string(s.accepting ? "true" : "false");
  out += ",\"paused\":" + std::string(s.paused ? "true" : "false");
  out += ",\"pools\":" + std::to_string(s.pools);
  out += ",\"queued\":" + std::to_string(s.queued);
  out += ",\"throughput\":{";
  out += "\"inflight\":" + std::to_string(s.inflight);
  out += ",\"fused_requests\":" + std::to_string(s.fused_requests);
  out += ",\"fused_batches\":" + std::to_string(s.fused_batches);
  out += ",\"segmented_runs\":" + std::to_string(s.segmented_runs);
  out += "}";
  out += ",\"params\":{\"P\":" + std::to_string(s.params.P) +
         ",\"L\":" + std::to_string(s.params.L) +
         ",\"o\":" + std::to_string(s.params.o) +
         ",\"g\":" + std::to_string(s.params.g) + "}";
  out += ",\"tenants\":[";
  for (std::size_t i = 0; i < s.tenants.size(); ++i) {
    const auto& t = s.tenants[i];
    if (i > 0) out += ",";
    out += "{\"id\":" + std::to_string(t.id);
    out += ",\"name\":" + obs::json_string(t.name);
    out += ",\"weight\":" + std::to_string(t.weight);
    out += ",\"queue_capacity\":" + std::to_string(t.queue_capacity);
    out += ",\"rate_per_sec\":" + obs::json_number(t.rate_per_sec);
    out += ",\"queue_depth\":{";
    for (std::size_t qc = 0; qc < kQoSClasses; ++qc) {
      if (qc > 0) out += ",";
      out += obs::json_string(qos_name(static_cast<QoS>(qc))) + ":" +
             std::to_string(t.depth_by_qos[qc]);
    }
    out += "}";
    out += ",\"admitted\":" + std::to_string(t.counters.admitted);
    out += ",\"completed\":" + std::to_string(t.counters.completed);
    out += ",\"rejected_queue_full\":" +
           std::to_string(t.counters.rejected_queue_full);
    out += ",\"rejected_rate_limited\":" +
           std::to_string(t.counters.rejected_rate_limited);
    out += ",\"fused\":" + std::to_string(t.counters.fused);
    out += "}";
  }
  out += "]";
  const obs::FlightRecorder& rec = service_.flight_recorder();
  out += ",\"flight_recorder\":{";
  out += "\"capacity\":" + std::to_string(rec.capacity());
  out += ",\"residual_threshold\":" +
         obs::json_number(rec.residual_threshold());
  out += ",\"recorded\":" + std::to_string(s.recorder.recorded);
  out += ",\"dropped\":" + std::to_string(s.recorder.dropped);
  out += ",\"anomalies\":" + std::to_string(s.recorder.anomalies);
  out += ",\"retained\":" + std::to_string(s.recorder.retained);
  out += ",\"last_residual\":" + obs::json_number(s.recorder.last_residual);
  out += ",\"last_critical_path_ns\":" +
         std::to_string(s.recorder.last_critical_path_ns);
  out += "}}";
  return out;
}

std::string IntrospectServer::tracez_json() const {
  const obs::TraceRecorder& rec = obs::TraceRecorder::global();
  const std::vector<obs::TraceEvent> events = rec.events();
  const std::shared_ptr<const obs::RunProfile> profile =
      service_.flight_recorder().last();

  std::string out = "{";
  out += "\"dropped\":" + std::to_string(rec.dropped());
  out += ",\"spans\":[";
  const std::size_t first =
      events.size() > kTracezSpans ? events.size() - kTracezSpans : 0;
  for (std::size_t i = first; i < events.size(); ++i) {
    const obs::TraceEvent& e = events[i];
    if (i > first) out += ",";
    out += "{\"name\":" + obs::json_string(e.name);
    out += ",\"cat\":" + obs::json_string(e.cat);
    out += ",\"arg\":" + obs::json_string(e.arg);
    out += ",\"ts_ns\":" + std::to_string(e.ts_ns);
    out += ",\"dur_ns\":" + std::to_string(e.dur_ns);
    out += ",\"tid\":" + std::to_string(e.tid) + "}";
  }
  out += "]";
  if (profile != nullptr) {
    out += ",\"last_profile\":{";
    out += "\"label\":" + obs::json_string(profile->label);
    out += ",\"P\":" + std::to_string(profile->P);
    out += ",\"wall_ns\":" + std::to_string(profile->wall_ns);
    out += ",\"critical_path_ns\":" +
           std::to_string(profile->critical_path_ns);
    out += ",\"straggler\":" + std::to_string(profile->straggler);
    out += ",\"predicted_ns\":" + obs::json_number(profile->predicted_ns);
    out += ",\"residual\":" + obs::json_number(profile->residual);
    out += ",\"anomalous\":" +
           std::string(profile->anomalous ? "true" : "false");
    out += ",\"hops\":" + std::to_string(profile->critical_path.size());
    out += ",\"components_ns\":{";
    for (std::size_t c = 0; c < obs::kComponents; ++c) {
      if (c > 0) out += ",";
      const auto comp = static_cast<obs::Component>(c);
      out += obs::json_string(obs::component_name(comp)) + ":" +
             std::to_string(profile->total_ns(comp));
    }
    out += "}}";
  } else {
    out += ",\"last_profile\":null";
  }
  // A complete, loadable chrome://tracing / Perfetto document: the runtime
  // spans plus the last profiled run's color-coded component tracks.
  obs::ChromeTraceWriter writer;
  writer.add(rec);
  if (profile != nullptr) writer.add(*profile);
  out += ",\"chrome_trace\":" + writer.json();
  out += "}";
  return out;
}

}  // namespace logpc::svc
