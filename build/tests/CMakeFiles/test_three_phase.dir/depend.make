# Empty dependencies file for test_three_phase.
# This may be replaced when dependencies are built.
