#include "sched/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "bcast/kitem.hpp"
#include "bcast/kitem_buffered.hpp"
#include "bcast/single_item.hpp"
#include "sched/metrics.hpp"

namespace logpc {
namespace {

TEST(ScheduleIO, RoundTripSingleItem) {
  const Schedule original = bcast::optimal_single_item(Params{8, 6, 2, 4});
  const Schedule parsed = schedule_from_text(to_text(original));
  EXPECT_EQ(parsed, original);
}

TEST(ScheduleIO, RoundTripKItemWithGeneratedInitials) {
  const auto r = bcast::kitem_broadcast(10, 3, 5);
  const Schedule parsed = schedule_from_text(to_text(r.schedule));
  EXPECT_EQ(parsed, r.schedule);
  EXPECT_EQ(completion_time(parsed), r.completion);
}

TEST(ScheduleIO, RoundTripBufferedRecvStarts) {
  const auto r = bcast::kitem_buffered(9, 2, 6);
  const Schedule parsed = schedule_from_text(to_text(r.schedule));
  EXPECT_EQ(parsed, r.schedule);
  bool any_delayed = false;
  for (const auto& op : parsed.sends()) {
    any_delayed = any_delayed || op.recv_start != kNever;
  }
  EXPECT_TRUE(any_delayed);
}

TEST(ScheduleIO, TextFormatIsStable) {
  Schedule s(Params::postal(3, 2), 1);
  s.add_initial(0, 0, 0);
  s.add_send(0, 0, 1, 0);
  s.add_send(SendOp{1, 0, 2, 0, 5});
  EXPECT_EQ(to_text(s),
            "logpc-schedule v1\n"
            "params 3 2 0 1\n"
            "items 1\n"
            "init 0 0 0\n"
            "send 0 0 1 0\n"
            "send 1 0 2 0 5\n");
}

TEST(ScheduleIO, CommentsAndBlankLinesIgnored) {
  const Schedule parsed = schedule_from_text(
      "logpc-schedule v1\n"
      "# a comment\n"
      "params 2 3 0 1\n"
      "\n"
      "items 1\n"
      "   # indented comment\n"
      "init 0 0 0\n"
      "send 0 0 1 0\n");
  EXPECT_EQ(parsed.params(), Params::postal(2, 3));
  EXPECT_EQ(parsed.sends().size(), 1u);
}

TEST(ScheduleIO, RejectsMalformedInput) {
  EXPECT_THROW(schedule_from_text(""), std::invalid_argument);
  EXPECT_THROW(schedule_from_text("not-a-schedule\n"), std::invalid_argument);
  EXPECT_THROW(schedule_from_text("logpc-schedule v1\nparams 2 3 0\n"),
               std::invalid_argument);
  EXPECT_THROW(schedule_from_text("logpc-schedule v1\nparams 0 3 0 1\n"),
               std::invalid_argument);
  EXPECT_THROW(
      schedule_from_text("logpc-schedule v1\nparams 2 3 0 1\nitems 0\n"),
      std::invalid_argument);
  EXPECT_THROW(schedule_from_text("logpc-schedule v1\nparams 2 3 0 1\n"
                                  "items 1\nfrobnicate 1 2 3\n"),
               std::invalid_argument);
}

TEST(ScheduleIO, RejectsOutOfRangeIds) {
  const std::string head =
      "logpc-schedule v1\nparams 2 3 0 1\nitems 1\n";
  EXPECT_THROW(schedule_from_text(head + "init 0 5 0\n"),
               std::invalid_argument);
  EXPECT_THROW(schedule_from_text(head + "init 3 0 0\n"),
               std::invalid_argument);
  EXPECT_THROW(schedule_from_text(head + "send 0 0 9 0\n"),
               std::invalid_argument);
  EXPECT_THROW(schedule_from_text(head + "send 0 0 1 7\n"),
               std::invalid_argument);
}

TEST(ScheduleIO, ErrorMessagesCarryLineNumbers) {
  try {
    (void)schedule_from_text("logpc-schedule v1\nparams 2 3 0 1\nitems 1\n"
                             "send bogus\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }
}

TEST(ScheduleIO, BinaryRoundTripStrictModel) {
  const Schedule original = bcast::optimal_single_item(Params{8, 6, 2, 4});
  std::stringstream stream;
  write_binary(stream, original);
  EXPECT_EQ(read_binary(stream), original);
}

TEST(ScheduleIO, BinaryRoundTripKeepsExplicitRecvStarts) {
  // Buffered schedules carry recv_start on every send; the binary form
  // must preserve both the explicit values and the kNever sentinel.
  const Schedule buffered = bcast::kitem_buffered(9, 2, 6).schedule;
  std::stringstream stream;
  write_binary(stream, buffered);
  const Schedule parsed = read_binary(stream);
  EXPECT_EQ(parsed, buffered);
  bool any_delayed = false;
  for (const auto& op : parsed.sends()) {
    any_delayed = any_delayed || op.recv_start != kNever;
  }
  EXPECT_TRUE(any_delayed);
}

TEST(ScheduleIO, BinaryRejectsBadMagicAndTruncation) {
  std::stringstream garbage("XXXXXXXXXXXXXXXXXXXXXXXX");
  EXPECT_THROW((void)read_binary(garbage), std::invalid_argument);

  const Schedule original = bcast::optimal_single_item(Params{4, 2, 1, 2});
  std::stringstream stream;
  write_binary(stream, original);
  const std::string full = stream.str();
  std::stringstream truncated(full.substr(0, full.size() - 5));
  EXPECT_THROW((void)read_binary(truncated), std::invalid_argument);
}

}  // namespace
}  // namespace logpc
