file(REMOVE_RECURSE
  "CMakeFiles/test_kitem_bounds.dir/bcast/kitem_bounds_test.cpp.o"
  "CMakeFiles/test_kitem_bounds.dir/bcast/kitem_bounds_test.cpp.o.d"
  "test_kitem_bounds"
  "test_kitem_bounds.pdb"
  "test_kitem_bounds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kitem_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
