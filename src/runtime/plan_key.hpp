#pragma once

#include <bit>
#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "logp/hier.hpp"
#include "logp/params.hpp"

/// \file plan_key.hpp
/// Canonical cache keys for the planning runtime.  A PlanKey pins down one
/// planning request — which collective, on which machine, with which size
/// arguments — normalized so every argument spelling that provably yields
/// the same plan maps to the same key:
///
///  * problems the paper states in the postal model (Section 3 k-item
///    broadcasts, Theorem 4.1 combining broadcast, the postal baselines)
///    fold the overheads into the effective hop latency L + 2o and store
///    the postal machine (g = 1, o = 0) — exactly the projection
///    api::Communicator applies before calling those builders;
///  * problems with a fixed or irrelevant source (k-item, summation,
///    all-to-all, all-reduce) normalize root to 0;
///  * problems that ignore the item count (single-item broadcast, scatter,
///    reduce, the tree baselines) normalize k to 1.
///
/// Keys hash and compare by value, so they drop straight into the sharded
/// cache (plan_cache.hpp) and the in-flight dedup map (planner.hpp).

namespace logpc::runtime {

/// Which schedule producer a key addresses.  The first block are the
/// paper's optimal constructions; the second are the src/baselines
/// comparators, so a tuning layer can price alternatives through the same
/// cache (examples/collective_planner.cpp does).
enum class Problem : std::uint8_t {
  kBroadcast = 0,           ///< Theorem 2.1 optimal single-item broadcast
  kKItemBroadcast,          ///< Section 3 single-sending k items (postal)
  kBufferedKItemBroadcast,  ///< Theorem 3.8 buffered k items (postal)
  kScatter,                 ///< one distinct item from the root to each proc
  kGather,                  ///< one distinct item from each proc to the root
  kReduce,                  ///< Section 4.2 message reduction
  kSummation,               ///< Section 5 summation; k = operand count n
  kAllToAll,                ///< Section 4.1 rotation; k items per processor
  kAllToAllPersonalized,    ///< same rotation, distinct item per destination
  kAllReduce,               ///< Theorem 4.1 combining broadcast (postal)
  // --- baselines (src/baselines) ---------------------------------------
  kBinomialBroadcast,
  kBinaryBroadcast,
  kChainBroadcast,
  kFlatBroadcast,
  kSerializedKItem,         ///< k * B(P) strawman (postal)
  kPipelinedBinaryKItem,    ///< pipelined fixed binary tree (postal)
  kPipelinedChainKItem,     ///< pipelined chain (postal)
  // --- topology-aware (src/bcast/hierarchical) --------------------------
  /// Two-level broadcast on the uniform hierarchical machine: `params`
  /// carries the intra-cluster class (P = total ranks), the key's topology
  /// fields the cluster count and cross-cluster class.  Appended last so
  /// older snapshots' numeric problem ids stay stable.
  kHierarchicalBroadcast,
};

/// Number of Problem enumerators (snapshot loading validates against it).
inline constexpr int kNumProblems =
    static_cast<int>(Problem::kHierarchicalBroadcast) + 1;

/// Stable short name ("kitem", "allreduce", ...) for logs and key strings.
[[nodiscard]] std::string_view problem_name(Problem p);

/// True iff `p` is stated in the postal model, i.e. its key normalizes the
/// machine to Params::postal(P, L + 2o).
[[nodiscard]] bool is_postal_problem(Problem p);

struct PlanKey {
  Problem problem = Problem::kBroadcast;
  Params params;       ///< canonical machine (postal-projected when due)
  std::int64_t k = 1;  ///< item / operand count (1 when irrelevant)
  ProcId root = 0;     ///< source or destination (0 when irrelevant)
  /// Membership mask: bit r set means physical rank r participates.  0 is
  /// the common fast path meaning "all P ranks".  A non-zero mask (the
  /// recovery layer's degraded re-plan over the survivors of a rank
  /// failure) requires P <= 64, every set bit < P, and — for rooted
  /// problems — the root bit set; an all-ones mask normalizes back to 0 so
  /// the degenerate spelling cannot split the cache.
  ///
  /// HARD LIMIT: this is a single 64-bit word, so masked (fault-tolerant)
  /// keys exist only for P <= 64.  `make` rejects mask != 0 with P > 64
  /// (std::invalid_argument) rather than silently dropping ranks >= 64, and
  /// the accessors below re-check so a hand-assembled key that bypassed
  /// `make` faults fast instead of shifting past the word.  Machines larger
  /// than 64 ranks plan full-membership keys only (mask == 0) — large-P
  /// paths (e.g. the implicit planner) are unaffected since they never
  /// mask.  Widening this to a rank-set type is the extension point if FT
  /// replan is ever needed past 64 ranks.
  std::uint64_t mask = 0;

  /// Topology extension, meaningful only for kHierarchicalBroadcast (zero
  /// for every other problem, so flat keys hash and compare exactly as
  /// before): the cluster count of the *uniform* hierarchical machine
  /// (HierParams::uniform — C balanced contiguous blocks; a general
  /// rank->cluster map cannot live in a fixed-size key) and the
  /// cross-cluster link class.  `params` carries the intra class with
  /// params.P = total ranks.  Normalizations in make(): clusters <= 1
  /// degenerates to kBroadcast on the intra machine, clusters == P (all
  /// singletons, intra links never used) to kBroadcast on the cross
  /// machine.  Membership masks are rejected for hierarchical keys — the
  /// recovery layer is topology-blind.
  std::int32_t clusters = 0;
  Time cross_L = 0;
  Time cross_o = 0;
  Time cross_g = 0;

  /// Builds the canonical key for a request stated on the *physical*
  /// machine `params` (normalization applied here).  Throws
  /// std::invalid_argument for an invalid machine, a root out of range,
  /// k < 1, an ill-formed membership mask, or an ill-formed topology.
  /// Idempotent: make(key.problem, key.params, key.k, key.root, key.mask,
  /// key.clusters, key.cross_L, key.cross_o, key.cross_g) returns the key
  /// unchanged.
  [[nodiscard]] static PlanKey make(Problem problem, const Params& params,
                                    std::int64_t k = 1, ProcId root = 0,
                                    std::uint64_t mask = 0,
                                    std::int32_t clusters = 0,
                                    Time cross_L = 0, Time cross_o = 0,
                                    Time cross_g = 0);

  /// The canonical key for a two-level broadcast on the uniform
  /// hierarchical machine `h`.  Throws std::invalid_argument when `h` is
  /// invalid or not the uniform() spelling (is_uniform_blocks()).
  [[nodiscard]] static PlanKey hierarchical(const HierParams& h,
                                            ProcId root = 0);

  /// Reconstructs the uniform hierarchical machine of a
  /// kHierarchicalBroadcast key; throws std::logic_error for other
  /// problems.
  [[nodiscard]] HierParams hier_params() const;

  /// Participating ranks: popcount of the mask, or P when the mask is 0.
  /// Throws std::logic_error for a hand-assembled key whose mask cannot
  /// cover the machine (mask != 0 with P > 64) — see the mask field's note.
  [[nodiscard]] int live_count() const {
    if (mask != 0 && params.P > 64) {
      throw std::logic_error(
          "PlanKey: membership masks require P <= 64");
    }
    return mask == 0 ? params.P : std::popcount(mask);
  }

  /// Participating physical ranks in increasing order.  Index i of this
  /// vector is the plan's processor i: the masked plan is built on the
  /// compacted machine of live_count() processors, and this is the map
  /// from plan (virtual) ranks back to physical ones.
  [[nodiscard]] std::vector<ProcId> live_ranks() const {
    std::vector<ProcId> out;
    out.reserve(static_cast<std::size_t>(live_count()));
    if (mask == 0) {
      for (ProcId r = 0; r < params.P; ++r) out.push_back(r);
    } else {
      for (ProcId r = 0; r < params.P; ++r) {
        if ((mask >> r) & 1) out.push_back(r);
      }
    }
    return out;
  }

  // Conveniences mirroring the api::Communicator surface.
  [[nodiscard]] static PlanKey broadcast(const Params& p, ProcId root = 0);
  [[nodiscard]] static PlanKey kitem(const Params& p, std::int64_t k);
  /// The segment-count-extended broadcast key the serving layer's
  /// segmented pipeline resolves through: a payload split into `segments`
  /// pieces is exactly a Section 3 single-sending k-item broadcast with
  /// k = segments, so the key is kitem's (postal projection, root
  /// normalized to 0 — the executable lowering swaps ranks for other
  /// roots).  Spelling it this way keeps one cache entry per (machine,
  /// segment count) shared between the bench harnesses and the service.
  [[nodiscard]] static PlanKey segmented_broadcast(const Params& p,
                                                   std::int64_t segments);
  [[nodiscard]] static PlanKey kitem_buffered(const Params& p,
                                              std::int64_t k);
  [[nodiscard]] static PlanKey scatter(const Params& p, ProcId root = 0);
  [[nodiscard]] static PlanKey gather(const Params& p, ProcId root = 0);
  [[nodiscard]] static PlanKey reduce(const Params& p, ProcId root = 0);
  [[nodiscard]] static PlanKey summation(const Params& p, std::int64_t n);
  [[nodiscard]] static PlanKey alltoall(const Params& p, std::int64_t k = 1);
  [[nodiscard]] static PlanKey alltoall_personalized(const Params& p);
  [[nodiscard]] static PlanKey allreduce(const Params& p);

  /// "kitem(P=16 L=10 o=0 g=1, k=8, root=0)" — for logs and diagnostics.
  [[nodiscard]] std::string to_string() const;

  /// FNV-1a over every field; stable within a process run.
  [[nodiscard]] std::size_t hash() const;

  friend bool operator==(const PlanKey&, const PlanKey&) = default;
};

/// Hasher for unordered containers keyed by PlanKey.
struct PlanKeyHash {
  [[nodiscard]] std::size_t operator()(const PlanKey& key) const {
    return key.hash();
  }
};

std::ostream& operator<<(std::ostream& os, const PlanKey& key);

}  // namespace logpc::runtime
