#include "exec/engine.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "exec/arena.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"

namespace logpc::exec {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_since(Clock::time_point epoch) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

/// Shared failure latch: the first error wins, everyone else bails out of
/// their spin loops promptly.  `failed_rank` distinguishes a declared rank
/// death (recoverable: run_broadcast_ft re-plans around it) from a plain
/// engine error.
struct Failure {
  std::atomic<bool> abort{false};
  std::atomic<ProcId> failed_rank{kNoProc};
  std::mutex mu;
  std::string message;

  void fail(const std::string& m) {
    {
      std::lock_guard lock(mu);
      if (message.empty()) message = m;
    }
    abort.store(true, std::memory_order_release);
  }

  void fail_rank(ProcId rank, const std::string& m) {
    ProcId expected = kNoProc;
    failed_rank.compare_exchange_strong(expected, rank,
                                        std::memory_order_relaxed);
    fail(m);
  }
};

}  // namespace

Engine& Engine::shared() {
  static Engine* engine = new Engine();  // leaked: outlives static teardown
  return *engine;
}

void Engine::prewarm(int procs) {
  if (procs <= 0) return;
  pool_.reserve(static_cast<unsigned>(procs));
}

ExecReport Engine::run(const Program& program,
                       const std::vector<Bytes>& item_values,
                       const fault::Injector* injector) {
  if (program.mode != Mode::kMove) {
    throw std::invalid_argument("Engine::run: program is not move-mode");
  }
  return run_impl(program, &item_values, nullptr, nullptr, nullptr, nullptr,
                  injector);
}

ExecReport Engine::run_segmented(const Program& program,
                                 const SegmentRun& seg,
                                 const fault::Injector* injector) {
  if (program.mode != Mode::kMove) {
    throw std::invalid_argument(
        "Engine::run: segmented run needs a move-mode program");
  }
  if (seg.segments != program.num_items) {
    throw std::invalid_argument(
        "Engine::run: SegmentRun::segments (" +
        std::to_string(seg.segments) + ") must equal the program's num_items (" +
        std::to_string(program.num_items) + ")");
  }
  if (seg.payload.empty()) {
    throw std::invalid_argument(
        "Engine::run: segmented run needs a non-empty payload");
  }
  return run_impl(program, nullptr, &seg, nullptr, nullptr, nullptr, injector);
}

ExecReport Engine::run(const Program& program, const std::vector<Bytes>& values,
                       const Combiner& op, const fault::Injector* injector) {
  if (program.mode != Mode::kFold) {
    throw std::invalid_argument("Engine::run: program is not fold-mode");
  }
  if (!op.valid()) {
    throw std::invalid_argument("Engine::run: combiner has no operator");
  }
  return run_impl(program, nullptr, nullptr, &values, nullptr, &op, injector);
}

ExecReport Engine::run(const Program& program, const std::vector<Bytes>& values,
                       const CombineFn& op, const fault::Injector* injector) {
  return run(program, values, Combiner(op), injector);
}

ExecReport Engine::run(const Program& program,
                       const std::vector<std::vector<Bytes>>& operands,
                       const Combiner& op, const fault::Injector* injector) {
  if (program.mode != Mode::kSum) {
    throw std::invalid_argument("Engine::run: program is not summation-mode");
  }
  if (!op.valid()) {
    throw std::invalid_argument("Engine::run: combiner has no operator");
  }
  return run_impl(program, nullptr, nullptr, nullptr, &operands, &op,
                  injector);
}

ExecReport Engine::run(const Program& program,
                       const std::vector<std::vector<Bytes>>& operands,
                       const CombineFn& op, const fault::Injector* injector) {
  return run(program, operands, Combiner(op), injector);
}

ExecReport Engine::run_impl(const Program& program,
                            const std::vector<Bytes>* item_values,
                            const SegmentRun* seg,
                            const std::vector<Bytes>* fold_values,
                            const std::vector<std::vector<Bytes>>* operands,
                            const Combiner* op,
                            const fault::Injector* injector) {
  program.params.require_valid();
  const auto P = static_cast<std::size_t>(program.params.P);
  if (program.procs.size() != P) {
    throw std::invalid_argument("Engine::run: program/params size mismatch");
  }
  const auto num_items = static_cast<std::size_t>(program.num_items);

  // --- validate payload inputs against the program -----------------------
  if (program.mode == Mode::kMove) {
    if (item_values != nullptr && item_values->size() != num_items) {
      throw std::invalid_argument("Engine::run: expected " +
                                  std::to_string(num_items) +
                                  " item payloads, got " +
                                  std::to_string(item_values->size()));
    }
  } else if (program.mode == Mode::kFold) {
    if (fold_values->size() != P) {
      throw std::invalid_argument(
          "Engine::run: expected one value per processor");
    }
  } else {
    for (const ProcProgram& pp : program.procs) {
      if (pp.sum_index < 0) continue;
      const auto idx = static_cast<std::size_t>(pp.sum_index);
      if (idx >= operands->size() ||
          (*operands)[idx].size() != pp.num_operands) {
        throw std::invalid_argument(
            "Engine::run: operand count mismatch at plan index " +
            std::to_string(idx) + " (want " +
            std::to_string(pp.num_operands) + ")");
      }
    }
  }

  const std::size_t cap = opts_.mailbox_capacity != 0
                              ? opts_.mailbox_capacity
                              : static_cast<std::size_t>(
                                    program.params.capacity());
  if (cap == 0) {
    throw std::invalid_argument(
        "Engine::run: mailbox capacity is 0 for " +
        program.params.to_string() +
        " — a network admitting no in-flight message cannot run any "
        "schedule; fix the machine parameters instead of clamping");
  }

  const bool reliable = injector != nullptr || opts_.recovery.enabled;
  const Recovery& rec = opts_.recovery;
  const WaitPolicy& wait = opts_.wait;
  const KernelFn kernel = op != nullptr ? op->kernel() : nullptr;

  // Serialize runs on this engine *before* starting the watchdog clock:
  // a run queued behind another must not burn its timeout budget waiting
  // for the pool.
  std::lock_guard run_lock(run_mu_);

  // --- run state: the engine's warm per-run context ----------------------
  // Threads are warm when the pool already holds a worker per processor;
  // buffers are warm when the context's previous shape matches and
  // prepare() recycled every ring/queue/arena chunk without allocating.
  const bool pool_warm =
      pool_.size() >= static_cast<unsigned>(program.params.P);
  RunShape shape;
  shape.links = program.links.size();
  shape.capacity = cap;
  shape.mailbox_stats = opts_.mailbox_stats;
  shape.reliable = reliable;
  shape.procs = P;
  const bool buffers_warm = ctx_.prepare(shape);
  std::vector<std::unique_ptr<SpscMailbox>>& mailboxes = ctx_.mailboxes;
  std::vector<PendingQ>& pending = ctx_.pending;
  std::vector<std::unique_ptr<AckRing>>& acks = ctx_.acks;
  std::vector<std::uint64_t>& send_seq = ctx_.send_seq;
  std::vector<std::uint64_t>& acked = ctx_.acked;
  std::vector<std::uint64_t>& accepted = ctx_.accepted;
  std::vector<std::uint64_t>& attempts = ctx_.attempts;
  Heartbeat* const hearts = ctx_.hearts.get();

  ExecReport report;
  report.params = program.params;
  report.mode = program.mode;
  report.label = program.label;
  report.predicted_makespan = program.predicted_makespan;
  report.messages = program.num_messages;
  report.mailbox_capacity = cap;
  report.warm_pool = pool_warm;
  report.warm_buffers = buffers_warm;
  report.events.resize(P);
  report.deliveries.resize(P);
  report.fault_events.resize(P);
  report.folded.resize(P);

  // --- kMove payload staging: the context's warm buffer arena ------------
  // Every (processor, item) slot the plan touches is carved 64-byte-aligned
  // out of one bump arena before workers start, so the receive hot path is
  // a plain memcpy — no allocator calls on any worker thread.  The arena
  // and slot tables live in the run context (rewound by prepare(), chunks
  // kept warm across runs) and outlive the pool epoch below.
  std::vector<Slot>& slots = ctx_.slots;
  std::vector<char>& slot_filled = ctx_.slot_filled;
  auto slot_index = [num_items](std::size_t p, std::size_t item) {
    return p * num_items + item;
  };
  BufferArena& arena = ctx_.arena;
  if (program.mode == Mode::kMove) {
    // A segmented run coalesces: one result buffer per proc, not one per
    // item (the per-item slots alias ranges of it, see below).
    report.items.assign(P, std::vector<Bytes>(seg != nullptr ? 1 : num_items));
    slots.assign(P * num_items, Slot{});
    slot_filled.assign(P * num_items, 0);
    std::vector<char>& used = ctx_.slot_used;
    used.assign(P * num_items, 0);
    for (const InitialPlacement& init : program.initials) {
      used[slot_index(static_cast<std::size_t>(init.proc),
                      static_cast<std::size_t>(init.item))] = 1;
    }
    for (std::size_t p = 0; p < P; ++p) {
      for (const Instr& ins : program.procs[p].instrs) {
        if (ins.op == OpCode::kRecv) {
          used[slot_index(p, static_cast<std::size_t>(ins.item))] = 1;
        }
      }
    }
    if (seg != nullptr) {
      // Coalesced segmented layout: every processor the plan touches gets
      // ONE contiguous result buffer the size of the whole payload, and
      // each segment's slot aliases its range of it.  Deliveries then land
      // in their final position — the arena and the post-run publication
      // pass below are skipped entirely, so a k-segment run pays no more
      // serial memcpy than a bulk single-item run.
      const std::size_t total = seg->payload.size();
      const std::size_t base = total / num_items;
      const std::size_t rem = total % num_items;
      const auto seg_off = [base, rem](std::size_t i) {
        return i * base + std::min(i, rem);
      };
      const auto seg_len = [base, rem](std::size_t i) {
        return base + (i < rem ? 1 : 0);
      };
      for (std::size_t p = 0; p < P; ++p) {
        bool touched = false;
        for (std::size_t i = 0; i < num_items; ++i) {
          touched = touched || used[slot_index(p, i)] != 0;
        }
        if (!touched) continue;
        Bytes& buf = report.items[p][0];
        buf.resize(total);
        for (std::size_t i = 0; i < num_items; ++i) {
          if (!used[slot_index(p, i)]) continue;
          slots[slot_index(p, i)] = Slot{buf.data() + seg_off(i), seg_len(i)};
        }
      }
      for (const InitialPlacement& init : program.initials) {
        const auto item = static_cast<std::size_t>(init.item);
        const Slot& s = slots[slot_index(static_cast<std::size_t>(init.proc),
                                         item)];
        if (s.size != 0) {
          std::memcpy(s.data, seg->payload.data() + seg_off(item), s.size);
        }
        slot_filled[slot_index(static_cast<std::size_t>(init.proc), item)] = 1;
      }
    } else {
      for (std::size_t p = 0; p < P; ++p) {
        for (std::size_t i = 0; i < num_items; ++i) {
          if (!used[slot_index(p, i)]) continue;
          const std::size_t size = (*item_values)[i].size();
          slots[slot_index(p, i)] = Slot{arena.allocate(size), size};
        }
      }
      for (const InitialPlacement& init : program.initials) {
        const Slot& s = slots[slot_index(static_cast<std::size_t>(init.proc),
                                         static_cast<std::size_t>(init.item))];
        const Bytes& v = (*item_values)[static_cast<std::size_t>(init.item)];
        if (!v.empty()) std::memcpy(s.data, v.data(), v.size());
        slot_filled[slot_index(static_cast<std::size_t>(init.proc),
                               static_cast<std::size_t>(init.item))] = 1;
      }
    }
  } else if (program.mode == Mode::kFold) {
    for (std::size_t p = 0; p < P; ++p) report.folded[p] = (*fold_values)[p];
  }
  report.arena_bytes = arena.bytes_used();

  std::vector<std::size_t> bytes_moved(P, 0);
  std::vector<std::size_t> retries(P, 0);
  std::vector<std::size_t> duplicates(P, 0);
  std::vector<std::size_t> kernel_folds(P, 0);
  std::vector<std::size_t> generic_folds(P, 0);
  std::vector<std::size_t> kernel_bytes(P, 0);
  std::vector<std::vector<double>> backoffs_ns(P);  // lapsed retransmit waits
  Failure failure;
  ParkGate park_gate;
  const Clock::time_point start = Clock::now();
  const Clock::time_point deadline =
      start + std::chrono::milliseconds(opts_.timeout_ms);
  const auto suspect_after = std::chrono::milliseconds(rec.suspect_after_ms);

  auto worker = [&](int wi) {
    const auto p = static_cast<std::size_t>(wi);
    const auto rank = static_cast<ProcId>(wi);
    const ProcProgram& stream = program.procs[p];
    obs::Span span("exec.worker", "exec");
    if (span.active()) {
      span.set_arg("p" + std::to_string(wi) + " " + program.label);
    }

    auto beat = [&] {
      if (reliable) hearts[p].v.fetch_add(1, std::memory_order_relaxed);
    };

    // Liveness watch on one peer: last observed heartbeat + when it last
    // moved.  suspect() accuses the peer dead once the heartbeat has been
    // frozen for suspect_after_ms of blocked waiting.
    struct Watch {
      std::uint64_t hb;
      Clock::time_point changed;
    };
    auto watch_of = [&](ProcId peer) {
      return Watch{hearts[static_cast<std::size_t>(peer)].v.load(
                       std::memory_order_relaxed),
                   Clock::now()};
    };
    auto suspect = [&](ProcId peer, Watch& w) -> bool {
      const std::uint64_t cur =
          hearts[static_cast<std::size_t>(peer)].v.load(
              std::memory_order_relaxed);
      const Clock::time_point now = Clock::now();
      if (cur != w.hb) {
        w.hb = cur;
        w.changed = now;
        return false;
      }
      if (now - w.changed < suspect_after) return false;
      failure.fail_rank(
          peer, "exec::Engine: rank " + std::to_string(peer) +
                    " declared dead (heartbeat frozen while P" +
                    std::to_string(wi) + " waited on it, " + program.label +
                    ")");
      return true;
    };

    // Plain blocking wait (fault-free path): walk the WaitPolicy ladder —
    // cpu_relax spins, then slow ticks that check the watchdog deadline
    // and yield/park per the policy.
    auto blocking = [&](auto&& attempt) -> bool {
      Waiter w(wait, &park_gate);
      while (!attempt()) {
        if (failure.abort.load(std::memory_order_acquire)) return false;
        if (w.should_tick()) {
          if (Clock::now() > deadline) {
            failure.fail("exec::Engine: timeout at P" + std::to_string(wi) +
                         " (" + program.label + ")");
            return false;
          }
          w.idle();
        }
      }
      return true;
    };

    // Reliable blocking wait: additionally keeps our heartbeat moving and
    // runs the failure detector against the peer we are blocked on.
    auto blocking_on = [&](ProcId peer, auto&& attempt) -> bool {
      Watch watch = watch_of(peer);
      Waiter w(wait, &park_gate);
      while (!attempt()) {
        beat();
        if (failure.abort.load(std::memory_order_acquire)) return false;
        if (w.should_tick()) {
          if (Clock::now() > deadline) {
            failure.fail("exec::Engine: timeout at P" + std::to_string(wi) +
                         " (" + program.label + ")");
            return false;
          }
          if (suspect(peer, watch)) return false;
          w.idle();
        }
      }
      return true;
    };

    // Busy-stall (injected delay / slow-rank stall) that stays alive to
    // the failure detector.
    auto stall = [&](std::uint64_t ns) -> bool {
      const Clock::time_point until =
          Clock::now() + std::chrono::nanoseconds(ns);
      while (Clock::now() < until) {
        beat();
        if (failure.abort.load(std::memory_order_acquire)) return false;
        std::this_thread::yield();
      }
      return true;
    };

    // Sender side of acked delivery: drain cumulative acks; once the ack
    // timeout lapses, retransmit with exponential backoff (max_retries
    // ramp steps, then a steady max_backoff cadence) until the ack lands
    // or the heartbeat detector / watchdog ends the wait.
    auto await_ack = [&](ProcId peer, std::size_t link, const Message& m,
                         SpscMailbox& mb) -> bool {
      AckRing& ar = *acks[link];
      auto drained = [&] {
        std::uint64_t a = 0;
        while (ar.try_pop(a)) acked[link] = std::max(acked[link], a);
        return acked[link] >= m.seq;
      };
      Watch watch = watch_of(peer);
      auto backoff = std::chrono::microseconds(rec.ack_timeout_us);
      const auto max_backoff = std::chrono::microseconds(rec.max_backoff_us);
      Clock::time_point next_retx = Clock::now() + backoff;
      int retries_left = rec.max_retries;
      Waiter w(wait, &park_gate);
      while (!drained()) {
        beat();
        if (failure.abort.load(std::memory_order_acquire)) return false;
        if (w.should_tick()) {
          const Clock::time_point now = Clock::now();
          if (now > deadline) {
            failure.fail("exec::Engine: ack timeout at P" +
                         std::to_string(wi) + " (" + program.label + ")");
            return false;
          }
          if (suspect(peer, watch)) return false;
          if (now >= next_retx) {
            // Retransmit for as long as the ack is missing: a receiver
            // that was busy on another link while the exponential ramp
            // ran out may still drop the queued copies, and a sender
            // that stops resending would deadlock the pair until the
            // watchdog.  max_retries bounds the backoff RAMP; past it
            // the cadence stays at max_backoff until the ack lands, the
            // peer is declared dead, or the deadline fires.
            backoffs_ns[p].push_back(static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(backoff)
                    .count()));
            // try_push: if the ring is full the original copy is still
            // queued, so there is nothing to retransmit past.
            if (mb.try_push(m)) ++retries[p];
            if (retries_left > 0) {
              --retries_left;
              backoff = std::min(backoff * static_cast<std::int64_t>(
                                               std::max<std::uint64_t>(
                                                   rec.backoff_factor, 1)),
                                 max_backoff);
            }
            next_retx = now + backoff;
          }
          w.idle();
        }
      }
      return true;
    };

    // kFold seeds the accumulator with the processor's own value (already
    // copied into report.folded); kSum starts empty.  A typed combiner
    // takes the fused kernel on every size-matched fold; anything else —
    // including the first contribution, which is assigned — goes through
    // the generic lane.  The fold ORDER is the instruction stream either
    // way, so non-commutative combination_order survives intact.
    Bytes& acc = report.folded[p];
    bool acc_have = program.mode == Mode::kFold;
    std::size_t operand_pos = 0;
    auto fold = [&](std::span<const std::byte> rhs) {
      if (!acc_have) {
        acc.assign(rhs.begin(), rhs.end());
        acc_have = true;
        return;
      }
      if (kernel != nullptr && acc.size() == rhs.size()) {
        kernel(acc.data(), rhs.data(), acc.size());
        ++kernel_folds[p];
        kernel_bytes[p] += rhs.size();
      } else {
        (op->generic())(acc, rhs);
        ++generic_folds[p];
      }
    };

    const bool slow = injector != nullptr && injector->is_slow(rank);
    if (slow && !stream.instrs.empty()) {
      report.fault_events[p].push_back(
          fault::FaultEvent{fault::FaultKind::kSlow, rank, kNoProc, 0});
    }

    report.events[p].reserve(stream.instrs.size());
    std::size_t ii = 0;
    for (const Instr& ins : stream.instrs) {
      const std::size_t instr_index = ii++;
      beat();
      if (injector != nullptr && injector->dies_at(rank, instr_index)) {
        // Crash-stop: no more sends, receives, acks, or heartbeats.  The
        // peers' failure detectors take it from here.
        report.fault_events[p].push_back(fault::FaultEvent{
            fault::FaultKind::kDead, rank, kNoProc, instr_index});
        return;
      }
      if (slow && !stall(injector->slow_stall_ns())) return;

      switch (ins.op) {
        case OpCode::kSend: {
          ExecEvent ev;
          ev.kind = ExecEvent::Kind::kSend;
          ev.peer = ins.peer;
          ev.item = ins.item;
          ev.planned = ins.when;
          ev.start_ns = ns_since(start);
          const std::byte* payload_data;
          std::size_t payload_size;
          if (program.mode == Mode::kMove) {
            const Slot& s = slots[slot_index(p, static_cast<std::size_t>(ins.item))];
            payload_data = s.data;
            payload_size = s.size;
          } else {
            payload_data = acc.data();
            payload_size = acc.size();
          }
          const auto link = static_cast<std::size_t>(ins.link);
          SpscMailbox& mb = *mailboxes[link];
          Message m{ins.item, payload_data, payload_size, 0};
          if (reliable) {
            m.seq = ++send_seq[link];
            const std::uint64_t delay =
                injector != nullptr
                    ? injector->send_delay_ns(rank, ins.link, m.seq)
                    : 0;
            if (delay > 0) {
              report.fault_events[p].push_back(fault::FaultEvent{
                  fault::FaultKind::kDelay, rank, ins.peer, m.seq});
              if (!stall(delay)) return;
            }
            if (!blocking_on(ins.peer, [&] { return mb.try_push(m); })) return;
            ev.xfer_ns = ns_since(start);
            if (!await_ack(ins.peer, link, m, mb)) return;
          } else {
            if (!blocking([&] { return mb.try_push(m); })) return;
            ev.xfer_ns = ns_since(start);
          }
          ev.end_ns = ns_since(start);
          bytes_moved[p] += payload_size;
          report.events[p].push_back(ev);
          break;
        }
        case OpCode::kRecv: {
          ExecEvent ev;
          ev.kind = ExecEvent::Kind::kRecv;
          ev.peer = ins.peer;
          ev.item = ins.item;
          ev.planned = ins.when;
          ev.start_ns = ns_since(start);
          const auto link = static_cast<std::size_t>(ins.link);
          SpscMailbox& mb = *mailboxes[link];
          Message m;
          if (reliable) {
            AckRing& ar = *acks[link];
            const std::uint64_t expect = accepted[link] + 1;
            for (;;) {
              if (!blocking_on(ins.peer, [&] { return mb.try_pop(m); })) {
                return;
              }
              if (m.seq < expect) {
                // A retransmitted copy of a message already accepted:
                // discard exactly-once, re-ack best-effort so the sender
                // stops resending.
                ++duplicates[p];
                ar.try_push(accepted[link]);
                continue;
              }
              if (m.seq > expect) {
                failure.fail("exec::Engine: P" + std::to_string(wi) +
                             " sequence gap on link from P" +
                             std::to_string(ins.peer) + " (got " +
                             std::to_string(m.seq) + ", expected " +
                             std::to_string(expect) + ")");
                return;
              }
              const std::uint64_t attempt = ++attempts[link];
              if (injector != nullptr &&
                  injector->drop_delivery(rank, ins.link, m.seq, attempt)) {
                // Discarded in transit: no ack, so the sender retransmits.
                report.fault_events[p].push_back(fault::FaultEvent{
                    fault::FaultKind::kDrop, rank, ins.peer, m.seq});
                continue;
              }
              break;
            }
            accepted[link] = m.seq;
            attempts[link] = 0;
            if (!blocking_on(ins.peer,
                             [&] { return ar.try_push(accepted[link]); })) {
              return;
            }
          } else {
            // Fast lane: drain every message this stream consumes
            // back-to-back on this link (Instr::chain) in one bulk pop —
            // one acquire/release round for the whole batch instead of
            // one per message.  Unchained receives (chain <= 1, e.g.
            // all-to-all's rotating links) take a plain pop: a
            // single-message bulk pop adds queue bookkeeping on top of
            // the same ring round-trip.
            PendingQ& pq = pending[link];
            if (pq.head < pq.buf.size()) {
              m = pq.buf[pq.head++];
            } else if (ins.chain <= 1) {
              if (!blocking([&] { return mb.try_pop(m); })) {
                return;
              }
            } else {
              // Chained receive with nothing pending: block for the head
              // message exactly like the unchained path (a drip-feeding
              // pipeline pays nothing over a plain pop), then claim
              // whatever the producer already queued behind it — up to the
              // rest of the chain — in one bulk pop.  A burst left while
              // this worker was descheduled is drained with a single
              // acquire/release round instead of one per message.
              if (!blocking([&] { return mb.try_pop(m); })) {
                return;
              }
              pq.buf.clear();
              pq.head = 0;
              (void)mb.pop_bulk(pq.buf,
                                static_cast<std::size_t>(ins.chain) - 1);
            }
          }
          ev.xfer_ns = ns_since(start);
          if (m.item != ins.item) {
            failure.fail("exec::Engine: P" + std::to_string(wi) +
                         " expected item " + std::to_string(ins.item) +
                         " from P" + std::to_string(ins.peer) + ", got " +
                         std::to_string(m.item));
            return;
          }
          if (program.mode == Mode::kMove) {
            const std::size_t si =
                slot_index(p, static_cast<std::size_t>(m.item));
            const Slot& slot = slots[si];
            if (slot.data == nullptr || slot.size != m.size) {
              failure.fail("exec::Engine: P" + std::to_string(wi) +
                           " received item " + std::to_string(m.item) +
                           " with unexpected payload size " +
                           std::to_string(m.size));
              return;
            }
            if (m.size != 0) std::memcpy(slot.data, m.data, m.size);
            slot_filled[si] = 1;
          } else {
            fold(std::span<const std::byte>(m.data, m.size));
          }
          report.deliveries[p].push_back(
              validate::DeliveryRecord{ins.peer, m.item});
          ev.end_ns = ns_since(start);
          report.events[p].push_back(ev);
          break;
        }
        case OpCode::kCombineLocal: {
          const auto& local =
              (*operands)[static_cast<std::size_t>(stream.sum_index)];
          for (std::int32_t c = 0; c < ins.count; ++c) {
            fold(std::span<const std::byte>(local[operand_pos].data(),
                                            local[operand_pos].size()));
            ++operand_pos;
          }
          break;
        }
      }
    }
  };

  {
    obs::Span run_span("exec.run", "exec");
    if (run_span.active()) {
      run_span.set_arg(program.label + " P=" +
                       std::to_string(program.params.P));
    }
    // Park mode: a ticker wakes every parked waiter each park_tick_us, so
    // parked workers re-check their condition, deadline and heartbeat at a
    // bounded cadence — the watchdog and failure detector stay live even
    // though producers never touch the gate.
    std::atomic<bool> ticker_stop{false};
    std::thread ticker;
    if (wait.mode == WaitPolicy::Mode::kPark) {
      ticker = std::thread([&] {
        while (!ticker_stop.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(wait.park_tick_us));
          park_gate.tick();
        }
      });
    }
    pool_.run(static_cast<int>(P), worker);
    report.wall_ns = ns_since(start);
    if (ticker.joinable()) {
      ticker_stop.store(true, std::memory_order_release);
      ticker.join();
    }
  }

#ifndef NDEBUG
  // The documented ordering guarantee of ExecReport::events: one worker
  // records its events sequentially on a monotonic clock, so per-processor
  // logs are non-decreasing in start_ns and op intervals never overlap.
  for (const auto& evs : report.events) {
    for (std::size_t i = 1; i < evs.size(); ++i) {
      assert(evs[i].start_ns >= evs[i - 1].start_ns &&
             "ExecReport::events must be non-decreasing in start_ns");
      assert(evs[i].start_ns >= evs[i - 1].end_ns &&
             "ExecReport::events intervals must not overlap");
    }
  }
#endif

  for (const std::size_t r : retries) report.retries += r;
  for (const std::size_t d : duplicates) report.duplicates += d;
  for (const std::size_t k : kernel_folds) report.kernel_folds += k;
  for (const std::size_t g : generic_folds) report.generic_folds += g;

  if (failure.abort.load(std::memory_order_acquire)) {
    // All workers have rejoined the epoch barrier, so nothing is producing
    // or consuming: drain every ring so an aborted run leaves no stale
    // message (or stale ack) behind for a later run to trip on.  (The
    // context re-drains on its next prepare() as well, but a throwing run
    // must not leave the shared rings dirty in between.)
    Message m;
    for (const auto& mb : mailboxes) {
      while (mb->try_pop(m)) {
      }
    }
    std::uint64_t a = 0;
    for (const auto& ar : acks) {
      while (ar->try_pop(a)) {
      }
    }
    const ProcId fr = failure.failed_rank.load(std::memory_order_relaxed);
    std::string message;
    {
      std::lock_guard lock(failure.mu);
      message = failure.message;
    }
    if (obs::enabled() && fr != kNoProc) {
      obs::MetricsRegistry::global()
          .counter("logpc_fault_rank_failures_total",
                   "ranks declared dead by the engine failure detector")
          .inc();
    }
    if (fr != kNoProc) throw RankFailure(fr, message);
    throw std::runtime_error(message);
  }

  // Publish the arena-staged kMove slots into the report's user-facing
  // vectors.  This runs after wall_ns is captured and after the pool
  // barrier published every worker's writes, so it is single-threaded and
  // outside the measured makespan.  Segmented runs already delivered in
  // place (their slots alias the report buffers) and skip it.
  if (program.mode == Mode::kMove && seg == nullptr) {
    for (std::size_t p = 0; p < P; ++p) {
      for (std::size_t i = 0; i < num_items; ++i) {
        const std::size_t si = slot_index(p, i);
        if (!slot_filled[si]) continue;
        const Slot& s = slots[si];
        report.items[p][i].assign(s.data, s.data + s.size);
      }
    }
  }

  for (const std::size_t b : bytes_moved) report.payload_bytes += b;
  for (const auto& mb : mailboxes) {
    report.max_mailbox_occupancy =
        std::max(report.max_mailbox_occupancy, mb->max_occupancy());
  }

  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    const std::string labels = "collective=\"" + program.label + "\"";
    reg.counter("logpc_exec_runs_total",
                "collective executions on the real-thread engine", labels)
        .inc();
    reg.counter("logpc_exec_messages_total",
                "messages moved through exec mailboxes", labels)
        .inc(report.messages);
    reg.counter("logpc_exec_payload_bytes_total",
                "payload bytes moved through exec mailboxes", labels)
        .inc(report.payload_bytes);
    reg.histogram("logpc_exec_run_latency_ns",
                  obs::default_latency_buckets_ns(),
                  "wall-clock duration of one executed collective", labels)
        .observe(static_cast<double>(report.wall_ns));
    reg.counter(report.warm_pool ? "logpc_exec_warm_runs_total"
                                 : "logpc_exec_cold_starts_total",
                report.warm_pool
                    ? "runs dispatched onto already-resident worker threads"
                    : "runs that spawned worker threads on the request path",
                labels)
        .inc();
    if (op != nullptr && op->typed()) {
      const std::string klabels = "op=\"" + std::string(op_name(op->spec().op)) +
                                  "\",dtype=\"" +
                                  dtype_name(op->spec().dtype) + "\"";
      if (report.kernel_folds > 0) {
        reg.counter("logpc_exec_kernel_folds_total",
                    "folds executed by typed SIMD combine kernels", klabels)
            .inc(report.kernel_folds);
        std::size_t kb = 0;
        for (const std::size_t b : kernel_bytes) kb += b;
        reg.counter("logpc_exec_kernel_fold_bytes_total",
                    "payload bytes folded by typed combine kernels", klabels)
            .inc(kb);
      }
      if (report.generic_folds > 0) {
        reg.counter("logpc_exec_kernel_fallback_folds_total",
                    "folds a typed combiner routed to the generic lane "
                    "(operand size mismatch)",
                    klabels)
            .inc(report.generic_folds);
      }
    }
    if (reliable) {
      std::array<std::size_t, 4> by_kind{};
      for (const auto& evs : report.fault_events) {
        for (const fault::FaultEvent& fe : evs) {
          ++by_kind[static_cast<std::size_t>(fe.kind)];
        }
      }
      for (std::size_t k = 0; k < by_kind.size(); ++k) {
        if (by_kind[k] == 0) continue;
        const auto kind = static_cast<fault::FaultKind>(k);
        reg.counter("logpc_fault_injected_total", "injected faults by kind",
                    "kind=\"" + std::string(fault::fault_kind_name(kind)) +
                        "\"")
            .inc(by_kind[k]);
      }
      if (report.retries > 0) {
        reg.counter("logpc_fault_retries_total",
                    "retransmissions under acked delivery")
            .inc(report.retries);
      }
      if (report.duplicates > 0) {
        reg.counter("logpc_fault_duplicates_total",
                    "retransmitted duplicates discarded exactly-once")
            .inc(report.duplicates);
      }
      auto& backoff_hist = reg.histogram(
          "logpc_fault_backoff_ns", obs::default_latency_buckets_ns(),
          "retransmit backoff lapsed before each retry");
      for (const auto& per_worker : backoffs_ns) {
        for (const double b : per_worker) backoff_hist.observe(b);
      }
    }
  }
  return report;
}

}  // namespace logpc::exec
