file(REMOVE_RECURSE
  "CMakeFiles/test_three_phase.dir/bcast/three_phase_test.cpp.o"
  "CMakeFiles/test_three_phase.dir/bcast/three_phase_test.cpp.o.d"
  "test_three_phase"
  "test_three_phase.pdb"
  "test_three_phase[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_three_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
