#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "logp/time.hpp"

/// \file mailbox.hpp
/// The execution engine's only communication primitive: a bounded,
/// lock-free single-producer/single-consumer ring, one per *directed link*
/// (ordered processor pair) a compiled program uses.
///
/// The bound is the LogP network capacity constraint made physical: the
/// model admits at most ceil(L/g) messages in transit from (or to) any one
/// processor, so a mailbox of capacity ceil(L/g) can never reject a send
/// that a valid schedule performs — and a sender that runs far ahead of its
/// receiver blocks exactly where the model says the network would stall it.
/// Engine::run sizes every mailbox with Params::capacity().  A capacity of
/// zero is a caller bug — a machine whose network admits no message cannot
/// run any schedule — and is rejected loudly rather than silently clamped
/// to a different network than the model prescribes.
///
/// Concurrency: the classic Lamport ring.  The producer owns `tail_`, the
/// consumer owns `head_`; each publishes its index with a release store and
/// reads the other's with an acquire load, so the slot payload written
/// before a push is visible after the matching pop with no locks and no
/// waiting on either side (both operations are a handful of instructions).
///
/// Under fault injection the engine runs an acked-delivery protocol: each
/// data mailbox is paired with a reverse AckRing carrying the highest
/// sequence number the receiver has accepted, so a sender can retransmit a
/// dropped message after a timeout (see engine.cpp).

namespace logpc::exec {

/// One in-flight message: the item id plus a view of the sender's payload
/// bytes.  The pointer refers into the sending processor's buffers, which
/// the engine keeps immutable from push until the end of the run, so the
/// receiver may copy (or fold) from it directly — the release/acquire pair
/// on the ring index orders the payload writes before the read.  `seq` is
/// the 1-based per-link sequence number used by the acked-delivery
/// protocol; 0 when the run executes without reliability.
struct Message {
  ItemId item = 0;
  const std::byte* data = nullptr;
  std::size_t size = 0;
  std::uint64_t seq = 0;
};

/// Bounded lock-free SPSC ring over trivially-copyable slots.  Throws
/// std::invalid_argument on capacity == 0: every legal LogP machine admits
/// at least one in-flight message, so a zero capacity is always a bug at
/// the call site, not a configuration to round up.
///
/// `track_occupancy` gates the high-water-mark bookkeeping: when off, the
/// producer's push pays nothing beyond the ring indices and
/// max_occupancy() reports 0.  When on, the update is a plain relaxed
/// load + conditional relaxed store — max_occupancy_ has a single writer
/// (the producer), so the CAS loop earlier revisions ran on every push
/// was pure overhead.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity, bool track_occupancy = true)
      : cap_(capacity), track_(track_occupancy), slots_(capacity) {
    if (capacity == 0) {
      throw std::invalid_argument(
          "SpscRing: capacity must be >= 1 (the LogP capacity constraint "
          "ceil(L/g) is at least 1 on every valid machine)");
    }
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side.  False when the ring is full (capacity messages
  /// pushed and not yet popped) — the caller decides how to wait.
  bool try_push(const T& m) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    const std::size_t used = t - head_.load(std::memory_order_acquire);
    if (used == cap_) return false;
    slots_[t % cap_] = m;
    tail_.store(t + 1, std::memory_order_release);
    note_occupancy(used + 1);
    return true;
  }

  /// Producer side, bulk: pushes up to `n` items from `v`, publishing them
  /// with one release store.  Returns how many were accepted (0 when
  /// full); the acquire/release pair is paid once for the whole batch.
  std::size_t try_push_bulk(const T* v, std::size_t n) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    const std::size_t used = t - head_.load(std::memory_order_acquire);
    const std::size_t m = std::min(n, cap_ - used);
    if (m == 0) return 0;
    for (std::size_t i = 0; i < m; ++i) slots_[(t + i) % cap_] = v[i];
    tail_.store(t + m, std::memory_order_release);
    note_occupancy(used + m);
    return m;
  }

  /// Consumer side.  False when empty.
  bool try_pop(T& out) {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    if (tail_.load(std::memory_order_acquire) == h) return false;
    out = slots_[h % cap_];
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side, bulk: appends up to `max` ready items to `out` and
  /// frees their slots with one release store — the receiver drain loop's
  /// primitive, amortizing the acquire/release pair over every message
  /// that is already queued.  Returns the number drained (0 when empty).
  std::size_t pop_bulk(std::vector<T>& out, std::size_t max) {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    const std::size_t avail = tail_.load(std::memory_order_acquire) - h;
    const std::size_t n = std::min(avail, max);
    if (n == 0) return 0;
    for (std::size_t i = 0; i < n; ++i) out.push_back(slots_[(h + i) % cap_]);
    head_.store(h + n, std::memory_order_release);
    return n;
  }

  [[nodiscard]] std::size_t capacity() const { return cap_; }

  /// Messages currently queued (racy outside the producer/consumer pair;
  /// exact once both sides are quiescent).
  [[nodiscard]] std::size_t size() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

  /// High-water mark of queued messages, as observed by the producer (0
  /// when occupancy tracking is disabled).  The engine tests assert this
  /// never exceeds ceil(L/g): the executed schedule honored the model's
  /// capacity constraint.
  [[nodiscard]] std::size_t max_occupancy() const {
    return max_occupancy_.load(std::memory_order_relaxed);
  }

  /// Whether this ring records its high-water mark.
  [[nodiscard]] bool tracks_occupancy() const { return track_; }

  /// Rewinds the high-water mark for warm reuse across runs, so each run's
  /// occupancy report covers that run alone.  Requires both sides
  /// quiescent (the engine calls it during single-threaded setup, after
  /// the previous run's epoch barrier); the cursors themselves are modular
  /// and never need rewinding.
  void reset_stats() noexcept {
    max_occupancy_.store(0, std::memory_order_relaxed);
  }

 private:
  void note_occupancy(std::size_t used) {
    if (!track_) return;
    // Single writer (the producer): a plain conditional store suffices.
    if (used > max_occupancy_.load(std::memory_order_relaxed)) {
      max_occupancy_.store(used, std::memory_order_relaxed);
    }
  }

  std::size_t cap_;
  bool track_;
  std::vector<T> slots_;
  alignas(64) std::atomic<std::size_t> head_{0};  ///< consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< producer cursor
  alignas(64) std::atomic<std::size_t> max_occupancy_{0};
};

/// The per-link payload channel.
class SpscMailbox : public SpscRing<Message> {
 public:
  using SpscRing<Message>::SpscRing;
};

/// The per-link reverse acknowledgment channel: values are cumulative — the
/// highest per-link sequence number the receiver has accepted.
using AckRing = SpscRing<std::uint64_t>;

}  // namespace logpc::exec
