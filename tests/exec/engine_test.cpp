#include "exec/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "bcast/all_to_all.hpp"
#include "bcast/reduction.hpp"
#include "bcast/single_item.hpp"
#include "exec/measure.hpp"
#include "exec_test_util.hpp"
#include "runtime/planner.hpp"
#include "sum/executor.hpp"
#include "sum/summation_tree.hpp"
#include "validate/checker.hpp"

namespace logpc::exec {
namespace {

namespace tu = testutil;
using runtime::PlanKey;
using runtime::Planner;

TEST(CompileBroadcast, LowersScheduleToStreams) {
  const Params params{8, 4, 1, 2};
  const Schedule s = bcast::optimal_single_item(params);
  const Program prog = compile_broadcast(s);
  ASSERT_EQ(prog.procs.size(), 8u);
  EXPECT_EQ(prog.mode, Mode::kMove);
  EXPECT_EQ(prog.num_messages, s.sends().size());
  EXPECT_EQ(prog.predicted_makespan, s.makespan());
  // Exactly P-1 receives across all streams (everyone but the root learns
  // the item once), and one link per transmission in a tree.
  std::size_t recvs = 0;
  for (const auto& pp : prog.procs) {
    for (const auto& ins : pp.instrs) {
      if (ins.op == OpCode::kRecv) ++recvs;
    }
  }
  EXPECT_EQ(recvs, 7u);
  EXPECT_EQ(prog.links.size(), s.sends().size());
}

TEST(CompileBroadcast, RefusesPlanSendingUnheldItem) {
  Schedule s(Params{2, 2, 0, 1}, 1);
  s.add_send(0, /*from=*/0, /*to=*/1, /*item=*/0);  // no initial placement
  EXPECT_THROW((void)compile_broadcast(s), std::invalid_argument);
}

TEST(Engine, SingleItemBroadcastDeliversBytesEverywhere) {
  const Params params{8, 4, 1, 2};
  const Schedule s = bcast::optimal_single_item(params);
  const Program prog = compile_broadcast(s);
  Engine engine;
  const Bytes payload = tu::of_str("the one true datum");
  const ExecReport report = engine.run(prog, {payload});

  for (ProcId p = 0; p < params.P; ++p) {
    EXPECT_EQ(report.item_at(p, 0), payload) << "P" << p;
  }
  EXPECT_EQ(report.messages, s.sends().size());
  EXPECT_GT(report.wall_ns, 0u);
  EXPECT_EQ(report.predicted_makespan, s.makespan());
  EXPECT_TRUE(validate::check_delivery_order(s, report.deliveries).ok());
  EXPECT_LE(report.max_mailbox_occupancy, report.mailbox_capacity);
}

TEST(Engine, KItemBroadcastDeliversEveryItemOnce) {
  const Params physical{9, 3, 1, 2};
  const auto plan =
      Planner::build_uncached(PlanKey::kitem(physical, 6));
  const Program prog = compile_broadcast(plan.schedule, "kitem");
  Engine engine;
  std::vector<Bytes> items;
  for (int i = 0; i < plan.schedule.num_items(); ++i) {
    items.push_back(tu::of_str("item-" + std::to_string(i)));
  }
  const ExecReport report = engine.run(prog, items);

  const int P = plan.schedule.params().P;
  for (ProcId p = 0; p < P; ++p) {
    for (int i = 0; i < plan.schedule.num_items(); ++i) {
      EXPECT_EQ(report.item_at(p, i), items[static_cast<std::size_t>(i)])
          << "P" << p << " item " << i;
    }
  }
  EXPECT_TRUE(
      validate::check_delivery_order(plan.schedule, report.deliveries).ok());
  EXPECT_LE(report.max_mailbox_occupancy, report.mailbox_capacity);
}

TEST(Engine, SegmentRunCoalescesToTheBulkShape) {
  // A segmented run over one logical payload must report exactly what the
  // bulk single-item run reports: one contiguous buffer per processor,
  // byte-identical to the payload — even when the payload does not divide
  // evenly into segments.
  const Params params{8, 4, 1, 2};
  const int k = 4;
  const auto plan = Planner::build_uncached(PlanKey::kitem(params, k));
  const Program prog = compile_broadcast(plan.schedule, "kitem-seg");
  Bytes payload(4099);  // 4099 = 4*1024 + 3: three segments get the extra byte
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>(i * 131 + 7);
  }
  Engine engine;
  const ExecReport report = engine.run_segmented(
      prog, SegmentRun{std::span<const std::byte>(payload.data(),
                                                  payload.size()),
                       k});
  ASSERT_EQ(report.items.size(), 8u);
  for (ProcId p = 0; p < params.P; ++p) {
    ASSERT_EQ(report.items[static_cast<std::size_t>(p)].size(), 1u)
        << "P" << p;
    EXPECT_EQ(report.item_at(p, 0), payload) << "P" << p;
  }
  EXPECT_TRUE(
      validate::check_delivery_order(plan.schedule, report.deliveries).ok());
  // And it matches the bulk run bit for bit.
  const Schedule bulk = bcast::optimal_single_item(params);
  const ExecReport bulk_report =
      engine.run(compile_broadcast(bulk), {payload});
  for (ProcId p = 0; p < params.P; ++p) {
    EXPECT_EQ(report.item_at(p, 0), bulk_report.item_at(p, 0)) << "P" << p;
  }
}

TEST(Engine, SegmentRunValidatesItsInputs) {
  const Params params{8, 4, 1, 2};
  const auto plan = Planner::build_uncached(PlanKey::kitem(params, 4));
  const Program prog = compile_broadcast(plan.schedule, "kitem-seg");
  Engine engine;
  const Bytes payload(64, std::byte{0x5a});
  const std::span<const std::byte> span(payload.data(), payload.size());
  EXPECT_THROW((void)engine.run_segmented(prog, SegmentRun{span, 3}),
               std::invalid_argument);  // segments != num_items
  EXPECT_THROW((void)engine.run_segmented(prog, SegmentRun{{}, 4}),
               std::invalid_argument);  // empty payload
}

TEST(Engine, AllToAllKDeliversAllItems) {
  const Params params{8, 6, 1, 2};
  const int k = 2;
  const Schedule s = bcast::all_to_all_k(params, k);
  const Program prog = compile_broadcast(s, "alltoall");
  Engine engine;
  std::vector<Bytes> items;
  for (int i = 0; i < s.num_items(); ++i) {
    items.push_back(tu::of_u64(1000u + static_cast<std::uint64_t>(i)));
  }
  const ExecReport report = engine.run(prog, items);
  for (ProcId p = 0; p < params.P; ++p) {
    for (int i = 0; i < s.num_items(); ++i) {
      EXPECT_EQ(tu::to_u64(report.item_at(p, i)),
                1000u + static_cast<std::uint64_t>(i));
    }
  }
  EXPECT_TRUE(validate::check_delivery_order(s, report.deliveries).ok());
  EXPECT_LE(report.max_mailbox_occupancy, report.mailbox_capacity);
}

TEST(Engine, ScatterAndGatherMoveDistinctItems) {
  const Params params{8, 4, 1, 2};
  Engine engine;
  {
    const auto plan = Planner::build_uncached(PlanKey::scatter(params, 0));
    const Program prog = compile_broadcast(plan.schedule, "scatter");
    std::vector<Bytes> items;
    for (int i = 0; i < params.P; ++i) {
      items.push_back(tu::of_str("shard" + std::to_string(i)));
    }
    const ExecReport report = engine.run(prog, items);
    for (ProcId p = 0; p < params.P; ++p) {
      EXPECT_EQ(tu::to_str(report.item_at(p, p)),
                "shard" + std::to_string(p));
    }
  }
  {
    const auto plan = Planner::build_uncached(PlanKey::gather(params, 0));
    const Program prog = compile_broadcast(plan.schedule, "gather");
    std::vector<Bytes> items;
    for (int i = 0; i < params.P; ++i) {
      items.push_back(tu::of_str("part" + std::to_string(i)));
    }
    const ExecReport report = engine.run(prog, items);
    for (ProcId p = 0; p < params.P; ++p) {
      EXPECT_EQ(tu::to_str(report.item_at(0, p)), "part" + std::to_string(p));
    }
  }
}

TEST(Engine, ReductionFoldsInArrivalOrder) {
  const Params params{8, 4, 1, 2};
  const bcast::ReductionPlan plan = bcast::optimal_reduction(params, 0);
  const Program prog = compile_reduction(plan);
  Engine engine;

  // Commutative check: sum of all contributions.
  {
    std::vector<Bytes> values;
    std::uint64_t total = 0;
    for (int p = 0; p < params.P; ++p) {
      values.push_back(tu::of_u64(static_cast<std::uint64_t>(p * p + 1)));
      total += static_cast<std::uint64_t>(p * p + 1);
    }
    const ExecReport report = engine.run(prog, values, tu::add_u64());
    EXPECT_EQ(tu::to_u64(report.folded_at(0)), total);
  }

  // Non-commutative check: the engine's fold must equal the plan replay's.
  {
    std::vector<Bytes> values;
    std::vector<std::string> strings;
    for (int p = 0; p < params.P; ++p) {
      strings.push_back("<" + std::to_string(p) + ">");
      values.push_back(tu::of_str(strings.back()));
    }
    const std::string expected = bcast::execute_reduction<std::string>(
        plan, strings,
        [](const std::string& a, const std::string& b) { return a + b; });
    const ExecReport report = engine.run(prog, values, tu::concat());
    EXPECT_EQ(tu::to_str(report.folded_at(0)), expected);
  }
}

TEST(Engine, SummationMatchesSequentialFoldInCombinationOrder) {
  const Params params{8, 4, 1, 2};  // g >= o + 1
  const Time t = 30;
  const sum::SummationPlan plan = sum::optimal_summation(params, t);
  ASSERT_GT(plan.total_operands, 0u);
  const Program prog = compile_summation(plan);
  Engine engine;

  const auto layout = sum::operand_layout(plan);
  std::vector<std::vector<Bytes>> operands(plan.procs.size());
  std::vector<std::vector<std::string>> op_strings(plan.procs.size());
  int next = 0;
  for (std::size_t i = 0; i < layout.size(); ++i) {
    for (std::size_t j = 0; j < layout[i].total(); ++j) {
      op_strings[i].push_back("[" + std::to_string(next++) + "]");
      operands[i].push_back(tu::of_str(op_strings[i].back()));
    }
  }

  std::string expected;
  for (const auto& [proc, idx] : sum::combination_order(plan)) {
    // combination_order is in (processor id, local index) space; map the
    // processor id back to its plan index.
    for (std::size_t i = 0; i < plan.procs.size(); ++i) {
      if (plan.procs[i].proc == proc) {
        expected += op_strings[i][idx];
        break;
      }
    }
  }

  const ExecReport report = engine.run(prog, operands, tu::concat());
  EXPECT_EQ(tu::to_str(report.folded_at(plan.root)), expected);

  // And the commutative sanity: iota operands, compare with the reference
  // value-level executor.
  std::vector<std::vector<Bytes>> iota(plan.procs.size());
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < layout.size(); ++i) {
    for (std::size_t j = 0; j < layout[i].total(); ++j) {
      iota[i].push_back(tu::of_u64(n++));
    }
  }
  const ExecReport sums = engine.run(prog, iota, tu::add_u64());
  EXPECT_EQ(tu::to_u64(sums.folded_at(plan.root)),
            static_cast<std::uint64_t>(sum::execute_iota_sum(plan)));
}

TEST(Engine, MeasureFitsPlausibleParameters) {
  const Params params{8, 6, 1, 2};
  const Schedule s = bcast::all_to_all(params);
  Engine engine;
  std::vector<Bytes> items;
  for (int i = 0; i < params.P; ++i) items.push_back(tu::of_u64(1));
  const ExecReport report =
      engine.run(compile_broadcast(s, "alltoall"), items);

  const MeasuredLogP fit = measure(report);
  EXPECT_GT(fit.overhead_samples, 0u);
  EXPECT_GT(fit.gap_samples, 0u);  // every proc sends P-1 times
  EXPECT_GT(fit.latency_samples, 0u);
  EXPECT_GE(fit.L_ns, 0.0);
  EXPECT_GE(fit.o_ns, 0.0);
  EXPECT_GE(fit.g_ns, fit.o_ns);

  const double ns_per_cycle = fitted_ns_per_cycle(report);
  EXPECT_GT(ns_per_cycle, 0.0);
  const sim::MeasuredParams mp = fit.as_measured_params(ns_per_cycle, params);
  EXPECT_EQ(mp.P, params.P);
  EXPECT_GE(mp.L, 1);
  EXPECT_GE(mp.o, 0);
  EXPECT_GE(mp.g, 1);
}

TEST(Engine, ReusesPoolAcrossRunsAndSizes) {
  Engine engine;
  for (const int P : {2, 8, 5, 8, 12}) {
    const Params params{P, 4, 1, 2};
    const Schedule s = bcast::optimal_single_item(params);
    const ExecReport report =
        engine.run(compile_broadcast(s), {tu::of_str("x")});
    for (ProcId p = 0; p < P; ++p) {
      EXPECT_EQ(tu::to_str(report.item_at(p, 0)), "x");
    }
  }
  EXPECT_GE(engine.pool().size(), 12u);
  EXPECT_EQ(engine.pool().epochs(), 5u);
}

TEST(Engine, ModeMismatchThrows) {
  const Params params{4, 2, 1, 1};
  const Program prog = compile_broadcast(bcast::optimal_single_item(params));
  Engine engine;
  EXPECT_THROW((void)engine.run(prog, {tu::of_u64(1)}, tu::add_u64()),
               std::invalid_argument);
}

TEST(Engine, WrongPayloadCountThrows) {
  const Params params{4, 2, 1, 1};
  const Program prog = compile_broadcast(bcast::optimal_single_item(params));
  Engine engine;
  EXPECT_THROW((void)engine.run(prog, std::vector<Bytes>{}),
               std::invalid_argument);
}

TEST(Engine, TimesOutInsteadOfHangingOnImpossibleProgram) {
  // A hand-built program whose receive has no matching send: the engine
  // must abort the run with an error, not hang the pool.
  Program prog;
  prog.params = Params{2, 2, 0, 1};
  prog.mode = Mode::kMove;
  prog.label = "impossible";
  prog.num_items = 1;
  prog.procs.resize(2);
  prog.procs[0].proc = 0;
  prog.procs[1].proc = 1;
  prog.links.push_back(Link{1, 0});
  prog.procs[0].instrs.push_back(
      Instr{OpCode::kRecv, /*peer=*/1, /*item=*/0, 0, /*link=*/0, 0});
  Engine::Options short_fuse;
  short_fuse.timeout_ms = 100;
  Engine engine(short_fuse);
  EXPECT_THROW((void)engine.run(prog, {tu::of_u64(1)}), std::runtime_error);
}

TEST(Engine, TimeoutJoinsWorkersAndLeavesThePoolReusable) {
  // The watchdog fix: when a run times out, every worker must have been
  // signalled and rejoined the pool barrier and all mailboxes drained
  // BEFORE the error propagates — no thread may still be blocked on a
  // dead run's state.  Under TSan this doubles as a leak/race check.
  Program impossible;
  impossible.params = Params{2, 2, 0, 1};
  impossible.mode = Mode::kMove;
  impossible.label = "impossible";
  impossible.num_items = 1;
  impossible.procs.resize(2);
  impossible.procs[0].proc = 0;
  impossible.procs[1].proc = 1;
  impossible.links.push_back(Link{1, 0});
  impossible.procs[0].instrs.push_back(
      Instr{OpCode::kRecv, /*peer=*/1, /*item=*/0, 0, /*link=*/0, 0});

  Engine::Options short_fuse;
  short_fuse.timeout_ms = 100;
  Engine engine(short_fuse);
  EXPECT_THROW((void)engine.run(impossible, {tu::of_u64(1)}),
               std::runtime_error);
  const std::size_t workers = engine.pool().size();
  const std::uint64_t epochs = engine.pool().epochs();

  // The same engine must run a real collective immediately afterwards:
  // the abort left no stuck worker and no stale message behind.
  const Params params{8, 4, 1, 2};
  const Schedule s = bcast::optimal_single_item(params);
  const ExecReport report =
      engine.run(compile_broadcast(s), {tu::of_str("alive")});
  for (ProcId p = 0; p < params.P; ++p) {
    EXPECT_EQ(tu::to_str(report.item_at(p, 0)), "alive");
  }
  EXPECT_GE(engine.pool().size(), workers);
  EXPECT_EQ(engine.pool().epochs(), epochs + 1);
}

TEST(Engine, ReportsWarmPoolAndWarmBuffersAcrossRuns) {
  const Params params{8, 4, 1, 2};
  const Program prog = compile_broadcast(bcast::optimal_single_item(params));
  Engine engine;

  // A fresh engine's first run spawns its threads and builds its run
  // context: a cold start on both axes.
  const ExecReport first = engine.run(prog, {tu::of_str("a")});
  EXPECT_FALSE(first.warm_pool);
  EXPECT_FALSE(first.warm_buffers);

  // Same shape immediately after: resident threads, recycled mailboxes —
  // and the recycled rings must deliver the *new* payload.
  const ExecReport second = engine.run(prog, {tu::of_str("b")});
  EXPECT_TRUE(second.warm_pool);
  EXPECT_TRUE(second.warm_buffers);
  for (ProcId p = 0; p < params.P; ++p) {
    EXPECT_EQ(tu::to_str(second.item_at(p, 0)), "b");
  }

  // A different shape keeps the threads warm but rebuilds the context.
  const Params smaller{5, 4, 1, 2};
  const ExecReport third = engine.run(
      compile_broadcast(bcast::optimal_single_item(smaller)),
      {tu::of_str("c")});
  EXPECT_TRUE(third.warm_pool);
  EXPECT_FALSE(third.warm_buffers);
}

TEST(Engine, PrewarmMakesEvenTheFirstRunWarm) {
  const Params params{8, 4, 1, 2};
  Engine engine;
  engine.prewarm(params.P);
  const ExecReport report = engine.run(
      compile_broadcast(bcast::optimal_single_item(params)),
      {tu::of_str("x")});
  EXPECT_TRUE(report.warm_pool);
  for (ProcId p = 0; p < params.P; ++p) {
    EXPECT_EQ(tu::to_str(report.item_at(p, 0)), "x");
  }
}

TEST(Engine, SharedEngineServesConcurrentCallersSafely) {
  // Engine::shared() documents that concurrent run() calls serialize on
  // the run mutex; hammer it from several threads and check every caller
  // gets its own intact result.
  const Params params{4, 4, 1, 2};
  const Program prog = compile_broadcast(bcast::optimal_single_item(params));
  std::vector<std::thread> callers;
  std::atomic<int> failures{0};
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&, c] {
      for (int i = 0; i < 5; ++i) {
        const std::string payload =
            "caller-" + std::to_string(c) + "-" + std::to_string(i);
        const ExecReport report =
            Engine::shared().run(prog, {tu::of_str(payload)});
        for (ProcId p = 0; p < params.P; ++p) {
          if (tu::to_str(report.item_at(p, 0)) != payload) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace logpc::exec
