
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/communicator.cpp" "src/CMakeFiles/logpc.dir/api/communicator.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/api/communicator.cpp.o.d"
  "/root/repo/src/baselines/bcast_baselines.cpp" "src/CMakeFiles/logpc.dir/baselines/bcast_baselines.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/baselines/bcast_baselines.cpp.o.d"
  "/root/repo/src/baselines/kitem_baselines.cpp" "src/CMakeFiles/logpc.dir/baselines/kitem_baselines.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/baselines/kitem_baselines.cpp.o.d"
  "/root/repo/src/baselines/reduce_baselines.cpp" "src/CMakeFiles/logpc.dir/baselines/reduce_baselines.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/baselines/reduce_baselines.cpp.o.d"
  "/root/repo/src/bcast/all_to_all.cpp" "src/CMakeFiles/logpc.dir/bcast/all_to_all.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/bcast/all_to_all.cpp.o.d"
  "/root/repo/src/bcast/automaton.cpp" "src/CMakeFiles/logpc.dir/bcast/automaton.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/bcast/automaton.cpp.o.d"
  "/root/repo/src/bcast/blocks.cpp" "src/CMakeFiles/logpc.dir/bcast/blocks.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/bcast/blocks.cpp.o.d"
  "/root/repo/src/bcast/combining.cpp" "src/CMakeFiles/logpc.dir/bcast/combining.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/bcast/combining.cpp.o.d"
  "/root/repo/src/bcast/continuous.cpp" "src/CMakeFiles/logpc.dir/bcast/continuous.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/bcast/continuous.cpp.o.d"
  "/root/repo/src/bcast/kitem.cpp" "src/CMakeFiles/logpc.dir/bcast/kitem.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/bcast/kitem.cpp.o.d"
  "/root/repo/src/bcast/kitem_bounds.cpp" "src/CMakeFiles/logpc.dir/bcast/kitem_bounds.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/bcast/kitem_bounds.cpp.o.d"
  "/root/repo/src/bcast/kitem_buffered.cpp" "src/CMakeFiles/logpc.dir/bcast/kitem_buffered.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/bcast/kitem_buffered.cpp.o.d"
  "/root/repo/src/bcast/reduction.cpp" "src/CMakeFiles/logpc.dir/bcast/reduction.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/bcast/reduction.cpp.o.d"
  "/root/repo/src/bcast/single_item.cpp" "src/CMakeFiles/logpc.dir/bcast/single_item.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/bcast/single_item.cpp.o.d"
  "/root/repo/src/bcast/three_phase.cpp" "src/CMakeFiles/logpc.dir/bcast/three_phase.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/bcast/three_phase.cpp.o.d"
  "/root/repo/src/bcast/tree.cpp" "src/CMakeFiles/logpc.dir/bcast/tree.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/bcast/tree.cpp.o.d"
  "/root/repo/src/bcast/words.cpp" "src/CMakeFiles/logpc.dir/bcast/words.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/bcast/words.cpp.o.d"
  "/root/repo/src/logp/fib.cpp" "src/CMakeFiles/logpc.dir/logp/fib.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/logp/fib.cpp.o.d"
  "/root/repo/src/logp/params.cpp" "src/CMakeFiles/logpc.dir/logp/params.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/logp/params.cpp.o.d"
  "/root/repo/src/sched/builder.cpp" "src/CMakeFiles/logpc.dir/sched/builder.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/sched/builder.cpp.o.d"
  "/root/repo/src/sched/io.cpp" "src/CMakeFiles/logpc.dir/sched/io.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/sched/io.cpp.o.d"
  "/root/repo/src/sched/metrics.cpp" "src/CMakeFiles/logpc.dir/sched/metrics.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/sched/metrics.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/CMakeFiles/logpc.dir/sched/schedule.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/sched/schedule.cpp.o.d"
  "/root/repo/src/sched/stats.cpp" "src/CMakeFiles/logpc.dir/sched/stats.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/sched/stats.cpp.o.d"
  "/root/repo/src/search/bcast_search.cpp" "src/CMakeFiles/logpc.dir/search/bcast_search.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/search/bcast_search.cpp.o.d"
  "/root/repo/src/search/continuous_search.cpp" "src/CMakeFiles/logpc.dir/search/continuous_search.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/search/continuous_search.cpp.o.d"
  "/root/repo/src/sim/calibrate.cpp" "src/CMakeFiles/logpc.dir/sim/calibrate.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/sim/calibrate.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/logpc.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/logpc.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/sim/trace.cpp.o.d"
  "/root/repo/src/sum/executor.cpp" "src/CMakeFiles/logpc.dir/sum/executor.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/sum/executor.cpp.o.d"
  "/root/repo/src/sum/lazy.cpp" "src/CMakeFiles/logpc.dir/sum/lazy.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/sum/lazy.cpp.o.d"
  "/root/repo/src/sum/summation_tree.cpp" "src/CMakeFiles/logpc.dir/sum/summation_tree.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/sum/summation_tree.cpp.o.d"
  "/root/repo/src/validate/checker.cpp" "src/CMakeFiles/logpc.dir/validate/checker.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/validate/checker.cpp.o.d"
  "/root/repo/src/validate/report.cpp" "src/CMakeFiles/logpc.dir/validate/report.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/validate/report.cpp.o.d"
  "/root/repo/src/viz/digraph.cpp" "src/CMakeFiles/logpc.dir/viz/digraph.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/viz/digraph.cpp.o.d"
  "/root/repo/src/viz/dot.cpp" "src/CMakeFiles/logpc.dir/viz/dot.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/viz/dot.cpp.o.d"
  "/root/repo/src/viz/table.cpp" "src/CMakeFiles/logpc.dir/viz/table.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/viz/table.cpp.o.d"
  "/root/repo/src/viz/timeline.cpp" "src/CMakeFiles/logpc.dir/viz/timeline.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/viz/timeline.cpp.o.d"
  "/root/repo/src/viz/tree_render.cpp" "src/CMakeFiles/logpc.dir/viz/tree_render.cpp.o" "gcc" "src/CMakeFiles/logpc.dir/viz/tree_render.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
