file(REMOVE_RECURSE
  "CMakeFiles/test_kitem_baselines.dir/baselines/kitem_baselines_test.cpp.o"
  "CMakeFiles/test_kitem_baselines.dir/baselines/kitem_baselines_test.cpp.o.d"
  "test_kitem_baselines"
  "test_kitem_baselines.pdb"
  "test_kitem_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kitem_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
