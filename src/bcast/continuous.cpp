#include "bcast/continuous.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

namespace logpc::bcast {

namespace {

int posmod(Time x, int m) {
  const auto r = static_cast<int>(x % m);
  return r < 0 ? r + m : r;
}

}  // namespace

ContinuousResult plan_from_tree(const BroadcastTree& tree,
                                std::uint64_t budget, int max_wait) {
  const Params& tp = tree.params();
  if (!tp.is_postal()) {
    throw std::invalid_argument(
        "plan_from_tree: continuous broadcast is a postal-model scheme");
  }
  const int m = tree.size();

  ContinuousResult result;
  ContinuousPlan plan;
  plan.params = Params::postal(m + 1, tp.L);
  plan.source = 0;
  plan.tree = tree;

  // Letters = distinct leaf delays; blocks = internal nodes.
  std::map<Time, int> leaf_counts;  // delay -> per-step supply
  std::vector<BlockSpec> specs;
  std::vector<int> node_of_spec;
  for (int v = 0; v < m; ++v) {
    const auto& node = tree.node(v);
    if (node.children.empty()) {
      ++leaf_counts[node.label];
    } else {
      specs.push_back(BlockSpec{static_cast<int>(node.children.size()),
                                node.label});
      node_of_spec.push_back(v);
    }
  }
  std::vector<int> supplies;
  for (const auto& [delay, count] : leaf_counts) {
    plan.letter_delays.push_back(delay);
    supplies.push_back(count);
  }

  plan.max_wait = max_wait;
  auto solve = assign_words(plan.letter_delays, specs, supplies, max_wait,
                            budget);
  result.status = solve.status;
  result.nodes_explored = solve.nodes_explored;
  if (solve.status != SolveStatus::kSolved) return result;

  // Assign processors: source = 0, block members next, receive-only last.
  ProcId next = 1;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ContinuousBlock block;
    block.tree_node = node_of_spec[i];
    block.r = specs[i].r;
    block.d = specs[i].d;
    block.word = solve.assignment->words[i];
    for (int j = 0; j < block.r; ++j) block.members.push_back(next++);
    plan.blocks.push_back(std::move(block));
  }
  plan.receive_only = next++;
  if (next != plan.params.P) {
    throw std::logic_error("plan_from_tree: processor count mismatch");
  }
  plan.receive_only_letter = solve.assignment->receive_only_letter;
  result.plan = std::move(plan);
  return result;
}

ContinuousResult plan_continuous(Time L, Time t, std::uint64_t budget) {
  if (L < 1 || t < 0) {
    throw std::invalid_argument("plan_continuous: bad L/t");
  }
  const Fib fib(L);
  const Count m_count = fib.f(t);
  if (m_count > (Count{1} << 20)) {
    throw std::invalid_argument("plan_continuous: P(t) too large");
  }
  const int m = static_cast<int>(m_count);
  return plan_from_tree(BroadcastTree::optimal(Params::postal(m, L), m),
                        budget);
}

Schedule emit_k_items(const ContinuousPlan& plan, int k) {
  if (k < 1) throw std::invalid_argument("emit_k_items: k >= 1");
  const Time L = plan.params.L;
  Schedule out(plan.params, k);
  for (ItemId i = 0; i < k; ++i) {
    out.add_initial(i, plan.source, i);  // generated every g = 1 cycles
  }

  // Block index serving each internal tree node, and leaf lists per letter.
  std::vector<int> block_of_node(static_cast<std::size_t>(plan.tree.size()),
                                 -1);
  for (std::size_t b = 0; b < plan.blocks.size(); ++b) {
    block_of_node[static_cast<std::size_t>(plan.blocks[b].tree_node)] =
        static_cast<int>(b);
  }
  const auto n_letters = static_cast<int>(plan.letter_delays.size());
  std::vector<std::vector<int>> leaves_by_letter(
      static_cast<std::size_t>(n_letters));
  for (int v = 0; v < plan.tree.size(); ++v) {
    const auto& node = plan.tree.node(v);
    if (!node.children.empty()) continue;
    const auto it = std::find(plan.letter_delays.begin(),
                              plan.letter_delays.end(), node.label);
    if (it == plan.letter_delays.end()) {
      throw std::logic_error("emit_k_items: leaf delay has no letter");
    }
    leaves_by_letter[static_cast<std::size_t>(
                         it - plan.letter_delays.begin())]
        .push_back(v);
  }

  // The processor holding internal node v's role for item i; the source
  // plays the (virtual) parent of the root.
  auto holder = [&](int v, ItemId i) -> ProcId {
    const int b = block_of_node[static_cast<std::size_t>(v)];
    if (b < 0) throw std::logic_error("emit_k_items: leaf has no holder");
    const auto& block = plan.blocks[static_cast<std::size_t>(b)];
    return block.members[static_cast<std::size_t>(posmod(i, block.r))];
  };
  auto sender_of = [&](int v, ItemId i) -> ProcId {
    const int parent = plan.tree.node(v).parent;
    return parent < 0 ? plan.source : holder(parent, i);
  };

  // Collect receptions; buffered word positions (wait > 0, Theorem 3.8)
  // receive their arrival up to `wait` steps later, so final receive times
  // are resolved per processor afterwards.
  struct Reception {
    Time arrival;   // earliest receivable step (= send start + L)
    int wait;       // steady-state buffering; 0 = strict
    bool internal;  // active item: received exactly at arrival
    ProcId from;
    ItemId item;
  };
  std::vector<std::vector<Reception>> per_proc(
      static_cast<std::size_t>(plan.params.P));

  // Walk every arrival step.  Arrivals of item i happen during
  // [i + L, i + L + makespan]; the final step is (k-1) + L + makespan.
  const Time last = static_cast<Time>(k) - 1 + L + plan.tree.makespan();
  for (Time s = L; s <= last; ++s) {
    // Internal receptions: block b's phase-0 member takes item s - L - d.
    for (const auto& block : plan.blocks) {
      const Time i = s - L - block.d;
      if (i < 0 || i >= k) continue;
      const auto item = static_cast<ItemId>(i);
      const ProcId to = block.members[static_cast<std::size_t>(
          posmod(i, block.r))];
      per_proc[static_cast<std::size_t>(to)].push_back(Reception{
          s, 0, true, sender_of(block.tree_node, item), item});
    }
    // Letter receptions: consumers are block members whose word positions
    // name the letter (in any wait variant: a wait-w consumer's receive
    // slot is w steps after the arrival), plus the receive-only processor;
    // producers are the leaves at the letter's delay in the arriving
    // item's tree.
    for (int l = 0; l < n_letters; ++l) {
      const Time i = s - L - plan.letter_delays[static_cast<std::size_t>(l)];
      if (i < 0 || i >= k) continue;
      const auto item = static_cast<ItemId>(i);
      std::vector<std::pair<ProcId, int>> consumers;  // (proc, wait)
      for (const auto& block : plan.blocks) {
        for (int p = 1; p < block.r; ++p) {
          const int ext = block.word[static_cast<std::size_t>(p - 1)];
          if (ext % n_letters != l) continue;
          const int w = ext / n_letters;
          consumers.emplace_back(
              block.members[static_cast<std::size_t>(
                  posmod(s + w - L - block.d - p, block.r))],
              w);
        }
      }
      if (plan.receive_only_letter == l) {
        consumers.emplace_back(plan.receive_only, 0);
      }
      const auto& leaves = leaves_by_letter[static_cast<std::size_t>(l)];
      if (consumers.size() != leaves.size()) {
        throw std::logic_error("emit_k_items: supply/demand mismatch");
      }
      std::sort(consumers.begin(), consumers.end());
      for (std::size_t x = 0; x < leaves.size(); ++x) {
        const ProcId from = sender_of(leaves[x], item);
        if (from == consumers[x].first) {
          throw std::logic_error("emit_k_items: self-send");
        }
        per_proc[static_cast<std::size_t>(consumers[x].first)].push_back(
            Reception{s, consumers[x].second, false, from, item});
      }
    }
  }

  // Resolve receive times per processor: internal (active) receptions are
  // fixed at their arrival; buffered letters take the earliest free slot at
  // or after theirs.  Earliest-fit in arrival order cannot do worse than
  // the steady-state pattern, and compresses the drain at the end (the
  // paper's Figure 5 shows exactly this: delayed items, boxed, slotting
  // into gaps).
  for (ProcId to = 0; to < plan.params.P; ++to) {
    auto& receptions = per_proc[static_cast<std::size_t>(to)];
    std::sort(receptions.begin(), receptions.end(),
              [](const Reception& a, const Reception& b) {
                if (a.arrival != b.arrival) return a.arrival < b.arrival;
                if (a.internal != b.internal) return a.internal;
                return std::tie(a.wait, a.item) < std::tie(b.wait, b.item);
              });
    std::set<Time> occupied;
    for (const auto& rec : receptions) {
      if (rec.internal) {
        if (!occupied.insert(rec.arrival).second) {
          throw std::logic_error("emit_k_items: active reception conflict");
        }
      }
    }
    for (const auto& rec : receptions) {
      Time recv = rec.arrival;
      if (!rec.internal) {
        while (occupied.contains(recv)) ++recv;
        occupied.insert(recv);
      }
      SendOp op{rec.arrival - L, rec.from, to, rec.item, kNever};
      if (recv != rec.arrival) op.recv_start = recv;
      out.add_send(op);
    }
  }
  out.sort();
  return out;
}

std::vector<std::vector<Time>> reception_pattern(const ContinuousPlan& plan) {
  std::vector<std::vector<Time>> rows(
      static_cast<std::size_t>(plan.params.P));
  rows[static_cast<std::size_t>(plan.source)] = {-1};
  for (const auto& block : plan.blocks) {
    for (int j = 0; j < block.r; ++j) {
      // rows[proc][x] = role delay received at steps s with s = x (mod r).
      // Member j's phase-p reception happens at s = L + d + j + p (mod r).
      std::vector<Time> row(static_cast<std::size_t>(block.r));
      for (int p = 0; p < block.r; ++p) {
        const int x = posmod(plan.params.L + block.d + j + p, block.r);
        row[static_cast<std::size_t>(x)] =
            p == 0 ? block.d
                   : plan.letter_delays[static_cast<std::size_t>(
                         block.word[static_cast<std::size_t>(p - 1)])];
      }
      rows[static_cast<std::size_t>(
          block.members[static_cast<std::size_t>(j)])] = std::move(row);
    }
  }
  rows[static_cast<std::size_t>(plan.receive_only)] = {
      plan.letter_delays[static_cast<std::size_t>(plan.receive_only_letter)]};
  return rows;
}

}  // namespace logpc::bcast
