#include "obs/critical_path.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/communicator.hpp"
#include "exec/engine.hpp"

/// Tests of the run profiler: the six-component decomposition identity,
/// FIFO causal matching, the critical-path walk, and the model residual —
/// first on hand-built event logs where every edge is known, then on real
/// P=8 engine runs where the acceptance bounds (components sum to the
/// rank's span within 1%, path ends at the last-finishing rank) must hold.

namespace logpc::obs {
namespace {

using exec::ExecEvent;

ExecEvent send_ev(ProcId peer, ItemId item, std::uint64_t start,
                  std::uint64_t xfer, std::uint64_t end, Time planned = 0) {
  return ExecEvent{ExecEvent::Kind::kSend, peer, item, start, xfer, end,
                   planned};
}

ExecEvent recv_ev(ProcId peer, ItemId item, std::uint64_t start,
                  std::uint64_t xfer, std::uint64_t end, Time planned = 0) {
  return ExecEvent{ExecEvent::Kind::kRecv, peer, item, start, xfer, end,
                   planned};
}

/// A two-rank run: rank 0 sends at t=10..30, rank 1 waits from t=5, the
/// payload arrives at t=40 (after the send's push), stored by t=50.
exec::ExecReport two_rank_report() {
  exec::ExecReport report;
  report.params = Params{2, 4, 1, 2};
  report.mode = exec::Mode::kMove;
  report.label = "synthetic";
  report.predicted_makespan = 7;  // o + L + o on the plan machine
  report.wall_ns = 50;
  report.events.resize(2);
  report.events[0].push_back(send_ev(1, 0, 10, 25, 30, 0));
  report.events[1].push_back(recv_ev(0, 0, 5, 40, 50, 5));
  return report;
}

TEST(CriticalPath, TwoRankDecompositionIsExact) {
  const RunProfile profile = analyze(two_rank_report());
  ASSERT_EQ(profile.P, 2);

  const RankBreakdown& r0 = profile.ranks[0];
  EXPECT_EQ(r0.span_ns(), 20u);
  EXPECT_EQ(r0.ns(Component::kSendOverhead), 15u);  // 10 -> 25
  EXPECT_EQ(r0.ns(Component::kBlocked), 5u);        // 25 -> 30
  EXPECT_EQ(r0.components_sum_ns(), r0.span_ns());
  EXPECT_EQ(r0.sends, 1u);

  const RankBreakdown& r1 = profile.ranks[1];
  EXPECT_EQ(r1.span_ns(), 45u);
  EXPECT_EQ(r1.ns(Component::kLatencyWait), 35u);   // 5 -> 40
  EXPECT_EQ(r1.ns(Component::kRecvOverhead), 10u);  // 40 -> 50
  EXPECT_EQ(r1.components_sum_ns(), r1.span_ns());
  EXPECT_EQ(r1.recvs, 1u);
}

TEST(CriticalPath, TwoRankPathCrossesTheWire) {
  const RunProfile profile = analyze(two_rank_report());
  EXPECT_EQ(profile.straggler, 1);
  EXPECT_EQ(profile.critical_path_ns, 50u);
  // The receive was waiting (start 5 < arrival 40), so its gating
  // predecessor is the matched send: path = send@0 -> recv@1.
  ASSERT_EQ(profile.critical_path.size(), 2u);
  EXPECT_EQ(profile.critical_path[0].rank, 0);
  EXPECT_EQ(profile.critical_path[0].kind, ExecEvent::Kind::kSend);
  EXPECT_FALSE(profile.critical_path[0].via_wire);
  EXPECT_EQ(profile.critical_path[1].rank, 1);
  EXPECT_EQ(profile.critical_path[1].kind, ExecEvent::Kind::kRecv);
  EXPECT_TRUE(profile.critical_path[1].via_wire);
}

TEST(CriticalPath, LateReceiverTakesTheStreamEdge) {
  // The receiver only *starts* its recv after the payload already sat in
  // the mailbox (start 35 >= xfer/arrival 35 means no wait on the wire):
  // the gating predecessor is its own previous event, not the send.
  exec::ExecReport report;
  report.params = Params{2, 4, 1, 2};
  report.mode = exec::Mode::kMove;
  report.events.resize(2);
  report.events[0].push_back(send_ev(1, 0, 0, 10, 12));
  report.events[1].push_back(send_ev(0, 1, 0, 20, 22));
  report.events[1].push_back(recv_ev(0, 0, 35, 35, 45));
  const RunProfile profile = analyze(report);
  EXPECT_EQ(profile.straggler, 1);
  ASSERT_EQ(profile.critical_path.size(), 2u);
  EXPECT_EQ(profile.critical_path[0].rank, 1);
  EXPECT_EQ(profile.critical_path[0].kind, ExecEvent::Kind::kSend);
  EXPECT_EQ(profile.critical_path[1].rank, 1);
  EXPECT_FALSE(profile.critical_path[1].via_wire);
}

TEST(CriticalPath, FifoMatchingPairsIthSendWithIthRecv) {
  // Two messages on one link: the chain must thread through the *second*
  // send (the one the straggling recv actually popped), not the first.
  exec::ExecReport report;
  report.params = Params{2, 4, 1, 2};
  report.mode = exec::Mode::kMove;
  report.events.resize(2);
  report.events[0].push_back(send_ev(1, 0, 0, 5, 6));
  report.events[0].push_back(send_ev(1, 1, 10, 60, 62));
  report.events[1].push_back(recv_ev(0, 0, 1, 8, 9));
  report.events[1].push_back(recv_ev(0, 1, 20, 70, 80));
  const RunProfile profile = analyze(report);
  ASSERT_FALSE(profile.critical_path.empty());
  const PathSegment& last = profile.critical_path.back();
  EXPECT_EQ(last.rank, 1);
  EXPECT_EQ(last.item, 1);
  EXPECT_TRUE(last.via_wire);
  // Its wire predecessor is the second send (item 1, start 10).
  const PathSegment& prev =
      profile.critical_path[profile.critical_path.size() - 2];
  EXPECT_EQ(prev.rank, 0);
  EXPECT_EQ(prev.item, 1);
  EXPECT_EQ(prev.start_ns, 10u);
}

TEST(CriticalPath, SumModeGapsCountAsFold) {
  exec::ExecReport report;
  report.params = Params{1, 4, 1, 2};
  report.mode = exec::Mode::kSum;
  report.events.resize(1);
  report.events[0].push_back(send_ev(0, 0, 0, 4, 5));
  report.events[0].push_back(send_ev(0, 1, 20, 24, 25));  // 15ns gap
  RunProfile profile = analyze(report);
  EXPECT_EQ(profile.ranks[0].ns(Component::kFold), 15u);
  EXPECT_EQ(profile.ranks[0].ns(Component::kGapStall), 0u);

  report.mode = exec::Mode::kMove;
  profile = analyze(report);
  EXPECT_EQ(profile.ranks[0].ns(Component::kFold), 0u);
  EXPECT_EQ(profile.ranks[0].ns(Component::kGapStall), 15u);
}

TEST(CriticalPath, EmptyRunProfilesCleanly) {
  exec::ExecReport report;
  report.params = Params{2, 4, 1, 2};
  report.events.resize(2);
  const RunProfile profile = analyze(report);
  EXPECT_TRUE(profile.critical_path.empty());
  EXPECT_EQ(profile.straggler, kNoProc);
  EXPECT_EQ(profile.critical_path_ns, 0u);
}

TEST(CriticalPath, RejectsOutOfOrderAndMalformedEvents) {
  exec::ExecReport report;
  report.params = Params{1, 4, 1, 2};
  report.events.resize(1);
  report.events[0].push_back(send_ev(0, 0, 10, 14, 15));
  report.events[0].push_back(send_ev(0, 1, 5, 20, 21));  // starts in the past
  EXPECT_THROW(analyze(report), std::invalid_argument);

  report.events[0].clear();
  report.events[0].push_back(send_ev(0, 0, 10, 8, 15));  // xfer before start
  EXPECT_THROW(analyze(report), std::invalid_argument);
}

// --- real engine runs ------------------------------------------------------

exec::ExecReport run_broadcast(int P) {
  api::Communicator comm(Params{P, 4, 1, 2});
  const std::string payload = "critical-path-payload";
  const auto* bytes = reinterpret_cast<const std::byte*>(payload.data());
  return comm.run_broadcast(std::span<const std::byte>(bytes, payload.size()));
}

TEST(CriticalPath, RealBroadcastDecompositionWithinOnePercent) {
  const exec::ExecReport report = run_broadcast(8);
  const RunProfile profile = analyze(report);
  ASSERT_EQ(profile.P, 8);
  for (int p = 0; p < 8; ++p) {
    const RankBreakdown& rb = profile.ranks[static_cast<std::size_t>(p)];
    if (rb.span_ns() == 0) continue;
    // The acceptance bound is 1%; the partition is exact by construction.
    const auto span = static_cast<double>(rb.span_ns());
    const auto sum = static_cast<double>(rb.components_sum_ns());
    EXPECT_LE(std::abs(sum - span), 0.01 * span) << "rank " << p;
    EXPECT_EQ(rb.components_sum_ns(), rb.span_ns()) << "rank " << p;
  }
}

TEST(CriticalPath, RealBroadcastPathEndsAtLastFinishingRank) {
  const exec::ExecReport report = run_broadcast(8);
  const RunProfile profile = analyze(report);
  std::uint64_t last_end = 0;
  for (const auto& evs : report.events) {
    if (!evs.empty()) last_end = std::max(last_end, evs.back().end_ns);
  }
  ASSERT_FALSE(profile.critical_path.empty());
  EXPECT_EQ(profile.critical_path_ns, last_end);
  EXPECT_EQ(profile.critical_path.back().rank, profile.straggler);
  EXPECT_EQ(profile.critical_path.back().end_ns, last_end);
  // Every rank received the payload, so everyone but the root appears in
  // someone's event log; the path itself is a causal chain: hops never go
  // backward in time.
  for (std::size_t i = 1; i < profile.critical_path.size(); ++i) {
    EXPECT_LE(profile.critical_path[i - 1].start_ns,
              profile.critical_path[i].end_ns);
  }
}

TEST(CriticalPath, RealBroadcastFitsAResidual) {
  const exec::ExecReport report = run_broadcast(8);
  const RunProfile profile = analyze(report);
  EXPECT_GT(profile.predicted_makespan, 0);
  EXPECT_GT(profile.ns_per_cycle, 0.0);
  EXPECT_GT(profile.predicted_ns, 0.0);
  EXPECT_TRUE(std::isfinite(profile.residual));
  // residual = measured/predicted - 1, so it can never undershoot -1.
  EXPECT_GT(profile.residual, -1.0);
}

}  // namespace
}  // namespace logpc::obs
