#include "bcast/automaton.hpp"

#include <stdexcept>

namespace logpc::bcast {

namespace {

// Non-negative (x mod m).
int posmod(Time x, int m) {
  const auto r = static_cast<int>(x % m);
  return r < 0 ? r + m : r;
}

// Residue of position p holding the role with delay `delta`.
int residue(Time p, Time delta, int r) { return posmod(p - delta, r); }

void require_ctx(const WordContext& ctx) {
  if (ctx.delays.empty() || ctx.r < 1 || ctx.d < 0) {
    throw std::invalid_argument("WordContext: invalid parameters");
  }
  if (ctx.r > 31) {
    throw std::invalid_argument("WordContext: r too large");
  }
}

// DFS over positions 1..r-1 assigning letters with distinct residues.
// `counts` is nullptr for unrestricted enumeration, otherwise the exact
// multiset to consume.  `all` collects every word when non-null; otherwise
// the search stops at the first hit stored in `first`.
bool dfs(const WordContext& ctx, int p, unsigned used_residues, Word& prefix,
         std::vector<int>* counts, std::vector<Word>* all, Word* first) {
  if (p == ctx.r) {
    if (all != nullptr) {
      all->push_back(prefix);
      return false;  // keep enumerating
    }
    *first = prefix;
    return true;
  }
  for (int l = 0; l < static_cast<int>(ctx.delays.size()); ++l) {
    if (counts != nullptr && (*counts)[static_cast<std::size_t>(l)] == 0) {
      continue;
    }
    const int res =
        residue(p, ctx.delays[static_cast<std::size_t>(l)], ctx.r);
    if ((used_residues >> res) & 1u) continue;
    prefix.push_back(l);
    if (counts != nullptr) --(*counts)[static_cast<std::size_t>(l)];
    const bool done = dfs(ctx, p + 1, used_residues | (1u << res), prefix,
                          counts, all, first);
    if (counts != nullptr) ++(*counts)[static_cast<std::size_t>(l)];
    prefix.pop_back();
    if (done) return true;
  }
  return false;
}

}  // namespace

WordContext WordContext::standard(Time t, Time L, int r, Time d) {
  WordContext ctx;
  ctx.r = r;
  ctx.d = d;
  for (Time l = 0; l < L; ++l) ctx.delays.push_back(t - l);
  return ctx;
}

std::string word_to_string(const Word& w) {
  std::string s;
  s.reserve(w.size());
  for (const int l : w) {
    s.push_back(l >= 0 && l < 26 ? static_cast<char>('a' + l) : '?');
  }
  return s;
}

bool word_is_legal(const WordContext& ctx, const Word& w) {
  require_ctx(ctx);
  if (static_cast<int>(w.size()) != ctx.r - 1) return false;
  unsigned used = 1u << residue(0, ctx.d, ctx.r);
  for (std::size_t p = 0; p < w.size(); ++p) {
    const int l = w[p];
    if (l < 0 || l >= static_cast<int>(ctx.delays.size())) return false;
    const int res = residue(static_cast<Time>(p) + 1,
                            ctx.delays[static_cast<std::size_t>(l)], ctx.r);
    if ((used >> res) & 1u) return false;
    used |= 1u << res;
  }
  return true;
}

std::vector<Word> enumerate_legal_words(const WordContext& ctx) {
  require_ctx(ctx);
  std::vector<Word> all;
  Word prefix;
  Word unused;
  dfs(ctx, 1, 1u << residue(0, ctx.d, ctx.r), prefix, nullptr, &all, &unused);
  return all;
}

std::optional<Word> arrange_letters(const WordContext& ctx,
                                    std::vector<int> counts) {
  require_ctx(ctx);
  if (counts.size() != ctx.delays.size()) {
    throw std::invalid_argument(
        "arrange_letters: counts size must match delays");
  }
  int total = 0;
  for (const int c : counts) {
    if (c < 0) throw std::invalid_argument("arrange_letters: negative count");
    total += c;
  }
  if (total != ctx.r - 1) return std::nullopt;
  Word prefix;
  Word first;
  if (dfs(ctx, 1, 1u << residue(0, ctx.d, ctx.r), prefix, &counts, nullptr,
          &first)) {
    return first;
  }
  return std::nullopt;
}

Word lemma31_word(Time L, int j, int m) {
  if (L < 2 || j < 0 || m < 0) {
    throw std::invalid_argument("lemma31_word: L >= 2, j, m >= 0");
  }
  Word w;
  for (Time i = 0; i < L - 2; ++i) w.push_back(0);      // a^(L-2)
  for (int i = 0; i < j; ++i) {                          // (ca)^j
    w.push_back(2);
    w.push_back(0);
  }
  for (int i = 0; i < m; ++i) w.push_back(1);            // b^m
  return w;
}

}  // namespace logpc::bcast
