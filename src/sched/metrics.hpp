#pragma once

#include <vector>

#include "sched/schedule.hpp"

/// \file metrics.hpp
/// Derived quantities the paper's theorems are stated in terms of: per-item
/// completion times and delays, overall makespan, availability matrices.

namespace logpc {

/// availability[item][proc] = first cycle `proc` holds `item` (kNever if it
/// never does).  One pass over the schedule.
[[nodiscard]] std::vector<std::vector<Time>> availability_matrix(
    const Schedule& s);

/// Timing summary of one item's broadcast.
struct ItemCompletion {
  ItemId item = 0;
  Time generated = kNever;  ///< earliest availability anywhere (its creation)
  Time completed = kNever;  ///< cycle by which every processor holds it
  /// The paper's *delay* of an item (Section 3.1): completed - generated.
  [[nodiscard]] Time delay() const {
    return completed == kNever ? kNever : completed - generated;
  }
};

/// Per-item completion data; an item no processor ever misses has
/// completed != kNever.
[[nodiscard]] std::vector<ItemCompletion> item_completions(const Schedule& s);

/// Cycle by which every processor holds every item; kNever if some item
/// never reaches some processor.
[[nodiscard]] Time completion_time(const Schedule& s);

/// Maximum item delay (the objective of continuous broadcast); kNever if
/// any item is incomplete.
[[nodiscard]] Time max_delay(const Schedule& s);

/// Number of transmissions of `item` received per processor.
[[nodiscard]] std::vector<int> receive_counts(const Schedule& s, ItemId item);

/// Number of sends issued by each processor (any item).
[[nodiscard]] std::vector<int> send_counts(const Schedule& s);

/// True iff the designated source processor transmits each item at most
/// once (the "single-sending" property of Section 3.4).
[[nodiscard]] bool is_single_sending(const Schedule& s, ProcId source);

}  // namespace logpc
