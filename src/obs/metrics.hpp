#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

/// \file metrics.hpp
/// The process-wide metrics registry: named counters, gauges and
/// fixed-bucket histograms, designed so the hot path is a handful of
/// relaxed atomic operations and *zero* allocation or locking.
///
/// Registration (looking a metric up by name) takes the registry mutex and
/// may allocate — do it once at construction time and keep the returned
/// reference, which stays valid for the registry's lifetime.  Observation
/// (inc/set/observe) is lock-free.  Export (snapshot()) takes the mutex
/// again and reads the atomics relaxed; values observed concurrently with a
/// snapshot land in this snapshot or the next, which is all a monitoring
/// scrape needs.
///
/// Metric identity is (name, labels): `labels` is a pre-rendered Prometheus
/// label body such as `problem="kitem"` (no braces), so one logical metric
/// family can fan out per label value — exactly how the planner keys its
/// per-problem build-latency histograms.

namespace logpc::obs {

/// Process-wide telemetry kill switch, honored by the instrumented call
/// sites (planner counters, spans, scoped timers).  Relaxed atomic: flips
/// become visible promptly but not synchronously.  Default on.
void set_enabled(bool on);
[[nodiscard]] bool enabled();

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time level that can move both ways.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: `bounds` are the inclusive upper bounds of the
/// finite buckets (sorted ascending); one implicit +Inf bucket catches the
/// rest.  observe() is a binary search plus three relaxed atomic adds.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts (bounds().size() + 1 entries, last = +Inf bucket),
  /// non-cumulative.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Latency bucket ladder the instrumented layers share: 100ns .. 1s in a
/// 1-2.5-5 progression, in nanoseconds.
[[nodiscard]] const std::vector<double>& default_latency_buckets_ns();

/// Log-scale (exponential) bucket edges: `count` upper bounds starting at
/// `start`, each `factor` times the previous — the standard shape for
/// latency distributions spanning several orders of magnitude, where any
/// fixed linear ladder collapses the far decades into one bucket.
/// Requires start > 0, factor > 1, count >= 1 (throws
/// std::invalid_argument otherwise).
[[nodiscard]] std::vector<double> exponential_buckets(double start,
                                                      double factor,
                                                      std::size_t count);

/// Request-latency ladder for the serving layer: 1us .. ~17s in factor-2
/// steps (25 edges), in nanoseconds.  Wider than
/// default_latency_buckets_ns() at the top — a queued request under
/// overload legitimately waits seconds, and the e2e histogram must keep
/// resolution there instead of dumping everything past 1s into +Inf.
[[nodiscard]] const std::vector<double>& default_request_buckets_ns();

/// Point-in-time value of one registered metric, for the exporters.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  std::string labels;  ///< label body without braces; may be empty
  std::string help;
  Kind kind = Kind::kCounter;
  double value = 0;  ///< counter/gauge value (callbacks evaluated here)
  // Histogram payload (empty otherwise):
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;  ///< non-cumulative, +Inf last
  std::uint64_t count = 0;
  double sum = 0;
};

/// The registry.  Normally one per process (global()), but independently
/// constructible for tests and isolated pipelines.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every built-in instrumentation site uses.
  static MetricsRegistry& global();

  /// The counter/gauge/histogram registered under (name, labels), created
  /// on first use.  Returned references stay valid for the registry's
  /// lifetime.  Re-registering the same identity as a different metric
  /// kind throws std::logic_error; a histogram's bounds are fixed by the
  /// first registration.
  Counter& counter(const std::string& name, const std::string& help = "",
                   const std::string& labels = "");
  Gauge& gauge(const std::string& name, const std::string& help = "",
               const std::string& labels = "");
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "",
                       const std::string& labels = "");

  /// Registers a gauge whose value is computed by `fn` at snapshot time —
  /// zero cost between scrapes.  This is how the plan cache republishes its
  /// internal counters without touching its hot path.  The callback must
  /// stay valid until unregister(); it is invoked under the registry mutex.
  void register_callback(const std::string& name, const std::string& help,
                         std::function<double()> fn,
                         const std::string& labels = "");

  /// Drops the metric registered under (name, labels).  Returns whether it
  /// existed.  Required for callback metrics whose closure outlives-checks
  /// matter (e.g. a Planner unregistering its cache gauges on destruction);
  /// plain metrics are usually left registered for the process lifetime.
  bool unregister(const std::string& name, const std::string& labels = "");

  /// Point-in-time values of every registered metric, callbacks evaluated,
  /// sorted by (name, labels).
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    MetricSnapshot::Kind kind = MetricSnapshot::Kind::kCounter;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> callback;  ///< callback gauges only
  };

  using Key = std::pair<std::string, std::string>;  ///< (name, labels)

  Entry& entry_for(const Key& key, MetricSnapshot::Kind kind,
                   const std::string& help);

  mutable std::mutex mu_;
  std::map<Key, Entry> entries_;
};

}  // namespace logpc::obs
