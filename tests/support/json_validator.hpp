#pragma once

#include <cctype>
#include <string>
#include <string_view>

/// Minimal recursive-descent JSON validator shared by the telemetry test
/// suites (Chrome-trace export, /statusz and /tracez bodies), so tests
/// assert "valid JSON" structurally instead of grepping for brackets.
/// Accepts exactly RFC 8259 value grammar; no extensions.

namespace logpc::testsupport {

class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : s_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + static_cast<std::size_t>(i) >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(
                    s_[pos_ + static_cast<std::size_t>(i)]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace logpc::testsupport
