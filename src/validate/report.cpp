#include "validate/report.hpp"

#include <ostream>
#include <sstream>

namespace logpc::validate {

std::string_view rule_name(Rule r) {
  switch (r) {
    case Rule::kBadProcessor: return "bad-processor";
    case Rule::kBadItem: return "bad-item";
    case Rule::kSelfSend: return "self-send";
    case Rule::kItemNotHeld: return "item-not-held";
    case Rule::kSendGap: return "send-gap";
    case Rule::kRecvGap: return "recv-gap";
    case Rule::kOverheadOverlap: return "overhead-overlap";
    case Rule::kLatency: return "latency";
    case Rule::kBufferOverflow: return "buffer-overflow";
    case Rule::kDuplicateReceive: return "duplicate-receive";
    case Rule::kCapacity: return "capacity";
    case Rule::kIncomplete: return "incomplete";
    case Rule::kDeliveryOrder: return "delivery-order";
  }
  return "unknown";
}

std::ostream& operator<<(std::ostream& os, const Violation& v) {
  return os << "[" << rule_name(v.rule) << "] " << v.detail;
}

std::string CheckResult::summary() const {
  if (ok()) return "OK";
  std::ostringstream os;
  os << violations.size() << " violation(s):";
  std::size_t shown = 0;
  for (const auto& v : violations) {
    os << "\n  " << v;
    if (++shown == 20) {
      os << "\n  ... (" << violations.size() - shown << " more)";
      break;
    }
  }
  return os.str();
}

}  // namespace logpc::validate
