#include "bcast/words.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace logpc::bcast {

namespace {

int posmod(Time x, int m) {
  const auto r = static_cast<int>(x % m);
  return r < 0 ? r + m : r;
}

class Solver {
 public:
  Solver(std::vector<Time> delays, int n_base,
         std::vector<std::size_t> order,
         const std::vector<BlockSpec>& blocks, std::vector<int> supplies,
         std::uint64_t budget)
      : delays_(std::move(delays)),
        n_base_(n_base),
        order_(std::move(order)),
        blocks_(blocks),
        supplies_(std::move(supplies)),
        budget_(budget),
        words_(blocks.size()) {}

  SolveResult run() {
    SolveResult result;
    const bool found = solve_block(0);
    result.nodes_explored = nodes_;
    if (found) {
      result.status = SolveStatus::kSolved;
      WordAssignment wa;
      wa.words = std::move(words_);
      // Exactly one unit of supply remains for the receive-only processor.
      const auto it = std::find_if(supplies_.begin(), supplies_.end(),
                                   [](int c) { return c > 0; });
      wa.receive_only_letter =
          static_cast<int>(std::distance(supplies_.begin(), it));
      result.assignment = std::move(wa);
    } else {
      result.status = exhausted_ ? SolveStatus::kBudgetExhausted
                                 : SolveStatus::kInfeasible;
    }
    return result;
  }

 private:
  std::vector<Time> delays_;  // extended: delays of (base letter, wait)
  int n_base_;                // base alphabet size; supplies_ indexed by base
  std::vector<std::size_t> order_;  // block indices, most-constrained first
  const std::vector<BlockSpec>& blocks_;
  std::vector<int> supplies_;
  std::uint64_t budget_;
  std::uint64_t nodes_ = 0;
  bool exhausted_ = false;
  std::vector<Word> words_;

  bool tick() {
    if (++nodes_ > budget_) {
      exhausted_ = true;
      return false;
    }
    return true;
  }

  bool solve_block(std::size_t oi) {
    if (oi == order_.size()) return true;
    const std::size_t bi = order_[oi];
    const BlockSpec& b = blocks_[bi];
    Word word;
    word.reserve(static_cast<std::size_t>(b.r) - 1);
    const unsigned used = 1u << posmod(-b.d, b.r);
    return solve_position(oi, b, 1, used, word);
  }

  bool solve_position(std::size_t oi, const BlockSpec& b, int p,
                      unsigned used, Word& word) {
    if (exhausted_) return false;
    if (p == b.r) {
      words_[order_[oi]] = word;
      if (solve_block(oi + 1)) return true;
      return false;
    }
    // Try letters in order of descending remaining supply (balance
    // consumption); ties by letter index for determinism.
    std::vector<int> letters(delays_.size());
    std::iota(letters.begin(), letters.end(), 0);
    std::stable_sort(letters.begin(), letters.end(), [&](int a, int c) {
      // Prefer plentiful base letters; among equals, smaller waits first.
      return supplies_[static_cast<std::size_t>(a % n_base_)] >
             supplies_[static_cast<std::size_t>(c % n_base_)];
    });
    for (const int l : letters) {
      auto& supply = supplies_[static_cast<std::size_t>(l % n_base_)];
      if (supply == 0) continue;
      const int res =
          posmod(p - delays_[static_cast<std::size_t>(l)], b.r);
      if ((used >> res) & 1u) continue;
      if (!tick()) return false;
      --supply;
      word.push_back(l);
      if (solve_position(oi, b, p + 1, used | (1u << res), word)) {
        return true;
      }
      word.pop_back();
      ++supply;
      if (exhausted_) return false;
    }
    return false;
  }
};

}  // namespace

SolveResult assign_words(const std::vector<Time>& letter_delays,
                         const std::vector<BlockSpec>& blocks,
                         std::vector<int> supplies, int max_wait,
                         std::uint64_t budget) {
  if (letter_delays.empty()) {
    throw std::invalid_argument("assign_words: need at least one letter");
  }
  if (max_wait < 0) {
    throw std::invalid_argument("assign_words: max_wait >= 0");
  }
  if (supplies.size() != letter_delays.size()) {
    throw std::invalid_argument(
        "assign_words: supplies size must match letters");
  }
  int total_supply = 0;
  for (const int c : supplies) {
    if (c < 0) throw std::invalid_argument("assign_words: negative supply");
    total_supply += c;
  }
  int total_demand = 1;  // receive-only processor
  for (const auto& b : blocks) {
    if (b.r < 1 || b.r > 31 || b.d < 0) {
      throw std::invalid_argument("assign_words: bad block spec");
    }
    total_demand += b.r - 1;
  }
  if (total_supply != total_demand) {
    return SolveResult{SolveStatus::kInfeasible, std::nullopt, 0};
  }
  // Most-constrained-first: larger blocks have longer words and tighter
  // residue constraints.
  std::vector<std::size_t> order(blocks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b2) {
                     return blocks[a].r > blocks[b2].r;
                   });
  std::vector<Time> extended = letter_delays;
  for (int w = 1; w <= max_wait; ++w) {
    for (const Time d : letter_delays) extended.push_back(d + w);
  }
  return Solver(std::move(extended), static_cast<int>(letter_delays.size()),
                std::move(order), blocks, std::move(supplies), budget)
      .run();
}

}  // namespace logpc::bcast
