/// Experiment T41b - Section 4.2 / Theorem 4.1: all-to-all broadcast with
/// combining takes no longer than all-to-one reduction (B(P) steps for
/// P = P(T)), vs the naive reduce-then-broadcast at ~2x.

#include "bench_util.hpp"

#include <numeric>

#include "bcast/combining.hpp"
#include "validate/checker.hpp"

namespace {

using namespace logpc;
using logpc::bench::Table;

void report() {
  logpc::bench::section(
      "Theorem 4.1: combining broadcast in T = B(P) steps (postal)");
  Table t({"L", "T", "P = f_T", "all hold total", "timing valid",
           "reduce+bcast (2x)"});
  for (const Time L : {1, 2, 3, 5, 8}) {
    for (Time T = L + 2; T <= L + 6; ++T) {
      const auto cs = bcast::combining_broadcast(T, L);
      if (cs.params.P > 600) break;
      std::vector<long long> vals(static_cast<std::size_t>(cs.params.P));
      std::iota(vals.begin(), vals.end(), 1);
      const auto out = bcast::execute_combining<long long>(
          cs, vals, [](const long long& a, const long long& b) {
            return a + b;
          });
      const long long total =
          static_cast<long long>(cs.params.P) * (cs.params.P + 1) / 2;
      const bool all = std::all_of(out.begin(), out.end(),
                                   [&](long long v) { return v == total; });
      const bool valid = validate::is_valid(
          cs.timing_view(),
          {.forbid_duplicate_receive = false, .require_complete = false});
      t.row(L, T, cs.params.P, logpc::bench::ok(all),
            logpc::bench::ok(valid), 2 * T);
    }
  }
  t.print();
  std::cout << "shape: the combining broadcast (allreduce) finishes in T =\n"
               "B(P) steps - exactly the reduction time and half of the\n"
               "naive reduce-then-broadcast.\n";

  logpc::bench::section("window invariant (proof of Theorem 4.1)");
  // At time j, processor i holds x[i - f_j + 1 : i]; verify at j = T via
  // non-commutative concatenation on a medium instance.
  const Time L = 3;
  const Time T = 9;
  const auto cs = bcast::combining_broadcast(T, L);
  std::vector<std::string> vals;
  for (int i = 0; i < cs.params.P; ++i) {
    vals.push_back("x" + std::to_string(i) + ".");
  }
  const auto out = bcast::execute_combining<std::string>(
      cs, vals,
      [](const std::string& a, const std::string& b) { return a + b; });
  bool windows = true;
  for (int i = 0; i < cs.params.P; ++i) {
    std::string expected;
    for (int j = 1; j <= cs.params.P; ++j) {
      expected += "x" + std::to_string((i + j) % cs.params.P) + ".";
    }
    windows = windows && out[static_cast<std::size_t>(i)] == expected;
  }
  Table w({"check", "result"});
  w.row("every processor ends with its full cyclic window",
        logpc::bench::ok(windows));
  w.print();
}

void BM_CombiningConstruct(benchmark::State& state) {
  const Time T = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bcast::combining_broadcast(T, 3));
  }
}
BENCHMARK(BM_CombiningConstruct)->Arg(9)->Arg(13)->Arg(17);

void BM_CombiningExecute(benchmark::State& state) {
  const auto cs = bcast::combining_broadcast(state.range(0), 3);
  std::vector<long long> vals(static_cast<std::size_t>(cs.params.P), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bcast::execute_combining<long long>(
        cs, vals,
        [](const long long& a, const long long& b) { return a + b; }));
  }
}
BENCHMARK(BM_CombiningExecute)->Arg(9)->Arg(13);

}  // namespace

LOGPC_BENCH_MAIN(report)
