# Empty dependencies file for bench_continuous_sweep.
# This may be replaced when dependencies are built.
