/// Quickstart: describe your machine with the four LogP parameters, build
/// the provably-optimal broadcast schedule, run it on the simulator, and
/// verify it with the independent checker.
///
///   ./quickstart [P] [L] [o] [g]

#include <cstdlib>
#include <iostream>

#include "bcast/single_item.hpp"
#include "sched/metrics.hpp"
#include "sim/engine.hpp"
#include "validate/checker.hpp"
#include "viz/timeline.hpp"
#include "viz/tree_render.hpp"

int main(int argc, char** argv) {
  using namespace logpc;

  Params params{8, 6, 2, 4};  // Figure 1's machine by default
  if (argc >= 2) params.P = std::atoi(argv[1]);
  if (argc >= 3) params.L = std::atol(argv[2]);
  if (argc >= 4) params.o = std::atol(argv[3]);
  if (argc >= 5) params.g = std::atol(argv[4]);
  params.require_valid();

  std::cout << "machine: " << params << "\n\n";

  // 1. The optimal single-item broadcast tree (Karp et al., Theorem 2.1).
  const auto tree = bcast::BroadcastTree::optimal(params, params.P);
  std::cout << "optimal broadcast tree (node labels = informed-at cycle):\n"
            << viz::render_tree(tree) << "\n";
  std::cout << "broadcast completes at B(P) = " << tree.makespan()
            << " cycles\n\n";

  // 2. As a concrete schedule...
  const Schedule schedule = bcast::optimal_single_item(params);
  std::cout << "activity chart ('s' = send overhead, 'r' = receive):\n"
            << viz::render_timeline(schedule) << "\n";

  // 3. ...verified by the independent rule checker...
  const auto verdict = validate::check(schedule);
  std::cout << "validator: " << verdict.summary() << "\n";

  // 4. ...and reproduced by reactive programs on the event simulator.
  sim::Engine engine(params, 1);
  for (ProcId p = 0; p < params.P; ++p) {
    engine.set_program(p, bcast::make_tree_program(tree, p));
  }
  engine.place(0, 0, 0);
  const auto run = engine.run();
  std::cout << "simulator : " << run.messages << " messages, done at cycle "
            << run.makespan << "\n";

  if (!verdict.ok() || run.makespan != tree.makespan()) {
    std::cerr << "MISMATCH - this is a bug\n";
    return 1;
  }
  std::cout << "\nschedule is optimal, valid, and simulator-confirmed.\n";
  return 0;
}
