# Empty compiler generated dependencies file for test_kitem_buffered.
# This may be replaced when dependencies are built.
