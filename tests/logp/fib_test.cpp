#include "logp/fib.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

namespace logpc {
namespace {

TEST(Fib, L3MatchesPaperSection3Example) {
  // Section 3.2's running example uses L = 3, P - 1 = 9 = f_7.
  const Fib fib(3);
  const Count expected[] = {1, 1, 1, 2, 3, 4, 6, 9, 13, 19, 28};
  for (Time i = 0; i < 11; ++i) {
    EXPECT_EQ(fib.f(i), expected[i]) << "i=" << i;
  }
}

TEST(Fib, L1DoublesEachStep) {
  const Fib fib(1);
  for (Time i = 0; i < 30; ++i) {
    EXPECT_EQ(fib.f(i), Count{1} << i) << "i=" << i;
  }
}

TEST(Fib, L2IsClassicalFibonacci) {
  const Fib fib(2);
  const Count expected[] = {1, 1, 2, 3, 5, 8, 13, 21, 34, 55};
  for (Time i = 0; i < 10; ++i) {
    EXPECT_EQ(fib.f(i), expected[i]) << "i=" << i;
  }
}

TEST(Fib, RejectsNonPositiveLatency) {
  EXPECT_THROW(Fib(0), std::invalid_argument);
  EXPECT_THROW(Fib(-2), std::invalid_argument);
}

TEST(Fib, NegativeIndexThrows) {
  const Fib fib(3);
  EXPECT_THROW((void)fib.f(-1), std::out_of_range);
}

// Fact 2.1: 1 + sum_{i=0..t} f_i = f_{t+L}, for every L and t.
class FibFact21 : public ::testing::TestWithParam<Time> {};

TEST_P(FibFact21, HoldsForAllSmallT) {
  const Fib fib(GetParam());
  for (Time t = 0; t <= 40; ++t) {
    EXPECT_EQ(sat_add(1, fib.sum(t)), fib.f(t + GetParam()))
        << "L=" << GetParam() << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(AllLatencies, FibFact21,
                         ::testing::Values<Time>(1, 2, 3, 4, 5, 6, 7, 8, 9,
                                                 10));

TEST(Fib, SumPrefixBasics) {
  const Fib fib(3);
  EXPECT_EQ(fib.sum(-1), 0u);
  EXPECT_EQ(fib.sum(0), 1u);
  EXPECT_EQ(fib.sum(6), 18u);  // 1+1+1+2+3+4+6 (used by k* in the paper)
}

TEST(Fib, BOfPInverseOfPOfT) {
  for (Time L = 1; L <= 8; ++L) {
    const Fib fib(L);
    for (Time t = 0; t <= 25; ++t) {
      const Count p = fib.P_of_t(t);
      // B(P(t)) <= t, and broadcasting to P(t)+1 processors needs > t.
      EXPECT_LE(fib.B_of_P(p), t);
      EXPECT_GT(fib.B_of_P(p + 1), t);
    }
  }
}

TEST(Fib, BOfPExamples) {
  const Fib fib(3);
  EXPECT_EQ(fib.B_of_P(1), 0);
  EXPECT_EQ(fib.B_of_P(9), 7);   // T9: B(9) = 7 in the running example
  EXPECT_EQ(fib.B_of_P(10), 8);
  EXPECT_EQ(fib.B_of_P(13), 8);  // Figure 5 uses B(13) = 8
  EXPECT_EQ(fib.B_of_P(41), 11); // Figure 3 uses P(n) = 41 -> n = 11
  EXPECT_THROW((void)fib.B_of_P(0), std::invalid_argument);
}

TEST(Fib, IsExactP) {
  const Fib fib(3);
  for (const Count p : {1u, 2u, 3u, 4u, 6u, 9u, 13u, 19u, 28u, 41u}) {
    EXPECT_TRUE(fib.is_exact_P(p)) << p;
  }
  for (const Count p : {5u, 7u, 8u, 10u, 12u, 14u, 20u, 40u, 42u}) {
    EXPECT_FALSE(fib.is_exact_P(p)) << p;
  }
  EXPECT_FALSE(fib.is_exact_P(0));
}

TEST(Fib, KStarMatchesSection3Example) {
  // P - 1 = 9, L = 3: n = 6 (f_6 = 6 < 9 <= f_7 = 9), sum = 18, k* = 2,
  // which is the value the paper uses for the k = 8 example of Figure 2.
  const Fib fib(3);
  EXPECT_EQ(fib.k_star(10), 2u);
}

TEST(Fib, KStarIsAtMostL) {
  // Section 3.1 asserts k* <= L.
  for (Time L = 1; L <= 10; ++L) {
    const Fib fib(L);
    for (Count P = 2; P <= 2000; ++P) {
      EXPECT_LE(fib.k_star(P), static_cast<Count>(L))
          << "L=" << L << " P=" << P;
    }
  }
}

TEST(Fib, KStarRejectsDegenerateP) {
  const Fib fib(3);
  EXPECT_THROW((void)fib.k_star(1), std::invalid_argument);
  EXPECT_THROW((void)fib.k_star(0), std::invalid_argument);
}

TEST(Fib, SaturatesInsteadOfOverflowing) {
  const Fib fib(1);
  EXPECT_EQ(fib.f(200), kSaturated);
  EXPECT_EQ(fib.sum(200), kSaturated);
  EXPECT_EQ(sat_add(kSaturated, kSaturated), kSaturated);
  EXPECT_EQ(sat_add(kSaturated - 1, 1), kSaturated);
}

TEST(Fib, MonotoneNondecreasing) {
  for (Time L = 1; L <= 10; ++L) {
    const Fib fib(L);
    for (Time i = 1; i <= 60; ++i) {
      EXPECT_GE(fib.f(i), fib.f(i - 1)) << "L=" << L << " i=" << i;
    }
  }
}

TEST(SharedFib, AgreesWithAPrivateInstance) {
  for (Time L = 1; L <= 6; ++L) {
    const Fib fib(L);
    for (Time i = 0; i <= 40; ++i) {
      EXPECT_EQ(shared_fib_f(L, i), fib.f(i));
      EXPECT_EQ(shared_fib_sum(L, i), fib.sum(i));
    }
    for (Count P = 1; P <= 64; ++P) {
      EXPECT_EQ(shared_B_of_P(L, P), fib.B_of_P(P));
      EXPECT_EQ(shared_is_exact_P(L, P), fib.is_exact_P(P));
      if (P >= 2) EXPECT_EQ(shared_k_star(L, P), fib.k_star(P));
    }
  }
}

TEST(Fib, BOfPGuardsTheSaturationClamp) {
  // f(t) clamps at kSaturated, so B_of_P(P) for any larger P used to scan
  // (and grow the memo) forever.  At the clamp itself the scan still
  // terminates — the first saturated index satisfies f(t) >= P.
  const Fib fib(3);
  EXPECT_NO_THROW((void)fib.B_of_P(kSaturated));
  EXPECT_THROW((void)fib.B_of_P(kSaturated + 1), std::overflow_error);
}

TEST(Fib, IsExactPGuardsTheSaturationClamp) {
  // At P == kSaturated "f hits P exactly" is unanswerable: the clamp is a
  // floor, not a value.
  const Fib fib(2);
  EXPECT_THROW((void)fib.is_exact_P(kSaturated), std::overflow_error);
  EXPECT_THROW((void)fib.is_exact_P(kSaturated + 1), std::overflow_error);
  EXPECT_NO_THROW((void)fib.is_exact_P(kSaturated - 1));
}

TEST(SharedFib, ClampGuardsCoverTheSharedAccessors) {
  EXPECT_NO_THROW((void)shared_B_of_P(3, kSaturated));
  EXPECT_THROW((void)shared_B_of_P(3, kSaturated + 1), std::overflow_error);
  EXPECT_THROW((void)shared_is_exact_P(3, kSaturated), std::overflow_error);
  EXPECT_THROW((void)shared_is_exact_P(3, kSaturated + 1),
               std::overflow_error);
}

TEST(SharedFib, ConcurrentQueriesAreConsistent) {
  // Many threads extending the same shared tables must agree with a
  // sequential reference (run under -DLOGPC_TSAN=ON for the race proof).
  const Fib reference(3);
  const Count want = reference.f(50);
  std::vector<std::thread> pool;
  std::atomic<int> mismatches{0};
  pool.reserve(8);
  for (int t = 0; t < 8; ++t) {
    pool.emplace_back([&, t] {
      for (Time i = 0; i <= 50; ++i) {
        const Time idx = (t % 2 == 0) ? i : 50 - i;  // opposite directions
        if (shared_fib_f(3, idx) != reference.f(idx)) ++mismatches;
      }
      if (shared_fib_f(3, 50) != want) ++mismatches;
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace logpc
