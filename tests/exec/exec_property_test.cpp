#include <gtest/gtest.h>

#include <map>
#include <random>
#include <string>
#include <vector>

#include "api/communicator.hpp"
#include "exec/engine.hpp"
#include "exec/program.hpp"
#include "exec_test_util.hpp"
#include "runtime/planner.hpp"
#include "sum/executor.hpp"
#include "validate/checker.hpp"

/// Randomized properties of the execution engine, per the paper's two
/// problems: a k-item broadcast on real threads delivers every item to
/// every processor exactly once, and an executed summation equals the
/// sequential left-fold of the inputs in `combination_order` — including
/// for a non-commutative operator, where any deviation from the planned
/// order changes the bytes.

namespace logpc::exec {
namespace {

namespace tu = testutil;

/// One shared engine: the pool grows to the largest random P and is
/// reused, which also exercises epoch-barrier reuse across shapes.
Engine& engine() { return Engine::shared(); }

TEST(ExecProperty, BroadcastDeliversEveryItemExactlyOnce) {
  std::mt19937 rng(20260805);
  std::uniform_int_distribution<int> pick_P(2, 12);
  std::uniform_int_distribution<Time> pick_L(1, 10);
  std::uniform_int_distribution<Time> pick_o(0, 3);
  std::uniform_int_distribution<Time> pick_g(1, 4);
  std::uniform_int_distribution<int> pick_k(1, 6);
  std::uniform_int_distribution<int> pick_len(1, 48);
  std::uniform_int_distribution<int> pick_byte(0, 255);

  for (int trial = 0; trial < 20; ++trial) {
    const Params machine{pick_P(rng), pick_L(rng), pick_o(rng), pick_g(rng)};
    const int k = pick_k(rng);
    SCOPED_TRACE("trial " + std::to_string(trial) + ": " +
                 machine.to_string() + " k=" + std::to_string(k));

    const runtime::Plan plan = runtime::Planner::build_uncached(
        runtime::PlanKey::kitem(machine, k));
    const Schedule& s = plan.schedule;
    const Program prog = compile_broadcast(s, "prop-bcast");

    std::vector<Bytes> payloads;
    payloads.reserve(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) {
      Bytes b(static_cast<std::size_t>(pick_len(rng)));
      for (auto& byte : b) {
        byte = static_cast<std::byte>(pick_byte(rng));
      }
      payloads.push_back(std::move(b));
    }

    const ExecReport report = engine().run(prog, payloads);

    // Every processor ends up holding every item, byte-exact.
    const auto P = static_cast<std::size_t>(s.params().P);
    for (std::size_t p = 0; p < P; ++p) {
      for (int i = 0; i < k; ++i) {
        EXPECT_EQ(report.item_at(static_cast<ProcId>(p), i),
                  payloads[static_cast<std::size_t>(i)])
            << "P" << p << " item " << i;
      }
    }

    // Exactly once: each (processor, item) is either an initial placement
    // or delivered by precisely one reception — never both, never twice.
    std::vector<std::vector<int>> placed(
        P, std::vector<int>(static_cast<std::size_t>(k), 0));
    for (const auto& init : s.initials()) {
      ++placed[static_cast<std::size_t>(init.proc)]
              [static_cast<std::size_t>(init.item)];
    }
    for (std::size_t p = 0; p < P; ++p) {
      for (const auto& d : report.deliveries[p]) {
        ++placed[p][static_cast<std::size_t>(d.item)];
      }
      for (int i = 0; i < k; ++i) {
        EXPECT_EQ(placed[p][static_cast<std::size_t>(i)], 1)
            << "P" << p << " item " << i << " not delivered exactly once";
      }
    }

    // And the executed delivery sequence is the planned one.
    const validate::CheckResult order =
        validate::check_delivery_order(s, report.deliveries);
    EXPECT_TRUE(order.ok()) << order.summary();
  }
}

TEST(ExecProperty, SummationEqualsSequentialFoldInCombinationOrder) {
  std::mt19937 rng(19930615);
  std::uniform_int_distribution<int> pick_P(2, 10);
  std::uniform_int_distribution<Time> pick_L(1, 8);
  std::uniform_int_distribution<Time> pick_o(0, 2);
  std::uniform_int_distribution<Time> pick_gap(1, 3);

  for (int trial = 0; trial < 20; ++trial) {
    const Time o = pick_o(rng);
    // Summation plans require g >= o + 1.
    const Params machine{pick_P(rng), pick_L(rng), o, o + pick_gap(rng)};
    const api::Communicator comm(machine);
    std::uniform_int_distribution<Count> pick_n(
        static_cast<Count>(machine.P), static_cast<Count>(machine.P) + 50);
    const Count n = pick_n(rng);
    SCOPED_TRACE("trial " + std::to_string(trial) + ": " +
                 machine.to_string() + " n=" + std::to_string(n));

    const sum::SummationPlan plan = comm.reduce_operands(n);
    const auto layout = sum::operand_layout(plan);

    // Non-commutative operands: "(i:j)" tags plan index and local slot, so
    // any fold-order deviation produces visibly different bytes.
    std::vector<std::vector<Bytes>> operands(plan.procs.size());
    std::vector<std::vector<std::string>> strings(plan.procs.size());
    for (std::size_t i = 0; i < layout.size(); ++i) {
      for (std::size_t j = 0; j < layout[i].total(); ++j) {
        strings[i].push_back("(" + std::to_string(i) + ":" +
                             std::to_string(j) + ")");
        operands[i].push_back(tu::of_str(strings[i].back()));
      }
    }

    // Sequential left-fold in the plan's combination order.
    std::map<ProcId, std::size_t> plan_index;
    for (std::size_t i = 0; i < plan.procs.size(); ++i) {
      plan_index[plan.procs[i].proc] = i;
    }
    std::string expected;
    for (const auto& [proc, local] : sum::combination_order(plan)) {
      expected += strings[plan_index.at(proc)][local];
    }

    const Program prog = compile_summation(plan);
    const ExecReport report = engine().run(prog, operands, tu::concat());
    EXPECT_EQ(tu::to_str(report.folded_at(plan.root)), expected);

    // Cross-check the commutative path against the reference executor.
    std::vector<std::vector<Bytes>> numbers(plan.procs.size());
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < layout.size(); ++i) {
      for (std::size_t j = 0; j < layout[i].total(); ++j) {
        numbers[i].push_back(tu::of_u64(v++));
      }
    }
    const ExecReport sums =
        engine().run(compile_summation(plan), numbers, tu::add_u64());
    EXPECT_EQ(tu::to_u64(sums.folded_at(plan.root)),
              static_cast<std::uint64_t>(sum::execute_iota_sum(plan)));
  }
}

}  // namespace
}  // namespace logpc::exec
