#include "obs/chrome_trace.hpp"

#include <ostream>
#include <set>
#include <sstream>

#include "obs/json.hpp"

namespace logpc::obs {

namespace {

/// Nanoseconds to the viewers' microsecond clock, with sub-us precision.
std::string us(std::uint64_t ns) {
  return json_number(static_cast<double>(ns) / 1e3);
}

}  // namespace

void ChromeTraceWriter::add_process_name(int pid, std::string_view name) {
  std::ostringstream e;
  e << R"({"name":"process_name","ph":"M","pid":)" << pid
    << R"(,"tid":0,"args":{"name":)" << json_string(name) << "}}";
  events_.push_back(e.str());
}

void ChromeTraceWriter::add_thread_name(int pid, std::uint32_t tid,
                                        std::string_view name) {
  std::ostringstream e;
  e << R"({"name":"thread_name","ph":"M","pid":)" << pid << R"(,"tid":)" << tid
    << R"(,"args":{"name":)" << json_string(name) << "}}";
  events_.push_back(e.str());
}

void ChromeTraceWriter::add(const TraceRecorder& rec, int pid,
                            std::string_view process_name) {
  add_process_name(pid, process_name);
  std::set<std::uint32_t> tids;
  for (const TraceEvent& ev : rec.events()) {
    tids.insert(ev.tid);
    std::ostringstream e;
    e << R"({"name":)" << json_string(ev.name) << R"(,"ph":"X","cat":)"
      << json_string(ev.cat.empty() ? "span" : ev.cat) << R"(,"pid":)" << pid
      << R"(,"tid":)" << ev.tid << R"(,"ts":)" << us(ev.ts_ns) << R"(,"dur":)"
      << us(ev.dur_ns);
    if (!ev.arg.empty()) {
      e << R"(,"args":{"detail":)" << json_string(ev.arg) << "}";
    }
    e << "}";
    events_.push_back(e.str());
  }
  for (const std::uint32_t tid : tids) {
    add_thread_name(pid, tid, "thread " + std::to_string(tid));
  }
}

void ChromeTraceWriter::add(const sim::Trace& trace, int pid,
                            std::string_view process_name) {
  add_process_name(pid, process_name);
  for (std::size_t p = 0; p < trace.per_proc.size(); ++p) {
    add_thread_name(pid, static_cast<std::uint32_t>(p),
                    "proc " + std::to_string(p));
    for (const sim::Activity& a : trace.per_proc[p]) {
      const bool send = a.kind == sim::ActivityKind::kSendOverhead;
      std::ostringstream name;
      name << (send ? "send i" : "recv i") << a.item
           << (send ? " -> p" : " <- p") << a.peer;
      std::ostringstream e;
      e << R"({"name":)" << json_string(name.str()) << R"(,"cat":)"
        << (send ? R"("sim.send")" : R"("sim.recv")") << R"(,"pid":)" << pid
        << R"(,"tid":)" << p << R"(,"ts":)" << a.begin;
      if (a.end == a.begin) {
        // o == 0: a zero-length overhead point — mark it as an instant so
        // the viewer draws it instead of an invisible slice.
        e << R"(,"ph":"i","s":"t")";
      } else {
        e << R"(,"ph":"X","dur":)" << (a.end - a.begin);
      }
      e << R"(,"args":{"item":)" << a.item << R"(,"peer":)" << a.peer << "}}";
      events_.push_back(e.str());
    }
  }
}

void ChromeTraceWriter::add(const RunProfile& profile, int pid,
                            std::string_view process_name) {
  add_process_name(pid, process_name);
  // Stable viewer palette per component (trace-event "cname" values):
  // greens for useful overhead, blues/greys for waiting, red for blocked.
  auto cname = [](Component c) -> const char* {
    switch (c) {
      case Component::kSendOverhead: return "thread_state_running";
      case Component::kRecvOverhead: return "thread_state_runnable";
      case Component::kLatencyWait: return "thread_state_iowait";
      case Component::kFold: return "rail_animation";
      case Component::kBlocked: return "terrible";
      case Component::kGapStall: return "grey";
    }
    return "grey";
  };
  for (std::size_t p = 0; p < profile.phases.size(); ++p) {
    add_thread_name(pid, static_cast<std::uint32_t>(p),
                    "rank " + std::to_string(p));
    for (const Phase& ph : profile.phases[p]) {
      std::ostringstream e;
      e << R"({"name":)" << json_string(component_name(ph.component))
        << R"(,"ph":"X","cat":"profile","cname":")" << cname(ph.component)
        << R"(","pid":)" << pid << R"(,"tid":)" << p << R"(,"ts":)"
        << us(ph.start_ns) << R"(,"dur":)" << us(ph.duration_ns())
        << R"(,"args":{"item":)" << ph.item << R"(,"peer":)" << ph.peer
        << "}}";
      events_.push_back(e.str());
    }
  }
  const auto cp_tid = static_cast<std::uint32_t>(profile.phases.size());
  add_thread_name(pid, cp_tid, "critical path");
  for (const PathSegment& seg : profile.critical_path) {
    const bool send = seg.kind == exec::ExecEvent::Kind::kSend;
    std::ostringstream name;
    name << (send ? "send i" : "recv i") << seg.item << "@p" << seg.rank;
    std::ostringstream e;
    e << R"({"name":)" << json_string(name.str())
      << R"(,"ph":"X","cat":"profile.critical","cname":")"
      << (seg.via_wire ? "rail_response" : "thread_state_running")
      << R"(","pid":)" << pid << R"(,"tid":)" << cp_tid << R"(,"ts":)"
      << us(seg.start_ns) << R"(,"dur":)" << us(seg.end_ns - seg.start_ns)
      << R"(,"args":{"rank":)" << seg.rank << R"(,"peer":)" << seg.peer
      << R"(,"planned":)" << seg.planned << R"(,"via_wire":)"
      << (seg.via_wire ? "true" : "false") << "}}";
    events_.push_back(e.str());
  }
}

void ChromeTraceWriter::write(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    os << (i ? ",\n" : "\n") << events_[i];
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

std::string ChromeTraceWriter::json() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

void write_chrome_trace(const TraceRecorder& rec, std::ostream& os) {
  ChromeTraceWriter w;
  w.add(rec);
  w.write(os);
}

void write_chrome_trace(const sim::Trace& trace, std::ostream& os) {
  ChromeTraceWriter w;
  w.add(trace);
  w.write(os);
}

}  // namespace logpc::obs
