#include "bcast/kitem.hpp"

#include <gtest/gtest.h>

#include "sched/metrics.hpp"
#include "validate/checker.hpp"

namespace logpc::bcast {
namespace {

struct Instance {
  int P;
  Time L;
  int k;
};

std::ostream& operator<<(std::ostream& os, const Instance& i) {
  return os << "P=" << i.P << " L=" << i.L << " k=" << i.k;
}

class KItemSweep : public ::testing::TestWithParam<Instance> {};

TEST_P(KItemSweep, ValidSingleSendingWithinTheorem36) {
  const auto [P, L, k] = GetParam();
  const auto r = kitem_broadcast(P, L, k);
  const auto check = validate::check(r.schedule);
  EXPECT_TRUE(check.ok()) << check.summary();
  EXPECT_TRUE(is_single_sending(r.schedule, 0));
  EXPECT_EQ(r.completion, completion_time(r.schedule));
  // Theorem 3.1 lower bound always holds; Theorem 3.6 upper bound must be
  // met by the construction.
  EXPECT_GE(r.completion, r.bounds.general_lower);
  EXPECT_LE(r.completion, r.bounds.single_sending_upper);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KItemSweep,
    ::testing::Values(
        Instance{2, 1, 1}, Instance{2, 3, 5}, Instance{3, 2, 4},
        Instance{5, 1, 3}, Instance{5, 2, 6}, Instance{8, 1, 4},
        Instance{9, 2, 3}, Instance{10, 3, 8}, Instance{13, 2, 5},
        Instance{14, 3, 14}, Instance{17, 4, 6}, Instance{21, 3, 7},
        Instance{26, 5, 4}, Instance{30, 2, 9}, Instance{42, 3, 5},
        Instance{11, 6, 3}, Instance{7, 7, 2}, Instance{33, 1, 6}));

TEST(KItem, ExactPAchievesSingleSendingOptimum) {
  // P - 1 = P(t) and L != 2: the block-cyclic construction is exactly
  // optimal among single-sending schedules.
  struct Case {
    int P;
    Time L;
  };
  for (const auto& c : {Case{10, 3}, Case{5, 1}, Case{9, 1}, Case{14, 3},
                        Case{7, 4}, Case{8, 5}}) {
    const auto r = kitem_broadcast(c.P, c.L, 6);
    EXPECT_EQ(r.method, KItemMethod::kContinuousBlockCyclic);
    EXPECT_EQ(r.completion, r.bounds.single_sending_lower)
        << "P=" << c.P << " L=" << c.L;
    EXPECT_EQ(r.slack, 0);
  }
}

TEST(KItem, L2PaysAtMostOneExtraStep) {
  // Theorems 3.4/3.5: for L = 2 the optimum is out of reach but one extra
  // step suffices.
  for (const int P : {6, 9, 14, 22}) {
    const auto r = kitem_broadcast(P, 2, 5);
    EXPECT_EQ(r.method, KItemMethod::kContinuousBlockCyclic);
    EXPECT_LE(r.slack, 1) << "P=" << P;
    EXPECT_LE(r.completion, r.bounds.single_sending_lower + 1);
  }
}

TEST(KItem, Figure2CompletionTime) {
  // P = 10, L = 3, k = 8: single-sending completion 17 (the paper's
  // fully-optimal schedule reaches 15 by multi-sending the last k* = 2
  // items in the endgame; single-sending cannot).
  const auto r = kitem_broadcast(10, 3, 8);
  EXPECT_EQ(r.completion, 17);
}

TEST(KItem, GreedyFallbackIsValidEvenIfSuboptimal) {
  for (const auto& [P, L, k] :
       {std::tuple{5, 2, 3}, std::tuple{12, 3, 4}, std::tuple{7, 1, 5}}) {
    const Schedule s = kitem_greedy(P, L, k);
    const auto check = validate::check(s);
    EXPECT_TRUE(check.ok()) << check.summary();
    EXPECT_TRUE(is_single_sending(s, 0));
    EXPECT_GE(completion_time(s), kitem_bounds(P, L, k).general_lower);
  }
}

TEST(KItem, EveryItemDeliveredExactlyOnce) {
  const auto r = kitem_broadcast(13, 2, 4);
  for (ItemId i = 0; i < 4; ++i) {
    const auto counts = receive_counts(r.schedule, i);
    for (ProcId p = 1; p < 13; ++p) {
      EXPECT_EQ(counts[static_cast<std::size_t>(p)], 1);
    }
  }
}

TEST(KItem, SourceInjectsItemsInOrder) {
  // Theorem 3.2: optimal schedules send distinct items first; our source
  // sends item i at step i.
  const auto r = kitem_broadcast(10, 3, 5);
  std::vector<Time> inject(5, kNever);
  for (const auto& op : r.schedule.sends()) {
    if (op.from == 0) {
      inject[static_cast<std::size_t>(op.item)] =
          std::min(inject[static_cast<std::size_t>(op.item)], op.start);
    }
  }
  for (ItemId i = 0; i < 5; ++i) EXPECT_EQ(inject[static_cast<std::size_t>(i)], i);
}

TEST(KItem, RejectsBadArguments) {
  EXPECT_THROW(kitem_greedy(1, 3, 2), std::invalid_argument);
  EXPECT_THROW(kitem_greedy(4, 0, 2), std::invalid_argument);
  EXPECT_THROW(kitem_greedy(4, 3, 0), std::invalid_argument);
}

}  // namespace
}  // namespace logpc::bcast
