#pragma once

#include <string>

#include "bcast/blocks.hpp"
#include "bcast/tree.hpp"

/// \file dot.hpp
/// Graphviz DOT export for broadcast trees and block transmission
/// digraphs, so the paper's figures can be rendered graphically
/// (`dot -Tpdf`).

namespace logpc::viz {

/// The tree as a DOT digraph; node labels show "P<i>\n@<informed-at>".
[[nodiscard]] std::string tree_to_dot(const bcast::BroadcastTree& tree,
                                      const std::string& name = "bcast");

/// The block digraph as DOT: blocks as boxes labelled [r], the
/// receive-only vertex as [0], the source as a diamond; active edges bold.
[[nodiscard]] std::string digraph_to_dot(const bcast::BlockDigraph& g,
                                         const std::string& name = "blocks");

}  // namespace logpc::viz
