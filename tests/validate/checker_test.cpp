#include "validate/checker.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace logpc::validate {
namespace {

using logpc::Params;
using logpc::Schedule;
using logpc::SendOp;
using logpc::kNever;

bool has_rule(const CheckResult& r, Rule rule) {
  return std::any_of(r.violations.begin(), r.violations.end(),
                     [rule](const Violation& v) { return v.rule == rule; });
}

Schedule valid_postal_chain() {
  // 0 -> 1 -> 2 relay, L = 2.
  Schedule s(Params::postal(3, 2), 1);
  s.add_initial(0, 0, 0);
  s.add_send(0, 0, 1, 0);  // avail at 2
  s.add_send(2, 1, 2, 0);  // avail at 4
  return s;
}

TEST(Checker, AcceptsValidChain) {
  const auto r = check(valid_postal_chain());
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.summary(), "OK");
}

TEST(Checker, FlagsBadProcessorAndItem) {
  Schedule s(Params::postal(3, 2), 1);
  s.add_initial(0, 5, 0);                    // bad proc
  s.add_send(SendOp{0, 0, 9, 2, kNever});    // bad proc and item
  const auto r = check(s);
  EXPECT_TRUE(has_rule(r, Rule::kBadProcessor));
  EXPECT_TRUE(has_rule(r, Rule::kBadItem));
}

TEST(Checker, FlagsSelfSend) {
  Schedule s(Params::postal(3, 2), 1);
  s.add_initial(0, 0, 0);
  s.add_send(0, 0, 0, 0);
  EXPECT_TRUE(has_rule(check(s), Rule::kSelfSend));
}

TEST(Checker, FlagsSendOfItemNotHeld) {
  Schedule s(Params::postal(3, 2), 1);
  s.add_initial(0, 0, 0);
  s.add_send(0, 1, 2, 0);  // P1 never obtains the item
  EXPECT_TRUE(has_rule(check(s), Rule::kItemNotHeld));
}

TEST(Checker, FlagsSendBeforeArrival) {
  Schedule s(Params::postal(3, 2), 1);
  s.add_initial(0, 0, 0);
  s.add_send(0, 0, 1, 0);  // P1 holds it at 2
  s.add_send(1, 1, 2, 0);  // but forwards at 1
  EXPECT_TRUE(has_rule(check(s), Rule::kItemNotHeld));
}

TEST(Checker, FlagsSendGapViolation) {
  Schedule s(Params{4, 6, 2, 4}, 1);
  s.add_initial(0, 0, 0);
  s.add_send(0, 0, 1, 0);
  s.add_send(3, 0, 2, 0);  // g = 4 but spaced 3
  EXPECT_TRUE(has_rule(check(s, {.require_complete = false}),
                       Rule::kSendGap));
}

TEST(Checker, FlagsRecvGapViolation) {
  Schedule s(Params::postal(4, 3), 1);
  s.add_initial(0, 0, 0);
  s.add_initial(0, 1, 0);
  s.add_send(0, 0, 3, 0);
  s.add_send(0, 1, 3, 0);  // both arrive at P3 at t = 3
  EXPECT_TRUE(has_rule(check(s, {.forbid_duplicate_receive = false,
                                 .require_complete = false}),
                       Rule::kRecvGap));
}

TEST(Checker, FlagsOverheadOverlap) {
  // o = 2, L = 6, g = 4.  P1 receives in [8, 10); a send from P1 at 9
  // overlaps its receive overhead.
  Schedule s(Params{4, 6, 2, 4}, 2);
  s.add_initial(0, 0, 0);
  s.add_initial(1, 1, 0);
  s.add_send(0, 0, 1, 0);
  s.add_send(9, 1, 2, 1);
  EXPECT_TRUE(has_rule(check(s, {.require_complete = false}),
                       Rule::kOverheadOverlap));
}

TEST(Checker, StrictModeRejectsDelayedReceive) {
  Schedule s(Params::postal(3, 2), 1);
  s.add_initial(0, 0, 0);
  s.add_send(SendOp{0, 0, 1, 0, 5});  // arrival 2, received 5
  EXPECT_TRUE(has_rule(check(s, {.require_complete = false}),
                       Rule::kLatency));
  EXPECT_FALSE(has_rule(check(s, {.buffered = true,
                                  .require_complete = false}),
                        Rule::kLatency));
}

TEST(Checker, BufferedModeStillRejectsEarlyReceive) {
  Schedule s(Params::postal(3, 2), 1);
  s.add_initial(0, 0, 0);
  s.add_send(SendOp{0, 0, 1, 0, 1});  // received before arrival
  EXPECT_TRUE(has_rule(check(s, {.buffered = true,
                                 .require_complete = false}),
                       Rule::kLatency));
}

TEST(Checker, BufferLimitEnforced) {
  // Three messages arrive at P3 at t = 3, 4, 5 but are received at 10, 11,
  // 12: buffer depth reaches 3.
  Schedule s(Params::postal(4, 3), 3);
  for (ItemId i = 0; i < 3; ++i) s.add_initial(i, 0, 0);
  s.add_send(SendOp{0, 0, 3, 0, 10});
  s.add_send(SendOp{1, 0, 3, 1, 11});
  s.add_send(SendOp{2, 0, 3, 2, 12});
  CheckOptions two{.buffered = true, .buffer_limit = 2,
                   .require_complete = false};
  EXPECT_TRUE(has_rule(check(s, two), Rule::kBufferOverflow));
  CheckOptions three{.buffered = true, .buffer_limit = 3,
                     .require_complete = false};
  EXPECT_FALSE(has_rule(check(s, three), Rule::kBufferOverflow));
}

TEST(Checker, BufferDrainsAtReceiveTime) {
  // Arrival exactly when another item is received: depth stays 1.
  Schedule s(Params::postal(3, 2), 2);
  s.add_initial(0, 0, 0);
  s.add_initial(1, 0, 0);
  s.add_send(SendOp{0, 0, 1, 0, 2});  // arrival 2, recv 2
  s.add_send(SendOp{1, 0, 1, 1, 3});  // arrival 3, recv 3
  CheckOptions one{.buffered = true, .buffer_limit = 1,
                   .require_complete = false};
  EXPECT_FALSE(has_rule(check(s, one), Rule::kBufferOverflow));
}

TEST(Checker, FlagsDuplicateReceive) {
  Schedule s(Params::postal(3, 2), 1);
  s.add_initial(0, 0, 0);
  s.add_send(0, 0, 1, 0);
  s.add_send(1, 0, 1, 0);
  const auto strict = check(s, {.require_complete = false});
  EXPECT_TRUE(has_rule(strict, Rule::kDuplicateReceive));
  const auto lax = check(s, {.forbid_duplicate_receive = false,
                             .require_complete = false});
  EXPECT_FALSE(has_rule(lax, Rule::kDuplicateReceive));
}

TEST(Checker, FlagsCapacityViolationFromSender) {
  // L = 10, g = 1 -> capacity 10.  g=1 spacing can never exceed it from one
  // sender... so force it via many senders to one receiver instead, and
  // check the sender side with a crafted recv_start (buffered wire count is
  // based on start+o..start+o+L regardless).
  Schedule s(Params::postal(13, 10), 12);
  for (ItemId i = 0; i < 12; ++i) {
    s.add_initial(i, static_cast<ProcId>(i), 0);
    // 12 distinct senders all in flight to P12 during [5, 6).
    s.add_send(static_cast<Time>(i == 0 ? 0 : i % 5), static_cast<ProcId>(i),
               12, i);
  }
  const auto r = check(s, {.forbid_duplicate_receive = false,
                           .require_complete = false});
  EXPECT_TRUE(has_rule(r, Rule::kCapacity));
}

TEST(Checker, FlagsIncompleteBroadcast) {
  Schedule s(Params::postal(3, 2), 1);
  s.add_initial(0, 0, 0);
  s.add_send(0, 0, 1, 0);
  EXPECT_TRUE(has_rule(check(s), Rule::kIncomplete));
  EXPECT_FALSE(has_rule(check(s, {.require_complete = false}),
                        Rule::kIncomplete));
}

TEST(Checker, MaxViolationsCapsOutput) {
  Schedule s(Params::postal(2, 1), 64);
  // 64 items that never reach P1.
  for (ItemId i = 0; i < 64; ++i) s.add_initial(i, 0, 0);
  const auto r = check(s, {.max_violations = 5});
  EXPECT_EQ(r.violations.size(), 5u);
}

TEST(Checker, SummaryListsViolations) {
  Schedule s(Params::postal(3, 2), 1);
  s.add_initial(0, 0, 0);
  const auto r = check(s);
  EXPECT_NE(r.summary().find("incomplete"), std::string::npos);
}

TEST(Checker, RecvGapUsesEffectiveReceiveTimes) {
  // Buffered: two arrivals at the same cycle are fine if *received* g apart.
  Schedule s(Params::postal(4, 3), 2);
  s.add_initial(0, 0, 0);
  s.add_initial(1, 1, 0);
  s.add_send(SendOp{0, 0, 3, 0, 3});
  s.add_send(SendOp{0, 1, 3, 1, 4});
  const auto r = check(s, {.buffered = true, .require_complete = false});
  EXPECT_FALSE(has_rule(r, Rule::kRecvGap)) << r.summary();
}

}  // namespace
}  // namespace logpc::validate
