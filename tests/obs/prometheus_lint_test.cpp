#include <gtest/gtest.h>

#include <future>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "../support/http_client.hpp"
#include "svc/service.hpp"

/// Prometheus text-exposition conformance lint: scrape a *live* service's
/// /metrics over HTTP and check every line against the 0.0.4 line grammar
/// — HELP/TYPE comments, metric names, label bodies (escaped values),
/// numeric sample values — plus the structural rules a real scraper
/// relies on: TYPE before samples, histograms ending in
/// _bucket/_sum/_count with a +Inf bucket, and one TYPE per family.

namespace logpc::obs {
namespace {

using testsupport::http_get;
using testsupport::HttpReply;

/// One scrape of a service that has done real work (runs completed, a
/// rejection recorded), shared by every lint below.
std::string scrape() {
  static const std::string body = [] {
    svc::CollectiveService::Options opts;
    opts.pools = 1;
    opts.introspect_port = 0;
    svc::CollectiveService svc(Params{4, 4, 1, 2}, opts);
    const svc::TenantId t = svc.register_tenant(
        {.name = "lint \"tenant\"\nwith\\escapes", .queue_capacity = 1});
    const std::string payload = "lint-payload";
    const auto* p = reinterpret_cast<const std::byte*>(payload.data());
    for (int i = 0; i < 3; ++i) {
      svc::Request req;
      req.op = svc::OpKind::kBroadcast;
      req.payload = exec::Bytes(p, p + payload.size());
      svc::SubmitResult sub = svc.submit(t, std::move(req));
      if (sub.accepted()) sub.response.get();
    }
    const HttpReply r = http_get(svc.introspect_port(), "/metrics");
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.status, 200);
    return r.body;
  }();
  return body;
}

const std::regex& help_re() {
  static const std::regex re(R"(^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$)");
  return re;
}

const std::regex& type_re() {
  static const std::regex re(
      R"(^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary|untyped)$)");
  return re;
}

/// A sample line: name, optional {labels}, a value, optional timestamp.
/// Label values allow any escaped content: (\\.|[^"\\])* inside quotes.
const std::regex& sample_re() {
  static const std::regex re(
      R"(^[a-zA-Z_:][a-zA-Z0-9_:]*)"
      R"((\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")"
      R"((,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})?)"
      R"( (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]?Inf|NaN)( [0-9]+)?$)");
  return re;
}

std::string family_of(const std::string& name) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string s(suffix);
    if (name.size() > s.size() &&
        name.compare(name.size() - s.size(), s.size(), s) == 0) {
      return name.substr(0, name.size() - s.size());
    }
  }
  return name;
}

TEST(PrometheusLint, EveryLineMatchesTheGrammar) {
  const std::string body = scrape();
  ASSERT_FALSE(body.empty());
  std::istringstream in(body);
  std::string line;
  int lineno = 0, samples = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line.rfind("# HELP", 0) == 0) {
      EXPECT_TRUE(std::regex_match(line, help_re()))
          << "line " << lineno << ": " << line;
    } else if (line.rfind("# TYPE", 0) == 0) {
      EXPECT_TRUE(std::regex_match(line, type_re()))
          << "line " << lineno << ": " << line;
    } else if (line[0] == '#') {
      FAIL() << "line " << lineno << ": unknown comment form: " << line;
    } else {
      ++samples;
      EXPECT_TRUE(std::regex_match(line, sample_re()))
          << "line " << lineno << ": " << line;
    }
  }
  EXPECT_GT(samples, 0);
}

TEST(PrometheusLint, TypeComesBeforeSamplesOncePerFamily) {
  const std::string body = scrape();
  std::istringstream in(body);
  std::string line;
  std::set<std::string> typed;
  std::set<std::string> typed_twice;
  while (std::getline(in, line)) {
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream ls(line.substr(7));
      std::string name;
      ls >> name;
      if (!typed.insert(name).second) typed_twice.insert(name);
    } else if (!line.empty() && line[0] != '#') {
      const std::string name = line.substr(0, line.find_first_of("{ "));
      EXPECT_TRUE(typed.count(family_of(name)) == 1 || typed.count(name) == 1)
          << "sample before its # TYPE: " << name;
    }
  }
  EXPECT_TRUE(typed_twice.empty())
      << "# TYPE repeated for: " << *typed_twice.begin();
}

TEST(PrometheusLint, HistogramsCarryInfBucketAndSumCount) {
  const std::string body = scrape();
  std::istringstream in(body);
  std::string line;
  std::set<std::string> histograms;
  std::set<std::string> inf_buckets, sums, counts;
  while (std::getline(in, line)) {
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream ls(line.substr(7));
      std::string name, kind;
      ls >> name >> kind;
      if (kind == "histogram") histograms.insert(name);
    } else if (!line.empty() && line[0] != '#') {
      const std::string name = line.substr(0, line.find_first_of("{ "));
      const std::string fam = family_of(name);
      if (name == fam + "_bucket" &&
          line.find("le=\"+Inf\"") != std::string::npos) {
        inf_buckets.insert(fam);
      }
      if (name == fam + "_sum") sums.insert(fam);
      if (name == fam + "_count") counts.insert(fam);
    }
  }
  EXPECT_FALSE(histograms.empty());
  for (const std::string& h : histograms) {
    EXPECT_EQ(inf_buckets.count(h), 1u) << h << " lacks an le=\"+Inf\" bucket";
    EXPECT_EQ(sums.count(h), 1u) << h << " lacks _sum";
    EXPECT_EQ(counts.count(h), 1u) << h << " lacks _count";
  }
}

TEST(PrometheusLint, ThroughputSeriesExposedAndLintClean) {
  // Drive traffic that actually fuses: pause the service, stack up
  // identical-shape broadcasts, then resume so one dispatch coalesces
  // them.  All three high-throughput series must then carry non-trivial
  // values and every line must match the 0.0.4 grammar.
  svc::CollectiveService::Options opts;
  opts.pools = 1;
  opts.start_paused = true;
  opts.introspect_port = 0;
  svc::CollectiveService svc(Params{4, 4, 1, 2}, opts);
  const svc::TenantId t = svc.register_tenant({.name = "fused-lint"});
  const std::string payload = "fused-lint-data";
  const auto* p = reinterpret_cast<const std::byte*>(payload.data());
  std::vector<std::future<svc::Response>> futures;
  for (int i = 0; i < 4; ++i) {
    svc::Request req;
    req.op = svc::OpKind::kBroadcast;
    req.payload = exec::Bytes(p, p + payload.size());
    req.qos = svc::QoS::kBatch;
    svc::SubmitResult sub = svc.submit(t, std::move(req));
    ASSERT_TRUE(sub.accepted());
    futures.push_back(std::move(sub.response));
  }
  svc.resume();
  for (auto& f : futures) EXPECT_EQ(f.get().status, svc::Status::kOk);

  const HttpReply r = http_get(svc.introspect_port(), "/metrics");
  ASSERT_TRUE(r.ok);
  for (const char* name :
       {"logpc_svc_fused_requests_total", "logpc_svc_batch_size_bucket",
        "logpc_svc_batch_size_sum", "logpc_svc_batch_size_count",
        "logpc_svc_inflight"}) {
    EXPECT_NE(r.body.find(name), std::string::npos) << "missing " << name;
  }
  // All four resolved, so the inflight gauge must have returned to zero.
  EXPECT_NE(r.body.find("logpc_svc_inflight 0"), std::string::npos);
  std::istringstream in(r.body);
  std::string line;
  bool fused_nonzero = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP", 0) == 0) {
      EXPECT_TRUE(std::regex_match(line, help_re())) << line;
    } else if (line.rfind("# TYPE", 0) == 0) {
      EXPECT_TRUE(std::regex_match(line, type_re())) << line;
    } else {
      EXPECT_TRUE(std::regex_match(line, sample_re())) << line;
      if (line.rfind("logpc_svc_fused_requests_total", 0) == 0 &&
          line.back() != '0') {
        fused_nonzero = true;
      }
    }
  }
  EXPECT_TRUE(fused_nonzero)
      << "expected the paused backlog to fuse at least one batch";
}

TEST(PrometheusLint, HostileTenantNameStaysOneParseableLine) {
  const std::string body = scrape();
  // The raw name would break the line grammar (embedded quote + newline);
  // escaped it must appear as one sample line that still matches.
  const std::size_t pos = body.find(R"(lint \"tenant\"\nwith\\escapes)");
  ASSERT_NE(pos, std::string::npos);
  const std::size_t start = body.rfind('\n', pos) + 1;
  const std::size_t end = body.find('\n', pos);
  const std::string line = body.substr(start, end - start);
  EXPECT_TRUE(std::regex_match(line, sample_re())) << line;
}

}  // namespace
}  // namespace logpc::obs
