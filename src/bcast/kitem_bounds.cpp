#include "bcast/kitem_bounds.hpp"

#include <algorithm>
#include <stdexcept>

namespace logpc::bcast {

KItemBounds kitem_bounds(int P, Time L, int k) {
  if (P < 2) throw std::invalid_argument("kitem_bounds: P >= 2");
  if (L < 1) throw std::invalid_argument("kitem_bounds: L >= 1");
  if (k < 1) throw std::invalid_argument("kitem_bounds: k >= 1");
  // Answer from the shared per-latency tables: bounds are queried once per
  // planning request, often for the same L, so the sequence is never
  // recomputed (and the lookup is safe from concurrent planner threads).
  KItemBounds b;
  b.P = P;
  b.L = L;
  b.k = k;
  b.B = shared_B_of_P(L, static_cast<Count>(P) - 1);
  b.k_star = shared_k_star(L, static_cast<Count>(P));
  b.general_lower =
      std::max(b.B + L,
               b.B + L + (static_cast<Time>(k) - 1) -
                   static_cast<Time>(b.k_star));
  b.single_sending_lower = b.B + L + static_cast<Time>(k) - 1;
  b.single_sending_upper = b.B + 2 * L + static_cast<Time>(k) - 2;
  b.continuous_upper = b.single_sending_lower;
  return b;
}

}  // namespace logpc::bcast
