#include "bcast/single_item.hpp"

namespace logpc::bcast {

namespace {

class TreeNodeProgram : public sim::Program {
 public:
  explicit TreeNodeProgram(std::vector<ProcId> children)
      : children_(std::move(children)) {}

  void on_item(sim::Context& ctx, ItemId item) override {
    for (const ProcId child : children_) ctx.send(child, item);
  }

 private:
  std::vector<ProcId> children_;
};

}  // namespace

Schedule optimal_single_item(const Params& params, ProcId source) {
  if (source < 0 || source >= params.P) {
    throw std::invalid_argument("optimal_single_item: bad source");
  }
  return BroadcastTree::optimal(params, params.P).to_schedule(source);
}

std::unique_ptr<sim::Program> make_tree_program(const BroadcastTree& tree,
                                                int node) {
  if (node < 0 || node >= tree.size()) {
    throw std::invalid_argument("make_tree_program: bad node");
  }
  std::vector<ProcId> children;
  for (const int c : tree.node(node).children) {
    children.push_back(static_cast<ProcId>(c));
  }
  return std::make_unique<TreeNodeProgram>(std::move(children));
}

}  // namespace logpc::bcast
