#include "runtime/planner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "api/communicator.hpp"
#include "bcast/kitem.hpp"
#include "bcast/single_item.hpp"
#include "runtime/warmup.hpp"
#include "sched/metrics.hpp"
#include "validate/checker.hpp"

namespace logpc::runtime {
namespace {

const Params kMachine{16, 8, 1, 4};

TEST(PlanKey, NormalizesPostalProblemsToTheProjection) {
  // Stating the k-item request on the physical machine or directly on its
  // postal projection (L' = L + 2o = 10) must give the same key.
  const PlanKey physical = PlanKey::kitem(kMachine, 6);
  const PlanKey postal = PlanKey::kitem(Params::postal(16, 10), 6);
  EXPECT_EQ(physical, postal);
  EXPECT_EQ(physical.params, Params::postal(16, 10));
  EXPECT_EQ(physical.hash(), postal.hash());
}

TEST(PlanKey, NormalizesIrrelevantArguments) {
  // k is irrelevant for single-item broadcast; root for k-item broadcast.
  EXPECT_EQ(PlanKey::make(Problem::kBroadcast, kMachine, 5, 3),
            PlanKey::make(Problem::kBroadcast, kMachine, 1, 3));
  EXPECT_EQ(PlanKey::make(Problem::kKItemBroadcast, kMachine, 4, 7),
            PlanKey::make(Problem::kKItemBroadcast, kMachine, 4, 0));
  // But meaningful arguments distinguish keys.
  EXPECT_NE(PlanKey::broadcast(kMachine, 0), PlanKey::broadcast(kMachine, 1));
  EXPECT_NE(PlanKey::kitem(kMachine, 4), PlanKey::kitem(kMachine, 5));
  EXPECT_NE(PlanKey::scatter(kMachine), PlanKey::gather(kMachine));
}

TEST(PlanKey, RejectsBadArguments) {
  EXPECT_THROW(PlanKey::broadcast(Params{0, 1, 0, 1}), std::invalid_argument);
  EXPECT_THROW(PlanKey::broadcast(kMachine, 16), std::invalid_argument);
  EXPECT_THROW(PlanKey::kitem(kMachine, 0), std::invalid_argument);
}

TEST(PlanKey, MembershipMasksRequireSmallMachines) {
  // The mask is one 64-bit word: make() must reject P > 64 with a clear
  // error rather than silently dropping ranks >= 64 from the live set.
  const Params big{65, 4, 1, 2};
  EXPECT_THROW((void)PlanKey::make(Problem::kBroadcast, big, 1, 0, 0x3ull),
               std::invalid_argument);
  EXPECT_NO_THROW((void)PlanKey::make(Problem::kBroadcast, big));  // mask == 0
  // A hand-assembled key that bypassed make() faults fast in the accessors
  // instead of shifting past the word.
  PlanKey hand = PlanKey::broadcast(big);
  hand.mask = 0x3ull;
  EXPECT_THROW((void)hand.live_count(), std::logic_error);
  EXPECT_THROW((void)hand.live_ranks(), std::logic_error);
  // Exactly-64 machines stay maskable.
  const Params p64{64, 4, 1, 2};
  const std::uint64_t survivors = ~0ull ^ (1ull << 63);
  const PlanKey ok = PlanKey::make(Problem::kBroadcast, p64, 1, 0, survivors);
  EXPECT_EQ(ok.live_count(), 63);
}

TEST(Planner, PlansMatchTheDirectBuilders) {
  Planner planner;
  const PlanPtr b = planner.plan(PlanKey::broadcast(kMachine));
  EXPECT_EQ(b->schedule, bcast::optimal_single_item(kMachine, 0));
  EXPECT_EQ(b->completion, bcast::B_of_P(kMachine, 16));

  const PlanPtr k = planner.plan(PlanKey::kitem(kMachine, 6));
  const auto direct = bcast::kitem_broadcast(16, 10, 6);
  EXPECT_EQ(k->schedule, direct.schedule);
  EXPECT_EQ(k->completion, direct.completion);
  EXPECT_EQ(k->slack, direct.slack);

  EXPECT_TRUE(validate::is_valid(b->schedule));
  EXPECT_TRUE(validate::is_valid(k->schedule));
}

TEST(Planner, SecondRequestIsACacheHitReturningTheSamePlan) {
  Planner planner;
  const PlanPtr first = planner.plan(PlanKey::reduce(kMachine, 3));
  const PlanPtr second = planner.plan(PlanKey::reduce(kMachine, 3));
  EXPECT_EQ(first.get(), second.get());  // same immutable object
  EXPECT_EQ(planner.builds(), 1u);
  EXPECT_GE(planner.cache().stats().hits, 1u);
}

TEST(Planner, BuilderExceptionsPropagateAndNothingIsCached) {
  Planner planner;
  // P = 1 passes key validation but the k-item builder requires P >= 2.
  const PlanKey bad = PlanKey::kitem(Params::postal(1, 3), 4);
  EXPECT_THROW((void)planner.plan(bad), std::invalid_argument);
  EXPECT_FALSE(planner.cache().contains(bad));
  // A retry reaches the builder again (and fails again).
  EXPECT_THROW((void)planner.plan(bad), std::invalid_argument);
  EXPECT_EQ(planner.builds(), 2u);
}

// The ISSUE's concurrency acceptance test: N threads x M keys, every thread
// requests every key, and exactly one build happens per key.  Run under
// -DLOGPC_TSAN=ON to also prove data-race freedom.
TEST(Planner, ConcurrentHammerBuildsEachKeyExactlyOnce) {
  Planner planner;
  std::vector<PlanKey> keys;
  for (int k = 1; k <= 4; ++k) {
    keys.push_back(PlanKey::kitem(Params::postal(10, 3), k));
    keys.push_back(PlanKey::kitem_buffered(Params::postal(10, 3), k));
    keys.push_back(PlanKey::summation(Params{12, 4, 1, 3},
                                      static_cast<std::int64_t>(20 * k)));
  }
  constexpr int kThreads = 8;
  std::vector<std::vector<PlanPtr>> results(
      kThreads, std::vector<PlanPtr>(keys.size()));
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::size_t i = 0; i < keys.size(); ++i) {
        // Rotate the starting key per thread to maximize collisions on
        // different keys at the same instant.
        const std::size_t j = (i + static_cast<std::size_t>(t) * 3) %
                              keys.size();
        results[static_cast<std::size_t>(t)][j] = planner.plan(keys[j]);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& t : pool) t.join();

  // Exactly one build per distinct key, however the threads raced.
  EXPECT_EQ(planner.builds(), keys.size());
  // Every thread got the same immutable plan object per key, and it is the
  // plan for that key.
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_NE(results[0][i], nullptr);
    EXPECT_EQ(results[0][i]->key, keys[i]);
    EXPECT_FALSE(results[0][i]->schedule.sends().empty());
    for (int t = 1; t < kThreads; ++t) {
      ASSERT_EQ(results[static_cast<std::size_t>(t)][i].get(),
                results[0][i].get());
    }
  }
}

TEST(Planner, TelemetryObservesBuildLatencyPerProblem) {
  auto& reg = obs::MetricsRegistry::global();
  obs::Histogram& bcast_hist = reg.histogram(
      "logpc_planner_build_latency_ns", obs::default_latency_buckets_ns(), "",
      "problem=\"broadcast\"");
  // The registry is process-global and other tests plan too: assert deltas.
  const std::uint64_t observed_before = bcast_hist.count();

  Planner planner;
  const PlanKey key = PlanKey::broadcast(Params{9, 4, 1, 2});
  (void)planner.plan(key);  // miss -> one build, one latency observation
  (void)planner.plan(key);  // hit -> no new observation
  EXPECT_EQ(bcast_hist.count(), observed_before + 1);
  EXPECT_GT(bcast_hist.sum(), 0.0);
}

TEST(Planner, RequestGaugeCountsEachLogicalLookupExactlyOnce) {
  Planner planner;
  const PlanKey key = PlanKey::broadcast(Params{9, 4, 1, 2});
  (void)planner.plan(key);  // miss (the in-lock re-probe must not recount)
  (void)planner.plan(key);  // hit
  (void)planner.plan(key);  // hit
  const CacheStats s = planner.cache().stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 2u);
  EXPECT_DOUBLE_EQ(s.hit_ratio(), 2.0 / 3.0);
}

TEST(Planner, TelemetryDisabledSkipsObservationsButStillPlans) {
  auto& reg = obs::MetricsRegistry::global();
  obs::Histogram& hist = reg.histogram(
      "logpc_planner_build_latency_ns", obs::default_latency_buckets_ns(), "",
      "problem=\"broadcast\"");
  const std::uint64_t before = hist.count();
  obs::set_enabled(false);
  Planner planner;
  const PlanPtr plan = planner.plan(PlanKey::broadcast(Params{5, 3, 1, 2}));
  obs::set_enabled(true);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(hist.count(), before);  // ScopedTimer was inactive
}

TEST(Planner, CacheGaugesRegisteredPerInstanceAndUnregisteredOnDestruction) {
  auto& reg = obs::MetricsRegistry::global();
  std::string labels;
  {
    Planner planner;
    labels = "planner=\"" + std::to_string(planner.telemetry_id()) + "\"";
    (void)planner.plan(PlanKey::broadcast(Params{7, 3, 1, 2}));
    bool found_hit_ratio = false;
    bool found_shard = false;
    for (const obs::MetricSnapshot& m : reg.snapshot()) {
      if (m.labels.rfind(labels, 0) != 0) continue;
      if (m.name == "logpc_plan_cache_hit_ratio") found_hit_ratio = true;
      if (m.name == "logpc_plan_cache_shard_entries") found_shard = true;
      if (m.name == "logpc_plan_cache_entries") {
        EXPECT_EQ(m.value, 1.0);
      }
    }
    EXPECT_TRUE(found_hit_ratio);
    EXPECT_TRUE(found_shard);
  }
  // Destroyed planner: its gauges must be gone (no dangling callbacks).
  for (const obs::MetricSnapshot& m : reg.snapshot()) {
    EXPECT_NE(m.labels.rfind(labels, 0), 0u) << m.name;
  }
}

TEST(Warmup, GridExpandsToDeduplicatedFeasibleKeys) {
  WarmupGrid grid;
  grid.problems = {Problem::kBroadcast, Problem::kKItemBroadcast};
  grid.machines = {kMachine, Params::postal(16, 10)};
  grid.ks = {2, 4};
  const std::vector<PlanKey> keys = grid.keys();
  // broadcast ignores k and both machines differ for it (2 keys); kitem
  // normalizes both machines to the same postal projection (2 keys, one
  // per k).
  EXPECT_EQ(keys.size(), 4u);
}

TEST(Warmup, FillsTheCacheWithOneBuildPerKey) {
  Planner planner;
  WarmupGrid grid;
  grid.problems = {Problem::kBroadcast, Problem::kReduce,
                   Problem::kAllToAll};
  grid.machines = {Params{8, 6, 2, 4}, Params{12, 4, 1, 2}};
  grid.ks = {1, 2};
  const std::vector<PlanKey> keys = grid.keys();
  const WarmupReport report = warmup(planner, grid, 4);
  EXPECT_EQ(report.requested, keys.size());
  EXPECT_EQ(report.planned, keys.size());
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.built, keys.size());
  for (const PlanKey& key : keys) {
    EXPECT_TRUE(planner.cache().contains(key)) << key.to_string();
  }
  // Warming again is all hits.
  const WarmupReport again = warmup(planner, grid, 4);
  EXPECT_EQ(again.built, 0u);
}

TEST(Communicator, SharesOnePlanAcrossInstancesAndThreads) {
  auto planner = std::make_shared<Planner>();
  const api::Communicator a(kMachine, planner);
  const api::Communicator b(kMachine, planner);
  const Schedule s1 = a.bcast();
  const Schedule s2 = b.bcast();
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(planner->builds(), 1u);
  // The zero-copy accessor returns the cached entry itself.
  const PlanPtr p1 = a.plan(Problem::kBroadcast);
  const PlanPtr p2 = b.plan(Problem::kBroadcast);
  EXPECT_EQ(p1.get(), p2.get());
  EXPECT_EQ(p1->schedule, s1);
}

}  // namespace
}  // namespace logpc::runtime
