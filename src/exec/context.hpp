#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "exec/arena.hpp"
#include "exec/mailbox.hpp"

/// \file context.hpp
/// The per-run half of the Engine split: everything a single execution
/// needs that is *not* the worker threads — mailboxes, ack rings, drain
/// queues, heartbeat slots, the payload arena and the kMove slot tables.
///
/// Before this split, Engine::run_impl allocated all of it on the stack of
/// every call: one heap allocation per link for the data ring, another per
/// link for the ack ring, a fresh arena, fresh scratch vectors.  A service
/// dispatching back-to-back collectives onto a persistent pool pays that
/// setup on every request even though consecutive runs of the same plan
/// shape need byte-for-byte identical resources.
///
/// A RunContext is owned by its Engine (one per engine, guarded by the
/// engine's run mutex — runs on one engine serialize, so the context never
/// sees two runs at once) and is *re-prepared* instead of rebuilt:
/// prepare() compares the requested RunShape against the previous run's
/// and, on a match, merely drains leftover ring contents, rewinds
/// high-water marks, resets heartbeats and rewinds the arena — zero
/// allocations on the warm path.  A shape change (different link count,
/// capacity, reliability mode or processor count) rebuilds the mismatched
/// resources once and stays warm from then on.
///
/// ExecReport::warm_buffers reports which side of that branch a run took,
/// and the service's engine pools regression-assert it stays true under
/// sustained same-shape traffic.

namespace logpc::exec {

/// The resource signature of one run: two runs with equal shapes can share
/// every context resource without reallocation.
struct RunShape {
  std::size_t links = 0;     ///< directed links with traffic (mailboxes)
  std::size_t capacity = 0;  ///< per-link ring bound, ceil(L/g) by default
  bool mailbox_stats = true; ///< rings track their high-water mark
  bool reliable = false;     ///< acked delivery: ack rings + heartbeats
  std::size_t procs = 0;     ///< logical processors (heartbeat slots)

  friend bool operator==(const RunShape&, const RunShape&) = default;
};

/// One heartbeat counter per logical processor, cache-line padded.  A live
/// worker bumps its own slot on every instruction and every spin-wait
/// tick; the failure detector accuses a rank dead only after its slot has
/// stayed frozen through a full suspicion window.
struct alignas(64) Heartbeat {
  std::atomic<std::uint64_t> v{0};
};

/// Consumer-side drain buffer, one per link (each link has exactly one
/// consumer).  pop_bulk refills it with every message the stream is about
/// to consume back-to-back (Instr::chain), amortizing the ring's
/// acquire/release pair across the batch.
struct PendingQ {
  std::vector<Message> buf;
  std::size_t head = 0;
};

/// kMove payload staging: one arena-carved, 64-byte-aligned region per
/// (processor, item) slot the plan touches.
struct Slot {
  std::byte* data = nullptr;
  std::size_t size = 0;
};

class RunContext {
 public:
  RunContext() = default;
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  /// Readies every resource for a run of `shape`.  Returns true when the
  /// whole context was reused warm (no ring, heartbeat or queue
  /// allocation); false when any resource had to be (re)built.  Must be
  /// called single-threaded, before workers dispatch.
  bool prepare(const RunShape& shape);

  [[nodiscard]] const RunShape& shape() const { return shape_; }

  // Run resources.  Engine workers index these directly; the fields are
  // engine-internal state that lives here only so it can stay warm.
  std::vector<std::unique_ptr<SpscMailbox>> mailboxes;  ///< [link]
  std::vector<PendingQ> pending;                        ///< [link]

  // Reliable-mode state, one slot per link.  Each slot is touched by only
  // one side of its link (seq/acked by the producer, accepted/attempts by
  // the consumer), so plain vectors are race-free.
  std::vector<std::unique_ptr<AckRing>> acks;  ///< [link]
  std::vector<std::uint64_t> send_seq;   ///< producer: last seq pushed
  std::vector<std::uint64_t> acked;      ///< producer: highest acked seen
  std::vector<std::uint64_t> accepted;   ///< consumer: highest seq accepted
  std::vector<std::uint64_t> attempts;   ///< consumer: arrivals of expected
  std::unique_ptr<Heartbeat[]> hearts;   ///< [proc], reliable mode only

  /// kMove payload staging, reset per run but chunk-warm across runs.
  BufferArena arena;
  std::vector<Slot> slots;        ///< [proc * num_items], kMove scratch
  std::vector<char> slot_filled;  ///< 1 = slot holds delivered/seeded bytes
  std::vector<char> slot_used;    ///< setup scratch: slots the plan touches

 private:
  RunShape shape_{};
  bool prepared_ = false;
};

}  // namespace logpc::exec
