#pragma once

#include "logp/params.hpp"

/// \file calibrate.hpp
/// LogP parameter measurement by probing, the way the LogP methodology
/// calibrates real machines - run against our own simulator as a
/// semantic self-check (the measured parameters must equal the configured
/// ones) and as executable documentation of what each parameter *means*
/// operationally:
///
///   g  - spacing of back-to-back sends from one processor,
///   o  - how long an arrival blocks a processor's next send,
///   L  - round-trip residue once 2o is subtracted from a ping,
///   P  - the processor count.

namespace logpc::sim {

struct MeasuredParams {
  int P = 0;
  Time L = 0;
  Time o = 0;
  Time g = 0;

  [[nodiscard]] Params as_params() const { return Params{P, L, o, g}; }
};

/// Probes an Engine configured with `actual` and reports what the probes
/// measure.  For a correct simulator, calibrate(x).as_params() == x.
[[nodiscard]] MeasuredParams calibrate(const Params& actual);

}  // namespace logpc::sim
