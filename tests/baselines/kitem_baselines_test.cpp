#include "baselines/kitem_baselines.hpp"

#include <gtest/gtest.h>

#include "baselines/bcast_baselines.hpp"
#include "bcast/kitem_bounds.hpp"
#include "sched/metrics.hpp"
#include "validate/checker.hpp"

namespace logpc::baselines {
namespace {

TEST(KItemBaselines, SerializedCostsKTimesB) {
  const Params params = Params::postal(9, 3);
  const int k = 4;
  const Schedule s = serialized_broadcast(params, k);
  EXPECT_TRUE(validate::is_valid(s)) << validate::check(s).summary();
  EXPECT_EQ(completion_time(s),
            k * bcast::B_of_P(params, params.P));
}

TEST(KItemBaselines, PipelinedChainIsGreatForManyItems) {
  const Params params = Params::postal(8, 2);
  const auto chain = linear_chain(params, 8);
  const int k = 20;
  const Schedule s = pipelined_tree_broadcast(chain, k);
  EXPECT_TRUE(validate::is_valid(s)) << validate::check(s).summary();
  // Chain depth 7L = 14, then one new item per step.
  EXPECT_EQ(completion_time(s), 14 + (k - 1));
}

TEST(KItemBaselines, PipelinedBinaryPaysFactorTwoPerItem) {
  const Params params = Params::postal(15, 2);
  const auto tree = binary_tree(params, 15);
  const int k = 10;
  const Schedule s = pipelined_tree_broadcast(tree, k);
  EXPECT_TRUE(validate::is_valid(s)) << validate::check(s).summary();
  EXPECT_EQ(completion_time(s), tree.makespan() + 2 * (k - 1));
}

TEST(KItemBaselines, PipelinedSchedulesAreValidAcrossShapes) {
  const Params params = Params::postal(10, 3);
  for (const auto& tree :
       {binomial_tree(params, 10), binary_tree(params, 10),
        linear_chain(params, 10), flat_tree(params, 10),
        bcast::BroadcastTree::optimal(params, 10)}) {
    const Schedule s = pipelined_tree_broadcast(tree, 5);
    const auto check = validate::check(s);
    EXPECT_TRUE(check.ok()) << check.summary();
  }
}

TEST(KItemBaselines, OptimalKItemBeatsAllBaselinesAtScale) {
  // The headline comparison of Section 3: B + L + k - 1 vs k*B
  // (serialized) vs depth + sigma*(k-1) (pipelined shapes).
  const int P = 29;  // f_9 + 1 for L = 3
  const Time L = 3;
  const int k = 12;
  const auto bounds = bcast::kitem_bounds(P, L, k);
  const Params params = Params::postal(P, L);
  const Time serialized = completion_time(serialized_broadcast(params, k));
  const Time pipelined_bin = completion_time(
      pipelined_tree_broadcast(binary_tree(params, P), k));
  EXPECT_GT(serialized, bounds.continuous_upper);
  EXPECT_GT(pipelined_bin, bounds.continuous_upper);
}

TEST(KItemBaselines, BnkStatedFormula) {
  // 2B(P) + k + c*L with B(10) = 8 for L = 3.
  EXPECT_EQ(bnk_stated_time(10, 3, 8), 2 * 8 + 8 + 3);
  EXPECT_EQ(bnk_stated_time(10, 3, 8, 2), 2 * 8 + 8 + 6);
  EXPECT_THROW((void)bnk_stated_time(1, 3, 8), std::invalid_argument);
}

TEST(KItemBaselines, RejectBadArguments) {
  const Params params = Params::postal(4, 2);
  EXPECT_THROW(serialized_broadcast(params, 0), std::invalid_argument);
  EXPECT_THROW(pipelined_tree_broadcast(linear_chain(params, 4), 0),
               std::invalid_argument);
  // A 9-node tree cannot run on a 4-processor machine.
  EXPECT_THROW(
      pipelined_tree_broadcast(linear_chain(Params::postal(4, 2), 9), 2),
      std::invalid_argument);
}

}  // namespace
}  // namespace logpc::baselines
