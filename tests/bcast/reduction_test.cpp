#include "bcast/reduction.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "sched/metrics.hpp"
#include "validate/checker.hpp"

namespace logpc::bcast {
namespace {

TEST(Reduction, CompletesInBroadcastTime) {
  // Section 4.2: reduction = reversed broadcast, same B(P).
  for (const Params params :
       {Params{8, 6, 2, 4}, Params::postal(9, 3), Params{16, 4, 1, 2},
        Params{30, 2, 0, 3}}) {
    const auto plan = optimal_reduction(params);
    EXPECT_EQ(plan.completion, B_of_P(params, params.P))
        << params.to_string();
    // completion_time() is trivial here (the "item" pre-exists everywhere);
    // the last arrival instant is the schedule makespan.
    EXPECT_EQ(plan.schedule.makespan(), plan.completion);
  }
}

TEST(Reduction, ScheduleObeysLogPRules) {
  for (const Params params :
       {Params{8, 6, 2, 4}, Params::postal(14, 3), Params{12, 5, 1, 3}}) {
    const auto plan = optimal_reduction(params);
    const auto check = validate::check(
        plan.schedule,
        {.forbid_duplicate_receive = false, .require_complete = false});
    EXPECT_TRUE(check.ok()) << params.to_string() << "\n" << check.summary();
  }
}

TEST(Reduction, EveryNonRootSendsExactlyOnce) {
  const auto plan = optimal_reduction(Params::postal(20, 3), 4);
  const auto sends = send_counts(plan.schedule);
  for (ProcId p = 0; p < 20; ++p) {
    EXPECT_EQ(sends[static_cast<std::size_t>(p)], p == 4 ? 0 : 1) << p;
  }
}

TEST(Reduction, IntegerSumCorrect) {
  for (const Params params : {Params{8, 6, 2, 4}, Params::postal(13, 2)}) {
    const auto plan = optimal_reduction(params, 0);
    std::vector<long long> vals(static_cast<std::size_t>(params.P));
    std::iota(vals.begin(), vals.end(), 1);
    const auto total = execute_reduction<long long>(
        plan, vals,
        [](const long long& a, const long long& b) { return a + b; });
    EXPECT_EQ(total,
              static_cast<long long>(params.P) * (params.P + 1) / 2);
  }
}

TEST(Reduction, MaxReduction) {
  const auto plan = optimal_reduction(Params::postal(11, 3), 7);
  std::vector<int> vals{3, 9, 2, 42, 5, 1, 8, 0, 13, 7, 6};
  const int got = execute_reduction<int>(
      plan, vals, [](const int& a, const int& b) { return std::max(a, b); });
  EXPECT_EQ(got, 42);
}

TEST(Reduction, ArrivalOrderCoversAllSenders) {
  const auto plan = optimal_reduction(Params::postal(9, 3), 2);
  const auto order = plan.arrival_order();
  std::size_t total = 0;
  for (const auto& o : order) total += o.size();
  EXPECT_EQ(total, 8u);  // P - 1 messages
  // The root hears from its broadcast-children, last one landing at B(P).
  EXPECT_FALSE(order[2].empty());
}

TEST(Reduction, NonZeroRootRelabels) {
  const auto plan = optimal_reduction(Params{8, 6, 2, 4}, 5);
  EXPECT_EQ(plan.root, 5);
  // No message originates at the root.
  for (const auto& op : plan.schedule.sends()) {
    EXPECT_NE(op.from, 5);
  }
  EXPECT_EQ(plan.completion, 24);
}

TEST(Reduction, MirrorsBroadcastTimes) {
  // The reduction's send times are B - (broadcast labels).
  const Params params{8, 6, 2, 4};
  const auto plan = optimal_reduction(params);
  std::multiset<Time> starts;
  for (const auto& op : plan.schedule.sends()) starts.insert(op.start);
  // Broadcast labels {10,14,18,20,22,24,24} -> starts {14,10,6,4,2,0,0}.
  EXPECT_EQ(starts, (std::multiset<Time>{0, 0, 2, 4, 6, 10, 14}));
}

TEST(Reduction, RejectsBadArguments) {
  EXPECT_THROW(optimal_reduction(Params::postal(4, 2), 4),
               std::invalid_argument);
  EXPECT_THROW(optimal_reduction(Params{0, 1, 0, 1}),
               std::invalid_argument);
  const auto plan = optimal_reduction(Params::postal(3, 2));
  EXPECT_THROW(execute_reduction<int>(plan, {1, 2},
                                      [](const int& a, const int& b) {
                                        return a + b;
                                      }),
               std::invalid_argument);
}

}  // namespace
}  // namespace logpc::bcast
