#include "baselines/reduce_baselines.hpp"

#include <functional>

#include "baselines/bcast_baselines.hpp"

namespace logpc::baselines {

namespace {

using TreeFactory =
    std::function<bcast::BroadcastTree(const Params&, int)>;

// Largest tree (by processor count, up to params.P) from `factory` whose
// makespan fits in t, converted to a summation plan.  Tree makespan is
// monotone in P for these regular shapes, so binary search applies.
sum::SummationPlan best_fitting(const Params& params, Time t,
                                const TreeFactory& factory) {
  const Params rev = sum::reversal_params(params);
  int lo = 1;
  int hi = params.P;
  while (lo < hi) {
    const int mid = lo + (hi - lo + 1) / 2;
    if (factory(rev, mid).makespan() <= t) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return sum::plan_from_tree(params, factory(rev, lo), t);
}

}  // namespace

sum::SummationPlan binary_tree_summation(const Params& params, Time t) {
  return best_fitting(params, t, [](const Params& rev, int P) {
    return binary_tree(rev, P);
  });
}

sum::SummationPlan binomial_summation(const Params& params, Time t) {
  return best_fitting(params, t, [](const Params& rev, int P) {
    return binomial_tree(rev, P);
  });
}

sum::SummationPlan sequential_summation(const Params& params, Time t) {
  const Params rev = sum::reversal_params(params);
  return sum::plan_from_tree(params, bcast::BroadcastTree::optimal(rev, 1),
                             t);
}

sum::SummationPlan chain_summation(const Params& params, Time t) {
  return best_fitting(params, t, [](const Params& rev, int P) {
    return linear_chain(rev, P);
  });
}

}  // namespace logpc::baselines
