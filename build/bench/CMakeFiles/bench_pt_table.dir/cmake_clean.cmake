file(REMOVE_RECURSE
  "CMakeFiles/bench_pt_table.dir/bench_pt_table.cpp.o"
  "CMakeFiles/bench_pt_table.dir/bench_pt_table.cpp.o.d"
  "bench_pt_table"
  "bench_pt_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pt_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
