#include "bcast/tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <vector>

#include "sched/metrics.hpp"
#include "validate/checker.hpp"

namespace logpc::bcast {
namespace {

TEST(Tree, Figure1TreeShape) {
  // Figure 1: P = 8, L = 6, g = 4, o = 2.  Node times (informed-at labels)
  // are 0; 10, 14, 18, 22 (children of the root); 20, 24 (children of the
  // node informed at 10); 24 (child of the node informed at 14).
  const Params params{8, 6, 2, 4};
  const auto tree = BroadcastTree::optimal(params, 8);
  ASSERT_EQ(tree.size(), 8);
  std::multiset<Time> labels;
  for (const auto& n : tree.nodes()) labels.insert(n.label);
  EXPECT_EQ(labels, (std::multiset<Time>{0, 10, 14, 18, 20, 22, 24, 24}));
  EXPECT_EQ(tree.makespan(), 24);
  EXPECT_EQ(tree.node(0).children.size(), 4u);  // root sends 4 times
}

TEST(Tree, RootIsNodeZero) {
  const auto tree = BroadcastTree::optimal(Params::postal(10, 3), 10);
  EXPECT_EQ(tree.node(0).parent, -1);
  EXPECT_EQ(tree.node(0).label, 0);
  for (int i = 1; i < tree.size(); ++i) {
    EXPECT_GE(tree.node(i).parent, 0);
    EXPECT_GT(tree.node(i).label, 0);
  }
}

TEST(Tree, NodesCreatedInLabelOrder) {
  const auto tree = BroadcastTree::optimal(Params{40, 5, 1, 2}, 40);
  for (int i = 1; i < tree.size(); ++i) {
    EXPECT_LE(tree.node(i - 1).label, tree.node(i).label);
  }
}

TEST(Tree, ChildLabelsFollowLogPRule) {
  const Params params{25, 4, 1, 3};
  const auto tree = BroadcastTree::optimal(params, 25);
  for (const auto& n : tree.nodes()) {
    for (std::size_t r = 0; r < n.children.size(); ++r) {
      const auto& child = tree.node(n.children[r]);
      EXPECT_EQ(child.label,
                params.child_label(n.label, static_cast<int>(r)));
      EXPECT_EQ(child.rank, static_cast<int>(r));
      EXPECT_EQ(&tree.node(child.parent), &n);
    }
  }
}

TEST(Tree, PostalTreeSizeMatchesFibonacci) {
  // Theorem 2.2: P(t) = f_t in the postal model.
  for (Time L = 1; L <= 6; ++L) {
    const Fib fib(L);
    for (Time t = 0; t <= 12; ++t) {
      const auto n = static_cast<int>(fib.f(t));
      const auto tree =
          BroadcastTree::optimal(Params::postal(n, L), n);
      EXPECT_LE(tree.makespan(), t) << "L=" << L << " t=" << t;
      if (n > 1) {
        // One more processor must cost more than t.
        const auto bigger =
            BroadcastTree::optimal(Params::postal(n + 1, L), n + 1);
        EXPECT_GT(bigger.makespan(), t) << "L=" << L << " t=" << t;
      }
    }
  }
}

TEST(Tree, ReachableMatchesFibInPostalModel) {
  for (Time L = 1; L <= 8; ++L) {
    const Fib fib(L);
    for (Time t = 0; t <= 30; ++t) {
      EXPECT_EQ(reachable(Params::postal(2, L), t), fib.f(t))
          << "L=" << L << " t=" << t;
    }
  }
}

TEST(Tree, ReachableMatchesTreeConstructionGeneralParams) {
  // Cross-check the DP against explicit tree construction for assorted
  // non-postal machines.
  for (const Params params : {Params{1, 6, 2, 4}, Params{1, 5, 1, 2},
                              Params{1, 3, 0, 2}, Params{1, 7, 3, 3}}) {
    for (Time t = 0; t <= 40; ++t) {
      const Count n = reachable(params, t);
      if (n > 3000) break;
      const auto tree = BroadcastTree::optimal(params, static_cast<int>(n));
      EXPECT_LE(tree.makespan(), t) << params.to_string() << " t=" << t;
      const auto bigger =
          BroadcastTree::optimal(params, static_cast<int>(n) + 1);
      EXPECT_GT(bigger.makespan(), t) << params.to_string() << " t=" << t;
    }
  }
}

TEST(Tree, BOfPAgainstFigure1) {
  EXPECT_EQ(B_of_P(Params{8, 6, 2, 4}, 8), 24);
  EXPECT_EQ(B_of_P(Params{8, 6, 2, 4}, 1), 0);
  EXPECT_EQ(B_of_P(Params{8, 6, 2, 4}, 2), 10);
}

TEST(Tree, BOfPPostalEqualsFibInverse) {
  for (Time L = 1; L <= 8; ++L) {
    const Fib fib(L);
    for (int P = 1; P <= 500; ++P) {
      EXPECT_EQ(B_of_P(Params::postal(P, L), P),
                fib.B_of_P(static_cast<Count>(P)))
          << "L=" << L << " P=" << P;
    }
  }
}

TEST(Tree, UpToContainsExactlyLabelsAtMostT) {
  const Params params = Params::postal(100, 3);
  const auto tree = BroadcastTree::up_to(params, 7);
  EXPECT_EQ(tree.size(), 9);  // f_7 = 9
  for (const auto& n : tree.nodes()) EXPECT_LE(n.label, 7);
}

TEST(Tree, UpToRejectsHugeTrees) {
  EXPECT_THROW(BroadcastTree::up_to(Params::postal(2, 1), 40, 1000),
               std::invalid_argument);
}

TEST(Tree, UpToRejectsTreesBeyondIntRange) {
  // L = 1 postal doubles per step, so reachable(48) = 2^48.  With a caller
  // raising max_nodes past INT_MAX, up_to used to truncate that count into
  // optimal()'s int parameter; it must refuse instead.
  EXPECT_THROW(BroadcastTree::up_to(Params::postal(2, 1), 48,
                                    std::numeric_limits<std::size_t>::max()),
               std::invalid_argument);
}

TEST(Tree, ReachablePrefixMatchesPointQueries) {
  for (const Params& params :
       {Params{10, 4, 1, 2}, Params::postal(50, 3), Params{7, 2, 3, 4}}) {
    const Time t = 20;
    const std::vector<Count> prefix = reachable_prefix(params, t);
    ASSERT_EQ(prefix.size(), static_cast<std::size_t>(t) + 1);
    for (Time u = 0; u <= t; ++u) {
      EXPECT_EQ(prefix[static_cast<std::size_t>(u)], reachable(params, u));
    }
  }
}

TEST(Tree, DegreeHistogramT9) {
  // T9 (L = 3 postal, 9 nodes, makespan 7): the root has 5 children
  // (sends at 0..4 landing at 3..7); block structure of Section 3.2 is
  // {5, 2, 1} plus leaves.
  const auto tree = BroadcastTree::optimal(Params::postal(9, 3), 9);
  EXPECT_EQ(tree.makespan(), 7);
  const auto hist = tree.degree_histogram();
  // Out-degrees: root 5, the t=3 node 2, the t=4 node 1, six leaves.
  EXPECT_EQ(hist.at(5), 1);
  EXPECT_EQ(hist.at(2), 1);
  EXPECT_EQ(hist.at(1), 1);
  EXPECT_EQ(hist.at(0), 6);
}

TEST(Tree, LeafDelayHistogramT9) {
  // Section 3.2: the multiset of leaf receptions per step is {a,a,a,b,b,c}
  // - three leaves at delay 7, two at 6, one at 5.
  const auto tree = BroadcastTree::optimal(Params::postal(9, 3), 9);
  const auto hist = tree.leaf_delay_histogram();
  EXPECT_EQ(hist.at(7), 3);
  EXPECT_EQ(hist.at(6), 2);
  EXPECT_EQ(hist.at(5), 1);
  EXPECT_EQ(hist.size(), 3u);  // exactly L = 3 distinct leaf delays
}

TEST(Tree, LeafDelaysSpanExactlyLValuesForExactP) {
  // For P = P(t), leaves sit at delays t-L+1..t (the L lower-case letters).
  // All L delays are populated once t >= 2L-1 (labels below L do not occur
  // in the universal tree apart from the root's 0).
  for (Time L = 2; L <= 6; ++L) {
    const Fib fib(L);
    for (Time t = 2 * L - 1; t <= 12; ++t) {
      const auto n = static_cast<int>(fib.f(t));
      const auto tree = BroadcastTree::optimal(Params::postal(n, L), n);
      const auto hist = tree.leaf_delay_histogram();
      EXPECT_EQ(hist.begin()->first, t - L + 1) << "L=" << L << " t=" << t;
      EXPECT_EQ(hist.rbegin()->first, t) << "L=" << L << " t=" << t;
      EXPECT_EQ(static_cast<Time>(hist.size()), L);
    }
  }
}

TEST(Tree, ToScheduleIsValidAndOptimal) {
  const Params params{8, 6, 2, 4};
  const auto tree = BroadcastTree::optimal(params, 8);
  const Schedule s = tree.to_schedule();
  EXPECT_TRUE(validate::is_valid(s)) << validate::check(s).summary();
  EXPECT_EQ(completion_time(s), 24);
  EXPECT_EQ(s.sends().size(), 7u);
}

TEST(Tree, ToScheduleWithNonzeroSource) {
  const Params params = Params::postal(9, 3);
  const auto tree = BroadcastTree::optimal(params, 9);
  const Schedule s = tree.to_schedule(4);
  EXPECT_TRUE(validate::is_valid(s)) << validate::check(s).summary();
  EXPECT_EQ(s.initials()[0].proc, 4);
  EXPECT_EQ(completion_time(s), 7);
}

TEST(Tree, FromParentsLinearChain) {
  const Params params = Params::postal(4, 2);
  const auto tree = BroadcastTree::from_parents(params, {-1, 0, 1, 2});
  EXPECT_EQ(tree.node(3).label, 6);  // three hops of L = 2
  EXPECT_EQ(tree.makespan(), 6);
}

TEST(Tree, FromParentsBinomialLikeShape) {
  const Params params = Params::postal(4, 1);
  // Root sends to 1 then 2; 1 sends to 3.
  const auto tree = BroadcastTree::from_parents(params, {-1, 0, 0, 1});
  EXPECT_EQ(tree.node(1).label, 1);
  EXPECT_EQ(tree.node(2).label, 2);
  EXPECT_EQ(tree.node(3).label, 2);
  EXPECT_EQ(tree.makespan(), 2);
}

TEST(Tree, FromParentsRejectsMalformedInput) {
  const Params params = Params::postal(4, 2);
  EXPECT_THROW(BroadcastTree::from_parents(params, {}),
               std::invalid_argument);
  EXPECT_THROW(BroadcastTree::from_parents(params, {0}),
               std::invalid_argument);
  EXPECT_THROW(BroadcastTree::from_parents(params, {-1, 2, 1}),
               std::invalid_argument);
}

TEST(Tree, OptimalRejectsBadArguments) {
  EXPECT_THROW(BroadcastTree::optimal(Params::postal(4, 2), 0),
               std::invalid_argument);
  EXPECT_THROW(BroadcastTree::optimal(Params{0, 1, 0, 1}, 4),
               std::invalid_argument);
}

TEST(Tree, ToScheduleRejectsTreeLargerThanMachine) {
  const auto tree = BroadcastTree::optimal(Params::postal(4, 2), 4);
  // Shrink the machine below the tree size via a copy with smaller P: not
  // expressible - instead build a tree for more nodes than P.
  const auto big = BroadcastTree::optimal(Params::postal(4, 2), 6);
  EXPECT_THROW(big.to_schedule(), std::invalid_argument);
  EXPECT_NO_THROW(tree.to_schedule());
}

}  // namespace
}  // namespace logpc::bcast
