/// Experiment T41a - Section 4.1: all-to-all broadcast meets
/// L + 2o + (P-2)g exactly, its k-item variant meets
/// L + 2o + (k(P-1)-1)g, and the same rotation solves personalized
/// all-to-all.

#include "bench_util.hpp"

#include "bcast/all_to_all.hpp"
#include "sched/metrics.hpp"
#include "validate/checker.hpp"

namespace {

using namespace logpc;
using logpc::bench::Table;

void report() {
  logpc::bench::section("all-to-all broadcast: measured vs bound");
  Table t({"machine", "k", "bound", "measured", "valid", "match"});
  for (const Params params :
       {Params::postal(4, 2), Params::postal(10, 3), Params::postal(32, 5),
        Params{8, 6, 2, 4}, Params{16, 4, 1, 2}, Params{64, 8, 2, 3}}) {
    for (const int k : {1, 2, 4}) {
      const Schedule s = bcast::all_to_all_k(params, k);
      const Time bound = bcast::all_to_all_lower_bound(params, k);
      const Time measured = completion_time(s);
      const bool valid =
          validate::is_valid(s, {.allow_duplex_overhead = true});
      t.row(params.to_string(), k, bound, measured, logpc::bench::ok(valid),
            logpc::bench::ok(measured == bound));
    }
  }
  t.print();
  std::cout << "(o > 0 machines need duplex overheads when L < (P-2)g - see\n"
               "the header note; the paper's bound presumes them.)\n";

  logpc::bench::section("personalized all-to-all: same time, same rotation");
  Table p({"machine", "bound", "makespan", "delivered", "pairs"});
  for (const Params params :
       {Params::postal(6, 3), Params{8, 6, 2, 4}, Params{24, 4, 1, 2}}) {
    const Schedule s = bcast::all_to_all_personalized(params);
    p.row(params.to_string(), bcast::all_to_all_lower_bound(params),
          s.makespan(), logpc::bench::ok(bcast::personalized_complete(s)),
          s.sends().size());
  }
  p.print();

  logpc::bench::section("scaling: bound is linear in P and in k");
  Table scale({"P", "1 item", "2 items", "4 items", "8 items"});
  for (const int P : {4, 8, 16, 32, 64, 128}) {
    const Params params = Params::postal(P, 4);
    scale.row(P, bcast::all_to_all_lower_bound(params, 1),
              bcast::all_to_all_lower_bound(params, 2),
              bcast::all_to_all_lower_bound(params, 4),
              bcast::all_to_all_lower_bound(params, 8));
  }
  scale.print();
}

void BM_AllToAll(benchmark::State& state) {
  const Params params = Params::postal(static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bcast::all_to_all(params));
  }
}
BENCHMARK(BM_AllToAll)->Arg(8)->Arg(64)->Arg(256);

void BM_AllToAllPersonalized(benchmark::State& state) {
  const Params params = Params::postal(static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bcast::all_to_all_personalized(params));
  }
}
BENCHMARK(BM_AllToAllPersonalized)->Arg(8)->Arg(64);

}  // namespace

LOGPC_BENCH_MAIN(report)
