# Empty compiler generated dependencies file for bench_summation_sweep.
# This may be replaced when dependencies are built.
