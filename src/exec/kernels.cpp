#include "exec/kernels.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <functional>
#include <type_traits>

/// This translation unit is compiled with -O3 (see src/CMakeLists.txt) so
/// the fold loops below auto-vectorize; everything else in the library
/// stays at the project default.  The generic reference lane instead
/// applies the operation one element at a time through a type-erased
/// std::function — the cost the engine actually paid before the typed
/// registry, when every combine went through a std::function per item and
/// items were scalar-sized (one dispatch plus memcpy staging per value;
/// see add_u64 in bench_exec).  Behind that boundary the compiler can
/// neither fuse, unroll, nor vectorize across elements, which is
/// precisely what the fused kernels remove, so it is the baseline
/// bench_kernels reports speedups against.

namespace logpc::exec {

namespace {

#if defined(__GNUC__) && !defined(__clang__)
#define LOGPC_NO_VECTORIZE \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define LOGPC_NO_VECTORIZE
#endif

template <typename T>
bool aligned_for(const void* p) noexcept {
  return reinterpret_cast<std::uintptr_t>(p) % alignof(T) == 0;
}

struct SumOp {
  template <typename T>
  static T apply(T a, T b) noexcept {
    if constexpr (std::is_integral_v<T>) {
      // Wrap-around on overflow: fold results must not depend on which
      // lane (vector/scalar/generic) ran, and signed UB would also differ
      // between sanitized and plain builds.
      using U = std::make_unsigned_t<T>;
      return static_cast<T>(static_cast<U>(a) + static_cast<U>(b));
    } else {
      return a + b;
    }
  }
};
struct MinOp {
  template <typename T>
  static T apply(T a, T b) noexcept {
    return b < a ? b : a;
  }
};
struct MaxOp {
  template <typename T>
  static T apply(T a, T b) noexcept {
    return a < b ? b : a;
  }
};

/// The fused fold loop.  The aligned lane reads through typed pointers —
/// the trivial elementwise form every compiler vectorizes — and the
/// misaligned lane stages each element through memcpy so arbitrary byte
/// offsets stay UB-free.
template <typename T, typename F>
void fold_kernel(std::byte* acc, const std::byte* rhs,
                 std::size_t bytes) noexcept {
  const std::size_t n = bytes / sizeof(T);
  if (aligned_for<T>(acc) && aligned_for<T>(rhs)) {
    T* __restrict__ a = reinterpret_cast<T*>(acc);
    const T* __restrict__ r = reinterpret_cast<const T*>(rhs);
    for (std::size_t i = 0; i < n; ++i) a[i] = F::template apply<T>(a[i], r[i]);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      T a;
      T r;
      std::memcpy(&a, acc + i * sizeof(T), sizeof(T));
      std::memcpy(&r, rhs + i * sizeof(T), sizeof(T));
      a = F::template apply<T>(a, r);
      std::memcpy(acc + i * sizeof(T), &a, sizeof(T));
    }
  }
}

/// One type-erased element application, written the way the pre-fast-lane
/// combines were (see add_u64-style CombineFns in bench_exec): stage both
/// values through memcpys bounded by the bytes actually available, apply,
/// write back.  The std::min clamp never binds here — fold_generic only
/// passes full elements — but like the historical combines the bound is a
/// runtime value, so the staging stays a real (non-constant-foldable)
/// memcpy rather than a register move.  noinline keeps this a real call
/// even before the std::function wrapper below adds its own dispatch.
template <typename T, typename F>
[[gnu::noinline]] void apply_erased(std::byte* a, const std::byte* r,
                                    std::size_t avail) {
  T x{};
  T y{};
  const std::size_t m = std::min(avail, sizeof(T));
  std::memcpy(&x, a, m);
  std::memcpy(&y, r, m);
  x = F::template apply<T>(x, y);
  std::memcpy(a, &x, m);
}

/// The erased reference lane: same per-element operation sequence as the
/// kernel, one element at a time, each application through a type-erased
/// std::function — the pre-fast-lane engine's per-item combine cost.  The
/// volatile read launders the target so the compiler cannot devirtualize
/// it back into the fused form it is the baseline for.
template <typename T, typename F>
LOGPC_NO_VECTORIZE void fold_generic(std::byte* acc, const std::byte* rhs,
                                     std::size_t bytes) noexcept {
  using ApplyFn = void (*)(std::byte*, const std::byte*, std::size_t);
  ApplyFn volatile laundered = &apply_erased<T, F>;
  const std::function<void(std::byte*, const std::byte*, std::size_t)> f =
      laundered;
  const std::size_t n = bytes / sizeof(T);
  for (std::size_t i = 0; i < n; ++i) {
    f(acc + i * sizeof(T), rhs + i * sizeof(T), bytes - i * sizeof(T));
  }
}

template <typename F>
constexpr std::array<KernelFn, kNumDTypes> kernel_row() {
  return {&fold_kernel<std::int32_t, F>, &fold_kernel<std::int64_t, F>,
          &fold_kernel<float, F>, &fold_kernel<double, F>};
}

template <typename F>
constexpr std::array<KernelFn, kNumDTypes> generic_row() {
  return {&fold_generic<std::int32_t, F>, &fold_generic<std::int64_t, F>,
          &fold_generic<float, F>, &fold_generic<double, F>};
}

constexpr std::array<std::array<KernelFn, kNumDTypes>, kNumOps> kKernels = {
    kernel_row<SumOp>(), kernel_row<MinOp>(), kernel_row<MaxOp>()};
constexpr std::array<std::array<KernelFn, kNumDTypes>, kNumOps> kGenerics = {
    generic_row<SumOp>(), generic_row<MinOp>(), generic_row<MaxOp>()};

}  // namespace

const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::kSum: return "sum";
    case Op::kMin: return "min";
    case Op::kMax: return "max";
  }
  return "?";
}

const char* dtype_name(DType t) noexcept {
  switch (t) {
    case DType::kI32: return "i32";
    case DType::kI64: return "i64";
    case DType::kF32: return "f32";
    case DType::kF64: return "f64";
  }
  return "?";
}

std::size_t elem_size(DType t) noexcept {
  switch (t) {
    case DType::kI32: return 4;
    case DType::kI64: return 8;
    case DType::kF32: return 4;
    case DType::kF64: return 8;
  }
  return 1;
}

KernelFn lookup(const KernelSpec& spec) noexcept {
  return kKernels[static_cast<std::size_t>(spec.op)]
                 [static_cast<std::size_t>(spec.dtype)];
}

CombineFn generic_combine(const KernelSpec& spec) {
  const KernelFn scalar = kGenerics[static_cast<std::size_t>(spec.op)]
                                   [static_cast<std::size_t>(spec.dtype)];
  return [scalar](Bytes& acc, std::span<const std::byte> rhs) {
    scalar(acc.data(), rhs.data(), std::min(acc.size(), rhs.size()));
  };
}

}  // namespace logpc::exec
