#include "exec/mailbox.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

namespace logpc::exec {
namespace {

Message msg(ItemId item, const std::byte* data = nullptr,
            std::size_t size = 0) {
  return Message{item, data, size};
}

TEST(Mailbox, StartsEmpty) {
  SpscMailbox mb(4);
  EXPECT_EQ(mb.capacity(), 4u);
  EXPECT_EQ(mb.size(), 0u);
  Message out;
  EXPECT_FALSE(mb.try_pop(out));
}

/// Capacity 0 used to be silently clamped to 1, masking degenerate LogP
/// parameters (ceil(L/g) >= 1 on every valid machine).  Now it is rejected
/// loudly so the caller fixes the machine instead of relying on a ring
/// that the model says cannot exist.
TEST(Mailbox, ZeroCapacityIsRejected) {
  EXPECT_THROW(SpscMailbox mb(0), std::invalid_argument);
  EXPECT_THROW(AckRing ar(0), std::invalid_argument);
}

TEST(AckRing, CarriesCumulativeSequenceNumbers) {
  AckRing ar(2);
  EXPECT_TRUE(ar.try_push(1));
  EXPECT_TRUE(ar.try_push(3));
  EXPECT_FALSE(ar.try_push(4));  // full — sender falls back to retransmit
  std::uint64_t seq = 0;
  ASSERT_TRUE(ar.try_pop(seq));
  EXPECT_EQ(seq, 1u);
  ASSERT_TRUE(ar.try_pop(seq));
  EXPECT_EQ(seq, 3u);
  EXPECT_FALSE(ar.try_pop(seq));
}

TEST(Mailbox, RejectsPushWhenFull) {
  SpscMailbox mb(3);
  EXPECT_TRUE(mb.try_push(msg(0)));
  EXPECT_TRUE(mb.try_push(msg(1)));
  EXPECT_TRUE(mb.try_push(msg(2)));
  EXPECT_FALSE(mb.try_push(msg(3)));
  Message out;
  ASSERT_TRUE(mb.try_pop(out));
  EXPECT_EQ(out.item, 0);
  EXPECT_TRUE(mb.try_push(msg(3)));  // slot freed
  EXPECT_FALSE(mb.try_push(msg(4)));
}

TEST(Mailbox, FifoOrder) {
  SpscMailbox mb(8);
  for (ItemId i = 0; i < 8; ++i) ASSERT_TRUE(mb.try_push(msg(i)));
  for (ItemId i = 0; i < 8; ++i) {
    Message out;
    ASSERT_TRUE(mb.try_pop(out));
    EXPECT_EQ(out.item, i);
  }
  EXPECT_EQ(mb.size(), 0u);
}

TEST(Mailbox, WrapsAroundManyTimes) {
  SpscMailbox mb(3);
  ItemId next_pop = 0;
  for (ItemId i = 0; i < 1000; ++i) {
    ASSERT_TRUE(mb.try_push(msg(i)));
    if (i % 2 == 1) {  // drain two every other push to force wrap patterns
      for (int d = 0; d < 2; ++d) {
        Message out;
        ASSERT_TRUE(mb.try_pop(out));
        EXPECT_EQ(out.item, next_pop++);
      }
    }
  }
}

TEST(Mailbox, MaxOccupancyTracksHighWater) {
  SpscMailbox mb(5);
  EXPECT_EQ(mb.max_occupancy(), 0u);
  ASSERT_TRUE(mb.try_push(msg(0)));
  ASSERT_TRUE(mb.try_push(msg(1)));
  EXPECT_EQ(mb.max_occupancy(), 2u);
  Message out;
  ASSERT_TRUE(mb.try_pop(out));
  ASSERT_TRUE(mb.try_push(msg(2)));
  EXPECT_EQ(mb.max_occupancy(), 2u);  // never exceeded 2 in flight
}

/// The contract the engine relies on: payload bytes written before the
/// push are visible to the consumer after the pop, across real threads,
/// with item identity and FIFO order preserved under sustained traffic.
TEST(Mailbox, SpscStressPreservesOrderAndPayload) {
  constexpr int kMessages = 200000;
  constexpr std::size_t kCap = 4;
  SpscMailbox mb(kCap);

  // Stable payload storage: producer writes slot i before pushing message
  // i; the ring's release/acquire pair publishes it.
  std::vector<std::uint64_t> payload(kMessages);

  std::thread producer([&] {
    for (int i = 0; i < kMessages; ++i) {
      payload[static_cast<std::size_t>(i)] =
          0xABCD0000ull + static_cast<std::uint64_t>(i);
      const Message m{
          static_cast<ItemId>(i),
          reinterpret_cast<const std::byte*>(
              &payload[static_cast<std::size_t>(i)]),
          sizeof(std::uint64_t)};
      while (!mb.try_push(m)) std::this_thread::yield();
    }
  });

  std::uint64_t checksum = 0;
  for (int i = 0; i < kMessages; ++i) {
    Message out;
    while (!mb.try_pop(out)) std::this_thread::yield();
    ASSERT_EQ(out.item, i);
    ASSERT_EQ(out.size, sizeof(std::uint64_t));
    std::uint64_t v = 0;
    std::memcpy(&v, out.data, sizeof v);
    ASSERT_EQ(v, 0xABCD0000ull + static_cast<std::uint64_t>(i));
    checksum += v;
  }
  producer.join();
  EXPECT_LE(mb.max_occupancy(), kCap);
  EXPECT_NE(checksum, 0u);
}

TEST(Mailbox, StatsOptOutSkipsHighWaterTracking) {
  SpscMailbox mb(5, /*track_occupancy=*/false);
  EXPECT_FALSE(mb.tracks_occupancy());
  for (ItemId i = 0; i < 5; ++i) ASSERT_TRUE(mb.try_push(msg(i)));
  EXPECT_EQ(mb.max_occupancy(), 0u);  // tracking disabled, not "empty"
  EXPECT_EQ(mb.size(), 5u);
  SpscMailbox tracked(5);
  EXPECT_TRUE(tracked.tracks_occupancy());
}

TEST(Mailbox, PopBulkDrainsUpToMaxInFifoOrder) {
  SpscMailbox mb(8);
  for (ItemId i = 0; i < 6; ++i) ASSERT_TRUE(mb.try_push(msg(i)));
  std::vector<Message> out;
  EXPECT_EQ(mb.pop_bulk(out, 4), 4u);
  ASSERT_EQ(out.size(), 4u);
  for (ItemId i = 0; i < 4; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)].item, i);
  // Appends, never clears: the engine reuses one pending buffer.
  EXPECT_EQ(mb.pop_bulk(out, 10), 2u);
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out[4].item, 4);
  EXPECT_EQ(out[5].item, 5);
  EXPECT_EQ(mb.pop_bulk(out, 1), 0u);  // empty
  EXPECT_EQ(mb.size(), 0u);
}

TEST(Mailbox, TryPushBulkStopsAtCapacity) {
  SpscMailbox mb(4);
  std::vector<Message> batch;
  for (ItemId i = 0; i < 6; ++i) batch.push_back(msg(i));
  EXPECT_EQ(mb.try_push_bulk(batch.data(), batch.size()), 4u);
  EXPECT_EQ(mb.try_push_bulk(batch.data() + 4, 2), 0u);  // full
  Message out;
  ASSERT_TRUE(mb.try_pop(out));
  EXPECT_EQ(out.item, 0);
  EXPECT_EQ(mb.try_push_bulk(batch.data() + 4, 2), 1u);  // one slot free
  for (ItemId want : {1, 2, 3, 4}) {
    ASSERT_TRUE(mb.try_pop(out));
    EXPECT_EQ(out.item, want);
  }
  EXPECT_EQ(mb.max_occupancy(), 4u);
}

TEST(Mailbox, BulkAndSingleOperationsInterleave) {
  SpscMailbox mb(3);
  std::vector<Message> out;
  ItemId next = 0, want = 0;
  for (int round = 0; round < 500; ++round) {
    const std::size_t pushed = static_cast<std::size_t>(round % 3) + 1;
    std::vector<Message> batch;
    for (std::size_t i = 0; i < pushed; ++i) batch.push_back(msg(next + static_cast<ItemId>(i)));
    const std::size_t accepted = mb.try_push_bulk(batch.data(), batch.size());
    next += static_cast<ItemId>(accepted);
    if (round % 2 == 0) {
      Message m;
      if (mb.try_pop(m)) EXPECT_EQ(m.item, want++);
    } else {
      out.clear();
      const std::size_t n = mb.pop_bulk(out, 2);
      for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i].item, want++);
    }
  }
  // Drain the remainder; the interleaving never reordered or lost anything.
  out.clear();
  while (mb.pop_bulk(out, 8) > 0) {
  }
  for (const Message& m : out) EXPECT_EQ(m.item, want++);
  EXPECT_EQ(want, next);
}

/// Cross-thread bulk stress: a producer pushing randomized batch sizes
/// against a consumer draining randomized bulk sizes must preserve order,
/// payload visibility and the capacity bound — the same contract as the
/// single-message stress test, through the amortized entry points.
TEST(Mailbox, BulkSpscStressPreservesOrderAndPayload) {
  constexpr int kMessages = 200000;
  constexpr std::size_t kCap = 6;
  SpscMailbox mb(kCap);
  std::vector<std::uint64_t> payload(kMessages);

  std::thread producer([&] {
    std::uint32_t state = 12345;  // cheap deterministic LCG
    int sent = 0;
    std::vector<Message> batch;
    while (sent < kMessages) {
      state = state * 1664525u + 1013904223u;
      const int want = 1 + static_cast<int>(state % 4);
      batch.clear();
      for (int i = 0; i < want && sent + i < kMessages; ++i) {
        const int id = sent + i;
        payload[static_cast<std::size_t>(id)] =
            0x5EED0000ull + static_cast<std::uint64_t>(id);
        batch.push_back(Message{
            static_cast<ItemId>(id),
            reinterpret_cast<const std::byte*>(
                &payload[static_cast<std::size_t>(id)]),
            sizeof(std::uint64_t)});
      }
      std::size_t done = 0;
      while (done < batch.size()) {
        const std::size_t n =
            mb.try_push_bulk(batch.data() + done, batch.size() - done);
        if (n == 0) {
          std::this_thread::yield();
          continue;
        }
        done += n;
      }
      sent += static_cast<int>(batch.size());
    }
  });

  std::uint32_t state = 99;
  int received = 0;
  std::vector<Message> got;
  while (received < kMessages) {
    state = state * 1664525u + 1013904223u;
    const std::size_t want = 1 + state % 5;
    got.clear();
    const std::size_t n = mb.pop_bulk(got, want);
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(got[i].item, received);
      std::uint64_t v = 0;
      std::memcpy(&v, got[i].data, sizeof v);
      ASSERT_EQ(v, 0x5EED0000ull + static_cast<std::uint64_t>(received));
      ++received;
    }
  }
  producer.join();
  EXPECT_LE(mb.max_occupancy(), kCap);
}

}  // namespace
}  // namespace logpc::exec
