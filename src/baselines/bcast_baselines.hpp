#pragma once

#include "bcast/tree.hpp"

/// \file bcast_baselines.hpp
/// Broadcast trees downstream systems commonly use, as comparators for the
/// paper's optimal tree.  Each returns a labelled BroadcastTree on the same
/// timing rules, so completion times are directly comparable via
/// tree.makespan() and executable via tree.to_schedule().

namespace logpc::baselines {

using bcast::BroadcastTree;

/// Binomial / recursive-halving broadcast (the classic MPI_Bcast tree):
/// the root hands the upper half of the remaining range to a new
/// representative each send, recursing in each half.  Optimal when
/// g = L = 1, o = 0; increasingly worse than B(P) as latency grows.
[[nodiscard]] BroadcastTree binomial_tree(const Params& params, int P);

/// Complete binary tree: node i's children are 2i+1 and 2i+2.  Fixed
/// fan-out 2 regardless of L/g, so it wastes send slots at high latency and
/// serializes too much at low latency.
[[nodiscard]] BroadcastTree binary_tree(const Params& params, int P);

/// Linear relay chain 0 -> 1 -> ... -> P-1: pathological for single-item
/// broadcast, the classic strawman (and the best shape for pipelining many
/// items at g = 1).
[[nodiscard]] BroadcastTree linear_chain(const Params& params, int P);

/// Flat tree: the root sends to all P-1 others itself, serialized by g.
/// Good for tiny P or huge L; terrible otherwise.
[[nodiscard]] BroadcastTree flat_tree(const Params& params, int P);

}  // namespace logpc::baselines
