file(REMOVE_RECURSE
  "CMakeFiles/test_single_item.dir/bcast/single_item_test.cpp.o"
  "CMakeFiles/test_single_item.dir/bcast/single_item_test.cpp.o.d"
  "test_single_item"
  "test_single_item.pdb"
  "test_single_item[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_single_item.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
