#include "exec/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bcast/all_to_all.hpp"
#include "bcast/reduction.hpp"
#include "bcast/single_item.hpp"
#include "exec/arena.hpp"
#include "exec/engine.hpp"
#include "exec/wait.hpp"
#include "exec_test_util.hpp"
#include "runtime/planner.hpp"
#include "sum/executor.hpp"
#include "sum/summation_tree.hpp"

/// Property tests for the exec fast lane: typed combine kernels must be
/// byte-for-byte interchangeable with the scalar generic reference on every
/// input (same per-element ops in the same order — true even for floats),
/// the engine must produce bitwise-identical results whichever lane it
/// takes, and the arena / wait-policy machinery under it must not change
/// any observable result.

namespace logpc::exec {
namespace {

namespace tu = testutil;

const Op kAllOps[] = {Op::kSum, Op::kMin, Op::kMax};
const DType kAllDTypes[] = {DType::kI32, DType::kI64, DType::kF32,
                            DType::kF64};

Bytes random_bytes(std::mt19937& rng, std::size_t n) {
  Bytes b(n);
  std::uniform_int_distribution<int> d(0, 255);
  for (auto& x : b) x = static_cast<std::byte>(d(rng));
  return b;
}

/// Random bytes that reinterpret as finite floats (and arbitrary ints):
/// keeps NaN out so min/max comparisons exercise the ordered path too.
Bytes random_finite(std::mt19937& rng, std::size_t n, DType t) {
  Bytes b = random_bytes(rng, n);
  std::uniform_real_distribution<double> d(-1e6, 1e6);
  if (t == DType::kF32) {
    for (std::size_t i = 0; i + sizeof(float) <= n; i += sizeof(float)) {
      const float v = static_cast<float>(d(rng));
      std::memcpy(b.data() + i, &v, sizeof v);
    }
  } else if (t == DType::kF64) {
    for (std::size_t i = 0; i + sizeof(double) <= n; i += sizeof(double)) {
      const double v = d(rng);
      std::memcpy(b.data() + i, &v, sizeof v);
    }
  }
  return b;
}

// ---------------------------------------------------------------------------
// Kernel <-> generic reference equivalence
// ---------------------------------------------------------------------------

TEST(Kernels, EverySpecHasAKernelAndAName) {
  for (const Op op : kAllOps) {
    for (const DType t : kAllDTypes) {
      const KernelSpec spec{op, t};
      EXPECT_NE(lookup(spec), nullptr) << spec.name();
      EXPECT_FALSE(spec.name().empty());
      EXPECT_TRUE(static_cast<bool>(generic_combine(spec))) << spec.name();
    }
  }
}

TEST(Kernels, KernelMatchesGenericReferenceBytewise) {
  std::mt19937 rng(1993);
  const std::size_t sizes[] = {0, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                               63, 64, 65, 256, 1000, 4096, 4099};
  for (const Op op : kAllOps) {
    for (const DType t : kAllDTypes) {
      const KernelSpec spec{op, t};
      const KernelFn k = lookup(spec);
      const CombineFn g = generic_combine(spec);
      for (const std::size_t n : sizes) {
        const Bytes acc0 = random_finite(rng, n, t);
        const Bytes rhs = random_finite(rng, n, t);
        Bytes via_kernel = acc0;
        Bytes via_generic = acc0;
        k(via_kernel.data(), rhs.data(), n);
        g(via_generic, std::span<const std::byte>(rhs.data(), rhs.size()));
        EXPECT_EQ(via_kernel, via_generic) << spec.name() << " n=" << n;
        // Tail bytes past the last whole element are untouched.
        const std::size_t folded = (n / elem_size(t)) * elem_size(t);
        for (std::size_t i = folded; i < n; ++i) {
          EXPECT_EQ(via_kernel[i], acc0[i]) << spec.name() << " tail@" << i;
        }
      }
    }
  }
}

TEST(Kernels, KernelMatchesGenericOnArbitraryByteBits) {
  // Raw random bits: exercises NaN payloads, negative zero, denormals and
  // every integer pattern.  Both lanes run the identical per-element
  // operation, so even unordered float comparisons must agree bitwise.
  std::mt19937 rng(7);
  for (const Op op : kAllOps) {
    for (const DType t : kAllDTypes) {
      const KernelSpec spec{op, t};
      const KernelFn k = lookup(spec);
      const CombineFn g = generic_combine(spec);
      for (int round = 0; round < 8; ++round) {
        const std::size_t n = 8 * elem_size(t) + (round % 3);
        const Bytes acc0 = random_bytes(rng, n);
        const Bytes rhs = random_bytes(rng, n);
        Bytes via_kernel = acc0;
        Bytes via_generic = acc0;
        k(via_kernel.data(), rhs.data(), n);
        g(via_generic, std::span<const std::byte>(rhs.data(), rhs.size()));
        EXPECT_EQ(via_kernel, via_generic) << spec.name();
      }
    }
  }
}

TEST(Kernels, MisalignedOperandsMatchAlignedResults) {
  std::mt19937 rng(42);
  alignas(64) std::byte acc_store[4096 + 64];
  alignas(64) std::byte rhs_store[4096 + 64];
  for (const Op op : kAllOps) {
    for (const DType t : kAllDTypes) {
      const KernelSpec spec{op, t};
      const KernelFn k = lookup(spec);
      const CombineFn g = generic_combine(spec);
      const std::size_t n = 1024;
      for (const std::size_t a_off : {1UL, 3UL, 7UL}) {
        for (const std::size_t r_off : {0UL, 2UL, 5UL}) {
          const Bytes acc0 = random_finite(rng, n, t);
          const Bytes rhs = random_finite(rng, n, t);
          std::memcpy(acc_store + a_off, acc0.data(), n);
          std::memcpy(rhs_store + r_off, rhs.data(), n);
          k(acc_store + a_off, rhs_store + r_off, n);
          Bytes expected = acc0;
          g(expected, std::span<const std::byte>(rhs.data(), rhs.size()));
          EXPECT_EQ(std::memcmp(acc_store + a_off, expected.data(), n), 0)
              << spec.name() << " offsets " << a_off << "/" << r_off;
        }
      }
    }
  }
}

TEST(Kernels, SumUsesWraparoundForSignedIntegers) {
  const KernelSpec spec{Op::kSum, DType::kI32};
  const KernelFn k = lookup(spec);
  std::int32_t acc_v = INT32_MAX;
  const std::int32_t rhs_v = 1;
  k(reinterpret_cast<std::byte*>(&acc_v),
    reinterpret_cast<const std::byte*>(&rhs_v), sizeof acc_v);
  EXPECT_EQ(acc_v, INT32_MIN);  // two's-complement wrap, not UB
}

// ---------------------------------------------------------------------------
// Combiner dispatch
// ---------------------------------------------------------------------------

TEST(Combiner, TypedCombinerDispatchesBySizeMatch) {
  const Combiner typed{KernelSpec{Op::kSum, DType::kI64}};
  EXPECT_TRUE(typed.valid());
  EXPECT_TRUE(typed.typed());
  EXPECT_NE(typed.kernel(), nullptr);

  // Size match: kernel lane.
  Bytes acc = tu::of_u64(40);
  typed(acc, std::span<const std::byte>(tu::of_u64(2)));
  EXPECT_EQ(tu::to_u64(acc), 42u);

  // Size mismatch: generic lane folds the common prefix of whole elements.
  Bytes small = tu::of_u64(5);
  Bytes big(16);
  std::memcpy(big.data(), tu::of_u64(10).data(), 8);
  typed(small, std::span<const std::byte>(big.data(), big.size()));
  EXPECT_EQ(small.size(), 8u);
  EXPECT_EQ(tu::to_u64(small), 15u);
}

TEST(Combiner, UntypedCombinerWrapsPlainCombineFn) {
  const Combiner generic = Combiner(tu::concat());
  EXPECT_TRUE(generic.valid());
  EXPECT_FALSE(generic.typed());
  EXPECT_EQ(generic.kernel(), nullptr);
  Bytes acc = tu::of_str("ab");
  generic(acc, std::span<const std::byte>(tu::of_str("cd")));
  EXPECT_EQ(tu::to_str(acc), "abcd");
}

// ---------------------------------------------------------------------------
// BufferArena
// ---------------------------------------------------------------------------

TEST(BufferArena, AllocationsAreCacheLineAligned) {
  BufferArena arena(256);
  for (const std::size_t n : {0UL, 1UL, 7UL, 63UL, 64UL, 65UL, 300UL}) {
    std::byte* p = arena.allocate(n);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % BufferArena::kAlignment,
              0u)
        << "n=" << n;
  }
}

TEST(BufferArena, AllocationsDoNotOverlapAndSurviveGrowth) {
  BufferArena arena(128);  // force several growth steps
  std::mt19937 rng(3);
  struct Span {
    std::byte* p;
    std::size_t n;
    unsigned char tag;
  };
  std::vector<Span> spans;
  std::uniform_int_distribution<std::size_t> size_d(1, 700);
  for (unsigned char i = 0; i < 50; ++i) {
    const std::size_t n = size_d(rng);
    std::byte* p = arena.allocate(n);
    std::memset(p, i, n);
    spans.push_back(Span{p, n, i});
  }
  EXPECT_GT(arena.chunk_count(), 1u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
  // Every earlier write is intact: no overlap, no invalidation on growth.
  for (const Span& s : spans) {
    for (std::size_t i = 0; i < s.n; ++i) {
      ASSERT_EQ(static_cast<unsigned char>(s.p[i]), s.tag);
    }
  }
}

TEST(BufferArena, ZeroSizeAllocationsAreDistinct) {
  BufferArena arena;
  std::byte* a = arena.allocate(0);
  std::byte* b = arena.allocate(0);
  EXPECT_NE(a, b);
}

TEST(BufferArena, ResetRewindsWithoutReleasing) {
  BufferArena arena(256);
  for (int i = 0; i < 20; ++i) arena.allocate(100);
  const std::size_t reserved = arena.bytes_reserved();
  const std::size_t chunks = arena.chunk_count();
  EXPECT_GT(arena.bytes_used(), 0u);
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.chunk_count(), chunks);
  // The rewound arena serves the same memory again.
  std::byte* p = arena.allocate(64);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % BufferArena::kAlignment,
            0u);
}

TEST(BufferArena, OversizedRequestGetsDedicatedChunk) {
  BufferArena arena(128);
  std::byte* small = arena.allocate(64);
  std::memset(small, 0x5a, 64);
  // Far larger than any doubling step from 128 would reach in one hop.
  const std::size_t big_n = (std::size_t{1} << 26) + 1024;
  std::byte* big = arena.allocate(big_n);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big) % BufferArena::kAlignment,
            0u);
  big[0] = std::byte{1};
  big[big_n - 1] = std::byte{2};
  // The small allocation before it is untouched, and the arena can keep
  // serving small requests after the spike.
  EXPECT_EQ(static_cast<unsigned char>(small[0]), 0x5a);
  std::byte* after = arena.allocate(64);
  ASSERT_NE(after, nullptr);
  EXPECT_GE(arena.bytes_used(), big_n);
}

// ---------------------------------------------------------------------------
// Engine integration: typed lane == generic lane, counters, order
// ---------------------------------------------------------------------------

std::vector<Bytes> random_float_values(std::mt19937& rng, int count,
                                       std::size_t n, DType t) {
  std::vector<Bytes> v;
  v.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) v.push_back(random_finite(rng, n, t));
  return v;
}

TEST(EngineKernels, TypedReduceIsBitwiseIdenticalToGenericRun) {
  const Params params{8, 4, 1, 2};
  const bcast::ReductionPlan plan = bcast::optimal_reduction(params, 0);
  const Program prog = compile_reduction(plan);
  Engine engine;
  std::mt19937 rng(11);
  for (const DType t : {DType::kF32, DType::kF64, DType::kI64}) {
    const KernelSpec spec{Op::kSum, t};
    const std::vector<Bytes> values =
        random_float_values(rng, params.P, 1024, t);

    const ExecReport generic_run =
        engine.run(prog, values, generic_combine(spec));
    const ExecReport typed_run =
        engine.run(prog, values, Combiner(spec));

    // Same fold sequence, same per-element ops: bitwise equal, floats
    // included.
    EXPECT_EQ(typed_run.folded_at(0), generic_run.folded_at(0))
        << spec.name();
    // All P-1 partial-value folds are size-matched, so all take the kernel.
    EXPECT_EQ(typed_run.kernel_folds, static_cast<std::size_t>(params.P - 1))
        << spec.name();
    EXPECT_EQ(typed_run.generic_folds, 0u) << spec.name();
    EXPECT_EQ(generic_run.kernel_folds, 0u) << spec.name();
  }
}

TEST(EngineKernels, TypedSummationMatchesSequentialSum) {
  const Params params{8, 4, 1, 2};
  const sum::SummationPlan plan = sum::optimal_summation(params, 30);
  ASSERT_GT(plan.total_operands, 0u);
  const Program prog = compile_summation(plan);
  Engine engine;

  const auto layout = sum::operand_layout(plan);
  std::vector<std::vector<Bytes>> operands(plan.procs.size());
  std::uint64_t expected = 0;
  std::uint64_t v = 1;
  for (std::size_t i = 0; i < layout.size(); ++i) {
    for (std::size_t j = 0; j < layout[i].total(); ++j) {
      operands[i].push_back(tu::of_u64(v));
      expected += v;
      v += 3;
    }
  }

  const Combiner typed{KernelSpec{Op::kSum, DType::kI64}};
  const ExecReport report = engine.run(prog, operands, typed);
  EXPECT_EQ(tu::to_u64(report.folded_at(plan.root)), expected);
  EXPECT_GT(report.kernel_folds, 0u);
  EXPECT_EQ(report.generic_folds, 0u);
}

TEST(EngineKernels, NonCommutativeSummationOrderSurvivesTheFastLane) {
  // The fast lane must not change WHICH folds run or in what order: a
  // non-commutative operator (concatenation) through the Combiner wrapper
  // still reproduces the plan's exact combination order.
  const Params params{8, 4, 1, 2};
  const sum::SummationPlan plan = sum::optimal_summation(params, 30);
  const Program prog = compile_summation(plan);
  Engine engine;

  const auto layout = sum::operand_layout(plan);
  std::vector<std::vector<Bytes>> operands(plan.procs.size());
  std::vector<std::vector<std::string>> op_strings(plan.procs.size());
  std::vector<std::size_t> proc_to_index(static_cast<std::size_t>(params.P),
                                         0);
  for (std::size_t i = 0; i < plan.procs.size(); ++i) {
    proc_to_index[static_cast<std::size_t>(plan.procs[i].proc)] = i;
  }
  int next = 0;
  for (std::size_t i = 0; i < layout.size(); ++i) {
    for (std::size_t j = 0; j < layout[i].total(); ++j) {
      op_strings[i].push_back("[" + std::to_string(next++) + "]");
      operands[i].push_back(tu::of_str(op_strings[i].back()));
    }
  }
  std::string expected;
  for (const auto& [proc, idx] : sum::combination_order(plan)) {
    expected +=
        op_strings[proc_to_index[static_cast<std::size_t>(proc)]][idx];
  }

  const ExecReport report = engine.run(prog, operands, Combiner(tu::concat()));
  EXPECT_EQ(tu::to_str(report.folded_at(plan.root)), expected);
  // Concatenation grows the accumulator, so no fold is ever size-matched
  // for the (absent) kernel: everything goes through the generic lane.
  EXPECT_EQ(report.kernel_folds, 0u);
  EXPECT_GT(report.generic_folds, 0u);
}

TEST(EngineKernels, FloatSumStaysWithinAccumulationBoundOfLeftFold) {
  // The engine folds in the plan's tree order, not the sequential left
  // fold, so float results are not bitwise equal to the left fold — but
  // both are permutations-with-reassociation of the same sum, so the
  // difference is bounded by standard error accumulation.
  const Params params{8, 4, 1, 2};
  const sum::SummationPlan plan = sum::optimal_summation(params, 30);
  const Program prog = compile_summation(plan);
  Engine engine;

  const auto layout = sum::operand_layout(plan);
  std::vector<std::vector<Bytes>> operands(plan.procs.size());
  std::vector<std::size_t> proc_to_index(static_cast<std::size_t>(params.P),
                                         0);
  for (std::size_t i = 0; i < plan.procs.size(); ++i) {
    proc_to_index[static_cast<std::size_t>(plan.procs[i].proc)] = i;
  }
  std::mt19937 rng(23);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<std::vector<double>> values(plan.procs.size());
  for (std::size_t i = 0; i < layout.size(); ++i) {
    for (std::size_t j = 0; j < layout[i].total(); ++j) {
      const double x = d(rng);
      values[i].push_back(x);
      Bytes b(sizeof(double));
      std::memcpy(b.data(), &x, sizeof x);
      operands[i].push_back(std::move(b));
    }
  }
  double left_fold = 0.0;
  bool first = true;
  double magnitude = 0.0;
  for (const auto& [proc, idx] : sum::combination_order(plan)) {
    const double x = values[proc_to_index[static_cast<std::size_t>(proc)]][idx];
    left_fold = first ? x : left_fold + x;
    first = false;
    magnitude += std::abs(x);
  }

  const Combiner typed{KernelSpec{Op::kSum, DType::kF64}};
  const ExecReport report = engine.run(prog, operands, typed);
  double got = 0.0;
  std::memcpy(&got, report.folded_at(plan.root).data(), sizeof got);
  const double n = static_cast<double>(plan.total_operands);
  const double bound =
      2.0 * n * std::numeric_limits<double>::epsilon() * magnitude;
  EXPECT_LE(std::abs(got - left_fold), bound);
}

// ---------------------------------------------------------------------------
// Wait policies and engine options
// ---------------------------------------------------------------------------

TEST(EngineWaitPolicy, AllModesProduceIdenticalResults) {
  const Params params{8, 4, 1, 2};
  const bcast::ReductionPlan plan = bcast::optimal_reduction(params, 0);
  const Program prog = compile_reduction(plan);
  std::mt19937 rng(5);
  const std::vector<Bytes> values =
      random_float_values(rng, params.P, 4096, DType::kF64);
  const Combiner typed{KernelSpec{Op::kSum, DType::kF64}};

  Bytes reference;
  for (const WaitPolicy policy :
       {WaitPolicy::spin(), WaitPolicy::adaptive(), WaitPolicy::park()}) {
    Engine::Options opts;
    opts.wait = policy;
    Engine engine(opts);
    const ExecReport report = engine.run(prog, values, typed);
    if (reference.empty()) {
      reference = report.folded_at(0);
    } else {
      EXPECT_EQ(report.folded_at(0), reference)
          << "mode=" << static_cast<int>(policy.mode);
    }
  }
}

TEST(EngineWaitPolicy, ParkModeCompletesUnderReliableDelivery) {
  // Parked workers must keep the heartbeat / failure detector live: a
  // fault-free run under acked delivery with parking enabled completes
  // without any rank being falsely declared dead.
  const Params params{8, 4, 1, 2};
  const bcast::ReductionPlan plan = bcast::optimal_reduction(params, 0);
  const Program prog = compile_reduction(plan);
  Engine::Options opts;
  opts.wait = WaitPolicy::park();
  opts.recovery.enabled = true;
  Engine engine(opts);

  std::vector<Bytes> values;
  std::uint64_t total = 0;
  for (int p = 0; p < params.P; ++p) {
    values.push_back(tu::of_u64(static_cast<std::uint64_t>(7 * p + 1)));
    total += static_cast<std::uint64_t>(7 * p + 1);
  }
  const Combiner typed{KernelSpec{Op::kSum, DType::kI64}};
  const ExecReport report = engine.run(prog, values, typed);
  EXPECT_EQ(tu::to_u64(report.folded_at(0)), total);
  EXPECT_EQ(report.retries, 0u);
}

TEST(EngineOptions, MailboxStatsOptOutReportsZeroOccupancy) {
  const Params params{8, 4, 1, 2};
  const bcast::ReductionPlan plan = bcast::optimal_reduction(params, 0);
  const Program prog = compile_reduction(plan);
  std::vector<Bytes> values;
  std::uint64_t total = 0;
  for (int p = 0; p < params.P; ++p) {
    values.push_back(tu::of_u64(static_cast<std::uint64_t>(p + 1)));
    total += static_cast<std::uint64_t>(p + 1);
  }

  Engine::Options opts;
  opts.mailbox_stats = false;
  Engine engine(opts);
  const ExecReport report = engine.run(prog, values, tu::add_u64());
  EXPECT_EQ(tu::to_u64(report.folded_at(0)), total);
  EXPECT_EQ(report.max_mailbox_occupancy, 0u);

  Engine tracked;
  const ExecReport tracked_report = tracked.run(prog, values, tu::add_u64());
  EXPECT_GE(tracked_report.max_mailbox_occupancy, 1u);
  EXPECT_LE(tracked_report.max_mailbox_occupancy,
            tracked_report.mailbox_capacity);
}

TEST(EngineKernels, MoveModeUsesArenaStaging) {
  const Params params{8, 4, 1, 2};
  const Schedule s = bcast::optimal_single_item(params);
  const Program prog = compile_broadcast(s);
  Engine engine;
  const std::vector<Bytes> items{tu::of_str("the-payload-under-test")};
  const ExecReport report = engine.run(prog, items);
  for (ProcId p = 0; p < params.P; ++p) {
    EXPECT_EQ(tu::to_str(report.item_at(p, 0)), "the-payload-under-test");
  }
  // One staged slot per processor (root seed + P-1 receive targets), each
  // rounded up to the arena's 64-byte alignment quantum.
  EXPECT_GE(report.arena_bytes,
            static_cast<std::size_t>(params.P) * items[0].size());
}

TEST(EngineKernels, BulkDrainAndAckedDeliveryAgreeOnChainedReceives) {
  // A stream of back-to-back receives on one link (Instr::chain > 1): the
  // fault-free run takes the bulk drain, the reliable run takes the
  // sequenced single-pop path.  Both must deliver identical items.  The
  // program is handcrafted so the receive chain is guaranteed and the send
  // graph is one-directional (reliable mode's synchronous acked sends need
  // a cycle-free rendezvous order).
  const Params params{2, 4, 1, 1};  // capacity ceil(L/g) = 4: sends can queue
  constexpr int kItems = 4;
  Program prog;
  prog.params = params;
  prog.mode = Mode::kMove;
  prog.label = "chain";
  prog.num_items = kItems;
  prog.num_messages = kItems;
  prog.links.push_back(Link{0, 1});
  prog.procs.resize(2);
  prog.procs[0].proc = 0;
  prog.procs[1].proc = 1;
  for (ItemId i = 0; i < kItems; ++i) {
    prog.initials.push_back(InitialPlacement{i, 0, 0});
    prog.procs[0].instrs.push_back(
        Instr{OpCode::kSend, 1, i, 0, 0, static_cast<Time>(i)});
    prog.procs[1].instrs.push_back(Instr{OpCode::kRecv, 0, i, 0, 0,
                                         static_cast<Time>(i + 4),
                                         kItems - i});
  }

  std::vector<Bytes> items;
  for (int i = 0; i < kItems; ++i) {
    items.push_back(tu::of_str("itm" + std::to_string(i) + "-payload"));
  }
  Engine fast;
  const ExecReport fast_run = fast.run(prog, items);

  Engine::Options opts;
  opts.recovery.enabled = true;
  Engine reliable(opts);
  const ExecReport reliable_run = reliable.run(prog, items);

  EXPECT_EQ(fast_run.items, reliable_run.items);
  for (ItemId i = 0; i < kItems; ++i) {
    EXPECT_EQ(fast_run.item_at(1, i), items[static_cast<std::size_t>(i)]);
  }
}

}  // namespace
}  // namespace logpc::exec
