#pragma once

#include "sum/summation_tree.hpp"
#include "validate/report.hpp"

/// \file lazy.hpp
/// Independent auditor for summation plans.
///
/// A plan is *lazy* (Section 5) when every processor packs its receptions
/// as late as possible before its send: reception j of k starts at
/// S - (o+1) - (k-j)g.  Lazy plans are exactly the ones whose reversal is a
/// broadcast schedule, so the auditor both re-checks the LogP rules on the
/// summation side and certifies the lazy property the optimality argument
/// rests on.

namespace logpc::sum {

/// Validates the plan: message timing consistency (a child's send arrives
/// exactly o+L before the parent's reception window), reception spacing g,
/// no overlapping busy cycles, non-negative local operand counts, correct
/// total, the lazy property, and that the root (and only the root) has
/// send_to == kNoProc with send_time == t.  Reuses the Violation vocabulary
/// of validate:: for reporting.
[[nodiscard]] validate::CheckResult check_plan(const SummationPlan& plan);

/// True iff check_plan(plan).ok().
[[nodiscard]] bool is_valid_plan(const SummationPlan& plan);

}  // namespace logpc::sum
