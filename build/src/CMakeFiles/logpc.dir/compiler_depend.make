# Empty compiler generated dependencies file for logpc.
# This may be replaced when dependencies are built.
