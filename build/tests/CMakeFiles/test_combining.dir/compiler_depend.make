# Empty compiler generated dependencies file for test_combining.
# This may be replaced when dependencies are built.
