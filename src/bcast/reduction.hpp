#pragma once

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <vector>

#include "bcast/tree.hpp"

/// \file reduction.hpp
/// All-to-one reduction (Section 4.2, first paragraph): "Reduction can be
/// viewed as 'all-to-one' broadcast ... and is thus solved optimally by
/// simply reversing the directions of messages in optimal broadcast."
///
/// Reversal of a valid LogP schedule is valid: send and receive overheads
/// swap roles, gaps are symmetric, and every message still spends exactly L
/// on the wire.  A broadcast completing at B(P) therefore yields a
/// reduction completing at B(P): node informed at label d in the broadcast
/// *sends its partial value* at B(P) - d - (L + 2o) so it lands at
/// B(P) - d; the root's last arrival lands at B(P).
///
/// This is pure message reduction (combining is free, as in Section 4.2);
/// for reductions whose combining consumes cycles use sum::optimal_summation,
/// which charges one cycle per addition (the L+1 reversal).

namespace logpc::bcast {

/// A reduction plan: who sends their partial value where, and when.
struct ReductionPlan {
  Params params;
  ProcId root = 0;
  Schedule schedule;   ///< all transmissions (single "item" 0)
  Time completion = 0; ///< == B(P; L, o, g)

  /// Arrival order at each processor (sender ids ordered by arrival time):
  /// the fold order execute_reduction applies.
  [[nodiscard]] std::vector<std::vector<ProcId>> arrival_order() const;
};

/// Builds the optimal reduction to `root`: the time reversal of the
/// optimal single-item broadcast.  Completion = B(P; L, o, g).
[[nodiscard]] ReductionPlan optimal_reduction(const Params& params,
                                              ProcId root = 0);

/// Replays the plan on concrete values with an associative, commutative
/// combine operator (the Section 4.2 setting).  values[p] is processor p's
/// initial value; returns the root's final value.
template <typename V>
V execute_reduction(const ReductionPlan& plan, std::vector<V> values,
                    const std::function<V(const V&, const V&)>& op) {
  if (values.size() != static_cast<std::size_t>(plan.params.P)) {
    throw std::invalid_argument("execute_reduction: wrong value count");
  }
  // Process transmissions in send-start order; a processor's value is
  // final when it sends (its own receptions all precede its send).
  std::vector<SendOp> sends = plan.schedule.sends();
  std::stable_sort(sends.begin(), sends.end(),
                   [](const SendOp& a, const SendOp& b) {
                     return a.start < b.start;
                   });
  for (const auto& m : sends) {
    auto& dst = values[static_cast<std::size_t>(m.to)];
    dst = op(dst, values[static_cast<std::size_t>(m.from)]);
  }
  return values[static_cast<std::size_t>(plan.root)];
}

}  // namespace logpc::bcast
