#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/plan_cache.hpp"
#include "tune/decision_table.hpp"

/// \file planner.hpp
/// The concurrent planning service: one facade in front of every schedule
/// producer in src/bcast, src/sum and src/baselines.
///
/// plan(key) resolves in three stages:
///   1. cache probe — a hit returns the shared immutable plan instantly;
///   2. in-flight dedup — if another thread is already building this key,
///      wait on its result instead of building again (exactly one builder
///      per key, however many threads ask);
///   3. build — route the key to its producer, publish to the cache, wake
///      the waiters.
///
/// Builder exceptions propagate to the building thread and every waiter;
/// nothing is cached, so a later request retries.
///
/// Telemetry (src/obs): every planner shares the process-wide dedup-wait
/// counter and the per-problem build-latency histograms
/// (`logpc_planner_build_latency_ns{problem=...}`), and registers callback
/// gauges republishing its cache's request/hit/miss/evict counters and
/// per-shard occupancy under a `planner="<id>"` label (unregistered on
/// destruction).  The warm hit path carries *zero* added telemetry work:
/// hit/miss counts are the cache's own shard counters, read only at export
/// time.  Spans, timers and counters run on the cold build path only.

namespace logpc::runtime {

class Planner {
 public:
  struct Options {
    std::size_t cache_capacity = 4096;
    std::size_t cache_shards = 8;
    /// Largest P for which an implicit-capable plan also materializes its
    /// per-op Schedule.  Past this, plan() stores the O(log P) implicit
    /// form alone (Plan::materialized == false) — the switch that makes
    /// million-rank planning feasible in time and cache memory.  Problems
    /// without an implicit form always materialize, whatever P.
    int materialize_threshold = 1 << 16;
  };

  Planner() : Planner(Options{}) {}
  explicit Planner(Options options);
  ~Planner();
  Planner(const Planner&) = delete;
  Planner& operator=(const Planner&) = delete;

  /// The plan for `key`, from cache or built on first use (see file
  /// comment for the concurrency contract).
  [[nodiscard]] PlanPtr plan(const PlanKey& key);

  /// Convenience: canonicalize and plan in one call (arguments as
  /// PlanKey::make, i.e. stated on the physical machine).
  [[nodiscard]] PlanPtr plan(Problem problem, const Params& params,
                             std::int64_t k = 1, ProcId root = 0);

  /// Installs (nullptr clears) the measured decision table
  /// (tune/decision_table.hpp) the tuned fast path consults.  Thread-safe
  /// against concurrent readers; a replaced table is parked until the
  /// planner is destroyed rather than freed, so the lock-free reader in
  /// tuned_key() never races a teardown — tables are a few hundred bytes
  /// and re-tuning happens O(1) times per process, so parking is cheaper
  /// than making every warm lookup pay for reclamation.
  void set_decision_table(std::shared_ptr<const tune::DecisionTable> table);
  [[nodiscard]] std::shared_ptr<const tune::DecisionTable> decision_table()
      const;

  /// The key the decision table selects for a `bytes`-sized `collective`
  /// on `params` from `root`: the tuned winner's family (segmented
  /// pipeline spelled as the kitem key, hierarchical rebuilt from the
  /// decision's recorded topology), or PlanKey::broadcast when no table is
  /// installed or the (collective, P) was never tuned.
  [[nodiscard]] PlanKey tuned_key(tune::Collective collective,
                                  const Params& params, std::size_t bytes,
                                  ProcId root = 0) const;

  /// plan(tuned_key(...)), memoized: the first resolution of each
  /// (table, collective, machine, root, size class) pays the key
  /// reconstruction and cache probe, every warm repeat is one atomic load
  /// plus a short immutable-list walk — cheaper than a plain plan() cache
  /// hit.  bench_tuning gates the warm overhead at < 5%.
  [[nodiscard]] PlanPtr plan_tuned(tune::Collective collective,
                                   const Params& params, std::size_t bytes,
                                   ProcId root = 0);

  /// Routes `key` to its schedule producer, bypassing cache and dedup: the
  /// one function that knows every builder.  Also the cold path the plan-
  /// cache bench measures.  The implicit generator is attached whenever
  /// ImplicitPlan::supports(key); with `materialize` false the per-op
  /// Schedule build is skipped entirely (O(log P) instead of O(P log P) —
  /// throws std::invalid_argument for keys with no implicit form).
  [[nodiscard]] static Plan build_uncached(const PlanKey& key,
                                           bool materialize = true);

  [[nodiscard]] PlanCache& cache() { return cache_; }
  [[nodiscard]] const PlanCache& cache() const { return cache_; }

  /// Builder invocations so far.  The concurrency tests assert this equals
  /// the number of distinct keys requested, however many threads raced.
  [[nodiscard]] std::uint64_t builds() const {
    return builds_.load(std::memory_order_relaxed);
  }

  /// The process-wide planner api::Communicator instances share by
  /// default, so every communicator on the same machine signature reuses
  /// one plan cache.
  [[nodiscard]] static const std::shared_ptr<Planner>& shared_default();

  /// The `planner="<id>"` label value this instance's cache gauges carry in
  /// the global metrics registry.
  [[nodiscard]] int telemetry_id() const { return telemetry_id_; }

 private:
  /// Rejects degenerate Options (zero capacity/shards/threshold) with
  /// std::invalid_argument instead of silently misbehaving; returns the
  /// options unchanged so the constructor can validate before any member
  /// that consumes them is built.
  static Options validated(const Options& options);

  void register_metrics();

  Options options_;
  PlanCache cache_;
  std::atomic<std::uint64_t> builds_{0};
  std::mutex inflight_mu_;
  std::unordered_map<PlanKey, std::shared_future<PlanPtr>, PlanKeyHash>
      inflight_;
  int telemetry_id_ = 0;
  obs::Counter* dedup_waits_ = nullptr;  ///< shared across planners
  /// Decision-table slot: readers take the raw view lock-free; owners (the
  /// current table plus every replaced one) live under table_mu_ until
  /// destruction (see set_decision_table).
  mutable std::mutex table_mu_;
  std::shared_ptr<const tune::DecisionTable> table_current_;
  std::vector<std::shared_ptr<const tune::DecisionTable>> table_retired_;
  std::atomic<const tune::DecisionTable*> table_view_{nullptr};
  /// Warm-path memo for plan_tuned: an append-only lock-free list of
  /// resolved bindings.  Nodes are immutable once published and freed only
  /// at planner destruction; entries for a replaced table simply stop
  /// matching (their table pointer stays valid — it is parked above).
  /// Growth is capped, so a workload cycling through many machines pays
  /// the slow path rather than growing the list without bound.
  struct TunedMemo {
    const tune::DecisionTable* table;
    tune::Collective collective;
    Params params;
    ProcId root;
    int size_class;
    PlanPtr plan;
    const TunedMemo* next;
  };
  static constexpr int kTunedMemoCap = 64;
  std::atomic<const TunedMemo*> tuned_memo_{nullptr};
  /// (name, labels) of the callback gauges to unregister on destruction.
  std::vector<std::pair<std::string, std::string>> callback_metrics_;
};

}  // namespace logpc::runtime
