#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"

/// \file prometheus.hpp
/// Prometheus text exposition format (version 0.0.4) for a MetricsRegistry
/// snapshot: what a /metrics endpoint would serve.  Counters end in their
/// registered name, histograms expand to the conventional `_bucket{le=...}`
/// (cumulative, with `+Inf`), `_sum` and `_count` series, and `# HELP` /
/// `# TYPE` headers are emitted once per metric family.

namespace logpc::obs {

/// Writes every metric in `registry` (callbacks evaluated now) to `os`.
void write_prometheus(const MetricsRegistry& registry, std::ostream& os);

/// The same exposition as a string.
[[nodiscard]] std::string prometheus_text(const MetricsRegistry& registry);

}  // namespace logpc::obs
