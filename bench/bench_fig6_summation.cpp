/// Experiment F6 - Figure 6: optimal summation with t = 28, P = 8, L = 5,
/// g = 4, o = 2.  Left: per-processor computation schedule (input-summing
/// chains interleaved with receptions); right: the communication tree (the
/// time reversal of the (L+1, o, g) optimal broadcast tree).

#include "bench_util.hpp"

#include "baselines/reduce_baselines.hpp"
#include "sum/executor.hpp"
#include "sum/lazy.hpp"
#include "validate/checker.hpp"
#include "viz/timeline.hpp"
#include "viz/tree_render.hpp"

namespace {

using namespace logpc;
using logpc::bench::Table;

void report() {
  const Params params{8, 5, 2, 4};
  const Time t = 28;
  logpc::bench::section("Figure 6 (right): reversed communication tree "
                        "(optimal broadcast tree on L+1=6, o=2, g=4)");
  const auto plan = sum::optimal_summation(params, t);
  std::cout << viz::render_tree(plan.reversed_tree);

  logpc::bench::section("Figure 6 (left): per-processor plan");
  Table procs({"proc", "send at", "to", "receptions (start of o+1 window)",
               "local operands"});
  for (const auto& pp : plan.procs) {
    std::string recvs;
    for (std::size_t j = 0; j < pp.recv_times.size(); ++j) {
      recvs += (recvs.empty() ? "" : " ") + std::to_string(pp.recv_times[j]) +
               "<-P" + std::to_string(pp.recv_from[j]);
    }
    procs.row("P" + std::to_string(pp.proc), pp.send_time,
              pp.send_to == kNoProc ? std::string("(root)")
                                    : "P" + std::to_string(pp.send_to),
              recvs, pp.local_operands(params.o));
  }
  procs.print();

  logpc::bench::section("communication timeline (sends/receives only)");
  std::cout << viz::render_timeline(plan.timing_view());

  logpc::bench::section("paper vs measured");
  Table chk({"quantity", "paper", "measured", "match"});
  chk.row("machine", "t=28 P=8 L=5 g=4 o=2", params.to_string() + " t=28",
          "yes");
  chk.row("processors used", 8, plan.procs.size(),
          logpc::bench::ok(plan.procs.size() == 8));
  chk.row("operands summed (Lemma 5.1)", 79, plan.total_operands,
          logpc::bench::ok(plan.total_operands == 79));
  chk.row("lazy plan valid", "-", sum::check_plan(plan).summary(),
          logpc::bench::ok(sum::is_valid_plan(plan)));
  const auto n = static_cast<long long>(plan.total_operands);
  const long long got = sum::execute_iota_sum(plan);
  chk.row("executed sum of 0..n-1", n * (n - 1) / 2, got,
          logpc::bench::ok(got == n * (n - 1) / 2));
  chk.print();

  logpc::bench::section("operand capacity n(t) vs baselines (same machine)");
  Table cmp({"t", "optimal", "binomial", "binary", "chain", "sequential"});
  for (const Time tt : {10, 16, 22, 28, 40, 60}) {
    cmp.row(tt, sum::max_operands(params, tt),
            baselines::binomial_summation(params, tt).total_operands,
            baselines::binary_tree_summation(params, tt).total_operands,
            baselines::chain_summation(params, tt).total_operands,
            baselines::sequential_summation(params, tt).total_operands);
  }
  cmp.print();
}

void BM_OptimalSummationPlan(benchmark::State& state) {
  const Params params{static_cast<int>(state.range(0)), 5, 2, 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sum::optimal_summation(params, 200));
  }
}
BENCHMARK(BM_OptimalSummationPlan)->Arg(8)->Arg(64)->Arg(512);

void BM_ExecuteSummation(benchmark::State& state) {
  const Params params{64, 5, 2, 4};
  const auto plan = sum::optimal_summation(params, 200);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sum::execute_iota_sum(plan));
  }
}
BENCHMARK(BM_ExecuteSummation);

}  // namespace

LOGPC_BENCH_MAIN(report)
