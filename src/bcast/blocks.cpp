#include "bcast/blocks.hpp"

#include <map>
#include <stdexcept>

namespace logpc::bcast {

namespace {

int posmod(Time x, int m) {
  const auto r = static_cast<int>(x % m);
  return r < 0 ? r + m : r;
}

}  // namespace

int BlockDigraph::in_weight(int v) const {
  int w = 0;
  for (const auto& e : edges) {
    if (e.to == v) w += e.weight;
  }
  return w;
}

int BlockDigraph::out_weight(int v) const {
  int w = 0;
  for (const auto& e : edges) {
    if (e.from == v) w += e.weight;
  }
  return w;
}

BlockDigraph block_digraph(const ContinuousPlan& plan, ItemId item) {
  if (item < 0) throw std::invalid_argument("block_digraph: item >= 0");
  BlockDigraph g;
  const int n = static_cast<int>(plan.blocks.size());
  g.receive_only_vertex = n;
  g.source_vertex = n + 1;
  for (const auto& b : plan.blocks) g.labels.push_back(b.r);
  g.labels.push_back(0);   // receive-only
  g.labels.push_back(-1);  // source

  // Map each processor to its vertex, and find the item's internal holders
  // (the processors whose reception of `item` is active).
  std::vector<int> vertex_of(static_cast<std::size_t>(plan.params.P), -1);
  std::vector<bool> active_receiver(static_cast<std::size_t>(plan.params.P),
                                    false);
  for (int b = 0; b < n; ++b) {
    const auto& block = plan.blocks[static_cast<std::size_t>(b)];
    for (const ProcId p : block.members) {
      vertex_of[static_cast<std::size_t>(p)] = b;
    }
    active_receiver[static_cast<std::size_t>(
        block.members[static_cast<std::size_t>(posmod(item, block.r))])] =
        true;
  }
  vertex_of[static_cast<std::size_t>(plan.receive_only)] =
      g.receive_only_vertex;
  vertex_of[static_cast<std::size_t>(plan.source)] = g.source_vertex;

  // Re-derive the item's transmissions from the plan and aggregate by
  // (from-vertex, to-vertex, active).
  const Schedule sched = emit_k_items(plan, item + 1);
  std::map<std::tuple<int, int, bool>, int> agg;
  for (const auto& op : sched.sends()) {
    if (op.item != item) continue;
    const int fv = vertex_of[static_cast<std::size_t>(op.from)];
    const int tv = vertex_of[static_cast<std::size_t>(op.to)];
    const bool active = active_receiver[static_cast<std::size_t>(op.to)];
    ++agg[{fv, tv, active}];
  }
  for (const auto& [key, weight] : agg) {
    const auto& [fv, tv, active] = key;
    g.edges.push_back(BlockDigraph::Edge{fv, tv, weight, active});
  }
  return g;
}

bool digraph_invariants_hold(const BlockDigraph& g) {
  for (int v = 0; v < static_cast<int>(g.labels.size()); ++v) {
    const int label = g.labels[static_cast<std::size_t>(v)];
    if (label > 0) {
      if (g.in_weight(v) != label) return false;
      if (g.out_weight(v) != label) return false;
    } else if (label == 0) {
      if (g.in_weight(v) != 1 || g.out_weight(v) != 0) return false;
    } else {
      if (g.in_weight(v) != 0 || g.out_weight(v) != 1) return false;
    }
  }
  // Exactly one active transmission into each block (its internal copy) and
  // one out of the source.
  int source_active = 0;
  for (const auto& e : g.edges) {
    if (e.from == g.source_vertex && e.active) source_active += e.weight;
  }
  // With no blocks (P - 1 = 1) the source feeds the receive-only processor
  // directly and the active/inactive distinction is vacuous.
  return g.labels.size() <= 2 || source_active == 1;
}

}  // namespace logpc::bcast
