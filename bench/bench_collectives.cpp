/// The downstream view: the Communicator facade's exact cycle predictions
/// across machine scales - the table an MPI tuning layer would consult.
/// Shape check: every collective's cost curve follows its closed form
/// (log-ish for tree collectives, linear in P for scatter/alltoall).

#include "bench_util.hpp"

#include "api/communicator.hpp"
#include "sched/stats.hpp"
#include "validate/checker.hpp"

namespace {

using namespace logpc;
using logpc::bench::Table;

void report() {
  logpc::bench::section("collective cost table (L=8, o=1, g=4), cycles");
  Table t({"P", "bcast", "reduce", "allreduce*", "scatter", "gather",
           "alltoall", "bcast_k(8)", "buffered_k(8)"});
  for (const int P : {2, 4, 8, 16, 32, 64, 128, 256}) {
    const api::Communicator comm(Params{P, 8, 1, 4});
    t.row(P, comm.bcast_time(), comm.reduce_time(), comm.allreduce_time(),
          comm.scatter_time(), comm.gather_time(), comm.alltoall_time(),
          comm.bcast_k(8).completion, comm.bcast_k_buffered(8).completion);
  }
  t.print();
  std::cout << "(* allreduce in the postal projection; equals reduce time\n"
               "   there - half of reduce+broadcast)\n";

  logpc::bench::section("machine sensitivity: bcast(64) across parameters");
  Table m({"machine", "bcast", "alltoall", "winner for 64-proc sync"});
  for (const Params params :
       {Params{64, 2, 1, 2}, Params{64, 8, 1, 4}, Params{64, 32, 2, 4},
        Params{64, 8, 8, 8}, Params{64, 1, 0, 1}}) {
    const api::Communicator comm(params);
    const Time b = comm.bcast_time();
    const Time a = comm.alltoall_time();
    m.row(params.to_string(), b, a, b <= a ? "tree bcast" : "alltoall");
  }
  m.print();

  logpc::bench::section("schedule shapes (P=32, L=8, o=1, g=4)");
  const api::Communicator comm(Params{32, 8, 1, 4});
  Table s({"collective", "messages", "peak in flight", "max sends/proc",
           "valid"});
  struct Row {
    const char* name;
    Schedule sched;
    bool duplex;
  };
  for (auto& row : {Row{"bcast", comm.bcast(), false},
                    Row{"scatter", comm.scatter(), false},
                    Row{"gather", comm.gather(), false},
                    Row{"alltoall", comm.alltoall(), true},
                    Row{"reduce", comm.reduce().schedule, false}}) {
    const auto st = schedule_stats(row.sched);
    const auto verdict = validate::check(
        row.sched, {.forbid_duplicate_receive = false,
                    .require_complete = false,
                    .allow_duplex_overhead = row.duplex});
    s.row(row.name, st.messages, st.peak_in_flight, st.max_sends_per_proc,
          logpc::bench::ok(verdict.ok()));
  }
  s.print();
}

void BM_CommunicatorBcastPlan(benchmark::State& state) {
  const api::Communicator comm(
      Params{static_cast<int>(state.range(0)), 8, 1, 4});
  for (auto _ : state) {
    benchmark::DoNotOptimize(comm.bcast());
  }
}
BENCHMARK(BM_CommunicatorBcastPlan)->Arg(64)->Arg(1024);

void BM_CommunicatorAlltoallPlan(benchmark::State& state) {
  const api::Communicator comm(
      Params{static_cast<int>(state.range(0)), 8, 1, 4});
  for (auto _ : state) {
    benchmark::DoNotOptimize(comm.alltoall());
  }
}
BENCHMARK(BM_CommunicatorAlltoallPlan)->Arg(64)->Arg(256);

}  // namespace

LOGPC_BENCH_MAIN(report)
