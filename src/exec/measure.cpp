#include "exec/measure.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>
#include <vector>

namespace logpc::exec {

sim::MeasuredParams MeasuredLogP::as_measured_params(
    double ns_per_cycle, const Params& machine) const {
  sim::MeasuredParams m;
  m.P = machine.P;
  if (ns_per_cycle <= 0) {
    m.L = 1;
    m.o = 0;
    m.g = 1;
    return m;
  }
  const auto cycles = [ns_per_cycle](double ns, Time floor_at) {
    return std::max(floor_at,
                    static_cast<Time>(std::llround(ns / ns_per_cycle)));
  };
  m.L = cycles(L_ns, 1);
  m.o = cycles(o_ns, 0);
  m.g = cycles(g_ns, 1);
  return m;
}

namespace {

/// One class's running sums; finalized into a MeasuredLogP.
struct FitAccum {
  double latency_sum = 0;
  double overhead_sum = 0;
  double gap_sum = 0;
  MeasuredLogP fit;

  [[nodiscard]] MeasuredLogP finalize() const {
    MeasuredLogP out = fit;
    if (out.latency_samples > 0) {
      out.L_ns = latency_sum / static_cast<double>(out.latency_samples);
    }
    if (out.overhead_samples > 0) {
      out.o_ns = overhead_sum / static_cast<double>(out.overhead_samples);
    }
    if (out.gap_samples > 0) {
      out.g_ns = gap_sum / static_cast<double>(out.gap_samples);
    }
    // The model requires g >= the per-message port occupancy.
    out.g_ns = std::max(out.g_ns, out.o_ns);
    return out;
  }
};

/// The one accumulation loop behind both fits.  `classify(from, to)` maps
/// each directed link to an accumulator index; the flat fit passes a
/// single-class classifier.
template <typename Classify>
void accumulate(const ExecReport& report, Classify&& classify,
                std::vector<FitAccum>& accums) {
  // Per-link FIFO matching: the i-th push on a link pairs with the i-th
  // pop, so wire latency is recv.xfer - send.xfer of the matched pair.
  std::map<std::pair<ProcId, ProcId>, std::vector<std::uint64_t>> pushes;
  for (std::size_t p = 0; p < report.events.size(); ++p) {
    for (const ExecEvent& ev : report.events[p]) {
      if (ev.kind == ExecEvent::Kind::kSend) {
        pushes[{static_cast<ProcId>(p), ev.peer}].push_back(ev.xfer_ns);
      }
    }
  }
  std::map<std::pair<ProcId, ProcId>, std::size_t> popped;
  for (std::size_t p = 0; p < report.events.size(); ++p) {
    const auto self = static_cast<ProcId>(p);
    std::uint64_t prev_send_start = 0;
    std::size_t prev_send_class = 0;
    bool have_prev_send = false;
    for (const ExecEvent& ev : report.events[p]) {
      if (ev.kind == ExecEvent::Kind::kRecv) {
        FitAccum& acc = accums[classify(ev.peer, self)];
        // Receive overhead: payload-arrived to folded/stored.
        acc.overhead_sum += static_cast<double>(ev.end_ns - ev.xfer_ns);
        ++acc.fit.overhead_samples;
        const auto link = std::make_pair(ev.peer, self);
        auto it = pushes.find(link);
        if (it != pushes.end()) {
          const std::size_t i = popped[link]++;
          if (i < it->second.size() && ev.xfer_ns >= it->second[i]) {
            acc.latency_sum +=
                static_cast<double>(ev.xfer_ns - it->second[i]);
            ++acc.fit.latency_samples;
          }
        }
      } else {
        const std::size_t cls = classify(self, ev.peer);
        FitAccum& acc = accums[cls];
        // Send overhead: op begin to push accepted (includes backpressure
        // stalls, exactly as a saturated LogP port would charge them).
        acc.overhead_sum += static_cast<double>(ev.xfer_ns - ev.start_ns);
        ++acc.fit.overhead_samples;
        if (have_prev_send) {
          // The spacing measures the *earlier* send's port occupancy, so
          // the gap sample belongs to that send's class.
          FitAccum& prev = accums[prev_send_class];
          prev.gap_sum += static_cast<double>(ev.start_ns - prev_send_start);
          ++prev.fit.gap_samples;
        }
        prev_send_start = ev.start_ns;
        prev_send_class = cls;
        have_prev_send = true;
      }
    }
  }
}

}  // namespace

MeasuredLogP measure(const ExecReport& report) {
  std::vector<FitAccum> accums(1);
  accumulate(report, [](ProcId, ProcId) { return std::size_t{0}; }, accums);
  return accums[0].finalize();
}

MeasuredHierLogP measure(const ExecReport& report, const HierParams& topo) {
  topo.require_valid();
  std::vector<FitAccum> accums(2);
  accumulate(report,
             [&topo](ProcId from, ProcId to) {
               return topo.same_cluster(from, to) ? std::size_t{0}
                                                  : std::size_t{1};
             },
             accums);
  MeasuredHierLogP out;
  out.intra = accums[0].finalize();
  out.cross = accums[1].finalize();
  return out;
}

HierParams MeasuredHierLogP::as_hier_params(double ns_per_cycle,
                                            const HierParams& topo) const {
  HierParams h = topo;
  const auto any_samples = [](const MeasuredLogP& m) {
    return m.latency_samples + m.overhead_samples + m.gap_samples > 0;
  };
  if (any_samples(intra)) {
    h.intra = intra.as_measured_params(ns_per_cycle, topo.intra).as_params();
  }
  if (any_samples(cross)) {
    h.cross = cross.as_measured_params(ns_per_cycle, topo.cross).as_params();
  }
  return h;
}

double fitted_ns_per_cycle(const ExecReport& report) {
  if (report.predicted_makespan <= 0) return 0;
  return static_cast<double>(report.wall_ns) /
         static_cast<double>(report.predicted_makespan);
}

}  // namespace logpc::exec
