/// Collective planner: the downstream use-case the paper enabled - an MPI-
/// style library choosing its collective algorithm from measured machine
/// parameters.  Given (P, L, o, g) and a message count, the planner prices
/// every strategy in cycles and picks the winner per collective:
///
///   broadcast(1)   optimal LogP tree vs binomial / binary / chain / flat
///   broadcast(k)   block-cyclic pipeline vs serialized vs pipelined trees
///   reduce         reversed optimal tree (Section 5)
///   allreduce      combining broadcast (Theorem 4.1) vs reduce+bcast
///   alltoall       the rotation schedule (Section 4.1)
///
/// Every price is obtained through the planning runtime (src/runtime): the
/// strategies are PlanKeys — optimal constructions and baselines alike —
/// resolved by a shared runtime::Planner, so each schedule is built once,
/// cached, and the cache statistics are printed at the end.  Postal-model
/// strategies (Section 3, Theorem 4.1, the pipelined baselines) need no
/// explicit L' = L + 2o projection here: PlanKey canonicalization applies
/// it when the key is made.
///
///   ./collective_planner [P] [L] [o] [g] [k]

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/kitem_baselines.hpp"
#include "bcast/tree.hpp"
#include "runtime/planner.hpp"

namespace {

using namespace logpc;
using runtime::PlanKey;
using runtime::Problem;

struct Option {
  std::string name;
  Time cycles;
};

void pick(const std::string& collective, std::vector<Option> options) {
  std::sort(options.begin(), options.end(),
            [](const Option& a, const Option& b) {
              return a.cycles < b.cycles;
            });
  std::cout << collective << ":\n";
  for (std::size_t i = 0; i < options.size(); ++i) {
    std::cout << (i == 0 ? "  -> " : "     ") << std::left << std::setw(28)
              << options[i].name << std::right << std::setw(8)
              << options[i].cycles << " cycles\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  Params params{16, 8, 1, 4};
  int k = 8;
  if (argc >= 2) params.P = std::atoi(argv[1]);
  if (argc >= 3) params.L = std::atol(argv[2]);
  if (argc >= 4) params.o = std::atol(argv[3]);
  if (argc >= 5) params.g = std::atol(argv[4]);
  if (argc >= 6) k = std::atoi(argv[5]);
  params.require_valid();
  std::cout << "planning collectives for " << params << ", k = " << k
            << " items\n\n";

  runtime::Planner planner;
  // Price one strategy = resolve its PlanKey and read the completion time.
  // The full schedule rides along in the cache for whoever executes it.
  const auto price = [&](Problem problem, std::int64_t items = 1) {
    return planner.plan(problem, params, items, /*root=*/0)->completion;
  };

  // --- single-item broadcast -------------------------------------------
  pick("broadcast (1 item)",
       {{"LogP-optimal tree", price(Problem::kBroadcast)},
        {"binomial tree", price(Problem::kBinomialBroadcast)},
        {"binary tree", price(Problem::kBinaryBroadcast)},
        {"chain", price(Problem::kChainBroadcast)},
        {"flat", price(Problem::kFlatBroadcast)}});

  // --- k-item broadcast (postal pricing: L' = L + 2o, g normalized) ------
  // The Section 3 algorithms are stated in the postal model; their keys
  // carry the effective per-hop latency L + 2o.
  const Time Lp = params.transfer_time();
  pick("broadcast (" + std::to_string(k) + " items, postal pricing)",
       {{"block-cyclic pipeline", price(Problem::kKItemBroadcast, k)},
        {"buffered (Thm 3.8)", price(Problem::kBufferedKItemBroadcast, k)},
        {"serialized optimal", price(Problem::kSerializedKItem, k)},
        {"pipelined binary", price(Problem::kPipelinedBinaryKItem, k)},
        {"pipelined chain", price(Problem::kPipelinedChainKItem, k)},
        {"Bar-Noy/Kipnis (stated)",
         baselines::bnk_stated_time(params.P, Lp, k)}});

  // --- reduction ---------------------------------------------------------
  {
    std::vector<Option> options{
        {"reversed optimal tree", price(Problem::kReduce)}};
    if (params.g >= params.o + 1) {
      // One operand per processor; Section 5 requires g >= o + 1.
      options.push_back(
          {"summation schedule (Sec 5)",
           price(Problem::kSummation, params.P)});
    }
    pick("reduce (one value per processor)", std::move(options));
  }

  // --- allreduce ----------------------------------------------------------
  const Time combine_T = price(Problem::kAllReduce);
  pick("allreduce (postal pricing)",
       {{"combining broadcast (Thm 4.1)", combine_T},
        {"reduce + broadcast", 2 * combine_T}});

  // --- all-to-all ----------------------------------------------------------
  pick("alltoall",
       {{"rotation schedule (Sec 4.1)", price(Problem::kAllToAll)},
        {"naive P broadcasts",
         static_cast<Time>(params.P) * bcast::B_of_P(params, params.P)}});

  // A second pass over the same machine is free: every key hits the cache.
  for (const Problem p :
       {Problem::kBroadcast, Problem::kKItemBroadcast, Problem::kAllReduce}) {
    (void)price(p, p == Problem::kKItemBroadcast ? k : 1);
  }
  const runtime::CacheStats stats = planner.cache().stats();
  std::cout << "\nplan cache: " << stats.entries << " plans, "
            << planner.builds() << " builds, " << stats.hits << " hits\n";

  std::cout << "\n(the optimal entries are exact LogP cycle counts from the\n"
            << " constructions in this library; baselines are priced on the\n"
            << " same rules)\n";
  return 0;
}
