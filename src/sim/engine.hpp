#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sched/schedule.hpp"
#include "sim/program.hpp"

/// \file engine.hpp
/// Discrete-event simulator of a LogP machine executing reactive programs.
///
/// The engine realizes the paper's synchronous timing assumptions: every
/// message incurs the full latency L, sends cost o at the sender and o at
/// the receiver, and successive sends (receives) at one processor are at
/// least g apart.  Its output is an ordinary Schedule, so the independent
/// validator can audit exactly what the simulated machine did — the tests
/// close the loop engine -> schedule -> checker.

namespace logpc::sim {

/// Result of a simulation run.
struct RunResult {
  Schedule schedule;           ///< every transmission the machine performed
  Time makespan = 0;           ///< last cycle any item became available
  std::size_t messages = 0;    ///< total transmissions
  bool horizon_reached = false;  ///< true if stopped by the time horizon
};

/// A LogP machine instance: install one Program per processor, place initial
/// items, run.
class Engine {
 public:
  Engine(Params params, int num_items);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] const Params& params() const;

  /// Installs the program for processor `p` (default: inert program).
  void set_program(ProcId p, std::unique_ptr<Program> program);

  /// Installs programs for all processors from a factory.
  void set_programs(
      const std::function<std::unique_ptr<Program>(ProcId)>& factory);

  /// Makes `item` available at `proc` from cycle `time` (delivered to the
  /// program as an on_item event).
  void place(ItemId item, ProcId proc, Time time = 0);

  /// Runs until no events remain or `horizon` is passed (kNever = no limit).
  /// May be called once per engine.
  RunResult run(Time horizon = kNever);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace logpc::sim
