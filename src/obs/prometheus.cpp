#include "obs/prometheus.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>

namespace logpc::obs {

namespace {

/// A double in the exposition format: integral values without a fraction
/// (counters read naturally), "+Inf" spelled Prometheus-style.
std::string number(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

/// `name{labels}` or just `name`; `extra` label appended when non-empty.
std::string series(const std::string& name, const std::string& labels,
                   const std::string& extra = "") {
  std::string body = labels;
  if (!extra.empty()) body += body.empty() ? extra : ("," + extra);
  return body.empty() ? name : name + "{" + body + "}";
}

/// HELP text with newlines/backslashes escaped per the exposition format.
std::string escape_help(const std::string& help) {
  std::string out;
  for (const char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string label_pair(const std::string& name, const std::string& value) {
  return name + "=\"" + escape_label_value(value) + "\"";
}

void write_prometheus(const MetricsRegistry& registry, std::ostream& os) {
  std::string last_family;
  for (const MetricSnapshot& m : registry.snapshot()) {
    // One HELP/TYPE header per family; snapshot() is name-sorted, so label
    // variants of a family arrive consecutively.
    if (m.name != last_family) {
      last_family = m.name;
      if (!m.help.empty()) {
        os << "# HELP " << m.name << " " << escape_help(m.help) << "\n";
      }
      os << "# TYPE " << m.name << " ";
      switch (m.kind) {
        case MetricSnapshot::Kind::kCounter: os << "counter"; break;
        case MetricSnapshot::Kind::kGauge: os << "gauge"; break;
        case MetricSnapshot::Kind::kHistogram: os << "histogram"; break;
      }
      os << "\n";
    }
    if (m.kind != MetricSnapshot::Kind::kHistogram) {
      os << series(m.name, m.labels) << " " << number(m.value) << "\n";
      continue;
    }
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < m.bucket_counts.size(); ++i) {
      cumulative += m.bucket_counts[i];
      const double bound = i < m.bounds.size()
                               ? m.bounds[i]
                               : std::numeric_limits<double>::infinity();
      os << series(m.name + "_bucket", m.labels,
                   "le=\"" + number(bound) + "\"")
         << " " << cumulative << "\n";
    }
    os << series(m.name + "_sum", m.labels) << " " << number(m.sum) << "\n";
    os << series(m.name + "_count", m.labels) << " " << m.count << "\n";
  }
}

std::string prometheus_text(const MetricsRegistry& registry) {
  std::ostringstream os;
  write_prometheus(registry, os);
  return os.str();
}

}  // namespace logpc::obs
