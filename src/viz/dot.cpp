#include "viz/dot.hpp"

#include <sstream>

namespace logpc::viz {

std::string tree_to_dot(const bcast::BroadcastTree& tree,
                        const std::string& name) {
  std::ostringstream os;
  os << "digraph " << name << " {\n";
  os << "  rankdir=TB;\n  node [shape=circle, fontsize=10];\n";
  for (int i = 0; i < tree.size(); ++i) {
    os << "  n" << i << " [label=\"P" << i << "\\n@" << tree.node(i).label
       << "\"";
    if (i == 0) os << ", style=bold";
    os << "];\n";
  }
  for (int i = 1; i < tree.size(); ++i) {
    os << "  n" << tree.node(i).parent << " -> n" << i << ";\n";
  }
  os << "}\n";
  return os.str();
}

std::string digraph_to_dot(const bcast::BlockDigraph& g,
                           const std::string& name) {
  std::ostringstream os;
  os << "digraph " << name << " {\n";
  os << "  node [shape=box, fontsize=10];\n";
  for (int v = 0; v < static_cast<int>(g.labels.size()); ++v) {
    const int label = g.labels[static_cast<std::size_t>(v)];
    os << "  v" << v << " [label=\"";
    if (label < 0) {
      os << "source\", shape=diamond";
    } else {
      os << "[" << label << "]\"";
    }
    os << "];\n";
  }
  for (const auto& e : g.edges) {
    os << "  v" << e.from << " -> v" << e.to << " [label=\"" << e.weight
       << "\"";
    if (e.active) os << ", style=bold";
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace logpc::viz
