#include "sim/engine.hpp"

#include <algorithm>
#include <deque>
#include <queue>
#include <stdexcept>
#include <tuple>

#include "sim/message.hpp"

namespace logpc::sim {

namespace {

enum class EventKind : int {
  kAvailability = 0,  // an item becomes available at a processor
  kTrySend = 1,       // a processor's send port may be free
};

struct Event {
  Time time;
  EventKind kind;
  ProcId proc;
  ItemId item;   // kAvailability only
  std::uint64_t seq;  // FIFO tie-break for determinism

  bool operator>(const Event& other) const {
    return std::tie(time, kind, seq) > std::tie(other.time, other.kind, other.seq);
  }
};

struct PendingSend {
  ProcId to;
  ItemId item;
};

struct ProcState {
  std::unique_ptr<Program> program;
  std::vector<Time> item_available;  // kNever if not held
  std::deque<PendingSend> pending;
  Time next_send_ok = 0;      // earliest legal next send start (gap g)
  std::vector<Time> recv_starts;  // committed receive-overhead starts
  bool started = false;
  bool try_send_queued = false;
};

}  // namespace

struct Engine::Impl : Context {
  Params prm;
  int num_items;
  std::vector<ProcState> procs;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::uint64_t seq = 0;
  Schedule schedule;
  Time now_time = 0;
  ProcId current = kNoProc;
  bool ran = false;

  Impl(Params p, int k)
      : prm(p), num_items(k), schedule(p, k) {
    p.require_valid();
    if (k < 1) throw std::invalid_argument("Engine: num_items >= 1");
    procs.resize(static_cast<std::size_t>(p.P));
    for (auto& ps : procs) {
      ps.item_available.assign(static_cast<std::size_t>(k), kNever);
    }
  }

  ProcState& proc(ProcId p) { return procs[static_cast<std::size_t>(p)]; }

  // --- Context interface (valid only inside a program callback) ---
  [[nodiscard]] const Params& params() const override { return prm; }
  [[nodiscard]] ProcId self() const override { return current; }
  [[nodiscard]] Time now() const override { return now_time; }
  [[nodiscard]] bool has(ItemId item) const override {
    return procs[static_cast<std::size_t>(current)]
               .item_available[static_cast<std::size_t>(item)] <= now_time;
  }
  void send(ProcId to, ItemId item) override {
    if (to < 0 || to >= prm.P || to == current) {
      throw std::logic_error("Engine: bad send target");
    }
    if (item < 0 || item >= num_items) {
      throw std::logic_error("Engine: bad send item");
    }
    auto& ps = proc(current);
    ps.pending.push_back(PendingSend{to, item});
    queue_try_send(current, std::max(now_time, ps.next_send_ok));
  }
  // ---------------------------------------------------------------

  void push(Time t, EventKind kind, ProcId p, ItemId item = 0) {
    events.push(Event{t, kind, p, item, seq++});
  }

  void queue_try_send(ProcId p, Time t) {
    auto& ps = proc(p);
    if (!ps.try_send_queued) {
      ps.try_send_queued = true;
      push(t, EventKind::kTrySend, p);
    }
  }

  void deliver(ProcId p, ItemId item) {
    auto& ps = proc(p);
    current = p;
    if (!ps.started) {
      ps.started = true;
      if (ps.program) ps.program->on_start(*this);
    }
    if (ps.program) ps.program->on_item(*this, item);
    current = kNoProc;
  }

  // Earliest cycle >= t at which processor p may begin a send overhead:
  // after next_send_ok and (when o > 0) clear of committed receive
  // overheads.
  Time earliest_send(ProcId p, Time t) {
    auto& ps = proc(p);
    t = std::max(t, ps.next_send_ok);
    if (prm.o > 0) {
      bool moved = true;
      while (moved) {
        moved = false;
        for (const Time r : ps.recv_starts) {
          if (t < r + prm.o && r < t + prm.o) {
            t = r + prm.o;
            moved = true;
          }
        }
      }
    }
    return t;
  }

  void handle_try_send(ProcId p) {
    auto& ps = proc(p);
    ps.try_send_queued = false;
    if (ps.pending.empty()) return;
    const Time start = earliest_send(p, now_time);
    if (start > now_time) {
      queue_try_send(p, start);
      return;
    }
    const PendingSend req = ps.pending.front();
    if (ps.item_available[static_cast<std::size_t>(req.item)] > now_time) {
      throw std::logic_error("Engine: program sent an item it does not hold");
    }
    ps.pending.pop_front();
    ps.next_send_ok = now_time + prm.g;
    const Time recv = now_time + prm.o + prm.L;
    schedule.add_send(SendOp{now_time, p, req.to, req.item, kNever});
    auto& dst = proc(req.to);
    dst.recv_starts.push_back(recv);
    const Time avail = recv + prm.o;
    Time& have = dst.item_available[static_cast<std::size_t>(req.item)];
    if (avail < have) {
      have = avail;
      push(avail, EventKind::kAvailability, req.to, req.item);
    }
    if (!ps.pending.empty()) queue_try_send(p, ps.next_send_ok);
  }

  RunResult run(Time horizon) {
    if (ran) throw std::logic_error("Engine::run called twice");
    ran = true;
    RunResult result{};
    while (!events.empty()) {
      const Event ev = events.top();
      if (horizon != kNever && ev.time > horizon) {
        result.horizon_reached = true;
        break;
      }
      events.pop();
      now_time = ev.time;
      switch (ev.kind) {
        case EventKind::kAvailability:
          deliver(ev.proc, ev.item);
          break;
        case EventKind::kTrySend:
          handle_try_send(ev.proc);
          break;
      }
    }
    schedule.sort();
    result.schedule = std::move(schedule);
    result.makespan = result.schedule.makespan();
    result.messages = result.schedule.sends().size();
    return result;
  }
};

Engine::Engine(Params params, int num_items)
    : impl_(std::make_unique<Impl>(params, num_items)) {}

Engine::~Engine() = default;

const Params& Engine::params() const { return impl_->prm; }

void Engine::set_program(ProcId p, std::unique_ptr<Program> program) {
  if (p < 0 || p >= impl_->prm.P) {
    throw std::invalid_argument("Engine::set_program: bad processor");
  }
  impl_->proc(p).program = std::move(program);
}

void Engine::set_programs(
    const std::function<std::unique_ptr<Program>(ProcId)>& factory) {
  for (ProcId p = 0; p < impl_->prm.P; ++p) {
    set_program(p, factory(p));
  }
}

void Engine::place(ItemId item, ProcId proc, Time time) {
  if (proc < 0 || proc >= impl_->prm.P) {
    throw std::invalid_argument("Engine::place: bad processor");
  }
  if (item < 0 || item >= impl_->num_items) {
    throw std::invalid_argument("Engine::place: bad item");
  }
  impl_->schedule.add_initial(item, proc, time);
  Time& have =
      impl_->proc(proc).item_available[static_cast<std::size_t>(item)];
  if (time < have) {
    have = time;
    impl_->push(time, EventKind::kAvailability, proc, item);
  }
}

RunResult Engine::run(Time horizon) { return impl_->run(horizon); }

}  // namespace logpc::sim
