#pragma once

#include <vector>

#include "bcast/tree.hpp"

/// \file summation_tree.hpp
/// Section 5: optimal summation of n operands on a LogP machine.
///
/// A *lazy* summation algorithm (receptions packed as late as possible
/// before the send) corresponds one-to-one with a broadcast algorithm on a
/// machine with latency L+1: reverse the direction and timing of every
/// message (a send at time S becomes a reception at t-S).  The paper shows
/// the communication pattern of optimal summation is the time reversal of
/// the optimal single-item broadcast tree on (L+1, o, g).
///
/// Lemma 5.1 (per-processor form): a processor that sends at time S_i after
/// k_i receptions performs S_i - (o+1)k_i input-summing additions and hence
/// contributes S_i - (o+1)k_i + 1 local operands; every reception costs
/// o + 1 cycles (receive overhead plus one addition).  Maximizing the total
/// means minimizing sum(t - S_i) - i.e. picking the P smallest labels of
/// the universal broadcast tree for (L+1, o, g).
///
/// Requires g >= o + 1, the regime the paper's schedule shape assumes (each
/// reception's o+1 cycles fit in one gap; Figure 6 uses g=4, o=2).

namespace logpc::sum {

using bcast::BroadcastTree;

/// One processor's role in an optimal summation.
struct ProcPlan {
  ProcId proc = kNoProc;
  Time send_time = kNever;  ///< S_i; the root "sends" at t (its final add ends there)
  ProcId send_to = kNoProc; ///< parent processor (kNoProc for the root)
  /// Reception start times, ascending; reception j is followed by one
  /// addition, so it occupies [r, r+o+1).
  std::vector<Time> recv_times;
  /// Processors whose partial sums arrive here, aligned with recv_times.
  std::vector<ProcId> recv_from;
  /// Number of local input operands this processor sums directly:
  /// S_i - (o+1)*k_i + 1.
  [[nodiscard]] Count local_operands(Time o) const {
    return static_cast<Count>(send_time -
                              (o + 1) * static_cast<Time>(recv_times.size())) +
           1;
  }
};

/// A complete optimal summation plan for deadline t.
struct SummationPlan {
  Params params;
  Time t = 0;               ///< deadline: the total sum exists at `root` at t
  ProcId root = 0;
  Count total_operands = 0; ///< n: operands summed by deadline t
  std::vector<ProcPlan> procs;       ///< one per participating processor
  BroadcastTree reversed_tree;       ///< the (L+1, o, g) broadcast tree used

  /// The communication as a standard Schedule (single "item" = the partial
  /// sums; duplicate-receive/complete checks do not apply) for timing
  /// validation: each non-root sends once at its S_i.
  [[nodiscard]] Schedule timing_view() const;
};

/// Reverses ANY broadcast tree built on (L+1, o, g) with makespan <= t into
/// a lazy summation plan on `params` finishing at t: the node informed at
/// label d sends its partial sum at t - d.  This is the paper's reversal
/// argument made executable; optimal_summation applies it to the optimal
/// tree, the baselines in src/baselines apply it to theirs.
[[nodiscard]] SummationPlan plan_from_tree(const Params& params,
                                           const BroadcastTree& tree, Time t);

/// Builds the optimal plan: the maximum-operand summation finishing by
/// cycle t on `params` (uses at most params.P processors; fewer when the
/// (L+1,o,g) broadcast tree has fewer than P nodes with label <= t).
/// Requires params.g >= params.o + 1 and t >= 0.
[[nodiscard]] SummationPlan optimal_summation(const Params& params, Time t);

/// The latency-shifted machine whose broadcast trees correspond to lazy
/// summations on `params` (L+1, same o, g, P).
[[nodiscard]] Params reversal_params(const Params& params);

/// Maximum number of operands summable in t cycles (Lemma 5.1 applied to
/// the optimal plan).
[[nodiscard]] Count max_operands(const Params& params, Time t);

/// Minimum t with max_operands(params, t) >= n (binary search on the
/// monotone max_operands).
[[nodiscard]] Time min_time_for_operands(const Params& params, Count n);

}  // namespace logpc::sum
