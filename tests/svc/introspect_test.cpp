#include "svc/introspect.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

#include "../support/http_client.hpp"
#include "../support/json_validator.hpp"
#include "svc/service.hpp"

/// Live-socket tests of the introspection endpoint: a real
/// CollectiveService bound to an ephemeral loopback port (introspect_port
/// = 0), exercised through actual HTTP GETs.  Routing corner cases (404,
/// 405, query strings) go through the same server; response bodies are
/// validated structurally, not just grepped.

namespace logpc::svc {
namespace {

using testsupport::http_get;
using testsupport::http_request;
using testsupport::HttpReply;
using testsupport::JsonValidator;

Params machine() { return Params{4, 4, 1, 2}; }

exec::Bytes payload() {
  const std::string s = "introspect-payload";
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return exec::Bytes(p, p + s.size());
}

class IntrospectTest : public ::testing::Test {
 protected:
  IntrospectTest() {
    CollectiveService::Options opts;
    opts.pools = 1;
    opts.introspect_port = 0;  // ephemeral: the kernel picks, we read back
    svc_ = std::make_unique<CollectiveService>(machine(), opts);
    tenant_ = svc_->register_tenant(
        {.name = "introspect \"quoted\" tenant", .weight = 3});
    // One completed run so /tracez has a profile and /metrics has series.
    Request req;
    req.op = OpKind::kBroadcast;
    req.payload = payload();
    SubmitResult sub = svc_->submit(tenant_, std::move(req));
    EXPECT_TRUE(sub.accepted());
    EXPECT_EQ(sub.response.get().status, Status::kOk);
    port_ = svc_->introspect_port();
  }

  std::unique_ptr<CollectiveService> svc_;
  TenantId tenant_ = -1;
  int port_ = -1;
};

TEST_F(IntrospectTest, BindsAnEphemeralPort) {
  EXPECT_GT(port_, 0);
  EXPECT_LE(port_, 65535);
}

TEST_F(IntrospectTest, HealthzIsOk) {
  const HttpReply r = http_get(port_, "/healthz");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "ok\n");
  EXPECT_NE(r.headers.find("Content-Length: 3"), std::string::npos);
}

TEST_F(IntrospectTest, MetricsServesExpositionText) {
  const HttpReply r = http_get(port_, "/metrics");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.headers.find("version=0.0.4"), std::string::npos);
  EXPECT_FALSE(r.body.empty());
  EXPECT_NE(r.body.find("logpc_svc_admitted_total"), std::string::npos);
  EXPECT_NE(r.body.find("logpc_profile_runs_total"), std::string::npos);
}

TEST_F(IntrospectTest, StatuszIsValidJsonWithTenantsAndRecorder) {
  const HttpReply r = http_get(port_, "/statusz");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_TRUE(JsonValidator(r.body).valid()) << r.body;
  EXPECT_NE(r.body.find("\"accepting\":true"), std::string::npos);
  EXPECT_NE(r.body.find("\"pools\":1"), std::string::npos);
  // The tenant's hostile name arrives escaped but intact.
  EXPECT_NE(r.body.find("introspect \\\"quoted\\\" tenant"),
            std::string::npos);
  EXPECT_NE(r.body.find("\"weight\":3"), std::string::npos);
  EXPECT_NE(r.body.find("\"flight_recorder\""), std::string::npos);
  EXPECT_NE(r.body.find("\"recorded\":1"), std::string::npos);
  EXPECT_NE(r.body.find("\"interactive\""), std::string::npos);
}

TEST_F(IntrospectTest, TracezIsValidJsonWithProfileAndChromeTrace) {
  const HttpReply r = http_get(port_, "/tracez");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_TRUE(JsonValidator(r.body).valid()) << r.body;
  EXPECT_NE(r.body.find("\"last_profile\""), std::string::npos);
  EXPECT_NE(r.body.find("\"critical_path_ns\""), std::string::npos);
  EXPECT_NE(r.body.find("\"components_ns\""), std::string::npos);
  EXPECT_NE(r.body.find("\"send_overhead\""), std::string::npos);
  // The embedded Chrome trace document with the profile's rank tracks.
  EXPECT_NE(r.body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(r.body.find("\"run profile\""), std::string::npos);
  EXPECT_NE(r.body.find("\"critical path\""), std::string::npos);
}

TEST_F(IntrospectTest, QueryStringsAreIgnored) {
  const HttpReply r = http_get(port_, "/healthz?verbose=1");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "ok\n");
}

TEST_F(IntrospectTest, UnknownPathIs404) {
  const HttpReply r = http_get(port_, "/nope");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 404);
}

TEST_F(IntrospectTest, NonGetIs405) {
  const HttpReply r = http_request(port_, "/metrics", "POST");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 405);
}

TEST_F(IntrospectTest, ProfileRidesOnTheResponse) {
  Request req;
  req.op = OpKind::kBroadcast;
  req.payload = payload();
  SubmitResult sub = svc_->submit(tenant_, std::move(req));
  ASSERT_TRUE(sub.accepted());
  const Response resp = sub.response.get();
  ASSERT_EQ(resp.status, Status::kOk);
  ASSERT_NE(resp.profile, nullptr);
  EXPECT_EQ(resp.profile->P, machine().P);
  EXPECT_FALSE(resp.profile->critical_path.empty());
  EXPECT_EQ(resp.profile->critical_path.back().rank,
            resp.profile->straggler);
  // The same profile is retained by the recorder.
  EXPECT_EQ(svc_->flight_recorder().last(), resp.profile);
}

TEST_F(IntrospectTest, ServerStopsWithShutdown) {
  svc_->shutdown(true);
  EXPECT_EQ(svc_->introspect_port(), -1);
  const HttpReply r = http_get(port_, "/healthz");
  EXPECT_FALSE(r.ok);  // connection refused or reset — nothing serving
}

TEST_F(IntrospectTest, SilentClientDoesNotWedgeShutdown) {
  // A client that connects and never sends (or reads) must not hang
  // shutdown(): the accepted socket carries recv/send timeouts, so the
  // accept thread frees itself and the destructor's join completes.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port_));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  // Give the accept thread a beat to park in recv() on the silent socket —
  // the case that used to deadlock the destructor's join.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  svc_->shutdown(true);  // must return (recv times out) instead of hanging
  EXPECT_EQ(svc_->introspect_port(), -1);
  ::close(fd);
}

TEST(Introspect, TakenPortSurfacesAsException) {
  CollectiveService::Options opts;
  opts.pools = 1;
  opts.introspect_port = 0;
  CollectiveService first(machine(), opts);
  ASSERT_GT(first.introspect_port(), 0);
  // Binding the same fixed port again must surface as a catchable
  // exception from the constructor — not std::terminate from unwinding
  // past the already-running pool threads.
  opts.introspect_port = first.introspect_port();
  EXPECT_THROW(CollectiveService(machine(), opts), std::runtime_error);
}

TEST(Introspect, BadBindAddressSurfacesAsException) {
  CollectiveService::Options opts;
  opts.pools = 1;
  opts.introspect_port = 0;
  opts.introspect_bind = "not-an-address";
  EXPECT_THROW(CollectiveService(machine(), opts), std::runtime_error);
}

TEST(Introspect, DisabledByDefault) {
  CollectiveService svc(machine(), {});
  EXPECT_EQ(svc.introspect_port(), -1);
}

TEST(Introspect, ProfilingCanBeTurnedOff) {
  CollectiveService::Options opts;
  opts.pools = 1;
  opts.profile = false;
  CollectiveService svc(machine(), opts);
  const TenantId t = svc.register_tenant({.name = "no-profile"});
  Request req;
  req.op = OpKind::kBroadcast;
  req.payload = payload();
  SubmitResult sub = svc.submit(t, std::move(req));
  ASSERT_TRUE(sub.accepted());
  const Response resp = sub.response.get();
  ASSERT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(resp.profile, nullptr);
  EXPECT_EQ(svc.flight_recorder().summary().recorded, 0u);
}

}  // namespace
}  // namespace logpc::svc
