#pragma once

#include <iosfwd>
#include <string>

#include "sched/schedule.hpp"

/// \file io.hpp
/// Plain-text schedule serialization: stable, versioned, diff-friendly.
/// Lets schedules be archived, inspected, or replayed by external tools
/// (and round-tripped in tests).
///
/// Format (one record per line, '#' comments ignored):
///
///   logpc-schedule v1
///   params <P> <L> <o> <g>
///   items <K>
///   init <item> <proc> <time>
///   send <start> <from> <to> <item> [<recv_start>]

namespace logpc {

/// Serializes the schedule (sorted output for stability).
[[nodiscard]] std::string to_text(const Schedule& s);
void write_text(std::ostream& os, const Schedule& s);

/// Parses a schedule; throws std::invalid_argument with a line number on
/// malformed input.  Performs structural validation only (ids in range);
/// run validate::check for the LogP rules.
[[nodiscard]] Schedule schedule_from_text(const std::string& text);
[[nodiscard]] Schedule read_text(std::istream& is);

/// --- binary form --------------------------------------------------------
/// Compact serialization for bulk archives — the runtime's plan-cache
/// snapshots (src/runtime/snapshot.*) embed one of these per cached plan.
/// Layout: magic "LPSB1\n", then little-endian 64-bit fields: params
/// (P, L, o, g), item count, initial count + records, send count + records
/// (recv_start keeps the kNever sentinel).  Endian-stable across machines.
///
/// read_binary applies the same structural validation as the text reader
/// and throws std::invalid_argument on malformed or truncated input.
void write_binary(std::ostream& os, const Schedule& s);
[[nodiscard]] Schedule read_binary(std::istream& is);

}  // namespace logpc
