#include "runtime/implicit_plan.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "bcast/tree.hpp"

namespace logpc::runtime {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("ImplicitPlan: " + what);
}

void check_node(std::int64_t node, std::int64_t P, const char* where) {
  if (node < 0 || node >= P) {
    throw std::out_of_range(std::string("ImplicitPlan::") + where +
                            ": node out of range");
  }
}

}  // namespace

bool ImplicitPlan::supports(const PlanKey& key) {
  if (key.mask != 0) return false;  // degraded membership stays materialized
  switch (key.problem) {
    case Problem::kBroadcast:
    case Problem::kReduce:
    case Problem::kBinomialBroadcast:
    case Problem::kBinaryBroadcast:
    case Problem::kChainBroadcast:
      return true;
    default:
      return false;
  }
}

ImplicitPlan ImplicitPlan::build(const PlanKey& key) {
  if (!supports(key)) fail("no implicit form for " + key.to_string());
  key.params.require_valid();
  ImplicitPlan plan;
  plan.key_ = key;
  plan.P_ = key.params.P;
  plan.T_ = key.params.transfer_time();
  plan.g_ = key.params.g;
  switch (key.problem) {
    case Problem::kReduce:
      plan.reverse_ = true;
      [[fallthrough]];
    case Problem::kBroadcast:
      plan.family_ = Family::kOptimal;
      plan.build_optimal_tables();
      break;
    case Problem::kBinomialBroadcast:
      plan.family_ = Family::kBinomial;
      plan.build_binomial_tables();
      break;
    case Problem::kBinaryBroadcast:
      plan.family_ = Family::kBinary;
      plan.completion_ = plan.binary_subtree_max_label(0);
      break;
    case Problem::kChainBroadcast:
      plan.family_ = Family::kChain;
      plan.completion_ = static_cast<Time>(plan.P_ - 1) * plan.T_;
      break;
    default:
      fail("no implicit form");  // unreachable: supports() screened
  }
  return plan;
}

// ---- optimal tree (Section 2) -------------------------------------------
//
// BroadcastTree::optimal materializes the universal tree best-first with
// the tie-break (label, parent index, child rank), so node indices follow
// that total order exactly.  With N(t) nodes of label <= t:
//  * label(n) is the least t with N(t) > n (binary search over cum_);
//  * within label l, nodes split into classes by child rank i, parent
//    label lam = l - T - i*g.  All classes share the send-slot residue
//    (l - T) mod g, and ascending lam = ascending parent index, so the
//    class order is ascending lam and class sizes are N-differences.  The
//    strided table strided_[t] = cnt(t) + strided_[t - g] gives running
//    class totals in O(1), leaving one binary search per decode.

void ImplicitPlan::build_optimal_tables() {
  completion_ = bcast::B_of_P(key_.params, key_.params.P);
  cum_ = bcast::reachable_prefix(key_.params, completion_);
  strided_.resize(cum_.size());
  const auto stride = static_cast<std::size_t>(g_);
  for (std::size_t t = 0; t < cum_.size(); ++t) {
    const Count cnt = cum_[t] - (t == 0 ? Count{0} : cum_[t - 1]);
    strided_[t] = cnt + (t >= stride ? strided_[t - stride] : Count{0});
  }
}

Count ImplicitPlan::nodes_through(Time t) const {
  if (t < 0) return 0;
  return cum_[static_cast<std::size_t>(t)];
}

Time ImplicitPlan::label_of_index(std::int64_t node) const {
  const auto it = std::upper_bound(cum_.begin(), cum_.end(),
                                   static_cast<Count>(node));
  return static_cast<Time>(it - cum_.begin());
}

ImplicitPlan::OptParent ImplicitPlan::optimal_parent(std::int64_t node) const {
  OptParent out;
  out.label = label_of_index(node);
  if (node == 0) return out;
  const Time ell = out.label;
  const Count j = static_cast<Count>(node) - nodes_through(ell - 1);
  const Time i_max = (ell - T_) / g_;
  const Time lam_min = ell - T_ - i_max * g_;
  // Least class label lam whose running total strided_[lam] exceeds j.
  Time lo = 0;
  Time hi = i_max;
  while (lo < hi) {
    const Time mid = lo + (hi - lo) / 2;
    if (strided_[static_cast<std::size_t>(lam_min + mid * g_)] > j) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  const Time lam = lam_min + lo * g_;
  const Count preceding =
      lam >= g_ ? strided_[static_cast<std::size_t>(lam - g_)] : Count{0};
  out.rank = static_cast<int>((ell - T_ - lam) / g_);
  out.parent =
      static_cast<std::int64_t>(nodes_through(lam - 1) + (j - preceding));
  return out;
}

// ---- binomial tree (baselines::binomial_tree) ---------------------------
//
// The halving construction assigns indices in BFS order, and within the
// tree each node's children are created rank-0-first, so index order is
// (depth, lexicographic rank path).  Every subtree size along any peel
// chain lies in {floor(P/2^h), ceil(P/2^h)} — at most two per depth — so
// desc_ (depth-k descendant counts per reachable size) stays O(log^2 P)
// and index <-> path conversion is combinatorial counting over it.

std::vector<int> ImplicitPlan::binomial_child_sizes(int size) {
  std::vector<int> out;
  int rest = size;
  while (rest > 1) {
    const int half = rest / 2;
    out.push_back(half);
    rest -= half;
  }
  return out;
}

std::int64_t ImplicitPlan::binomial_descendants(int size, int depth) const {
  const auto& counts = desc_.at(size);
  if (depth < 0 || depth >= static_cast<int>(counts.size())) return 0;
  return counts[static_cast<std::size_t>(depth)];
}

void ImplicitPlan::build_binomial_tables() {
  const auto P = static_cast<int>(P_);
  // Reachable subtree sizes, smallest first so children resolve before
  // their parents in the per-depth sweeps below.
  std::vector<int> pending{P};
  while (!pending.empty()) {
    const int s = pending.back();
    pending.pop_back();
    if (desc_.find(s) != desc_.end()) continue;
    desc_.emplace(s, std::vector<std::int64_t>{});
    for (const int c : binomial_child_sizes(s)) {
      if (desc_.find(c) == desc_.end()) pending.push_back(c);
    }
  }
  std::vector<int> sizes;
  sizes.reserve(desc_.size());
  for (const auto& [s, counts] : desc_) sizes.push_back(s);
  std::sort(sizes.begin(), sizes.end());

  for (const int s : sizes) desc_[s].push_back(1);  // depth 0: the node
  max_depth_ = 0;
  for (int k = 1;; ++k) {
    for (const int s : sizes) {
      std::int64_t total = 0;
      for (const int c : binomial_child_sizes(s)) {
        total += binomial_descendants(c, k - 1);
      }
      desc_[s].push_back(total);
    }
    if (binomial_descendants(P, k) == 0) break;
    max_depth_ = k;
  }

  level_start_.assign(1, 0);
  for (int d = 0; d <= max_depth_; ++d) {
    level_start_.push_back(level_start_.back() + binomial_descendants(P, d));
  }
  if (level_start_.back() != P_) fail("binomial level counts do not sum to P");

  // Completion = max label, by the same size-collapsed DP.
  std::unordered_map<int, Time> max_label;
  for (const int s : sizes) {
    Time m = 0;
    const std::vector<int> cs = binomial_child_sizes(s);
    for (std::size_t j = 0; j < cs.size(); ++j) {
      m = std::max(m, T_ + static_cast<Time>(j) * g_ + max_label[cs[j]]);
    }
    max_label[s] = m;
  }
  completion_ = max_label[P];
}

ImplicitPlan::BinomialPath ImplicitPlan::binomial_decode(
    std::int64_t node) const {
  const auto it =
      std::upper_bound(level_start_.begin(), level_start_.end(), node);
  const int depth = static_cast<int>(it - level_start_.begin()) - 1;
  std::int64_t offset = node - level_start_[static_cast<std::size_t>(depth)];
  BinomialPath path;
  path.depth = depth;
  path.ranks.reserve(static_cast<std::size_t>(depth));
  path.sizes.reserve(static_cast<std::size_t>(depth));
  int size = static_cast<int>(P_);
  for (int e = 0; e < depth; ++e) {
    const std::vector<int> cs = binomial_child_sizes(size);
    int j = 0;
    for (;; ++j) {
      const std::int64_t under = binomial_descendants(cs[static_cast<std::size_t>(j)],
                                                      depth - 1 - e);
      if (offset < under) break;
      offset -= under;
    }
    path.ranks.push_back(j);
    size = cs[static_cast<std::size_t>(j)];
    path.sizes.push_back(size);
  }
  return path;
}

std::int64_t ImplicitPlan::binomial_index(const BinomialPath& path,
                                          int depth) const {
  // Index of the length-`depth` prefix of `path`: level start plus the
  // count of depth-`depth` nodes with a lexicographically smaller path.
  std::int64_t within = 0;
  int size = static_cast<int>(P_);
  for (int e = 0; e < depth; ++e) {
    const std::vector<int> cs = binomial_child_sizes(size);
    const int je = path.ranks[static_cast<std::size_t>(e)];
    for (int j = 0; j < je; ++j) {
      within +=
          binomial_descendants(cs[static_cast<std::size_t>(j)], depth - 1 - e);
    }
    size = cs[static_cast<std::size_t>(je)];
  }
  return level_start_[static_cast<std::size_t>(depth)] + within;
}

// ---- binary tree --------------------------------------------------------

Time ImplicitPlan::binary_subtree_max_label(std::int64_t node) const {
  if (2 * node + 1 >= P_) return 0;
  // Height h: the deepest level whose leftmost descendant exists.
  int h = 0;
  std::int64_t leftmost = node;
  while (2 * leftmost + 1 < P_) {
    leftmost = 2 * leftmost + 1;
    ++h;
  }
  // Perfect subtree: the all-right path (T + g per level) is the maximum.
  std::int64_t rightmost = node;
  for (int k = 0; k < h; ++k) rightmost = 2 * rightmost + 2;
  if (rightmost < P_) return static_cast<Time>(h) * (T_ + g_);
  // A heap's incomplete frontier is a single path, so at most one child
  // recurses past its own perfect check: O(log^2 P) total.
  Time best = binary_subtree_max_label(2 * node + 1);
  if (2 * node + 2 < P_) {
    best = std::max(best, g_ + binary_subtree_max_label(2 * node + 2));
  }
  return T_ + best;
}

// ---- node-space queries -------------------------------------------------

Time ImplicitPlan::label(std::int64_t node) const {
  check_node(node, P_, "label");
  switch (family_) {
    case Family::kOptimal:
      return label_of_index(node);
    case Family::kBinomial: {
      const BinomialPath path = binomial_decode(node);
      Time lab = 0;
      for (const int r : path.ranks) lab += T_ + static_cast<Time>(r) * g_;
      return lab;
    }
    case Family::kBinary: {
      Time lab = 0;
      for (std::int64_t n = node; n != 0; n = (n - 1) / 2) {
        lab += T_ + static_cast<Time>((n - 1) % 2) * g_;
      }
      return lab;
    }
    case Family::kChain:
      return static_cast<Time>(node) * T_;
  }
  return 0;  // unreachable
}

std::int64_t ImplicitPlan::parent(std::int64_t node) const {
  check_node(node, P_, "parent");
  if (node == 0) return -1;
  switch (family_) {
    case Family::kOptimal:
      return optimal_parent(node).parent;
    case Family::kBinomial: {
      const BinomialPath path = binomial_decode(node);
      return binomial_index(path, path.depth - 1);
    }
    case Family::kBinary:
      return (node - 1) / 2;
    case Family::kChain:
      return node - 1;
  }
  return -1;  // unreachable
}

int ImplicitPlan::child_rank(std::int64_t node) const {
  check_node(node, P_, "child_rank");
  if (node == 0) return 0;
  switch (family_) {
    case Family::kOptimal:
      return optimal_parent(node).rank;
    case Family::kBinomial:
      return binomial_decode(node).ranks.back();
    case Family::kBinary:
      return static_cast<int>((node - 1) % 2);
    case Family::kChain:
      return 0;
  }
  return 0;  // unreachable
}

std::int64_t ImplicitPlan::child(std::int64_t node, int rank) const {
  check_node(node, P_, "child");
  if (rank < 0) throw std::out_of_range("ImplicitPlan::child: rank < 0");
  switch (family_) {
    case Family::kOptimal: {
      const Time ell = label_of_index(node);
      const Time c = ell + T_ + static_cast<Time>(rank) * g_;
      if (c > completion_) return -1;  // label beyond B: outside B(P)
      const Count before_classes =
          ell >= g_ ? strided_[static_cast<std::size_t>(ell - g_)] : Count{0};
      const Count idx = nodes_through(c - 1) + before_classes +
                        (static_cast<Count>(node) - nodes_through(ell - 1));
      return idx < static_cast<Count>(P_) ? static_cast<std::int64_t>(idx)
                                          : -1;
    }
    case Family::kBinomial: {
      BinomialPath path = binomial_decode(node);
      const int size = path.depth == 0 ? static_cast<int>(P_)
                                       : path.sizes.back();
      const std::vector<int> cs = binomial_child_sizes(size);
      if (rank >= static_cast<int>(cs.size())) return -1;
      path.ranks.push_back(rank);
      return binomial_index(path, path.depth + 1);
    }
    case Family::kBinary: {
      if (rank > 1) return -1;
      const std::int64_t c = 2 * node + 1 + rank;
      return c < P_ ? c : -1;
    }
    case Family::kChain:
      return (rank == 0 && node + 1 < P_) ? node + 1 : -1;
  }
  return -1;  // unreachable
}

int ImplicitPlan::num_children(std::int64_t node) const {
  check_node(node, P_, "num_children");
  switch (family_) {
    case Family::kOptimal: {
      // Child indices grow with rank (labels do), so presence is a prefix.
      int n = 0;
      while (child(node, n) >= 0) ++n;
      return n;
    }
    case Family::kBinomial: {
      const BinomialPath path = binomial_decode(node);
      const int size = path.depth == 0 ? static_cast<int>(P_)
                                       : path.sizes.back();
      return static_cast<int>(binomial_child_sizes(size).size());
    }
    case Family::kBinary: {
      if (2 * node + 2 < P_) return 2;
      return 2 * node + 1 < P_ ? 1 : 0;
    }
    case Family::kChain:
      return node + 1 < P_ ? 1 : 0;
  }
  return 0;  // unreachable
}

std::vector<std::int64_t> ImplicitPlan::children(std::int64_t node) const {
  const int n = num_children(node);
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(child(node, i));
  return out;
}

// ---- proc mapping and per-rank generation -------------------------------

ProcId ImplicitPlan::proc_of_node(std::int64_t node) const {
  check_node(node, P_, "proc_of_node");
  const ProcId root = key_.root;
  if (node == 0) return root;
  // BroadcastTree::to_schedule: non-root nodes take the remaining procs in
  // index order, skipping the root's id.
  return node <= static_cast<std::int64_t>(root)
             ? static_cast<ProcId>(node - 1)
             : static_cast<ProcId>(node);
}

std::int64_t ImplicitPlan::node_of_proc(ProcId proc) const {
  if (proc < 0 || proc >= key_.params.P) {
    throw std::out_of_range("ImplicitPlan::node_of_proc: proc out of range");
  }
  const ProcId root = key_.root;
  if (proc == root) return 0;
  return proc < root ? static_cast<std::int64_t>(proc) + 1
                     : static_cast<std::int64_t>(proc);
}

RankSchedule ImplicitPlan::rank_schedule(ProcId proc) const {
  RankSchedule rs;
  rs.proc = proc;
  rs.node = node_of_proc(proc);
  const Time lab = label(rs.node);
  rs.parent_node = parent(rs.node);
  rs.child_rank = child_rank(rs.node);
  if (rs.parent_node >= 0) rs.parent = proc_of_node(rs.parent_node);
  const std::vector<std::int64_t> kids = children(rs.node);
  if (!reverse_) {
    rs.informed_at = lab;
    if (rs.parent_node >= 0) {
      // The parent starts this send at its own label + rank*g == lab - T.
      rs.recvs.push_back(SendOp{lab - T_, rs.parent, proc, 0});
    }
    for (std::size_t i = 0; i < kids.size(); ++i) {
      rs.sends.push_back(SendOp{lab + static_cast<Time>(i) * g_, proc,
                                proc_of_node(kids[i]), 0});
    }
  } else {
    // Reversal (Section 4.2): the broadcast send parent->child at tau
    // becomes child->parent at B - label(child); descending child rank is
    // ascending arrival time, and every receive precedes this node's send.
    const Time B = completion_;
    rs.informed_at = B - lab;
    for (std::size_t i = kids.size(); i-- > 0;) {
      const Time child_label = lab + T_ + static_cast<Time>(i) * g_;
      rs.recvs.push_back(
          SendOp{B - child_label, proc_of_node(kids[i]), proc, 0});
    }
    if (rs.parent_node >= 0) {
      rs.sends.push_back(SendOp{B - lab, proc, rs.parent, 0});
    }
  }
  return rs;
}

Schedule ImplicitPlan::to_schedule() const {
  Schedule out(key_.params, 1);
  if (!reverse_) {
    out.add_initial(0, key_.root, 0);
    for (std::int64_t n = 1; n < P_; ++n) {
      out.add_send(label(n) - T_, proc_of_node(parent(n)), proc_of_node(n),
                   0);
    }
  } else {
    for (ProcId p = 0; p < key_.params.P; ++p) out.add_initial(0, p, 0);
    for (std::int64_t n = 1; n < P_; ++n) {
      out.add_send(completion_ - label(n), proc_of_node(n),
                   proc_of_node(parent(n)), 0);
    }
  }
  out.sort();
  return out;
}

std::size_t ImplicitPlan::memory_bytes() const {
  std::size_t bytes = sizeof(*this);
  bytes += cum_.capacity() * sizeof(Count);
  bytes += strided_.capacity() * sizeof(Count);
  bytes += level_start_.capacity() * sizeof(std::int64_t);
  for (const auto& [size, counts] : desc_) {
    bytes += sizeof(size) + sizeof(counts) +
             counts.capacity() * sizeof(std::int64_t);
  }
  return bytes;
}

Schedule plan_schedule(const Plan& plan) {
  if (plan.materialized) return plan.schedule;
  if (!plan.implicit) {
    throw std::logic_error(
        "plan_schedule: implicit-only plan carries no generator");
  }
  return plan.implicit->to_schedule();
}

}  // namespace logpc::runtime
