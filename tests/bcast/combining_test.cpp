#include "bcast/combining.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "validate/checker.hpp"

namespace logpc::bcast {
namespace {

TEST(Combining, TheoremFourOneIntegerSum) {
  // Theorem 4.1: after T steps every processor holds the total.
  for (const Time L : {1, 2, 3, 4}) {
    for (Time T = L; T <= L + 6; ++T) {
      const auto cs = combining_broadcast(T, L);
      const int P = cs.params.P;
      std::vector<long long> vals(static_cast<std::size_t>(P));
      std::iota(vals.begin(), vals.end(), 1);  // 1..P
      const auto out = execute_combining<long long>(
          cs, vals, [](const long long& a, const long long& b) {
            return a + b;
          });
      const long long total = static_cast<long long>(P) * (P + 1) / 2;
      for (const auto v : out) {
        EXPECT_EQ(v, total) << "L=" << L << " T=" << T;
      }
    }
  }
}

TEST(Combining, WindowStructureWithConcatenation) {
  // The proof's invariant: at time T processor i holds x[i-P+1 : i] - the
  // cyclic window ending at i.  With op(incoming, current) and string
  // values, processor i must end with the concatenation of labels
  // i+1, i+2, ..., i (cyclically), i.e. starting at (i+1) mod P.
  const Time L = 3;
  const Time T = 7;  // P = f_7 = 9
  const auto cs = combining_broadcast(T, L);
  const int P = cs.params.P;
  ASSERT_EQ(P, 9);
  std::vector<std::string> vals;
  for (int i = 0; i < P; ++i) vals.push_back(std::string(1, static_cast<char>('A' + i)));
  const auto out = execute_combining<std::string>(
      cs, vals, [](const std::string& a, const std::string& b) {
        return a + b;
      });
  for (int i = 0; i < P; ++i) {
    std::string expected;
    for (int j = 1; j <= P; ++j) {
      expected.push_back(static_cast<char>('A' + (i + j) % P));
    }
    EXPECT_EQ(out[static_cast<std::size_t>(i)], expected) << "i=" << i;
  }
}

TEST(Combining, TimingViewSatisfiesPostalRules) {
  const auto cs = combining_broadcast(8, 3);
  const Schedule s = cs.timing_view();
  // Every processor sends once and receives once per step: gaps hold;
  // every message carries "item 0" so duplicate/complete checks are off.
  const auto check = validate::check(
      s, {.forbid_duplicate_receive = false, .require_complete = false});
  EXPECT_TRUE(check.ok()) << check.summary();
  EXPECT_EQ(s.makespan(), 8);
}

TEST(Combining, MatchesReductionTime) {
  // Section 4.2's headline: all-to-all combining takes no longer than
  // all-to-one reduction, i.e. exactly B(P) steps for P = P(T).
  for (const Time L : {2, 3, 5}) {
    const Fib fib(L);
    for (Time T = L; T <= L + 5; ++T) {
      const auto cs = combining_broadcast(T, L);
      EXPECT_EQ(static_cast<Count>(cs.params.P), fib.f(T));
      EXPECT_EQ(combining_time_for(cs.params.P, L), T);
    }
  }
}

TEST(Combining, SingleProcessorDegenerate) {
  const auto cs = combining_broadcast(0, 3);
  EXPECT_EQ(cs.params.P, 1);
  EXPECT_TRUE(cs.sends.empty());
  const auto out = execute_combining<int>(
      cs, {7}, [](const int& a, const int& b) { return a + b; });
  EXPECT_EQ(out, (std::vector<int>{7}));
}

TEST(Combining, MessageCountMatchesFormula) {
  // Steps 0..T-L, P sends per step.
  const auto cs = combining_broadcast(6, 2);
  const auto P = static_cast<std::size_t>(cs.params.P);
  EXPECT_EQ(cs.sends.size(), P * static_cast<std::size_t>(6 - 2 + 1));
}

TEST(Combining, TimeForArbitraryP) {
  // combining_time_for rounds up to the next f_T.
  EXPECT_EQ(combining_time_for(1, 3), 0);
  EXPECT_EQ(combining_time_for(9, 3), 7);
  EXPECT_EQ(combining_time_for(10, 3), 8);  // f_8 = 13 covers 10
}

TEST(Combining, RejectsBadArguments) {
  EXPECT_THROW(combining_broadcast(3, 0), std::invalid_argument);
  EXPECT_THROW(combining_broadcast(-1, 3), std::invalid_argument);
  EXPECT_THROW((void)combining_time_for(0, 3), std::invalid_argument);
  const auto cs = combining_broadcast(5, 2);
  EXPECT_THROW(execute_combining<int>(cs, {1, 2},
                                      [](const int& a, const int& b) {
                                        return a + b;
                                      }),
               std::invalid_argument);
}

}  // namespace
}  // namespace logpc::bcast
