#include "bcast/continuous.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sched/metrics.hpp"
#include "validate/checker.hpp"

namespace logpc::bcast {
namespace {

// --- The Figure 2 instance: L = 3, t = 7, P = 10 -------------------------

TEST(Continuous, Figure2PlanStructure) {
  const auto res = plan_continuous(3, 7);
  ASSERT_EQ(res.status, SolveStatus::kSolved);
  const auto& plan = *res.plan;
  EXPECT_EQ(plan.params.P, 10);
  EXPECT_EQ(plan.delay(), 10);  // L + B(9) = 3 + 7
  // Blocks H5, E2, D1 plus the receive-only processor.
  ASSERT_EQ(plan.blocks.size(), 3u);
  std::multiset<int> sizes;
  for (const auto& b : plan.blocks) sizes.insert(b.r);
  EXPECT_EQ(sizes, (std::multiset<int>{1, 2, 5}));
  EXPECT_EQ(plan.letter_delays, (std::vector<Time>{5, 6, 7}));
  EXPECT_NE(plan.receive_only, kNoProc);
}

TEST(Continuous, Figure2ScheduleAchievesOptimalDelayForEveryItem) {
  const auto res = plan_continuous(3, 7);
  ASSERT_EQ(res.status, SolveStatus::kSolved);
  const Schedule s = emit_k_items(*res.plan, 8);  // the paper's k = 8
  const auto check = validate::check(s);
  EXPECT_TRUE(check.ok()) << check.summary();
  for (const auto& c : item_completions(s)) {
    EXPECT_EQ(c.delay(), 10) << "item " << c.item;
    EXPECT_EQ(c.generated, c.item);  // generated every g = 1 steps
  }
  EXPECT_EQ(completion_time(s), 17);  // L + B(9) + k - 1
  EXPECT_TRUE(is_single_sending(s, 0));
}

TEST(Continuous, Figure2ReceptionPatternIsOnePerProcessorPerStep) {
  const auto res = plan_continuous(3, 7);
  ASSERT_EQ(res.status, SolveStatus::kSolved);
  const auto rows = reception_pattern(*res.plan);
  ASSERT_EQ(rows.size(), 10u);
  // Aggregate one full period: every step consumes the per-step multiset
  // {d=0, d=3, d=4 internal} + {a,a,a,b,b,c leaves}: as delays,
  // {0,3,4,7,7,7,6,6,5}.
  std::multiset<Time> per_step;
  for (ProcId p = 0; p < 10; ++p) {
    if (rows[static_cast<std::size_t>(p)] == std::vector<Time>{-1}) continue;
    // Each processor's row contributes its slot-0 entry to step 0, slot-1
    // to step 1, etc.; by periodicity every step sees one entry per proc.
    per_step.insert(rows[static_cast<std::size_t>(p)][0]);
  }
  EXPECT_EQ(per_step, (std::multiset<Time>{0, 3, 4, 5, 6, 6, 7, 7, 7}));
}

// --- Theorem 3.3: optimal delay for 3 <= L <= 10 --------------------------

class ContinuousTheorem33 : public ::testing::TestWithParam<Time> {};

TEST_P(ContinuousTheorem33, OptimalDelayAchievedForExactP) {
  const Time L = GetParam();
  const Fib fib(L);
  for (Time t = L + 3; t <= L + 7; ++t) {
    if (fib.f(t) > 400) break;
    const auto res = plan_continuous(L, t);
    if (L % 2 == 0 && t == 2 * L) {
      // The one hole per even L (the paper notes the L = 4, t = 8 case;
      // our search finds its siblings at every even L): minimum delay is
      // block-cyclic-infeasible exactly at t = 2L.
      EXPECT_EQ(res.status, SolveStatus::kInfeasible);
      continue;
    }
    ASSERT_EQ(res.status, SolveStatus::kSolved) << "L=" << L << " t=" << t;
    EXPECT_EQ(res.plan->delay(), L + t);
    const Schedule s = emit_k_items(*res.plan, 4);
    EXPECT_TRUE(validate::is_valid(s)) << validate::check(s).summary();
    EXPECT_EQ(max_delay(s), L + t);
  }
}

INSTANTIATE_TEST_SUITE_P(LatencyRange, ContinuousTheorem33,
                         ::testing::Values<Time>(3, 4, 5, 6, 7, 8, 9, 10));

// --- Theorem 3.4: L = 2 cannot achieve the bound --------------------------

TEST(Continuous, L2IsInfeasibleAtOptimalDelay) {
  for (Time t = 4; t <= 9; ++t) {
    const auto res = plan_continuous(2, t);
    EXPECT_EQ(res.status, SolveStatus::kInfeasible) << "t=" << t;
  }
}

TEST(Continuous, PaperL4T8RemarkReproduced) {
  // "when L = 4 and t = 8 no block-cyclic schedule can achieve a delay of
  // L + t" - the word search proves it by exhaustion.
  const auto res = plan_continuous(4, 8);
  EXPECT_EQ(res.status, SolveStatus::kInfeasible);
  // ... while neighbours are fine.
  EXPECT_EQ(plan_continuous(4, 7).status, SolveStatus::kSolved);
  EXPECT_EQ(plan_continuous(4, 9).status, SolveStatus::kSolved);
}

// --- L = 1 (the conjecture covers every L except 2) ------------------------

TEST(Continuous, L1AlwaysSolvable) {
  for (Time t = 0; t <= 9; ++t) {
    const auto res = plan_continuous(1, t);
    ASSERT_EQ(res.status, SolveStatus::kSolved) << "t=" << t;
    EXPECT_EQ(res.plan->delay(), 1 + t);
  }
}

// --- Degenerate sizes ------------------------------------------------------

TEST(Continuous, SingleReceiver) {
  const auto res = plan_continuous(3, 0);
  ASSERT_EQ(res.status, SolveStatus::kSolved);
  EXPECT_EQ(res.plan->params.P, 2);
  const Schedule s = emit_k_items(*res.plan, 5);
  EXPECT_TRUE(validate::is_valid(s)) << validate::check(s).summary();
  EXPECT_EQ(completion_time(s), 3 + 0 + 4);
}

TEST(Continuous, TwoReceivers) {
  const auto res = plan_continuous(4, 4);  // f_4 = 2 for L = 4
  ASSERT_EQ(res.status, SolveStatus::kSolved);
  EXPECT_EQ(res.plan->params.P, 3);
  const Schedule s = emit_k_items(*res.plan, 3);
  EXPECT_TRUE(validate::is_valid(s)) << validate::check(s).summary();
  EXPECT_EQ(max_delay(s), 8);
}

// --- Waited (Theorem 3.8) plans --------------------------------------------

TEST(Continuous, WaitedPlanRecoversOptimalDelayPlusK) {
  // L = 2, t = 5 (f_5 = 8 receivers): strict infeasible, wait-1 solvable;
  // the k-item completion still meets B + L + k - 1 because the buffered
  // receives compress into the drain.
  const auto strict = plan_from_tree(
      BroadcastTree::optimal(Params::postal(8, 2), 8), 20'000'000, 0);
  EXPECT_EQ(strict.status, SolveStatus::kInfeasible);
  const auto waited = plan_from_tree(
      BroadcastTree::optimal(Params::postal(8, 2), 8), 20'000'000, 1);
  ASSERT_EQ(waited.status, SolveStatus::kSolved);
  const int k = 6;
  const Schedule s = emit_k_items(*waited.plan, k);
  const auto check = validate::check(s, {.buffered = true, .buffer_limit = 2});
  EXPECT_TRUE(check.ok()) << check.summary();
  EXPECT_EQ(completion_time(s), 5 + 2 + k - 1);
  EXPECT_TRUE(is_single_sending(s, 0));
}

TEST(Continuous, EmitRejectsBadK) {
  const auto res = plan_continuous(3, 5);
  ASSERT_EQ(res.status, SolveStatus::kSolved);
  EXPECT_THROW(emit_k_items(*res.plan, 0), std::invalid_argument);
}

TEST(Continuous, RejectsNonPostalTree) {
  const auto tree = BroadcastTree::optimal(Params{4, 3, 1, 2}, 4);
  EXPECT_THROW(plan_from_tree(tree), std::invalid_argument);
}

TEST(Continuous, RejectsBadParameters) {
  EXPECT_THROW(plan_continuous(0, 3), std::invalid_argument);
  EXPECT_THROW(plan_continuous(3, -1), std::invalid_argument);
  EXPECT_THROW(plan_continuous(1, 60), std::invalid_argument);  // f_t huge
}

// Coverage property: every processor receives every item exactly once.
TEST(Continuous, EveryProcessorReceivesEveryItemExactlyOnce) {
  const auto res = plan_continuous(3, 8);
  ASSERT_EQ(res.status, SolveStatus::kSolved);
  const int k = 7;
  const Schedule s = emit_k_items(*res.plan, k);
  for (ItemId i = 0; i < k; ++i) {
    const auto counts = receive_counts(s, i);
    for (ProcId p = 1; p < s.params().P; ++p) {
      EXPECT_EQ(counts[static_cast<std::size_t>(p)], 1)
          << "item " << i << " at P" << p;
    }
    EXPECT_EQ(counts[0], 0);  // the source receives nothing
  }
}

}  // namespace
}  // namespace logpc::bcast
