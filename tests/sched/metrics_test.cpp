#include "sched/metrics.hpp"

#include <gtest/gtest.h>

namespace logpc {
namespace {

// A hand-built 3-processor postal broadcast: source 0 sends to 1 at t=0 and
// to 2 at t=1 (L = 2).
Schedule tiny_broadcast() {
  Schedule s(Params::postal(3, 2), 1);
  s.add_initial(0, 0, 0);
  s.add_send(0, 0, 1, 0);  // available at 2
  s.add_send(1, 0, 2, 0);  // available at 3
  return s;
}

TEST(Metrics, AvailabilityMatrix) {
  const auto avail = availability_matrix(tiny_broadcast());
  ASSERT_EQ(avail.size(), 1u);
  EXPECT_EQ(avail[0][0], 0);
  EXPECT_EQ(avail[0][1], 2);
  EXPECT_EQ(avail[0][2], 3);
}

TEST(Metrics, ItemCompletions) {
  const auto comps = item_completions(tiny_broadcast());
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].generated, 0);
  EXPECT_EQ(comps[0].completed, 3);
  EXPECT_EQ(comps[0].delay(), 3);
}

TEST(Metrics, CompletionAndDelayOfIncompleteScheduleIsNever) {
  Schedule s(Params::postal(3, 2), 1);
  s.add_initial(0, 0, 0);
  s.add_send(0, 0, 1, 0);  // processor 2 never gets the item
  EXPECT_EQ(completion_time(s), kNever);
  EXPECT_EQ(max_delay(s), kNever);
  const auto comps = item_completions(s);
  EXPECT_EQ(comps[0].completed, kNever);
  EXPECT_EQ(comps[0].delay(), kNever);
}

TEST(Metrics, DelayMeasuredFromGeneration) {
  // Item generated at t = 5, delivered everywhere by t = 9: delay 4.
  Schedule s(Params::postal(2, 2), 1);
  s.add_initial(0, 0, 5);
  s.add_send(7, 0, 1, 0);  // available at 9
  EXPECT_EQ(completion_time(s), 9);
  EXPECT_EQ(max_delay(s), 4);
}

TEST(Metrics, MaxDelayOverItems) {
  Schedule s(Params::postal(2, 2), 2);
  s.add_initial(0, 0, 0);
  s.add_initial(1, 0, 1);
  s.add_send(0, 0, 1, 0);  // item 0: delay 2
  s.add_send(2, 0, 1, 1);  // item 1: generated 1, complete 4, delay 3
  EXPECT_EQ(max_delay(s), 3);
  EXPECT_EQ(completion_time(s), 4);
}

TEST(Metrics, ReceiveAndSendCounts) {
  const Schedule s = tiny_broadcast();
  EXPECT_EQ(receive_counts(s, 0), (std::vector<int>{0, 1, 1}));
  EXPECT_EQ(send_counts(s), (std::vector<int>{2, 0, 0}));
}

TEST(Metrics, SingleSendingDetection) {
  Schedule s(Params::postal(4, 2), 2);
  s.add_initial(0, 0, 0);
  s.add_initial(1, 0, 0);
  s.add_send(0, 0, 1, 0);
  s.add_send(1, 0, 2, 1);
  EXPECT_TRUE(is_single_sending(s, 0));
  s.add_send(2, 0, 3, 0);  // source repeats item 0
  EXPECT_FALSE(is_single_sending(s, 0));
  // Other processors repeating is fine for the property at the source.
  EXPECT_TRUE(is_single_sending(s, 1));
}

}  // namespace
}  // namespace logpc
