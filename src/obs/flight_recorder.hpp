#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/critical_path.hpp"
#include "obs/metrics.hpp"

/// \file flight_recorder.hpp
/// A bounded in-memory store of the last N RunProfiles — the "black box"
/// of a serving process.  Like the TraceRecorder's span ring, it never
/// grows past its capacity: the oldest profile is evicted first, and
/// recorded()/dropped() account for the loss.  Profiles are held by
/// shared_ptr so a snapshot taken for an introspection page stays valid
/// while new runs keep landing.
///
/// Every record() additionally:
///  * tags the profile anomalous when |residual| crosses the configured
///    threshold — the run's measured critical path diverged from the
///    paper's predicted makespan (scaled by the fitted machine) by more
///    than the service tolerates, and
///  * feeds the logpc_profile_* metrics: runs/anomalies counters, the
///    residual magnitude histogram and the critical-path latency
///    histogram, so a scrape sees the model-vs-reality trend without
///    pulling whole profiles.
///
/// Thread-safety: record() and every reader take one short mutex; the
/// analyzer runs *outside* the recorder (callers analyze, then record), so
/// the lock only covers a ring append and counter bumps.

namespace logpc::obs {

class FlightRecorder {
 public:
  struct Options {
    std::size_t capacity = 64;        ///< profiles retained, oldest evicted
    /// |residual| above this tags the profile anomalous.  0.5 = the
    /// measured critical path diverged from the scaled prediction by more
    /// than 50%.
    double residual_threshold = 0.5;
    /// Metrics destination; nullptr = MetricsRegistry::global().
    MetricsRegistry* registry = nullptr;
  };

  explicit FlightRecorder(Options options);
  FlightRecorder() : FlightRecorder(Options{}) {}

  /// Tags and stores `profile`, evicting the oldest past capacity.
  /// Returns the stored (immutable) profile, which the service attaches to
  /// the request's Response.
  std::shared_ptr<const RunProfile> record(RunProfile profile);

  /// Oldest-to-newest snapshot of the retained profiles.
  [[nodiscard]] std::vector<std::shared_ptr<const RunProfile>> profiles()
      const;

  /// The most recent profile, or nullptr when none was recorded yet.
  [[nodiscard]] std::shared_ptr<const RunProfile> last() const;

  /// The most recent anomalous profile, or nullptr.
  [[nodiscard]] std::shared_ptr<const RunProfile> last_anomaly() const;

  struct Summary {
    std::uint64_t recorded = 0;   ///< profiles ever recorded
    std::uint64_t dropped = 0;    ///< profiles evicted from the ring
    std::uint64_t anomalies = 0;  ///< profiles tagged anomalous
    std::size_t retained = 0;     ///< profiles currently held
    double last_residual = 0;     ///< residual of the newest profile
    std::uint64_t last_critical_path_ns = 0;
  };
  [[nodiscard]] Summary summary() const;

  [[nodiscard]] std::size_t capacity() const { return opts_.capacity; }
  [[nodiscard]] double residual_threshold() const {
    return opts_.residual_threshold;
  }

 private:
  Options opts_;
  Counter* runs_total_ = nullptr;
  Counter* anomalies_total_ = nullptr;
  Histogram* residual_hist_ = nullptr;
  Histogram* critical_path_hist_ = nullptr;

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<const RunProfile>> ring_;
  std::size_t first_ = 0;       ///< ring_[(first_ + i) % capacity]
  std::uint64_t recorded_ = 0;
  std::uint64_t anomalies_ = 0;
};

}  // namespace logpc::obs
