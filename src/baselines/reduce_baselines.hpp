#pragma once

#include "sum/summation_tree.hpp"

/// \file reduce_baselines.hpp
/// Summation/reduction comparators: the same lazy-reversal machinery as
/// sum::optimal_summation but driven by conventional reduction trees, so
/// operand counts n(t) are directly comparable.

namespace logpc::baselines {

/// Summation over a complete binary reduction tree using as many processors
/// (up to params.P) as finish within t.
[[nodiscard]] sum::SummationPlan binary_tree_summation(const Params& params,
                                                       Time t);

/// Summation over a binomial (recursive-halving) reduction tree using as
/// many processors (up to params.P) as finish within t.
[[nodiscard]] sum::SummationPlan binomial_summation(const Params& params,
                                                    Time t);

/// Single-processor summation: no communication, n = t + 1 operands.
[[nodiscard]] sum::SummationPlan sequential_summation(const Params& params,
                                                      Time t);

/// Linear-chain (pipeline) reduction using as many processors (up to
/// params.P) as finish within t.
[[nodiscard]] sum::SummationPlan chain_summation(const Params& params, Time t);

}  // namespace logpc::baselines
