#include "sched/metrics.hpp"

#include <algorithm>

namespace logpc {

std::vector<std::vector<Time>> availability_matrix(const Schedule& s) {
  std::vector<std::vector<Time>> avail(
      static_cast<std::size_t>(s.num_items()),
      std::vector<Time>(static_cast<std::size_t>(s.params().P), kNever));
  auto slot = [&](ItemId item, ProcId proc) -> Time& {
    return avail[static_cast<std::size_t>(item)][static_cast<std::size_t>(proc)];
  };
  for (const auto& init : s.initials()) {
    Time& t = slot(init.item, init.proc);
    t = std::min(t, init.time);
  }
  for (const auto& op : s.sends()) {
    Time& t = slot(op.item, op.to);
    t = std::min(t, s.available_at(op));
  }
  return avail;
}

std::vector<ItemCompletion> item_completions(const Schedule& s) {
  const auto avail = availability_matrix(s);
  std::vector<ItemCompletion> out;
  out.reserve(avail.size());
  for (std::size_t item = 0; item < avail.size(); ++item) {
    ItemCompletion c;
    c.item = static_cast<ItemId>(item);
    c.completed = 0;
    for (const Time t : avail[item]) {
      c.generated = std::min(c.generated, t);
      c.completed = (t == kNever) ? kNever : std::max(c.completed, t);
      if (c.completed == kNever) break;
    }
    out.push_back(c);
  }
  return out;
}

Time completion_time(const Schedule& s) {
  Time worst = 0;
  for (const auto& c : item_completions(s)) {
    if (c.completed == kNever) return kNever;
    worst = std::max(worst, c.completed);
  }
  return worst;
}

Time max_delay(const Schedule& s) {
  Time worst = 0;
  for (const auto& c : item_completions(s)) {
    if (c.completed == kNever) return kNever;
    worst = std::max(worst, c.delay());
  }
  return worst;
}

std::vector<int> receive_counts(const Schedule& s, ItemId item) {
  std::vector<int> counts(static_cast<std::size_t>(s.params().P), 0);
  for (const auto& op : s.sends()) {
    if (op.item == item) ++counts[static_cast<std::size_t>(op.to)];
  }
  return counts;
}

std::vector<int> send_counts(const Schedule& s) {
  std::vector<int> counts(static_cast<std::size_t>(s.params().P), 0);
  for (const auto& op : s.sends()) {
    ++counts[static_cast<std::size_t>(op.from)];
  }
  return counts;
}

bool is_single_sending(const Schedule& s, ProcId source) {
  std::vector<int> per_item(static_cast<std::size_t>(s.num_items()), 0);
  for (const auto& op : s.sends()) {
    if (op.from == source &&
        ++per_item[static_cast<std::size_t>(op.item)] > 1) {
      return false;
    }
  }
  return true;
}

}  // namespace logpc
