#include "bcast/hierarchical.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

namespace logpc::bcast {

namespace {

constexpr Time kUnknown = std::numeric_limits<Time>::max();

/// The machine the emitted schedule is stated on: the conservative
/// projection over the link classes the schedule can actually use.  The
/// degenerate shapes use exactly one class, so they are stated on it and
/// come out as genuine flat-LogP schedules of that class.
Params stated_machine(const HierParams& h) {
  if (h.num_clusters() == 1) return h.intra;
  if (h.num_clusters() == h.P()) {
    Params cross = h.cross;
    cross.P = h.P();
    return cross;
  }
  return h.flat();
}

/// One candidate transmission the greedy could commit next.
struct Candidate {
  Time avail = kUnknown;  ///< schedule availability at the receiver
  Time start = 0;
  ProcId from = kNoProc;
  ProcId to = kNoProc;
  bool cross = false;
};

/// One greedy pass.  `cross_eager` selects the regime heuristic: eager
/// commits a pending cross send before any intra send (best when the
/// cross latency dominates — clusters unlock as early as possible), lazy
/// commits whichever transmission informs a new rank first (best when the
/// cross gap dominates — cheap intra helpers are recruited and the cross
/// sends spread over distinct ports instead of serializing one leader's).
HierBroadcast build_two_level(const HierParams& h, ProcId root,
                              bool cross_eager) {
  const int P = h.P();
  const int C = h.num_clusters();
  const Params machine = stated_machine(h);

  HierBroadcast out;
  out.schedule = Schedule(machine, 1);
  out.schedule.add_initial(0, root, 0);
  out.informed.assign(static_cast<std::size_t>(P), kUnknown);
  out.informed[static_cast<std::size_t>(root)] = 0;
  std::vector<Time> port_free(static_cast<std::size_t>(P), 0);

  // Pending targets.  Each unreached cluster is entered exactly once,
  // through a cross-class send to its leader; every other rank is an
  // intra-class target inside its own cluster.  That keeps the two-level
  // structure (C - 1 cross transmissions, one in-edge per cluster) while
  // the greedy below decides *who* sends each one and when.
  const int root_cluster = h.cluster_of[static_cast<std::size_t>(root)];
  std::vector<int> cross_pending;  // cluster ids, increasing
  cross_pending.reserve(static_cast<std::size_t>(C - 1));
  for (int c = 0; c < C; ++c) {
    if (c != root_cluster) cross_pending.push_back(c);
  }
  std::vector<std::vector<ProcId>> intra_pending(
      static_cast<std::size_t>(C));
  std::vector<std::vector<ProcId>> informed_members(
      static_cast<std::size_t>(C));
  informed_members[static_cast<std::size_t>(root_cluster)].push_back(root);
  for (ProcId r = 0; r < P; ++r) {
    const int c = h.cluster_of[static_cast<std::size_t>(r)];
    if (r == root) continue;
    if (c != root_cluster && r == h.leader(c)) continue;  // cross target
    intra_pending[static_cast<std::size_t>(c)].push_back(r);
  }
  std::size_t cross_next = 0;
  std::vector<std::size_t> intra_next(static_cast<std::size_t>(C), 0);

  // Cheapest-arrival greedy: repeatedly commit the transmission that
  // informs a new rank earliest (ties prefer the cross send — it unlocks a
  // whole cluster's parallelism, the intra send only one rank).  On a
  // uniform machine this greedy *is* the Theorem 2.1 optimal broadcast.
  const auto ready_of = [&](ProcId s) {
    return std::max(out.informed[static_cast<std::size_t>(s)],
                    port_free[static_cast<std::size_t>(s)]);
  };
  std::size_t remaining = static_cast<std::size_t>(P - 1);
  while (remaining > 0) {
    Candidate best;
    if (cross_next < cross_pending.size()) {
      const int target_cluster = cross_pending[cross_next];
      for (int c = 0; c < C; ++c) {
        for (const ProcId s : informed_members[static_cast<std::size_t>(c)]) {
          const Time start = ready_of(s);
          const Time avail = start + h.cross.o + h.cross.L + machine.o;
          if (avail < best.avail) {
            best = {avail, start, s, h.leader(target_cluster), true};
          }
        }
      }
    }
    const bool take_cross_now = cross_eager && best.from != kNoProc;
    if (!take_cross_now) {
      for (int c = 0; c < C; ++c) {
        auto& pending = intra_pending[static_cast<std::size_t>(c)];
        if (intra_next[static_cast<std::size_t>(c)] >= pending.size()) {
          continue;
        }
        const ProcId target =
            pending[intra_next[static_cast<std::size_t>(c)]];
        for (const ProcId s : informed_members[static_cast<std::size_t>(c)]) {
          const Time start = ready_of(s);
          const Time avail = start + h.intra.o + h.intra.L + machine.o;
          if (avail < best.avail) {
            best = {avail, start, s, target, false};
          }
        }
      }
    }

    const Params& cls = best.cross ? h.cross : h.intra;
    SendOp op;
    op.start = best.start;
    op.from = best.from;
    op.to = best.to;
    op.item = 0;
    op.recv_start = best.start + cls.o + cls.L;
    out.informed[static_cast<std::size_t>(best.to)] =
        out.schedule.add_send(op);
    port_free[static_cast<std::size_t>(best.from)] = best.start + cls.g;
    const int to_cluster = h.cluster_of[static_cast<std::size_t>(best.to)];
    informed_members[static_cast<std::size_t>(to_cluster)].push_back(best.to);
    if (best.cross) {
      ++cross_next;
    } else {
      ++intra_next[static_cast<std::size_t>(to_cluster)];
    }
    --remaining;
  }

  out.schedule.sort();
  out.completion =
      *std::max_element(out.informed.begin(), out.informed.end());
  return out;
}

}  // namespace

HierBroadcast hierarchical_broadcast(const HierParams& h, ProcId root) {
  h.require_valid();
  if (root < 0 || root >= h.P()) {
    throw std::invalid_argument("hierarchical_broadcast: root out of range");
  }
  // The two regime heuristics bracket the design space; keep whichever
  // the class-accurate clock scores faster.  Degenerate shapes use one
  // link class only, where the two passes coincide.
  HierBroadcast lazy = build_two_level(h, root, /*cross_eager=*/false);
  if (h.num_clusters() <= 1 || h.num_clusters() == h.P()) return lazy;
  HierBroadcast eager = build_two_level(h, root, /*cross_eager=*/true);
  const Time lazy_span = predict_makespan(lazy.schedule, h);
  const Time eager_span = predict_makespan(eager.schedule, h);
  return eager_span < lazy_span ? std::move(eager) : std::move(lazy);
}

Time predict_makespan(const Schedule& s, const HierParams& h) {
  h.require_valid();
  if (s.num_items() != 1) {
    throw std::invalid_argument("predict_makespan: single-item schedules only");
  }
  if (s.params().P > h.P()) {
    throw std::invalid_argument(
        "predict_makespan: schedule machine larger than topology");
  }
  if (s.initials().empty()) {
    throw std::invalid_argument("predict_makespan: no initial placement");
  }
  const auto n = static_cast<std::size_t>(h.P());
  std::vector<Time> informed(n, kUnknown);
  std::vector<Time> port_free(n, 0);
  for (const InitialPlacement& init : s.initials()) {
    auto& t = informed[static_cast<std::size_t>(init.proc)];
    t = std::min(t, init.time);
  }

  // Replay sends in original (start, construction) order, preserving each
  // processor's port order.  In a causally consistent schedule a sender's
  // informing transmission always *starts* strictly before any of the
  // sender's own sends, so one pass in global start order sees informed[]
  // populated before it is read.
  std::vector<const SendOp*> order;
  order.reserve(s.sends().size());
  for (const SendOp& op : s.sends()) order.push_back(&op);
  std::stable_sort(order.begin(), order.end(),
                   [](const SendOp* a, const SendOp* b) {
                     return a->start < b->start;
                   });
  for (const SendOp* op : order) {
    const auto f = static_cast<std::size_t>(op->from);
    const auto t = static_cast<std::size_t>(op->to);
    if (informed[f] == kUnknown) {
      throw std::invalid_argument(
          "predict_makespan: processor sends an item it never holds");
    }
    const Params& cls = h.link(op->from, op->to);
    const Time start = std::max(informed[f], port_free[f]);
    port_free[f] = start + cls.g;
    const Time avail = start + cls.transfer_time();
    informed[t] = std::min(informed[t], avail);
  }

  Time makespan = 0;
  for (std::size_t r = 0; r < static_cast<std::size_t>(s.params().P); ++r) {
    if (informed[r] == kUnknown) {
      throw std::invalid_argument(
          "predict_makespan: schedule never informs every processor");
    }
    makespan = std::max(makespan, informed[r]);
  }
  return makespan;
}

}  // namespace logpc::bcast
