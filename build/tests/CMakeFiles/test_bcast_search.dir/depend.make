# Empty dependencies file for test_bcast_search.
# This may be replaced when dependencies are built.
