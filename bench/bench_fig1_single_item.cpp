/// Experiment F1 - Figure 1: the optimal broadcast tree for P = 8, L = 6,
/// g = 4, o = 2, and the per-processor activity chart.  Paper: B(8) = 24,
/// root sends 4 times, node times {0,10,14,18,20,22,24,24}.

#include "bench_util.hpp"

#include "bcast/single_item.hpp"
#include "baselines/bcast_baselines.hpp"
#include "sched/metrics.hpp"
#include "validate/checker.hpp"
#include "viz/timeline.hpp"
#include "viz/tree_render.hpp"

namespace {

using namespace logpc;
using logpc::bench::Table;

void report() {
  const Params params{8, 6, 2, 4};
  logpc::bench::section("Figure 1: optimal broadcast tree (P=8, L=6, g=4, o=2)");
  const auto tree = bcast::BroadcastTree::optimal(params, 8);
  std::cout << viz::render_tree(tree);
  std::cout << viz::degree_summary(tree) << "\n";

  logpc::bench::section("Figure 1 (right): processor activity over time");
  const Schedule s = bcast::optimal_single_item(params);
  std::cout << viz::render_timeline(s);

  logpc::bench::section("paper vs measured");
  Table t({"quantity", "paper", "measured", "match"});
  t.row("B(8; 6,2,4)", 24, completion_time(s),
        logpc::bench::ok(completion_time(s) == 24));
  t.row("root sends", 4, tree.node(0).children.size(),
        logpc::bench::ok(tree.node(0).children.size() == 4));
  t.row("messages", 7, s.sends().size(),
        logpc::bench::ok(s.sends().size() == 7));
  t.row("schedule valid", "-", validate::check(s).summary(),
        logpc::bench::ok(validate::is_valid(s)));
  t.print();

  logpc::bench::section("baseline comparison on the same machine");
  Table c({"tree", "completion", "vs optimal"});
  const Time best = completion_time(s);
  auto add = [&](const char* name, Time v) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(2)
       << static_cast<double>(v) / static_cast<double>(best) << "x";
    c.row(name, v, os.str());
  };
  add("optimal (Theorem 2.1)", best);
  add("binomial", baselines::binomial_tree(params, 8).makespan());
  add("binary", baselines::binary_tree(params, 8).makespan());
  add("chain", baselines::linear_chain(params, 8).makespan());
  add("flat", baselines::flat_tree(params, 8).makespan());
  c.print();
}

void BM_OptimalTreeConstruction(benchmark::State& state) {
  const Params params{static_cast<int>(state.range(0)), 6, 2, 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bcast::BroadcastTree::optimal(params, params.P));
  }
}
BENCHMARK(BM_OptimalTreeConstruction)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void BM_BOfP(benchmark::State& state) {
  const Params params{static_cast<int>(state.range(0)), 6, 2, 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(bcast::B_of_P(params, params.P));
  }
}
BENCHMARK(BM_BOfP)->Arg(64)->Arg(4096)->Arg(1 << 16);

void BM_ScheduleValidation(benchmark::State& state) {
  const Params params{static_cast<int>(state.range(0)), 6, 2, 4};
  const Schedule s = bcast::optimal_single_item(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(validate::check(s));
  }
}
BENCHMARK(BM_ScheduleValidation)->Arg(64)->Arg(1024);

}  // namespace

LOGPC_BENCH_MAIN(report)
