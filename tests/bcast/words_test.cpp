#include "bcast/words.hpp"

#include <gtest/gtest.h>

namespace logpc::bcast {
namespace {

// The Section 3.2 running example: L = 3, t = 7, P - 1 = 9.  Blocks H5
// (r=5, d=0), E2 (r=2, d=3), D1 (r=1, d=4); per-step leaf supplies
// a(delay 7) x3, b(delay 6) x2, c(delay 5) x1.
std::vector<BlockSpec> t9_blocks() {
  return {BlockSpec{5, 0}, BlockSpec{2, 3}, BlockSpec{1, 4}};
}
std::vector<Time> t9_delays() { return {7, 6, 5}; }

TEST(Words, SolvesPaperRunningExample) {
  const auto res = assign_words(t9_delays(), t9_blocks(), {3, 2, 1});
  ASSERT_EQ(res.status, SolveStatus::kSolved);
  const auto& wa = *res.assignment;
  ASSERT_EQ(wa.words.size(), 3u);
  // H5's word must be one of the two supply-feasible paper words.
  const std::string h5 = word_to_string(wa.words[0]);
  EXPECT_TRUE(h5 == "acab" || h5 == "abca") << h5;
  // Letter conservation: words + receive-only letter == supplies.
  std::vector<int> used(3, 0);
  for (const auto& w : wa.words) {
    for (const int l : w) ++used[static_cast<std::size_t>(l)];
  }
  ++used[static_cast<std::size_t>(wa.receive_only_letter)];
  EXPECT_EQ(used, (std::vector<int>{3, 2, 1}));
}

TEST(Words, EveryWordLegalForItsBlock) {
  const auto res = assign_words(t9_delays(), t9_blocks(), {3, 2, 1});
  ASSERT_EQ(res.status, SolveStatus::kSolved);
  const auto blocks = t9_blocks();
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    WordContext ctx;
    ctx.delays = t9_delays();
    ctx.r = blocks[i].r;
    ctx.d = blocks[i].d;
    EXPECT_TRUE(word_is_legal(ctx, res.assignment->words[i])) << i;
  }
}

TEST(Words, SupplyDemandMismatchIsInfeasible) {
  // One letter short: 3+2+1 = 6 but demand is (5-1)+(2-1)+(1-1)+1 = 6;
  // make supply 5.
  const auto res = assign_words(t9_delays(), t9_blocks(), {2, 2, 1});
  EXPECT_EQ(res.status, SolveStatus::kInfeasible);
  EXPECT_EQ(res.nodes_explored, 0u);
}

TEST(Words, BudgetExhaustionIsReported) {
  const auto res = assign_words(t9_delays(), t9_blocks(), {3, 2, 1}, 0, 2);
  EXPECT_EQ(res.status, SolveStatus::kBudgetExhausted);
  EXPECT_FALSE(res.assignment.has_value());
}

TEST(Words, EmptyBlockListLeavesOneLetterForReceiveOnly) {
  const auto res = assign_words({5}, {}, {1});
  ASSERT_EQ(res.status, SolveStatus::kSolved);
  EXPECT_EQ(res.assignment->receive_only_letter, 0);
  EXPECT_TRUE(res.assignment->words.empty());
}

TEST(Words, RejectsMalformedInput) {
  EXPECT_THROW(assign_words({}, {}, {}), std::invalid_argument);
  EXPECT_THROW(assign_words({5}, {}, {1, 2}), std::invalid_argument);
  EXPECT_THROW(assign_words({5}, {}, {-1}), std::invalid_argument);
  EXPECT_THROW(assign_words({5}, {BlockSpec{0, 0}}, {1}),
               std::invalid_argument);
  EXPECT_THROW(assign_words({5}, {}, {1}, -1), std::invalid_argument);
}

TEST(Words, WaitVariantsExpandFeasibility) {
  // An L = 2-style instance that is infeasible strictly but solvable with
  // wait-1 variants.  t = 4, L = 2: blocks from T(f_4 = 5): root r=3 d=0,
  // node r=1 d=2; supplies a(4) x2, b(3) x1.
  const std::vector<BlockSpec> blocks{BlockSpec{3, 0}, BlockSpec{1, 2}};
  const std::vector<Time> delays{4, 3};
  const auto strict = assign_words(delays, blocks, {2, 1}, 0);
  EXPECT_EQ(strict.status, SolveStatus::kInfeasible);
  const auto buffered = assign_words(delays, blocks, {2, 1}, 1);
  ASSERT_EQ(buffered.status, SolveStatus::kSolved);
  // Some chosen letter must be a wait-1 variant (id >= 2).
  bool any_wait = false;
  for (const auto& w : buffered.assignment->words) {
    for (const int l : w) any_wait = any_wait || l >= 2;
  }
  EXPECT_TRUE(any_wait);
}

TEST(Words, ReceiveOnlyLetterIsBaseIndexed) {
  const auto res = assign_words(t9_delays(), t9_blocks(), {3, 2, 1}, 2);
  ASSERT_EQ(res.status, SolveStatus::kSolved);
  EXPECT_GE(res.assignment->receive_only_letter, 0);
  EXPECT_LT(res.assignment->receive_only_letter, 3);
}

}  // namespace
}  // namespace logpc::bcast
