#include "bcast/hierarchical.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "bcast/single_item.hpp"
#include "bcast/tree.hpp"
#include "exec/engine.hpp"
#include "exec/program.hpp"

namespace logpc::bcast {
namespace {

const Params kIntra{0, 2, 1, 2};
const Params kCross{0, 16, 3, 10};

HierParams machine(int P, int clusters) {
  return HierParams::uniform(P, clusters, kIntra, kCross);
}

/// Every rank informed exactly once (root via its initial), tree edges
/// only from informed senders, availability consistent with `informed`.
void check_structure(const HierBroadcast& r, const HierParams& h,
                     ProcId root) {
  ASSERT_EQ(r.informed.size(), static_cast<std::size_t>(h.P()));
  EXPECT_EQ(r.informed[static_cast<std::size_t>(root)], 0);
  std::set<ProcId> reached{root};
  for (const SendOp& op : r.schedule.sends()) {
    EXPECT_TRUE(reached.count(op.from))
        << "rank " << op.from << " sends before it is informed";
    EXPECT_TRUE(reached.insert(op.to).second)
        << "rank " << op.to << " informed twice";
    EXPECT_GE(op.start, r.informed[static_cast<std::size_t>(op.from)]);
    EXPECT_EQ(r.schedule.available_at(op),
              r.informed[static_cast<std::size_t>(op.to)]);
  }
  EXPECT_EQ(reached.size(), static_cast<std::size_t>(h.P()));
  EXPECT_EQ(r.completion,
            *std::max_element(r.informed.begin(), r.informed.end()));
  EXPECT_EQ(r.completion, r.schedule.makespan());
}

TEST(HierarchicalBroadcast, CoversEveryRankOnMixedShapes) {
  for (const auto& [P, C] : std::vector<std::pair<int, int>>{
           {4, 2}, {8, 2}, {9, 3}, {16, 4}, {13, 5}, {32, 4}}) {
    for (const ProcId root : {ProcId{0}, static_cast<ProcId>(P / 2),
                              static_cast<ProcId>(P - 1)}) {
      const HierParams h = machine(P, C);
      const HierBroadcast r = hierarchical_broadcast(h, root);
      check_structure(r, h, root);
    }
  }
}

TEST(HierarchicalBroadcast, PortGapsRespectEachLinkClass) {
  const HierParams h = machine(12, 3);
  const HierBroadcast r = hierarchical_broadcast(h, 0);
  // Per sender, consecutive sends must be spaced by the gap of the
  // *earlier* send's class — the per-link-class LogP port rule.
  std::vector<std::vector<SendOp>> by_sender(12);
  for (const SendOp& op : r.schedule.sends()) {
    by_sender[static_cast<std::size_t>(op.from)].push_back(op);
  }
  for (auto& sends : by_sender) {
    std::sort(sends.begin(), sends.end(),
              [](const SendOp& a, const SendOp& b) { return a.start < b.start; });
    for (std::size_t i = 1; i < sends.size(); ++i) {
      const Time gap = h.link(sends[i - 1].from, sends[i - 1].to).g;
      EXPECT_GE(sends[i].start - sends[i - 1].start, gap)
          << "sender " << sends[i].from << " violates its port gap";
    }
  }
  // And each send's explicit receive time is class-accurate.
  for (const SendOp& op : r.schedule.sends()) {
    const Params& cls = h.link(op.from, op.to);
    EXPECT_EQ(op.recv_start, op.start + cls.o + cls.L);
  }
}

TEST(HierarchicalBroadcast, OneClusterDegeneratesToIntraOptimalTree) {
  const HierParams h = machine(8, 1);
  const HierBroadcast r = hierarchical_broadcast(h, 0);
  check_structure(r, h, 0);
  Params intra = kIntra;
  intra.P = 8;
  EXPECT_EQ(r.completion, B_of_P(intra, 8));
}

TEST(HierarchicalBroadcast, AllSingletonsDegeneratesToCrossOptimalTree) {
  const HierParams h = machine(6, 6);
  const HierBroadcast r = hierarchical_broadcast(h, 0);
  check_structure(r, h, 0);
  Params cross = kCross;
  cross.P = 6;
  EXPECT_EQ(r.completion, B_of_P(cross, 6));
}

TEST(HierarchicalBroadcast, RejectsBadArguments) {
  const HierParams h = machine(8, 2);
  EXPECT_THROW((void)hierarchical_broadcast(h, -1), std::invalid_argument);
  EXPECT_THROW((void)hierarchical_broadcast(h, 8), std::invalid_argument);
  HierParams broken = h;
  broken.cluster_of[0] = 5;
  EXPECT_THROW((void)hierarchical_broadcast(broken, 0),
               std::invalid_argument);
}

TEST(HierarchicalBroadcast, PredictMakespanNeverExceedsConstruction) {
  // The emitted schedule charges receive overhead at the flat rate;
  // predict_makespan re-times with exact per-class overheads, so it can
  // only come in at or under the construction's completion.
  for (const auto& [P, C] : std::vector<std::pair<int, int>>{
           {8, 2}, {12, 3}, {16, 4}, {13, 5}}) {
    const HierParams h = machine(P, C);
    const HierBroadcast r = hierarchical_broadcast(h, 0);
    const Time exact = predict_makespan(r.schedule, h);
    EXPECT_LE(exact, r.completion) << "P=" << P << " C=" << C;
    EXPECT_GT(exact, 0);
  }
}

TEST(HierarchicalBroadcast, BeatsFlatOptimalTreeWhenCrossGapDominates) {
  // The property the two-level construction exists for: a topology-blind
  // plan has to state its send times on the conservative flat projection
  // (the only single machine that is feasible on every link), so the best
  // it can commit to is the Theorem 2.1 makespan B(flat) — every hop
  // priced at the expensive class.  The cluster-aware schedule books
  // intra hops at intra prices; its class-model makespan must be strictly
  // smaller on every shape, and the win must widen as the cross gap
  // grows while the hierarchical schedule absorbs it with intra helpers.
  for (const auto& [P, C] : std::vector<std::pair<int, int>>{
           {8, 2}, {12, 3}, {16, 4}, {24, 4}, {32, 8}}) {
    Time previous_margin = 0;
    for (const Time cross_g : {Time{10}, Time{24}, Time{60}}) {
      Params cross = kCross;
      cross.g = cross_g;
      const HierParams h = HierParams::uniform(P, C, kIntra, cross);
      const Time hier =
          predict_makespan(hierarchical_broadcast(h, 0).schedule, h);
      const Time flat = B_of_P(h.flat(), P);
      EXPECT_LT(hier, flat) << "P=" << P << " C=" << C << " cross_g="
                            << cross_g;
      EXPECT_GT(flat - hier, previous_margin)
          << "P=" << P << " C=" << C << " cross_g=" << cross_g
          << ": the hierarchical win should widen with the cross gap";
      previous_margin = flat - hier;
    }
  }
}

TEST(HierarchicalBroadcast, PredictMakespanMatchesFlatModelOnUniformMachine) {
  // When both classes are identical the two-class replay is plain ASAP
  // flat LogP: on the optimal tree it must reproduce B(P) exactly.
  Params cls = kIntra;
  const HierParams h = HierParams::uniform(9, 3, cls, cls);
  cls.P = 9;
  EXPECT_EQ(predict_makespan(optimal_single_item(cls, 0), h),
            B_of_P(cls, 9));
}

TEST(HierarchicalBroadcast, PredictMakespanRejectsIllFormedSchedules) {
  const HierParams h = machine(4, 2);
  Schedule no_initial(h.flat(), 1);
  EXPECT_THROW((void)predict_makespan(no_initial, h), std::invalid_argument);

  Schedule two_items(h.flat(), 2);
  two_items.add_initial(0, 0, 0);
  two_items.add_initial(1, 0, 0);
  EXPECT_THROW((void)predict_makespan(two_items, h), std::invalid_argument);

  Schedule orphan(h.flat(), 1);
  orphan.add_initial(0, 0, 0);
  orphan.add_send(0, /*from=*/2, /*to=*/3, 0);  // 2 never holds the item
  EXPECT_THROW((void)predict_makespan(orphan, h), std::invalid_argument);
}

TEST(HierarchicalBroadcast, ExecutesByteExactOnTheEngine) {
  const HierParams h = machine(12, 3);
  const HierBroadcast r = hierarchical_broadcast(h, 2);
  const exec::Program program =
      exec::compile_broadcast(r.schedule, "bcast-hier");
  exec::Bytes payload(512);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>((i * 37 + 11) & 0xff);
  }
  exec::Engine engine;
  const exec::ExecReport report = engine.run(program, {payload});
  for (ProcId p = 0; p < 12; ++p) {
    EXPECT_EQ(report.item_at(p, 0), payload) << "rank " << p;
  }
}

}  // namespace
}  // namespace logpc::bcast
