#include "viz/timeline.hpp"

#include <sstream>
#include <vector>

#include "sim/trace.hpp"

namespace logpc::viz {

std::string render_timeline(const Schedule& s) {
  const Time span = s.makespan() + 1;
  const auto trace = sim::Trace::from(s);
  std::ostringstream os;
  // Header: mark every 5th cycle.
  os << "      ";
  for (Time t = 0; t < span; ++t) {
    os << (t % 5 == 0 ? '|' : ' ');
  }
  os << "\n";
  for (ProcId p = 0; p < s.params().P; ++p) {
    std::string row(static_cast<std::size_t>(span), '.');
    for (const auto& a : trace.per_proc[static_cast<std::size_t>(p)]) {
      const char busy =
          a.kind == sim::ActivityKind::kSendOverhead ? 's' : 'r';
      const char instant =
          a.kind == sim::ActivityKind::kSendOverhead ? '*' : 'v';
      if (a.begin == a.end) {
        if (a.begin < span) row[static_cast<std::size_t>(a.begin)] = instant;
      } else {
        for (Time t = a.begin; t < a.end && t < span; ++t) {
          row[static_cast<std::size_t>(t)] = busy;
        }
      }
    }
    os << "P" << p << (p < 10 ? "    " : "   ") << row << "\n";
  }
  return os.str();
}

}  // namespace logpc::viz
