#include "sum/lazy.hpp"

#include <algorithm>
#include <string>

namespace logpc::sum {

namespace {

using validate::CheckResult;
using validate::Rule;
using validate::Violation;

void add(CheckResult& r, Rule rule, std::string detail) {
  r.violations.push_back(Violation{rule, std::move(detail)});
}

std::string P(ProcId p) { return "P" + std::to_string(p); }

}  // namespace

validate::CheckResult check_plan(const SummationPlan& plan) {
  CheckResult result;
  const Time o = plan.params.o;
  const Time g = plan.params.g;
  const Time L = plan.params.L;
  const auto n = plan.procs.size();

  // Index plans by processor for cross-referencing.
  std::vector<const ProcPlan*> by_proc(static_cast<std::size_t>(plan.params.P),
                                       nullptr);
  int roots = 0;
  for (const auto& pp : plan.procs) {
    if (pp.proc < 0 || pp.proc >= plan.params.P) {
      add(result, Rule::kBadProcessor, P(pp.proc));
      return result;
    }
    if (by_proc[static_cast<std::size_t>(pp.proc)] != nullptr) {
      add(result, Rule::kBadProcessor, P(pp.proc) + " appears twice");
      return result;
    }
    by_proc[static_cast<std::size_t>(pp.proc)] = &pp;
    if (pp.send_to == kNoProc) {
      ++roots;
      if (pp.proc != plan.root) {
        add(result, Rule::kBadProcessor,
            P(pp.proc) + " has no parent but is not the root");
      }
      if (pp.send_time != plan.t) {
        add(result, Rule::kLatency,
            "root finishes at " + std::to_string(pp.send_time) + " != t=" +
                std::to_string(plan.t));
      }
    }
  }
  if (roots != 1) {
    add(result, Rule::kBadProcessor,
        std::to_string(roots) + " roots (expected 1)");
  }

  Count total = 0;
  for (const auto& pp : plan.procs) {
    const auto k = static_cast<Time>(pp.recv_times.size());
    // Local operand count must be positive.
    if (pp.send_time < (o + 1) * k) {
      add(result, Rule::kItemNotHeld,
          P(pp.proc) + " has negative local operand count");
      continue;
    }
    total = sat_add(total, pp.local_operands(o));
    // Receptions chronological, spaced >= g, and lazy: reception j of k
    // starts exactly at S - (o+1) - (k-1-j)g for j = 0..k-1 (chronological).
    for (Time j = 0; j < k; ++j) {
      const Time expected =
          pp.send_time - (o + 1) - (k - 1 - j) * g;
      const Time actual = pp.recv_times[static_cast<std::size_t>(j)];
      if (actual != expected) {
        add(result, Rule::kRecvGap,
            P(pp.proc) + " reception " + std::to_string(j) + " at " +
                std::to_string(actual) + ", lazy position is " +
                std::to_string(expected));
      }
      if (actual < 0) {
        add(result, Rule::kLatency,
            P(pp.proc) + " reception before cycle 0");
      }
    }
    // Message consistency: each reception's sender must exist, name this
    // processor as its parent, and have sent exactly o+L before.
    if (pp.recv_from.size() != pp.recv_times.size()) {
      add(result, Rule::kBadProcessor,
          P(pp.proc) + " recv_from/recv_times size mismatch");
      continue;
    }
    for (std::size_t j = 0; j < pp.recv_from.size(); ++j) {
      const ProcId child = pp.recv_from[j];
      if (child < 0 || child >= plan.params.P ||
          by_proc[static_cast<std::size_t>(child)] == nullptr) {
        add(result, Rule::kBadProcessor,
            P(pp.proc) + " receives from unknown " + P(child));
        continue;
      }
      const ProcPlan& cp = *by_proc[static_cast<std::size_t>(child)];
      if (cp.send_to != pp.proc) {
        add(result, Rule::kBadProcessor,
            P(child) + " does not send to " + P(pp.proc));
      }
      if (cp.send_time + o + L != pp.recv_times[j]) {
        add(result, Rule::kLatency,
            P(child) + " sends at " + std::to_string(cp.send_time) +
                " but " + P(pp.proc) + " receives at " +
                std::to_string(pp.recv_times[j]));
      }
    }
  }
  if (total != plan.total_operands) {
    add(result, Rule::kBadItem,
        "total_operands=" + std::to_string(plan.total_operands) +
            " but per-processor counts sum to " + std::to_string(total));
  }
  (void)n;
  return result;
}

bool is_valid_plan(const SummationPlan& plan) {
  return check_plan(plan).ok();
}

}  // namespace logpc::sum
