#include "api/communicator.hpp"

#include <stdexcept>

namespace logpc::api {

Time scatter_time(const Params& params) {
  params.require_valid();
  if (params.P == 1) return 0;
  return (params.P - 2) * params.g + params.transfer_time();
}

Communicator::Communicator(Params params) : params_(params) {
  params.require_valid();
}

Params Communicator::postal_projection() const {
  return Params::postal(params_.P, params_.transfer_time());
}

Schedule Communicator::bcast(ProcId root) const {
  return bcast::optimal_single_item(params_, root);
}

Time Communicator::bcast_time() const {
  return bcast::B_of_P(params_, params_.P);
}

bcast::KItemResult Communicator::bcast_k(int k) const {
  const Params postal = postal_projection();
  return bcast::kitem_broadcast(postal.P, postal.L, k);
}

bcast::BufferedKItemResult Communicator::bcast_k_buffered(int k) const {
  const Params postal = postal_projection();
  return bcast::kitem_buffered(postal.P, postal.L, k);
}

Schedule Communicator::scatter(ProcId root) const {
  if (root < 0 || root >= params_.P) {
    throw std::invalid_argument("Communicator::scatter: bad root");
  }
  // Item d (for destination d) leaves the root in destination order; any
  // order is optimal since every message must cross the root's send port.
  Schedule s(params_, params_.P);
  for (ProcId d = 0; d < params_.P; ++d) s.add_initial(d, root, 0);
  Time start = 0;
  for (ProcId d = 0; d < params_.P; ++d) {
    if (d == root) continue;
    s.add_send(start, root, d, d);
    start += params_.g;
  }
  s.sort();
  return s;
}

bcast::ReductionPlan Communicator::reduce(ProcId root) const {
  return bcast::optimal_reduction(params_, root);
}

Schedule Communicator::gather(ProcId root) const {
  if (root < 0 || root >= params_.P) {
    throw std::invalid_argument("Communicator::gather: bad root");
  }
  // The root receives P-1 messages at least g apart; stagger the senders
  // so arrivals land exactly g apart (the scatter pattern reversed).
  Schedule s(params_, params_.P);
  for (ProcId p = 0; p < params_.P; ++p) s.add_initial(p, p, 0);
  Time start = 0;
  for (ProcId p = 0; p < params_.P; ++p) {
    if (p == root) continue;
    s.add_send(start, p, root, p);
    start += params_.g;
  }
  s.sort();
  return s;
}

sum::SummationPlan Communicator::reduce_operands(Count n) const {
  return sum::optimal_summation(params_,
                                sum::min_time_for_operands(params_, n));
}

Time Communicator::reduce_operands_time(Count n) const {
  return sum::min_time_for_operands(params_, n);
}

Schedule Communicator::alltoall(int k) const {
  return bcast::all_to_all_k(params_, k);
}

Time Communicator::alltoall_time(int k) const {
  return bcast::all_to_all_lower_bound(params_, k);
}

Schedule Communicator::alltoall_personalized() const {
  return bcast::all_to_all_personalized(params_);
}

bcast::CombiningSchedule Communicator::allreduce() const {
  const Params postal = postal_projection();
  const Time T = bcast::combining_time_for(postal.P, postal.L);
  return bcast::combining_broadcast(T, postal.L);
}

Time Communicator::allreduce_time() const {
  const Params postal = postal_projection();
  return bcast::combining_time_for(postal.P, postal.L);
}

}  // namespace logpc::api
