#pragma once

#include <compare>

#include "logp/time.hpp"

/// \file ops.hpp
/// Primitive schedule operations.  The only communication primitive in LogP
/// is point-to-point message transmission, so a communication schedule is a
/// list of timed sends; receive timing is derived (or, in the buffered model
/// of Theorem 3.8, explicitly chosen).

namespace logpc {

/// One point-to-point transmission of one item.
///
/// Timing (strict LogP, synchronous assumption of the paper):
///   [start, start+o)           sender busy with send overhead
///   [start+o, start+o+L)       message on the wire
///   [start+o+L, start+2o+L)    receiver busy with receive overhead
///   start + L + 2o             item available at receiver
///
/// In the modified model of Section 3.5 the message enters the receiver's
/// buffer at start+o+L and the receiver may begin the receive overhead at
/// any recv_start >= start+o+L; set `recv_start` to that time.  Leaving it
/// at kNever means "receive immediately on arrival" (strict model).
struct SendOp {
  Time start = 0;
  ProcId from = kNoProc;
  ProcId to = kNoProc;
  ItemId item = 0;
  Time recv_start = kNever;  ///< kNever = start + o + L (no buffering delay)

  friend auto operator<=>(const SendOp&, const SendOp&) = default;
};

/// When an item first exists somewhere without being received: the initial
/// placement of broadcast sources or summation operands, or an item
/// *generated* at a source mid-run (continuous broadcast generates item i at
/// time i*g).
struct InitialPlacement {
  ItemId item = 0;
  ProcId proc = kNoProc;
  Time time = 0;  ///< cycle at which the item becomes available at `proc`

  friend auto operator<=>(const InitialPlacement&,
                          const InitialPlacement&) = default;
};

}  // namespace logpc
