/// Experiment A1 - ablation: how the LogP parameters shape the optimal
/// tree.  Larger g narrows fan-out (sends are scarcer); larger L deepens
/// subtree reuse; o enters only through L + 2o.  This is the design-space
/// view that makes the broadcast tree "LogP-aware" rather than a fixed
/// binomial shape.

#include "bench_util.hpp"

#include "baselines/bcast_baselines.hpp"
#include "bcast/tree.hpp"

namespace {

using namespace logpc;
using logpc::bench::Table;

void report() {
  const int P = 64;
  logpc::bench::section("B(64) across the (L, g) grid (o = 1)");
  Table t({"L \\ g", "g=1", "g=2", "g=4", "g=8", "g=16"});
  for (const Time L : {1, 2, 4, 8, 16, 32}) {
    std::string cells[5];
    int i = 0;
    for (const Time g : {1, 2, 4, 8, 16}) {
      const Params params{P, L, 1, g};
      cells[i++] = std::to_string(bcast::B_of_P(params, P));
    }
    t.row("L=" + std::to_string(L), cells[0], cells[1], cells[2], cells[3],
          cells[4]);
  }
  t.print();

  logpc::bench::section("root fan-out across the grid (o = 1)");
  Table f({"L \\ g", "g=1", "g=2", "g=4", "g=8", "g=16"});
  for (const Time L : {1, 2, 4, 8, 16, 32}) {
    std::string cells[5];
    int i = 0;
    for (const Time g : {1, 2, 4, 8, 16}) {
      const auto tree = bcast::BroadcastTree::optimal(Params{P, L, 1, g}, P);
      cells[i++] = std::to_string(tree.node(0).children.size());
    }
    f.row("L=" + std::to_string(L), cells[0], cells[1], cells[2], cells[3],
          cells[4]);
  }
  f.print();
  std::cout << "shape: fan-out grows with L/g (high latency -> keep sending;\n"
               "high gap -> hand off quickly), reproducing the paper's point\n"
               "that the optimal tree adapts to the machine.\n";

  logpc::bench::section("overhead only shifts, never reshapes (L+2o)");
  Table o({"o", "B(64) at L=4,g=2", "root fan-out"});
  for (const Time oo : {0, 1, 2, 4, 8}) {
    const Params params{P, 4, oo, std::max<Time>(2, oo)};  // keep g >= o
    const auto tree = bcast::BroadcastTree::optimal(params, P);
    o.row(oo, tree.makespan(), tree.node(0).children.size());
  }
  o.print();

  logpc::bench::section("optimal vs binomial gap across L (g = 1, o = 0)");
  Table gap({"L", "optimal B(64)", "binomial", "penalty"});
  for (const Time L : {1, 2, 4, 8, 16}) {
    const Params params{P, L, 0, 1};
    const Time opt = bcast::B_of_P(params, P);
    const Time bin = baselines::binomial_tree(params, P).makespan();
    std::ostringstream os;
    os << std::fixed << std::setprecision(2)
       << static_cast<double>(bin) / static_cast<double>(opt) << "x";
    gap.row(L, opt, bin, os.str());
  }
  gap.print();
}

void BM_TreeAcrossParams(benchmark::State& state) {
  const Params params{1024, state.range(0), 1, state.range(1)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(bcast::BroadcastTree::optimal(params, 1024));
  }
}
BENCHMARK(BM_TreeAcrossParams)->Args({1, 1})->Args({16, 1})->Args({16, 8});

}  // namespace

LOGPC_BENCH_MAIN(report)
