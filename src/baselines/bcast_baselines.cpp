#include "baselines/bcast_baselines.hpp"

#include <deque>
#include <stdexcept>

namespace logpc::baselines {

namespace {

void require_P(int P) {
  if (P < 1) throw std::invalid_argument("baseline tree: P >= 1");
}

}  // namespace

BroadcastTree binomial_tree(const Params& params, int P) {
  require_P(P);
  std::vector<int> parents(static_cast<std::size_t>(P), -1);
  // Each queue entry is a subtree root responsible for `size` processors
  // (itself included).  It repeatedly peels off the upper half to a fresh
  // node; node indices are assigned in send order, so earlier sends get
  // earlier sibling ranks under from_parents.
  int next = 1;
  std::deque<std::pair<int, int>> work;  // (root index, size)
  work.emplace_back(0, P);
  while (!work.empty()) {
    auto [root, size] = work.front();
    work.pop_front();
    while (size > 1) {
      const int half = size / 2;
      const int child = next++;
      parents[static_cast<std::size_t>(child)] = root;
      if (half > 1) work.emplace_back(child, half);
      size -= half;
    }
  }
  return BroadcastTree::from_parents(params, parents);
}

BroadcastTree binary_tree(const Params& params, int P) {
  require_P(P);
  std::vector<int> parents(static_cast<std::size_t>(P), -1);
  for (int i = 1; i < P; ++i) {
    parents[static_cast<std::size_t>(i)] = (i - 1) / 2;
  }
  return BroadcastTree::from_parents(params, parents);
}

BroadcastTree linear_chain(const Params& params, int P) {
  require_P(P);
  std::vector<int> parents(static_cast<std::size_t>(P), -1);
  for (int i = 1; i < P; ++i) parents[static_cast<std::size_t>(i)] = i - 1;
  return BroadcastTree::from_parents(params, parents);
}

BroadcastTree flat_tree(const Params& params, int P) {
  require_P(P);
  std::vector<int> parents(static_cast<std::size_t>(P), -1);
  for (int i = 1; i < P; ++i) parents[static_cast<std::size_t>(i)] = 0;
  return BroadcastTree::from_parents(params, parents);
}

}  // namespace logpc::baselines
