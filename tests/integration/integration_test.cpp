#include <gtest/gtest.h>

#include <memory>

#include "bcast/all_to_all.hpp"
#include "bcast/combining.hpp"
#include "bcast/kitem.hpp"
#include "bcast/single_item.hpp"
#include "sched/metrics.hpp"
#include "sim/engine.hpp"
#include "sum/executor.hpp"
#include "sum/lazy.hpp"
#include "validate/checker.hpp"

/// Cross-module integration: the three independent implementations of LogP
/// semantics - schedule constructors, the discrete-event engine, and the
/// validator - must agree on every workload.

namespace logpc {
namespace {

// Replays a static schedule's send list as reactive programs: each
// processor sends what the schedule says, when its items allow, in the
// schedule's per-processor order.  The engine re-times everything under
// "as early as possible"; for schedules that are themselves greedy the
// timings must coincide.
class ReplayProgram : public sim::Program {
 public:
  ReplayProgram(std::vector<std::pair<ProcId, ItemId>> sends)
      : sends_(std::move(sends)) {}
  void on_item(sim::Context& ctx, ItemId) override {
    // Issue every send whose item is now available and not yet issued.
    for (std::size_t i = 0; i < sends_.size(); ++i) {
      if (issued_[i]) continue;
      if (!ctx.has(sends_[i].second)) break;  // preserve order
      ctx.send(sends_[i].first, sends_[i].second);
      issued_[i] = true;
    }
  }
  void on_start(sim::Context&) override {
    issued_.assign(sends_.size(), false);
  }

 private:
  std::vector<std::pair<ProcId, ItemId>> sends_;
  std::vector<bool> issued_;
};

TEST(Integration, EngineReplaysOptimalSingleItemAtSameMakespan) {
  const Params params{8, 6, 2, 4};
  const Schedule planned = bcast::optimal_single_item(params);
  sim::Engine engine(params, 1);
  for (ProcId p = 0; p < params.P; ++p) {
    std::vector<std::pair<ProcId, ItemId>> sends;
    for (const auto& op : planned.sends()) {
      if (op.from == p) sends.emplace_back(op.to, op.item);
    }
    engine.set_program(p, std::make_unique<ReplayProgram>(std::move(sends)));
  }
  engine.place(0, 0, 0);
  const auto run = engine.run();
  EXPECT_EQ(run.makespan, completion_time(planned));
  EXPECT_EQ(run.schedule.sends().size(), planned.sends().size());
  EXPECT_TRUE(validate::is_valid(run.schedule));
}

TEST(Integration, EngineReplaysKItemBlockCyclicSchedule) {
  const auto r = bcast::kitem_broadcast(10, 3, 5);
  ASSERT_EQ(r.method, bcast::KItemMethod::kContinuousBlockCyclic);
  const Params& params = r.schedule.params();
  sim::Engine engine(params, 5);
  for (ProcId p = 0; p < params.P; ++p) {
    std::vector<std::pair<ProcId, ItemId>> sends;
    for (const auto& op : r.schedule.sends()) {
      if (op.from == p) sends.emplace_back(op.to, op.item);
    }
    engine.set_program(p, std::make_unique<ReplayProgram>(std::move(sends)));
  }
  for (ItemId i = 0; i < 5; ++i) engine.place(i, 0, i);
  const auto run = engine.run();
  // The engine issues each send as early as the items allow; the planned
  // schedule is already earliest-possible, so completion matches.
  EXPECT_EQ(completion_time(run.schedule), r.completion);
}

TEST(Integration, AllToAllOnEngine) {
  // Postal machine: the engine is single-ported, so the duplex-dependent
  // o > 0 variant is validated schedule-side only.
  const Params params = Params::postal(6, 3);
  const Schedule planned = bcast::all_to_all(params);
  sim::Engine engine(params, 6);
  for (ProcId p = 0; p < params.P; ++p) {
    std::vector<std::pair<ProcId, ItemId>> sends;
    for (const auto& op : planned.sends()) {
      if (op.from == p) sends.emplace_back(op.to, op.item);
    }
    engine.set_program(p, std::make_unique<ReplayProgram>(std::move(sends)));
    engine.place(p, p, 0);
  }
  const auto run = engine.run();
  EXPECT_EQ(run.makespan, bcast::all_to_all_lower_bound(params));
  EXPECT_EQ(completion_time(run.schedule), completion_time(planned));
}

TEST(Integration, SummationEqualsCombiningTotal) {
  // Two different algorithms computing a global sum must agree: optimal
  // summation of P operands (one per processor) and combining broadcast.
  const Time L = 3;
  const Time T = 7;
  const auto cs = bcast::combining_broadcast(T, L);
  const int P = cs.params.P;
  std::vector<long long> vals;
  for (int i = 0; i < P; ++i) vals.push_back(100 + i);
  const auto combined = bcast::execute_combining<long long>(
      cs, vals, [](const long long& a, const long long& b) { return a + b; });

  // Summation of the same multiset on a machine wide enough to hold one
  // operand per processor is trivially the same total.
  long long expected = 0;
  for (const auto v : vals) expected += v;
  EXPECT_EQ(combined[0], expected);

  const auto plan = sum::optimal_summation(Params{P, L, 0, 1},
                                           sum::min_time_for_operands(
                                               Params{P, L, 0, 1},
                                               static_cast<Count>(P)));
  ASSERT_GE(plan.total_operands, static_cast<Count>(P));
  // Distribute: first P operand slots get vals, the rest get 0.
  const auto layout = sum::operand_layout(plan);
  std::vector<std::vector<long long>> operands(layout.size());
  std::size_t fed = 0;
  for (std::size_t i = 0; i < layout.size(); ++i) {
    operands[i].resize(layout[i].total(), 0);
    for (auto& slot : operands[i]) {
      if (fed < vals.size()) slot = vals[fed++];
    }
  }
  const auto total = sum::execute_summation<long long>(
      plan, operands, [](const long long& a, const long long& b) {
        return a + b;
      });
  EXPECT_EQ(total, expected);
}

TEST(Integration, ValidatorAgreesWithEngineOnViolations) {
  // A program that violates the send gap cannot arise from the engine (it
  // serializes sends); hand-build the bad schedule and confirm only the
  // validator path flags it while the engine path never produces it.
  const Params params{3, 6, 2, 4};
  Schedule bad(params, 1);
  bad.add_initial(0, 0, 0);
  bad.add_send(0, 0, 1, 0);
  bad.add_send(2, 0, 2, 0);  // gap 2 < g = 4
  EXPECT_FALSE(validate::is_valid(bad, {.require_complete = false}));

  sim::Engine engine(params, 1);
  class TwoSends : public sim::Program {
   public:
    void on_item(sim::Context& ctx, ItemId item) override {
      ctx.send(1, item);
      ctx.send(2, item);
    }
  };
  engine.set_program(0, std::make_unique<TwoSends>());
  engine.place(0, 0, 0);
  const auto run = engine.run();
  EXPECT_TRUE(validate::is_valid(run.schedule));
  EXPECT_EQ(run.schedule.sends()[1].start, 4);  // engine spaced them itself
}

TEST(Integration, LazyPlansRoundTripThroughScheduleValidator) {
  const auto plan = sum::optimal_summation(Params{10, 4, 1, 3}, 24);
  ASSERT_TRUE(sum::is_valid_plan(plan));
  const Schedule view = plan.timing_view();
  EXPECT_TRUE(validate::is_valid(
      view, {.forbid_duplicate_receive = false, .require_complete = false}));
}

}  // namespace
}  // namespace logpc
