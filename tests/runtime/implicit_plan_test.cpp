#include "runtime/implicit_plan.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "baselines/bcast_baselines.hpp"
#include "bcast/reduction.hpp"
#include "bcast/tree.hpp"
#include "exec/engine.hpp"
#include "exec/program.hpp"
#include "runtime/planner.hpp"
#include "runtime/snapshot.hpp"
#include "sim/implicit_sim.hpp"

/// The implicit ≡ materialized property suite: every query an ImplicitPlan
/// answers must agree with the materialized tree / schedule / compiled
/// program for the same key, across the whole (P, L, o, g) space the
/// random-machine sweeps cover, and the generator form must keep working at
/// P = 1,000,000 where nothing materialized can exist.

namespace logpc::runtime {
namespace {

constexpr std::array<Problem, 5> kImplicitProblems = {
    Problem::kBroadcast, Problem::kReduce, Problem::kBinomialBroadcast,
    Problem::kBinaryBroadcast, Problem::kChainBroadcast};

/// The materialized tree the implicit decode must reproduce node by node.
bcast::BroadcastTree materialized_tree(const PlanKey& key) {
  const Params& m = key.params;
  switch (key.problem) {
    case Problem::kBroadcast:
    case Problem::kReduce:
      return bcast::BroadcastTree::optimal(m, m.P);
    case Problem::kBinomialBroadcast:
      return baselines::binomial_tree(m, m.P);
    case Problem::kBinaryBroadcast:
      return baselines::binary_tree(m, m.P);
    case Problem::kChainBroadcast:
      return baselines::linear_chain(m, m.P);
    default:
      throw std::logic_error("not an implicit problem");
  }
}

std::vector<Params> random_machines(int count, int max_p) {
  std::mt19937 rng(20260808);
  std::uniform_int_distribution<int> pd(1, max_p);
  std::uniform_int_distribution<Time> ld(1, 8);
  std::uniform_int_distribution<Time> od(0, 3);
  std::uniform_int_distribution<Time> gd(1, 4);
  std::vector<Params> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(Params{pd(rng), ld(rng), od(rng), gd(rng)});
  }
  // Pin a few shapes the random draw may miss.
  out.push_back(Params{1, 3, 1, 2});
  out.push_back(Params{2, 1, 0, 1});
  out.push_back(Params::postal(64, 2));
  out.push_back(Params{97, 7, 3, 4});
  return out;
}

TEST(ImplicitPlan, SupportsExactlyTheRegularFullMembershipCollectives) {
  const Params m{16, 4, 1, 2};
  for (const Problem p : kImplicitProblems) {
    EXPECT_TRUE(ImplicitPlan::supports(PlanKey::make(p, m)));
  }
  EXPECT_FALSE(ImplicitPlan::supports(PlanKey::kitem(m, 4)));
  EXPECT_FALSE(ImplicitPlan::supports(PlanKey::scatter(m)));
  EXPECT_FALSE(ImplicitPlan::supports(PlanKey::gather(m)));
  EXPECT_FALSE(ImplicitPlan::supports(PlanKey::summation(m, 100)));
  EXPECT_FALSE(ImplicitPlan::supports(PlanKey::alltoall(m)));
  EXPECT_FALSE(ImplicitPlan::supports(PlanKey::allreduce(m)));
  EXPECT_FALSE(
      ImplicitPlan::supports(PlanKey::make(Problem::kFlatBroadcast, m)));
  // Degraded membership stays materialized.
  EXPECT_FALSE(ImplicitPlan::supports(
      PlanKey::make(Problem::kBroadcast, m, 1, 0, 0x00ffull)));
  EXPECT_THROW((void)ImplicitPlan::build(PlanKey::scatter(m)),
               std::invalid_argument);
}

TEST(ImplicitPlan, NodeQueriesMatchTheMaterializedTrees) {
  for (const Params& m : random_machines(30, 160)) {
    for (const Problem problem : kImplicitProblems) {
      const PlanKey key = PlanKey::make(problem, m);
      const ImplicitPlan plan = ImplicitPlan::build(key);
      const bcast::BroadcastTree tree = materialized_tree(key);
      ASSERT_EQ(plan.num_nodes(), tree.size()) << key.to_string();
      ASSERT_EQ(plan.completion(), tree.makespan()) << key.to_string();
      for (int n = 0; n < tree.size(); ++n) {
        const bcast::TreeNode& node = tree.node(n);
        ASSERT_EQ(plan.label(n), node.label)
            << key.to_string() << " node " << n;
        ASSERT_EQ(plan.parent(n), node.parent)
            << key.to_string() << " node " << n;
        ASSERT_EQ(plan.child_rank(n), node.rank)
            << key.to_string() << " node " << n;
        ASSERT_EQ(plan.num_children(n),
                  static_cast<int>(node.children.size()))
            << key.to_string() << " node " << n;
        for (std::size_t i = 0; i < node.children.size(); ++i) {
          ASSERT_EQ(plan.child(n, static_cast<int>(i)), node.children[i])
              << key.to_string() << " node " << n << " child " << i;
        }
        ASSERT_EQ(plan.child(n, plan.num_children(n)), -1)
            << key.to_string() << " node " << n;
      }
    }
  }
}

TEST(ImplicitPlan, SchedulesMatchTheMaterializedBuilders) {
  std::mt19937 rng(7);
  for (const Params& m : random_machines(20, 96)) {
    std::uniform_int_distribution<int> rd(0, m.P - 1);
    const ProcId root = static_cast<ProcId>(rd(rng));
    for (const Problem problem : kImplicitProblems) {
      const PlanKey key = PlanKey::make(problem, m, 1, root);
      const Plan materialized = Planner::build_uncached(key);
      ASSERT_TRUE(materialized.materialized);
      ASSERT_NE(materialized.implicit, nullptr) << key.to_string();
      const ImplicitPlan& implicit = *materialized.implicit;
      EXPECT_EQ(implicit.completion(), materialized.completion)
          << key.to_string();
      EXPECT_EQ(implicit.to_schedule(), materialized.schedule)
          << key.to_string();
      // And the implicit-only build agrees on the scalars.
      const Plan lean = Planner::build_uncached(key, /*materialize=*/false);
      EXPECT_FALSE(lean.materialized);
      EXPECT_EQ(lean.completion, materialized.completion);
      EXPECT_EQ(lean.method, materialized.method) << key.to_string();
      EXPECT_EQ(plan_schedule(lean), materialized.schedule)
          << key.to_string();
    }
  }
}

TEST(ImplicitPlan, RankSchedulesTileTheSchedule) {
  for (const Params& m :
       {Params{24, 5, 1, 2}, Params{17, 2, 0, 3}, Params::postal(40, 3)}) {
    for (const Problem problem : {Problem::kBroadcast, Problem::kReduce}) {
      const PlanKey key = PlanKey::make(problem, m, 1, /*root=*/m.P / 2);
      const ImplicitPlan plan = ImplicitPlan::build(key);
      const Schedule whole = plan.to_schedule();
      std::size_t recvs = 0;
      std::size_t sends = 0;
      for (ProcId p = 0; p < m.P; ++p) {
        const RankSchedule rs = plan.rank_schedule(p);
        EXPECT_EQ(rs.proc, p);
        EXPECT_EQ(plan.proc_of_node(rs.node), p);
        EXPECT_EQ(plan.node_of_proc(p), rs.node);
        if (rs.node == 0) {
          EXPECT_EQ(rs.parent_node, -1);
          EXPECT_EQ(p, key.root);
        } else {
          EXPECT_EQ(plan.proc_of_node(rs.parent_node), rs.parent);
        }
        recvs += rs.recvs.size();
        sends += rs.sends.size();
        // Every generated op appears verbatim in the materialized schedule.
        for (const SendOp& op : rs.recvs) {
          EXPECT_EQ(op.to, p);
          EXPECT_NE(std::find(whole.sends().begin(), whole.sends().end(), op),
                    whole.sends().end());
        }
        for (const SendOp& op : rs.sends) {
          EXPECT_EQ(op.from, p);
          EXPECT_NE(std::find(whole.sends().begin(), whole.sends().end(), op),
                    whole.sends().end());
        }
        if (problem == Problem::kBroadcast) {
          EXPECT_EQ(rs.informed_at, plan.label(rs.node));
        } else {
          EXPECT_EQ(rs.informed_at, plan.completion() - plan.label(rs.node));
        }
      }
      // Each tree edge is one rank's recv and another's send.
      EXPECT_EQ(recvs, whole.sends().size());
      EXPECT_EQ(sends, whole.sends().size());
    }
  }
}

/// Instruction streams must agree with the materialized compilers
/// instruction by instruction (links are interned in a different order, so
/// compare everything except the link index, plus link *endpoints*).
void expect_same_streams(const exec::Program& implicit,
                         const exec::Program& materialized) {
  ASSERT_EQ(implicit.procs.size(), materialized.procs.size());
  EXPECT_EQ(implicit.params, materialized.params);
  EXPECT_EQ(implicit.mode, materialized.mode);
  EXPECT_EQ(implicit.num_items, materialized.num_items);
  EXPECT_EQ(implicit.predicted_makespan, materialized.predicted_makespan);
  EXPECT_EQ(implicit.num_messages, materialized.num_messages);
  ASSERT_EQ(implicit.links.size(), materialized.links.size());
  for (std::size_t p = 0; p < implicit.procs.size(); ++p) {
    const auto& a = implicit.procs[p].instrs;
    const auto& b = materialized.procs[p].instrs;
    ASSERT_EQ(a.size(), b.size()) << "proc " << p;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].op, b[i].op) << "proc " << p << " instr " << i;
      EXPECT_EQ(a[i].peer, b[i].peer) << "proc " << p << " instr " << i;
      EXPECT_EQ(a[i].item, b[i].item) << "proc " << p << " instr " << i;
      EXPECT_EQ(a[i].when, b[i].when) << "proc " << p << " instr " << i;
      EXPECT_EQ(a[i].chain, b[i].chain) << "proc " << p << " instr " << i;
      const exec::Link la =
          implicit.links[static_cast<std::size_t>(a[i].link)];
      const exec::Link lb =
          materialized.links[static_cast<std::size_t>(b[i].link)];
      EXPECT_EQ(la.from, lb.from);
      EXPECT_EQ(la.to, lb.to);
    }
  }
}

TEST(ImplicitPlan, CompiledStreamsMatchTheMaterializedCompilers) {
  for (const Params& m :
       {Params{12, 4, 1, 2}, Params{31, 2, 0, 3}, Params::postal(48, 4)}) {
    for (ProcId root : {ProcId{0}, static_cast<ProcId>(m.P - 1)}) {
      {
        const PlanKey key = PlanKey::broadcast(m, root);
        const ImplicitPlan plan = ImplicitPlan::build(key);
        const Plan full = Planner::build_uncached(key);
        expect_same_streams(exec::compile_implicit(plan),
                            exec::compile_broadcast(full.schedule));
      }
      {
        const PlanKey key = PlanKey::reduce(m, root);
        const ImplicitPlan plan = ImplicitPlan::build(key);
        bcast::ReductionPlan rp;
        rp.params = m;
        rp.root = root;
        const Plan full = Planner::build_uncached(key);
        rp.schedule = full.schedule;
        rp.completion = full.completion;
        expect_same_streams(exec::compile_implicit(plan),
                            exec::compile_reduction(rp));
      }
    }
  }
}

TEST(ImplicitPlan, EngineRunsAreByteExactAgainstTheMaterializedPath) {
  exec::Engine engine;
  const Params m{14, 3, 1, 2};
  const std::string text = "implicit-vs-materialized";
  exec::Bytes payload(text.size());
  std::memcpy(payload.data(), text.data(), text.size());

  // Broadcast: every rank must hold the payload, identically on both paths.
  const PlanKey bkey = PlanKey::broadcast(m, /*root=*/3);
  const exec::Program via_implicit =
      exec::compile_implicit(ImplicitPlan::build(bkey));
  const exec::Program via_ir =
      exec::compile_broadcast(Planner::build_uncached(bkey).schedule);
  const exec::ExecReport ri = engine.run(via_implicit, {payload});
  const exec::ExecReport rm = engine.run(via_ir, {payload});
  ASSERT_EQ(ri.items.size(), rm.items.size());
  for (ProcId p = 0; p < m.P; ++p) {
    EXPECT_EQ(ri.item_at(p, 0), rm.item_at(p, 0));
    EXPECT_EQ(ri.item_at(p, 0), payload);
  }

  // Reduce with a *non-commutative* fold: identical accumulators requires
  // identical fold order, not just the same multiset of messages.
  const exec::CombineFn concat = [](exec::Bytes& acc,
                                    std::span<const std::byte> rhs) {
    acc.insert(acc.end(), rhs.begin(), rhs.end());
  };
  std::vector<exec::Bytes> values;
  for (int p = 0; p < m.P; ++p) {
    values.push_back(exec::Bytes{static_cast<std::byte>('a' + p)});
  }
  const PlanKey rkey = PlanKey::reduce(m, /*root=*/5);
  const Plan rfull = Planner::build_uncached(rkey);
  bcast::ReductionPlan rp;
  rp.params = m;
  rp.root = 5;
  rp.schedule = rfull.schedule;
  rp.completion = rfull.completion;
  const exec::ExecReport fi =
      engine.run(exec::compile_implicit(ImplicitPlan::build(rkey)), values,
                 concat);
  const exec::ExecReport fm =
      engine.run(exec::compile_reduction(rp), values, concat);
  EXPECT_EQ(fi.folded_at(5), fm.folded_at(5));
  EXPECT_EQ(fi.folded_at(5).size(), static_cast<std::size_t>(m.P));
}

TEST(ImplicitPlan, MillionRankPlansStayImplicitAndTiny) {
  const Params m{1'000'000, 4, 1, 2};
  Planner planner;
  const PlanPtr plan = planner.plan(PlanKey::broadcast(m));
  ASSERT_NE(plan->implicit, nullptr);
  EXPECT_FALSE(plan->materialized);
  EXPECT_TRUE(plan->schedule.sends().empty());
  const ImplicitPlan& ip = *plan->implicit;
  EXPECT_EQ(ip.num_nodes(), 1'000'000);
  EXPECT_EQ(ip.completion(), bcast::B_of_P(m, m.P));
  // The whole representation is a couple of O(B) tables.
  EXPECT_LT(ip.memory_bytes(), std::size_t{64} * 1024);

  // Full structural simulation of all 1M ranks.
  const sim::ImplicitRunResult run = sim::run_implicit(ip);
  EXPECT_TRUE(run.ok) << run.error;
  EXPECT_EQ(run.ranks, 1'000'000u);
  EXPECT_EQ(run.messages, 999'999u);
  EXPECT_EQ(run.makespan, ip.completion());

  // Spot-checked rank queries, including the very last rank.
  std::mt19937 rng(99);
  std::uniform_int_distribution<int> rd(0, m.P - 1);
  for (int i = 0; i < 5000; ++i) {
    const auto p = static_cast<ProcId>(rd(rng));
    const RankSchedule rs = ip.rank_schedule(p);
    EXPECT_EQ(rs.proc, p);
    if (rs.node != 0) {
      EXPECT_EQ(ip.child(rs.parent_node, rs.child_rank), rs.node);
      EXPECT_EQ(rs.recvs.size(), 1u);
    }
  }
  const RankSchedule last = ip.rank_schedule(m.P - 1);
  EXPECT_LE(ip.label(last.node), ip.completion());

  // The baseline families also hold up at 1M (spot checks; the optimal
  // family above gets the full sweep).
  for (const Problem problem :
       {Problem::kBinomialBroadcast, Problem::kBinaryBroadcast}) {
    const ImplicitPlan bp =
        ImplicitPlan::build(PlanKey::make(problem, m));
    EXPECT_EQ(bp.num_nodes(), 1'000'000);
    std::int64_t walked = 0;
    for (std::int64_t n = 999'999; n != 0; n = bp.parent(n)) {
      const std::int64_t parent = bp.parent(n);
      ASSERT_GE(parent, 0);
      ASSERT_LT(parent, n);
      ASSERT_EQ(bp.child(parent, bp.child_rank(n)), n);
      ++walked;
    }
    EXPECT_LE(walked, 64);  // depth is logarithmic
  }
}

TEST(ImplicitPlan, PlannerThresholdControlsMaterialization) {
  Planner::Options opts;
  opts.materialize_threshold = 64;
  Planner planner(opts);
  const PlanPtr small = planner.plan(PlanKey::broadcast(Params{64, 4, 1, 2}));
  EXPECT_TRUE(small->materialized);
  EXPECT_NE(small->implicit, nullptr);
  const PlanPtr big = planner.plan(PlanKey::broadcast(Params{65, 4, 1, 2}));
  EXPECT_FALSE(big->materialized);
  ASSERT_NE(big->implicit, nullptr);
  // plan_schedule materializes on demand and matches the direct builder.
  EXPECT_EQ(plan_schedule(*big),
            Planner::build_uncached(big->key).schedule);
  // Problems without an implicit form materialize whatever P is.
  const PlanPtr scatter =
      planner.plan(PlanKey::scatter(Params{200, 4, 1, 2}));
  EXPECT_TRUE(scatter->materialized);
  EXPECT_EQ(scatter->implicit, nullptr);
}

TEST(ImplicitPlan, SnapshotsRoundTripBothRepresentations) {
  Planner::Options opts;
  opts.materialize_threshold = 32;
  Planner planner(opts);
  (void)planner.plan(PlanKey::broadcast(Params{16, 3, 1, 2}));   // materialized
  (void)planner.plan(PlanKey::broadcast(Params{4096, 3, 1, 2})); // implicit-only
  (void)planner.plan(PlanKey::reduce(Params{100, 2, 0, 1}));     // implicit-only
  std::stringstream buf;
  EXPECT_EQ(save_snapshot(planner.cache(), buf), 3u);

  PlanCache restored(16, 1);
  EXPECT_EQ(load_snapshot(restored, buf), 3u);
  const PlanPtr big = restored.get(PlanKey::broadcast(Params{4096, 3, 1, 2}));
  ASSERT_NE(big, nullptr);
  EXPECT_FALSE(big->materialized);
  ASSERT_NE(big->implicit, nullptr);
  EXPECT_EQ(big->implicit->num_nodes(), 4096);
  EXPECT_EQ(big->completion, big->implicit->completion());
  const PlanPtr small =
      restored.get(PlanKey::broadcast(Params{16, 3, 1, 2}));
  ASSERT_NE(small, nullptr);
  EXPECT_TRUE(small->materialized);
  ASSERT_NE(small->implicit, nullptr);
  EXPECT_EQ(small->implicit->to_schedule(), small->schedule);
}

TEST(ImplicitPlan, ConcurrentQueriesAreRaceFree) {
  // All queries are const over immutable tables; TSan verifies.
  const ImplicitPlan plan =
      ImplicitPlan::build(PlanKey::broadcast(Params{100'000, 4, 1, 2}));
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&plan, t] {
      std::mt19937 rng(static_cast<unsigned>(t));
      std::uniform_int_distribution<int> rd(0, 99'999);
      for (int i = 0; i < 2000; ++i) {
        const auto p = static_cast<ProcId>(rd(rng));
        const RankSchedule rs = plan.rank_schedule(p);
        ASSERT_EQ(rs.proc, p);
      }
    });
  }
  for (std::thread& th : threads) th.join();
}

}  // namespace
}  // namespace logpc::runtime
