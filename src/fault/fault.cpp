#include "fault/fault.hpp"

#include <algorithm>
#include <utility>

namespace logpc::fault {

namespace {

/// SplitMix64: the decision hash.  Good avalanche from tiny code, so one
/// mixed word per decision point is enough for injection probabilities.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform [0, 1) from a chain of decision-point words.
double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint64_t mix(std::uint64_t seed, std::uint64_t tag, std::uint64_t a,
                  std::uint64_t b, std::uint64_t c, std::uint64_t d) {
  std::uint64_t h = splitmix64(seed ^ (tag * 0x9e3779b97f4a7c15ull));
  h = splitmix64(h ^ a);
  h = splitmix64(h ^ b);
  h = splitmix64(h ^ c);
  h = splitmix64(h ^ d);
  return h;
}

constexpr std::uint64_t kDelayTag = 1;
constexpr std::uint64_t kDropTag = 2;

}  // namespace

std::string_view fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDrop:  return "drop";
    case FaultKind::kSlow:  return "slow";
    case FaultKind::kDead:  return "dead";
  }
  return "unknown";
}

FaultSpec remap_without(const FaultSpec& spec, ProcId removed) {
  FaultSpec out = spec;
  const auto shift = [removed](ProcId r) -> ProcId {
    return r > removed ? r - 1 : r;
  };
  out.slow_ranks.clear();
  for (const ProcId r : spec.slow_ranks) {
    if (r != removed) out.slow_ranks.push_back(shift(r));
  }
  if (spec.dead_rank == removed) {
    out.dead_rank = kNoProc;  // already fired
  } else if (spec.dead_rank != kNoProc) {
    out.dead_rank = shift(spec.dead_rank);
  }
  return out;
}

Injector::Injector(FaultSpec spec) : spec_(std::move(spec)) {
  for (const ProcId r : spec_.slow_ranks) {
    if (r >= 0 && r < 64) slow_mask_ |= 1ull << r;
  }
}

std::uint64_t Injector::send_delay_ns(ProcId from, std::int32_t link,
                                      std::uint64_t seq) const {
  if (spec_.delay_prob <= 0.0 || spec_.delay_ns == 0) return 0;
  const std::uint64_t h =
      mix(spec_.seed, kDelayTag, static_cast<std::uint64_t>(from),
          static_cast<std::uint64_t>(link), seq, 0);
  return to_unit(h) < spec_.delay_prob ? spec_.delay_ns : 0;
}

bool Injector::drop_delivery(ProcId to, std::int32_t link, std::uint64_t seq,
                             std::uint64_t attempt) const {
  if (spec_.drop_prob <= 0.0) return false;
  if (attempt > static_cast<std::uint64_t>(
                    std::max(0, spec_.max_drops_per_message))) {
    return false;
  }
  const std::uint64_t h =
      mix(spec_.seed, kDropTag, static_cast<std::uint64_t>(to),
          static_cast<std::uint64_t>(link), seq, attempt);
  return to_unit(h) < spec_.drop_prob;
}

bool Injector::is_slow(ProcId rank) const {
  if (spec_.slow_stall_ns == 0) return false;
  if (rank >= 0 && rank < 64) return (slow_mask_ >> rank) & 1;
  return std::find(spec_.slow_ranks.begin(), spec_.slow_ranks.end(), rank) !=
         spec_.slow_ranks.end();
}

}  // namespace logpc::fault
