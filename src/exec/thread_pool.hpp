#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file thread_pool.hpp
/// A reusable pool of OS worker threads dispatched in *epochs*: run(n, fn)
/// wakes workers 0..n-1, each executes fn(i) exactly once, and run returns
/// when all have arrived at the epoch barrier.  The engine maps logical
/// LogP processor i onto worker i, so a pool is the machine — grown once,
/// reused across every execution instead of paying thread start-up per
/// collective.
///
/// The dispatch handshake is mutex/condvar (it runs once per collective,
/// not per message); all per-message communication goes through the
/// lock-free mailboxes.  The completion handshake also publishes every
/// write the workers made, so the caller reads result buffers and
/// timestamp logs without further synchronization.

namespace logpc::exec {

class ThreadPool {
 public:
  /// Workers are spawned lazily by run(); `initial` pre-spawns that many.
  explicit ThreadPool(unsigned initial = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Executes fn(0) .. fn(tasks-1), one worker thread per index, blocking
  /// until all return.  Grows the pool to `tasks` workers if needed.  One
  /// epoch runs at a time; concurrent callers serialize.
  void run(int tasks, const std::function<void(int)>& fn);

  /// Pre-spawns workers up to `n` so a later run(tasks <= n) dispatches
  /// onto resident threads instead of paying thread start-up on the
  /// request path.  Idempotent; never shrinks the pool.
  void reserve(unsigned n);

  /// Workers currently alive.
  [[nodiscard]] unsigned size() const;

  /// Epochs dispatched so far.
  [[nodiscard]] std::uint64_t epochs() const { return epoch_count_; }

 private:
  void worker_loop(unsigned index);
  void ensure_unlocked(unsigned n);  ///< requires mu_ held

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::mutex run_mu_;  ///< serializes run() callers

  std::vector<std::thread> threads_;
  std::uint64_t epoch_ = 0;        ///< bumped per dispatch
  std::uint64_t epoch_count_ = 0;
  int tasks_ = 0;                  ///< indices live this epoch
  int done_ = 0;                   ///< workers finished this epoch
  const std::function<void(int)>* fn_ = nullptr;
  bool stop_ = false;
};

}  // namespace logpc::exec
