#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/context.hpp"
#include "exec/kernels.hpp"
#include "exec/mailbox.hpp"
#include "exec/program.hpp"
#include "exec/thread_pool.hpp"
#include "exec/wait.hpp"
#include "fault/fault.hpp"

/// \file engine.hpp
/// The shared-memory execution engine: runs a compiled Program on a pool
/// of OS threads — one logical LogP processor per worker — moving real
/// payload bytes through one bounded lock-free mailbox per directed link.
///
/// An Engine is two halves: a *persistent worker-pool resource* (the
/// ThreadPool plus a warm RunContext of mailboxes, ack rings and arena
/// chunks, kept alive across runs) and a *cheap per-run execution
/// context* (RunContext::prepare rewinds rather than rebuilds when
/// consecutive runs share a shape).  Back-to-back runs on one engine
/// therefore pay neither thread spawn/join nor per-link allocation —
/// ExecReport::warm_pool / warm_buffers record which path a run took, and
/// svc::CollectiveService keeps a small set of such engines as its
/// persistent pools.
///
/// Execution is as-fast-as-possible: planned cycles order each stream but
/// never pace it.  The model's constraints survive as *structure* — the
/// per-processor instruction order, the per-link FIFO, and the mailbox
/// bound of ceil(L/g) messages (the capacity constraint) — so a run is the
/// plan's dependency graph executed raw, and the returned timestamps are
/// what exec::measure() fits effective (L, o, g) from.
///
/// Every run records per-processor send/recv timestamps and the observed
/// delivery sequence (cross-checkable with validate::check_delivery_order),
/// increments the logpc_exec_* metrics, and wraps itself plus each worker
/// in obs spans, so executions land in the Chrome-trace exporter next to
/// sim::Trace timelines.
///
/// Fault tolerance: pass a fault::Injector to run() (or enable
/// Options::recovery) and the engine switches every link to *acked
/// delivery*: messages carry per-link sequence numbers, receivers
/// acknowledge acceptance on a reverse ring, senders retransmit after a
/// timeout with exponential backoff, and receivers discard retransmitted
/// duplicates exactly-once.  A rank whose heartbeat freezes while a peer
/// waits on it past the retry budget is declared dead: the run aborts with
/// RankFailure naming the rank, all workers are signalled, joined at the
/// epoch barrier, and every mailbox is drained before the error returns —
/// api::Communicator::run_broadcast_ft catches it and re-plans over the
/// survivors.  Without an injector and with recovery disabled, the fast
/// path is byte-identical to the unreliable engine.

namespace logpc::exec {

// Bytes, CombineFn and the typed-kernel Combiner live in exec/kernels.hpp;
// this header re-exports them through its include for source compatibility.

/// One timed operation on one processor.  Timestamps are nanoseconds on
/// the steady clock, relative to the run's start.
struct ExecEvent {
  enum class Kind : std::uint8_t { kSend, kRecv };
  Kind kind = Kind::kSend;
  ProcId peer = kNoProc;
  ItemId item = 0;
  std::uint64_t start_ns = 0;  ///< op begin (includes any blocking wait)
  std::uint64_t xfer_ns = 0;   ///< send: push accepted; recv: payload arrived
  std::uint64_t end_ns = 0;    ///< payload copied / folded, op complete
  Time planned = 0;            ///< planned cycle of this event
};

/// Thrown by Engine::run when the failure detector declares a rank dead:
/// a peer waited past the retry budget while the rank's heartbeat stayed
/// frozen.  The recovery layer excludes rank() and re-plans; everyone else
/// treats it as the runtime_error it is.
class RankFailure : public std::runtime_error {
 public:
  RankFailure(ProcId rank, const std::string& what)
      : std::runtime_error(what), rank_(rank) {}
  [[nodiscard]] ProcId rank() const { return rank_; }

 private:
  ProcId rank_;
};

/// Everything a run produced: result buffers, measured timestamps, the
/// observed delivery order, and the run-level tallies.
struct ExecReport {
  Params params;
  Mode mode = Mode::kMove;
  std::string label;
  Time predicted_makespan = 0;     ///< plan cycles
  std::uint64_t wall_ns = 0;       ///< measured makespan, dispatch to barrier
  std::size_t messages = 0;
  std::size_t payload_bytes = 0;   ///< bytes moved through mailboxes
  std::size_t mailbox_capacity = 0;
  std::size_t max_mailbox_occupancy = 0;  ///< high-water mark over all links
  std::size_t retries = 0;     ///< retransmissions under acked delivery
  std::size_t duplicates = 0;  ///< retransmitted copies discarded exactly-once
  std::size_t kernel_folds = 0;   ///< folds taken by the typed SIMD kernel
  std::size_t generic_folds = 0;  ///< folds through the type-erased lane
  std::size_t arena_bytes = 0;    ///< payload staging carved from the arena
  /// True when the run dispatched onto already-resident worker threads: no
  /// OS thread was spawned on the request path.  A fresh engine's first
  /// run (or the first run after a growth in P) is a cold start; every
  /// same-or-smaller run after it — and every run after prewarm(P) —
  /// reports true.  The service's persistent engine pools regression-
  /// assert this stays true under sustained traffic.
  bool warm_pool = false;
  /// True when the run reused the engine's RunContext warm: same shape as
  /// the previous run, so mailboxes, ack rings, drain queues, heartbeat
  /// slots and arena chunks were recycled with zero allocation.
  bool warm_buffers = false;
  /// Per-processor event logs, in stream order.  Guarantee (asserted after
  /// every run): `events[p]` is non-decreasing in start_ns — in fact each
  /// op completes before the next begins (start_ns[i+1] >= end_ns[i]),
  /// because one worker thread records its events sequentially on the
  /// steady clock.  obs::analyze() builds the causal DAG on top of this.
  std::vector<std::vector<ExecEvent>> events;  ///< [proc], in stream order
  std::vector<std::vector<validate::DeliveryRecord>> deliveries;  ///< [proc]
  /// Injected faults, per processor in injection order.  Decisions are
  /// deterministic in the fault seed, so two same-seed runs produce equal
  /// logs (duplicate discards, which depend on retransmit timing, are
  /// counted in `duplicates` instead).
  std::vector<std::vector<fault::FaultEvent>> fault_events;
  std::vector<std::vector<Bytes>> items;  ///< kMove results: [proc][item]
  std::vector<Bytes> folded;  ///< kFold/kSum accumulators: [proc]

  /// kMove: processor p's copy of `item`.
  [[nodiscard]] const Bytes& item_at(ProcId p, ItemId item) const {
    return items[static_cast<std::size_t>(p)][static_cast<std::size_t>(item)];
  }
  /// kFold/kSum: processor p's final accumulator (the collective's result
  /// when p is the root).
  [[nodiscard]] const Bytes& folded_at(ProcId p) const {
    return folded[static_cast<std::size_t>(p)];
  }
};

/// A coalesced k-item run: one logical payload executed through a k-item
/// (segmented) kMove program.  The engine splits `payload` into
/// `segments` near-equal contiguous ranges (sizes differing by at most
/// one byte, longer segments first — the same split svc::split_segments
/// produces), seeds the plan's initial placements straight from the
/// spans, and delivers every received segment *in place* into one
/// contiguous per-processor result buffer: ExecReport::items[p] holds a
/// single Bytes equal to the whole payload — byte-identical to what a
/// bulk single-item run of the same payload would report — instead of k
/// per-segment buffers.  That removes both the caller's split/concat
/// copies and the engine's post-run arena-to-report publication pass, so
/// a segmented run pays no more serial memcpy than a bulk one.
struct SegmentRun {
  std::span<const std::byte> payload;
  int segments = 1;  ///< must equal the program's num_items
};

class Engine {
 public:
  /// Knobs of the acked-delivery protocol (active when a fault::Injector is
  /// passed to run() or `enabled` is set).  Defaults suit the fault tests:
  /// sub-millisecond retransmits, tens of milliseconds to a death verdict.
  struct Recovery {
    bool enabled = false;
    std::uint64_t ack_timeout_us = 200;  ///< first retransmit after this
    std::uint64_t backoff_factor = 2;    ///< exponential retransmit backoff
    std::uint64_t max_backoff_us = 5000;
    int max_retries = 6;  ///< exponential-ramp steps; then steady cadence
    /// A peer whose heartbeat has not moved for this long — while someone
    /// is blocked on it — is declared dead.
    std::uint64_t suspect_after_ms = 25;
  };

  struct Options {
    /// Per-link mailbox bound; 0 means the model's capacity ceil(L/g).
    std::size_t mailbox_capacity = 0;
    /// Abort a run whose blocking wait exceeds this (a plan or engine bug
    /// must fail loudly, not hang the pool).  The clock starts when the
    /// run is dispatched, not while it queues behind another run.
    std::uint64_t timeout_ms = 20000;
    /// Record per-link high-water marks (ExecReport::max_mailbox_occupancy).
    /// Off, the producer's push pays only the ring indices.
    bool mailbox_stats = true;
    /// How blocked workers wait: spin / adaptive (default) / park.  One
    /// policy drives every wait in the run — mailbox waits, ack waits and
    /// the failure-detector loops.
    WaitPolicy wait;
    Recovery recovery;
  };

  Engine() = default;
  explicit Engine(Options options) : opts_(options) {}

  /// kMove: `item_values[i]` is item i's payload (sizes may differ per
  /// item).  Every processor named in an initial placement starts with its
  /// items seeded; on return every processor's slots hold what the plan
  /// delivered.  `injector` (optional, non-owning, must outlive the call)
  /// enables fault injection plus the acked-delivery protocol.
  ExecReport run(const Program& program, const std::vector<Bytes>& item_values,
                 const fault::Injector* injector = nullptr);

  /// kMove, segmented: `seg.payload` split into `seg.segments` contiguous
  /// ranges executed through a k-item program, results coalesced back into
  /// one contiguous buffer per processor (see SegmentRun).  Requires a
  /// kMove program with num_items == seg.segments and a non-empty payload.
  /// (A named method, not a run() overload: SegmentRun aggregate-converts
  /// from a payload span, which would make `run(prog, {payload})` at the
  /// existing kMove call sites ambiguous.)
  ExecReport run_segmented(const Program& program, const SegmentRun& seg,
                           const fault::Injector* injector = nullptr);

  /// kFold: `values[p]` is processor p's initial value; receives fold with
  /// `op` in arrival order.  The root's accumulator is the result.  A
  /// typed Combiner (constructed from a KernelSpec) takes the fused SIMD
  /// lane on every size-matched fold; the CombineFn overloads are the
  /// fully generic path.
  ExecReport run(const Program& program, const std::vector<Bytes>& values,
                 const Combiner& op, const fault::Injector* injector = nullptr);
  ExecReport run(const Program& program, const std::vector<Bytes>& values,
                 const CombineFn& op, const fault::Injector* injector = nullptr);

  /// kSum: `operands[i]` are the local operands of plan.procs[i] (counts
  /// must match sum::operand_layout; throws otherwise), folded with `op` in
  /// the plan's combination order.
  ExecReport run(const Program& program,
                 const std::vector<std::vector<Bytes>>& operands,
                 const Combiner& op, const fault::Injector* injector = nullptr);
  ExecReport run(const Program& program,
                 const std::vector<std::vector<Bytes>>& operands,
                 const CombineFn& op, const fault::Injector* injector = nullptr);

  /// The process-wide engine api::Communicator's run_* entry points use by
  /// default.
  ///
  /// Thread-safety contract (all engines, enforced by run_mu_): run() may
  /// be called from any number of threads concurrently; runs serialize on
  /// the engine's run mutex, each getting its full watchdog budget from
  /// dispatch (not from when it started queueing).  Options are fixed at
  /// construction and immutable afterwards — there is deliberately no
  /// setter, so a run never observes a torn options struct and the shared
  /// engine always carries the defaults.  Callers needing different knobs
  /// (recovery, wait policy, mailbox stats) construct their own Engine;
  /// svc::CollectiveService does exactly that, one per pool.
  static Engine& shared();

  /// Pre-spawns `procs` worker threads so the first real run dispatches
  /// warm (ExecReport::warm_pool).  A service brings its pools up with
  /// this before opening admission.
  void prewarm(int procs);

  /// The immutable options this engine was constructed with.
  [[nodiscard]] const Options& options() const { return opts_; }

  [[nodiscard]] ThreadPool& pool() { return pool_; }

 private:
  ExecReport run_impl(const Program& program,
                      const std::vector<Bytes>* item_values,
                      const SegmentRun* seg,
                      const std::vector<Bytes>* fold_values,
                      const std::vector<std::vector<Bytes>>* operands,
                      const Combiner* op, const fault::Injector* injector);

  Options opts_;
  ThreadPool pool_;
  /// Serializes runs on this engine *before* the watchdog clock starts, so
  /// a run queued behind a long one gets its full timeout budget.
  std::mutex run_mu_;
  /// Warm per-run resources, reused across same-shape runs (guarded by
  /// run_mu_ — exactly one run touches it at a time).
  RunContext ctx_;
};

}  // namespace logpc::exec
